// Async-pipeline sweep (beyond the paper): DAPC chase rate vs in-flight
// window W on all three platforms. W = 1 is the paper's synchronous
// evaluation and must reproduce the fig5-fig12 numbers exactly; W > 1
// keeps W tagged chases outstanding per initiator with sender-side frame
// batching, so the rate climbs from latency-bound toward the fabric/server
// throughput knee. See EXPERIMENTS.md ("Async window sweep").
#include "bench_util.hpp"
using namespace tc;

int main(int argc, char** argv) {
  const std::string json = bench::json_path_from_args(argc, argv);
  const bool fast = bench::fast_mode();
  const std::size_t servers = fast ? 4 : 8;
  const std::uint64_t depth = fast ? 32 : 64;
  const std::uint64_t chases = fast ? 32 : 128;
  const std::vector<std::uint64_t> windows =
      fast ? std::vector<std::uint64_t>{1, 4, 16}
           : std::vector<std::uint64_t>{1, 2, 4, 8, 16, 32, 64};
  const std::vector<xrdma::ChaseMode> modes = {
      xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
      xrdma::ChaseMode::kInterpreted,
#if TC_WITH_LLVM
      xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kCachedBinary,
      xrdma::ChaseMode::kHllBitcode,    xrdma::ChaseMode::kHllDrivesC,
#endif
  };
  const hetsim::Platform platforms[] = {hetsim::Platform::kThorBF2,
                                        hetsim::Platform::kOokami,
                                        hetsim::Platform::kThorXeon};

  for (hetsim::Platform platform : platforms) {
    auto series =
        bench::dapc_window_sweep(platform, servers, modes, windows, depth,
                                 chases);
    std::string title =
        std::string("Async window sweep: ") + hetsim::platform_name(platform) +
        ", " + std::to_string(servers) + " servers, depth " +
        std::to_string(depth);
    bench::print_dapc_figure(title.c_str(), "window", series);
    bench::append_json(json,
                       bench::dapc_series_json("fig_async_window",
                                               hetsim::platform_name(platform),
                                               "window", series));
  }
  return 0;
}
