// Micro/ablation benchmarks for the JIT layer (google-benchmark): the
// one-time bitcode JIT cost vs the binary (object) link-only deployment vs
// a cache hit — the §V-A "JIT compilation incurs an expensive one-time
// cost" result, measured for real on this host.
#include <benchmark/benchmark.h>

#include "core/context.hpp"
#include "ir/bitcode.hpp"
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#include "jit/engine.hpp"

namespace {

using namespace tc;

Bytes tsi_bitcode() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  return ir::module_to_bitcode(**module);
}

Bytes tsi_object() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  auto object = jit::compile_to_object(**module, ir::host_descriptor());
  return std::move(object).value();
}

jit::EngineOptions hook_options() {
  jit::EngineOptions options;
  options.extra_symbols = core::runtime_hook_symbols();
  return options;
}

// Full bitcode deployment: parse + optimize + codegen + link. The paper's
// JIT row (6.59 ms A64FX / 4.50 ms BF2 / 0.83 ms Xeon).
void BM_JitDeployBitcode(benchmark::State& state) {
  const Bytes bitcode = tsi_bitcode();
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_bitcode("tsi" + std::to_string(n++),
                                              as_span(bitcode), {});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_JitDeployBitcode)->Unit(benchmark::kMillisecond);

// Binary deployment ablation: link-only, no IR work.
void BM_JitDeployObject(benchmark::State& state) {
  const Bytes object = tsi_object();
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_object("tsi" + std::to_string(n++),
                                             as_span(object), {});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_JitDeployObject)->Unit(benchmark::kMillisecond);

// Cached invocation: the code is resident; cost is one indirect call.
void BM_CachedInvocation(benchmark::State& state) {
  auto engine = jit::OrcEngine::create(hook_options());
  auto entry =
      (*engine)->add_ifunc_bitcode("tsi", as_span(tsi_bitcode()), {});
  std::uint64_t counter = 0;
  core::ExecContext ctx;
  ctx.target_ptr = &counter;
  std::uint8_t payload = 0;
  for (auto _ : state) {
    (*entry)(&ctx, &payload, 1);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_CachedInvocation);

// Optimization-level ablation for the deploy cost.
void BM_JitDeployByOptLevel(benchmark::State& state) {
  const Bytes bitcode = tsi_bitcode();
  jit::EngineOptions options = hook_options();
  options.opt_level = static_cast<jit::OptLevel>(state.range(0));
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(options);
    auto entry = (*engine)->add_ifunc_bitcode("tsi" + std::to_string(n++),
                                              as_span(bitcode), {});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_JitDeployByOptLevel)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Chaser (a larger kernel with control flow) deploy cost, both paths.
void BM_JitDeployChaserBitcode(benchmark::State& state) {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kChaser,
                                 ir::host_descriptor());
  const Bytes bitcode = ir::module_to_bitcode(**module);
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_bitcode("ch" + std::to_string(n++),
                                              as_span(bitcode), {});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_JitDeployChaserBitcode)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
