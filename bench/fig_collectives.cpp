// Collective-suite latency sweep (beyond the paper): warm completion
// latency of the ifunc-built collectives — broadcast, reduce(sum),
// allreduce(sum) and the barrier — versus server count N, on both
// transport backends and in all three code representations the kernels
// travel as (fat bitcode, AOT objects, portable bytecode).
//
//  * sim — calibrated Thor-Xeon virtual time; deterministic, so one run
//    per point is the exact answer.
//  * shm — real progress threads, wall-clock on this host; each point is
//    the median of three repetitions after a full warmup round (the same
//    methodology as fig_mt_scale).
//
// Every measured call is warm: the first (untimed) round ships the kernel
// code along every tree edge, the timed rounds ride truncated frames and
// the per-node code caches — the steady state a long-running collective
// workload lives in.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "xrdma/collectives.hpp"

using namespace tc;

namespace {

enum class Coll { kBroadcast, kReduce, kAllreduce, kBarrier };

const char* coll_name(Coll coll) {
  switch (coll) {
    case Coll::kBroadcast: return "broadcast";
    case Coll::kReduce: return "reduce_sum";
    case Coll::kAllreduce: return "allreduce_sum";
    case Coll::kBarrier: return "barrier";
  }
  return "unknown";
}

StatusOr<std::int64_t> run_once(xrdma::CollectiveEngine& engine, Coll coll,
                                std::uint64_t round) {
  StatusOr<xrdma::CollectiveResult> result = [&] {
    switch (coll) {
      case Coll::kBroadcast: return engine.broadcast(0xB000 + round);
      case Coll::kReduce: return engine.reduce(xrdma::CollectiveOp::kSum);
      case Coll::kAllreduce:
        return engine.allreduce(xrdma::CollectiveOp::kSum);
      case Coll::kBarrier: return engine.barrier();
    }
    return engine.barrier();
  }();
  TC_RETURN_IF_ERROR(result.status());
  return result->elapsed_ns;
}

StatusOr<std::int64_t> measure(xrdma::CollectiveEngine& engine, Coll coll,
                               bool wall_clock) {
  // The shared warm / median-of-3 discipline; rounds vary the broadcast
  // value so repeats are distinguishable in the landing cells.
  std::uint64_t round = 0;
  auto lap = [&]() -> StatusOr<double> {
    TC_ASSIGN_OR_RETURN(std::int64_t ns, run_once(engine, coll, round++));
    return static_cast<double>(ns);  // exact: latencies are far below 2^53
  };
  TC_ASSIGN_OR_RETURN(double ns, bench::measure_warm(lap, wall_clock));
  return static_cast<std::int64_t>(ns);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json = bench::json_path_from_args(argc, argv);
  const bool fast = bench::fast_mode();
  const std::vector<std::size_t> server_counts =
      fast ? std::vector<std::size_t>{2, 4, 8}
           : std::vector<std::size_t>{2, 4, 8, 16, 32};
  const std::vector<xrdma::CollectiveRepr> reprs = {
      xrdma::CollectiveRepr::kPortable,
      xrdma::CollectiveRepr::kBitcode,
      xrdma::CollectiveRepr::kObject,
  };
  const std::vector<Coll> colls = {Coll::kBroadcast, Coll::kReduce,
                                   Coll::kAllreduce, Coll::kBarrier};
  const hetsim::Platform platform = hetsim::Platform::kThorXeon;

  for (hetsim::Backend backend :
       {hetsim::Backend::kSim, hetsim::Backend::kShm}) {
    const bool wall = backend == hetsim::Backend::kShm;
    std::vector<bench::LabeledSeries> all;
    for (xrdma::CollectiveRepr repr : reprs) {
      for (Coll coll : colls) {
        all.push_back({std::string(coll_name(coll)) + "_" +
                           xrdma::collective_repr_name(repr),
                       {}});
      }
    }
    for (std::size_t n : server_counts) {
      hetsim::ClusterConfig cluster_config;
      cluster_config.platform = platform;
      cluster_config.backend = backend;
      cluster_config.server_count = n;
      auto cluster = hetsim::Cluster::create(cluster_config);
      if (!cluster.is_ok()) {
        std::fprintf(stderr, "cluster(%zu, %s) failed: %s\n", n,
                     hetsim::backend_name(backend),
                     cluster.status().to_string().c_str());
        continue;
      }
      std::size_t series_index = 0;
      for (xrdma::CollectiveRepr repr : reprs) {
        xrdma::CollectiveConfig config;
        config.repr = repr;
        auto engine = xrdma::CollectiveEngine::create(**cluster, config);
        if (!engine.is_ok()) {
          std::fprintf(stderr, "engine(%s) failed: %s\n",
                       xrdma::collective_repr_name(repr),
                       engine.status().to_string().c_str());
          series_index += colls.size();
          continue;
        }
        for (std::size_t s = 0; s < n; ++s) {
          (*engine)->set_contribution(s, 1000 + 17 * s);
        }
        for (Coll coll : colls) {
          auto ns = measure(**engine, coll, wall);
          if (ns.is_ok()) {
            all[series_index].points.push_back(
                {n, static_cast<double>(*ns)});
          } else {
            std::fprintf(stderr, "%s N=%zu failed: %s\n",
                         all[series_index].label.c_str(), n,
                         ns.status().to_string().c_str());
          }
          ++series_index;
        }
      }
    }

    const std::string title =
        std::string("\nCollective latency vs N (") +
        hetsim::backend_name(backend) + " backend, " +
        (wall ? "wall-clock on this host"
              : "calibrated Thor-Xeon virtual time") +
        "):";
    bench::print_labeled_table(title.c_str(), "N", all, /*display_scale=*/1e-3,
                               /*display_suffix=*/"us");
    const std::string bench_name =
        std::string("fig_collectives_") + hetsim::backend_name(backend);
    bench::append_json(
        json, bench::labeled_series_json(bench_name.c_str(),
                                         hetsim::platform_name(platform),
                                         "servers", "latency_ns", all));
  }
  return 0;
}
