// Remote data-structure workload sweep (beyond the paper): warm throughput
// of the three workload-suite scenarios — hash-probe, ordered-search, and
// BFS frontier expansion — versus server count and versus concurrent
// initiators, on both transport backends and in every code representation
// the traversal travels as (predeployed Active Message, fat bitcode, AOT
// objects, portable bytecode, HLL-frontend bitcode).
//
//  * sim — calibrated Thor-Xeon virtual time; deterministic, so one run
//    per point is the exact answer.
//  * shm — real progress threads, wall-clock on this host; each point is
//    the median of three repetitions after a full warmup round (the same
//    methodology as fig_mt_scale / fig_collectives).
//
// Units: lookups/second for hash-probe and ordered-search (window 8
// pipelined per initiator), visited vertices/second for BFS. Every
// measured run is warm: the first untimed round ships the kernel along
// every edge; the timed rounds ride truncated frames and warm caches.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/collect.hpp"
#include "obs/export.hpp"
#include "workloads/workload_engine.hpp"

using namespace tc;

namespace {

/// --faults <rate>: total per-link fault probability (0 disables, the
/// default). The rate is split across kinds in the chaos-harness
/// proportions (drop 40% / duplicate 30% / delay 20% / truncate 10%) and
/// runtimes retry failed sends, so the sweep measures how throughput
/// degrades under loss instead of whether the run survives it. Zero leaves
/// every configuration — and all JSON output — byte-identical to a build
/// without this knob.
double g_fault_rate = 0.0;

struct ModeList {
  std::vector<workloads::WorkloadMode> modes = {
      workloads::WorkloadMode::kActiveMessage,
      workloads::WorkloadMode::kPortable,
#if TC_WITH_LLVM
      workloads::WorkloadMode::kBitcode,
      workloads::WorkloadMode::kObject,
      workloads::WorkloadMode::kHllBitcode,
#endif
  };
  ModeList() {
    if (g_fault_rate > 0) {
      // Predeployed Active Messages have no NACK/retry machinery — under
      // injected loss they cannot recover by design, so the faulted sweep
      // covers the self-forwarding representations only.
      std::erase(modes, workloads::WorkloadMode::kActiveMessage);
    }
  }
};

constexpr workloads::Workload kWorkloads[] = {
    workloads::Workload::kHashProbe,
    workloads::Workload::kOrderedSearch,
    workloads::Workload::kBfs,
};

std::string series_label(workloads::Workload workload,
                         workloads::WorkloadMode mode) {
  return std::string(workloads::workload_name(workload)) + "_" +
         workloads::workload_mode_name(mode);
}

/// One warm measurement on an engine: lookups (lanes concurrent query
/// streams) or BFS (lanes concurrent sources). Returns ops/second,
/// following the shared warm / median-of-3 discipline of measure_warm().
StatusOr<double> measure(workloads::WorkloadEngine& engine,
                         std::size_t lanes, std::size_t queries,
                         bool wall_clock) {
  auto run_once = [&]() -> StatusOr<double> {
    if (engine.workload() == workloads::Workload::kBfs) {
      std::vector<std::uint64_t> sources;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        sources.push_back((1 + 37 * lane) % engine.universe());
      }
      TC_ASSIGN_OR_RETURN(workloads::WorkloadResult result,
                          engine.run_bfs_all(sources));
      return result.ops_per_second;
    }
    std::vector<std::vector<std::uint64_t>> per_lane;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      per_lane.push_back(engine.sample_queries(lane, queries));
    }
    TC_ASSIGN_OR_RETURN(workloads::WorkloadResult result,
                        engine.run_lookups_all(per_lane));
    return result.ops_per_second;
  };
  return bench::measure_warm(run_once, wall_clock);
}

StatusOr<double> run_point(hetsim::Backend backend, std::size_t servers,
                           std::size_t lanes, workloads::Workload workload,
                           workloads::WorkloadMode mode,
                           std::size_t queries) {
  hetsim::ClusterConfig cluster_config;
  cluster_config.platform = hetsim::Platform::kThorXeon;
  cluster_config.backend = backend;
  cluster_config.server_count = servers;
  cluster_config.client_count = lanes;
  if (g_fault_rate > 0) {
    cluster_config.faults.rates.drop = 0.4 * g_fault_rate;
    cluster_config.faults.rates.duplicate = 0.3 * g_fault_rate;
    cluster_config.faults.rates.delay = 0.2 * g_fault_rate;
    cluster_config.faults.rates.truncate = 0.1 * g_fault_rate;
    cluster_config.max_send_retries = 10;
    cluster_config.shm_run_until_timeout_ms = 20'000;
  }
  TC_ASSIGN_OR_RETURN(auto cluster, hetsim::Cluster::create(cluster_config));
  workloads::WorkloadConfig config;
  config.workload = workload;
  config.mode = mode;
  config.lanes = lanes;
  config.window = 8;
  TC_ASSIGN_OR_RETURN(auto engine,
                      workloads::WorkloadEngine::create(*cluster, config));
  // TC_WORKLOADS_OPS_DEBUG=1: print both interpreter charge bases per
  // completed op for this point — retired ops (dispatches; fused windows
  // count as one) and constituent instrs (fusion-invariant; what
  // interp_op_ns multiplies) — to stderr. The gap between them times
  // interp_dispatch_ns is what fusion refunds.
  if (std::getenv("TC_WORKLOADS_OPS_DEBUG") != nullptr &&
      cluster->has_ifunc_runtimes()) {
    auto dbg = measure(*engine, lanes, queries,
                       backend != hetsim::Backend::kSim);
    if (dbg.is_ok()) {
      std::uint64_t ops = 0, instrs = 0, execs = 0, completed = 0;
      for (fabric::NodeId n = 0; n < cluster->node_count(); ++n) {
        const auto& stats = cluster->runtime(n).stats();
        ops += stats.interp_ops.load();
        instrs += stats.interp_instrs.load();
        execs += stats.interp_executions.load();
        completed += stats.results_received.load();
      }
      if (completed > 0) {
        std::fprintf(stderr,
                     "ops-debug %s x=%zu: interp_ops/completed=%.1f "
                     "interp_instrs/completed=%.1f invokes/completed=%.2f "
                     "ops/invoke=%.1f\n",
                     series_label(workload, mode).c_str(), servers,
                     double(ops) / double(completed),
                     double(instrs) / double(completed),
                     double(execs) / double(completed),
                     execs > 0 ? double(ops) / double(execs) : 0.0);
      }
    }
    return dbg;
  }
  return measure(*engine, lanes, queries,
                 backend != hetsim::Backend::kSim);
}

void sweep(const std::string& json, hetsim::Backend backend,
           const char* bench_suffix, const char* x_label,
           const std::vector<std::size_t>& xs, bool x_is_lanes,
           std::size_t queries) {
  const ModeList ml;
  std::vector<bench::LabeledSeries> all;
  for (workloads::Workload workload : kWorkloads) {
    for (workloads::WorkloadMode mode : ml.modes) {
      all.push_back({series_label(workload, mode), {}});
    }
  }
  for (std::size_t x : xs) {
    const std::size_t servers = x_is_lanes ? 4 : x;
    const std::size_t lanes = x_is_lanes ? x : 1;
    std::size_t index = 0;
    for (workloads::Workload workload : kWorkloads) {
      for (workloads::WorkloadMode mode : ml.modes) {
        auto rate = run_point(backend, servers, lanes, workload, mode,
                              queries);
        if (rate.is_ok()) {
          all[index].points.push_back({x, *rate});
        } else {
          std::fprintf(stderr, "%s %s=%zu failed: %s\n",
                       all[index].label.c_str(), x_label, x,
                       rate.status().to_string().c_str());
        }
        ++index;
      }
    }
  }
  std::string title =
      std::string("\nWorkload throughput vs ") + x_label + " (" +
      hetsim::backend_name(backend) + " backend, " +
      (backend == hetsim::Backend::kSim
           ? "calibrated Thor-Xeon virtual time"
           : "wall-clock on this host") +
      "; ops/s = lookups/s, BFS: visited vertices/s):";
  if (g_fault_rate > 0) {
    title += "\n  [fault injection: " + std::to_string(g_fault_rate) +
             " per-link fault rate, retries on]";
  }
  bench::print_labeled_table(title.c_str(), x_label, all);
  // Faulted runs get their own series names so an explicit --faults --json
  // run can never overwrite the canonical (fault-free) trajectory entries.
  const std::string bench_name = std::string("fig_workloads") +
                                 bench_suffix +
                                 (g_fault_rate > 0 ? "_faults" : "") + "_" +
                                 hetsim::backend_name(backend);
  bench::append_json(json, bench::labeled_series_json(
                               bench_name.c_str(), "thor_xeon", x_label,
                               "ops_per_second", all));
}

/// --trace <out.json>: a dedicated traced run — multi-initiator cross-shard
/// hash-probe on the shm backend with the distributed tracer attached —
/// exported as Chrome trace-event JSON (load in ui.perfetto.dev, or digest
/// with `tc_inspect trace <out.json>`). Runs on its own cluster so the
/// throughput sweeps above stay untraced and byte-identical.
Status run_traced(const std::string& trace_path) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  hetsim::ClusterConfig cluster_config;
  cluster_config.platform = hetsim::Platform::kThorXeon;
  cluster_config.backend = hetsim::Backend::kShm;
  cluster_config.server_count = 4;
  cluster_config.client_count = 2;
  cluster_config.tracer = &tracer;
  cluster_config.metrics = &metrics;
  TC_ASSIGN_OR_RETURN(auto cluster, hetsim::Cluster::create(cluster_config));
  workloads::WorkloadConfig config;
  config.workload = workloads::Workload::kHashProbe;
  config.mode = workloads::default_workload_mode();
  config.lanes = 2;
  config.window = 4;
  // Small, highly occupied shards: collision chains regularly run off the
  // shard edge, so the trace shows the probe kernel self-forwarding across
  // shard boundaries (the behavior this artifact exists to make visible).
  config.buckets_per_shard = 64;
  config.fill_percent = 90;
  TC_ASSIGN_OR_RETURN(auto engine,
                      workloads::WorkloadEngine::create(*cluster, config));
  std::vector<std::vector<std::uint64_t>> per_lane;
  for (std::size_t lane = 0; lane < config.lanes; ++lane) {
    per_lane.push_back(engine->sample_queries(lane, 24));
  }
  TC_ASSIGN_OR_RETURN(workloads::WorkloadResult result,
                      engine->run_lookups_all(per_lane));

  obs::collect_cluster_metrics(*cluster, metrics);
  obs::collect_tracer_gauges(tracer, metrics);
  const std::vector<obs::TraceEvent> events = tracer.drain_all();
  std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return internal_error("--trace: cannot open " + trace_path);
  }
  out << obs::chrome_trace_json(events, "fig_workloads hash-probe shm");
  out.close();
  std::fprintf(stderr,
               "--trace: %zu span events (%llu dropped) from %llu lookups "
               "-> %s\n",
               events.size(),
               static_cast<unsigned long long>(tracer.total_dropped()),
               static_cast<unsigned long long>(result.completed),
               trace_path.c_str());
  std::fputs(obs::metrics_text(metrics.snapshot()).c_str(), stderr);
  return Status::ok();
}

std::string trace_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) return argv[i + 1];
  }
  return "";
}

double faults_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      const double rate = std::atof(argv[i + 1]);
      if (rate < 0.0 || rate >= 1.0) {
        std::fprintf(stderr, "--faults wants a rate in [0, 1), got %s\n",
                     argv[i + 1]);
        std::exit(2);
      }
      return rate;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json = bench::json_path_from_args(argc, argv);
  const std::string trace_path = trace_path_from_args(argc, argv);
  g_fault_rate = faults_from_args(argc, argv);
  if (!trace_path.empty()) {
    Status status = run_traced(trace_path);
    if (!status.is_ok()) {
      std::fprintf(stderr, "--trace failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }
    // --trace on its own produces just the trace artifact; with --json the
    // full sweep below still runs.
    if (json.empty()) return 0;
  }
  const bool fast = bench::fast_mode();
  const std::vector<std::size_t> server_counts =
      fast ? std::vector<std::size_t>{2, 4}
           : std::vector<std::size_t>{2, 4, 8, 16};
  const std::vector<std::size_t> lane_counts =
      fast ? std::vector<std::size_t>{1, 2}
           : std::vector<std::size_t>{1, 2, 4};
  const std::size_t queries = fast ? 16 : 48;

  for (hetsim::Backend backend : bench::backends_from_args(
           argc, argv, {hetsim::Backend::kSim, hetsim::Backend::kShm})) {
    sweep(json, backend, "", "servers", server_counts,
          /*x_is_lanes=*/false, queries);
    sweep(json, backend, "_lanes", "initiators", lane_counts,
          /*x_is_lanes=*/true, queries);
  }
  return 0;
}
