// Micro-benchmarks for tiered ifunc execution (google-benchmark): the
// *first-invocation* latency of each code representation, measured for real
// on this host. This is the cold-path story of the tiered design — the
// interpreter executes a freshly arrived portable ifunc in microseconds
// while the bitcode representation first pays the one-time JIT compile
// (the paper's uncached-row stall: 0.83-6.59 ms depending on platform),
// and the AOT object representation pays a link.
//
// Builds with or without LLVM; without it only the interpreter tier and its
// steady-state cost are reported.
//
// The Dispatch×Fusion section measures the execution-core rewrite layer by
// layer: {switch, threaded} dispatch × {raw, Ld*Br-only, fully fused}
// programs on the three traversal kernels the workload suite runs
// (hash-probe chain walk, skip-list descent, BFS frontier expansion),
// against self-contained hook environments so the numbers isolate the
// interpreter inner loop. The `bytecode_ops` counter is the retired-op
// (dispatch) rate, `bytecode_instrs` the constituent-instruction rate, and
// `inline_slots` the rate of tail slots run inside the inlined Ld*Br
// handlers; hetsim charges virtual time per constituent instruction and
// refunds the calibrated dispatch share only for inline slots, so the
// fuse:1-vs-fuse:0 wall-clock delta over inline_slots here is exactly the
// measurement that fit `interp_dispatch_ns` (hetsim/profiles.cpp), and the
// fuse:2 column documents why kFusedLdiRun earns no refund.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "ir/kernels.hpp"
#include "vm/bytecode.hpp"
#include "vm/fuse.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

#if TC_WITH_LLVM
#include "ir/bitcode.hpp"
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#include "jit/engine.hpp"
#endif

namespace {

using namespace tc;

core::ExecContext make_ctx(std::uint64_t* counter) {
  core::ExecContext ctx;
  ctx.target_ptr = counter;
  return ctx;
}

Bytes portable_tsi_wire() {
  auto program = vm::lower_kernel(ir::KernelKind::kTargetSideIncrement);
  return program->serialize();
}

// First invocation, interpreter tier: decode + validate + run. No compile.
void BM_FirstInvocation_Interpreter(benchmark::State& state) {
  const Bytes wire = portable_tsi_wire();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  for (auto _ : state) {
    auto program = vm::Program::deserialize(as_span(wire));
    core::ExecContext ctx = make_ctx(&counter);
    vm::HookTable hooks = core::runtime_vm_hooks(ctx);
    auto r = vm::execute(*program, hooks, &payload, 1);
    benchmark::DoNotOptimize(r);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_Interpreter)->Unit(benchmark::kMicrosecond);

// Steady state, interpreter tier: the per-invocation dispatch tax.
void BM_SteadyState_Interpreter(benchmark::State& state) {
  auto program = vm::lower_kernel(ir::KernelKind::kPayloadSum);
  Bytes payload(static_cast<std::size_t>(state.range(0)), 3);
  std::uint64_t sum = 0;
  core::ExecContext ctx = make_ctx(&sum);
  vm::HookTable hooks = core::runtime_vm_hooks(ctx);
  for (auto _ : state) {
    auto r = vm::execute(*program, hooks, payload.data(), payload.size());
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteadyState_Interpreter)->Arg(64)->Arg(4096);

// --- dispatch-mode × fusion-mode matrix on the traversal kernels ---------------

/// Minimal hook environment for the workload kernels: counters instead of
/// vectors so the hooks cost nothing in steady state, single peer so the
/// traversal never leaves the node and the whole walk runs in one
/// invocation.
struct ShardEnv {
  std::uint64_t* shard = nullptr;
  std::uint64_t shard_size = 0;  // words
  std::uint64_t* cell = nullptr;
  std::uint64_t forwards = 0;
  std::uint64_t replies = 0;
};

vm::HookTable shard_hooks(ShardEnv& env) {
  vm::HookTable h;
  h.ctx = &env;
  h.target = [](void* c) -> void* {
    return static_cast<ShardEnv*>(c)->cell;
  };
  h.node = [](void*) -> std::uint64_t { return 0; };
  h.peer_count = [](void*) -> std::uint64_t { return 1; };
  h.self_peer = [](void*) -> std::uint64_t { return 0; };
  h.shard_base = [](void* c) -> std::uint64_t* {
    return static_cast<ShardEnv*>(c)->shard;
  };
  h.shard_size = [](void* c) -> std::uint64_t {
    return static_cast<ShardEnv*>(c)->shard_size;
  };
  h.forward = [](void* c, std::uint64_t, const std::uint8_t*,
                 std::uint64_t) -> std::int32_t {
    ++static_cast<ShardEnv*>(c)->forwards;
    return 0;
  };
  h.reply = [](void* c, const std::uint8_t*, std::uint64_t) -> std::int32_t {
    ++static_cast<ShardEnv*>(c)->replies;
    return 0;
  };
  return h;
}

void put_u64(Bytes& bytes, std::size_t offset, std::uint64_t value) {
  std::memcpy(bytes.data() + offset, &value, 8);
}

Bytes u64_payload(std::initializer_list<std::uint64_t> words) {
  Bytes bytes(8 * words.size());
  std::size_t i = 0;
  for (std::uint64_t w : words) put_u64(bytes, 8 * i++, w);
  return bytes;
}

/// One workload scenario: a program, an environment, a payload template,
/// and a per-iteration reset.
struct Scenario {
  vm::Program program;
  ShardEnv env;
  Bytes payload;
  std::vector<std::uint64_t> shard;
  std::vector<std::uint64_t> cell, bitmap, worklist;
  bool needs_reset = false;

  void reset() {
    if (!needs_reset) return;
    std::fill(bitmap.begin(), bitmap.end(), 0);
    cell[0] = 0;  // visited count
    cell[3] = cell[4] = cell[5] = 0;  // engagement words
  }
};

vm::Program lowered_or_die(ir::KernelKind kind) {
  auto program = vm::lower_kernel(kind);
  if (!program.is_ok()) std::abort();
  return std::move(program).value();
}

/// Hash-probe chain walk: 512 buckets, all local; the probed key sits 32
/// slots past its start bucket behind mismatching non-empty buckets.
Scenario hash_probe_scenario() {
  Scenario s{lowered_or_die(ir::KernelKind::kHashProbe)};
  const std::size_t buckets = 512, chain = 32;
  s.shard.assign(2 * buckets, 0);
  for (std::size_t b = 0; b < chain; ++b) {
    s.shard[2 * b] = 1000 + b;  // decoys: non-empty, never the target
    s.shard[2 * b + 1] = b;
  }
  s.shard[2 * chain] = 7;        // the target key
  s.shard[2 * chain + 1] = 777;
  s.env.shard = s.shard.data();
  s.env.shard_size = s.shard.size();
  s.payload = u64_payload({7, 0, buckets, 0xC0});  // key, slot, probes, tag
  return s;
}

/// Skip-list descent: 256 ten-word records, level-l fingers skipping 4^l
/// nodes; the search target is the last node's key.
Scenario ordered_search_scenario() {
  Scenario s{lowered_or_die(ir::KernelKind::kOrderedSearch)};
  const std::size_t nodes = 256;
  s.shard.assign(10 * nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::uint64_t* rec = s.shard.data() + 10 * i;
    rec[0] = 10 * i;       // key
    rec[1] = 10 * i + 1;   // value
    for (std::size_t l = 0; l < 4; ++l) {
      const std::size_t skip = 1ull << (2 * l);  // 1, 4, 16, 64
      const std::size_t next = i + skip;
      rec[2 + 2 * l] = next < nodes ? next : ~0ull;
      rec[3 + 2 * l] = next < nodes ? 10 * next : 0;
    }
  }
  s.env.shard = s.shard.data();
  s.env.shard_size = s.shard.size();
  s.payload = u64_payload({10 * (nodes - 1), 0, 3, 0xC1});
  return s;
}

/// BFS frontier expansion: a 256-vertex line graph, fully local, visited in
/// one invocation through the worklist; bitmap and cell reset per iteration.
Scenario bfs_scenario() {
  Scenario s{lowered_or_die(ir::KernelKind::kBfsFrontier)};
  const std::size_t n = 256;
  s.shard.assign(1 + (n + 1) + (n - 1), 0);
  s.shard[0] = n;  // vertices per shard
  for (std::size_t v = 0; v <= n; ++v) {
    s.shard[1 + v] = v < n - 1 ? v : n - 1;  // row offsets: one edge each
  }
  for (std::size_t v = 0; v + 1 < n; ++v) {
    s.shard[1 + n + 1 + v] = v + 1;  // cols: v -> v+1
  }
  s.cell.assign(8, 0);
  s.bitmap.assign((n + 63) / 64, 0);
  s.worklist.assign(n, 0);
  s.cell[1] = reinterpret_cast<std::uint64_t>(s.bitmap.data());
  s.cell[2] = reinterpret_cast<std::uint64_t>(s.worklist.data());
  s.env.shard = s.shard.data();
  s.env.shard_size = s.shard.size();
  s.env.cell = s.cell.data();
  s.payload = u64_payload({0, 0, 0, ~0ull});  // visit v0 from the origin
  s.needs_reset = true;
  return s;
}

void run_dispatch_fusion(benchmark::State& state, Scenario scenario) {
  // fuse: 0 = off, 1 = Ld*Br windows only (the runtime default), 2 = also
  // kFusedLdiRun. The 1-vs-0 wall-clock delta over inline_slots fits the
  // Ld*Br dispatch refund; the 2-vs-1 delta shows what the interpretive run
  // loop costs (historically: nothing saved, often a loss).
  const int fuse_level = static_cast<int>(state.range(0));
  const bool want_threaded = state.range(1) != 0;
  vm::FuseStats stats;
  const vm::Program program =
      fuse_level > 0
          ? vm::fuse_program(
                scenario.program, &stats,
                vm::FuseOptions{/*ld_br=*/true, /*ldi_runs=*/fuse_level > 1})
          : scenario.program;
  vm::InterpOptions options;
  options.dispatch =
      want_threaded ? vm::Dispatch::kThreaded : vm::Dispatch::kSwitch;
  vm::HookTable hooks = shard_hooks(scenario.env);
  Bytes payload = scenario.payload;
  std::uint64_t total_ops = 0;
  std::uint64_t total_instrs = 0;
  std::uint64_t total_inline_slots = 0;
  for (auto _ : state) {
    scenario.reset();
    std::memcpy(payload.data(), scenario.payload.data(), payload.size());
    auto r = vm::execute(program, hooks, payload.data(), payload.size(),
                         options);
    if (!r.is_ok()) state.SkipWithError(r.status().to_string().c_str());
    total_ops += r->ops;
    total_instrs += r->instrs;
    total_inline_slots += r->inline_fused_slots;
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  // bytecode_ops is the retired-op (dispatch) rate; bytecode_instrs is the
  // constituent-instruction rate, identical across fusion modes;
  // inline_slots is the rate of tail slots run inside inlined Ld*Br
  // handlers. The fuse:1-vs-fuse:0 wall-clock delta divided by the inline
  // slots is how hetsim's interp_dispatch_ns is fit — see
  // hetsim/profiles.cpp.
  state.counters["bytecode_ops"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
  state.counters["bytecode_instrs"] = benchmark::Counter(
      static_cast<double>(total_instrs), benchmark::Counter::kIsRate);
  state.counters["inline_slots"] = benchmark::Counter(
      static_cast<double>(total_inline_slots), benchmark::Counter::kIsRate);
  state.counters["fused_windows"] =
      benchmark::Counter(static_cast<double>(stats.windows()));
  if (want_threaded && !vm::threaded_dispatch_available()) {
    state.SetLabel("threaded unavailable: ran switch dispatch");
  }
}

void BM_DispatchFusion_HashProbe(benchmark::State& state) {
  run_dispatch_fusion(state, hash_probe_scenario());
}
void BM_DispatchFusion_OrderedSearch(benchmark::State& state) {
  run_dispatch_fusion(state, ordered_search_scenario());
}
void BM_DispatchFusion_Bfs(benchmark::State& state) {
  run_dispatch_fusion(state, bfs_scenario());
}
// Args: {fuse level, threaded}. ArgNames render as fuse:X/goto:Y in
// reports; fuse 0 = off, 1 = Ld*Br only (runtime default), 2 = +ldi runs.
BENCHMARK(BM_DispatchFusion_HashProbe)
    ->ArgNames({"fuse", "goto"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});
BENCHMARK(BM_DispatchFusion_OrderedSearch)
    ->ArgNames({"fuse", "goto"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});
BENCHMARK(BM_DispatchFusion_Bfs)
    ->ArgNames({"fuse", "goto"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}});

#if TC_WITH_LLVM

Bytes tsi_bitcode() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  return ir::module_to_bitcode(**module);
}

Bytes tsi_object() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  auto object = jit::compile_to_object(**module, ir::host_descriptor());
  return std::move(object).value();
}

jit::EngineOptions hook_options() {
  jit::EngineOptions options;
  options.extra_symbols = core::runtime_hook_symbols();
  return options;
}

// First invocation, bitcode tier: parse + optimize + codegen + link + run —
// the stall the interpreter tier removes from the cold path.
void BM_FirstInvocation_BitcodeJit(benchmark::State& state) {
  const Bytes bitcode = tsi_bitcode();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_bitcode("tsi" + std::to_string(n++),
                                              as_span(bitcode), {});
    core::ExecContext ctx = make_ctx(&counter);
    (*entry)(&ctx, &payload, 1);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_BitcodeJit)->Unit(benchmark::kMicrosecond);

// First invocation, binary tier: link only + run.
void BM_FirstInvocation_ObjectLink(benchmark::State& state) {
  const Bytes object = tsi_object();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_object("tsi" + std::to_string(n++),
                                             as_span(object), {});
    core::ExecContext ctx = make_ctx(&counter);
    (*entry)(&ctx, &payload, 1);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_ObjectLink)->Unit(benchmark::kMicrosecond);

// Steady state, JIT tier: what promotion buys once the ifunc is hot.
void BM_SteadyState_Jit(benchmark::State& state) {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kPayloadSum,
                                 ir::host_descriptor());
  auto engine = jit::OrcEngine::create(hook_options());
  auto entry = (*engine)->add_ifunc_bitcode(
      "payload_sum", as_span(ir::module_to_bitcode(**module)), {});
  Bytes payload(static_cast<std::size_t>(state.range(0)), 3);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    core::ExecContext ctx = make_ctx(&sum);
    (*entry)(&ctx, payload.data(), payload.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteadyState_Jit)->Arg(64)->Arg(4096);

#endif  // TC_WITH_LLVM

}  // namespace

BENCHMARK_MAIN();
