// Micro-benchmarks for tiered ifunc execution (google-benchmark): the
// *first-invocation* latency of each code representation, measured for real
// on this host. This is the cold-path story of the tiered design — the
// interpreter executes a freshly arrived portable ifunc in microseconds
// while the bitcode representation first pays the one-time JIT compile
// (the paper's uncached-row stall: 0.83-6.59 ms depending on platform),
// and the AOT object representation pays a link.
//
// Builds with or without LLVM; without it only the interpreter tier and its
// steady-state cost are reported.
#include <benchmark/benchmark.h>

#include <string>

#include "core/context.hpp"
#include "ir/kernels.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

#if TC_WITH_LLVM
#include "ir/bitcode.hpp"
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#include "jit/engine.hpp"
#endif

namespace {

using namespace tc;

core::ExecContext make_ctx(std::uint64_t* counter) {
  core::ExecContext ctx;
  ctx.target_ptr = counter;
  return ctx;
}

Bytes portable_tsi_wire() {
  auto program = vm::lower_kernel(ir::KernelKind::kTargetSideIncrement);
  return program->serialize();
}

// First invocation, interpreter tier: decode + validate + run. No compile.
void BM_FirstInvocation_Interpreter(benchmark::State& state) {
  const Bytes wire = portable_tsi_wire();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  for (auto _ : state) {
    auto program = vm::Program::deserialize(as_span(wire));
    core::ExecContext ctx = make_ctx(&counter);
    vm::HookTable hooks = core::runtime_vm_hooks(ctx);
    auto r = vm::execute(*program, hooks, &payload, 1);
    benchmark::DoNotOptimize(r);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_Interpreter)->Unit(benchmark::kMicrosecond);

// Steady state, interpreter tier: the per-invocation dispatch tax.
void BM_SteadyState_Interpreter(benchmark::State& state) {
  auto program = vm::lower_kernel(ir::KernelKind::kPayloadSum);
  Bytes payload(static_cast<std::size_t>(state.range(0)), 3);
  std::uint64_t sum = 0;
  core::ExecContext ctx = make_ctx(&sum);
  vm::HookTable hooks = core::runtime_vm_hooks(ctx);
  for (auto _ : state) {
    auto r = vm::execute(*program, hooks, payload.data(), payload.size());
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteadyState_Interpreter)->Arg(64)->Arg(4096);

#if TC_WITH_LLVM

Bytes tsi_bitcode() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  return ir::module_to_bitcode(**module);
}

Bytes tsi_object() {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kTargetSideIncrement,
                                 ir::host_descriptor());
  auto object = jit::compile_to_object(**module, ir::host_descriptor());
  return std::move(object).value();
}

jit::EngineOptions hook_options() {
  jit::EngineOptions options;
  options.extra_symbols = core::runtime_hook_symbols();
  return options;
}

// First invocation, bitcode tier: parse + optimize + codegen + link + run —
// the stall the interpreter tier removes from the cold path.
void BM_FirstInvocation_BitcodeJit(benchmark::State& state) {
  const Bytes bitcode = tsi_bitcode();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_bitcode("tsi" + std::to_string(n++),
                                              as_span(bitcode), {});
    core::ExecContext ctx = make_ctx(&counter);
    (*entry)(&ctx, &payload, 1);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_BitcodeJit)->Unit(benchmark::kMicrosecond);

// First invocation, binary tier: link only + run.
void BM_FirstInvocation_ObjectLink(benchmark::State& state) {
  const Bytes object = tsi_object();
  std::uint64_t counter = 0;
  std::uint8_t payload = 0;
  int n = 0;
  for (auto _ : state) {
    auto engine = jit::OrcEngine::create(hook_options());
    auto entry = (*engine)->add_ifunc_object("tsi" + std::to_string(n++),
                                             as_span(object), {});
    core::ExecContext ctx = make_ctx(&counter);
    (*entry)(&ctx, &payload, 1);
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_FirstInvocation_ObjectLink)->Unit(benchmark::kMicrosecond);

// Steady state, JIT tier: what promotion buys once the ifunc is hot.
void BM_SteadyState_Jit(benchmark::State& state) {
  llvm::LLVMContext context;
  auto module = ir::build_kernel(context, ir::KernelKind::kPayloadSum,
                                 ir::host_descriptor());
  auto engine = jit::OrcEngine::create(hook_options());
  auto entry = (*engine)->add_ifunc_bitcode(
      "payload_sum", as_span(ir::module_to_bitcode(**module)), {});
  Bytes payload(static_cast<std::size_t>(state.range(0)), 3);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    core::ExecContext ctx = make_ctx(&sum);
    (*entry)(&ctx, payload.data(), payload.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SteadyState_Jit)->Arg(64)->Arg(4096);

#endif  // TC_WITH_LLVM

}  // namespace

BENCHMARK_MAIN();
