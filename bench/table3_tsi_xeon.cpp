// Reproduces Table III: Thor Xeon pair TSI overhead breakdown.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorXeon);
  tc::bench::print_tsi_table("Table III / Thor Xeon", results);
  return 0;
}
