// Reproduces Table III: Thor Xeon pair TSI overhead breakdown.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorXeon);
  tc::bench::print_tsi_table("Table III / Thor Xeon", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table3", "thor_xeon", results));
  return 0;
}
