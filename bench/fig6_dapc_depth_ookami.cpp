// Reproduces Figure 6: DAPC chase rate vs depth on Ookami with 64 servers,
// including the cached *binary* (AOT object) representation line.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_depth_figure(
      {"fig6", "ookami_a64fx", hetsim::Platform::kOokami,
       "Figure 6: Ookami 64-server DAPC depth sweep",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBinary, xrdma::ChaseMode::kCachedBitcode,
        xrdma::ChaseMode::kInterpreted}},
      /*servers=*/64, /*fast_servers=*/4, argc, argv);
}
