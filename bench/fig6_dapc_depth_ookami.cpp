// Reproduces Figure 6: DAPC chase rate vs depth on Ookami with 64 servers,
// including the cached *binary* (AOT object) representation line.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::size_t servers = bench::fast_mode() ? 4 : 64;
  const std::vector<std::uint64_t> depths =
      bench::fast_mode() ? std::vector<std::uint64_t>{1, 16, 256}
                         : std::vector<std::uint64_t>{1, 4, 16, 64, 256, 1024, 4096};
  auto series = bench::dapc_depth_sweep(
      hetsim::Platform::kOokami, servers,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBinary, xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted},
      depths);
  bench::print_dapc_figure("Figure 6: Ookami 64-server DAPC depth sweep",
                           "depth", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig6", "ookami_a64fx", "depth",
                               series));
  return 0;
}
