// Shared harness for the paper-reproduction benchmarks: builds platform
// pairs/clusters, runs the TSI overhead/rate measurements (Tables I-VI) and
// the DAPC depth/scaling sweeps (Figures 5-12), and prints rows in the
// paper's format. See EXPERIMENTS.md for paper-vs-measured records.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hetsim/profiles.hpp"
#include "xrdma/dapc.hpp"

namespace tc::bench {

/// One column of the Tables I-III breakdown.
struct TsiBreakdown {
  double lookup_exec_us = 0;
  double jit_ms = -1;  ///< <0 = N/A
  double transmission_us = 0;
  double total_us = 0;
};

/// Results of the full TSI experiment on one platform.
struct TsiResults {
  TsiBreakdown active_message;
  TsiBreakdown uncached_bitcode;
  TsiBreakdown cached_bitcode;
  double am_rate = 0;        ///< msg/sec
  double uncached_rate = 0;
  double cached_rate = 0;
  double real_jit_ms = 0;    ///< measured on this host (not virtual)
};

/// Runs the TSI overhead experiment between a pair of same-type nodes.
TsiResults run_tsi(hetsim::Platform platform);

/// Prints Tables I-III style breakdown plus the real-host JIT note.
void print_tsi_table(const char* title, const TsiResults& results);

/// Prints Tables IV-VI style latency/message-rate rows with speedups.
void print_rate_table(const char* title, const TsiResults& results);

/// One DAPC measurement point.
struct DapcPoint {
  std::uint64_t x = 0;  ///< depth (figures 5-8) or server count (9-12)
  double rate = 0;      ///< chases/second (virtual time)
};

struct DapcSeries {
  xrdma::ChaseMode mode;
  std::vector<DapcPoint> points;
};

/// Depth sweep at fixed server count (Figures 5-8).
std::vector<DapcSeries> dapc_depth_sweep(
    hetsim::Platform platform, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& depths, std::uint64_t chases = 2,
    std::int64_t hll_guard_ns_override = -1);

/// Server-count sweep at fixed depth (Figures 9-12).
std::vector<DapcSeries> dapc_server_sweep(
    hetsim::Platform platform, const std::vector<std::size_t>& server_counts,
    std::uint64_t depth, const std::vector<xrdma::ChaseMode>& modes,
    std::uint64_t chases = 2, std::int64_t hll_guard_ns_override = -1);

/// Prints a figure-style series table: one row per x, one column per mode,
/// plus the paper's "Get - Bitcode % Diff" column when both are present.
/// `rate_note` is the footer describing what the rates mean (virtual-time
/// figures keep the default; wall-clock sweeps say so).
void print_dapc_figure(
    const char* title, const char* x_label,
    const std::vector<DapcSeries>& series,
    const char* rate_note =
        "(rates are chases/second in calibrated virtual time)");

/// Async-window sweep (fig_async_window): rate vs in-flight window W at
/// fixed depth and server count. W == 1 runs the classic synchronous
/// protocol (and must reproduce the fig5-fig12 numbers exactly); W > 1
/// pipelines W tagged chases per initiator, with sender-side frame
/// batching on the ifunc modes (`batch_frames` caps the coalescing; 0
/// derives min(W, 8)).
std::vector<DapcSeries> dapc_window_sweep(
    hetsim::Platform platform, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& windows, std::uint64_t depth,
    std::uint64_t chases, std::size_t batch_frames = 0);

/// Multi-initiator sweep (fig_mt_scale): aggregate chase rate vs M
/// concurrent initiators, each with its own client node and in-flight
/// window W, on the chosen transport backend. Backend::kSim reports
/// deterministic virtual-time rates; Backend::kShm and Backend::kSocket
/// run M real OS threads against per-node progress threads and report
/// wall-clock rates — the columns of the wall-clock vs virtual-time
/// methodology in EXPERIMENTS.md.
std::vector<DapcSeries> dapc_initiator_sweep(
    hetsim::Platform platform, hetsim::Backend backend, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& initiator_counts, std::uint64_t depth,
    std::uint64_t chases, std::uint64_t window);

// --- whole-figure drivers -----------------------------------------------------
// Everything that varies between the eight fig5-fig12 reproductions in one
// spec; the shared sweep/print/JSON scaffolding lives here once instead of
// being copied per driver. Output is byte-identical to the historical
// per-driver mains (BENCH_dapc.json regenerates unchanged).

struct DapcFigureSpec {
  const char* bench;         ///< JSON bench tag, e.g. "fig5"
  const char* platform_tag;  ///< JSON platform tag, e.g. "thor_bf2"
  hetsim::Platform platform;
  const char* title;
  std::vector<xrdma::ChaseMode> modes;
};

/// Depth sweep at a fixed server count (figures 5-8): the paper's shared
/// {1..4096} depth ladder ({1,16,256} under TC_BENCH_FAST, with
/// fast_servers servers).
int run_dapc_depth_figure(const DapcFigureSpec& spec, std::size_t servers,
                          std::size_t fast_servers, int argc, char** argv);

/// Server-count sweep at depth 4096 (figures 9-12; depth 256 and counts
/// {2,4} under TC_BENCH_FAST).
int run_dapc_scale_figure(const DapcFigureSpec& spec,
                          const std::vector<std::size_t>& server_counts,
                          int argc, char** argv);

// --- generic labeled series ---------------------------------------------------
// For benches whose series are not DAPC chase modes (collectives,
// workloads): one label per series, one (x, value) list each, with shared
// table printing and JSON serialization.

struct LabeledPoint {
  std::uint64_t x = 0;
  double value = 0;
};

struct LabeledSeries {
  std::string label;
  std::vector<LabeledPoint> points;
};

/// The warm-measurement discipline shared by the labeled-series benches
/// (fig_collectives, fig_workloads): one untimed warm run — ships code,
/// compiles/decodes, fills every cache — then a single timed run when the
/// clock is deterministic (sim), or the median of three timed runs when
/// it is the wall clock (shm/socket; guards against scheduler noise).
StatusOr<double> measure_warm(
    const std::function<StatusOr<double>()>& run_once, bool wall_clock);

/// Serializes labeled series as {"bench", "platform", "x", "unit",
/// "series": [{"mode", "points": [{"x", "y"}]}]}.
std::string labeled_series_json(const char* bench, const char* platform,
                                const char* x_label, const char* unit,
                                const std::vector<LabeledSeries>& series);

/// Prints one row per distinct x, one column per series; values are
/// rendered as value * display_scale followed by display_suffix (e.g.
/// scale 1e-3 + "us" renders nanoseconds as microseconds).
void print_labeled_table(const char* title, const char* x_label,
                         const std::vector<LabeledSeries>& series,
                         double display_scale = 1.0,
                         const char* display_suffix = "");

// --- machine-readable output (--json) ----------------------------------------
// Every bench main accepts `--json <path>`: results are appended to `path`
// as one JSON object per run inside a single top-level array, so repeated
// bench invocations build up one valid JSON document (BENCH_dapc.json /
// BENCH_tsi.json at the repo root are the canonical perf trajectory).

/// Returns the path following `--json`, or "" when absent.
std::string json_path_from_args(int argc, char** argv);

/// Parses `--backends a,b,c` (names: sim, shm, socket) into a backend list;
/// returns `defaults` when the flag is absent. Unknown names abort with a
/// usage message — a typo must not silently shrink a sweep. Lets the CI
/// socket leg run `fig_mt_scale --backends socket` without re-measuring the
/// sim/shm columns, and keeps default output byte-identical.
std::vector<hetsim::Backend> backends_from_args(
    int argc, char** argv, std::vector<hetsim::Backend> defaults);

/// Appends `object` (a serialized JSON object) to the array in `path`,
/// creating the file as `[object]` if needed. No-op when `path` is empty.
void append_json(const std::string& path, const std::string& object);

/// Serializes one DAPC figure (depth/server/window sweep) to JSON.
std::string dapc_series_json(const char* bench, const char* platform,
                             const char* x_label,
                             const std::vector<DapcSeries>& series);

/// Serializes one TSI table (overhead breakdown + rates) to JSON.
std::string tsi_json(const char* bench, const char* platform,
                     const TsiResults& results);

/// True when TC_BENCH_FAST is set: benches shrink sweeps for smoke runs.
bool fast_mode();

}  // namespace tc::bench
