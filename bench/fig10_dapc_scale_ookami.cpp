// Reproduces Figure 10: chase rate vs server count at depth 4096 on Ookami,
// including the cached binary line (2..64 servers).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_scale_figure(
      {"fig10", "ookami_a64fx", hetsim::Platform::kOokami,
       "Figure 10: Ookami DAPC scaling, depth 4096",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBinary, xrdma::ChaseMode::kCachedBitcode,
        xrdma::ChaseMode::kInterpreted}},
      {2, 4, 8, 16, 32, 64}, argc, argv);
}
