// Reproduces Figure 10: chase rate vs server count at depth 4096 on Ookami,
// including the cached binary line (2..64 servers).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::uint64_t depth = bench::fast_mode() ? 256 : 4096;
  const std::vector<std::size_t> counts =
      bench::fast_mode() ? std::vector<std::size_t>{2, 4}
                         : std::vector<std::size_t>{2, 4, 8, 16, 32, 64};
  auto series = bench::dapc_server_sweep(
      hetsim::Platform::kOokami, counts, depth,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBinary, xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted});
  bench::print_dapc_figure(
      "Figure 10: Ookami DAPC scaling, depth 4096", "servers", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig10", "ookami_a64fx", "servers",
                               series));
  return 0;
}
