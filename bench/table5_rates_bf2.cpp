// Reproduces Table V: Thor BF2 TSI latencies and message rates.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorBF2);
  tc::bench::print_rate_table("Table V / Thor BF2", results);
  return 0;
}
