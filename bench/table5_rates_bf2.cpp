// Reproduces Table V: Thor BF2 TSI latencies and message rates.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorBF2);
  tc::bench::print_rate_table("Table V / Thor BF2", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table5", "thor_bf2", results));
  return 0;
}
