// Reproduces Figure 11: chase rate vs server count at depth 4096,
// Thor Xeon client and servers (2..16).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_scale_figure(
      {"fig11", "thor_xeon", hetsim::Platform::kThorXeon,
       "Figure 11: Thor Xeon DAPC scaling, depth 4096",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      {2, 4, 8, 16}, argc, argv);
}
