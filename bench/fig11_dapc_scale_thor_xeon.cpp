// Reproduces Figure 11: chase rate vs server count at depth 4096,
// Thor Xeon client and servers (2..16).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::uint64_t depth = bench::fast_mode() ? 256 : 4096;
  const std::vector<std::size_t> counts =
      bench::fast_mode() ? std::vector<std::size_t>{2, 4}
                         : std::vector<std::size_t>{2, 4, 8, 16};
  auto series = bench::dapc_server_sweep(
      hetsim::Platform::kThorXeon, counts, depth,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted});
  bench::print_dapc_figure(
      "Figure 11: Thor Xeon DAPC scaling, depth 4096", "servers", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig11", "thor_xeon", "servers",
                               series));
  return 0;
}
