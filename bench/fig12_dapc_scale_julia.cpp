// Reproduces Figure 12: chase rate vs server count at depth 4096 with the
// HLL (Julia-analogue) frontend next to C, Thor BF2 servers.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_scale_figure(
      {"fig12", "thor_bf2", hetsim::Platform::kThorBF2,
       "Figure 12: Thor BF2 DAPC scaling with HLL frontend, depth 4096",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kHllBitcode, xrdma::ChaseMode::kHllDrivesC,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      {2, 4, 8, 16, 32}, argc, argv);
}
