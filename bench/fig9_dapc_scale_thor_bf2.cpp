// Reproduces Figure 9: chase rate vs server count at depth 4096,
// Thor (Xeon client, BF2 servers).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::uint64_t depth = bench::fast_mode() ? 256 : 4096;
  const std::vector<std::size_t> counts =
      bench::fast_mode() ? std::vector<std::size_t>{2, 4}
                         : std::vector<std::size_t>{2, 4, 8, 16, 32};
  auto series = bench::dapc_server_sweep(
      hetsim::Platform::kThorBF2, counts, depth,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted});
  bench::print_dapc_figure(
      "Figure 9: Thor BF2 DAPC scaling, depth 4096", "servers", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig9", "thor_bf2", "servers",
                               series));
  return 0;
}
