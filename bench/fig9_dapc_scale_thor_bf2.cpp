// Reproduces Figure 9: chase rate vs server count at depth 4096,
// Thor (Xeon client, BF2 servers).
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_scale_figure(
      {"fig9", "thor_bf2", hetsim::Platform::kThorBF2,
       "Figure 9: Thor BF2 DAPC scaling, depth 4096",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      {2, 4, 8, 16, 32}, argc, argv);
}
