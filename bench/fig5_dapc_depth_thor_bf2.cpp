// Reproduces Figure 5: DAPC chase rate vs depth, Thor 32 servers
// (Xeon client, BF2 DPU servers); Active Message vs GET vs cached bitcode.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_depth_figure(
      {"fig5", "thor_bf2", hetsim::Platform::kThorBF2,
       "Figure 5: Thor 32-server DAPC depth sweep "
       "(Xeon client, BF2 servers)",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      /*servers=*/32, /*fast_servers=*/4, argc, argv);
}
