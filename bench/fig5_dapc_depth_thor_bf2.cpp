// Reproduces Figure 5: DAPC chase rate vs depth, Thor 32 servers
// (Xeon client, BF2 DPU servers); Active Message vs GET vs cached bitcode.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::size_t servers = bench::fast_mode() ? 4 : 32;
  const std::vector<std::uint64_t> depths =
      bench::fast_mode() ? std::vector<std::uint64_t>{1, 16, 256}
                         : std::vector<std::uint64_t>{1, 4, 16, 64, 256, 1024, 4096};
  auto series = bench::dapc_depth_sweep(
      hetsim::Platform::kThorBF2, servers,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted},
      depths);
  bench::print_dapc_figure("Figure 5: Thor 32-server DAPC depth sweep "
                           "(Xeon client, BF2 servers)",
                           "depth", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig5", "thor_bf2", "depth",
                               series));
  return 0;
}
