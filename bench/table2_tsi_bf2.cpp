// Reproduces Table II: Thor BlueField-2 DPU pair TSI overhead breakdown.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorBF2);
  tc::bench::print_tsi_table("Table II / Thor BF2", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table2", "thor_bf2", results));
  return 0;
}
