// Reproduces Table II: Thor BlueField-2 DPU pair TSI overhead breakdown.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorBF2);
  tc::bench::print_tsi_table("Table II / Thor BF2", results);
  return 0;
}
