// Multi-initiator scaling sweep (beyond the paper): aggregate DAPC chase
// rate vs M concurrent initiators, each with its own client node and an
// in-flight window W, across all seven chase modes — measured twice:
//
//  * sim — the calibrated virtual-time backend. M initiators interleave
//    deterministically in one event timeline; rates are the modeled
//    Thor-Xeon numbers and are bit-for-bit reproducible.
//  * shm — the real-threads shared-memory transport. M OS threads drive M
//    client nodes against one progress thread per server; rates are real
//    wall-clock on this host.
//  * socket (off by default; `--backends sim,shm,socket`) — the same
//    real-threads shape over kernel stream sockets: every frame crosses a
//    socketpair, so the column prices the syscall + wire-codec overhead
//    against shm's ring writes.
//
// Comparing the two columns for the same (M, mode) point is the
// "wall-clock vs virtual-time" methodology described in EXPERIMENTS.md:
// the virtual column isolates protocol effects under the paper's timing
// model, the wall column shows what this machine actually sustains.
#include "bench_util.hpp"
using namespace tc;

int main(int argc, char** argv) {
  const std::string json = bench::json_path_from_args(argc, argv);
  const bool fast = bench::fast_mode();
  const std::size_t servers = fast ? 2 : 4;
  const std::uint64_t depth = fast ? 16 : 64;
  const std::uint64_t chases = fast ? 16 : 64;  // per initiator
  const std::uint64_t window = fast ? 2 : 8;
  const std::vector<std::uint64_t> initiators =
      fast ? std::vector<std::uint64_t>{1, 2, 4}
           : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<xrdma::ChaseMode> modes = {
      xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
      xrdma::ChaseMode::kInterpreted,
#if TC_WITH_LLVM
      xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kCachedBinary,
      xrdma::ChaseMode::kHllBitcode,    xrdma::ChaseMode::kHllDrivesC,
#endif
  };
  const hetsim::Platform platform = hetsim::Platform::kThorXeon;

  for (hetsim::Backend backend : bench::backends_from_args(
           argc, argv, {hetsim::Backend::kSim, hetsim::Backend::kShm})) {
    auto series = bench::dapc_initiator_sweep(platform, backend, servers,
                                              modes, initiators, depth,
                                              chases, window);
    std::string title = std::string("Multi-initiator scaling (") +
                        hetsim::backend_name(backend) + " backend, " +
                        (backend == hetsim::Backend::kSim ? "virtual-time"
                                                          : "wall-clock") +
                        " rates): " + std::to_string(servers) +
                        " servers, depth " + std::to_string(depth) +
                        ", W=" + std::to_string(window);
    bench::print_dapc_figure(
        title.c_str(), "initiators", series,
        backend == hetsim::Backend::kSim
            ? "(rates are chases/second in calibrated virtual time)"
            : "(rates are real wall-clock chases/second on this host)");
    const std::string bench_name =
        std::string("fig_mt_scale_") + hetsim::backend_name(backend);
    bench::append_json(json, bench::dapc_series_json(
                                 bench_name.c_str(),
                                 hetsim::platform_name(platform),
                                 "initiators", series));
  }
  return 0;
}
