// Ablation: how the shipped-code size drives the caching win (DESIGN.md §4,
// decision 1). Sweeps synthetic archive sizes from 64 B to 64 KiB on each
// platform's link model and reports cached vs uncached latency and message
// rate — the crossover behind the paper's "shipping such a large amount of
// extra data could have a significant negative impact".
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fabric/link_model.hpp"
#include "hetsim/profiles.hpp"

using namespace tc;

int main() {
  constexpr std::size_t kSizes[] = {64, 256, 1024, 5159, 16384, 65536};
  constexpr std::size_t kTruncated = 31;  // header + 1 B payload + MAGIC

  for (auto platform :
       {hetsim::Platform::kOokami, hetsim::Platform::kThorBF2,
        hetsim::Platform::kThorXeon}) {
    const auto& profile = hetsim::profile_for(platform);
    const fabric::LinkModel& link = profile.link;
    std::printf("=== caching ablation on %s ===\n", profile.name.c_str());
    std::printf("%-10s %14s %14s %14s %14s %10s\n", "code_B", "lat_full_us",
                "lat_trunc_us", "rate_full", "rate_trunc", "saving");
    for (std::size_t size : kSizes) {
      const double lat_full =
          static_cast<double>(link.transmit_ns(kTruncated + size)) * 1e-3;
      const double lat_trunc =
          static_cast<double>(link.transmit_ns(kTruncated)) * 1e-3;
      const double rate_full =
          1e9 / static_cast<double>(
                    link.occupancy_ns(kTruncated + size,
                                      fabric::OpClass::kSend));
      const double rate_trunc =
          1e9 / static_cast<double>(
                    link.occupancy_ns(kTruncated, fabric::OpClass::kSend));
      std::printf("%-10zu %11.2f us %11.2f us %10.0f m/s %10.0f m/s %9.1fx\n",
                  size, lat_full, lat_trunc, rate_full, rate_trunc,
                  rate_trunc / rate_full);
    }
    std::printf("\n");
  }
  std::printf("(pure link-model sweep; end-to-end confirmation in the "
              "table benches)\n");
  return 0;
}
