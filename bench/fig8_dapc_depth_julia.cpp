// Reproduces Figure 8: DAPC depth sweep with the high-level-language
// frontend (the paper's Julia integration) next to the C frontend,
// Thor 32 BF2 servers.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_depth_figure(
      {"fig8", "thor_bf2", hetsim::Platform::kThorBF2,
       "Figure 8: Thor 32-server DAPC depth sweep, HLL (Julia-analogue) vs C",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kHllBitcode, xrdma::ChaseMode::kHllDrivesC,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      /*servers=*/32, /*fast_servers=*/4, argc, argv);
}
