#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "am/am_runtime.hpp"
#include "core/runtime.hpp"
#include "hetsim/cluster.hpp"
#include "ir/kernel_builder.hpp"

namespace tc::bench {

namespace {

using fabric::Fabric;
using fabric::NodeId;
using hetsim::HwProfile;
using hetsim::Platform;

constexpr int kLatencyPings = 8;
constexpr int kRateMessages = 2000;

/// A same-type node pair on one platform's fabric (the paper measures TSI
/// between two A64FX, two BF2, or two Xeon systems).
struct Pair {
  Fabric fabric;
  NodeId src = 0;
  NodeId dst = 0;

  explicit Pair(const HwProfile& profile) {
    fabric.set_default_link(profile.link);
    src = fabric.add_node("src", profile.server_compute_scale);
    dst = fabric.add_node("dst", profile.server_compute_scale);
  }
};

double ns_to_us(std::int64_t ns) { return static_cast<double>(ns) * 1e-3; }

/// Measures AM latency and message rate for the TSI workload.
void measure_am(const HwProfile& profile, TsiResults& out) {
  Pair pair(profile);
  auto rt_src =
      am::AmRuntime::create(pair.fabric, pair.src, am_options_for(profile));
  auto rt_dst =
      am::AmRuntime::create(pair.fabric, pair.dst, am_options_for(profile));
  if (!rt_src.is_ok() || !rt_dst.is_ok()) return;

  std::uint64_t counter = 0;
  (*rt_dst)->set_target_ptr(&counter);
  auto increment = [](am::AmContext& ctx, std::uint8_t*, std::uint64_t) {
    ++*static_cast<std::uint64_t*>(ctx.target_ptr);
  };
  (void)(*rt_src)->register_handler(increment);
  auto idx = (*rt_dst)->register_handler(increment);
  if (!idx.is_ok()) return;

  Bytes payload{0};
  // AM frames are 8B header + 1B payload = 9B here; the paper's were 33B.
  std::int64_t total_ns = 0;
  for (int i = 0; i < kLatencyPings; ++i) {
    const auto t0 = pair.fabric.now();
    (void)(*rt_src)->send(pair.dst, *idx, as_span(payload));
    (void)pair.fabric.run_until(
        [&] { return counter == static_cast<std::uint64_t>(i) + 1; });
    total_ns += pair.fabric.now() - t0;
  }
  out.active_message.total_us = ns_to_us(total_ns / kLatencyPings);
  out.active_message.lookup_exec_us = ns_to_us(profile.am_exec_ns);
  out.active_message.transmission_us =
      out.active_message.total_us - out.active_message.lookup_exec_us;

  const std::uint64_t base = counter;
  const auto t0 = pair.fabric.now();
  for (int i = 0; i < kRateMessages; ++i) {
    (void)(*rt_src)->send(pair.dst, *idx, as_span(payload));
  }
  (void)pair.fabric.run_until([&] { return counter == base + kRateMessages; });
  out.am_rate =
      kRateMessages * 1e9 / static_cast<double>(pair.fabric.now() - t0);
}

/// Measures ifunc latency/rate; `uncached` ships the full frame every time.
void measure_ifunc(const HwProfile& profile, bool uncached, TsiResults& out) {
  Pair pair(profile);
  core::RuntimeOptions options = hetsim::runtime_options_for(profile);
  options.force_full_frames = uncached;
  auto rt_src = core::Runtime::create(pair.fabric, pair.src, options);
  auto rt_dst = core::Runtime::create(pair.fabric, pair.dst,
                                      hetsim::runtime_options_for(profile));
  if (!rt_src.is_ok() || !rt_dst.is_ok()) return;

  auto lib =
      core::IfuncLibrary::from_kernel(ir::KernelKind::kTargetSideIncrement);
  if (!lib.is_ok()) return;
  auto id = (*rt_src)->register_ifunc(std::move(*lib));
  if (!id.is_ok()) return;

  std::uint64_t counter = 0;
  (*rt_dst)->set_target_ptr(&counter);
  Bytes payload{0};

  // Warm the target: pays the one-time JIT (charged to virtual time).
  (void)(*rt_src)->send_ifunc(pair.dst, *id, as_span(payload));
  (void)pair.fabric.run_until([&] { return counter == 1; });
  out.real_jit_ms =
      static_cast<double>((*rt_dst)->stats().real_jit_ns_total) * 1e-6;

  TsiBreakdown& row = uncached ? out.uncached_bitcode : out.cached_bitcode;
  std::int64_t total_ns = 0;
  for (int i = 0; i < kLatencyPings; ++i) {
    const auto t0 = pair.fabric.now();
    (void)(*rt_src)->send_ifunc(pair.dst, *id, as_span(payload));
    (void)pair.fabric.run_until(
        [&] { return counter == static_cast<std::uint64_t>(i) + 2; });
    total_ns += pair.fabric.now() - t0;
  }
  row.total_us = ns_to_us(total_ns / kLatencyPings);
  row.lookup_exec_us = ns_to_us(profile.ifunc_exec_ns);
  row.transmission_us = row.total_us - row.lookup_exec_us;
  if (uncached) row.jit_ms = static_cast<double>(profile.jit_cost_ns) * 1e-6;

  const std::uint64_t base = counter;
  const auto t0 = pair.fabric.now();
  for (int i = 0; i < kRateMessages; ++i) {
    (void)(*rt_src)->send_ifunc(pair.dst, *id, as_span(payload));
  }
  (void)pair.fabric.run_until([&] { return counter == base + kRateMessages; });
  const double rate =
      kRateMessages * 1e9 / static_cast<double>(pair.fabric.now() - t0);
  (uncached ? out.uncached_rate : out.cached_rate) = rate;
}

}  // namespace

TsiResults run_tsi(Platform platform) {
  const HwProfile& profile = profile_for(platform);
  TsiResults out;
  measure_am(profile, out);
  measure_ifunc(profile, /*uncached=*/false, out);
  measure_ifunc(profile, /*uncached=*/true, out);
  return out;
}

void print_tsi_table(const char* title, const TsiResults& r) {
  std::printf("=== %s: TSI overhead breakdown ===\n", title);
  std::printf("%-14s %16s %18s %16s\n", "Stage", "Active Message",
              "Uncached Bitcode", "Cached Bitcode");
  std::printf("%-14s %13.2f us %15.2f us %13.2f us\n", "Lookup+Exec",
              r.active_message.lookup_exec_us,
              r.uncached_bitcode.lookup_exec_us,
              r.cached_bitcode.lookup_exec_us);
  std::printf("%-14s %16s    (%8.2f ms) %16s\n", "JIT", "N/A",
              r.uncached_bitcode.jit_ms, "N/A");
  std::printf("%-14s %13.2f us %15.2f us %13.2f us\n", "Transmission",
              r.active_message.transmission_us,
              r.uncached_bitcode.transmission_us,
              r.cached_bitcode.transmission_us);
  std::printf("%-14s %13.2f us %15.2f us %13.2f us\n", "Total",
              r.active_message.total_us, r.uncached_bitcode.total_us,
              r.cached_bitcode.total_us);
  std::printf("(real host JIT of the TSI archive: %.2f ms; the virtual JIT "
              "charge is the paper-calibrated constant)\n\n",
              r.real_jit_ms);
}

void print_rate_table(const char* title, const TsiResults& r) {
  const double lat_am = r.active_message.total_us;
  const double lat_unc = r.uncached_bitcode.total_us;
  const double lat_c = r.cached_bitcode.total_us;
  std::printf("=== %s: TSI latencies and message rates ===\n", title);
  std::printf("%-18s %10s %9s %16s %9s\n", "Method", "Latency", "Speedup",
              "Message Rate", "Speedup");
  std::printf("%-18s %7.2f us %8.2f%% %12.0f m/s %8.2f%%\n", "Active Message",
              lat_am, (lat_am - lat_c) / lat_c * 100.0, r.am_rate,
              (r.cached_rate - r.am_rate) / r.am_rate * 100.0);
  std::printf("%-18s %7.2f us %9s %12.0f m/s %9s\n", "Cached Bitcode", lat_c,
              "-", r.cached_rate, "-");
  std::printf("%-18s %7.2f us %8.2f%% %12.0f m/s %8.2f%%\n",
              "Uncached Bitcode", lat_unc, (lat_unc - lat_c) / lat_c * 100.0,
              r.uncached_rate,
              (r.cached_rate - r.uncached_rate) / r.uncached_rate * 100.0);
  std::printf("\n");
}

namespace {

StatusOr<DapcPoint> run_one_dapc(Platform platform, std::size_t servers,
                                 xrdma::ChaseMode mode, std::uint64_t depth,
                                 std::uint64_t chases,
                                 std::int64_t hll_guard_ns_override,
                                 std::uint64_t window = 1,
                                 std::size_t batch_frames = 1) {
  hetsim::ClusterConfig cluster_config;
  cluster_config.platform = platform;
  cluster_config.server_count = servers;
  cluster_config.hll_guard_ns_override = hll_guard_ns_override;
  TC_ASSIGN_OR_RETURN(auto cluster, hetsim::Cluster::create(cluster_config));

  xrdma::DapcConfig config;
  config.depth = depth;
  config.chases = chases;
  config.window = window;
  config.batch_frames = batch_frames;
  TC_ASSIGN_OR_RETURN(auto driver,
                      xrdma::DapcDriver::create(*cluster, mode, config));
  TC_ASSIGN_OR_RETURN(xrdma::DapcResult result, driver->run());
  if (result.correct != result.completed) {
    return internal_error("DAPC produced incorrect chase results");
  }
  DapcPoint point;
  point.rate = result.chases_per_second;
  return point;
}

}  // namespace

std::vector<DapcSeries> dapc_depth_sweep(
    Platform platform, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& depths, std::uint64_t chases,
    std::int64_t hll_guard_ns_override) {
  std::vector<DapcSeries> out;
  for (xrdma::ChaseMode mode : modes) {
    DapcSeries series;
    series.mode = mode;
    for (std::uint64_t depth : depths) {
      auto point = run_one_dapc(platform, servers, mode, depth, chases,
                                hll_guard_ns_override);
      if (!point.is_ok()) {
        std::fprintf(stderr, "dapc %s depth=%llu failed: %s\n",
                     chase_mode_name(mode),
                     static_cast<unsigned long long>(depth),
                     point.status().to_string().c_str());
        continue;
      }
      point->x = depth;
      series.points.push_back(*point);
    }
    out.push_back(std::move(series));
  }
  return out;
}

std::vector<DapcSeries> dapc_server_sweep(
    Platform platform, const std::vector<std::size_t>& server_counts,
    std::uint64_t depth, const std::vector<xrdma::ChaseMode>& modes,
    std::uint64_t chases, std::int64_t hll_guard_ns_override) {
  std::vector<DapcSeries> out;
  for (xrdma::ChaseMode mode : modes) {
    DapcSeries series;
    series.mode = mode;
    for (std::size_t servers : server_counts) {
      auto point = run_one_dapc(platform, servers, mode, depth, chases,
                                hll_guard_ns_override);
      if (!point.is_ok()) {
        std::fprintf(stderr, "dapc %s servers=%zu failed: %s\n",
                     chase_mode_name(mode), servers,
                     point.status().to_string().c_str());
        continue;
      }
      point->x = servers;
      series.points.push_back(*point);
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_dapc_figure(const char* title, const char* x_label,
                       const std::vector<DapcSeries>& series,
                       const char* rate_note) {
  std::printf("=== %s ===\n", title);
  std::printf("%-8s", x_label);
  for (const DapcSeries& s : series) {
    std::printf(" %18s", chase_mode_name(s.mode));
  }
  const DapcSeries* get_series = nullptr;
  const DapcSeries* bitcode_series = nullptr;
  for (const DapcSeries& s : series) {
    if (s.mode == xrdma::ChaseMode::kGet) get_series = &s;
    if (s.mode == xrdma::ChaseMode::kCachedBitcode) bitcode_series = &s;
  }
  if (get_series && bitcode_series) std::printf(" %18s", "get-bitcode %diff");
  std::printf("\n");

  const std::size_t rows =
      series.empty() ? 0 : series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%-8llu",
                static_cast<unsigned long long>(series.front().points[i].x));
    for (const DapcSeries& s : series) {
      if (i < s.points.size()) {
        std::printf(" %12.1f c/s ", s.points[i].rate);
      } else {
        std::printf(" %18s", "-");
      }
    }
    if (get_series && bitcode_series && i < get_series->points.size() &&
        i < bitcode_series->points.size()) {
      const double get = get_series->points[i].rate;
      const double bitcode = bitcode_series->points[i].rate;
      std::printf(" %17.1f%%", (bitcode - get) / get * 100.0);
    }
    std::printf("\n");
  }
  std::printf("%s\n\n", rate_note);
}

std::vector<DapcSeries> dapc_window_sweep(
    Platform platform, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& windows, std::uint64_t depth,
    std::uint64_t chases, std::size_t batch_frames) {
  std::vector<DapcSeries> out;
  for (xrdma::ChaseMode mode : modes) {
    DapcSeries series;
    series.mode = mode;
    for (std::uint64_t window : windows) {
      const std::size_t batch =
          batch_frames != 0
              ? batch_frames
              : static_cast<std::size_t>(std::min<std::uint64_t>(window, 8));
      auto point = run_one_dapc(platform, servers, mode, depth, chases,
                                /*hll_guard_ns_override=*/-1, window, batch);
      if (!point.is_ok()) {
        std::fprintf(stderr, "dapc %s window=%llu failed: %s\n",
                     chase_mode_name(mode),
                     static_cast<unsigned long long>(window),
                     point.status().to_string().c_str());
        continue;
      }
      point->x = window;
      series.points.push_back(*point);
    }
    out.push_back(std::move(series));
  }
  return out;
}

std::vector<DapcSeries> dapc_initiator_sweep(
    Platform platform, hetsim::Backend backend, std::size_t servers,
    const std::vector<xrdma::ChaseMode>& modes,
    const std::vector<std::uint64_t>& initiator_counts, std::uint64_t depth,
    std::uint64_t chases, std::uint64_t window) {
  std::vector<DapcSeries> out;
  for (xrdma::ChaseMode mode : modes) {
    DapcSeries series;
    series.mode = mode;
    for (std::uint64_t initiators : initiator_counts) {
      auto point = [&]() -> StatusOr<DapcPoint> {
        hetsim::ClusterConfig cluster_config;
        cluster_config.platform = platform;
        cluster_config.backend = backend;
        cluster_config.server_count = servers;
        cluster_config.client_count = initiators;
        TC_ASSIGN_OR_RETURN(auto cluster,
                            hetsim::Cluster::create(cluster_config));
        xrdma::DapcConfig config;
        config.depth = depth;
        config.chases = chases;
        config.window = window;
        config.initiators = initiators;
        TC_ASSIGN_OR_RETURN(auto driver,
                            xrdma::DapcDriver::create(*cluster, mode, config));
        DapcPoint p;
        if (backend == hetsim::Backend::kSim) {
          // Virtual time is deterministic: one run is the exact answer.
          TC_ASSIGN_OR_RETURN(xrdma::DapcResult result, driver->run());
          if (result.correct != result.completed) {
            return internal_error("DAPC produced incorrect chase results");
          }
          p.rate = result.chases_per_second;
        } else {
          // Wall clock is noisy: a full warmup run first (thread spawn,
          // code caches, allocator) so no rep pays one-time costs, then
          // the median of three timed repetitions — single samples made
          // the fig_mt_scale curves non-monotone run to run.
          TC_ASSIGN_OR_RETURN(xrdma::DapcResult warm, driver->run());
          if (warm.correct != warm.completed) {
            return internal_error("DAPC warmup produced incorrect results");
          }
          std::vector<double> rates;
          for (int rep = 0; rep < 3; ++rep) {
            TC_ASSIGN_OR_RETURN(xrdma::DapcResult result, driver->run());
            if (result.correct != result.completed) {
              return internal_error("DAPC produced incorrect chase results");
            }
            rates.push_back(result.chases_per_second);
          }
          std::sort(rates.begin(), rates.end());
          p.rate = rates[rates.size() / 2];
        }
        return p;
      }();
      if (!point.is_ok()) {
        std::fprintf(stderr, "dapc %s backend=%s initiators=%llu failed: %s\n",
                     chase_mode_name(mode), hetsim::backend_name(backend),
                     static_cast<unsigned long long>(initiators),
                     point.status().to_string().c_str());
        continue;
      }
      point->x = initiators;
      series.points.push_back(*point);
    }
    out.push_back(std::move(series));
  }
  return out;
}

// --- whole-figure drivers -----------------------------------------------------

int run_dapc_depth_figure(const DapcFigureSpec& spec, std::size_t servers,
                          std::size_t fast_servers, int argc, char** argv) {
  const std::size_t n = fast_mode() ? fast_servers : servers;
  const std::vector<std::uint64_t> depths =
      fast_mode()
          ? std::vector<std::uint64_t>{1, 16, 256}
          : std::vector<std::uint64_t>{1, 4, 16, 64, 256, 1024, 4096};
  auto series = dapc_depth_sweep(spec.platform, n, spec.modes, depths);
  print_dapc_figure(spec.title, "depth", series);
  append_json(json_path_from_args(argc, argv),
              dapc_series_json(spec.bench, spec.platform_tag, "depth",
                               series));
  return 0;
}

int run_dapc_scale_figure(const DapcFigureSpec& spec,
                          const std::vector<std::size_t>& server_counts,
                          int argc, char** argv) {
  const std::uint64_t depth = fast_mode() ? 256 : 4096;
  const std::vector<std::size_t> counts =
      fast_mode() ? std::vector<std::size_t>{2, 4} : server_counts;
  auto series = dapc_server_sweep(spec.platform, counts, depth, spec.modes);
  print_dapc_figure(spec.title, "servers", series);
  append_json(json_path_from_args(argc, argv),
              dapc_series_json(spec.bench, spec.platform_tag, "servers",
                               series));
  return 0;
}

// --- generic labeled series ---------------------------------------------------

StatusOr<double> measure_warm(
    const std::function<StatusOr<double>()>& run_once, bool wall_clock) {
  TC_RETURN_IF_ERROR(run_once().status());  // warm: untimed first round
  if (!wall_clock) return run_once();       // deterministic: exact answer
  std::vector<double> laps;
  for (int rep = 0; rep < 3; ++rep) {
    TC_ASSIGN_OR_RETURN(double lap, run_once());
    laps.push_back(lap);
  }
  std::sort(laps.begin(), laps.end());
  return laps[laps.size() / 2];
}

namespace {

std::string json_number(double value);  // defined with the JSON helpers below

/// Integral values (e.g. nanosecond latencies) serialize exactly; %.6g
/// would round anything past six significant digits.
std::string json_value(double value) {
  if (value == std::floor(value) && std::abs(value) < 9.2e18) {
    return std::to_string(static_cast<long long>(value));
  }
  return json_number(value);
}

}  // namespace

std::string labeled_series_json(const char* bench, const char* platform,
                                const char* x_label, const char* unit,
                                const std::vector<LabeledSeries>& series) {
  std::string out = std::string("{\"bench\":\"") + bench +
                    "\",\"platform\":\"" + platform + "\",\"x\":\"" +
                    x_label + "\",\"unit\":\"" + unit + "\",\"series\":[";
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s != 0) out += ",";
    out += "{\"mode\":\"" + series[s].label + "\",\"points\":[";
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"x\":" + std::to_string(series[s].points[i].x) +
             ",\"y\":" + json_value(series[s].points[i].value) + "}";
    }
    out += "]}";
  }
  return out + "]}";
}

void print_labeled_table(const char* title, const char* x_label,
                         const std::vector<LabeledSeries>& series,
                         double display_scale, const char* display_suffix) {
  std::printf("%s\n", title);
  std::printf("%10s", x_label);
  for (const LabeledSeries& s : series) {
    std::printf("  %26s", s.label.c_str());
  }
  std::printf("\n");
  std::vector<std::uint64_t> xs;
  for (const LabeledSeries& s : series) {
    for (const LabeledPoint& p : s.points) xs.push_back(p.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  for (std::uint64_t x : xs) {
    std::printf("%10llu", static_cast<unsigned long long>(x));
    for (const LabeledSeries& s : series) {
      double value = -1.0;
      for (const LabeledPoint& p : s.points) {
        if (p.x == x) value = p.value * display_scale;
      }
      std::printf("  %24.1f%2s", value, display_suffix);
    }
    std::printf("\n");
  }
}

// --- machine-readable output (--json) ----------------------------------------

std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) return argv[i + 1];
  }
  return "";
}

std::vector<hetsim::Backend> backends_from_args(
    int argc, char** argv, std::vector<hetsim::Backend> defaults) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--backends") != 0) continue;
    std::vector<hetsim::Backend> out;
    std::string list = argv[i + 1];
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string name = list.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      if (name == "sim") {
        out.push_back(hetsim::Backend::kSim);
      } else if (name == "shm") {
        out.push_back(hetsim::Backend::kShm);
      } else if (name == "socket") {
        out.push_back(hetsim::Backend::kSocket);
      } else {
        std::fprintf(stderr,
                     "--backends: unknown backend '%s' (want a comma-"
                     "separated list of sim, shm, socket)\n", name.c_str());
        std::exit(2);
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    return out;
  }
  return defaults;
}

void append_json(const std::string& path, const std::string& object) {
  if (path.empty()) return;
  std::string document;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      document.assign((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    }
  }
  // Splice into the existing top-level array (created on first append), so
  // the file is a valid JSON document after every bench run.
  const std::size_t end = document.find_last_of(']');
  if (end == std::string::npos) {
    document = "[\n" + object + "\n]\n";
  } else {
    document = document.substr(0, end);
    while (!document.empty() &&
           (document.back() == '\n' || document.back() == ' ')) {
      document.pop_back();
    }
    document += ",\n" + object + "\n]\n";
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << document;
}

namespace {

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string tsi_breakdown_json(const TsiBreakdown& b) {
  std::string out = "{\"lookup_exec_us\":" + json_number(b.lookup_exec_us) +
                    ",\"transmission_us\":" + json_number(b.transmission_us) +
                    ",\"total_us\":" + json_number(b.total_us);
  if (b.jit_ms >= 0) out += ",\"jit_ms\":" + json_number(b.jit_ms);
  return out + "}";
}

}  // namespace

std::string dapc_series_json(const char* bench, const char* platform,
                             const char* x_label,
                             const std::vector<DapcSeries>& series) {
  std::string out = "{\"bench\":\"" + std::string(bench) +
                    "\",\"platform\":\"" + platform + "\",\"x\":\"" +
                    x_label + "\",\"unit\":\"chases_per_second\",\"series\":[";
  for (std::size_t s = 0; s < series.size(); ++s) {
    if (s != 0) out += ",";
    out += "{\"mode\":\"" + std::string(chase_mode_name(series[s].mode)) +
           "\",\"points\":[";
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      if (i != 0) out += ",";
      out += "{\"x\":" +
             std::to_string(series[s].points[i].x) + ",\"rate\":" +
             json_number(series[s].points[i].rate) + "}";
    }
    out += "]}";
  }
  return out + "]}";
}

std::string tsi_json(const char* bench, const char* platform,
                     const TsiResults& r) {
  return "{\"bench\":\"" + std::string(bench) + "\",\"platform\":\"" +
         platform + "\",\"tsi\":{\"active_message\":" +
         tsi_breakdown_json(r.active_message) + ",\"uncached_bitcode\":" +
         tsi_breakdown_json(r.uncached_bitcode) + ",\"cached_bitcode\":" +
         tsi_breakdown_json(r.cached_bitcode) +
         ",\"rates_per_sec\":{\"active_message\":" + json_number(r.am_rate) +
         ",\"uncached_bitcode\":" + json_number(r.uncached_rate) +
         ",\"cached_bitcode\":" + json_number(r.cached_rate) +
         "},\"real_host_jit_ms\":" + json_number(r.real_jit_ms) + "}}";
}

bool fast_mode() { return std::getenv("TC_BENCH_FAST") != nullptr; }

}  // namespace tc::bench
