// Reproduces Table IV: Ookami TSI latencies and message rates.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kOokami);
  tc::bench::print_rate_table("Table IV / Ookami A64FX", results);
  return 0;
}
