// Reproduces Table IV: Ookami TSI latencies and message rates.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kOokami);
  tc::bench::print_rate_table("Table IV / Ookami A64FX", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table4", "ookami_a64fx", results));
  return 0;
}
