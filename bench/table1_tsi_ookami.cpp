// Reproduces Table I: Ookami (A64FX pair) TSI overhead breakdown.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kOokami);
  tc::bench::print_tsi_table("Table I / Ookami A64FX", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table1", "ookami_a64fx", results));
  return 0;
}
