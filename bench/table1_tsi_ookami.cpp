// Reproduces Table I: Ookami (A64FX pair) TSI overhead breakdown.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kOokami);
  tc::bench::print_tsi_table("Table I / Ookami A64FX", results);
  return 0;
}
