// Micro/ablation benchmarks for the wire layer (google-benchmark):
// frame assembly/validation cost, the size effect of truncation (the §III-D
// caching ablation), and fat-bitcode archive handling vs entry count.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/frame.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernel_builder.hpp"

namespace {

using namespace tc;

Bytes random_bytes(std::size_t n, std::uint64_t seed = 42) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

void BM_FrameBuild(benchmark::State& state) {
  const Bytes code = random_bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes payload = random_bytes(64, 7);
  for (auto _ : state) {
    auto frame = core::Frame::build(1, ir::CodeRepr::kBitcode, as_span(code),
                                    as_span(payload), 0);
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(code.size()));
}
BENCHMARK(BM_FrameBuild)->Arg(65)->Arg(5159)->Arg(65536);

void BM_FrameValidateFull(benchmark::State& state) {
  const Bytes code = random_bytes(static_cast<std::size_t>(state.range(0)));
  auto frame = core::Frame::build(1, ir::CodeRepr::kBitcode, as_span(code),
                                  as_span(random_bytes(64, 9)), 0);
  for (auto _ : state) {
    auto ok = core::Frame::validate(frame->full_view());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FrameValidateFull)->Arg(5159)->Arg(65536);

void BM_FrameValidateTruncated(benchmark::State& state) {
  auto frame =
      core::Frame::build(1, ir::CodeRepr::kBitcode, as_span(random_bytes(5159)),
                         as_span(random_bytes(64, 9)), 0);
  for (auto _ : state) {
    auto ok = core::Frame::validate(frame->truncated_view());
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FrameValidateTruncated);

void BM_HeaderPeek(benchmark::State& state) {
  auto frame =
      core::Frame::build(1, ir::CodeRepr::kBitcode, as_span(random_bytes(512)),
                         as_span(random_bytes(16, 3)), 0);
  for (auto _ : state) {
    auto header = core::Frame::peek_header(frame->full_view());
    benchmark::DoNotOptimize(header);
  }
}
BENCHMARK(BM_HeaderPeek);

// Ablation: the caching protocol's wire saving — bytes of a truncated vs a
// full send for the real TSI archive.
void BM_TruncationSaving(benchmark::State& state) {
  auto archive =
      ir::build_default_fat_kernel(ir::KernelKind::kTargetSideIncrement);
  const Bytes serialized = archive->serialize();
  auto frame = core::Frame::build(1, ir::CodeRepr::kBitcode,
                                  as_span(serialized), as_span(Bytes{0}), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame->full_size());
    benchmark::DoNotOptimize(frame->truncated_size());
  }
  state.counters["full_bytes"] = static_cast<double>(frame->full_size());
  state.counters["truncated_bytes"] =
      static_cast<double>(frame->truncated_size());
  state.counters["saving_ratio"] =
      static_cast<double>(frame->full_size()) /
      static_cast<double>(frame->truncated_size());
}
BENCHMARK(BM_TruncationSaving);

// Ablation: fat-bitcode archive size/serialize cost vs number of ISAs.
void BM_FatArchiveSerialize(benchmark::State& state) {
  ir::FatBitcode archive;
  const int entries = static_cast<int>(state.range(0));
  const char* triples[] = {"x86_64-pc-linux-gnu", "aarch64-unknown-linux-gnu",
                           "riscv64-unknown-linux-gnu",
                           "powerpc64le-unknown-linux-gnu"};
  for (int i = 0; i < entries; ++i) {
    (void)archive.add_entry({triples[i], "", ""}, random_bytes(2048, i + 1));
  }
  for (auto _ : state) {
    Bytes wire = archive.serialize();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["archive_bytes"] =
      static_cast<double>(archive.serialize().size());
}
BENCHMARK(BM_FatArchiveSerialize)->Arg(1)->Arg(2)->Arg(4);

void BM_FatArchiveSelect(benchmark::State& state) {
  auto archive = ir::build_default_fat_kernel(ir::KernelKind::kChaser);
  for (auto _ : state) {
    auto entry = archive->select(ir::host_triple());
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_FatArchiveSelect);

}  // namespace

BENCHMARK_MAIN();
