// Reproduces Figure 7: DAPC chase rate vs depth, Thor 16 Xeon servers.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  const std::size_t servers = bench::fast_mode() ? 4 : 16;
  const std::vector<std::uint64_t> depths =
      bench::fast_mode() ? std::vector<std::uint64_t>{1, 16, 256}
                         : std::vector<std::uint64_t>{1, 4, 16, 64, 256, 1024, 4096};
  auto series = bench::dapc_depth_sweep(
      hetsim::Platform::kThorXeon, servers,
      {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
       xrdma::ChaseMode::kCachedBitcode,
       xrdma::ChaseMode::kInterpreted},
      depths);
  bench::print_dapc_figure(
      "Figure 7: Thor 16-server DAPC depth sweep (Xeon client and servers)",
      "depth", series);
  bench::append_json(
      bench::json_path_from_args(argc, argv),
      bench::dapc_series_json("fig7", "thor_xeon", "depth",
                               series));
  return 0;
}
