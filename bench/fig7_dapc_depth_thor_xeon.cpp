// Reproduces Figure 7: DAPC chase rate vs depth, Thor 16 Xeon servers.
#include "bench_util.hpp"
using namespace tc;
int main(int argc, char** argv) {
  return bench::run_dapc_depth_figure(
      {"fig7", "thor_xeon", hetsim::Platform::kThorXeon,
       "Figure 7: Thor 16-server DAPC depth sweep (Xeon client and servers)",
       {xrdma::ChaseMode::kActiveMessage, xrdma::ChaseMode::kGet,
        xrdma::ChaseMode::kCachedBitcode, xrdma::ChaseMode::kInterpreted}},
      /*servers=*/16, /*fast_servers=*/4, argc, argv);
}
