// Reproduces Table VI: Thor Xeon TSI latencies and message rates.
#include "bench_util.hpp"
int main(int argc, char** argv) {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorXeon);
  tc::bench::print_rate_table("Table VI / Thor Xeon", results);
  tc::bench::append_json(
      tc::bench::json_path_from_args(argc, argv),
      tc::bench::tsi_json("table6", "thor_xeon", results));
  return 0;
}
