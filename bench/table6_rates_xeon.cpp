// Reproduces Table VI: Thor Xeon TSI latencies and message rates.
#include "bench_util.hpp"
int main() {
  auto results = tc::bench::run_tsi(tc::hetsim::Platform::kThorXeon);
  tc::bench::print_rate_table("Table VI / Thor Xeon", results);
  return 0;
}
