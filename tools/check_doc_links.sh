#!/usr/bin/env bash
# Doc-link checker: fails if a markdown file references a repo path that
# does not exist. Scans (a) relative markdown links [text](path) and
# (b) backtick-quoted repo paths like `src/core/runtime.hpp` or
# `bench/fig_async_window`. External URLs and section anchors are ignored.
#
# Usage: tools/check_doc_links.sh [file...]   (default: the repo's top-level
# markdown plus tools/README.md)
set -uo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md EXPERIMENTS.md ROADMAP.md CHANGES.md tools/README.md)
fi

fail=0

check_path() {
  local doc=$1 ref=$2
  # Strip a trailing section anchor.
  local path=${ref%%#*}
  [ -z "$path" ] && return 0
  case $path in
    http://*|https://*|mailto:*) return 0 ;;
    # Absolute paths point outside the repo (e.g. ROADMAP's references to
    # the /root/related/ corpus on the growth machine) — not ours to check.
    /*) return 0 ;;
  esac
  local base
  base=$(dirname "$doc")
  if [ -e "$path" ] || [ -e "$base/$path" ]; then
    return 0
  fi
  # Module paths may omit the src/ prefix (`vm/bytecode.hpp`), and bench
  # binaries are referenced without the build prefix or .cpp extension
  # (`bench/fig5_...`, `build/tc_inspect`); resolve those against their own
  # directories only, so a wrong-directory reference still fails.
  local stripped=${path#build/}
  if [ -e "src/$path" ] || [ -e "$stripped" ] ||
     ls "${path}".* > /dev/null 2>&1 ||
     ls "bench/${stripped}".* > /dev/null 2>&1 ||
     ls "tools/${stripped}".* > /dev/null 2>&1; then
    return 0
  fi
  echo "ERROR: $doc references missing path: $ref"
  fail=1
}

for doc in "${files[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "ERROR: doc file missing: $doc"
    fail=1
    continue
  fi
  # Markdown links [text](path)
  while IFS= read -r ref; do
    check_path "$doc" "$ref"
  done < <(grep -oE '\]\([^)[:space:]]+\)' "$doc" | sed 's/^](//; s/)$//')
  # Backtick-quoted repo paths (must contain a slash to look like a path).
  while IFS= read -r ref; do
    check_path "$doc" "$ref"
  done < <(grep -oE '`[A-Za-z0-9_./-]+/[A-Za-z0-9_./-]+`' "$doc" |
           tr -d '`' | grep -vE '^(bits|std|usr)/' )
done

if [ "$fail" -ne 0 ]; then
  echo "doc-link check FAILED"
  exit 1
fi
echo "doc-link check passed (${files[*]})"
