// tc_launch — run a Three-Chains cluster as real processes.
//
//   tc_launch --role smoke --nodes 3
//       fork 3 node processes over Unix-domain sockets, run the mesh
//       bring-up check (sends + AMs + PUTs in every direction)
//   tc_launch --role conformance --nodes 3
//       the transport conformance contract (FIFO, AM dispatch/miss,
//       PUT/GET + bounds faults, ifunc NACK recovery) across processes
//   tc_launch --role dapc --nodes 4 --depth 64 --chases 256
//       distributed pointer chase: node 0 chases through shards held by
//       3 server processes, traveling-AM and client-GET modes, verified
//       against the reference walk
//   tc_launch --role dapc --nodes 2 --self 0 --endpoint unix:/tmp/a.sock \
//             --endpoint unix:/tmp/b.sock
//       no fork: run ONLY node 0 in this process against the listed
//       endpoints (start the other node yourself — possibly on another
//       machine with tcp:<ip>:<port> endpoints)
//
// Exit code 0 only when every node finished its role cleanly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hetsim/mp_launch.hpp"

using namespace tc;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: tc_launch --role smoke|conformance|dapc [--nodes N]\n"
      "                 [--depth D] [--chases C] [--entries E] [--seed S]\n"
      "                 [--connect-timeout-ms T] [--verbose]\n"
      "                 [--self I --endpoint SPEC ... (one per node)]\n"
      "  Without --self: forks N local node processes over unix sockets.\n"
      "  With --self: runs only node I in this process; every node's\n"
      "  endpoint must be listed in order (unix:<path> or tcp:<ip>:<port>).\n");
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mp::MpOptions options;
  bool have_role = false;
  long long self = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tc_launch: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--role") {
      auto role = mp::role_from_name(next());
      if (!role.is_ok()) {
        std::fprintf(stderr, "tc_launch: %s\n",
                     role.status().to_string().c_str());
        return 2;
      }
      options.role = *role;
      have_role = true;
    } else if (arg == "--nodes" && parse_u64(next(), v)) {
      options.node_count = v;
    } else if (arg == "--depth" && parse_u64(next(), v)) {
      options.depth = v;
    } else if (arg == "--chases" && parse_u64(next(), v)) {
      options.chases = v;
    } else if (arg == "--entries" && parse_u64(next(), v)) {
      options.entries_per_shard = v;
    } else if (arg == "--seed" && parse_u64(next(), v)) {
      options.seed = v;
    } else if (arg == "--connect-timeout-ms" && parse_u64(next(), v)) {
      options.connect_timeout_ms = static_cast<std::int64_t>(v);
    } else if (arg == "--self" && parse_u64(next(), v)) {
      self = static_cast<long long>(v);
    } else if (arg == "--endpoint") {
      options.endpoints.push_back(next());
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "tc_launch: unknown argument %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (!have_role) {
    usage();
    return 2;
  }
  if (!options.endpoints.empty()) {
    options.node_count = options.endpoints.size();
  }

  if (self >= 0) {
    // Manual deployment: this process is exactly one node.
    if (options.endpoints.size() != options.node_count) {
      std::fprintf(stderr,
                   "tc_launch: --self needs one --endpoint per node\n");
      return 2;
    }
    return mp::run_node(options, static_cast<fabric::NodeId>(self));
  }

  const Status status = mp::launch(options);
  if (!status.is_ok()) {
    std::fprintf(stderr, "tc_launch: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("[tc_launch] %s: %zu nodes ok\n", mp::role_name(options.role),
              options.node_count);
  return 0;
}
