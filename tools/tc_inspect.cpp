// tc_inspect — command-line inspector for Three-Chains wire artifacts.
//
//   tc_inspect demo                      build the TSI demo archive and dump it
//   tc_inspect archive <file>            dump a serialized fat archive
//                                        (TCFB bitcode / TCFO object / TCFP portable)
//   tc_inspect frame <file>              decode an ifunc message frame
//   tc_inspect trace <file> [n]          digest a Chrome trace-event JSON
//                                        (fig_workloads --trace output):
//                                        per-request hop chains with node,
//                                        tier, repr and service time
//   tc_inspect disas <file> [triple]     disassemble one archive entry —
//                                        portable entries print vm mnemonics,
//                                        bitcode entries print .ll (needs LLVM)
//   tc_inspect disas <file> --fused      portable entries only: apply the
//                                        node-local superinstruction pass
//                                        first and show the fused windows
//                                        (what the interpreter actually runs)
//   tc_inspect emit-demo <file>          write the TSI demo archive to a file
//   tc_inspect emit-vm-demo <file>       write the portable TSI archive
//   tc_inspect kernels                   list the stock KernelKind catalogue
//                                        (wire name + one-line description)
//
// Useful when debugging what actually travels on the wire: entry triples,
// code sizes, deps manifests, header fields, delimiter placement.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/frame.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernels.hpp"
#include "obs/export.hpp"
#include "vm/bytecode.hpp"
#include "vm/fuse.hpp"
#include "vm/lower.hpp"

#if TC_WITH_LLVM
#include "ir/kernel_builder.hpp"
#include "ir/textual.hpp"
#endif

using namespace tc;

namespace {

StatusOr<Bytes> read_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return not_found(std::string("cannot open ") + path);
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return data;
}

int dump_archive(const ir::FatBitcode& archive) {
  std::printf("fat archive: repr=%s entries=%zu deps=%zu code=%zu bytes "
              "(serialized %zu bytes)\n",
              ir::code_repr_name(archive.repr()), archive.entries().size(),
              archive.dependencies().size(), archive.code_size(),
              archive.serialize().size());
  for (const ir::ArchiveEntry& entry : archive.entries()) {
    std::printf("  entry: triple=%-28s cpu=%-12s %zu bytes\n",
                entry.target.triple.c_str(),
                entry.target.cpu.empty() ? "(generic)"
                                         : entry.target.cpu.c_str(),
                entry.code.size());
  }
  for (const std::string& dep : archive.dependencies()) {
    std::printf("  dep: %s\n", dep.c_str());
  }
  return 0;
}

int cmd_archive(const char* path) {
  auto data = read_file(path);
  if (!data.is_ok()) {
    std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
    return 1;
  }
  auto archive = ir::FatBitcode::deserialize(as_span(*data));
  if (!archive.is_ok()) {
    std::fprintf(stderr, "not a fat archive: %s\n",
                 archive.status().to_string().c_str());
    return 1;
  }
  return dump_archive(*archive);
}

int cmd_frame(const char* path) {
  auto data = read_file(path);
  if (!data.is_ok()) {
    std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
    return 1;
  }
  auto header = core::Frame::peek_header(as_span(*data));
  if (!header.is_ok()) {
    std::fprintf(stderr, "bad frame header: %s\n",
                 header.status().to_string().c_str());
    return 1;
  }
  auto has_code = core::Frame::validate(as_span(*data));
  std::printf("ifunc frame: id=%016llx repr=%s%s origin=node%u\n",
              static_cast<unsigned long long>(header->ifunc_id),
              ir::code_repr_name(static_cast<ir::CodeRepr>(header->repr)),
              header->code_only ? " (code-only)" : "",
              header->origin_node);
  if (header->traced()) {
    std::printf("  trace:   id=%llu hop=%u parent_span=%u\n",
                static_cast<unsigned long long>(header->trace.trace_id),
                header->trace.hop, header->trace.parent_span);
  }
  std::printf("  payload: %u bytes\n", header->payload_size);
  std::printf("  code:    %u bytes (%s)\n", header->code_size,
              has_code.is_ok() && *has_code ? "present"
                                            : "truncated / not delivered");
  std::printf("  sizes:   truncated=%zu full=%zu\n",
              header->prefix_size() + header->payload_size + core::kMagicSize,
              header->prefix_size() + header->payload_size + core::kMagicSize +
                  header->code_size + core::kMagicSize);
  if (has_code.is_ok() && *has_code) {
    auto archive = ir::FatBitcode::deserialize(
        core::Frame::code_view(as_span(*data), *header));
    if (archive.is_ok()) {
      std::printf("  embedded ");
      dump_archive(*archive);
    }
  }
  return 0;
}

int disas_portable(const ir::ArchiveEntry& entry, bool fused) {
  auto program = vm::Program::deserialize(as_span(entry.code));
  if (!program.is_ok()) {
    std::fprintf(stderr, "bad portable program: %s\n",
                 program.status().to_string().c_str());
    return 1;
  }
  if (fused) {
    // What the interpreter actually executes: the wire program after the
    // node-local superinstruction pass (vm/fuse.hpp). The wire bytes never
    // carry fused opcodes.
    vm::FuseStats stats;
    vm::Program rewritten = vm::fuse_program(*program, &stats);
    std::printf("superinstructions: %zu windows (%zu ld.cmp.br, "
                "%zu ld.alu.br, %zu ldi.run) covering %zu of %zu instrs\n",
                stats.windows(), stats.ld_cmp_br, stats.ld_alu_br,
                stats.ldi_runs, stats.instrs_covered, program->code().size());
    std::fputs(vm::disassemble(rewritten).c_str(), stdout);
    return 0;
  }
  std::fputs(vm::disassemble(*program).c_str(), stdout);
  return 0;
}

int cmd_disas(const char* path, const char* triple, bool fused) {
  auto data = read_file(path);
  if (!data.is_ok()) {
    std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
    return 1;
  }
  auto archive = ir::FatBitcode::deserialize(as_span(*data));
  if (!archive.is_ok()) {
    std::fprintf(stderr, "not a fat archive: %s\n",
                 archive.status().to_string().c_str());
    return 1;
  }
  // Portable archives (or an explicit "portable" triple) disassemble to vm
  // mnemonics — no LLVM involved.
  if (triple != nullptr && std::string(triple) == ir::kTriplePortable) {
    auto entry = archive->select_portable();
    if (!entry.is_ok()) {
      std::fprintf(stderr, "%s\n", entry.status().to_string().c_str());
      return 1;
    }
    return disas_portable(**entry, fused);
  }
  if (triple == nullptr && archive->repr() == ir::CodeRepr::kPortable) {
    if (auto entry = archive->select_portable(); entry.is_ok()) {
      return disas_portable(**entry, fused);
    }
  }
  if (fused) {
    std::fprintf(stderr,
                 "--fused applies only to portable entries (the fusion pass "
                 "is a bytecode rewrite)\n");
    return 1;
  }
#if TC_WITH_LLVM
  const std::string want = triple != nullptr ? triple : ir::host_triple();
  auto entry = archive->select(want);
  if (!entry.is_ok()) {
    std::fprintf(stderr, "%s\n", entry.status().to_string().c_str());
    return 1;
  }
  auto text = ir::bitcode_to_ll(as_span((*entry)->code));
  if (!text.is_ok()) {
    std::fprintf(stderr, "%s\n", text.status().to_string().c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  return 0;
#else
  std::fprintf(stderr,
               "bitcode disassembly needs LLVM (built with TC_WITH_LLVM=OFF); "
               "only portable entries can be shown\n");
  return 1;
#endif
}

int write_archive(const ir::FatBitcode& archive, const char* path) {
  const Bytes wire = archive.serialize();
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
  std::printf("wrote %zu bytes to %s\n", wire.size(), path);
  return out ? 0 : 1;
}

// The TSI demo archive: multi-ISA bitcode when the toolchain is available,
// the portable representation otherwise.
StatusOr<ir::FatBitcode> demo_archive() {
#if TC_WITH_LLVM
  return ir::build_default_fat_kernel(ir::KernelKind::kTargetSideIncrement);
#else
  return vm::build_portable_kernel(ir::KernelKind::kTargetSideIncrement);
#endif
}

int cmd_demo() {
  auto archive = demo_archive();
  if (!archive.is_ok()) {
    std::fprintf(stderr, "%s\n", archive.status().to_string().c_str());
    return 1;
  }
  return dump_archive(*archive);
}

int cmd_emit_demo(const char* path) {
  auto archive = demo_archive();
  if (!archive.is_ok()) {
    std::fprintf(stderr, "%s\n", archive.status().to_string().c_str());
    return 1;
  }
  return write_archive(*archive, path);
}

int cmd_kernels() {
  std::printf("%d stock ifunc kernels (wire name: description):\n",
              ir::kKernelKindCount);
  for (int k = 0; k < ir::kKernelKindCount; ++k) {
    const auto kind = static_cast<ir::KernelKind>(k);
    std::printf("  %-16s %s\n", ir::kernel_name(kind),
                ir::kernel_description(kind));
  }
  return 0;
}

int cmd_emit_vm_demo(const char* path) {
  auto archive = vm::build_portable_kernel(ir::KernelKind::kTargetSideIncrement);
  if (!archive.is_ok()) {
    std::fprintf(stderr, "%s\n", archive.status().to_string().c_str());
    return 1;
  }
  return write_archive(*archive, path);
}

int cmd_trace(const char* path, const char* max_traces_arg) {
  auto data = read_file(path);
  if (!data.is_ok()) {
    std::fprintf(stderr, "%s\n", data.status().to_string().c_str());
    return 1;
  }
  std::size_t max_traces = 0;
  if (max_traces_arg != nullptr) {
    max_traces = static_cast<std::size_t>(std::strtoull(max_traces_arg,
                                                        nullptr, 10));
  }
  const std::string json(reinterpret_cast<const char*>(data->data()),
                         data->size());
  obs::ParsedSummary summary = obs::summarize_chrome_trace(json, max_traces);
  if (summary.events == 0) {
    std::fprintf(stderr, "no trace events found in %s (expected "
                 "chrome_trace_json output, e.g. fig_workloads --trace)\n",
                 path);
    return 1;
  }
  std::fputs(summary.text.c_str(), stdout);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: tc_inspect demo\n"
               "       tc_inspect archive <file>\n"
               "       tc_inspect frame <file>\n"
               "       tc_inspect trace <file> [max_traces]\n"
               "       tc_inspect disas <file> [triple|portable] [--fused]\n"
               "       tc_inspect emit-demo <file>\n"
               "       tc_inspect emit-vm-demo <file>\n"
               "       tc_inspect kernels\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "demo") == 0) return cmd_demo();
  if (std::strcmp(cmd, "archive") == 0 && argc >= 3) {
    return cmd_archive(argv[2]);
  }
  if (std::strcmp(cmd, "frame") == 0 && argc >= 3) return cmd_frame(argv[2]);
  if (std::strcmp(cmd, "trace") == 0 && argc >= 3) {
    return cmd_trace(argv[2], argc >= 4 ? argv[3] : nullptr);
  }
  if (std::strcmp(cmd, "disas") == 0 && argc >= 3) {
    const char* triple = nullptr;
    bool fused = false;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--fused") == 0) {
        fused = true;
      } else {
        triple = argv[i];
      }
    }
    return cmd_disas(argv[2], triple, fused);
  }
  if (std::strcmp(cmd, "emit-demo") == 0 && argc >= 3) {
    return cmd_emit_demo(argv[2]);
  }
  if (std::strcmp(cmd, "emit-vm-demo") == 0 && argc >= 3) {
    return cmd_emit_vm_demo(argv[2]);
  }
  if (std::strcmp(cmd, "kernels") == 0) return cmd_kernels();
  usage();
  return 2;
}
