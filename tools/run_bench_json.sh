#!/usr/bin/env bash
# Regenerates the machine-readable perf trajectory at the repo root:
#   BENCH_tsi.json       — Tables I-VI (TSI overhead + message rates)
#   BENCH_dapc.json      — Figures 5-12 + the async window sweep
#   BENCH_shm.json       — fig_mt_scale + fig_collectives: the sim
#                          (virtual-time) vs shm (real-threads wall-clock)
#                          transport-backend comparisons
#   BENCH_workloads.json — fig_workloads: the remote-data-structure suite
#                          (hash-probe / ordered-search / BFS) across
#                          backends, representations and initiator counts
#   BENCH_socket.json    — fig_mt_scale + fig_workloads restricted to the
#                          socket backend (--backends socket): wall-clock
#                          rates over kernel stream sockets, the column to
#                          hold against BENCH_shm/BENCH_workloads when
#                          pricing the syscall + wire-codec overhead
#
# BENCH_tsi/BENCH_dapc virtual-time numbers are machine-independent;
# BENCH_shm/BENCH_workloads/BENCH_socket wall-clock rates depend on the
# host that ran them (their sim halves are machine-independent).
#
# Each document is accumulated in a temp file and moved into place only
# after every bench feeding it has succeeded, so a mid-sweep crash leaves
# the previous trajectory intact instead of a half-written (or deleted)
# file.
#
# Usage: tools/run_bench_json.sh <build-dir> [out-dir] [--only <group>]
#   --only tsi|dapc|shm|workloads|socket regenerates a single JSON
#   document without re-running the full trajectory.
# Honors TC_BENCH_FAST=1 for shrunk smoke sweeps (CI).
set -euo pipefail

build_dir=${1:?usage: tools/run_bench_json.sh <build-dir> [out-dir] [--only <group>]}
shift
out_dir=$(dirname "$0")/..
out_dir_set=0
only=""
while [ $# -gt 0 ]; do
  case "$1" in
    --only)
      only=${2:?--only needs a group: tsi|dapc|shm|workloads|socket}
      shift 2
      ;;
    --*)
      echo "unknown option '$1' (did you mean '--only <group>'?)" >&2
      exit 2
      ;;
    *)
      if [ "$out_dir_set" = 1 ]; then
        echo "unexpected extra argument '$1'" >&2
        exit 2
      fi
      out_dir=$1
      out_dir_set=1
      shift
      ;;
  esac
done
case "$only" in
  ""|tsi|dapc|shm|workloads|socket) ;;
  *)
    echo "unknown --only group '$only' (expected tsi|dapc|shm|workloads|socket)" >&2
    exit 2
    ;;
esac
mkdir -p "$out_dir"

# Inside out_dir, so the final mv is a same-filesystem atomic rename (a
# cross-filesystem mv degrades to copy+unlink, which a crash can truncate).
tmp_dir=$(mktemp -d "$out_dir/.tc_bench.XXXXXX")
trap 'rm -rf "$tmp_dir"' EXIT

# run_group <group> <json-name> <bench>...: accumulates every bench's
# --json output in a temp document, then atomically installs it. A <bench>
# entry may carry flags ("fig_mt_scale --backends socket"); the first word
# is the binary under <build-dir>, the rest pass through. Records every
# group it sees so the post-run guard below can prove --only matched a
# real group even if the upfront case list drifts.
seen_groups=""
only_matched=0
run_group() {
  local group=$1 json_name=$2
  shift 2
  seen_groups="$seen_groups $group"
  if [ -n "$only" ] && [ "$only" != "$group" ]; then
    return 0
  fi
  [ -n "$only" ] && only_matched=1
  local tmp="$tmp_dir/$json_name"
  local bench
  for bench in "$@"; do
    read -r -a cmd <<< "$bench"
    "$build_dir/${cmd[0]}" "${cmd[@]:1}" --json "$tmp" > /dev/null
    echo "ran $bench"
  done
  mv "$tmp" "$out_dir/$json_name"
  echo "wrote $out_dir/$json_name"
}

run_group tsi BENCH_tsi.json \
  table1_tsi_ookami table2_tsi_bf2 table3_tsi_xeon \
  table4_rates_ookami table5_rates_bf2 table6_rates_xeon

run_group dapc BENCH_dapc.json \
  fig5_dapc_depth_thor_bf2 fig6_dapc_depth_ookami \
  fig7_dapc_depth_thor_xeon fig8_dapc_depth_julia \
  fig9_dapc_scale_thor_bf2 fig10_dapc_scale_ookami \
  fig11_dapc_scale_thor_xeon fig12_dapc_scale_julia \
  fig_async_window

run_group shm BENCH_shm.json \
  fig_mt_scale fig_collectives

run_group workloads BENCH_workloads.json \
  fig_workloads

run_group socket BENCH_socket.json \
  "fig_mt_scale --backends socket" \
  "fig_workloads --backends socket"

# Guard against drift between the upfront --only case list and the groups
# actually registered above: a group that validates but matches nothing
# would otherwise succeed while writing no JSON at all.
if [ -n "$only" ] && [ "$only_matched" = 0 ]; then
  echo "--only '$only' matched no bench group (have:$seen_groups)" >&2
  exit 2
fi
