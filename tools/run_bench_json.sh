#!/usr/bin/env bash
# Regenerates the machine-readable perf trajectory at the repo root:
#   BENCH_tsi.json  — Tables I-VI (TSI overhead + message rates)
#   BENCH_dapc.json — Figures 5-12 + the async window sweep
#   BENCH_shm.json  — fig_mt_scale: multi-initiator scaling on the sim
#                     (virtual-time) and shm (real-threads wall-clock)
#                     transport backends
#
# BENCH_tsi/BENCH_dapc virtual-time numbers are machine-independent;
# BENCH_shm wall-clock rates depend on the host that ran them.
#
# Usage: tools/run_bench_json.sh <build-dir> [out-dir]
# Honors TC_BENCH_FAST=1 for shrunk smoke sweeps (CI).
set -euo pipefail

build_dir=${1:?usage: tools/run_bench_json.sh <build-dir> [out-dir]}
out_dir=${2:-$(dirname "$0")/..}
mkdir -p "$out_dir"

tsi_json="$out_dir/BENCH_tsi.json"
dapc_json="$out_dir/BENCH_dapc.json"
shm_json="$out_dir/BENCH_shm.json"
rm -f "$tsi_json" "$dapc_json" "$shm_json"

for bench in table1_tsi_ookami table2_tsi_bf2 table3_tsi_xeon \
             table4_rates_ookami table5_rates_bf2 table6_rates_xeon; do
  "$build_dir/$bench" --json "$tsi_json" > /dev/null
  echo "ran $bench"
done

for bench in fig5_dapc_depth_thor_bf2 fig6_dapc_depth_ookami \
             fig7_dapc_depth_thor_xeon fig8_dapc_depth_julia \
             fig9_dapc_scale_thor_bf2 fig10_dapc_scale_ookami \
             fig11_dapc_scale_thor_xeon fig12_dapc_scale_julia \
             fig_async_window; do
  "$build_dir/$bench" --json "$dapc_json" > /dev/null
  echo "ran $bench"
done

"$build_dir/fig_mt_scale" --json "$shm_json" > /dev/null
echo "ran fig_mt_scale"

echo "wrote $tsi_json, $dapc_json and $shm_json"
