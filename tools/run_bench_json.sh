#!/usr/bin/env bash
# Regenerates the machine-readable perf trajectory at the repo root:
#   BENCH_tsi.json  — Tables I-VI (TSI overhead + message rates)
#   BENCH_dapc.json — Figures 5-12 + the async window sweep
#   BENCH_shm.json  — fig_mt_scale + fig_collectives: the sim
#                     (virtual-time) vs shm (real-threads wall-clock)
#                     transport-backend comparisons
#
# BENCH_tsi/BENCH_dapc virtual-time numbers are machine-independent;
# BENCH_shm wall-clock rates depend on the host that ran them.
#
# Each document is accumulated in a temp file and moved into place only
# after every bench feeding it has succeeded, so a mid-sweep crash leaves
# the previous trajectory intact instead of a half-written (or deleted)
# file.
#
# Usage: tools/run_bench_json.sh <build-dir> [out-dir]
# Honors TC_BENCH_FAST=1 for shrunk smoke sweeps (CI).
set -euo pipefail

build_dir=${1:?usage: tools/run_bench_json.sh <build-dir> [out-dir]}
out_dir=${2:-$(dirname "$0")/..}
mkdir -p "$out_dir"

tsi_json="$out_dir/BENCH_tsi.json"
dapc_json="$out_dir/BENCH_dapc.json"
shm_json="$out_dir/BENCH_shm.json"

# Inside out_dir, so the final mv is a same-filesystem atomic rename (a
# cross-filesystem mv degrades to copy+unlink, which a crash can truncate).
tmp_dir=$(mktemp -d "$out_dir/.tc_bench.XXXXXX")
trap 'rm -rf "$tmp_dir"' EXIT
tsi_tmp="$tmp_dir/BENCH_tsi.json"
dapc_tmp="$tmp_dir/BENCH_dapc.json"
shm_tmp="$tmp_dir/BENCH_shm.json"

for bench in table1_tsi_ookami table2_tsi_bf2 table3_tsi_xeon \
             table4_rates_ookami table5_rates_bf2 table6_rates_xeon; do
  "$build_dir/$bench" --json "$tsi_tmp" > /dev/null
  echo "ran $bench"
done
mv "$tsi_tmp" "$tsi_json"

for bench in fig5_dapc_depth_thor_bf2 fig6_dapc_depth_ookami \
             fig7_dapc_depth_thor_xeon fig8_dapc_depth_julia \
             fig9_dapc_scale_thor_bf2 fig10_dapc_scale_ookami \
             fig11_dapc_scale_thor_xeon fig12_dapc_scale_julia \
             fig_async_window; do
  "$build_dir/$bench" --json "$dapc_tmp" > /dev/null
  echo "ran $bench"
done
mv "$dapc_tmp" "$dapc_json"

for bench in fig_mt_scale fig_collectives; do
  "$build_dir/$bench" --json "$shm_tmp" > /dev/null
  echo "ran $bench"
done
mv "$shm_tmp" "$shm_json"

echo "wrote $tsi_json, $dapc_json and $shm_json"
