#include "common/log.hpp"

#include <cstdio>

namespace tc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, std::string_view module,
                   std::string_view msg) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[tc %s %.*s] %.*s\n", level_tag(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace tc
