#include "common/log.hpp"

#include <cstdio>
#include <string>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace tc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

// One write() per record: stderr is unbuffered, so a multi-part fprintf can
// reach the fd as several syscalls and interleave with the shm backend's
// progress threads (or another process sharing the terminal). A single
// write of a fully formatted line is atomic in practice for pipe/terminal
// sinks, keeping each record on its own line.
void write_all(const char* data, std::size_t size) {
#ifdef _WIN32
  std::fwrite(data, 1, size, stderr);
#else
  while (size > 0) {
    const ::ssize_t n = ::write(STDERR_FILENO, data, size);
    if (n <= 0) return;  // a wedged stderr is not worth retrying forever
    data += n;
    size -= static_cast<std::size_t>(n);
  }
#endif
}
}  // namespace

void Logger::write(LogLevel level, std::string_view module,
                   std::string_view msg) {
  std::string line;
  line.reserve(16 + module.size() + msg.size());
  line += "[tc ";
  line += level_tag(level);
  line += ' ';
  line += module;
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  write_all(line.data(), line.size());
}

}  // namespace tc
