// Deterministic RNG (SplitMix64 seeding a xoshiro256**). Used for pointer
// table permutations and workload generation so every experiment is
// reproducible from a seed printed in the bench output.
#pragma once

#include <cstdint>

namespace tc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    unsigned __int128 m = static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace tc
