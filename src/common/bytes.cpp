#include "common/bytes.hpp"

namespace tc {

Status ByteReader::short_read(std::size_t wanted) const {
  return data_loss("short read: wanted " + std::to_string(wanted) +
                   " bytes, have " + std::to_string(remaining()) +
                   " at offset " + std::to_string(pos_));
}

std::string hex(ByteSpan data, std::size_t max_bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  std::string out;
  out.reserve(2 * n + 3);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  if (n < data.size()) out += "...";
  return out;
}

}  // namespace tc
