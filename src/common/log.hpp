// Minimal leveled logger. The runtime is a library, so logging defaults to
// warnings-only and writes to stderr; tests and benches can raise/lower the
// level. Fully thread-safe: the sink is serialized by a global mutex and the
// level is atomic, so progress threads of the real-threads (shm) transport
// can log while another thread reconfigures the level.
#pragma once

#include <atomic>
#include <mutex>
#include <sstream>
#include <string_view>

namespace tc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           static_cast<int>(level_.load(std::memory_order_relaxed));
  }

  void write(LogLevel level, std::string_view module, std::string_view msg);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  ~LogLine() { Logger::instance().write(level_, module_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view module_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace tc

#define TC_LOG(level, module)                                  \
  if (!::tc::Logger::instance().enabled(::tc::LogLevel::level)) \
    ;                                                          \
  else                                                         \
    ::tc::detail::LogLine(::tc::LogLevel::level, module)
