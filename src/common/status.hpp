// Status / StatusOr error model for the Three-Chains reproduction.
//
// The runtime crosses several failure domains (wire decoding, LLVM JIT,
// fabric delivery), so errors are carried as values rather than exceptions;
// LLVM's Expected<> results are converted at the jit/ boundary.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tc {

/// Canonical error space, deliberately small. Codes are part of the wire
/// protocol for NACKs, so values are stable.
enum class ErrorCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kDataLoss = 9,       // corrupted frame / bad magic / CRC mismatch
  kUnavailable = 10,   // endpoint or node unreachable
  kJitFailure = 11,    // LLVM compile/link error
  kBadBitcode = 12,    // unparsable or triple-less bitcode
};

/// Human-readable name of an ErrorCode (stable, lowercase, no spaces).
std::string_view error_code_name(ErrorCode code);

/// A cheap, movable status: OK carries nothing, errors carry code + message.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {ErrorCode::kDataLoss, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status jit_failure(std::string msg) {
  return {ErrorCode::kJitFailure, std::move(msg)};
}
inline Status bad_bitcode(std::string msg) {
  return {ErrorCode::kBadBitcode, std::move(msg)};
}

/// Value-or-error. Accessing value() on an error aborts in debug builds;
/// callers must check ok() (or use value_or) first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.is_ok() && "StatusOr(Status) requires an error status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const& { return is_ok() ? *value_ : fallback; }

  T* operator->() {
    assert(is_ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(is_ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagation helpers. `expr` must yield a Status / StatusOr.
#define TC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::tc::Status _tc_status = (expr);             \
    if (!_tc_status.is_ok()) return _tc_status;   \
  } while (0)

#define TC_CONCAT_INNER(a, b) a##b
#define TC_CONCAT(a, b) TC_CONCAT_INNER(a, b)

#define TC_ASSIGN_OR_RETURN(lhs, expr) \
  TC_ASSIGN_OR_RETURN_IMPL(TC_CONCAT(_tc_sor_, __LINE__), lhs, expr)

#define TC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.is_ok()) return tmp.status();         \
  lhs = std::move(tmp).value()

}  // namespace tc
