// FNV-1a hashing. Ifunc identities on the wire are 64-bit FNV-1a hashes of
// the registered library name; frame integrity checks hash header fields.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace tc {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

constexpr std::uint64_t fnv1a64(ByteSpan data,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Order-dependent combiner (boost-style, 64-bit constants).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace tc
