// Byte-buffer utilities and a small, explicit little-endian serializer used
// for every wire structure in the project (ifunc frames, fat-bitcode
// archives, deps manifests, X-RDMA payloads).
//
// All multi-byte integers are encoded little-endian regardless of host
// endianness so frames are portable between the simulated ISAs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace tc {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

inline ByteSpan as_span(const Bytes& b) { return {b.data(), b.size()}; }
inline ByteSpan as_span(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}
inline std::string_view as_string_view(ByteSpan s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Appends little-endian encodings to a growing buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    le(bits);
  }

  void raw(ByteSpan s) { buf_.insert(buf_.end(), s.begin(), s.end()); }

  /// Length-prefixed (u32) byte string.
  void blob(ByteSpan s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s);
  }
  void str(std::string_view s) { blob(as_span(s)); }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked little-endian decoder over a non-owning span.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return remaining() == 0; }

  Status u8(std::uint8_t& out) { return fixed(out); }
  Status u16(std::uint16_t& out) { return fixed(out); }
  Status u32(std::uint32_t& out) { return fixed(out); }
  Status u64(std::uint64_t& out) { return fixed(out); }
  Status i64(std::int64_t& out) {
    std::uint64_t bits = 0;
    TC_RETURN_IF_ERROR(fixed(bits));
    out = static_cast<std::int64_t>(bits);
    return Status::ok();
  }
  Status f64(double& out) {
    std::uint64_t bits = 0;
    TC_RETURN_IF_ERROR(fixed(bits));
    std::memcpy(&out, &bits, sizeof(out));
    return Status::ok();
  }

  /// Reads `n` raw bytes without copying.
  Status raw(std::size_t n, ByteSpan& out) {
    if (remaining() < n) return short_read(n);
    out = data_.subspan(pos_, n);
    pos_ += n;
    return Status::ok();
  }

  /// Reads a u32-length-prefixed byte string (view into the buffer).
  Status blob(ByteSpan& out) {
    std::uint32_t n = 0;
    TC_RETURN_IF_ERROR(u32(n));
    return raw(n, out);
  }
  Status str(std::string& out) {
    ByteSpan s;
    TC_RETURN_IF_ERROR(blob(s));
    out.assign(reinterpret_cast<const char*>(s.data()), s.size());
    return Status::ok();
  }

  Status skip(std::size_t n) {
    if (remaining() < n) return short_read(n);
    pos_ += n;
    return Status::ok();
  }

 private:
  template <typename T>
  Status fixed(T& out) {
    if (remaining() < sizeof(T)) return short_read(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    out = v;
    pos_ += sizeof(T);
    return Status::ok();
  }

  Status short_read(std::size_t wanted) const;

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Hex dump (lowercase, no separators) — used in error messages and tests.
std::string hex(ByteSpan data, std::size_t max_bytes = 64);

}  // namespace tc
