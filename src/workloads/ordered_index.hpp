// The sharded sorted index of the workload suite: a static skip list whose
// nodes are laid out rank-major across servers (node R — the R-th smallest
// key — lives on server R / nodes_per_shard), so low-level links walk
// within a shard while tower links jump across shard boundaries — the
// shard-crossing down-links the ordered-search kernel turns into
// self-forwards.
//
// Every node record stores (next_id, next_key) *fingers* per level: carrying
// the successor's key alongside the link makes the comparison-driven branch
// locally decidable, so a traveling kernel never needs a remote read to
// decide whether to take a link (the standard finger construction of
// distributed skip lists).
//
// Record layout (10 words, what Runtime::set_shard exposes):
//   word 0 — key (node 0 is the head, key 0; real keys are >= 1)
//   word 1 — value
//   words 2 + 2*l, 3 + 2*l — (next_id, next_key) at level l, l < 4;
//                            next_id == ~0 marks a NIL link, and its finger
//                            key is ~0 too — keys stay below 2^63, so the
//                            `next_key <= target` compare alone rejects NIL
//                            links (the portable kernel relies on this).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::workloads {

struct OrderedIndexConfig {
  std::uint64_t keys_per_shard = 64;  ///< nodes per shard (head included)
  std::uint64_t shard_count = 2;
  std::uint64_t seed = 0x51a9ull;
};

class ShardedOrderedIndex {
 public:
  // Aliases of the shared layout constants (workloads/shard_layout.hpp) —
  // the kernel emitters and AM handlers derive their offsets from the same
  // source.
  static constexpr std::uint64_t kLevels = kIndexLevels;
  static constexpr std::uint64_t kRecordWords = kIndexRecordWords;
  static constexpr std::uint64_t kNil = kIndexNil;

  ShardedOrderedIndex() = default;

  static StatusOr<ShardedOrderedIndex> build(const OrderedIndexConfig& config);

  std::uint64_t node_count() const { return node_count_; }
  std::uint64_t nodes_per_shard() const { return nodes_per_shard_; }
  std::uint64_t shard_count() const { return shards_.size(); }

  /// Mutable shard storage (nodes_per_shard * kRecordWords words).
  std::vector<std::uint64_t>& shard(std::uint64_t server) {
    return shards_[server];
  }
  const std::vector<std::uint64_t>& shard(std::uint64_t server) const {
    return shards_[server];
  }

  /// The indexed keys in ascending order (head excluded).
  const std::vector<std::uint64_t>& keys() const { return keys_; }

  /// Reference lookup (sorted-array binary search): value or kMiss.
  std::uint64_t lookup(std::uint64_t key) const;

  /// Fraction of taken links in a full descent, averaged over all keys,
  /// that cross a shard boundary (each is a kernel self-forward).
  double cross_shard_fraction() const;

 private:
  std::uint64_t node_count_ = 0;
  std::uint64_t nodes_per_shard_ = 0;
  std::vector<std::vector<std::uint64_t>> shards_;
  std::vector<std::uint64_t> keys_;    ///< sorted, keys_[r] = node r+1's key
  std::vector<std::uint64_t> values_;  ///< aligned with keys_
};

}  // namespace tc::workloads
