#include "workloads/ordered_index.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "workloads/hash_table.hpp"  // kMiss, the shared mixer

namespace tc::workloads {

StatusOr<ShardedOrderedIndex> ShardedOrderedIndex::build(
    const OrderedIndexConfig& config) {
  if (config.keys_per_shard == 0 || config.shard_count == 0) {
    return invalid_argument("ordered index: zero shards or shard size");
  }
  const std::uint64_t total = config.keys_per_shard * config.shard_count;
  if (total < 2) {
    return invalid_argument("ordered index: need the head plus one key");
  }

  ShardedOrderedIndex index;
  index.node_count_ = total;
  index.nodes_per_shard_ = config.keys_per_shard;

  // total - 1 distinct keys in [1, 2^63) (clear of both sentinels), sorted
  // so node rank == key rank; deterministic values derived per key.
  Xoshiro256 rng(config.seed);
  std::unordered_set<std::uint64_t> used;
  while (index.keys_.size() < total - 1) {
    const std::uint64_t key = (rng() >> 1) | 1;
    if (used.insert(key).second) index.keys_.push_back(key);
  }
  std::sort(index.keys_.begin(), index.keys_.end());
  index.values_.reserve(index.keys_.size());
  for (std::uint64_t key : index.keys_) {
    index.values_.push_back(ShardedHashTable::mix(key ^ config.seed) >> 1);
  }

  // Tower heights: head gets the full tower; node r is promoted a level
  // with probability 1/4 (the classic skip-list quarter decimation), drawn
  // deterministically from the seeded stream.
  std::vector<std::uint64_t> height(total, 1);
  height[0] = kLevels;
  for (std::uint64_t r = 1; r < total; ++r) {
    while (height[r] < kLevels && rng.below(4) == 0) ++height[r];
  }

  // Fingers: next[l] of node r is the nearest higher-rank node promoted
  // past level l. One descending sweep with a per-level "last seen" cursor.
  index.shards_.assign(
      config.shard_count,
      std::vector<std::uint64_t>(config.keys_per_shard * kRecordWords, 0));
  std::uint64_t last[kLevels];
  std::uint64_t last_key[kLevels];
  for (std::uint64_t l = 0; l < kLevels; ++l) last[l] = kNil;
  for (std::uint64_t r = total; r-- > 0;) {
    auto& shard = index.shards_[r / config.keys_per_shard];
    std::uint64_t* rec =
        shard.data() + (r % config.keys_per_shard) * kRecordWords;
    rec[0] = r == 0 ? 0 : index.keys_[r - 1];
    rec[1] = r == 0 ? 0 : index.values_[r - 1];
    for (std::uint64_t l = 0; l < kLevels; ++l) {
      if (l < height[r]) {
        rec[2 + 2 * l] = last[l];
        // A NIL link carries kNil as its finger key too: keys are < 2^63
        // (rng() >> 1), so `next_key <= target` alone rejects NIL links —
        // the portable kernel's descent needs no separate NIL test.
        rec[3 + 2 * l] = last[l] == kNil ? kNil : last_key[l];
      } else {
        rec[2 + 2 * l] = kNil;  // never read: arrivals stay below height
        rec[3 + 2 * l] = kNil;
      }
    }
    for (std::uint64_t l = 0; l < height[r]; ++l) {
      last[l] = r;
      last_key[l] = rec[0];
    }
  }
  return index;
}

std::uint64_t ShardedOrderedIndex::lookup(std::uint64_t key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return kMiss;
  return values_[static_cast<std::size_t>(it - keys_.begin())];
}

double ShardedOrderedIndex::cross_shard_fraction() const {
  std::uint64_t taken = 0, crossing = 0;
  for (std::uint64_t key : keys_) {
    std::uint64_t node = 0;
    std::uint64_t level = kLevels - 1;
    while (true) {
      const auto& shard = shards_[node / nodes_per_shard_];
      const std::uint64_t* rec =
          shard.data() + (node % nodes_per_shard_) * kRecordWords;
      const std::uint64_t next_id = rec[2 + 2 * level];
      const std::uint64_t next_key = rec[3 + 2 * level];
      if (next_id != kNil && next_key <= key) {
        ++taken;
        if (next_id / nodes_per_shard_ != node / nodes_per_shard_) {
          ++crossing;
        }
        node = next_id;
        continue;
      }
      if (level == 0) break;
      --level;
    }
  }
  return taken == 0 ? 0.0
                    : static_cast<double>(crossing) /
                          static_cast<double>(taken);
}

}  // namespace tc::workloads
