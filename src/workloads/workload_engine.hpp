// WorkloadEngine: the remote-data-structure workload suite (the DAPC
// pointer chase generalized to richer traversals). Three scenarios, each a
// self-propagating ifunc that ships the traversal logic to the data instead
// of round-tripping dependent accesses:
//
//   * hash-probe      — open-addressing lookup over server-sharded buckets;
//                       the probe kernel walks the collision chain locally
//                       and self-forwards at shard crossings;
//   * ordered-search  — skip-list descent over a sharded sorted index with
//                       per-level (next_id, next_key) fingers; comparison-
//                       driven branches replace the chaser's "next pointer";
//   * BFS             — self-propagating frontier expansion over a
//                       distributed CSR graph with per-(server, lane)
//                       visited bitmaps and ack-driven (credit-counted)
//                       completion, reusing the collective suite's
//                       lane-cell + origin-reply pattern.
//
// Mirrors xrdma::CollectiveEngine: transport-generic (deterministic sim and
// real-threads shm), every code representation (predeployed Active-Message
// baseline, fat bitcode, AOT objects, portable bytecode, HLL-frontend
// bitcode), and `lanes = M` concurrent initiators — each lane a client node
// with its own windowed in-flight query stream (DapcConfig-style pipelined
// issue with tag-routed replies).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "hetsim/cluster.hpp"
#include "workloads/graph.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/ordered_index.hpp"

namespace tc::workloads {

enum class Workload { kHashProbe, kOrderedSearch, kBfs };
const char* workload_name(Workload workload);

/// Code representation the traversal travels as. kActiveMessage is the
/// predeployed-native baseline (no code motion); kBitcode / kObject /
/// kHllBitcode need LLVM; kPortable (the interpreter tier) always works.
enum class WorkloadMode {
  kActiveMessage,
  kBitcode,
  kObject,
  kPortable,
  kHllBitcode,
};
const char* workload_mode_name(WorkloadMode mode);

/// The ifunc representation this build flavor defaults to.
constexpr WorkloadMode default_workload_mode() {
#if TC_WITH_LLVM
  return WorkloadMode::kBitcode;
#else
  return WorkloadMode::kPortable;
#endif
}

struct WorkloadConfig {
  Workload workload = Workload::kHashProbe;
  WorkloadMode mode = default_workload_mode();
  /// Concurrent initiators. Lane i is driven by client node i, so the
  /// cluster needs client_count >= lanes.
  std::size_t lanes = 1;
  /// In-flight lookups each lane keeps outstanding (hash/ordered): replies
  /// carry the query index as a routing tag, so out-of-order completions
  /// land on the right slot. BFS completion is ack-counted, not windowed.
  std::uint64_t window = 4;
  std::uint64_t seed = 0xD57ull;

  // Data-structure sizing (one shard per server).
  std::uint64_t buckets_per_shard = 256;   ///< hash-probe
  std::uint64_t fill_percent = 70;         ///< hash-probe occupancy
  std::uint64_t keys_per_shard = 64;       ///< ordered-search
  std::uint64_t vertices_per_shard = 64;   ///< BFS
  std::uint64_t avg_degree = 4;            ///< BFS
};

struct WorkloadResult {
  std::uint64_t completed = 0;  ///< lookups answered / BFS runs finished
  /// Lookups: replies != kMiss. BFS: vertices visited (all lanes).
  std::uint64_t hits = 0;
  /// Virtual ns (sim) or monotonic wall-clock ns (shm, wall_clock set).
  std::int64_t elapsed_ns = 0;
  bool wall_clock = false;
  double ops_per_second = 0.0;  ///< lookups/s, or visited vertices/s (BFS)
  std::uint64_t frames_full = 0;       ///< ifunc modes: edges shipping code
  std::uint64_t frames_truncated = 0;
  /// Lookups: per-query replies, lane-major in issue order (equivalence
  /// tests compare these across backends/modes). BFS: per-lane visited
  /// counts.
  std::vector<std::uint64_t> values;
};

/// Per-(server, lane) BFS state the traveling kernel addresses through the
/// target pointer. Word layout is kernel ABI:
///   0 visited  — vertices this lane marked on this server
///   1 bitmap   — address of the lane's visited bitmap on this server
///   2 worklist — address of the lane's local-expansion worklist
///   3 engaged  — Dijkstra-Scholten: an engagement ack is deferred
///   4 parent   — DS parent peer (~0 = the chain origin engaged us)
///   5 deficit  — forwarded children not yet acked
///   6 scratch  — the in-flight visit's sender, parked across the
///                expansion loop (which overwrites the payload's `from`)
struct alignas(64) WorkloadCell {
  std::atomic<std::uint64_t> visited{0};
  std::atomic<std::uint64_t> bitmap{0};
  std::atomic<std::uint64_t> worklist{0};
  std::atomic<std::uint64_t> engaged{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::uint64_t> deficit{0};
  std::atomic<std::uint64_t> scratch{0};
  std::atomic<std::uint64_t> reserved[1]{};
};
static_assert(sizeof(WorkloadCell) == 64, "kernel ABI: 64-byte cells");

class WorkloadEngine {
 public:
  static StatusOr<std::unique_ptr<WorkloadEngine>> create(
      hetsim::Cluster& cluster, WorkloadConfig config = {});
  ~WorkloadEngine();
  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  std::size_t lanes() const { return lanes_.size(); }
  Workload workload() const { return config_.workload; }

  /// Deterministic query stream for `lane` (hash/ordered): roughly
  /// hit_percent% present keys, the rest guaranteed misses. Streams are
  /// lane-distinct so concurrent initiators don't share queries.
  std::vector<std::uint64_t> sample_queries(std::size_t lane,
                                            std::size_t count,
                                            unsigned hit_percent = 75) const;
  /// Ground truth for one lookup (hash/ordered): value or kMiss.
  std::uint64_t expected_lookup(std::uint64_t key) const;
  /// Ground truth for one BFS: reachable-set size from `source`.
  std::uint64_t expected_bfs(std::uint64_t source) const;
  /// Query/source universe: hash capacity, index node count, or vertices.
  std::uint64_t universe() const;

  /// Runs `keys` through the remote structure on `lane`, keeping
  /// config.window lookups in flight. Hash-probe / ordered-search only.
  StatusOr<WorkloadResult> run_lookups(const std::vector<std::uint64_t>& keys,
                                       std::size_t lane = 0);
  /// per_lane[i] runs on lane i concurrently — deterministically
  /// interleaved on sim, one OS thread per initiator on shm.
  StatusOr<WorkloadResult> run_lookups_all(
      const std::vector<std::vector<std::uint64_t>>& per_lane);

  /// Expands the frontier from `source` until the lane's credit count
  /// drains (every spawned message acked). BFS only.
  StatusOr<WorkloadResult> run_bfs(std::uint64_t source, std::size_t lane = 0);
  StatusOr<WorkloadResult> run_bfs_all(
      const std::vector<std::uint64_t>& sources);

  /// Reads back a lane's per-server visited counts (after run_bfs).
  std::uint64_t bfs_visited(std::size_t server, std::size_t lane = 0) const;

  const ShardedHashTable& hash_table() const { return hash_; }
  const ShardedOrderedIndex& ordered_index() const { return index_; }
  const ShardedCsrGraph& graph() const { return graph_; }

 private:
  /// Per-lane in-flight state, touched only by the lane's own progress
  /// context (the sim event loop, or the initiator's thread on shm).
  struct Lane {
    std::size_t index = 0;
    fabric::NodeId node = 0;
    std::uint64_t ifunc_id = 0;
    // Windowed lookups.
    const std::vector<std::uint64_t>* queries = nullptr;
    std::vector<std::uint64_t> values;
    /// Per-query issue timestamps, populated only when the cluster carries
    /// a metrics registry (feeds the end-to-end latency histogram).
    std::vector<std::int64_t> issue_ns;
    std::uint64_t next_query = 0;
    std::uint64_t completed = 0;
    // BFS credit counting: outstanding messages not yet acked.
    std::uint64_t outstanding = 0;
    bool failed = false;
  };

  explicit WorkloadEngine(hetsim::Cluster& cluster) : cluster_(&cluster) {}
  Status setup(const WorkloadConfig& config);
  Status setup_data_structure();
  Status setup_lanes();
  void install_result_handler(std::size_t lane_index);
  bool is_am_mode() const { return config_.mode == WorkloadMode::kActiveMessage; }
  /// Issues lane-local query `index` from the lane's own context.
  Status issue_lookup(Lane& lane, std::uint64_t index);
  Status issue_bfs_seed(Lane& lane, std::uint64_t source);
  void on_lookup_reply(Lane& lane, std::uint64_t tag, std::uint64_t value);
  Status send_payload(Lane& lane, fabric::NodeId dst, ByteSpan payload);
  /// Clears lane's visited bitmaps/counters on every server.
  void reset_bfs_lane(std::size_t lane_index);
  std::uint64_t sum_bfs_visited(std::size_t lane_index) const;
  /// Sums frames_sent_{full,truncated} over every cluster runtime (ifunc
  /// modes; the AM baseline ships no frames).
  std::pair<std::uint64_t, std::uint64_t> frame_counts() const;

  hetsim::Cluster* cluster_;
  WorkloadConfig config_;
  /// End-to-end chase latency histogram ("e2e_ns/<workload>/<mode>") when
  /// the cluster was built with a MetricsRegistry; null otherwise.
  obs::Histogram* e2e_hist_ = nullptr;

  ShardedHashTable hash_;
  ShardedOrderedIndex index_;
  ShardedCsrGraph graph_;

  /// cells_[server][lane]; servers' target pointers alias these arrays.
  std::vector<std::unique_ptr<WorkloadCell[]>> cells_;
  /// bitmaps_/worklists_[server][lane]: the buffers the cells point at.
  std::vector<std::vector<std::vector<std::uint64_t>>> bitmaps_;
  std::vector<std::vector<std::vector<std::uint64_t>>> worklists_;

  std::vector<Lane> lanes_;
  std::uint16_t am_handler_index_ = 0;
};

}  // namespace tc::workloads
