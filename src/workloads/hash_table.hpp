// The sharded open-addressing hash table of the remote-data-structure
// workload suite: one logical array of {key, value} buckets split
// bucket-major across servers (bucket B lives on server B / buckets_per_shard
// at local pair B % buckets_per_shard), probed with linear probing from the
// key's home slot. A probe chain that runs off the end of a shard continues
// on the next server — exactly the crossing the hash-probe kernel turns into
// a self-forward.
//
// Shard word layout (what Runtime::set_shard exposes to the kernel):
//   word 2*i     — bucket i's key (0 = empty; keys are always nonzero)
//   word 2*i + 1 — bucket i's value
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::workloads {

struct HashTableConfig {
  std::uint64_t buckets_per_shard = 256;
  std::uint64_t shard_count = 2;
  std::uint64_t seed = 0x4a5b6c7dull;
  /// Occupied fraction of the global capacity, in percent (< 100 so every
  /// probe chain terminates at an empty bucket).
  std::uint64_t fill_percent = 70;
};

class ShardedHashTable {
 public:
  ShardedHashTable() = default;

  static StatusOr<ShardedHashTable> build(const HashTableConfig& config);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t buckets_per_shard() const { return buckets_per_shard_; }
  std::uint64_t shard_count() const { return shards_.size(); }

  /// Mutable shard storage (2 * buckets_per_shard words) — attach to the
  /// server runtimes via set_shard().
  std::vector<std::uint64_t>& shard(std::uint64_t server) {
    return shards_[server];
  }
  const std::vector<std::uint64_t>& shard(std::uint64_t server) const {
    return shards_[server];
  }

  /// The inserted keys, in insertion order (hit-query sampling).
  const std::vector<std::uint64_t>& keys() const { return keys_; }

  /// SplitMix64-style mixer mapping a key to its home slot; shared by the
  /// builder, the reference lookup and the drivers (the traveling kernel
  /// itself receives the precomputed start slot).
  static std::uint64_t mix(std::uint64_t key);
  std::uint64_t start_slot(std::uint64_t key) const {
    return mix(key) % capacity_;
  }

  /// Reference lookup walking the sharded layout exactly as the kernel
  /// does: value on a key match, kMiss on an empty bucket or a full cycle.
  std::uint64_t lookup(std::uint64_t key) const;

  /// Fraction of inserted keys whose probe chain crosses at least one
  /// shard boundary (each crossing is a kernel self-forward).
  double cross_shard_fraction() const;

 private:
  std::uint64_t bucket_key(std::uint64_t slot) const {
    return shards_[slot / buckets_per_shard_]
                  [kHashBucketWords * (slot % buckets_per_shard_) +
                   kHashKeyWord];
  }

  std::uint64_t capacity_ = 0;
  std::uint64_t buckets_per_shard_ = 0;
  std::vector<std::vector<std::uint64_t>> shards_;
  std::vector<std::uint64_t> keys_;
};

}  // namespace tc::workloads
