// The single source of truth for the shard word layouts shared between the
// data-structure builders (workloads/{hash_table,ordered_index,graph}.hpp),
// the kernel emitters (ir/kernel_builder.cpp, vm/lower.cpp, src/kir/) and
// the predeployed AM handlers. These used to live as comments plus magic
// numbers duplicated across all of those files; every consumer now derives
// its offsets from here, so a layout change breaks loudly at compile time
// instead of silently desynchronizing one of the three kernel backends.
//
// All layouts are expressed in 64-bit *words* — the unit Runtime::set_shard
// exposes — with byte offsets derived via kShardWordBytes.
#pragma once

#include <cstdint>

namespace tc::workloads {

/// Bytes per shard word (every shard is a u64 array).
inline constexpr std::uint64_t kShardWordBytes = 8;

/// The lookup-miss sentinel every workload reply uses (values never
/// collide with it: builders mask stored values below 2^63).
inline constexpr std::uint64_t kMiss = ~0ull;

// --- sharded open-addressing hash table (hash_table.hpp) ---------------------
// One logical bucket array split bucket-major across servers; bucket i of a
// shard occupies words [kHashBucketWords*i, kHashBucketWords*(i+1)).
/// Words per bucket: {key, value}.
inline constexpr std::uint64_t kHashBucketWords = 2;
inline constexpr std::uint64_t kHashKeyWord = 0;    ///< 0 = empty bucket
inline constexpr std::uint64_t kHashValueWord = 1;
inline constexpr std::uint64_t kHashBucketBytes =
    kHashBucketWords * kShardWordBytes;
/// Bucket keys are nonzero; a zero key marks an empty (chain-ending) slot.
inline constexpr std::uint64_t kHashEmptyKey = 0;

// --- sharded sorted index (ordered_index.hpp) --------------------------------
// Static skip list, rank-major across servers. Each node record is
// kIndexRecordWords words: [key][value][(next_id, next_key) x kIndexLevels].
inline constexpr std::uint64_t kIndexLevels = 4;
inline constexpr std::uint64_t kIndexKeyWord = 0;
inline constexpr std::uint64_t kIndexValueWord = 1;
/// Finger pair of level l sits at words {2 + 2l, 3 + 2l}.
inline constexpr std::uint64_t kIndexFingerBaseWord = 2;
inline constexpr std::uint64_t kIndexRecordWords =
    kIndexFingerBaseWord + 2 * kIndexLevels;
inline constexpr std::uint64_t kIndexRecordBytes =
    kIndexRecordWords * kShardWordBytes;
/// Bytes per (next_id, next_key) finger pair — the per-level stride the
/// ordered-search kernel caches in a register.
inline constexpr std::uint64_t kIndexFingerBytes = 2 * kShardWordBytes;
/// NIL link id; NIL fingers carry ~0 as their key too, and real keys stay
/// below 2^63, so `next_key <= target` alone rejects them.
inline constexpr std::uint64_t kIndexNil = ~0ull;

// --- distributed CSR graph (graph.hpp) ---------------------------------------
// word 0 = vertices_per_shard; words 1..vps+1 = row offsets; then global
// column indices.
inline constexpr std::uint64_t kCsrVpsWord = 0;
inline constexpr std::uint64_t kCsrRowOffsetWord = 1;
/// Column indices start at word kCsrColBaseWords + vps.
inline constexpr std::uint64_t kCsrColBaseWords = 2;

// --- collective / workload lane cells ----------------------------------------
/// Per-(server, lane) cell size shared by the collective suite and the BFS
/// workload: the target pointer is an array of 64-byte cells indexed by
/// lane (see xrdma/collectives.hpp and workloads::WorkloadCell).
inline constexpr std::uint64_t kLaneCellBytes = 64;

// --- DAPC pointer table (xrdma/pointer_table.hpp) ----------------------------
/// The chaser's shard is a flat value array: one word per entry.
inline constexpr std::uint64_t kChaseEntryWords = 1;

}  // namespace tc::workloads
