#include "workloads/workload_engine.hpp"

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "ir/kernels.hpp"
#include "kir/am_backend.hpp"
#include "kir/kernels.hpp"
#if TC_WITH_LLVM
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#endif

namespace tc::workloads {

const char* workload_name(Workload workload) {
  switch (workload) {
    case Workload::kHashProbe: return "hash_probe";
    case Workload::kOrderedSearch: return "ordered_search";
    case Workload::kBfs: return "bfs";
  }
  return "unknown";
}

const char* workload_mode_name(WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kActiveMessage: return "active_message";
    case WorkloadMode::kBitcode: return "bitcode";
    case WorkloadMode::kObject: return "object";
    case WorkloadMode::kPortable: return "portable";
    case WorkloadMode::kHllBitcode: return "hll_bitcode";
  }
  return "unknown";
}

namespace {

ir::KernelKind kernel_for(Workload workload) {
  switch (workload) {
    case Workload::kHashProbe: return ir::KernelKind::kHashProbe;
    case Workload::kOrderedSearch: return ir::KernelKind::kOrderedSearch;
    case Workload::kBfs: return ir::KernelKind::kBfsFrontier;
  }
  return ir::KernelKind::kHashProbe;
}

/// The registered name build_workload_library() will produce — computed up
/// front so the reuse check costs a lookup, not an archive build (the same
/// convention as the chaser and collective libraries).
std::string workload_library_name(ir::KernelKind kind, WorkloadMode mode) {
  switch (mode) {
    case WorkloadMode::kPortable: return core::portable_kernel_name(kind);
    case WorkloadMode::kObject:
      return std::string(ir::kernel_name(kind)) + "_bin";
    case WorkloadMode::kHllBitcode:
      return std::string(ir::kernel_name(kind)) + "_hll";
    case WorkloadMode::kBitcode:
    case WorkloadMode::kActiveMessage: break;
  }
  return ir::kernel_name(kind);
}

/// Builds a workload kernel library in the requested representation,
/// mirroring build_chaser_library(): portable archives work in every build
/// flavor, bitcode/object/HLL need LLVM.
StatusOr<core::IfuncLibrary> build_workload_library(ir::KernelKind kind,
                                                    WorkloadMode mode) {
  if (mode == WorkloadMode::kPortable) {
    return core::IfuncLibrary::from_portable_kernel(kind);
  }
#if TC_WITH_LLVM
  ir::KernelOptions options;
  options.hll_guards = mode == WorkloadMode::kHllBitcode;
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      ir::build_default_fat_kernel(kind, options));
  std::string name = ir::kernel_name(kind);
  if (mode == WorkloadMode::kHllBitcode) name += "_hll";
  if (mode == WorkloadMode::kObject) {
    TC_ASSIGN_OR_RETURN(archive, jit::compile_archive_to_objects(archive));
    name += "_bin";
  }
  return core::IfuncLibrary::from_archive(std::move(name),
                                          std::move(archive));
#else
  return failed_precondition(
      "bitcode/object/HLL workload libraries need LLVM (TC_WITH_LLVM=OFF); "
      "use WorkloadMode::kPortable");
#endif
}

StatusOr<std::uint64_t> register_or_reuse(core::Runtime& runtime,
                                          ir::KernelKind kind,
                                          WorkloadMode mode) {
  if (auto existing =
          runtime.ifunc_id_by_name(workload_library_name(kind, mode));
      existing.is_ok()) {
    return *existing;
  }
  TC_ASSIGN_OR_RETURN(core::IfuncLibrary library,
                      build_workload_library(kind, mode));
  return runtime.register_ifunc(std::move(library));
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void write_u64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

// --- predeployed Active-Message handlers -------------------------------------
// Each mirrors its ifunc kernel instruction for instruction; the pairs are
// kept in lockstep by the workloads_test mode-equivalence matrix.

am::AmHandlerFn make_hash_probe_handler() {
  if (ir::kernel_source(ir::KernelKind::kHashProbe) ==
      ir::KernelSource::kKir) {
    // KIR-sourced: evaluate the single shared definition instead of the
    // hand-written mirror. The validation gate (exact frame size, attached
    // shard and peer table) and the silent-drop contract are unchanged; the
    // sim charges the same calibrated AM exec cost either way.
    auto def_or = kir::prepared_def(ir::KernelKind::kHashProbe, {});
    if (def_or.is_ok()) {
      return [def = std::move(def_or).value()](
                 am::AmContext& ctx, std::uint8_t* p, std::uint64_t n) {
        if (n != 32 || ctx.shard_base == nullptr || ctx.peers == nullptr) {
          return;
        }
        Status status = kir::run_in_am_context(def, ctx, p, n);
        if (!status.is_ok()) {
          TC_LOG(kWarn, "workloads")
              << "AM hash_probe: " << status.message();
        }
      };
    }
    TC_LOG(kWarn, "workloads")
        << "AM hash_probe: KIR definition unavailable, falling back to the "
           "native handler";
  }
  return [](am::AmContext& ctx, std::uint8_t* p, std::uint64_t n) {
    if (n != 32 || ctx.shard_base == nullptr || ctx.peers == nullptr) return;
    const std::uint64_t key = read_u64(p);
    std::uint64_t slot = read_u64(p + 8);
    std::uint64_t probes = read_u64(p + 16);
    const std::uint64_t tag = read_u64(p + 24);
    const std::uint64_t bps = ctx.shard_size / 2;
    const std::uint64_t cap = bps * ctx.peers->size();
    while (true) {
      const std::uint64_t owner = slot / bps;
      if (owner != ctx.self_peer) {
        write_u64(p + 8, slot);
        write_u64(p + 16, probes);
        (void)ctx.runtime->send((*ctx.peers)[owner], ctx.handler_index,
                                ByteSpan(p, n), ctx.origin_node);
        return;
      }
      const std::uint64_t* bucket = ctx.shard_base + 2 * (slot % bps);
      std::uint64_t out = 0;
      if (bucket[0] == key) {
        out = bucket[1];
      } else if (bucket[0] == 0 || --probes == 0) {
        out = kMiss;
      } else {
        slot = (slot + 1) % cap;
        continue;
      }
      write_u64(p, out);
      write_u64(p + 8, tag);
      (void)ctx.runtime->reply(ctx, ByteSpan(p, 16));
      return;
    }
  };
}

am::AmHandlerFn make_ordered_search_handler() {
  return [](am::AmContext& ctx, std::uint8_t* p, std::uint64_t n) {
    if (n != 32 || ctx.shard_base == nullptr || ctx.peers == nullptr) return;
    const std::uint64_t target = read_u64(p);
    std::uint64_t node = read_u64(p + 8);
    std::uint64_t level = read_u64(p + 16);
    const std::uint64_t tag = read_u64(p + 24);
    const std::uint64_t nps =
        ctx.shard_size / ShardedOrderedIndex::kRecordWords;
    while (true) {
      const std::uint64_t owner = node / nps;
      if (owner != ctx.self_peer) {
        write_u64(p + 8, node);
        write_u64(p + 16, level);
        (void)ctx.runtime->send((*ctx.peers)[owner], ctx.handler_index,
                                ByteSpan(p, n), ctx.origin_node);
        return;
      }
      const std::uint64_t* rec =
          ctx.shard_base + (node % nps) * ShardedOrderedIndex::kRecordWords;
      bool hopped = false;
      while (true) {
        const std::uint64_t next_id = rec[2 + 2 * level];
        const std::uint64_t next_key = rec[3 + 2 * level];
        if (next_id != ShardedOrderedIndex::kNil && next_key <= target) {
          node = next_id;
          hopped = true;
          break;
        }
        if (level == 0) break;
        --level;
      }
      if (hopped) continue;
      write_u64(p, rec[0] == target ? rec[1] : kMiss);
      write_u64(p + 8, tag);
      (void)ctx.runtime->reply(ctx, ByteSpan(p, 16));
      return;
    }
  };
}

am::AmHandlerFn make_bfs_handler() {
  return [](am::AmContext& ctx, std::uint8_t* p, std::uint64_t n) {
    if ((n != 16 && n != 32) || ctx.peers == nullptr ||
        ctx.target_ptr == nullptr) {
      return;
    }
    const std::uint64_t kind = read_u64(p);
    // Size must match the kind: a visit carries [0][lane][vertex][from],
    // an ack just [1][lane] — a truncated visit must not be read past.
    if ((kind == 0 && n != 32) || (kind == 1 && n != 16) || kind > 1) {
      return;
    }
    const std::uint64_t lane = read_u64(p + 8);
    WorkloadCell& cell = static_cast<WorkloadCell*>(ctx.target_ptr)[lane];
    // Resolves a finished engagement: ack our own DS parent, or reply
    // [lane][0] to the chain origin at the engagement root.
    auto resolve = [&](std::uint64_t parent) {
      if (parent == ~0ull) {
        write_u64(p, lane);
        write_u64(p + 8, 0);
        (void)ctx.runtime->reply(ctx, ByteSpan(p, 16));
        return;
      }
      write_u64(p, 1);  // kind = ack
      write_u64(p + 8, lane);
      (void)ctx.runtime->send((*ctx.peers)[parent], ctx.handler_index,
                              ByteSpan(p, 16), ctx.origin_node);
    };
    if (kind == 1) {  // a child server acked
      const std::uint64_t deficit =
          cell.deficit.load(std::memory_order_relaxed) - 1;
      cell.deficit.store(deficit, std::memory_order_relaxed);
      if (deficit != 0) return;
      cell.engaged.store(0, std::memory_order_relaxed);
      resolve(cell.parent.load(std::memory_order_relaxed));
      return;
    }
    if (ctx.shard_base == nullptr) return;
    const std::uint64_t v = read_u64(p + 16);
    const std::uint64_t from = read_u64(p + 24);
    const std::uint64_t* shard = ctx.shard_base;
    const std::uint64_t vps = shard[0];
    const std::uint64_t owner = v / vps;
    if (owner != ctx.self_peer) {
      (void)ctx.runtime->send((*ctx.peers)[owner], ctx.handler_index,
                              ByteSpan(p, n), ctx.origin_node);
      return;
    }
    auto* bitmap = reinterpret_cast<std::uint64_t*>(
        cell.bitmap.load(std::memory_order_relaxed));
    auto* worklist = reinterpret_cast<std::uint64_t*>(
        cell.worklist.load(std::memory_order_relaxed));
    std::uint64_t sp = 0, spawned = 0;
    worklist[sp++] = v;
    while (sp != 0) {
      const std::uint64_t lu = worklist[--sp] % vps;
      std::uint64_t& word = bitmap[lu >> 6];
      const std::uint64_t bit = 1ull << (lu & 63);
      if ((word & bit) != 0) continue;
      word |= bit;
      cell.visited.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t row = shard[1 + lu];
      const std::uint64_t end = shard[2 + lu];
      for (std::uint64_t e = row; e < end; ++e) {
        const std::uint64_t nb = shard[2 + vps + e];
        const std::uint64_t nb_owner = nb / vps;
        if (nb_owner == ctx.self_peer) {
          worklist[sp++] = nb;
        } else {
          write_u64(p + 16, nb);
          write_u64(p + 24, ctx.self_peer);  // the child acks us
          (void)ctx.runtime->send((*ctx.peers)[nb_owner], ctx.handler_index,
                                  ByteSpan(p, 32), ctx.origin_node);
          ++spawned;
        }
      }
    }
    cell.deficit.fetch_add(spawned, std::memory_order_relaxed);
    if (cell.engaged.load(std::memory_order_relaxed) != 0) {
      resolve(from);  // engaged elsewhere: ack the sender right away
      return;
    }
    if (spawned == 0) {
      resolve(from);  // neutral and childless: resolve immediately
      return;
    }
    cell.parent.store(from, std::memory_order_relaxed);
    cell.engaged.store(1, std::memory_order_relaxed);
  };
}

am::AmHandlerFn make_workload_handler(Workload workload) {
  switch (workload) {
    case Workload::kHashProbe: return make_hash_probe_handler();
    case Workload::kOrderedSearch: return make_ordered_search_handler();
    case Workload::kBfs: return make_bfs_handler();
  }
  return {};
}

}  // namespace

// --- engine lifecycle --------------------------------------------------------

StatusOr<std::unique_ptr<WorkloadEngine>> WorkloadEngine::create(
    hetsim::Cluster& cluster, WorkloadConfig config) {
  auto engine = std::unique_ptr<WorkloadEngine>(new WorkloadEngine(cluster));
  TC_RETURN_IF_ERROR(engine->setup(config));
  return engine;
}

WorkloadEngine::~WorkloadEngine() {
  // Detach everything hung on the shared cluster: result-handler lambdas
  // capture this engine, and the servers' shard/target pointers alias
  // arrays about to be freed.
  for (const Lane& lane : lanes_) {
    if (is_am_mode()) {
      cluster_->am_runtime(lane.node).set_result_handler({});
    } else {
      cluster_->runtime(lane.node).set_result_handler({});
    }
  }
  for (fabric::NodeId node : cluster_->server_nodes()) {
    if (is_am_mode()) {
      cluster_->am_runtime(node).set_shard(nullptr, 0);
      cluster_->am_runtime(node).set_target_ptr(nullptr);
    } else {
      cluster_->runtime(node).set_shard(nullptr, 0);
      cluster_->runtime(node).set_target_ptr(nullptr);
    }
  }
}

Status WorkloadEngine::setup(const WorkloadConfig& config) {
  config_ = config;
  if (config.lanes == 0) {
    return invalid_argument("workloads: at least one lane required");
  }
  if (config.window == 0) {
    return invalid_argument("workloads: window must be at least 1");
  }
  if (config.lanes > cluster_->client_nodes().size()) {
    return invalid_argument(
        "workloads: " + std::to_string(config.lanes) +
        " lanes but the cluster has only " +
        std::to_string(cluster_->client_nodes().size()) + " client node(s)");
  }
  if (is_am_mode()) {
    if (!cluster_->has_am_runtimes()) {
      return failed_precondition("cluster built without AM runtimes");
    }
  } else if (!cluster_->has_ifunc_runtimes()) {
    return failed_precondition("cluster built without ifunc runtimes");
  }
  if (cluster_->metrics() != nullptr) {
    e2e_hist_ = &cluster_->metrics()->histogram(
        std::string("e2e_ns/") + workload_name(config_.workload) + "/" +
        workload_mode_name(config_.mode));
  }
  TC_RETURN_IF_ERROR(setup_data_structure());
  return setup_lanes();
}

Status WorkloadEngine::setup_data_structure() {
  const auto& servers = cluster_->server_nodes();
  auto attach_shard = [&](std::size_t s, std::vector<std::uint64_t>& shard) {
    if (is_am_mode()) {
      cluster_->am_runtime(servers[s]).set_shard(shard.data(), shard.size());
    } else {
      cluster_->runtime(servers[s]).set_shard(shard.data(), shard.size());
    }
  };

  switch (config_.workload) {
    case Workload::kHashProbe: {
      HashTableConfig table;
      table.buckets_per_shard = config_.buckets_per_shard;
      table.shard_count = servers.size();
      table.seed = config_.seed;
      table.fill_percent = config_.fill_percent;
      TC_ASSIGN_OR_RETURN(hash_, ShardedHashTable::build(table));
      for (std::size_t s = 0; s < servers.size(); ++s) {
        attach_shard(s, hash_.shard(s));
      }
      break;
    }
    case Workload::kOrderedSearch: {
      OrderedIndexConfig table;
      table.keys_per_shard = config_.keys_per_shard;
      table.shard_count = servers.size();
      table.seed = config_.seed;
      TC_ASSIGN_OR_RETURN(index_, ShardedOrderedIndex::build(table));
      for (std::size_t s = 0; s < servers.size(); ++s) {
        attach_shard(s, index_.shard(s));
      }
      break;
    }
    case Workload::kBfs: {
      CsrGraphConfig table;
      table.vertices_per_shard = config_.vertices_per_shard;
      table.shard_count = servers.size();
      table.avg_degree = config_.avg_degree;
      table.seed = config_.seed;
      TC_ASSIGN_OR_RETURN(graph_, ShardedCsrGraph::build(table));
      const std::uint64_t bitmap_words =
          (config_.vertices_per_shard + 63) / 64;
      cells_.reserve(servers.size());
      bitmaps_.resize(servers.size());
      worklists_.resize(servers.size());
      for (std::size_t s = 0; s < servers.size(); ++s) {
        attach_shard(s, graph_.shard(s));
        cells_.push_back(std::make_unique<WorkloadCell[]>(config_.lanes));
        bitmaps_[s].assign(config_.lanes,
                           std::vector<std::uint64_t>(bitmap_words, 0));
        worklists_[s].assign(
            config_.lanes,
            std::vector<std::uint64_t>(graph_.worklist_bound(s), 0));
        for (std::size_t lane = 0; lane < config_.lanes; ++lane) {
          cells_[s][lane].bitmap.store(
              reinterpret_cast<std::uint64_t>(bitmaps_[s][lane].data()),
              std::memory_order_release);
          cells_[s][lane].worklist.store(
              reinterpret_cast<std::uint64_t>(worklists_[s][lane].data()),
              std::memory_order_release);
        }
        if (is_am_mode()) {
          cluster_->am_runtime(servers[s]).set_target_ptr(cells_[s].get());
        } else {
          cluster_->runtime(servers[s]).set_target_ptr(cells_[s].get());
        }
      }
      break;
    }
  }
  return Status::ok();
}

Status WorkloadEngine::setup_lanes() {
  if (is_am_mode()) {
    // Predeployment discipline: the handler is registered on every node in
    // the same order, so the index is cluster-wide.
    const std::size_t node_count = cluster_->node_count();
    for (fabric::NodeId node = 0; node < node_count; ++node) {
      TC_ASSIGN_OR_RETURN(am_handler_index_,
                          cluster_->am_runtime(node).register_handler(
                              make_workload_handler(config_.workload)));
    }
  }
  lanes_.resize(config_.lanes);
  for (std::size_t i = 0; i < config_.lanes; ++i) {
    Lane& lane = lanes_[i];
    lane.index = i;
    lane.node = cluster_->client_nodes()[i];
    if (!is_am_mode()) {
      TC_ASSIGN_OR_RETURN(
          lane.ifunc_id,
          register_or_reuse(cluster_->runtime(lane.node),
                            kernel_for(config_.workload), config_.mode));
    }
    install_result_handler(i);
  }
  return Status::ok();
}

void WorkloadEngine::install_result_handler(std::size_t lane_index) {
  // Replies for lane i return to client node i and fire on that node's
  // progress context — the lane state below is only ever touched by its
  // own driving thread.
  auto on_result = [this, lane_index](ByteSpan data, fabric::NodeId) {
    Lane& lane = lanes_[lane_index];
    if (data.size() != 16) {
      lane.failed = true;
      return;
    }
    const std::uint64_t first = read_u64(data.data());
    const std::uint64_t second = read_u64(data.data() + 8);
    if (config_.workload == Workload::kBfs) {
      // The one Dijkstra-Scholten completion reply per run: [lane][0]
      // from the engagement-root server once its deficit drained.
      if (first != lane_index || second != 0 || lane.outstanding == 0) {
        lane.failed = true;
        return;
      }
      lane.outstanding = 0;
    } else {
      on_lookup_reply(lane, second, first);  // [value][tag]
    }
  };
  if (is_am_mode()) {
    cluster_->am_runtime(lanes_[lane_index].node)
        .set_result_handler(on_result);
  } else {
    cluster_->runtime(lanes_[lane_index].node).set_result_handler(on_result);
  }
}

// --- query generation and ground truth ---------------------------------------

std::uint64_t WorkloadEngine::universe() const {
  switch (config_.workload) {
    case Workload::kHashProbe: return hash_.capacity();
    case Workload::kOrderedSearch: return index_.node_count();
    case Workload::kBfs: return graph_.total_vertices();
  }
  return 0;
}

std::uint64_t WorkloadEngine::expected_lookup(std::uint64_t key) const {
  return config_.workload == Workload::kHashProbe ? hash_.lookup(key)
                                                  : index_.lookup(key);
}

std::uint64_t WorkloadEngine::expected_bfs(std::uint64_t source) const {
  return graph_.reachable_count(source);
}

std::vector<std::uint64_t> WorkloadEngine::sample_queries(
    std::size_t lane, std::size_t count, unsigned hit_percent) const {
  const std::vector<std::uint64_t>& present =
      config_.workload == Workload::kHashProbe ? hash_.keys()
                                               : index_.keys();
  Xoshiro256 rng(config_.seed ^ 0x9e3779b97f4a7c15ull * (lane + 1));
  std::vector<std::uint64_t> queries;
  queries.reserve(count);
  while (queries.size() < count) {
    if (rng.below(100) < hit_percent && !present.empty()) {
      queries.push_back(present[rng.below(present.size())]);
    } else {
      // A guaranteed miss: draw until the reference lookup rejects it.
      std::uint64_t candidate = 0;
      do {
        candidate = (rng() >> 1) | 1;
      } while (expected_lookup(candidate) != kMiss);
      queries.push_back(candidate);
    }
  }
  return queries;
}

// --- lookup issue / completion -----------------------------------------------

Status WorkloadEngine::send_payload(Lane& lane, fabric::NodeId dst,
                                    ByteSpan payload) {
  if (is_am_mode()) {
    return cluster_->am_runtime(lane.node).send(dst, am_handler_index_,
                                                payload);
  }
  return cluster_->runtime(lane.node).send_ifunc(dst, lane.ifunc_id, payload);
}

Status WorkloadEngine::issue_lookup(Lane& lane, std::uint64_t index) {
  if (e2e_hist_ != nullptr && index < lane.issue_ns.size()) {
    lane.issue_ns[index] = cluster_->transport().now_ns();
  }
  const std::uint64_t key = (*lane.queries)[index];
  ByteWriter w;
  fabric::NodeId dst = 0;
  if (config_.workload == Workload::kHashProbe) {
    const std::uint64_t slot = hash_.start_slot(key);
    w.u64(key);
    w.u64(slot);
    w.u64(hash_.capacity());  // probe budget: at most one full cycle
    w.u64(index);             // routing tag
    dst = cluster_->server_nodes()[slot / hash_.buckets_per_shard()];
  } else {
    w.u64(key);
    w.u64(0);  // the descent starts at the head node
    w.u64(ShardedOrderedIndex::kLevels - 1);
    w.u64(index);
    dst = cluster_->server_nodes()[0];  // node 0 lives on server 0
  }
  return send_payload(lane, dst, as_span(w.bytes()));
}

void WorkloadEngine::on_lookup_reply(Lane& lane, std::uint64_t tag,
                                     std::uint64_t value) {
  if (lane.queries == nullptr || tag >= lane.queries->size()) {
    lane.failed = true;
    return;
  }
  lane.values[tag] = value;
  if (e2e_hist_ != nullptr && tag < lane.issue_ns.size()) {
    const std::int64_t delta =
        cluster_->transport().now_ns() - lane.issue_ns[tag];
    e2e_hist_->record(delta > 0 ? static_cast<std::uint64_t>(delta) : 0);
  }
  ++lane.completed;
  if (lane.next_query < lane.queries->size()) {
    Status status = issue_lookup(lane, lane.next_query++);
    if (!status.is_ok()) lane.failed = true;
  }
}

Status WorkloadEngine::issue_bfs_seed(Lane& lane, std::uint64_t source) {
  ByteWriter w;
  w.u64(0);           // kind: visit
  w.u64(lane.index);
  w.u64(source);
  w.u64(~0ull);       // from: the chain origin engages the first server
  const fabric::NodeId dst =
      cluster_->server_nodes()[source / graph_.vertices_per_shard()];
  return send_payload(lane, dst, as_span(w.bytes()));
}

void WorkloadEngine::reset_bfs_lane(std::size_t lane_index) {
  for (std::size_t s = 0; s < cluster_->server_nodes().size(); ++s) {
    std::fill(bitmaps_[s][lane_index].begin(),
              bitmaps_[s][lane_index].end(), 0);
    cells_[s][lane_index].visited.store(0, std::memory_order_release);
    cells_[s][lane_index].engaged.store(0, std::memory_order_release);
    cells_[s][lane_index].parent.store(0, std::memory_order_release);
    cells_[s][lane_index].deficit.store(0, std::memory_order_release);
  }
}

std::uint64_t WorkloadEngine::sum_bfs_visited(std::size_t lane_index) const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < cells_.size(); ++s) {
    total += cells_[s][lane_index].visited.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t WorkloadEngine::bfs_visited(std::size_t server,
                                          std::size_t lane) const {
  return cells_.at(server)[lane].visited.load(std::memory_order_acquire);
}

std::pair<std::uint64_t, std::uint64_t> WorkloadEngine::frame_counts() const {
  if (is_am_mode() || !cluster_->has_ifunc_runtimes()) return {0, 0};
  std::uint64_t full = 0, truncated = 0;
  const std::size_t nodes = cluster_->node_count();
  for (fabric::NodeId node = 0; node < nodes; ++node) {
    const auto& stats = cluster_->runtime(node).stats();
    full += stats.frames_sent_full;
    truncated += stats.frames_sent_truncated;
  }
  return {full, truncated};
}

// --- run paths ---------------------------------------------------------------

StatusOr<WorkloadResult> WorkloadEngine::run_lookups(
    const std::vector<std::uint64_t>& keys, std::size_t lane_index) {
  if (config_.workload == Workload::kBfs) {
    return invalid_argument("run_lookups: BFS runs via run_bfs()");
  }
  if (lane_index >= lanes_.size()) {
    return invalid_argument("workloads: lane out of range");
  }
  if (keys.empty()) return invalid_argument("run_lookups: no queries");
  Lane& lane = lanes_[lane_index];
  lane.queries = &keys;
  lane.values.assign(keys.size(), 0);
  if (e2e_hist_ != nullptr) lane.issue_ns.assign(keys.size(), 0);
  lane.completed = 0;
  lane.failed = false;

  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();
  const std::uint64_t initial =
      std::min<std::uint64_t>(config_.window, keys.size());
  lane.next_query = initial;
  for (std::uint64_t i = 0; i < initial; ++i) {
    TC_RETURN_IF_ERROR(issue_lookup(lane, i));
  }
  TC_RETURN_IF_ERROR(cluster_->drive_until(lane.node, [&lane, &keys] {
    return lane.failed || lane.completed == keys.size();
  }));
  cluster_->settle();
  if (lane.failed) {
    return internal_error("workload lookup failed mid-flight");
  }

  WorkloadResult result;
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  result.completed = lane.completed;
  result.values = lane.values;
  for (std::uint64_t v : lane.values) {
    if (v != kMiss) ++result.hits;
  }
  result.ops_per_second =
      result.elapsed_ns > 0
          ? static_cast<double>(result.completed) * 1e9 /
                static_cast<double>(result.elapsed_ns)
          : 0.0;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

StatusOr<WorkloadResult> WorkloadEngine::run_lookups_all(
    const std::vector<std::vector<std::uint64_t>>& per_lane) {
  if (config_.workload == Workload::kBfs) {
    return invalid_argument("run_lookups_all: BFS runs via run_bfs_all()");
  }
  if (per_lane.empty() || per_lane.size() > lanes_.size()) {
    return invalid_argument("workloads: run_lookups_all needs 1..lanes "
                            "query streams");
  }
  const std::size_t m = per_lane.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (per_lane[i].empty()) {
      return invalid_argument("run_lookups_all: empty query stream");
    }
    Lane& lane = lanes_[i];
    lane.queries = &per_lane[i];
    lane.values.assign(per_lane[i].size(), 0);
    if (e2e_hist_ != nullptr) lane.issue_ns.assign(per_lane[i].size(), 0);
    lane.completed = 0;
    lane.failed = false;
  }

  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();

  if (cluster_->backend() == hetsim::Backend::kSim) {
    // Deterministic interleaving: every lane issues into the one virtual
    // timeline, a single event loop drains them all.
    for (std::size_t i = 0; i < m; ++i) {
      Lane& lane = lanes_[i];
      const std::uint64_t initial =
          std::min<std::uint64_t>(config_.window, per_lane[i].size());
      lane.next_query = initial;
      for (std::uint64_t q = 0; q < initial; ++q) {
        TC_RETURN_IF_ERROR(issue_lookup(lane, q));
      }
    }
    TC_RETURN_IF_ERROR(
        cluster_->drive_until(cluster_->client_node(), [this, m] {
          for (std::size_t i = 0; i < m; ++i) {
            if (lanes_[i].failed) return true;
            if (lanes_[i].completed != lanes_[i].queries->size()) {
              return false;
            }
          }
          return true;
        }));
  } else {
    // Real concurrency: one OS thread per initiator issues and completes
    // its own lane on its own client node.
    std::vector<std::thread> threads;
    std::vector<Status> status(m, Status::ok());
    for (std::size_t i = 0; i < m; ++i) {
      threads.emplace_back([this, i, &status] {
        Lane& lane = lanes_[i];
        const std::uint64_t n = lane.queries->size();
        const std::uint64_t initial =
            std::min<std::uint64_t>(config_.window, n);
        lane.next_query = initial;
        for (std::uint64_t q = 0; q < initial; ++q) {
          Status s = issue_lookup(lane, q);
          if (!s.is_ok()) {
            status[i] = std::move(s);
            lane.failed = true;
            return;
          }
        }
        status[i] = cluster_->drive_until(lane.node, [&lane, n] {
          return lane.failed || lane.completed == n;
        });
      });
    }
    for (std::thread& t : threads) t.join();
    for (Status& s : status) {
      if (!s.is_ok()) return std::move(s);
    }
  }
  cluster_->settle();

  WorkloadResult result;
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  for (std::size_t i = 0; i < m; ++i) {
    if (lanes_[i].failed) {
      return internal_error("concurrent workload lookups failed mid-flight");
    }
    result.completed += lanes_[i].completed;
    for (std::uint64_t v : lanes_[i].values) {
      if (v != kMiss) ++result.hits;
      result.values.push_back(v);
    }
  }
  result.ops_per_second =
      result.elapsed_ns > 0
          ? static_cast<double>(result.completed) * 1e9 /
                static_cast<double>(result.elapsed_ns)
          : 0.0;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

StatusOr<WorkloadResult> WorkloadEngine::run_bfs(std::uint64_t source,
                                                 std::size_t lane_index) {
  if (config_.workload != Workload::kBfs) {
    return invalid_argument("run_bfs: engine not configured for BFS");
  }
  if (lane_index >= lanes_.size()) {
    return invalid_argument("workloads: lane out of range");
  }
  if (source >= graph_.total_vertices()) {
    return invalid_argument("run_bfs: source vertex out of range");
  }
  Lane& lane = lanes_[lane_index];
  reset_bfs_lane(lane_index);
  lane.outstanding = 1;  // the seed message
  lane.failed = false;

  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();
  TC_RETURN_IF_ERROR(issue_bfs_seed(lane, source));
  TC_RETURN_IF_ERROR(cluster_->drive_until(lane.node, [&lane] {
    return lane.failed || lane.outstanding == 0;
  }));
  cluster_->settle();
  if (lane.failed) return internal_error("BFS failed mid-flight");

  WorkloadResult result;
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  result.completed = 1;
  result.hits = sum_bfs_visited(lane_index);
  result.values = {result.hits};
  result.ops_per_second =
      result.elapsed_ns > 0
          ? static_cast<double>(result.hits) * 1e9 /
                static_cast<double>(result.elapsed_ns)
          : 0.0;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

StatusOr<WorkloadResult> WorkloadEngine::run_bfs_all(
    const std::vector<std::uint64_t>& sources) {
  if (config_.workload != Workload::kBfs) {
    return invalid_argument("run_bfs_all: engine not configured for BFS");
  }
  if (sources.empty() || sources.size() > lanes_.size()) {
    return invalid_argument("workloads: run_bfs_all needs 1..lanes sources");
  }
  const std::size_t m = sources.size();
  for (std::size_t i = 0; i < m; ++i) {
    if (sources[i] >= graph_.total_vertices()) {
      return invalid_argument("run_bfs_all: source vertex out of range");
    }
    reset_bfs_lane(i);
    lanes_[i].outstanding = 1;
    lanes_[i].failed = false;
  }

  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();

  if (cluster_->backend() == hetsim::Backend::kSim) {
    for (std::size_t i = 0; i < m; ++i) {
      TC_RETURN_IF_ERROR(issue_bfs_seed(lanes_[i], sources[i]));
    }
    TC_RETURN_IF_ERROR(
        cluster_->drive_until(cluster_->client_node(), [this, m] {
          for (std::size_t i = 0; i < m; ++i) {
            if (lanes_[i].failed) return true;
            if (lanes_[i].outstanding != 0) return false;
          }
          return true;
        }));
  } else {
    std::vector<std::thread> threads;
    std::vector<Status> status(m, Status::ok());
    for (std::size_t i = 0; i < m; ++i) {
      threads.emplace_back([this, i, &sources, &status] {
        Lane& lane = lanes_[i];
        Status s = issue_bfs_seed(lane, sources[i]);
        if (!s.is_ok()) {
          status[i] = std::move(s);
          lane.failed = true;
          return;
        }
        status[i] = cluster_->drive_until(lane.node, [&lane] {
          return lane.failed || lane.outstanding == 0;
        });
      });
    }
    for (std::thread& t : threads) t.join();
    for (Status& s : status) {
      if (!s.is_ok()) return std::move(s);
    }
  }
  cluster_->settle();

  WorkloadResult result;
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  for (std::size_t i = 0; i < m; ++i) {
    if (lanes_[i].failed) {
      return internal_error("concurrent BFS failed mid-flight");
    }
    ++result.completed;
    const std::uint64_t visited = sum_bfs_visited(i);
    result.hits += visited;
    result.values.push_back(visited);
  }
  result.ops_per_second =
      result.elapsed_ns > 0
          ? static_cast<double>(result.hits) * 1e9 /
                static_cast<double>(result.elapsed_ns)
          : 0.0;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

}  // namespace tc::workloads
