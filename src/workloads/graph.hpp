// The distributed CSR graph of the workload suite: vertices are sharded
// contiguously (vertex V lives on server V / vertices_per_shard) and each
// server holds the CSR slice of its own vertices, with *global* column
// indices — an edge whose destination falls outside the shard is exactly
// the frontier hop the BFS kernel forwards to the owning server.
//
// Shard word layout (kCsr* in workloads/shard_layout.hpp — the shared
// source the kernel emitters derive their offsets from):
//   word kCsrVpsWord       — vertices_per_shard (the kernel derives
//                            ownership from it; shard sizes differ per
//                            server)
//   words 1 .. vps + 1     — row offsets (vps + 1 entries, offsets[0] == 0)
//   words vps + 2 ..       — column indices (global vertex ids)
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::workloads {

struct CsrGraphConfig {
  std::uint64_t vertices_per_shard = 64;
  std::uint64_t shard_count = 2;
  /// Out-degrees are uniform in [0, 2 * avg_degree], so the mean is
  /// avg_degree; destinations are uniform over all vertices.
  std::uint64_t avg_degree = 4;
  std::uint64_t seed = 0xbf5ull;
};

class ShardedCsrGraph {
 public:
  ShardedCsrGraph() = default;

  static StatusOr<ShardedCsrGraph> build(const CsrGraphConfig& config);

  std::uint64_t total_vertices() const { return total_; }
  std::uint64_t vertices_per_shard() const { return vertices_per_shard_; }
  std::uint64_t shard_count() const { return shards_.size(); }

  std::vector<std::uint64_t>& shard(std::uint64_t server) {
    return shards_[server];
  }
  const std::vector<std::uint64_t>& shard(std::uint64_t server) const {
    return shards_[server];
  }

  /// Worst-case worklist depth of one kernel invocation on `server`: the
  /// incoming vertex plus every intra-shard edge (each can push once).
  std::uint64_t worklist_bound(std::uint64_t server) const;

  /// Out-neighbors of a vertex, read back through the CSR slices.
  std::vector<std::uint64_t> neighbors(std::uint64_t v) const;

  /// Reference BFS on a single node: how many vertices are reachable from
  /// `source` (the source itself included).
  std::uint64_t reachable_count(std::uint64_t source) const;

 private:
  std::uint64_t total_ = 0;
  std::uint64_t vertices_per_shard_ = 0;
  std::vector<std::vector<std::uint64_t>> shards_;
};

}  // namespace tc::workloads
