#include "workloads/graph.hpp"

#include "common/rng.hpp"

namespace tc::workloads {

StatusOr<ShardedCsrGraph> ShardedCsrGraph::build(
    const CsrGraphConfig& config) {
  if (config.vertices_per_shard == 0 || config.shard_count == 0) {
    return invalid_argument("csr graph: zero shards or shard size");
  }

  ShardedCsrGraph graph;
  graph.total_ = config.vertices_per_shard * config.shard_count;
  graph.vertices_per_shard_ = config.vertices_per_shard;
  graph.shards_.resize(config.shard_count);

  // One seeded stream drawn vertex-major, so the graph is identical no
  // matter which backend or representation later walks it.
  Xoshiro256 rng(config.seed);
  for (std::uint64_t s = 0; s < config.shard_count; ++s) {
    std::vector<std::uint64_t>& shard = graph.shards_[s];
    shard.push_back(config.vertices_per_shard);
    std::vector<std::uint64_t> cols;
    std::vector<std::uint64_t> rows = {0};
    for (std::uint64_t i = 0; i < config.vertices_per_shard; ++i) {
      const std::uint64_t degree = rng.below(2 * config.avg_degree + 1);
      for (std::uint64_t d = 0; d < degree; ++d) {
        cols.push_back(rng.below(graph.total_));
      }
      rows.push_back(cols.size());
    }
    shard.insert(shard.end(), rows.begin(), rows.end());
    shard.insert(shard.end(), cols.begin(), cols.end());
  }
  return graph;
}

std::uint64_t ShardedCsrGraph::worklist_bound(std::uint64_t server) const {
  const std::vector<std::uint64_t>& shard = shards_[server];
  std::uint64_t intra = 0;
  const std::uint64_t edges = shard[1 + vertices_per_shard_];
  for (std::uint64_t e = 0; e < edges; ++e) {
    const std::uint64_t dst = shard[2 + vertices_per_shard_ + e];
    if (dst / vertices_per_shard_ == server) ++intra;
  }
  return intra + 1;
}

std::vector<std::uint64_t> ShardedCsrGraph::neighbors(std::uint64_t v) const {
  const std::vector<std::uint64_t>& shard = shards_[v / vertices_per_shard_];
  const std::uint64_t local = v % vertices_per_shard_;
  const std::uint64_t row = shard[1 + local];
  const std::uint64_t end = shard[2 + local];
  std::vector<std::uint64_t> out;
  out.reserve(end - row);
  for (std::uint64_t e = row; e < end; ++e) {
    out.push_back(shard[2 + vertices_per_shard_ + e]);
  }
  return out;
}

std::uint64_t ShardedCsrGraph::reachable_count(std::uint64_t source) const {
  std::vector<bool> visited(total_, false);
  std::vector<std::uint64_t> frontier = {source};
  visited[source] = true;
  std::uint64_t count = 1;
  while (!frontier.empty()) {
    const std::uint64_t v = frontier.back();
    frontier.pop_back();
    for (std::uint64_t u : neighbors(v)) {
      if (!visited[u]) {
        visited[u] = true;
        ++count;
        frontier.push_back(u);
      }
    }
  }
  return count;
}

}  // namespace tc::workloads
