#include "workloads/hash_table.hpp"

#include <unordered_set>

#include "common/rng.hpp"

namespace tc::workloads {

std::uint64_t ShardedHashTable::mix(std::uint64_t key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

StatusOr<ShardedHashTable> ShardedHashTable::build(
    const HashTableConfig& config) {
  if (config.buckets_per_shard == 0 || config.shard_count == 0) {
    return invalid_argument("hash table: zero shards or shard size");
  }
  if (config.fill_percent == 0 || config.fill_percent >= 100) {
    return invalid_argument(
        "hash table: fill_percent must be in (0, 100) so probe chains "
        "terminate");
  }

  ShardedHashTable table;
  table.capacity_ = config.buckets_per_shard * config.shard_count;
  table.buckets_per_shard_ = config.buckets_per_shard;
  table.shards_.assign(
      config.shard_count,
      std::vector<std::uint64_t>(2 * config.buckets_per_shard, 0));

  const std::uint64_t inserted =
      table.capacity_ * config.fill_percent / 100;
  Xoshiro256 rng(config.seed);
  std::unordered_set<std::uint64_t> used;
  while (table.keys_.size() < inserted) {
    const std::uint64_t key = rng() | 1;  // nonzero (0 marks empty buckets)
    if (!used.insert(key).second) continue;
    std::uint64_t slot = table.start_slot(key);
    while (table.bucket_key(slot) != 0) slot = (slot + 1) % table.capacity_;
    auto& shard = table.shards_[slot / config.buckets_per_shard];
    const std::uint64_t local = 2 * (slot % config.buckets_per_shard);
    shard[local] = key;
    shard[local + 1] = mix(key ^ config.seed) >> 1;  // value < 2^63 != kMiss
    table.keys_.push_back(key);
  }
  return table;
}

std::uint64_t ShardedHashTable::lookup(std::uint64_t key) const {
  std::uint64_t slot = start_slot(key);
  for (std::uint64_t probes = 0; probes < capacity_; ++probes) {
    const auto& shard = shards_[slot / buckets_per_shard_];
    const std::uint64_t local = 2 * (slot % buckets_per_shard_);
    if (shard[local] == key) return shard[local + 1];
    if (shard[local] == 0) return kMiss;
    slot = (slot + 1) % capacity_;
  }
  return kMiss;
}

double ShardedHashTable::cross_shard_fraction() const {
  std::uint64_t crossing = 0;
  for (std::uint64_t key : keys_) {
    std::uint64_t slot = start_slot(key);
    const std::uint64_t home_shard = slot / buckets_per_shard_;
    while (bucket_key(slot) != key) {
      slot = (slot + 1) % capacity_;
    }
    if (slot / buckets_per_shard_ != home_shard) ++crossing;
  }
  return keys_.empty()
             ? 0.0
             : static_cast<double>(crossing) /
                   static_cast<double>(keys_.size());
}

}  // namespace tc::workloads
