// IR optimization pipeline used before JIT codegen. Mirrors the paper's
// observation that shipping *unoptimized* portable bitcode and optimizing on
// the target lets the backend specialize for the local µarch (SVE on A64FX,
// AVX2 on Xeon) — the pipeline runs with the receiving node's TargetMachine.
#pragma once

#include <llvm/IR/Module.h>
#include <llvm/Target/TargetMachine.h>

#include "common/status.hpp"
#include "jit/jit_types.hpp"

namespace tc::jit {

/// Runs the standard per-module pipeline at `level` tuned for `machine`.
Status optimize_module(llvm::Module& module, llvm::TargetMachine& machine,
                       OptLevel level);

}  // namespace tc::jit
