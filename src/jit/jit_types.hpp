// LLVM-free value types shared between the JIT layer and the rest of the
// runtime. Everything here must compile in TC_WITH_LLVM=OFF builds: the
// CodeCache, the Runtime options surface, and the hetsim cost model all
// speak these types even when the ORC engine itself is compiled out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tc::jit {

enum class OptLevel : std::uint8_t { kO0 = 0, kO1 = 1, kO2 = 2, kO3 = 3 };

/// Per-addition compile statistics (feeds the overhead-breakdown tables).
struct CompileStats {
  std::int64_t parse_ns = 0;     ///< bitcode -> module (0 for objects)
  std::int64_t optimize_ns = 0;  ///< IR pipeline (0 for objects)
  std::int64_t compile_ns = 0;   ///< ORC materialization + link
  std::size_t code_bytes = 0;    ///< input representation size
};

struct EngineOptions {
  OptLevel opt_level = OptLevel::kO2;
  /// Tune codegen for the host µarch (CPU name + features), the paper's
  /// "emit machine code specialized for the CPU it is running on".
  bool tune_for_host = true;
  /// Host symbols injected into every ifunc dylib as absolute definitions
  /// (the tc_ctx_* runtime hooks). Entries are (symbol name, address).
  /// Explicit definitions keep the link independent of whether the hosting
  /// executable exported its symbols dynamically (-rdynamic).
  std::vector<std::pair<std::string, void*>> extra_symbols;
};

/// Execution tier of a materialized ifunc. Tiered execution runs portable
/// bytecode through the interpreter immediately on first arrival (zero
/// compile stall) and promotes hot ifuncs to JIT-compiled native code once
/// they cross the runtime's invocation threshold.
enum class Tier : std::uint8_t {
  kInterpreted = 0,  ///< portable bytecode in the vm interpreter
  kJit = 1,          ///< ORC-JIT compiled from shipped bitcode
  kLinked = 2,       ///< pre-compiled object, link-only deployment
};

const char* tier_name(Tier tier);

}  // namespace tc::jit
