#include "jit/engine.hpp"

#include <chrono>

#include <llvm/ExecutionEngine/Orc/ExecutionUtils.h>
#include <llvm/ExecutionEngine/Orc/JITTargetMachineBuilder.h>
#include <llvm/ExecutionEngine/Orc/ThreadSafeModule.h>
#include <llvm/Support/MemoryBuffer.h>

#include "ir/bitcode.hpp"
#include "ir/target_info.hpp"

namespace tc::jit {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string llvm_error_string(llvm::Error err) {
  return llvm::toString(std::move(err));
}

llvm::CodeGenOpt::Level codegen_level(OptLevel level) {
  switch (level) {
    case OptLevel::kO0: return llvm::CodeGenOpt::None;
    case OptLevel::kO1: return llvm::CodeGenOpt::Less;
    case OptLevel::kO2: return llvm::CodeGenOpt::Default;
    case OptLevel::kO3: return llvm::CodeGenOpt::Aggressive;
  }
  return llvm::CodeGenOpt::Default;
}

}  // namespace

StatusOr<std::unique_ptr<OrcEngine>> OrcEngine::create(
    const EngineOptions& options) {
  ir::initialize_llvm();

  auto jtmb_or = options.tune_for_host
                     ? llvm::orc::JITTargetMachineBuilder::detectHost()
                     : llvm::orc::JITTargetMachineBuilder(
                           llvm::Triple(ir::host_triple()));
  if (!jtmb_or) {
    return jit_failure("detectHost: " +
                       llvm_error_string(jtmb_or.takeError()));
  }
  jtmb_or->setCodeGenOptLevel(codegen_level(options.opt_level));

  auto jit_or = llvm::orc::LLJITBuilder()
                    .setJITTargetMachineBuilder(std::move(*jtmb_or))
                    .create();
  if (!jit_or) {
    return jit_failure("LLJITBuilder: " +
                       llvm_error_string(jit_or.takeError()));
  }

  auto engine = std::unique_ptr<OrcEngine>(new OrcEngine());
  engine->jit_ = std::move(*jit_or);
  engine->options_ = options;
  engine->triple_ =
      engine->jit_->getTargetTriple().str();
  return engine;
}

OrcEngine::~OrcEngine() = default;

StatusOr<llvm::orc::JITDylib*> OrcEngine::make_dylib(
    const std::string& name, const std::vector<std::string>& deps) {
  auto dylib_or = jit_->createJITDylib(name);
  if (!dylib_or) {
    return jit_failure("createJITDylib(" + name + "): " +
                       llvm_error_string(dylib_or.takeError()));
  }
  llvm::orc::JITDylib& dylib = *dylib_or;

  // Source 0: explicit absolute definitions of the runtime hooks, so JIT'd
  // ifuncs link against this runtime even in fully static executables.
  if (!options_.extra_symbols.empty()) {
    llvm::orc::SymbolMap hooks;
    for (const auto& [sym_name, address] : options_.extra_symbols) {
      hooks[jit_->mangleAndIntern(sym_name)] = llvm::JITEvaluatedSymbol(
          static_cast<llvm::JITTargetAddress>(
              reinterpret_cast<std::uintptr_t>(address)),
          llvm::JITSymbolFlags::Exported | llvm::JITSymbolFlags::Callable);
    }
    if (auto err = dylib.define(llvm::orc::absoluteSymbols(std::move(hooks)))) {
      return jit_failure("define hooks: " +
                         llvm_error_string(std::move(err)));
    }
  }

  const char prefix = jit_->getDataLayout().getGlobalPrefix();
  // Source 1: the host process — runtime hooks and libc.
  auto process_gen =
      llvm::orc::DynamicLibrarySearchGenerator::GetForCurrentProcess(prefix);
  if (!process_gen) {
    return jit_failure("process symbol generator: " +
                       llvm_error_string(process_gen.takeError()));
  }
  dylib.addGenerator(std::move(*process_gen));

  // Source 2: the declared dependency manifest (`foo.deps`), dlopen'ed now,
  // before invocation — matching the paper's workflow.
  for (const std::string& dep : deps) {
    auto dep_gen = llvm::orc::DynamicLibrarySearchGenerator::Load(
        dep.c_str(), prefix);
    if (!dep_gen) {
      return not_found("dependency '" + dep +
                       "': " + llvm_error_string(dep_gen.takeError()));
    }
    dylib.addGenerator(std::move(*dep_gen));
  }
  return &dylib;
}

StatusOr<abi::EntryFn> OrcEngine::add_ifunc_bitcode(
    const std::string& name, ByteSpan bitcode,
    const std::vector<std::string>& deps, CompileStats* stats) {
  CompileStats local_stats;
  local_stats.code_bytes = bitcode.size();

  const std::int64_t t0 = now_ns();
  auto context = std::make_unique<llvm::LLVMContext>();
  auto module_or = ir::bitcode_to_module(bitcode, *context, name);
  if (!module_or.is_ok()) return module_or.status();
  std::unique_ptr<llvm::Module> module = std::move(module_or).value();
  const std::int64_t t1 = now_ns();
  local_stats.parse_ns = t1 - t0;

  // Retarget the portable bitcode at the *local* machine and optimize with
  // its µarch in view (the fat-bitcode entry may carry a generic CPU).
  {
    ir::TargetDescriptor host = ir::host_descriptor();
    if (!options_.tune_for_host) host.cpu.clear(), host.features.clear();
    if (!ir::triple_is_host_compatible(module->getTargetTriple())) {
      return bad_bitcode("module triple " + module->getTargetTriple() +
                         " does not run on host " + triple_);
    }
    TC_ASSIGN_OR_RETURN(auto machine, ir::make_target_machine(host));
    module->setDataLayout(machine->createDataLayout());
    TC_RETURN_IF_ERROR(
        optimize_module(*module, *machine, options_.opt_level));
  }
  const std::int64_t t2 = now_ns();
  local_stats.optimize_ns = t2 - t1;

  TC_ASSIGN_OR_RETURN(llvm::orc::JITDylib * dylib, make_dylib(name, deps));
  if (auto err = jit_->addIRModule(
          *dylib, llvm::orc::ThreadSafeModule(std::move(module),
                                              std::move(context)))) {
    return jit_failure("addIRModule(" + name + "): " +
                       llvm_error_string(std::move(err)));
  }
  auto entry_or = jit_->lookup(*dylib, abi::kEntryName);
  if (!entry_or) {
    return jit_failure("lookup " + std::string(abi::kEntryName) + " in " +
                       name + ": " + llvm_error_string(entry_or.takeError()));
  }
  local_stats.compile_ns = now_ns() - t2;
  ++library_count_;
  if (stats != nullptr) *stats = local_stats;
  return reinterpret_cast<abi::EntryFn>(
      static_cast<std::uintptr_t>(entry_or->getAddress()));
}

StatusOr<abi::EntryFn> OrcEngine::add_ifunc_object(
    const std::string& name, ByteSpan object,
    const std::vector<std::string>& deps, CompileStats* stats) {
  CompileStats local_stats;
  local_stats.code_bytes = object.size();

  const std::int64_t t0 = now_ns();
  TC_ASSIGN_OR_RETURN(llvm::orc::JITDylib * dylib, make_dylib(name, deps));
  auto buffer = llvm::MemoryBuffer::getMemBufferCopy(
      llvm::StringRef(reinterpret_cast<const char*>(object.data()),
                      object.size()),
      name);
  if (auto err = jit_->addObjectFile(*dylib, std::move(buffer))) {
    return jit_failure("addObjectFile(" + name + "): " +
                       llvm_error_string(std::move(err)));
  }
  auto entry_or = jit_->lookup(*dylib, abi::kEntryName);
  if (!entry_or) {
    return jit_failure("lookup " + std::string(abi::kEntryName) + " in " +
                       name + ": " + llvm_error_string(entry_or.takeError()));
  }
  local_stats.compile_ns = now_ns() - t0;  // pure link cost
  ++library_count_;
  if (stats != nullptr) *stats = local_stats;
  return reinterpret_cast<abi::EntryFn>(
      static_cast<std::uintptr_t>(entry_or->getAddress()));
}

Status OrcEngine::remove_library(const std::string& ifunc_name) {
  llvm::orc::JITDylib* dylib =
      jit_->getExecutionSession().getJITDylibByName(ifunc_name);
  if (dylib == nullptr) {
    return not_found("no ifunc library named " + ifunc_name);
  }
  if (auto err = jit_->getExecutionSession().removeJITDylib(*dylib)) {
    return jit_failure("removeJITDylib(" + ifunc_name +
                       "): " + llvm_error_string(std::move(err)));
  }
  --library_count_;
  return Status::ok();
}

StatusOr<std::uint64_t> OrcEngine::lookup(const std::string& ifunc_name,
                                          const std::string& symbol) {
  llvm::orc::JITDylib* dylib =
      jit_->getExecutionSession().getJITDylibByName(ifunc_name);
  if (dylib == nullptr) {
    return not_found("no ifunc library named " + ifunc_name);
  }
  auto sym_or = jit_->lookup(*dylib, symbol);
  if (!sym_or) {
    return not_found("symbol " + symbol + " in " + ifunc_name + ": " +
                     llvm_error_string(sym_or.takeError()));
  }
  return sym_or->getAddress();
}

}  // namespace tc::jit
