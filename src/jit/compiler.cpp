#include "jit/compiler.hpp"

#include <llvm/IR/LegacyPassManager.h>
#include <llvm/Support/raw_ostream.h>

#include "ir/bitcode.hpp"

namespace tc::jit {

StatusOr<Bytes> compile_to_object(llvm::Module& module,
                                  const ir::TargetDescriptor& target,
                                  OptLevel level) {
  TC_ASSIGN_OR_RETURN(auto machine, ir::make_target_machine(target));
  const std::string module_triple =
      ir::normalize_triple(module.getTargetTriple());
  const std::string want_triple = ir::normalize_triple(target.triple);
  if (module_triple != want_triple) {
    return invalid_argument("compile_to_object: module triple " +
                            module_triple + " != target " + want_triple);
  }
  TC_RETURN_IF_ERROR(optimize_module(module, *machine, level));

  llvm::SmallVector<char, 0> buffer;
  llvm::raw_svector_ostream os(buffer);
  llvm::legacy::PassManager pm;
  if (machine->addPassesToEmitFile(pm, os, nullptr,
                                   llvm::CGFT_ObjectFile)) {
    return jit_failure("target " + want_triple +
                       " cannot emit object files");
  }
  pm.run(module);
  return Bytes(buffer.begin(), buffer.end());
}

StatusOr<ir::FatBitcode> compile_archive_to_objects(
    const ir::FatBitcode& bitcode_archive, OptLevel level) {
  if (bitcode_archive.repr() != ir::CodeRepr::kBitcode) {
    return invalid_argument(
        "compile_archive_to_objects: archive is not bitcode");
  }
  ir::FatBitcode out(ir::CodeRepr::kObject);
  for (const ir::ArchiveEntry& entry : bitcode_archive.entries()) {
    llvm::LLVMContext context;
    TC_ASSIGN_OR_RETURN(
        auto module, ir::bitcode_to_module(as_span(entry.code), context));
    TC_ASSIGN_OR_RETURN(Bytes object,
                        compile_to_object(*module, entry.target, level));
    TC_RETURN_IF_ERROR(out.add_entry(entry.target, std::move(object)));
  }
  for (const std::string& dep : bitcode_archive.dependencies()) {
    out.add_dependency(dep);
  }
  return out;
}

}  // namespace tc::jit
