#include "jit/optimizer.hpp"

#include <llvm/Passes/PassBuilder.h>

namespace tc::jit {

Status optimize_module(llvm::Module& module, llvm::TargetMachine& machine,
                       OptLevel level) {
  if (level == OptLevel::kO0) return Status::ok();

  llvm::OptimizationLevel opt;
  switch (level) {
    case OptLevel::kO1: opt = llvm::OptimizationLevel::O1; break;
    case OptLevel::kO2: opt = llvm::OptimizationLevel::O2; break;
    default: opt = llvm::OptimizationLevel::O3; break;
  }

  llvm::LoopAnalysisManager lam;
  llvm::FunctionAnalysisManager fam;
  llvm::CGSCCAnalysisManager cgam;
  llvm::ModuleAnalysisManager mam;

  llvm::PassBuilder pb(&machine);
  pb.registerModuleAnalyses(mam);
  pb.registerCGSCCAnalyses(cgam);
  pb.registerFunctionAnalyses(fam);
  pb.registerLoopAnalyses(lam);
  pb.crossRegisterProxies(lam, fam, cgam, mam);

  llvm::ModulePassManager mpm = pb.buildPerModuleDefaultPipeline(opt);
  mpm.run(module, mam);
  return Status::ok();
}

}  // namespace tc::jit
