// OrcEngine: the per-node JIT, wrapping LLVM ORC's LLJIT.
//
// Each receiving runtime owns one engine. Every ifunc library materializes
// into its own JITDylib (so each can export the same `tc_main` entry), with
// two symbol sources attached:
//   1. the host process itself — resolving the tc_ctx_* runtime hooks, i.e.
//      remotely injected code dynamically links against the communication
//      runtime (the paper's headline linking capability), and
//   2. the ifunc's declared shared-library dependencies, dlopen'ed on demand
//      (the `.deps` manifest).
//
// Both representations land here: bitcode is optimized + compiled by ORC;
// pre-compiled relocatable objects are only linked (RuntimeDyld), which is
// the binary-ifunc fast path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <llvm/ExecutionEngine/Orc/LLJIT.h>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ir/abi.hpp"
#include "jit/jit_types.hpp"
#include "jit/optimizer.hpp"

namespace tc::jit {

class OrcEngine {
 public:
  static StatusOr<std::unique_ptr<OrcEngine>> create(
      const EngineOptions& options = {});

  ~OrcEngine();
  OrcEngine(const OrcEngine&) = delete;
  OrcEngine& operator=(const OrcEngine&) = delete;

  /// Adds an ifunc library from bitcode: parse, optimize for the local
  /// machine, JIT-compile, link deps, and resolve the entry point.
  StatusOr<abi::EntryFn> add_ifunc_bitcode(
      const std::string& name, ByteSpan bitcode,
      const std::vector<std::string>& deps, CompileStats* stats = nullptr);

  /// Adds an ifunc library from a pre-compiled relocatable object: link
  /// only — no IR work (binary representation).
  StatusOr<abi::EntryFn> add_ifunc_object(
      const std::string& name, ByteSpan object,
      const std::vector<std::string>& deps, CompileStats* stats = nullptr);

  /// Looks up an arbitrary symbol inside a previously added ifunc library.
  StatusOr<std::uint64_t> lookup(const std::string& ifunc_name,
                                 const std::string& symbol);

  /// Removes a previously added ifunc library, releasing its JIT'd code
  /// (the de-registration path; also used by cache eviction). Entry
  /// pointers obtained from it become invalid.
  Status remove_library(const std::string& ifunc_name);

  /// Number of ifunc libraries materialized in this engine.
  std::size_t library_count() const { return library_count_; }

  /// The triple this engine generates code for (host).
  const std::string& triple() const { return triple_; }

 private:
  OrcEngine() = default;

  StatusOr<llvm::orc::JITDylib*> make_dylib(
      const std::string& name, const std::vector<std::string>& deps);

  std::unique_ptr<llvm::orc::LLJIT> jit_;
  EngineOptions options_;
  std::string triple_;
  std::size_t library_count_ = 0;
};

}  // namespace tc::jit
