// Ahead-of-time compilation of ifunc bitcode to relocatable objects — the
// *binary* code representation (paper §III-B reimplemented on LLVM, see
// DESIGN.md §1): machine code is produced at the source, shipped, and only
// *linked* on the target, skipping the JIT compile entirely.
//
// Because LLVM is natively a cross-compiler, objects can be produced for any
// registered target (e.g. AArch64 objects from an x86_64 source node), which
// is how binary fat archives for heterogeneous clusters are assembled.
#pragma once

#include <llvm/IR/Module.h>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/target_info.hpp"
#include "jit/optimizer.hpp"

namespace tc::jit {

/// Optimizes (at `level`, tuned for `target`) and codegens `module` into a
/// relocatable ELF object. The module's triple must match `target`.
StatusOr<Bytes> compile_to_object(llvm::Module& module,
                                  const ir::TargetDescriptor& target,
                                  OptLevel level = OptLevel::kO2);

/// Compiles every entry of a *bitcode* archive into an *object* archive with
/// the same targets and dependencies.
StatusOr<ir::FatBitcode> compile_archive_to_objects(
    const ir::FatBitcode& bitcode_archive, OptLevel level = OptLevel::kO2);

}  // namespace tc::jit
