#include "jit/code_cache.hpp"

namespace tc::jit {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kInterpreted: return "interpreted";
    case Tier::kJit: return "jit";
    case Tier::kLinked: return "linked";
  }
  return "unknown";
}

CachedIfunc* CodeCache::find(std::uint64_t ifunc_id) {
  auto it = entries_.find(ifunc_id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  it->second.last_used_tick = ++tick_;
  return &it->second;
}

CachedIfunc* CodeCache::peek(std::uint64_t ifunc_id) {
  auto it = entries_.find(ifunc_id);
  return it == entries_.end() ? nullptr : &it->second;
}

Status CodeCache::insert(std::uint64_t ifunc_id, CachedIfunc ifunc,
                         std::uint64_t* evicted) {
  if (entries_.contains(ifunc_id)) {
    return already_exists("ifunc " + std::to_string(ifunc_id) +
                          " already cached");
  }
  if (capacity_ != 0 && entries_.size() >= capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used_tick < lru->second.last_used_tick) lru = it;
    }
    if (evicted != nullptr) *evicted = lru->first;
    entries_.erase(lru);
    ++stats_.evictions;
  }
  ifunc.last_used_tick = ++tick_;
  stats_.total_compile_ns += ifunc.compile_stats.parse_ns +
                             ifunc.compile_stats.optimize_ns +
                             ifunc.compile_stats.compile_ns;
  entries_.emplace(ifunc_id, ifunc);
  return Status::ok();
}

Status CodeCache::erase(std::uint64_t ifunc_id) {
  if (entries_.erase(ifunc_id) == 0) {
    return not_found("ifunc " + std::to_string(ifunc_id) + " not cached");
  }
  return Status::ok();
}

}  // namespace tc::jit
