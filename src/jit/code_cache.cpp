#include "jit/code_cache.hpp"

namespace tc::jit {

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kInterpreted: return "interpreted";
    case Tier::kJit: return "jit";
    case Tier::kLinked: return "linked";
  }
  return "unknown";
}

CodeCache::CodeCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity),
      shards_(shards == 0 ? kDefaultShards : shards) {}

// Moves are configuration-time only (Runtime construction), never
// concurrent with use; counters transfer relaxed.
CodeCache::CodeCache(CodeCache&& other) noexcept
    : capacity_(other.capacity_),
      tick_(other.tick_.load(std::memory_order_relaxed)),
      size_(other.size_.load(std::memory_order_relaxed)),
      shards_(std::move(other.shards_)),
      hits_(other.hits_.load(std::memory_order_relaxed)),
      misses_(other.misses_.load(std::memory_order_relaxed)),
      evictions_(other.evictions_.load(std::memory_order_relaxed)),
      total_compile_ns_(
          other.total_compile_ns_.load(std::memory_order_relaxed)) {}

CodeCache& CodeCache::operator=(CodeCache&& other) noexcept {
  capacity_ = other.capacity_;
  tick_ = other.tick_.load(std::memory_order_relaxed);
  size_ = other.size_.load(std::memory_order_relaxed);
  shards_ = std::move(other.shards_);
  hits_ = other.hits_.load(std::memory_order_relaxed);
  misses_ = other.misses_.load(std::memory_order_relaxed);
  evictions_ = other.evictions_.load(std::memory_order_relaxed);
  total_compile_ns_ = other.total_compile_ns_.load(std::memory_order_relaxed);
  return *this;
}

CachedIfunc* CodeCache::find(std::uint64_t ifunc_id) {
  Shard& shard = shards_[shard_for(ifunc_id)];
  std::lock_guard lock(shard.mu);
  auto it = shard.entries.find(ifunc_id);
  if (it == shard.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.last_used_tick.store(
      tick_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return &it->second;
}

CachedIfunc* CodeCache::peek(std::uint64_t ifunc_id) {
  Shard& shard = shards_[shard_for(ifunc_id)];
  std::lock_guard lock(shard.mu);
  auto it = shard.entries.find(ifunc_id);
  return it == shard.entries.end() ? nullptr : &it->second;
}

bool CodeCache::contains(std::uint64_t ifunc_id) const {
  const Shard& shard = shards_[shard_for(ifunc_id)];
  std::lock_guard lock(shard.mu);
  return shard.entries.contains(ifunc_id);
}

Status CodeCache::insert(std::uint64_t ifunc_id, const CachedIfunc& ifunc,
                         std::uint64_t* evicted) {
  const std::size_t home = shard_for(ifunc_id);
  if (capacity_ == 0) {
    // Unbounded: single-shard critical section, the concurrent hot path.
    Shard& shard = shards_[home];
    std::lock_guard lock(shard.mu);
    if (shard.entries.contains(ifunc_id)) {
      return already_exists("ifunc " + std::to_string(ifunc_id) +
                            " already cached");
    }
    auto [it, inserted] = shard.entries.emplace(ifunc_id, ifunc);
    (void)inserted;
    it->second.last_used_tick.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    size_.fetch_add(1, std::memory_order_relaxed);
    total_compile_ns_.fetch_add(ifunc.compile_stats.parse_ns +
                                    ifunc.compile_stats.optimize_ns +
                                    ifunc.compile_stats.compile_ns,
                                std::memory_order_relaxed);
    return Status::ok();
  }

  // Bounded: take every shard lock (index order — deadlock-free) so the
  // duplicate check, the global-LRU scan and the insert are one atomic
  // step. Bounded caches are small and eviction-heavy by definition; exact
  // LRU matters more than shard parallelism here.
  for (Shard& shard : shards_) shard.mu.lock();
  Status status = Status::ok();
  if (shards_[home].entries.contains(ifunc_id)) {
    status = already_exists("ifunc " + std::to_string(ifunc_id) +
                            " already cached");
  } else {
    if (size_.load(std::memory_order_relaxed) >= capacity_) {
      Shard* lru_shard = nullptr;
      std::uint64_t lru_id = 0;
      std::uint64_t lru_tick = ~0ull;
      for (Shard& shard : shards_) {
        for (auto& [id, entry] : shard.entries) {
          const std::uint64_t t =
              entry.last_used_tick.load(std::memory_order_relaxed);
          if (t < lru_tick) {
            lru_tick = t;
            lru_id = id;
            lru_shard = &shard;
          }
        }
      }
      if (lru_shard != nullptr) {
        if (evicted != nullptr) *evicted = lru_id;
        lru_shard->entries.erase(lru_id);
        size_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    auto [it, inserted] = shards_[home].entries.emplace(ifunc_id, ifunc);
    (void)inserted;
    it->second.last_used_tick.store(
        tick_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    size_.fetch_add(1, std::memory_order_relaxed);
    total_compile_ns_.fetch_add(ifunc.compile_stats.parse_ns +
                                    ifunc.compile_stats.optimize_ns +
                                    ifunc.compile_stats.compile_ns,
                                std::memory_order_relaxed);
  }
  for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) it->mu.unlock();
  return status;
}

Status CodeCache::erase(std::uint64_t ifunc_id) {
  Shard& shard = shards_[shard_for(ifunc_id)];
  std::lock_guard lock(shard.mu);
  if (shard.entries.erase(ifunc_id) == 0) {
    return not_found("ifunc " + std::to_string(ifunc_id) + " not cached");
  }
  size_.fetch_sub(1, std::memory_order_relaxed);
  return Status::ok();
}

}  // namespace tc::jit
