// CodeCache: the target-side registry of already-materialized ifuncs,
// keyed by ifunc wire identity. A hit skips parse/optimize/compile entirely
// and the frame sender may truncate the code section (paper §III-D).
//
// With tiered execution an entry also records *which* tier currently backs
// it: portable archives enter at Tier::kInterpreted (zero compile) and are
// rewritten in place to Tier::kJit when the runtime promotes them past the
// invocation threshold.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/status.hpp"
#include "ir/abi.hpp"
#include "jit/jit_types.hpp"

namespace tc::jit {

struct CachedIfunc {
  /// Native entry point; null while the entry is interpreter-backed.
  abi::EntryFn entry = nullptr;
  Tier tier = Tier::kJit;
  CompileStats compile_stats;
  std::uint64_t invocations = 0;
  std::uint64_t last_used_tick = 0;
};

class CodeCache {
 public:
  /// capacity 0 = unbounded. A bounded cache evicts its least-recently-used
  /// entry on insert (the eviction is reported to the caller, which must
  /// release the JIT resources — see Runtime).
  explicit CodeCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Looks up by 64-bit ifunc identity; counts a hit or miss and freshens
  /// the entry's LRU position.
  CachedIfunc* find(std::uint64_t ifunc_id);

  /// Protocol-neutral lookup: no hit/miss accounting, no LRU freshening.
  /// Used for bookkeeping updates (invocation counts, tier promotion).
  CachedIfunc* peek(std::uint64_t ifunc_id);

  /// Inserts a newly compiled ifunc. Fails with kAlreadyExists on repeats —
  /// a repeated full frame for a cached ifunc is a protocol anomaly the
  /// runtime tolerates but the cache reports. When the cache is full, the
  /// LRU entry is evicted and its id stored in `evicted` (if non-null).
  Status insert(std::uint64_t ifunc_id, CachedIfunc ifunc,
                std::uint64_t* evicted = nullptr);

  Status erase(std::uint64_t ifunc_id);

  bool contains(std::uint64_t ifunc_id) const {
    return entries_.contains(ifunc_id);
  }
  std::size_t size() const { return entries_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::int64_t total_compile_ns = 0;  ///< JIT time the cache amortizes
  };
  const Stats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::unordered_map<std::uint64_t, CachedIfunc> entries_;
  Stats stats_;
};

}  // namespace tc::jit
