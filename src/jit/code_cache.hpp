// CodeCache: the target-side registry of already-materialized ifuncs,
// keyed by ifunc wire identity. A hit skips parse/optimize/compile entirely
// and the frame sender may truncate the code section (paper §III-D).
//
// With tiered execution an entry also records *which* tier currently backs
// it: portable archives enter at Tier::kInterpreted (zero compile) and are
// rewritten in place to Tier::kJit when the runtime promotes them past the
// invocation threshold.
//
// Concurrency: the cache is N-way sharded (hash of the ifunc identity picks
// the shard) with one mutex per shard, so concurrent lookups/inserts from
// different progress threads only contend when they collide on a shard.
// LRU ordering and the hot per-entry fields (tier, entry pointer,
// invocation counter) are atomics: a promotion thread can rewrite the tier
// in place while an executing thread reads through the entry. Bounded
// caches keep the *global* LRU discipline: an insert that must evict takes
// every shard lock (in index order) and scans for the globally
// least-recently-used entry — eviction is the rare path, lookups stay
// single-shard.
//
// Pointer stability: find()/peek() return pointers into node-based
// storage. On an *unbounded* cache concurrent inserts never invalidate
// them; on a bounded cache a concurrent insert may evict — and free — the
// globally-LRU entry, so callers sharing a bounded cache across threads
// must coordinate entry lifetime externally (the Runtime does: each
// bounded cache is driven by its node's single progress context). erase()
// is likewise the caller's lifecycle responsibility, as before sharding.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "ir/abi.hpp"
#include "jit/jit_types.hpp"

namespace tc::jit {

struct CachedIfunc {
  /// Native entry point; null while the entry is interpreter-backed.
  std::atomic<abi::EntryFn> entry{nullptr};
  std::atomic<Tier> tier{Tier::kJit};
  CompileStats compile_stats;
  std::atomic<std::uint64_t> invocations{0};
  std::atomic<std::uint64_t> last_used_tick{0};

  CachedIfunc() = default;
  CachedIfunc(const CachedIfunc& other) { *this = other; }
  CachedIfunc& operator=(const CachedIfunc& other) {
    entry.store(other.entry.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    tier.store(other.tier.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    compile_stats = other.compile_stats;
    invocations.store(other.invocations.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    last_used_tick.store(other.last_used_tick.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }
};

class CodeCache {
 public:
  static constexpr std::size_t kDefaultShards = 8;

  /// capacity 0 = unbounded. A bounded cache evicts its least-recently-used
  /// entry on insert (the eviction is reported to the caller, which must
  /// release the JIT resources — see Runtime). `shards` 0 picks the
  /// default shard count.
  explicit CodeCache(std::size_t capacity = 0, std::size_t shards = 0);

  CodeCache(CodeCache&& other) noexcept;
  CodeCache& operator=(CodeCache&& other) noexcept;

  /// Looks up by 64-bit ifunc identity; counts a hit or miss and freshens
  /// the entry's LRU position.
  CachedIfunc* find(std::uint64_t ifunc_id);

  /// Protocol-neutral lookup: no hit/miss accounting, no LRU freshening.
  /// Used for bookkeeping updates (invocation counts, tier promotion).
  CachedIfunc* peek(std::uint64_t ifunc_id);

  /// Inserts a newly compiled ifunc. Fails with kAlreadyExists on repeats —
  /// a repeated full frame for a cached ifunc is a protocol anomaly the
  /// runtime tolerates but the cache reports. When the cache is full, the
  /// globally-LRU entry is evicted and its id stored in `evicted` (if
  /// non-null).
  Status insert(std::uint64_t ifunc_id, const CachedIfunc& ifunc,
                std::uint64_t* evicted = nullptr);

  Status erase(std::uint64_t ifunc_id);

  bool contains(std::uint64_t ifunc_id) const;
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t shard_count() const { return shards_.size(); }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::int64_t total_compile_ns = 0;  ///< JIT time the cache amortizes
  };
  /// Counter snapshot (the live counters are atomics).
  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.total_compile_ns = total_compile_ns_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, CachedIfunc> entries;
  };

  std::size_t shard_for(std::uint64_t ifunc_id) const {
    // Fibonacci mix: wire identities are hashes already, but unit tests use
    // small sequential ids and should still spread across shards.
    return (ifunc_id * 0x9E3779B97F4A7C15ull >> 32) % shards_.size();
  }

  std::size_t capacity_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> size_{0};
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::int64_t> total_compile_ns_{0};
};

}  // namespace tc::jit
