// Hardware profiles for the paper's two testbeds (three configurations).
//
// Each profile pins the virtual-time constants of one platform, calibrated
// against the paper's own measurements (Tables I-VI):
//
//   Ookami    — Fujitsu A64FX FX700 nodes, ConnectX-6 100 Gb/s IB
//   Thor BF2  — BlueField-2 DPUs (Cortex-A72) on Thor, 100 Gb/s IB
//   Thor Xeon — Xeon E5-2697A hosts on Thor, 100 Gb/s IB
//
// Calibration sources:
//   * link latency/bandwidth — cached vs uncached transmission times
//     (Tables I-III) and their message-rate gaps (Tables IV-VI);
//   * JIT cost — the measured one-time compile (6.59 ms / 4.50 ms / 0.83 ms);
//   * exec costs — the Lookup+Exec rows;
//   * AM injection gap — the AM vs cached-ifunc message-rate difference.
#pragma once

#include <cstdint>
#include <string>

#include "fabric/link_model.hpp"

namespace tc::hetsim {

enum class Platform { kOokami, kThorBF2, kThorXeon };

const char* platform_name(Platform platform);

struct HwProfile {
  std::string name;
  fabric::LinkModel link;

  /// Compute-time multiplier for client (host) and server nodes; >1 models
  /// slower cores (the BF2's Cortex-A72 vs the Xeon host).
  double client_compute_scale = 1.0;
  double server_compute_scale = 1.0;

  /// One-time bitcode JIT compile of the TSI-sized ifunc (Tables I-III).
  std::int64_t jit_cost_ns = 0;
  /// Binary (object) representation link-only deployment cost.
  std::int64_t link_cost_ns = 0;
  /// Cached-ifunc lookup+execute per invocation.
  std::int64_t ifunc_exec_ns = 0;
  /// Active-Message handler dispatch+execute per invocation.
  std::int64_t am_exec_ns = 0;
  /// Per-guard cost of the high-level-language (Julia-analogue) frontend.
  std::int64_t hll_guard_ns = 0;

  /// Interpreter tier (portable bytecode). Per-*constituent-instruction*
  /// cost, calibrated per core type from interpreter microbenchmarks
  /// (switch-dispatch interpreters run ~10-30 cycles/op; slower on the
  /// in-order-leaning A64FX and the BF2's Cortex-A72 than on the Xeon).
  /// Every instruction a fused superinstruction window executes pays this.
  /// <0 matches the RuntimeOptions sentinel: charge measured wall time —
  /// an uncalibrated profile falls back to measurement instead of running
  /// the interpreter for free.
  std::int64_t interp_op_ns = -1;
  /// The dispatch (fetch/decode/indirect-jump) share of interp_op_ns,
  /// refunded per tail slot the *inlined* Ld*Br superinstruction handlers
  /// execute — the only work fusion provably removes (kFusedLdiRun's
  /// interpretive tail loop earns no refund). Must be fit from wall-clock
  /// microbenchmarks of the real fused handlers on the target core
  /// (profiles.cpp documents the recipe and the measured numbers); 0 means
  /// fusion buys nothing in virtual time.
  std::int64_t interp_dispatch_ns = 0;
  /// One-time decode+validate of a portable program on first arrival — the
  /// cold-path cost that replaces the JIT compile (µs, not ms).
  std::int64_t vm_load_ns = -1;

  /// Frame-batching overheads (protocol v2 coalesced sends). Injection of
  /// each additional sub-frame in a batched message costs the NIC a
  /// doorbell/descriptor update but not the full per-message gap
  /// (link.gap_batch_item_ns carries the link-side share); the receiver
  /// pays this per-sub-frame decode charge when unpacking the container.
  /// Calibrated alongside interp_op_ns: the unpack is a short header walk,
  /// tens of ns on a Xeon, ~4x that on the weaker A64FX/A72 cores.
  std::int64_t batch_unpack_ns = 0;

  /// DAPC per-hop request-processing costs. The paper's DAPC hops carry
  /// more per-message server work than the bare TSI ping (frame decode,
  /// payload rewrite, forward-frame assembly, heavier polling) — these are
  /// calibrated from the Fig. 5-7 Get-vs-Bitcode gaps and are applied by
  /// hetsim::Cluster (used for DAPC experiments), while the plain TSI
  /// constants above reproduce Tables I-VI.
  std::int64_t dapc_ifunc_hop_ns = 0;
  std::int64_t dapc_am_hop_ns = 0;
};

const HwProfile& profile_for(Platform platform);

}  // namespace tc::hetsim
