#include "hetsim/mp_launch.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "core/ifunc.hpp"
#include "core/runtime.hpp"
#include "fabric/socket_transport.hpp"
#include "xrdma/pointer_table.hpp"

namespace tc::mp {
namespace {

// Failed checks log and make the node exit nonzero; launch() turns any
// nonzero child into a Status for the caller.
#define TC_MP_CHECK(cond, node, what)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      TC_LOG(kError, "mp") << "node " << (node) << ": CHECK failed: "     \
                           << (what);                                     \
      return 1;                                                           \
    }                                                                     \
  } while (0)

#define TC_MP_CHECK_OK(status_expr, node, what)                     \
  do {                                                              \
    const ::tc::Status _mp_st = (status_expr);                      \
    if (!_mp_st.is_ok()) {                                          \
      TC_LOG(kError, "mp") << "node " << (node) << ": " << (what)   \
                           << ": " << _mp_st.to_string();           \
      return 1;                                                     \
    }                                                               \
  } while (0)

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(ByteSpan in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[off + i]) << (8 * i);
  }
  return v;
}

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- kSmoke -------------------------------------------------------------------
// Every node: one exposed window slot per peer; everyone sends, AMs and
// PUTs into everyone; then verifies it saw all of it.

int run_smoke(fabric::SocketTransport& tp, const MpOptions& options,
              fabric::NodeId self) {
  const std::size_t n = options.node_count;
  std::vector<std::uint64_t> slots(n, ~std::uint64_t{0});
  slots[self] = self;
  TC_MP_CHECK_OK(
      tp.expose_segment(self, slots.data(), slots.size() * sizeof(slots[0])),
      self, "expose_segment");
  std::atomic<int> hellos{0};
  TC_MP_CHECK_OK(tp.register_am_handler(
                     self, 5,
                     [&](ByteSpan, fabric::NodeId) {
                       hellos.fetch_add(1, std::memory_order_relaxed);
                     }),
                 self, "register_am_handler");
  TC_MP_CHECK_OK(tp.barrier(self, 1), self, "barrier(setup)");

  int acked = 0;
  const int expected_acks = static_cast<int>(3 * (n - 1));  // send+am+put each
  auto on_ack = [&](Status s) {
    if (s.is_ok()) ++acked;
  };
  Bytes hello{static_cast<std::uint8_t>(self)};
  for (fabric::NodeId peer = 0; peer < n; ++peer) {
    if (peer == self) continue;
    TC_MP_CHECK_OK(tp.wait_for_segment(self, peer), self, "wait_for_segment");
    auto seg = tp.exposed_segment(peer);
    TC_MP_CHECK(seg.has_value(), self, "peer segment advert missing");
    tp.post_send(self, peer, as_span(hello), 1, on_ack);
    tp.post_am(self, peer, 5, as_span(hello), on_ack);
    Bytes id_bytes;
    put_u64(id_bytes, self);
    tp.post_put(self, seg->remote_addr(peer, self * sizeof(std::uint64_t)),
                as_span(id_bytes), on_ack);
  }
  int received = 0;
  TC_MP_CHECK_OK(tp.run_until(self,
                              [&] {
                                while (tp.try_recv(self).has_value()) {
                                  ++received;
                                }
                                return acked == expected_acks &&
                                       received ==
                                           static_cast<int>(n - 1) &&
                                       hellos.load(
                                           std::memory_order_relaxed) ==
                                           static_cast<int>(n - 1);
                              }),
                 self, "run_until(traffic)");
  // Everyone's PUTs are acked only after the target wrote them, and the
  // barrier orders our verification after every peer's acks.
  TC_MP_CHECK_OK(tp.barrier(self, 2), self, "barrier(traffic)");
  for (fabric::NodeId peer = 0; peer < n; ++peer) {
    TC_MP_CHECK(slots[peer] == peer, self, "window slot holds wrong id");
  }
  if (options.verbose) {
    TC_LOG(kInfo, "mp") << "node " << self << ": smoke ok (" << received
                        << " msgs, " << hellos.load() << " ams)";
  }
  TC_MP_CHECK_OK(tp.barrier(self, 3), self, "barrier(done)");
  return 0;
}

// --- kConformance -------------------------------------------------------------
// The transport conformance contract re-checked across process boundaries.
// Node 0 initiates, node 1 responds; any extra nodes just hold the mesh up
// (their barriers service nothing but keep phase numbering global).

int run_conformance(fabric::SocketTransport& tp, const MpOptions& options,
                    fabric::NodeId self) {
  const fabric::NodeId kInitiator = 0;
  const fabric::NodeId kResponder = 1;
  TC_MP_CHECK(options.node_count >= 2, self, "conformance needs >= 2 nodes");

  // Setup: the responder's echo handler and one-sided window.
  std::vector<std::uint8_t> window(64, 0);
  if (self == kResponder) {
    TC_MP_CHECK_OK(tp.register_am_handler(
                       self, 7,
                       [&tp, self](ByteSpan payload, fabric::NodeId source) {
                         tp.post_am(self, source, 8, payload, {});
                       }),
                   self, "register echo handler");
    TC_MP_CHECK_OK(tp.expose_segment(self, window.data(), window.size()),
                   self, "expose_segment");
  }
  std::atomic<int> echoes{0};
  if (self == kInitiator) {
    TC_MP_CHECK_OK(tp.register_am_handler(
                       self, 8,
                       [&](ByteSpan, fabric::NodeId) {
                         echoes.fetch_add(1, std::memory_order_relaxed);
                       }),
                   self, "register echo-reply handler");
  }
  TC_MP_CHECK_OK(tp.barrier(self, 1), self, "barrier(setup)");

  // Phase 1 — per-link FIFO of two-sided sends.
  constexpr int kMessages = 32;
  if (self == kInitiator) {
    for (int i = 0; i < kMessages; ++i) {
      Bytes msg{static_cast<std::uint8_t>(i)};
      tp.post_send(self, kResponder, as_span(msg), 1, {});
    }
  } else if (self == kResponder) {
    int received = 0;
    bool ordered = true;
    TC_MP_CHECK_OK(
        tp.run_until(self,
                     [&] {
                       while (auto msg = tp.try_recv(self)) {
                         ordered = ordered && msg->data.size() == 1 &&
                                   msg->data[0] == received &&
                                   msg->source == kInitiator;
                         ++received;
                       }
                       return received == kMessages;
                     }),
        self, "run_until(fifo)");
    TC_MP_CHECK(ordered, self, "out-of-order or corrupt delivery");
  }
  TC_MP_CHECK_OK(tp.barrier(self, 2), self, "barrier(fifo)");

  // Phase 2 — AM dispatch and miss reporting.
  if (self == kInitiator) {
    Bytes payload{9, 8, 7};
    tp.post_am(self, kResponder, 7, as_span(payload), {});
    TC_MP_CHECK_OK(
        tp.run_until(
            self,
            [&] { return echoes.load(std::memory_order_relaxed) == 1; }),
        self, "run_until(echo)");
    bool miss_done = false;
    Status miss = Status::ok();
    tp.post_am(self, kResponder, 99, as_span(payload), [&](Status s) {
      miss = std::move(s);
      miss_done = true;
    });
    TC_MP_CHECK_OK(tp.run_until(self, [&] { return miss_done; }), self,
                   "run_until(miss)");
    TC_MP_CHECK(miss.code() == ErrorCode::kNotFound, self,
                "unregistered AM should report kNotFound, got " +
                    miss.to_string());
  }
  TC_MP_CHECK_OK(tp.barrier(self, 3), self, "barrier(am)");

  // Phase 3 — one-sided PUT/GET through the advertised segment, including
  // the bounds fault.
  if (self == kInitiator) {
    TC_MP_CHECK_OK(tp.wait_for_segment(self, kResponder), self,
                   "wait_for_segment");
    auto seg = tp.exposed_segment(kResponder);
    TC_MP_CHECK(seg.has_value(), self, "responder segment missing");
    Bytes data{0xAA, 0xBB, 0xCC, 0xDD};
    bool put_done = false;
    Status put_status = Status::ok();
    tp.post_put(self, seg->remote_addr(kResponder, 8), as_span(data),
                [&](Status s) {
                  put_status = std::move(s);
                  put_done = true;
                });
    TC_MP_CHECK_OK(tp.run_until(self, [&] { return put_done; }), self,
                   "run_until(put)");
    TC_MP_CHECK_OK(put_status, self, "put completion");
    bool get_done = false;
    StatusOr<Bytes> got = internal_error("pending");
    tp.post_get(self, seg->remote_addr(kResponder, 8), data.size(),
                [&](StatusOr<Bytes> r) {
                  got = std::move(r);
                  get_done = true;
                });
    TC_MP_CHECK_OK(tp.run_until(self, [&] { return get_done; }), self,
                   "run_until(get)");
    TC_MP_CHECK(got.is_ok() && *got == data, self,
                "GET must read back the PUT bytes");
    bool oob_done = false;
    StatusOr<Bytes> oob = Status::ok();
    tp.post_get(self, seg->remote_addr(kResponder, window.size() - 4), 8,
                [&](StatusOr<Bytes> r) {
                  oob = std::move(r);
                  oob_done = true;
                });
    TC_MP_CHECK_OK(tp.run_until(self, [&] { return oob_done; }), self,
                   "run_until(oob)");
    TC_MP_CHECK(!oob.is_ok() && oob.status().code() == ErrorCode::kOutOfRange,
                self, "out-of-bounds GET should fault with kOutOfRange");
  }
  // The barrier's run_until is also the responder's progress loop while
  // the initiator drives the one-sided phase above.
  TC_MP_CHECK_OK(tp.barrier(self, 4), self, "barrier(one-sided)");

  // Phase 4 — ifunc NACK recovery across address spaces. Runtimes attach
  // last: they consume their node's two-sided rx queue, which the FIFO
  // phase needed raw.
  std::uint64_t counter = 0;
  std::unique_ptr<core::Runtime> runtime;
  if (self == kInitiator || self == kResponder) {
    auto rt = core::Runtime::create(tp, self);
    TC_MP_CHECK_OK(rt.status(), self, "Runtime::create");
    runtime = std::move(*rt);
    if (self == kResponder) runtime->set_target_ptr(&counter);
  }
  TC_MP_CHECK_OK(tp.barrier(self, 5), self, "barrier(runtimes)");
  if (self == kInitiator) {
    auto lib = core::IfuncLibrary::from_portable_kernel(
        ir::KernelKind::kTargetSideIncrement);
    TC_MP_CHECK_OK(lib.status(), self, "portable kernel");
    auto id = runtime->register_ifunc(std::move(*lib));
    TC_MP_CHECK_OK(id.status(), self, "register_ifunc");
    // A truncated frame for code the responder has never seen: must come
    // back as a NACK, then redeliver full and execute exactly once.
    auto frame = runtime->create_message(*id, as_span(Bytes{0}));
    TC_MP_CHECK_OK(frame.status(), self, "create_message");
    tp.post_send(self, kResponder, frame->truncated_view(), 1, {});
    TC_MP_CHECK_OK(
        tp.run_until(self,
                     [&] { return runtime->stats().nacks_received >= 1; }),
        self, "run_until(nack)");
    for (int i = 0; i < 2; ++i) {
      TC_MP_CHECK_OK(runtime->send_ifunc(kResponder, *id, as_span(Bytes{0})),
                     self, "send_ifunc");
    }
    TC_MP_CHECK(runtime->stats().nacks_received == 1, self,
                "exactly one NACK expected");
  } else if (self == kResponder) {
    TC_MP_CHECK_OK(tp.run_until(self, [&] { return counter == 3; }), self,
                   "run_until(ifunc execution)");
    TC_MP_CHECK(runtime->stats().nacks_sent == 1, self, "one NACK sent");
    TC_MP_CHECK(runtime->stats().frames_executed == 3, self,
                "three ifunc frames executed");
    TC_MP_CHECK(runtime->stats().protocol_errors == 0, self,
                "no protocol errors");
  }
  TC_MP_CHECK_OK(tp.barrier(self, 6), self, "barrier(nack)");
  if (options.verbose && self == kInitiator) {
    TC_LOG(kInfo, "mp") << "conformance ok across " << options.node_count
                        << " processes";
  }
  return 0;
}

// --- kDapc --------------------------------------------------------------------
// Node 0 chases pointers through shards owned by server processes 1..n-1,
// in two modes, both verified against the reference walk:
//  * traveling AM — the request hops server-to-server while the chase
//    stays on whichever process owns the current address (paper §IV-C);
//  * client GET — the GBPC lower bound, one GET per dereference.

constexpr fabric::AmId kChaseReq = 40;
constexpr fabric::AmId kChaseReply = 41;

int run_dapc(fabric::SocketTransport& tp, const MpOptions& options,
             fabric::NodeId self) {
  TC_MP_CHECK(options.node_count >= 2, self, "dapc needs >= 2 nodes");
  const std::uint64_t servers = options.node_count - 1;
  xrdma::PointerTableConfig table_config;
  table_config.entries_per_shard = options.entries_per_shard;
  table_config.shard_count = servers;
  table_config.seed = options.seed;
  // The permutation is seeded, so every process derives the identical
  // table — the out-of-band dataset distribution of a real deployment.
  auto table_or = xrdma::DistributedPointerTable::build(table_config);
  TC_MP_CHECK_OK(table_or.status(), self, "table build");
  xrdma::DistributedPointerTable& table = *table_or;
  const std::uint64_t shard_size = table.shard_size();
  const std::uint64_t total = table.total_entries();
  auto owner_node = [&](std::uint64_t addr) -> fabric::NodeId {
    return static_cast<fabric::NodeId>(1 + table.owner_of(addr));
  };

  if (self != 0) {
    // Server: host this shard, serve GETs from its exposed window and
    // chase-hops via the traveling-AM handler.
    std::vector<std::uint64_t> shard = table.shard(self - 1);
    TC_MP_CHECK_OK(
        tp.expose_segment(self, shard.data(),
                          shard.size() * sizeof(shard[0])),
        self, "expose_segment(shard)");
    TC_MP_CHECK_OK(
        tp.register_am_handler(
            self, kChaseReq,
            [&tp, &shard, &owner_node, shard_size, self](
                ByteSpan payload, fabric::NodeId) {
              std::uint64_t cur = get_u64(payload, 0);
              std::uint64_t remaining = get_u64(payload, 8);
              const std::uint64_t tag = get_u64(payload, 16);
              const std::uint64_t client = get_u64(payload, 24);
              // Chase locally while the address stays on this shard.
              while (remaining > 0 && owner_node(cur) == self) {
                cur = shard[cur % shard_size];
                --remaining;
              }
              Bytes out;
              if (remaining == 0) {
                put_u64(out, tag);
                put_u64(out, cur);
                tp.post_am(self, static_cast<fabric::NodeId>(client),
                           kChaseReply, as_span(out), {});
              } else {
                put_u64(out, cur);
                put_u64(out, remaining);
                put_u64(out, tag);
                put_u64(out, client);
                tp.post_am(self, owner_node(cur), kChaseReq, as_span(out),
                           {});
              }
            }),
        self, "register chase handler");
    TC_MP_CHECK_OK(tp.barrier(self, 1), self, "barrier(setup)");
    // Both measurement phases run while we sit in these barriers — their
    // run_until loop *is* this server's progress loop.
    TC_MP_CHECK_OK(tp.barrier(self, 2), self, "barrier(am phase)");
    TC_MP_CHECK_OK(tp.barrier(self, 3), self, "barrier(get phase)");
    return 0;
  }

  // Client (node 0).
  std::vector<std::uint64_t> start(options.chases);
  std::vector<std::uint64_t> expected(options.chases);
  for (std::uint64_t i = 0; i < options.chases; ++i) {
    start[i] = (options.seed + i * 7919) % total;
    expected[i] = table.chase_expected(start[i], options.depth);
  }
  std::vector<std::uint64_t> values(options.chases, ~std::uint64_t{0});
  std::atomic<std::uint64_t> replies{0};
  TC_MP_CHECK_OK(
      tp.register_am_handler(self, kChaseReply,
                             [&](ByteSpan payload, fabric::NodeId) {
                               const std::uint64_t tag = get_u64(payload, 0);
                               values[tag] = get_u64(payload, 8);
                               replies.fetch_add(1,
                                                 std::memory_order_relaxed);
                             }),
      self, "register reply handler");
  TC_MP_CHECK_OK(tp.barrier(self, 1), self, "barrier(setup)");
  for (std::uint64_t s = 1; s < options.node_count; ++s) {
    TC_MP_CHECK_OK(tp.wait_for_segment(self, static_cast<fabric::NodeId>(s)),
                   self, "wait_for_segment");
  }

  // Phase A — traveling AM.
  const std::int64_t am_begin = wall_ns();
  for (std::uint64_t i = 0; i < options.chases; ++i) {
    Bytes req;
    put_u64(req, start[i]);
    put_u64(req, options.depth);
    put_u64(req, i);
    put_u64(req, self);
    tp.post_am(self, owner_node(start[i]), kChaseReq, as_span(req), {});
  }
  TC_MP_CHECK_OK(
      tp.run_until(self,
                   [&] {
                     return replies.load(std::memory_order_relaxed) ==
                            options.chases;
                   }),
      self, "run_until(am replies)");
  const std::int64_t am_ns = wall_ns() - am_begin;
  std::uint64_t am_correct = 0;
  for (std::uint64_t i = 0; i < options.chases; ++i) {
    am_correct += values[i] == expected[i] ? 1 : 0;
  }
  TC_MP_CHECK(am_correct == options.chases, self,
              "traveling-AM chase returned wrong values");
  TC_MP_CHECK_OK(tp.barrier(self, 2), self, "barrier(am phase)");

  // Phase B — client-driven GETs (GBPC).
  const std::int64_t get_begin = wall_ns();
  std::uint64_t get_correct = 0;
  for (std::uint64_t i = 0; i < options.chases; ++i) {
    std::uint64_t cur = start[i];
    for (std::uint64_t step = 0; step < options.depth; ++step) {
      const fabric::NodeId owner = owner_node(cur);
      auto seg = tp.exposed_segment(owner);
      TC_MP_CHECK(seg.has_value(), self, "server segment missing");
      bool done = false;
      StatusOr<Bytes> got = internal_error("pending");
      tp.post_get(self,
                  seg->remote_addr(owner,
                                   (cur % shard_size) * sizeof(std::uint64_t)),
                  sizeof(std::uint64_t),
                  [&](StatusOr<Bytes> r) {
                    got = std::move(r);
                    done = true;
                  });
      TC_MP_CHECK_OK(tp.run_until(self, [&] { return done; }), self,
                     "run_until(get)");
      TC_MP_CHECK_OK(got.status(), self, "get completion");
      cur = get_u64(as_span(*got), 0);
    }
    get_correct += cur == expected[i] ? 1 : 0;
  }
  const std::int64_t get_ns = wall_ns() - get_begin;
  TC_MP_CHECK(get_correct == options.chases, self,
              "GET chase returned wrong values");
  TC_MP_CHECK_OK(tp.barrier(self, 3), self, "barrier(get phase)");

  auto rate = [](std::uint64_t chases, std::int64_t ns) {
    return ns > 0 ? 1e9 * static_cast<double>(chases) /
                        static_cast<double>(ns)
                  : 0.0;
  };
  std::printf(
      "[tc_launch] dapc nodes=%zu depth=%llu chases=%llu entries/shard=%llu\n"
      "[tc_launch]   traveling-am: correct=%llu/%llu wall_ms=%.3f "
      "chases/s=%.0f\n"
      "[tc_launch]   client-get:   correct=%llu/%llu wall_ms=%.3f "
      "chases/s=%.0f\n",
      options.node_count,
      static_cast<unsigned long long>(options.depth),
      static_cast<unsigned long long>(options.chases),
      static_cast<unsigned long long>(options.entries_per_shard),
      static_cast<unsigned long long>(am_correct),
      static_cast<unsigned long long>(options.chases), am_ns / 1e6,
      rate(options.chases, am_ns),
      static_cast<unsigned long long>(get_correct),
      static_cast<unsigned long long>(options.chases), get_ns / 1e6,
      rate(options.chases, get_ns));
  std::fflush(stdout);
  return 0;
}

}  // namespace

const char* role_name(Role role) {
  switch (role) {
    case Role::kSmoke: return "smoke";
    case Role::kConformance: return "conformance";
    case Role::kDapc: return "dapc";
  }
  return "unknown";
}

StatusOr<Role> role_from_name(const std::string& name) {
  if (name == "smoke") return Role::kSmoke;
  if (name == "conformance") return Role::kConformance;
  if (name == "dapc") return Role::kDapc;
  return invalid_argument("unknown role: " + name +
                          " (want smoke|conformance|dapc)");
}

int run_node(const MpOptions& options, fabric::NodeId self) {
  fabric::SocketTransportOptions tp_options;
  tp_options.connect_timeout_ms = options.connect_timeout_ms;
  tp_options.run_until_timeout_ms = options.run_until_timeout_ms;
  auto tp_or = fabric::SocketTransport::create_process(
      options.node_count, self, options.endpoints, tp_options);
  if (!tp_or.is_ok()) {
    TC_LOG(kError, "mp") << "node " << self << ": bootstrap failed: "
                         << tp_or.status().to_string();
    return 2;
  }
  fabric::SocketTransport& tp = **tp_or;
  switch (options.role) {
    case Role::kSmoke: return run_smoke(tp, options, self);
    case Role::kConformance: return run_conformance(tp, options, self);
    case Role::kDapc: return run_dapc(tp, options, self);
  }
  return 2;
}

Status launch(MpOptions options) {
  if (options.node_count < 2) {
    return invalid_argument("launch: need at least 2 nodes");
  }
  std::string owned_dir;
  if (options.endpoints.empty()) {
    char tmpl[] = "/tmp/tc_mp_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      return internal_error("mkdtemp failed: " +
                            std::string(std::strerror(errno)));
    }
    owned_dir = tmpl;
    options.endpoints =
        fabric::SocketTransport::unix_endpoints(options.node_count, owned_dir);
  }
  if (options.endpoints.size() != options.node_count) {
    return invalid_argument("launch: need one endpoint per node");
  }

  std::vector<pid_t> children;
  children.reserve(options.node_count);
  for (fabric::NodeId node = 0; node < options.node_count; ++node) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t child : children) ::kill(child, SIGKILL);
      return internal_error("fork failed: " +
                            std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      // Child: run the node and leave without unwinding the parent's
      // state (no atexit handlers, no static destructors).
      std::_Exit(run_node(options, node));
    }
    children.push_back(pid);
  }

  Status result = Status::ok();
  for (fabric::NodeId node = 0; node < children.size(); ++node) {
    int wstatus = 0;
    if (::waitpid(children[node], &wstatus, 0) < 0) {
      if (result.is_ok()) {
        result = internal_error("waitpid failed: " +
                                std::string(std::strerror(errno)));
      }
      continue;
    }
    if (WIFSIGNALED(wstatus)) {
      result = internal_error("node " + std::to_string(node) +
                              " died on signal " +
                              std::to_string(WTERMSIG(wstatus)));
    } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0 &&
               result.is_ok()) {
      result = internal_error("node " + std::to_string(node) +
                              " exited with code " +
                              std::to_string(WEXITSTATUS(wstatus)));
    }
  }

  if (!owned_dir.empty()) {
    for (const std::string& ep : options.endpoints) {
      if (ep.rfind("unix:", 0) == 0) ::unlink(ep.substr(5).c_str());
    }
    ::rmdir(owned_dir.c_str());
  }
  return result;
}

}  // namespace tc::mp
