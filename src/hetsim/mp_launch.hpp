// Multi-process cluster launcher: every node is a separate OS process,
// joined into a full mesh by fabric::SocketTransport::create_process over
// Unix-domain (or TCP) stream sockets. This is the deployment shape the
// paper's physical clusters actually run — separate address spaces, kernel
// sockets between them — and the proof that nothing in the protocol stack
// leans on shared memory: registered-segment rkeys travel as out-of-band
// kSegment adverts, one-sided PUT/GET are serviced by the target process's
// progress context, and barriers coordinate phases across the mesh.
//
// Three roles (tools/tc_launch is the CLI over this):
//
//  * kSmoke       — mesh bring-up: every node messages and PUTs into every
//                   peer; cheap enough for CI's multi-process job.
//  * kConformance — the transport conformance contract (FIFO sends, AM
//                   dispatch + miss, PUT/GET + bounds faults, segment
//                   publication, ifunc NACK recovery) re-checked across
//                   real process boundaries.
//  * kDapc        — a real distributed pointer chase: node 0 chases through
//                   shards held by server processes, in traveling-AM and
//                   client-driven-GET modes, verified against the reference
//                   walk.
//
// launch() forks node_count children (each runs run_node then _Exit); a
// deployment may instead start processes by hand — run_node(options, self)
// with matching endpoint lists is all a node needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fabric/memory.hpp"

namespace tc::mp {

enum class Role { kSmoke, kConformance, kDapc };

const char* role_name(Role role);
StatusOr<Role> role_from_name(const std::string& name);

struct MpOptions {
  Role role = Role::kSmoke;
  std::size_t node_count = 3;
  /// Endpoint specs ("unix:<path>" or "tcp:<ipv4>:<port>"), one per node.
  /// Empty: launch() creates a fresh socket directory under /tmp and uses
  /// SocketTransport::unix_endpoints.
  std::vector<std::string> endpoints;
  /// Bootstrap patience (forwarded to SocketTransportOptions).
  std::int64_t connect_timeout_ms = 10'000;
  std::int64_t run_until_timeout_ms = 30'000;

  // --- kDapc knobs ----------------------------------------------------------
  std::uint64_t depth = 32;
  std::uint64_t chases = 64;
  std::uint64_t entries_per_shard = 1024;
  std::uint64_t seed = 0xDA9C;

  /// Print per-phase progress from every node (children inherit stderr).
  bool verbose = false;
};

/// Runs node `self` of the mesh in the calling process: connects the
/// transport, plays `options.role`, returns the process exit code
/// (0 = success). Does not fork.
int run_node(const MpOptions& options, fabric::NodeId self);

/// Forks one child per node, each running run_node, and waits for all of
/// them. Fails if any child exits nonzero or dies on a signal. Creates (and
/// removes) a temporary socket directory when options.endpoints is empty.
Status launch(MpOptions options);

}  // namespace tc::mp
