#include "hetsim/cluster.hpp"

namespace tc::hetsim {

core::RuntimeOptions runtime_options_for(const HwProfile& profile) {
  core::RuntimeOptions options;
  options.jit_cost_ns = profile.jit_cost_ns;
  options.link_cost_ns = profile.link_cost_ns;
  options.lookup_exec_cost_ns = profile.ifunc_exec_ns;
  options.hll_guard_cost_ns = profile.hll_guard_ns;
  options.interp_op_ns = profile.interp_op_ns;
  options.portable_load_cost_ns = profile.vm_load_ns;
  options.batch_unpack_cost_ns = profile.batch_unpack_ns;
  return options;
}

am::AmRuntime::Options am_options_for(const HwProfile& profile) {
  am::AmRuntime::Options options;
  options.exec_cost_ns = profile.am_exec_ns;
  return options;
}

StatusOr<std::unique_ptr<Cluster>> Cluster::create(
    const ClusterConfig& config) {
  if (config.server_count == 0) {
    return invalid_argument("cluster needs at least one server");
  }
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->profile_ = &profile_for(config.platform);
  const HwProfile& profile = *cluster->profile_;

  cluster->fabric_.set_default_link(profile.link);
  cluster->client_ = cluster->fabric_.add_node(
      "client", profile.client_compute_scale);
  for (std::size_t i = 0; i < config.server_count; ++i) {
    cluster->servers_.push_back(cluster->fabric_.add_node(
        "server" + std::to_string(i), profile.server_compute_scale));
  }

  core::RuntimeOptions runtime_options = runtime_options_for(profile);
  if (config.hll_guard_ns_override >= 0) {
    runtime_options.hll_guard_cost_ns = config.hll_guard_ns_override;
  }
  am::AmRuntime::Options am_options = am_options_for(profile);
  // Clusters host the DAPC-class workloads: per-hop request processing on
  // the servers is heavier than the bare TSI ping (see HwProfile).
  runtime_options.lookup_exec_cost_ns =
      profile.ifunc_exec_ns + profile.dapc_ifunc_hop_ns;
  am_options.exec_cost_ns = profile.am_exec_ns + profile.dapc_am_hop_ns;

  const std::size_t node_count = cluster->fabric_.node_count();
  for (fabric::NodeId node = 0; node < node_count; ++node) {
    if (config.with_ifunc_runtimes) {
      TC_ASSIGN_OR_RETURN(
          auto runtime,
          core::Runtime::create(cluster->fabric_, node, runtime_options));
      runtime->set_peers(cluster->servers_);
      cluster->runtimes_.push_back(std::move(runtime));
    }
    if (config.with_am_runtimes) {
      TC_ASSIGN_OR_RETURN(
          auto am_runtime,
          am::AmRuntime::create(cluster->fabric_, node, am_options));
      am_runtime->set_peers(cluster->servers_);
      cluster->am_runtimes_.push_back(std::move(am_runtime));
    }
  }
  return cluster;
}

}  // namespace tc::hetsim
