#include "hetsim/cluster.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace tc::hetsim {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kSim: return "sim";
    case Backend::kShm: return "shm";
    case Backend::kSocket: return "socket";
  }
  return "unknown";
}

core::RuntimeOptions runtime_options_for(const HwProfile& profile) {
  core::RuntimeOptions options;
  options.jit_cost_ns = profile.jit_cost_ns;
  options.link_cost_ns = profile.link_cost_ns;
  options.lookup_exec_cost_ns = profile.ifunc_exec_ns;
  options.hll_guard_cost_ns = profile.hll_guard_ns;
  options.interp_op_ns = profile.interp_op_ns;
  options.interp_dispatch_ns = profile.interp_dispatch_ns;
  options.portable_load_cost_ns = profile.vm_load_ns;
  options.batch_unpack_cost_ns = profile.batch_unpack_ns;
  return options;
}

am::AmRuntime::Options am_options_for(const HwProfile& profile) {
  am::AmRuntime::Options options;
  options.exec_cost_ns = profile.am_exec_ns;
  return options;
}

Cluster::~Cluster() {
  // The wall-clock progress threads dispatch into the runtimes (delivery
  // notifiers, AM handlers); they must stop before any runtime is freed.
  if (shm_ != nullptr) shm_->stop_progress_threads();
  if (socket_ != nullptr) socket_->stop_progress_threads();
}

Status Cluster::drive_until(fabric::NodeId node,
                            const std::function<bool()>& pred) {
  Status status = transport_->run_until(node, pred);
  if (!status.is_ok()) dump_stuck_state(node, status);
  return status;
}

void Cluster::settle() {
  if (backend_ == Backend::kSim) fabric_.run_until_idle();
}

void Cluster::dump_stuck_state(fabric::NodeId node, const Status& status) {
  TC_LOG(kError, "hetsim")
      << "drive_until(node " << node
      << ") gave up: " << status.to_string()
      << " — dumping per-node state (a completion was probably lost)";
  for (std::size_t n = 0; n < runtimes_.size(); ++n) {
    const core::Runtime::Stats& s = runtimes_[n]->stats();
    TC_LOG(kError, "hetsim")
        << "  node " << n << ": sent full=" << s.frames_sent_full.load()
        << " trunc=" << s.frames_sent_truncated.load()
        << " recv=" << s.frames_received.load()
        << " exec=" << s.frames_executed.load()
        << " nacks tx/rx=" << s.nacks_sent.load() << "/"
        << s.nacks_received.load()
        << " retries=" << s.send_retries.load()
        << " exhausted=" << s.send_retries_exhausted.load()
        << " fwd_fail=" << s.forward_send_failures.load()
        << " proto_err=" << s.protocol_errors.load()
        << " pending_nack_payloads=" << runtimes_[n]->pending_payload_count();
  }
  if (faulty_ != nullptr) {
    const fabric::FaultyTransport::StatsSnapshot fs = faulty_->stats();
    TC_LOG(kError, "hetsim")
        << "  fault shim: intercepted=" << fs.frames_intercepted
        << " drops=" << fs.drops << " dups=" << fs.duplicates
        << " delays=" << fs.delays << " truncates=" << fs.truncates
        << " rx_discards=" << fs.dup_discards + fs.truncate_discards;
    const std::vector<fabric::InjectionEvent> log = faulty_->injection_log();
    const std::size_t tail = log.size() > 16 ? log.size() - 16 : 0;
    for (std::size_t i = tail; i < log.size(); ++i) {
      const fabric::InjectionEvent& e = log[i];
      TC_LOG(kError, "hetsim")
          << "  injection[" << i << "]: " << fabric::fault_kind_name(e.kind)
          << " src=" << e.src << " dst=" << e.dst << " seq=" << e.seq
          << " size=" << e.size << " at_ns=" << e.at_ns;
    }
  }
}

fabric::Fabric& Cluster::fabric() {
  if (backend_ != Backend::kSim) {
    // Returning the empty fabric_ would surface as an out-of-bounds node
    // access far from the caller; fail here, loudly, in every build type.
    TC_LOG(kError, "hetsim")
        << "Cluster::fabric() called on the '" << backend_name(backend_)
        << "' backend; use transport()";
    std::abort();
  }
  return fabric_;
}

StatusOr<std::unique_ptr<Cluster>> Cluster::create(
    const ClusterConfig& config) {
  if (config.server_count == 0) {
    return invalid_argument("cluster needs at least one server");
  }
  if (config.client_count == 0) {
    return invalid_argument("cluster needs at least one client");
  }
  auto cluster = std::unique_ptr<Cluster>(new Cluster());
  cluster->backend_ = config.backend;
  cluster->profile_ = &profile_for(config.platform);
  const HwProfile& profile = *cluster->profile_;

  const std::size_t node_count = config.client_count + config.server_count;
  if (config.backend == Backend::kSim) {
    cluster->fabric_.set_default_link(profile.link);
    for (std::size_t i = 0; i < config.client_count; ++i) {
      cluster->clients_.push_back(cluster->fabric_.add_node(
          config.client_count == 1 ? "client" : "client" + std::to_string(i),
          profile.client_compute_scale));
    }
    for (std::size_t i = 0; i < config.server_count; ++i) {
      cluster->servers_.push_back(cluster->fabric_.add_node(
          "server" + std::to_string(i), profile.server_compute_scale));
    }
    cluster->sim_ = std::make_unique<fabric::SimTransport>(cluster->fabric_);
    cluster->transport_ = cluster->sim_.get();
  } else {
    if (config.backend == Backend::kShm) {
      fabric::ShmTransportOptions shm_options;
      if (config.shm_run_until_timeout_ms >= 0) {
        shm_options.run_until_timeout_ms = config.shm_run_until_timeout_ms;
      }
      cluster->shm_ =
          std::make_unique<fabric::ShmTransport>(node_count, shm_options);
      cluster->transport_ = cluster->shm_.get();
    } else {
      fabric::SocketTransportOptions socket_options;
      if (config.shm_run_until_timeout_ms >= 0) {
        socket_options.run_until_timeout_ms = config.shm_run_until_timeout_ms;
      }
      auto socket_or = fabric::SocketTransport::create_threaded(
          node_count, socket_options);
      if (!socket_or.is_ok()) return socket_or.status();
      cluster->socket_ = std::move(*socket_or);
      cluster->transport_ = cluster->socket_.get();
    }
    for (std::size_t i = 0; i < config.client_count; ++i) {
      cluster->clients_.push_back(static_cast<fabric::NodeId>(i));
    }
    for (std::size_t i = 0; i < config.server_count; ++i) {
      cluster->servers_.push_back(
          static_cast<fabric::NodeId>(config.client_count + i));
    }
  }

  if (config.faults.enabled()) {
    // Chaos mode: the shim decorates whichever backend was just built, and
    // every runtime (sim included) attaches through it so all frame
    // traffic crosses the lossy layer.
    cluster->faulty_ = std::make_unique<fabric::FaultyTransport>(
        *cluster->transport_, config.faults, config.tracer, config.metrics);
    cluster->transport_ = cluster->faulty_.get();
  }

  core::RuntimeOptions runtime_options = runtime_options_for(profile);
  runtime_options.max_send_retries = config.max_send_retries;
  runtime_options.retry_backoff_ns = config.retry_backoff_ns;
  if (config.hll_guard_ns_override >= 0) {
    runtime_options.hll_guard_cost_ns = config.hll_guard_ns_override;
  }
  am::AmRuntime::Options am_options = am_options_for(profile);
  // Clusters host the DAPC-class workloads: per-hop request processing on
  // the servers is heavier than the bare TSI ping (see HwProfile).
  runtime_options.lookup_exec_cost_ns =
      profile.ifunc_exec_ns + profile.dapc_ifunc_hop_ns;
  am_options.exec_cost_ns = profile.am_exec_ns + profile.dapc_am_hop_ns;

  if (config.tracer != nullptr) {
    config.tracer->ensure_nodes(node_count);
    runtime_options.tracer = config.tracer;
  }
  runtime_options.metrics = config.metrics;
  cluster->tracer_ = config.tracer;
  cluster->metrics_ = config.metrics;

  for (fabric::NodeId node = 0; node < node_count; ++node) {
    if (config.with_ifunc_runtimes) {
      // Sim runtimes attach to the fabric directly (each owns its
      // SimTransport adapter, the historical per-runtime endpoint layout);
      // shm runtimes — and every runtime under fault injection — share the
      // cluster's transport so frames cross the shim.
      auto runtime_or =
          config.backend == Backend::kSim && cluster->faulty_ == nullptr
              ? core::Runtime::create(cluster->fabric_, node, runtime_options)
              : core::Runtime::create(*cluster->transport_, node,
                                      runtime_options);
      if (!runtime_or.is_ok()) return runtime_or.status();
      (*runtime_or)->set_peers(cluster->servers_);
      cluster->runtimes_.push_back(std::move(*runtime_or));
    }
    if (config.with_am_runtimes) {
      auto am_or =
          config.backend == Backend::kSim && cluster->faulty_ == nullptr
              ? am::AmRuntime::create(cluster->fabric_, node, am_options)
              : am::AmRuntime::create(*cluster->transport_, node, am_options);
      if (!am_or.is_ok()) return am_or.status();
      (*am_or)->set_peers(cluster->servers_);
      cluster->am_runtimes_.push_back(std::move(*am_or));
    }
  }

  if (config.backend == Backend::kShm) {
    // Servers run the paper's daemon-thread model for real; initiator
    // nodes are driven inline by the workload's own threads.
    cluster->shm_->start_progress_threads(cluster->servers_);
  } else if (config.backend == Backend::kSocket) {
    cluster->socket_->start_progress_threads(cluster->servers_);
  }
  return cluster;
}

}  // namespace tc::hetsim
