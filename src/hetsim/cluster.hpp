// Cluster: a virtual heterogeneous testbed — M client (initiator) nodes
// plus N server nodes (hosts or DPUs, per the platform profile) with
// Three-Chains and Active-Message runtimes attached.
//
// Two interchangeable fabric backends (see fabric/transport.hpp):
//
//  * Backend::kSim (default) — the deterministic discrete-event fabric with
//    the profile's calibrated wire/compute timings. This is the substitute
//    for the paper's physical Ookami and Thor clusters (DESIGN.md §1): the
//    topology, runtimes and protocols are real; only the timings come from
//    profiles. Bit-for-bit reproducible.
//  * Backend::kShm — the real-threads shared-memory transport: every server
//    node gets a dedicated progress thread, initiator nodes are driven by
//    the application's own threads, and measurements are wall-clock. The
//    profile's virtual-time constants are ignored (real work takes real
//    time); everything else — protocols, JIT tiers, caching — is identical.
//  * Backend::kSocket — the real-sockets transport in threaded (socketpair)
//    mode: same topology and threading model as kShm, but every verb is
//    serialized through the length-prefixed wire codec and the kernel's
//    socket buffers. The in-tree stand-in for the true multi-process
//    deployment (fabric::SocketTransport::create_process / tools/tc_launch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "am/am_runtime.hpp"
#include "core/runtime.hpp"
#include "fabric/fabric.hpp"
#include "fabric/faulty_transport.hpp"
#include "fabric/shm_transport.hpp"
#include "fabric/sim_transport.hpp"
#include "fabric/socket_transport.hpp"
#include "hetsim/profiles.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tc::hetsim {

enum class Backend { kSim, kShm, kSocket };

const char* backend_name(Backend backend);

struct ClusterConfig {
  Platform platform = Platform::kThorXeon;
  Backend backend = Backend::kSim;
  std::size_t server_count = 2;
  /// Initiator nodes. Node ids: clients [0, client_count), servers
  /// [client_count, client_count + server_count).
  std::size_t client_count = 1;
  bool with_ifunc_runtimes = true;  ///< attach core::Runtime on every node
  bool with_am_runtimes = true;     ///< attach am::AmRuntime on every node
  /// Override the per-guard HLL cost (<0 keeps the profile value).
  std::int64_t hll_guard_ns_override = -1;
  /// Optional observability sinks, shared by every runtime in the cluster.
  /// Null (the default) compiles all tracing out of the hot paths and keeps
  /// the wire protocol byte-for-byte identical to an untraced build.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault injection (chaos testing): when faults.enabled(), the backend
  /// transport is wrapped in a fabric::FaultyTransport and every runtime —
  /// including sim runtimes, which otherwise own per-runtime adapters —
  /// attaches through the shared shim. Disabled by default: nothing is
  /// wrapped and the wire behaviour is byte-identical to earlier builds.
  fabric::FaultConfig faults;
  /// Wire-send retry budget forwarded to every runtime (see
  /// core::RuntimeOptions::max_send_retries); chaos configurations set
  /// this so recovery outlasts the injected fault schedule. 0 = off.
  std::size_t max_send_retries = 0;
  std::int64_t retry_backoff_ns = 2'000;
  /// Wall-clock (shm/socket) watchdog: run_until gives up after this much
  /// wall time (<0 keeps the backend default). Chaos tests shorten it so a
  /// lost-completion bug fails fast with a state dump instead of hanging
  /// ctest.
  std::int64_t shm_run_until_timeout_ms = -1;
};

class Cluster {
 public:
  static StatusOr<std::unique_ptr<Cluster>> create(const ClusterConfig& config);
  ~Cluster();

  Backend backend() const { return backend_; }
  /// The backend-neutral fabric surface every layer above should prefer.
  fabric::Transport& transport() { return *transport_; }
  /// The simulated fabric. Sim backend only.
  fabric::Fabric& fabric();
  const HwProfile& profile() const { return *profile_; }
  std::size_t node_count() const { return transport_->node_count(); }

  fabric::NodeId client_node() const { return clients_.front(); }
  const std::vector<fabric::NodeId>& client_nodes() const { return clients_; }
  const std::vector<fabric::NodeId>& server_nodes() const { return servers_; }

  /// Runtimes indexed by fabric node id (clients first, then servers).
  core::Runtime& runtime(fabric::NodeId node) { return *runtimes_.at(node); }
  am::AmRuntime& am_runtime(fabric::NodeId node) {
    return *am_runtimes_.at(node);
  }
  core::Runtime& client_runtime() { return runtime(client_node()); }

  bool has_ifunc_runtimes() const { return !runtimes_.empty(); }
  bool has_am_runtimes() const { return !am_runtimes_.empty(); }

  /// The observability sinks from ClusterConfig (null when not attached).
  obs::Tracer* tracer() { return tracer_; }
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// The fault-injection shim (null when ClusterConfig::faults is
  /// disabled). Injection log and shim stats for chaos assertions.
  fabric::FaultyTransport* fault_shim() { return faulty_.get(); }

  // --- backend-neutral completion hooks --------------------------------------
  /// Drives the backend from `node`'s progress context until `pred()`
  /// holds. On the simulated backend this is the global event loop (every
  /// node advances in one virtual timeline); on shm the calling thread
  /// becomes `node`'s progress context and spins it, so predicates over
  /// state fed by that node's completions/results fire on this thread.
  Status drive_until(fabric::NodeId node, const std::function<bool()>& pred);
  /// Drains trailing simulated events (busy/no-op tails) so now_ns() reads
  /// the completion horizon rather than the predicate-flip instant. No-op
  /// on wall-clock backends — real time has already passed.
  void settle();

 private:
  Cluster() = default;
  /// Watchdog: when drive_until/settle cannot finish, log every runtime's
  /// Stats, NACK backlog and the shim's injection tail before returning —
  /// a lost-completion bug reads as a dump, not a silent ctest hang.
  void dump_stuck_state(fabric::NodeId node, const Status& status);

  Backend backend_ = Backend::kSim;
  // Transports are declared before the runtimes so they are destroyed
  // after them; the shm progress threads are stopped explicitly in the
  // destructor before any runtime goes away.
  fabric::Fabric fabric_;
  std::unique_ptr<fabric::SimTransport> sim_;
  std::unique_ptr<fabric::ShmTransport> shm_;
  std::unique_ptr<fabric::SocketTransport> socket_;
  std::unique_ptr<fabric::FaultyTransport> faulty_;
  fabric::Transport* transport_ = nullptr;
  const HwProfile* profile_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<fabric::NodeId> clients_;
  std::vector<fabric::NodeId> servers_;
  std::vector<std::unique_ptr<core::Runtime>> runtimes_;
  std::vector<std::unique_ptr<am::AmRuntime>> am_runtimes_;
};

/// RuntimeOptions with the profile's calibrated virtual-time constants.
core::RuntimeOptions runtime_options_for(const HwProfile& profile);
am::AmRuntime::Options am_options_for(const HwProfile& profile);

}  // namespace tc::hetsim
