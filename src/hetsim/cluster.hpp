// Cluster: a virtual heterogeneous testbed — one client node plus N server
// nodes (hosts or DPUs, per the platform profile) on a simulated RDMA
// fabric, with Three-Chains and Active-Message runtimes attached and their
// cost models wired to the profile's calibrated constants.
//
// This is the substitute for the paper's physical Ookami and Thor clusters
// (DESIGN.md §1): the topology, runtimes and protocols are real; only the
// wire/compute timings come from profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "am/am_runtime.hpp"
#include "core/runtime.hpp"
#include "fabric/fabric.hpp"
#include "hetsim/profiles.hpp"

namespace tc::hetsim {

struct ClusterConfig {
  Platform platform = Platform::kThorXeon;
  std::size_t server_count = 2;
  bool with_ifunc_runtimes = true;  ///< attach core::Runtime on every node
  bool with_am_runtimes = true;     ///< attach am::AmRuntime on every node
  /// Override the per-guard HLL cost (<0 keeps the profile value).
  std::int64_t hll_guard_ns_override = -1;
};

class Cluster {
 public:
  static StatusOr<std::unique_ptr<Cluster>> create(const ClusterConfig& config);

  fabric::Fabric& fabric() { return fabric_; }
  const HwProfile& profile() const { return *profile_; }

  fabric::NodeId client_node() const { return client_; }
  const std::vector<fabric::NodeId>& server_nodes() const { return servers_; }

  /// Runtimes indexed by fabric node id (0 = client, 1.. = servers).
  core::Runtime& runtime(fabric::NodeId node) { return *runtimes_.at(node); }
  am::AmRuntime& am_runtime(fabric::NodeId node) {
    return *am_runtimes_.at(node);
  }
  core::Runtime& client_runtime() { return runtime(client_); }

  bool has_ifunc_runtimes() const { return !runtimes_.empty(); }
  bool has_am_runtimes() const { return !am_runtimes_.empty(); }

 private:
  Cluster() = default;

  fabric::Fabric fabric_;
  const HwProfile* profile_ = nullptr;
  fabric::NodeId client_ = 0;
  std::vector<fabric::NodeId> servers_;
  std::vector<std::unique_ptr<core::Runtime>> runtimes_;
  std::vector<std::unique_ptr<am::AmRuntime>> am_runtimes_;
};

/// RuntimeOptions with the profile's calibrated virtual-time constants.
core::RuntimeOptions runtime_options_for(const HwProfile& profile);
am::AmRuntime::Options am_options_for(const HwProfile& profile);

}  // namespace tc::hetsim
