#include "hetsim/profiles.hpp"

namespace tc::hetsim {

const char* platform_name(Platform platform) {
  switch (platform) {
    case Platform::kOokami: return "ookami_a64fx";
    case Platform::kThorBF2: return "thor_bf2";
    case Platform::kThorXeon: return "thor_xeon";
  }
  return "unknown";
}

namespace {

// interp_dispatch_ns — the superinstruction dispatch refund — is 0 on every
// profile, and that zero is a *measurement*, not a placeholder. The fit
// recipe (bench/micro_interp_tier.cpp, DispatchFusion matrix, 7-repetition
// medians, -O2):
//
//     refund = (T(fuse:0) - T(fuse:1)) / inline_slots
//
// where fuse:1 forms only the inlined Ld*Br windows and `inline_slots`
// counts the tail slots those handlers run. Measured on the dev host
// (Xeon-class, the core the thor_xeon profile models): BFS frontier
// 20.50 µs -> 20.30 µs threaded with ~517 inline slots/iteration, i.e.
// ~0.4 ns/slot, inside run-to-run noise; switch dispatch measures ~0.
// Per-instruction interpreter cost on the same host is ~1.5 ns (threaded) /
// ~2.6 ns (switch), so the out-of-order frontend hides essentially the
// whole dispatch. The kFusedLdiRun class is worse: its interpretive tail
// loop is wall-clock *slower* than plain dispatch (hash-probe 1.05 µs ->
// 2.07 µs threaded), which is why it earns no refund at all and is off by
// default at runtime (RuntimeOptions::fuse_ldi_runs).
//
// The A64FX and A72 profiles also carry 0: their in-order-leaning frontends
// plausibly pay real dispatch cost, but claiming a nonzero refund requires
// running the same fit on those cores, and no such measurement exists here.
// Anything else would re-introduce the exact self-serving-model failure
// this constant replaced (a per-retired-op charge that undercharged fused
// windows ~40x).

// Ookami (Table I / IV): AM 2.58 µs & 1.32 M msg/s, cached bitcode 2.67 µs &
// 1.669 M msg/s, uncached 5.12 µs & 405 K msg/s, JIT 6.59 ms.
HwProfile make_ookami() {
  HwProfile p;
  p.name = platform_name(Platform::kOokami);
  p.link.latency_ns = 2500;
  p.link.per_op_ns = 105;
  p.link.ns_per_byte = 0.42;     // (5.02-2.62) µs over 5159 B ≈ 0.46; tuned
  p.link.gap_ns_per_byte = 0.36;  // rate gap uncached-cached over code bytes
  p.link.gap_send_ns = 585;       // 1/1.669 M - 31 B payload share
  p.link.gap_am_ns = 742;         // 1/1.32 M - 33 B share
  p.client_compute_scale = 1.0;
  p.server_compute_scale = 1.0;   // A64FX on both ends
  p.jit_cost_ns = 6'590'000;
  p.link_cost_ns = 180'000;       // object link: no IR work, ~3% of JIT
  p.ifunc_exec_ns = 50;           // Table I Lookup+Exec, cached
  p.am_exec_ns = 80;
  p.hll_guard_ns = 400;
  p.interp_op_ns = 18;            // A64FX: weak single-thread dispatch
  p.interp_dispatch_ns = 0;       // unmeasured on A64FX; see fit note above
  p.vm_load_ns = 6'000;
  // Batching: one descriptor update per extra sub-frame (~1/4 of the full
  // per-message gap) on the wire; header walk + dispatch on unpack.
  p.link.gap_batch_item_ns = 150;
  p.batch_unpack_ns = 120;
  p.dapc_ifunc_hop_ns = 1400;     // Fig. 6: Get-Bitcode gap ~= +30% @64 srv
  p.dapc_am_hop_ns = 1300;
  return p;
}

// Thor BF2 (Table II / V): AM 1.88 µs & 974 K msg/s, cached 1.87 µs &
// 1.311 M msg/s, uncached 3.49 µs & 417 K msg/s, JIT 4.50 ms.
HwProfile make_thor_bf2() {
  HwProfile p;
  p.name = platform_name(Platform::kThorBF2);
  p.link.latency_ns = 1750;
  p.link.per_op_ns = 90;
  p.link.ns_per_byte = 0.31;      // (3.45-1.85) µs over 5159 B
  p.link.gap_ns_per_byte = 0.316;
  p.link.gap_send_ns = 755;
  p.link.gap_am_ns = 1015;
  p.client_compute_scale = 1.0;   // Xeon host drives the DPUs
  p.server_compute_scale = 3.0;   // Cortex-A72 vs Xeon single-thread
  p.jit_cost_ns = 4'500'000;
  p.link_cost_ns = 150'000;
  p.ifunc_exec_ns = 10;           // Table II Lookup+Exec
  p.am_exec_ns = 10;
  p.hll_guard_ns = 700;
  p.interp_op_ns = 25;            // Cortex-A72 switch-dispatch cost
  p.interp_dispatch_ns = 0;       // unmeasured on the A72; see fit note above
  p.vm_load_ns = 8'000;
  // Batching: the A72 receive path makes unpack the costlier share.
  p.link.gap_batch_item_ns = 180;
  p.batch_unpack_ns = 150;
  // Raw (unscaled) per-hop cost of the A72 receive path, calibrated to the
  // Fig. 5 Get-Bitcode gap of ~+20% at 32 servers.
  p.dapc_ifunc_hop_ns = 1200;
  p.dapc_am_hop_ns = 1100;
  return p;
}

// Thor Xeon (Table III / VI): AM 1.56 µs & 6.754 M msg/s, cached 1.53 µs &
// 7.302 M msg/s, uncached 3.59 µs & 2.037 M msg/s, JIT 0.83 ms.
HwProfile make_thor_xeon() {
  HwProfile p;
  p.name = platform_name(Platform::kThorXeon);
  p.link.latency_ns = 1400;
  p.link.per_op_ns = 100;
  p.link.ns_per_byte = 0.40;      // (3.58-1.51) µs over 5159 B
  p.link.gap_ns_per_byte = 0.068;  // rate path runs near line rate on Xeon
  p.link.gap_send_ns = 125;        // 1/7.302 M
  p.link.gap_am_ns = 136;          // 1/6.754 M
  p.client_compute_scale = 1.0;
  p.server_compute_scale = 1.0;
  p.jit_cost_ns = 830'000;
  p.link_cost_ns = 60'000;
  p.ifunc_exec_ns = 15;
  p.am_exec_ns = 10;
  p.hll_guard_ns = 250;
  p.interp_op_ns = 6;             // Xeon: ~15 cycles/op at 2.6 GHz
  p.interp_dispatch_ns = 0;       // measured ~0 on this core class (above)
  p.vm_load_ns = 2'000;
  // Batching: Xeon runs near line rate, so both shares are small.
  p.link.gap_batch_item_ns = 45;
  p.batch_unpack_ns = 30;
  p.dapc_ifunc_hop_ns = 200;      // Fig. 7: gap ~= +75% @16 srv
  p.dapc_am_hop_ns = 150;
  return p;
}

}  // namespace

const HwProfile& profile_for(Platform platform) {
  static const HwProfile ookami = make_ookami();
  static const HwProfile bf2 = make_thor_bf2();
  static const HwProfile xeon = make_thor_xeon();
  switch (platform) {
    case Platform::kOokami: return ookami;
    case Platform::kThorBF2: return bf2;
    case Platform::kThorXeon: return xeon;
  }
  return xeon;
}

}  // namespace tc::hetsim
