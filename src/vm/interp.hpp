// The portable-bytecode interpreter — the zero-compile execution tier.
//
// execute() runs a validated Program against the same `tc_main(ctx,
// payload, size)` contract the JIT'd representations implement: the payload
// is mutated in place, and every interaction with the hosting node goes
// through a HookTable whose entries are exactly the tc_ctx_* hook functions
// of ir/abi.hpp (the runtime fills the table with the very same extern "C"
// symbols ORC resolves for JIT'd code, so the two tiers observe identical
// runtime behavior).
//
// The interpreter counts both retired ops (a fused superinstruction window
// retires as one) and constituent instructions executed (fusion-invariant).
// hetsim charges virtual time per constituent instruction, refunding only
// the per-op dispatch share for fused tail slots — fusion saves dispatches,
// never the execution work itself (see core::RuntimeOptions::interp_op_ns /
// interp_dispatch_ns) — which is how the tier slots into the paper's cost
// model.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "vm/bytecode.hpp"

namespace tc::vm {

/// Dispatch table for the kHook instruction. Signatures mirror the hook ABI
/// in ir/abi.hpp one to one; `ctx` is the opaque per-invocation context
/// passed to every hook (the runtime's ExecContext).
struct HookTable {
  void* ctx = nullptr;
  void* (*target)(void*) = nullptr;
  std::uint64_t (*node)(void*) = nullptr;
  std::uint64_t (*peer_count)(void*) = nullptr;
  std::uint64_t (*self_peer)(void*) = nullptr;
  std::uint64_t* (*shard_base)(void*) = nullptr;
  std::uint64_t (*shard_size)(void*) = nullptr;
  std::int32_t (*forward)(void*, std::uint64_t, const std::uint8_t*,
                          std::uint64_t) = nullptr;
  std::int32_t (*inject)(void*, std::uint64_t, const char*,
                         const std::uint8_t*, std::uint64_t) = nullptr;
  std::int32_t (*reply)(void*, const std::uint8_t*, std::uint64_t) = nullptr;
  std::int32_t (*remote_write)(void*, std::uint64_t, std::uint64_t,
                               const std::uint8_t*, std::uint64_t) = nullptr;
  void (*hll_guard)(void*) = nullptr;
  /// The libm dependency of the sin_sum kernel (deps manifest: libm.so.6).
  double (*sin_fn)(double) = nullptr;
};

/// Interpreter dispatch strategy. The execution semantics are identical in
/// every mode (the differential suite asserts it); only the inner-loop
/// mechanics differ.
enum class Dispatch : std::uint8_t {
  /// Threaded when the build supports it, otherwise switch.
  kDefault = 0,
  /// The classic while/switch loop — the portable fallback, always built.
  kSwitch,
  /// Computed-goto (&&label) dispatch: one indirect jump per instruction
  /// from a per-opcode table, so the branch predictor keys on the *current*
  /// opcode instead of a single shared dispatch branch. Falls back to
  /// kSwitch on compilers without the extension or when the build forces
  /// TC_VM_SWITCH_DISPATCH.
  kThreaded,
};

/// Whether this build contains the computed-goto dispatch loop.
bool threaded_dispatch_available();

struct InterpOptions {
  /// Fuel limit: executing more instructions than this fails with
  /// kResourceExhausted instead of hanging the node on a looping program.
  /// The check rides the branch handlers (straight-line code cannot loop),
  /// so a program may overshoot by at most its code length.
  std::uint64_t max_ops = 1ull << 30;
  Dispatch dispatch = Dispatch::kDefault;
};

struct InterpResult {
  /// Retired ops: dispatch-loop fetches. A fused superinstruction window
  /// retires as ONE op, so this is the count of dispatches performed — the
  /// base for the per-op *dispatch* share of the virtual-time charge.
  std::uint64_t ops = 0;
  /// Constituent bytecode instructions executed, counting every tail slot a
  /// fused window actually ran. Identical across fusion on/off (and always
  /// >= ops); the base for the per-instruction *execute* share of the
  /// virtual-time charge.
  std::uint64_t instrs = 0;
  /// Tail slots executed inside the *inlined* superinstruction handlers
  /// (kFusedLdCmpBr / kFusedLdAndBr decode their middle and branch slots
  /// directly — no per-slot dispatch of any kind). These are the only slots
  /// whose dispatch work provably disappears, so they alone earn the
  /// interp_dispatch_ns refund. kFusedLdiRun tail slots are excluded: its
  /// interpretive tail loop re-dispatches each slot through exec_straight,
  /// and microbenchmarks show its per-slot cost matches ordinary dispatch
  /// (bench/micro_interp_tier.cpp documents the fit). Always
  /// <= instrs - ops.
  std::uint64_t inline_fused_slots = 0;
};

/// Interprets `program` over a mutable payload. The program must have come
/// out of Program::deserialize()/Assembler::finish() (i.e. be validated);
/// runtime faults that static validation cannot rule out — division by
/// zero, a missing hook implementation, fuel exhaustion — surface as error
/// Statuses, never as UB or crashes.
StatusOr<InterpResult> execute(const Program& program, const HookTable& hooks,
                               std::uint8_t* payload,
                               std::uint64_t payload_size,
                               const InterpOptions& options = {});

}  // namespace tc::vm
