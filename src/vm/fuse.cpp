#include "vm/fuse.hpp"

#include <vector>

namespace tc::vm {

namespace {

bool is_branch(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kBrz || op == Opcode::kBrnz;
}

/// Width code stored in a fused Ld*Br head's `c` operand; -1 for non-loads.
int load_width_code(Opcode op) {
  switch (op) {
    case Opcode::kLd64: return 0;
    case Opcode::kLd32: return 1;
    case Opcode::kLd8: return 2;
    default: return -1;
  }
}

bool is_compare(Opcode op) {
  return op == Opcode::kCeq || op == Opcode::kCne || op == Opcode::kCult ||
         op == Opcode::kCule;
}

bool is_bitop(Opcode op) {
  return op == Opcode::kAnd || op == Opcode::kOr || op == Opcode::kXor ||
         op == Opcode::kShl || op == Opcode::kShr;
}

/// Instructions admissible as interior kFusedLdiRun tail slots (straight
/// line — no control transfer; hooks, branches and ret are handled
/// separately by the run scanner). udiv/urem may trap — the interpreter
/// reports the true slot index.
bool is_straight_line(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kLdi:
    case Opcode::kLdk:
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUdiv:
    case Opcode::kUrem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCeq:
    case Opcode::kCne:
    case Opcode::kCult:
    case Opcode::kCule:
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFadd32:
    case Opcode::kFmul32:
    case Opcode::kLd8:
    case Opcode::kLd32:
    case Opcode::kLd64:
    case Opcode::kSt32:
    case Opcode::kSt64:
      return true;
    default:
      return false;
  }
}

/// Whether `in` reads register `r` (as an operand, a store value, a load
/// base, or a branch condition). This is the consumption test that keeps
/// unrelated adjacencies — in particular every window-shaped sequence of
/// the calibrated chaser stream — out of the fuser.
bool reads_reg(const Instr& in, std::uint8_t r) {
  switch (in.op) {
    case Opcode::kMov:
      return in.b == r;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUdiv:
    case Opcode::kUrem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCeq:
    case Opcode::kCne:
    case Opcode::kCult:
    case Opcode::kCule:
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFadd32:
    case Opcode::kFmul32:
      return in.b == r || in.c == r;
    case Opcode::kLd8:
    case Opcode::kLd32:
    case Opcode::kLd64:
      return in.b == r;
    case Opcode::kSt32:
    case Opcode::kSt64:
      return in.a == r || in.b == r;
    case Opcode::kBrz:
    case Opcode::kBrnz:
      return in.a == r;
    default:
      return false;
  }
}

}  // namespace

Program fuse_program(const Program& program, FuseStats* stats,
                     const FuseOptions& options) {
  Program fused = program;
  std::vector<Instr>& code = fused.code_;
  const std::size_t n = code.size();

  // Tail slots must not be branch targets: a branch into the middle of a
  // window must execute the original instructions, which only works if no
  // window *head* ever lands mid-window.
  std::vector<bool> target(n, false);
  for (const Instr& in : code) {
    if (is_branch(in.op)) target[static_cast<std::size_t>(in.imm)] = true;
  }

  FuseStats local;

  // [load; compare-or-bitop consuming the loaded reg; conditional branch on
  // the middle's result] → one fused head. Returns 0 (no match), 1 (cmp)
  // or 2 (bitop) without mutating, so the run scanner can use it as a
  // lookahead.
  auto match_ld_br = [&](std::size_t pc) -> int {
    if (pc + 2 >= n) return 0;
    const Instr& ld = code[pc];
    if (load_width_code(ld.op) < 0) return 0;
    const Instr& mid = code[pc + 1];
    const Instr& br = code[pc + 2];
    const bool cmp = is_compare(mid.op);
    if (!cmp && !is_bitop(mid.op)) return 0;
    if (br.op != Opcode::kBrz && br.op != Opcode::kBrnz) return 0;
    if (target[pc + 1] || target[pc + 2]) return 0;
    if (mid.b != ld.a && mid.c != ld.a) return 0;  // must consume the load
    if (br.a != mid.a) return 0;  // branch must test the middle's result
    return cmp ? 1 : 2;
  };

  std::size_t pc = 0;
  while (pc < n) {
    const Opcode op = code[pc].op;
    // Skip windows fused on a previous pass (makes the pass idempotent).
    if (op == Opcode::kFusedLdCmpBr || op == Opcode::kFusedLdAndBr) {
      pc += 3;
      continue;
    }
    if (op == Opcode::kFusedLdiRun) {
      pc += 1 + code[pc].b;
      continue;
    }

    if (const int kind = options.ld_br ? match_ld_br(pc) : 0) {
      const Instr ld = code[pc];
      code[pc] = Instr{kind == 1 ? Opcode::kFusedLdCmpBr
                                 : Opcode::kFusedLdAndBr,
                       ld.a, ld.b,
                       static_cast<std::uint8_t>(load_width_code(ld.op)),
                       ld.imm};
      if (kind == 1) {
        ++local.ld_cmp_br;
      } else {
        ++local.ld_alu_br;
      }
      local.instrs_covered += 3;
      pc += 3;
      continue;
    }

    if (op == Opcode::kLdi && options.ldi_runs) {
      // Greedy run behind the ldi: straight-line instructions and hooks,
      // with conditional branches admitted anywhere as side exits (taken
      // leaves the run, not-taken falls through to the next tail) and an
      // unconditional br or ret closing it. Loads that open a Ld*Br window
      // are left for that stronger pattern. The head's `c` records whether
      // the run needs the interpreter's generic tail loop (hooks, ret, or
      // an interior side exit) or the fast straight-prefix path.
      std::size_t len = 0;
      bool slow = false;
      while (len < kMaxFusedRun) {
        const std::size_t q = pc + 1 + len;
        if (q >= n || target[q]) break;
        const Instr& t = code[q];
        if (t.op == Opcode::kBr || t.op == Opcode::kRet) {
          slow = slow || t.op == Opcode::kRet;
          ++len;
          break;
        }
        if (t.op == Opcode::kBrz || t.op == Opcode::kBrnz) {
          ++len;
          continue;  // side exit; whether it is interior is settled below
        }
        if (t.op == Opcode::kHook) {
          slow = true;
          ++len;
          continue;
        }
        if (!is_straight_line(t.op)) break;
        if (options.ld_br && load_width_code(t.op) >= 0 &&
            match_ld_br(q) != 0) {
          break;  // leave the load for the stronger Ld*Br pattern
        }
        ++len;
      }
      // A conditional branch in any slot but the last makes the run a
      // side-exit run, which only the generic tail loop executes.
      for (std::size_t i = 0; i + 1 < len && !slow; ++i) {
        const Opcode t = code[pc + 1 + i].op;
        slow = t == Opcode::kBrz || t == Opcode::kBrnz;
      }
      // The consumer test honors the documented rail (fuse.hpp): hooks and
      // branches never qualify — a brz/brnz *testing* the ldi destination
      // is a side exit, not address-math consumption, and admitting it
      // would let an [ldi; branch-on-dest] adjacency fuse and silently
      // shift a calibrated stream's retired-op counts.
      const bool first_consumes = len > 0 && !is_branch(code[pc + 1].op) &&
                                  code[pc + 1].op != Opcode::kHook &&
                                  reads_reg(code[pc + 1], code[pc].a);
      if (first_consumes) {
        const Instr ldi = code[pc];
        code[pc] = Instr{Opcode::kFusedLdiRun, ldi.a,
                         static_cast<std::uint8_t>(len),
                         static_cast<std::uint8_t>(slow ? 1 : 0), ldi.imm};
        ++local.ldi_runs;
        local.instrs_covered += 1 + len;
        pc += 1 + len;
        continue;
      }
    }

    ++pc;
  }

  if (stats != nullptr) *stats = local;
  return fused;
}

}  // namespace tc::vm
