// Portable bytecode for ifunc kernels — the third code representation of
// this reproduction, next to LLVM bitcode ('TCFB') and AOT objects ('TCFO').
//
// The format is a small register machine over 64-bit registers:
//   * fixed 8-byte instructions: u8 opcode | u8 a | u8 b | u8 c | i32 imm;
//   * a u64 constant pool for immediates wider than 32 bits;
//   * floating point runs on the same registers via IEEE-754 bit patterns
//     (f64 in the full register, f32 in the low 32 bits);
//   * the runtime surface is the exact tc_ctx_* hook ABI of ir/abi.hpp,
//     reached through the kHook instruction.
//
// Programs are ISA-independent: one serialized program executes identically
// on every node through the interpreter (vm/interp.hpp) — the paper's
// cold-start JIT stall (the uncached-vs-cached gap of Tables I-III) is
// replaced by a zero-compile decode of a few hundred bytes.
//
// Entry convention (mirrors `void tc_main(ctx, payload, size)`):
//   r0 = payload pointer, r1 = payload size; ctx is implicit — only kHook
//   instructions can touch the node, through the hook table.
//
// Decoding is fully bounds-checked: register indices, branch targets,
// constant-pool indices and hook arities are validated before a program is
// accepted, so a malformed or truncated buffer is rejected as a Status, and
// an accepted program cannot index out of the register file or jump outside
// its code (no UB from wire input).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace tc::vm {

/// Registers are capped so a register index always fits the u8 operand
/// fields with room to spare; real kernels use ~a dozen.
inline constexpr std::uint16_t kMaxRegisters = 64;

/// First byte of a serialized program ('TCPV' little-endian).
inline constexpr std::uint32_t kProgramMagic = 0x56504354u;
inline constexpr std::uint16_t kProgramVersion = 1;

enum class Opcode : std::uint8_t {
  kNop = 0,
  // --- constants / moves ---------------------------------------------------
  kLdi,   ///< r[a] = sext64(imm)
  kLdk,   ///< r[a] = pool[imm]
  kMov,   ///< r[a] = r[b]
  // --- 64-bit integer ALU (a = dst, b/c = operands) ------------------------
  kAdd,
  kSub,
  kMul,
  kUdiv,  ///< traps (Status error) on zero divisor
  kUrem,  ///< traps (Status error) on zero divisor
  kAnd,
  kOr,
  kXor,
  kShl,   ///< shift amount masked to 6 bits
  kShr,   ///< logical; shift amount masked to 6 bits
  // --- compares: r[a] = (r[b] OP r[c]) ? 1 : 0 -----------------------------
  kCeq,
  kCne,
  kCult,
  kCule,
  // --- IEEE-754 double on full registers -----------------------------------
  kFadd,
  kFsub,
  kFmul,
  kFdiv,
  // --- IEEE-754 float in the low 32 bits (saxpy) ---------------------------
  kFadd32,
  kFmul32,
  // --- memory: address = r[b] + sext64(imm) --------------------------------
  kLd8,   ///< r[a] = zext(*(u8*)addr)
  kLd32,  ///< r[a] = zext(*(u32*)addr)
  kLd64,  ///< r[a] = *(u64*)addr
  kSt32,  ///< *(u32*)addr = low32(r[a])
  kSt64,  ///< *(u64*)addr = r[a]
  // --- control flow: target = imm (instruction index) ----------------------
  kBr,
  kBrz,   ///< branch when r[a] == 0
  kBrnz,  ///< branch when r[a] != 0
  // --- runtime hooks: a = HookId, b = result reg, c = first arg reg --------
  kHook,
  kRet,
  // --- superinstructions (node-local; see vm/fuse.hpp) ---------------------
  // The fuser replaces the *head* instruction of a fusible window with one
  // of these; the window's tail slots keep their original instructions, so
  // a branch into the middle of a window still executes the unfused code.
  // Fused opcodes never appear on the wire: they sit above kOpcodeCount, so
  // Program::validate rejects them in serialized input, and fuse_program
  // runs only on already-validated programs after deserialization.
  kFusedLdCmpBr,  ///< [ld8/ld32/ld64 a,[b+imm]; cmp; brz/brnz] — c = width
  kFusedLdAndBr,  ///< [ld8/ld32/ld64 a,[b+imm]; and/or/xor/shl/shr; br cond]
  kFusedLdiRun,   ///< [ldi a,imm; b straight-line tail instrs, opt. branch]
};

/// Number of distinct *wire* opcodes (validation bound). Fused opcodes live
/// above this so they can never be decoded from serialized programs.
inline constexpr std::uint8_t kOpcodeCount =
    static_cast<std::uint8_t>(Opcode::kRet) + 1;

/// Number of opcodes including node-local superinstructions (sizes the
/// interpreter's dispatch tables).
inline constexpr std::uint8_t kTotalOpcodeCount =
    static_cast<std::uint8_t>(Opcode::kFusedLdiRun) + 1;

const char* opcode_name(Opcode op);

/// The tc_ctx_* hook surface reachable from bytecode, plus the external
/// libm `sin` dependency used by the sin_sum kernel. Ids are wire-stable.
enum class HookId : std::uint8_t {
  kTarget = 0,      ///< r[b] = tc_ctx_target(ctx)
  kNode,            ///< r[b] = tc_ctx_node(ctx)
  kPeerCount,       ///< r[b] = tc_ctx_peer_count(ctx)
  kSelfPeer,        ///< r[b] = tc_ctx_self_peer(ctx)
  kShardBase,       ///< r[b] = tc_ctx_shard_base(ctx)
  kShardSize,       ///< r[b] = tc_ctx_shard_size(ctx)
  kForward,         ///< r[b] = forward(r[c]=peer, r[c+1]=ptr, r[c+2]=size)
  kInject,          ///< r[b] = inject(r[c], r[c+1]=name, r[c+2], r[c+3])
  kReply,           ///< r[b] = reply(r[c]=ptr, r[c+1]=size)
  kRemoteWrite,     ///< r[b] = remote_write(r[c], r[c+1], r[c+2], r[c+3])
  kHllGuard,        ///< tc_hll_guard(ctx); no result
  kSin,             ///< r[b] = f64bits(sin(f64(r[c]))) — libm dependency
  /// r[b..b+3] = shard_size, self_peer, shard_base, peer_count: the whole
  /// shard-arrival preamble in one retired op. Traversal kernels open with
  /// it; the calibrated chaser keeps its original per-value hooks.
  kShardInfo,
};

inline constexpr std::uint8_t kHookCount =
    static_cast<std::uint8_t>(HookId::kShardInfo) + 1;

/// Number of consecutive result registers r[b]... a hook writes (most
/// write one; kShardInfo writes four).
unsigned hook_result_span(HookId hook);

const char* hook_name(HookId hook);
/// Number of argument registers r[c]..r[c+arity-1] the hook consumes.
unsigned hook_arity(HookId hook);
/// Whether the hook writes a result into r[b].
bool hook_has_result(HookId hook);

struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::int32_t imm = 0;
};

/// A validated portable-bytecode program.
class Program {
 public:
  std::uint16_t reg_count() const { return reg_count_; }
  const std::vector<Instr>& code() const { return code_; }
  const std::vector<std::uint64_t>& pool() const { return pool_; }

  /// Wire size of the serialized form.
  std::size_t serialized_size() const;

  Bytes serialize() const;

  /// Decodes and fully validates a serialized program. Every structural
  /// property the interpreter relies on is checked here: magic, version,
  /// checksum, exact length, register/branch/pool/hook operand ranges, and
  /// that execution cannot fall off the end of the code.
  static StatusOr<Program> deserialize(ByteSpan data);

  /// Validates an in-memory program (used by the assembler; deserialize
  /// applies the same rules).
  static Status validate(std::uint16_t reg_count,
                         const std::vector<Instr>& code,
                         const std::vector<std::uint64_t>& pool);

 private:
  friend class Assembler;
  friend Program fuse_program(const Program& program, struct FuseStats* stats,
                              const struct FuseOptions& options);
  std::uint16_t reg_count_ = 0;
  std::vector<Instr> code_;
  std::vector<std::uint64_t> pool_;
};

/// Renders a program as readable mnemonics, one instruction per line
/// (tc_inspect's portable-archive disassembly).
std::string disassemble(const Program& program);

/// Small label-fixup assembler used by the kernel lowerer and by tests.
class Assembler {
 public:
  using Label = std::size_t;

  /// Creates an unbound label.
  Label make_label();
  /// Binds `label` to the next emitted instruction.
  void bind(Label label);

  // Constants. li() picks kLdi for values representable as sext32 and
  // spills everything else to the constant pool.
  void li(std::uint8_t dst, std::uint64_t value);
  void lf(std::uint8_t dst, double value);  ///< f64 bit-pattern constant

  void mov(std::uint8_t dst, std::uint8_t src);
  void alu(Opcode op, std::uint8_t dst, std::uint8_t lhs, std::uint8_t rhs);

  void ld8(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void ld32(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void ld64(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void st32(std::uint8_t src, std::uint8_t base, std::int32_t offset = 0);
  void st64(std::uint8_t src, std::uint8_t base, std::int32_t offset = 0);

  void br(Label target);
  void brz(std::uint8_t cond, Label target);
  void brnz(std::uint8_t cond, Label target);

  void hook(HookId hook, std::uint8_t dst, std::uint8_t arg_base = 0);
  void ret();

  /// Resolves labels and validates; the assembler is left empty on success.
  StatusOr<Program> finish(std::uint16_t reg_count);

 private:
  void emit(Opcode op, std::uint8_t a = 0, std::uint8_t b = 0,
            std::uint8_t c = 0, std::int32_t imm = 0);
  std::uint32_t pool_index(std::uint64_t value);

  std::vector<Instr> code_;
  std::vector<std::uint64_t> pool_;
  std::vector<std::ptrdiff_t> labels_;  ///< -1 = unbound
  std::vector<std::pair<std::size_t, Label>> fixups_;
};

}  // namespace tc::vm
