// Superinstruction fusion for the portable-bytecode interpreter.
//
// fuse_program() is a node-local peephole pass run after deserialization
// (never before serialization: fused opcodes sit above kOpcodeCount and are
// rejected by wire validation, so the wire format is byte-identical with or
// without fusion). It collapses the sequences the traversal kernels spend
// their time in:
//
//   * kFusedLdCmpBr — [ld8/ld32/ld64; compare consuming the loaded reg;
//     brz/brnz on the compare result]: the hash-probe key check and the
//     skip-list finger compare.
//   * kFusedLdAndBr — same shape with a bitop (and/or/xor/shl/shr) in the
//     middle: the BFS visited-bitmap probe.
//   * kFusedLdiRun — [ldi; up to kMaxFusedRun tail instructions whose
//     first consumes the ldi destination]: the address-arithmetic
//     preambles (li stride; mul; add; ...) every kernel's inner loop opens
//     with. Tails are straight-line instructions plus hooks. Conditional
//     branches may appear anywhere as *side exits* — taken leaves the run,
//     not-taken falls through to the next tail — while an unconditional br
//     or ret closes the run, so a whole traversal step ([owner check;
//     side exit to the forward path; address math; finger loads; compare;
//     loop branch]) or a forward/reply epilogue ([li size; address math;
//     stores; arg movs; hook; ret]) retires as one op.
//
// Only the *head* instruction of a window is replaced; the tail slots keep
// their original instructions. A branch into the middle of a window simply
// executes the unfused originals — no control-flow rewriting, no target
// renumbering. The fused handlers perform exactly the constituent register
// and memory effects, so execution results are identical; only the retired
// op count changes (a fused window retires as one op), while the
// constituent-instruction count (InterpResult::instrs) is unchanged. What
// fusion buys is the per-op dispatch: hetsim charges interpreter virtual
// time per constituent instruction and refunds only the calibrated
// dispatch share for each fused-away tail slot (RuntimeOptions::
// interp_dispatch_ns) — the execution work itself is never discounted.
//
// Safety rails (all enforced here):
//   * no tail slot may be a branch target (the head may be one);
//   * the middle instruction of Ld*Br windows must consume the loaded
//     register, and the branch must test the middle's result — this is
//     also what keeps the fig5-fig12 chaser stream fusion-free and its
//     calibrated op counts byte-identical;
//   * kFusedLdiRun tails are straight-line instructions, hooks, or
//     conditional side exits; an unconditional br or ret may appear only
//     as the final slot; the first tail must consume the ldi destination
//     (hooks and branches never qualify as the consumer); udiv/urem and
//     hooks may trap — the interpreter reports faults exactly as the
//     unfused stream would. The first-tail-consumes rule is load-bearing
//     for chaser safety: neither chaser variant has an ldi whose immediate
//     successor reads it, so no run extension can touch the calibrated
//     streams (tests/vm_fuse_test.cpp pins this, including that a branch
//     or hook touching the ldi destination does NOT count as the
//     consumer).
#pragma once

#include <cstddef>

#include "vm/bytecode.hpp"

namespace tc::vm {

/// Maximum number of tail slots behind a kFusedLdiRun head (the head's `b`
/// operand, so it must stay below 256); the whole window is at most
/// 1 + kMaxFusedRun instructions. Sized so a traversal kernel can unroll
/// several per-hop steps — each an owner check with a side exit, record
/// address math, finger loads, a compare, and a loop branch — into one
/// run: the skip-list kernel packs three link takes (13 slots each with
/// guards) or four level descents into a single retired op.
inline constexpr std::size_t kMaxFusedRun = 42;

struct FuseStats {
  std::size_t ld_cmp_br = 0;    ///< load→compare→branch windows
  std::size_t ld_alu_br = 0;    ///< load→bitop→branch windows
  std::size_t ldi_runs = 0;     ///< ldi-led straight-line runs
  std::size_t instrs_covered = 0;  ///< original instrs inside fused windows

  std::size_t windows() const { return ld_cmp_br + ld_alu_br + ldi_runs; }
};

/// Which window classes the pass may form. The two classes have very
/// different execution mechanics — Ld*Br handlers *inline* the three
/// constituent effects (a true superinstruction: no per-slot dispatch at
/// all), while kFusedLdiRun walks its tail slots through an interpretive
/// loop whose per-slot cost microbenchmarks show is on par with ordinary
/// dispatch (bench/micro_interp_tier's DispatchFusion matrix measures the
/// split) — so callers fit or ablate them independently.
struct FuseOptions {
  bool ld_br = true;     ///< kFusedLdCmpBr / kFusedLdAndBr
  bool ldi_runs = true;  ///< kFusedLdiRun
};

/// Returns a copy of `program` with fusible window heads replaced by
/// superinstructions. `program` must already be validated (it came out of
/// Program::deserialize or Assembler::finish). Idempotent on its own output.
Program fuse_program(const Program& program, FuseStats* stats = nullptr,
                     const FuseOptions& options = {});

}  // namespace tc::vm
