#include "vm/lower.hpp"

#include "ir/target_info.hpp"
#include "kir/kernels.hpp"
#include "kir/vm_backend.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::vm {

namespace {

// Short local aliases for the register conventions of lower.hpp (shared
// with ir/kernel_builder.cpp and the KIR definitions of src/kir/).
constexpr std::uint8_t P = kRegPayload;
constexpr std::uint8_t N = kRegSize;
constexpr std::uint8_t kArg0 = kRegArg0;
constexpr std::uint8_t kArg1 = kRegArg1;
constexpr std::uint8_t kArg2 = kRegArg2;
constexpr std::uint8_t kArg3 = kRegArg3;
constexpr std::uint16_t kRegs = kKernelRegCount;

/// Mirrors Emitter::guard(): the HLL frontend's dynamic-dispatch tax.
void guard(Assembler& a, const ir::KernelOptions& options) {
  if (options.hll_guards) a.hook(HookId::kHllGuard, 0);
}

// `++*(uint64_t*)target` — see emit_tsi().
void lower_tsi(Assembler& a, const ir::KernelOptions& o) {
  guard(a, o);
  a.hook(HookId::kTarget, 2);
  a.ld64(3, 2);
  a.li(4, 1);
  a.alu(Opcode::kAdd, 3, 3, 4);
  a.st64(3, 2);
  a.ret();
}

// Byte-sum of the payload into *(u64*)target — see emit_payload_sum().
void lower_payload_sum(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.li(2, 0);  // i
  a.li(3, 0);  // sum
  a.li(6, 1);
  a.bind(loop);
  a.alu(Opcode::kCult, 4, 2, N);
  a.brz(4, done);
  guard(a, o);
  a.alu(Opcode::kAdd, 5, P, 2);
  a.ld8(5, 5);
  a.alu(Opcode::kAdd, 3, 3, 5);
  a.alu(Opcode::kAdd, 2, 2, 6);
  a.br(loop);
  a.bind(done);
  a.hook(HookId::kTarget, 4);
  a.st64(3, 4);
  a.ret();
}

// [n:u64][a:f32][x:f32*n][y:f32*n] → target[i] = a*x[i]+y[i] — emit_saxpy().
void lower_saxpy(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P, 0);   // n
  a.ld32(3, P, 8);   // a
  a.li(13, 4);
  a.li(12, 1);
  a.li(11, 12);
  a.alu(Opcode::kAdd, 4, P, 11);   // x = payload + 12
  a.alu(Opcode::kMul, 11, 2, 13);  // x_bytes = n*4
  a.alu(Opcode::kAdd, 5, 4, 11);   // y = x + x_bytes
  a.hook(HookId::kTarget, 6);      // out
  a.li(7, 0);                      // i
  a.bind(loop);
  a.alu(Opcode::kCult, 11, 7, 2);
  a.brz(11, done);
  guard(a, o);
  a.alu(Opcode::kMul, 8, 7, 13);   // byte offset
  a.alu(Opcode::kAdd, 11, 4, 8);
  a.ld32(9, 11);                   // xi
  a.alu(Opcode::kAdd, 11, 5, 8);
  a.ld32(10, 11);                  // yi
  a.alu(Opcode::kFmul32, 11, 3, 9);
  a.alu(Opcode::kFadd32, 11, 11, 10);  // a*xi + yi
  a.alu(Opcode::kAdd, 9, 6, 8);
  a.st32(11, 9);
  a.alu(Opcode::kAdd, 7, 7, 12);
  a.br(loop);
  a.bind(done);
  a.ret();
}

// [n:u64][x:f64*n] → *(double*)target = Σx — emit_vec_reduce().
void lower_vec_reduce(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P);      // n
  a.li(3, 0);        // acc = 0.0 (bit pattern 0)
  a.li(4, 0);        // i
  a.li(7, 1);
  a.li(8, 8);
  a.bind(loop);
  a.alu(Opcode::kCult, 5, 4, 2);
  a.brz(5, done);
  guard(a, o);
  a.alu(Opcode::kMul, 5, 4, 8);
  a.alu(Opcode::kAdd, 5, P, 5);
  a.ld64(6, 5, 8);   // x[i] at payload + 8 + i*8
  a.alu(Opcode::kFadd, 3, 3, 6);
  a.alu(Opcode::kAdd, 4, 4, 7);
  a.br(loop);
  a.bind(done);
  a.hook(HookId::kTarget, 5);
  a.st64(3, 5);
  a.ret();
}

// The DAPC chaser — emit_chaser(). Payload: [addr:u64][depth:u64], or —
// for the tagged (async-window) build-time variant — [addr][depth][tag].
// Two variants rather than a runtime size dispatch: the interpreter tier
// charges per retired instruction, so the classic instruction stream must
// stay exactly as calibrated for the fig5-fig12 numbers.
void lower_chaser(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto local = a.make_label();
  const auto step = a.make_label();
  a.hook(HookId::kShardSize, 2);
  a.hook(HookId::kSelfPeer, 3);
  a.hook(HookId::kShardBase, 4);
  a.ld64(5, P, 0);   // addr
  a.ld64(6, P, 8);   // depth
  a.li(10, 1);
  a.li(11, workloads::kShardWordBytes);
  a.bind(loop);
  a.alu(Opcode::kUdiv, 7, 5, 2);   // owner = addr / shard_size
  a.alu(Opcode::kCeq, 8, 7, 3);
  a.brnz(8, local);
  // forward: refresh the in-place payload, ship to the owning server (the
  // tagged variant's tail rides along untouched in bytes [16, 24)).
  a.st64(5, P, 0);
  a.st64(6, P, 8);
  a.mov(kArg0, 7);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 8, kArg0);
  a.ret();
  a.bind(local);
  guard(a, o);
  a.alu(Opcode::kUrem, 8, 5, 2);   // slot
  a.alu(Opcode::kMul, 8, 8, 11);
  a.alu(Opcode::kAdd, 8, 4, 8);
  a.ld64(9, 8);                    // value
  a.alu(Opcode::kSub, 6, 6, 10);   // next_depth
  a.brnz(6, step);
  // finish: ReturnResult with the final value (tagged: plus the tag).
  a.st64(9, P, 0);
  if (o.chaser_tagged) {
    a.ld64(9, P, 16);              // tag
    a.st64(9, P, 8);
    a.li(11, 16);
  }
  a.mov(kArg1, P);
  a.mov(kArg2, 11);                // size = 8 (classic) or 16 (tagged)
  a.hook(HookId::kReply, 8, kArg1);
  a.ret();
  a.bind(step);
  a.mov(5, 9);
  a.br(loop);
}

// Ring traversal with TTL — emit_ring_hop(). Payload: [ttl:u64][hops:u64].
void lower_ring_hop(Assembler& a, const ir::KernelOptions& o) {
  const auto done = a.make_label();
  a.ld64(2, P, 0);   // ttl
  a.ld64(3, P, 8);   // hops
  a.li(10, 1);
  a.brz(2, done);
  guard(a, o);
  a.alu(Opcode::kSub, 4, 2, 10);
  a.st64(4, P, 0);
  a.alu(Opcode::kAdd, 4, 3, 10);
  a.st64(4, P, 8);
  a.hook(HookId::kSelfPeer, 5);
  a.hook(HookId::kPeerCount, 6);
  a.alu(Opcode::kAdd, 4, 5, 10);
  a.alu(Opcode::kUrem, 4, 4, 6);   // next = (self+1) % count
  a.mov(kArg0, 4);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 4, kArg0);
  a.ret();
  a.bind(done);
  a.li(4, 16);
  a.mov(kArg1, P);
  a.mov(kArg2, 4);
  a.hook(HookId::kReply, 4, kArg1);
  a.ret();
}

// Code-injecting code — emit_spawner().
// Payload: [peer:u64][arg:u64][name:NUL-terminated].
void lower_spawner(Assembler& a, const ir::KernelOptions& o) {
  guard(a, o);
  a.ld64(kArg0, P, 0);             // peer
  a.li(2, 16);
  a.alu(Opcode::kAdd, kArg1, P, 2);  // name
  a.li(2, 8);
  a.alu(Opcode::kAdd, kArg2, P, 2);  // arg pointer
  a.li(kArg3, 8);                    // arg size
  a.hook(HookId::kInject, 2, kArg0);
  a.ret();
}

// Σ sin(x) over payload doubles via the libm dependency — emit_sin_sum().
void lower_sin_sum(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P);      // n
  a.li(3, 0);        // acc
  a.li(4, 0);        // i
  a.li(7, 1);
  a.li(8, 8);
  a.bind(loop);
  a.alu(Opcode::kCult, 5, 4, 2);
  a.brz(5, done);
  guard(a, o);
  a.alu(Opcode::kMul, 5, 4, 8);
  a.alu(Opcode::kAdd, 5, P, 5);
  a.ld64(6, 5, 8);
  a.hook(HookId::kSin, 6, 6);      // r6 = sin(r6)
  a.alu(Opcode::kFadd, 3, 3, 6);
  a.alu(Opcode::kAdd, 4, 4, 7);
  a.br(loop);
  a.bind(done);
  a.hook(HookId::kTarget, 5);
  a.st64(3, 5);
  a.ret();
}

// One-sided RDMA PUT from injected code — emit_remote_store().
// Payload: [peer:u64][offset:u64][value:u64].
void lower_remote_store(Assembler& a, const ir::KernelOptions& o) {
  guard(a, o);
  a.ld64(kArg0, P, 0);              // peer
  a.ld64(kArg1, P, 8);              // offset
  a.li(2, 16);
  a.alu(Opcode::kAdd, kArg2, P, 2);  // value pointer
  a.li(kArg3, 8);
  a.hook(HookId::kRemoteWrite, 3, kArg0);
  a.st64(3, P, 0);                   // rc (sign-extended by the hook)
  a.mov(kArg1, P);
  a.mov(kArg2, kArg3);               // size = 8
  a.hook(HookId::kReply, 2, kArg1);
  a.ret();
}

// Streaming Welford statistics — emit_stats_summary().
// Payload: [n:u64][x:f64*n]; target = double[3] {count, mean, M2}.
void lower_stats_summary(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P);                    // n
  a.hook(HookId::kTarget, 3);      // state
  a.ld64(4, 3, 0);                 // count
  a.ld64(5, 3, 8);                 // mean
  a.ld64(6, 3, 16);                // M2
  a.li(7, 0);                      // i
  a.li(12, 1);
  a.li(13, 8);
  a.lf(14, 1.0);
  a.bind(loop);
  a.alu(Opcode::kCult, 8, 7, 2);
  a.brz(8, done);
  guard(a, o);
  a.alu(Opcode::kMul, 8, 7, 13);
  a.alu(Opcode::kAdd, 8, P, 8);
  a.ld64(9, 8, 8);                 // xi
  // count' = count + 1; delta = x - mean; mean' = mean + delta / count';
  // M2' = M2 + delta * (x - mean') — identical op order to the IR emitter.
  a.alu(Opcode::kFadd, 4, 4, 14);
  a.alu(Opcode::kFsub, 10, 9, 5);
  a.alu(Opcode::kFdiv, 11, 10, 4);
  a.alu(Opcode::kFadd, 5, 5, 11);
  a.alu(Opcode::kFsub, 11, 9, 5);
  a.alu(Opcode::kFmul, 11, 10, 11);
  a.alu(Opcode::kFadd, 6, 6, 11);
  a.alu(Opcode::kAdd, 7, 7, 12);
  a.br(loop);
  a.bind(done);
  a.st64(4, 3, 0);
  a.st64(5, 3, 8);
  a.st64(6, 3, 16);
  a.ret();
}

// Binomial broadcast tree — emit_tree_broadcast().
// Payload: [base:u64][span:u64][value:u64].
void lower_tree_broadcast(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P, 0);   // base
  a.ld64(3, P, 8);   // span
  a.ld64(4, P, 16);  // value
  a.li(10, 1);
  a.li(11, 2);
  a.bind(loop);
  a.alu(Opcode::kCule, 5, 3, 10);  // leaf when span <= 1
  a.brnz(5, done);
  guard(a, o);
  // mid = (span + 1) / 2: keep [base, base+mid), delegate the rest.
  a.alu(Opcode::kAdd, 5, 3, 10);
  a.alu(Opcode::kUdiv, 5, 5, 11);
  a.alu(Opcode::kAdd, 6, 2, 5);    // right_base
  a.alu(Opcode::kSub, 7, 3, 5);    // right_span
  a.st64(6, P, 0);
  a.st64(7, P, 8);
  a.mov(kArg0, 6);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 8, kArg0);
  a.mov(3, 5);                     // span = mid
  a.br(loop);
  a.bind(done);
  a.hook(HookId::kTarget, 5);
  a.st64(4, 5, 0);                 // value slot
  a.ld64(6, 5, 8);                 // arrival count
  a.alu(Opcode::kAdd, 6, 6, 10);
  a.st64(6, 5, 8);
  a.ret();
}

// Collective-suite broadcast — emit_collective_broadcast().
// Payload: [base:u64][span:u64][value:u64][lane:u64][root:u64]. base/span
// are tree positions relative to the root; the actual peer of a position
// is (position + root) % peer_count. The per-server target is an array of
// 64-byte collective cells indexed by lane ({value, arrivals} at offsets
// 0/8); after delivering locally, the leaf replies [0][lane][value] to the
// chain origin so the initiator can complete by draining its own progress
// context instead of polling remote memory.
void lower_collective_broadcast(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto done = a.make_label();
  a.ld64(2, P, 0);   // base (tree position)
  a.ld64(3, P, 8);   // span
  a.li(10, 1);
  a.li(11, 2);
  a.hook(HookId::kPeerCount, 9);
  a.bind(loop);
  a.alu(Opcode::kCule, 5, 3, 10);  // leaf when span <= 1
  a.brnz(5, done);
  guard(a, o);
  // mid = (span + 1) / 2: keep [base, base+mid), delegate the rest.
  a.alu(Opcode::kAdd, 5, 3, 10);
  a.alu(Opcode::kUdiv, 5, 5, 11);
  a.alu(Opcode::kAdd, 6, 2, 5);    // right_base
  a.alu(Opcode::kSub, 7, 3, 5);    // right_span
  a.st64(6, P, 0);
  a.st64(7, P, 8);
  a.ld64(8, P, 32);                // root
  a.alu(Opcode::kAdd, 8, 6, 8);
  a.alu(Opcode::kUrem, 8, 8, 9);   // dest = (right_base + root) % count
  a.mov(kArg0, 8);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 8, kArg0);
  a.mov(3, 5);                     // span = mid
  a.br(loop);
  a.bind(done);
  a.hook(HookId::kTarget, 5);
  a.ld64(6, P, 24);                // lane
  a.li(7, workloads::kLaneCellBytes);
  a.alu(Opcode::kMul, 6, 6, 7);
  a.alu(Opcode::kAdd, 5, 5, 6);    // cell = target + lane * 64
  a.ld64(4, P, 16);                // value
  a.st64(4, 5, 0);                 // cell.value
  a.ld64(6, 5, 8);
  a.alu(Opcode::kAdd, 6, 6, 10);
  a.st64(6, 5, 8);                 // cell.arrivals += 1
  // Ack to origin: [kind=0][lane][value].
  a.ld64(6, P, 24);                // lane (offset 24 still untouched)
  a.li(7, 0);
  a.st64(7, P, 0);
  a.st64(6, P, 8);
  a.st64(4, P, 16);
  a.mov(kArg1, P);
  a.li(kArg2, 24);
  a.hook(HookId::kReply, 8, kArg1);
  a.ret();
}

// Collective-suite reduction — emit_collective_reduce(). One kernel, two
// message kinds discriminated by payload word 0:
//   fan-out    [0][base][span][parent][lane][op][root]  (56 bytes)
//   contribute [1][lane][value]                         (24 bytes)
// Fan-out descends the halving tree: every split forwards the lower half's
// twin to its midpoint peer and counts a child; a node that delegated
// children parks {acc = own value, expected, arrived = 0, parent, op} in
// its per-lane cell, a childless leaf contributes straight to its parent.
// Contributions fold into the cell (sum/min/max; count folds ones) and,
// when the last child has reported, climb to the parent — or, at the root
// (parent == ~0), reply [1][lane][acc] to the chain origin.
void lower_collective_reduce(Assembler& a, const ir::KernelOptions& o) {
  const auto contribute = a.make_label();
  const auto floop = a.make_label();
  const auto ffin = a.make_label();
  const auto have_one = a.make_label();
  const auto leaf = a.make_label();
  const auto send_up = a.make_label();
  const auto reply_out = a.make_label();
  const auto cmin = a.make_label();
  const auto cmax = a.make_label();
  const auto fold = a.make_label();
  const auto store = a.make_label();
  const auto climb = a.make_label();
  const auto quiet = a.make_label();

  a.ld64(2, P, 0);                 // kind
  a.brnz(2, contribute);

  // --- fan-out ---------------------------------------------------------------
  a.ld64(2, P, 8);                 // base (tree position)
  a.ld64(3, P, 16);                // span
  a.ld64(15, P, 24);               // parent (actual peer index, ~0 at root)
  a.li(4, 0);                      // children
  a.li(10, 1);
  a.li(11, 2);
  a.hook(HookId::kSelfPeer, 5);
  a.hook(HookId::kPeerCount, 9);
  a.bind(floop);
  a.alu(Opcode::kCule, 6, 3, 10);  // leaf when span <= 1
  a.brnz(6, ffin);
  guard(a, o);
  a.alu(Opcode::kAdd, 6, 3, 10);
  a.alu(Opcode::kUdiv, 6, 6, 11);  // mid
  a.alu(Opcode::kAdd, 7, 2, 6);    // right_base
  a.alu(Opcode::kSub, 8, 3, 6);    // right_span
  a.st64(7, P, 8);
  a.st64(8, P, 16);
  a.st64(5, P, 24);                // child's parent = self
  a.ld64(8, P, 48);                // root
  a.alu(Opcode::kAdd, 7, 7, 8);
  a.alu(Opcode::kUrem, 7, 7, 9);   // dest = (right_base + root) % count
  a.mov(kArg0, 7);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 7, kArg0);
  a.alu(Opcode::kAdd, 4, 4, 10);   // ++children
  a.mov(3, 6);                     // span = mid
  a.br(floop);
  a.bind(ffin);
  a.hook(HookId::kTarget, 5);
  a.ld64(6, P, 32);                // lane
  a.li(7, workloads::kLaneCellBytes);
  a.alu(Opcode::kMul, 6, 6, 7);
  a.alu(Opcode::kAdd, 5, 5, 6);    // cell = target + lane * 64
  // Own contribution: 1 for op kCount (3), cell.contrib otherwise.
  a.ld64(7, P, 40);                // op
  a.li(8, 3);
  a.alu(Opcode::kCeq, 8, 7, 8);
  a.li(6, 1);
  a.brnz(8, have_one);
  a.ld64(6, 5, 16);                // cell.contrib
  a.bind(have_one);
  a.brz(4, leaf);
  // Internal node: park the partial state and wait for contributions.
  a.st64(6, 5, 24);                // cell.acc = own value
  a.st64(4, 5, 32);                // cell.expected = children
  a.li(7, 0);
  a.st64(7, 5, 40);                // cell.arrived = 0
  a.st64(15, 5, 48);               // cell.parent
  a.ld64(7, P, 40);
  a.st64(7, 5, 56);                // cell.op
  a.ret();
  a.bind(leaf);
  // Childless: contribute [1][lane][value] straight to the parent (or
  // reply to the origin when this leaf is also the root: N == 1).
  a.ld64(7, P, 32);                // lane (before rewriting words 0..2)
  a.li(8, 1);
  a.st64(8, P, 0);
  a.st64(7, P, 8);
  a.st64(6, P, 16);
  a.alu(Opcode::kAdd, 8, 15, 10);  // parent + 1 == 0  <=>  root
  a.brz(8, reply_out);
  a.mov(kArg0, 15);
  a.mov(kArg1, P);
  a.li(kArg2, 24);
  a.hook(HookId::kForward, 7, kArg0);
  a.ret();
  a.bind(reply_out);
  a.mov(kArg1, P);
  a.li(kArg2, 24);
  a.hook(HookId::kReply, 7, kArg1);
  a.ret();

  // --- contribute ------------------------------------------------------------
  a.bind(contribute);
  a.hook(HookId::kTarget, 5);
  a.ld64(6, P, 8);                 // lane
  a.li(7, workloads::kLaneCellBytes);
  a.alu(Opcode::kMul, 6, 6, 7);
  a.alu(Opcode::kAdd, 5, 5, 6);    // cell
  guard(a, o);
  a.li(10, 1);
  a.ld64(6, P, 16);                // v
  a.ld64(7, 5, 56);                // op
  a.ld64(8, 5, 24);                // acc
  a.alu(Opcode::kCeq, 3, 7, 10);   // op == kMin
  a.brnz(3, cmin);
  a.li(2, 2);
  a.alu(Opcode::kCeq, 3, 7, 2);    // op == kMax
  a.brnz(3, cmax);
  a.bind(fold);
  a.alu(Opcode::kAdd, 8, 8, 6);    // sum / count
  a.br(store);
  a.bind(cmin);
  a.alu(Opcode::kCult, 3, 8, 6);   // acc < v: keep acc
  a.brnz(3, store);
  a.mov(8, 6);
  a.br(store);
  a.bind(cmax);
  a.alu(Opcode::kCult, 3, 8, 6);   // acc < v: take v
  a.brz(3, store);
  a.mov(8, 6);
  a.bind(store);
  a.st64(8, 5, 24);                // cell.acc
  a.ld64(6, 5, 40);
  a.alu(Opcode::kAdd, 6, 6, 10);
  a.st64(6, 5, 40);                // ++cell.arrived
  a.ld64(7, 5, 32);                // cell.expected
  a.alu(Opcode::kCeq, 7, 6, 7);
  a.brz(7, quiet);
  a.bind(climb);
  a.st64(8, P, 16);                // payload value = folded acc
  a.ld64(15, 5, 48);               // parent
  a.alu(Opcode::kAdd, 2, 15, 10);
  a.brz(2, reply_out);             // root: reply [1][lane][acc] to origin
  a.mov(kArg0, 15);
  a.mov(kArg1, P);
  a.li(kArg2, 24);
  a.hook(HookId::kForward, 3, kArg0);
  a.bind(quiet);
  a.ret();
}

// Remote hash-table lookup — emit_hash_probe().
// Payload: [key:u64][slot:u64][probes_left:u64][tag:u64]; the table is an
// open-addressing array of {key, value} bucket pairs, shard_size / 2
// buckets per server. Probes the linear chain locally, forwards itself at
// shard crossings, replies [value|~0][tag] to the chain origin.
// The lowering is scheduled for the superinstruction fuser (vm/fuse.hpp)
// around side-exit runs. The entry run carries the kShardInfo hook (behind
// a consuming mov so the li-led run qualifies) plus the arrival math, and
// falls into the probe loop. The whole probe iteration — owner check with
// a side exit to the forward path, bucket address math, key/value loads,
// hit side exit, empty-bucket side exit, probe advance, back edge — is a
// single run, so each probe retires one op. The bucket value load is
// speculative (always in bounds, buckets are 16 bytes) and lands the hit
// result in r2 before the hit exit; load order keeps every compare off a
// load's heels so no load-compare-branch window splits the run.
void lower_hash_probe(Assembler& a, const ir::KernelOptions& o) {
  const auto loop = a.make_label();
  const auto fwd = a.make_label();
  const auto miss = a.make_label();
  const auto out = a.make_label();
  // Entry run: [li; consuming mov; shard-info hook; arrival math; loads].
  a.li(10, 2);
  a.mov(11, 10);                   // consumes the li: the run admission rule
  a.hook(HookId::kShardInfo, 2);   // r2 size, r3 self, r4 base, r5 count
  a.alu(Opcode::kUdiv, 8, 2, 10);  // buckets per shard
  a.alu(Opcode::kMul, 9, 8, 5);    // capacity = bps * peer_count
  a.ld64(6, P, 8);   // slot
  a.ld64(7, P, 16);  // probes_left
  // Probe loop: one run per iteration.
  a.bind(loop);
  a.li(11, 1);
  a.alu(Opcode::kMul, kArg0, 6, 11);   // slot copy seeds the run
  a.alu(Opcode::kUdiv, 10, kArg0, 8);  // owner
  a.alu(Opcode::kUrem, kArg0, kArg0, 8);  // local bucket
  a.alu(Opcode::kCeq, 11, 10, 3);
  a.brz(11, fwd);                  // side exit: the chain left the shard
  guard(a, o);
  a.li(10, workloads::kHashBucketBytes);
  a.alu(Opcode::kMul, 10, kArg0, 10);
  a.alu(Opcode::kAdd, 10, 4, 10);  // &shard[2 * local]
  a.ld64(5, P, 0);                 // probe key
  a.ld64(11, 10);                  // stored key
  a.ld64(2, 10, 8);                // value (speculative)
  a.alu(Opcode::kCeq, kArg1, 11, 5);
  a.brnz(kArg1, out);              // side exit: hit, r2 holds the value
  a.brz(11, miss);                 // side exit: empty bucket, definitive miss
  a.li(2, 1);
  a.alu(Opcode::kSub, 7, 7, 2);    // --probes_left
  a.alu(Opcode::kAdd, 6, 6, 2);
  a.alu(Opcode::kUrem, 6, 6, 9);   // slot = (slot + 1) % capacity
  a.brnz(7, loop);                 // back edge; falls through when drained
  a.bind(miss);                    // probe budget drained, or empty bucket
  a.li(2, ~0ull);                  // the miss sentinel; falls into the reply
  // Reply run: the tag-address li leads, the hook and ret close it.
  a.bind(out);
  a.li(11, 24);
  a.alu(Opcode::kAdd, 11, P, 11);  // &payload[24]
  a.st64(2, P, 0);
  a.ld64(11, 11, 0);               // tag
  a.st64(11, P, 8);
  a.mov(kArg1, P);
  a.li(kArg2, 16);
  a.hook(HookId::kReply, 2, kArg1);
  a.ret();
  // Forward: refresh the in-place probe state, ship to the owning server.
  a.bind(fwd);
  a.li(kArg0, 8);
  a.alu(Opcode::kAdd, kArg0, P, kArg0);  // &payload[8]
  a.st64(6, kArg0, 0);
  a.st64(7, kArg0, 8);
  a.mov(kArg0, 10);
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 11, kArg0);
  a.ret();
}

// Ordered search over the sharded skip-list index — emit_ordered_search().
// Payload: [target:u64][node:u64][level:u64][tag:u64]; 10-word node
// records [key][value][(next_id, next_key) x 4 levels]. The stored finger
// keys make the descent locally decidable: in-shard hops loop, cross-shard
// down-links forward. Replies [value|~0][tag].
// Scheduled for the fuser like lower_hash_probe, but with the hop loops
// unrolled inside the side-exit runs: three link takes (or four level
// descents) retire as one op each run. Loop invariants are cached in
// registers so each unrolled body stays small — r15 holds self * nps (the
// ownership test becomes `rank = node - r15; rank < nps`, one sub and one
// cult, with the wraparound of an underflowing sub failing the cult for
// nodes on earlier shards), r7 is repurposed from the level to the finger
// byte offset 16 * level (the forward path divides it back), and r4 is
// biased by 16 so a record's finger array is `r4 + 80 * rank` directly.
// The NIL-link test is folded into the key compare — NIL fingers carry ~0
// as their key while real keys stay below 2^63, so `next_key <= target`
// alone rejects them — and the reply is branch-free: `or(value, hit - 1)`
// yields the value on a hit and ~0 on a miss, which lets the landing
// check and the reply epilogue fuse into one run.
void lower_ordered_search(Assembler& a, const ir::KernelOptions& o) {
  const auto fwd = a.make_label();
  const auto take = a.make_label();
  const auto down = a.make_label();
  const auto fin = a.make_label();
  // Entry run: [li; consuming mov; shard-info hook; arrival math; owner
  // side exit; record address; finger probe]. One retired op per arrival.
  a.li(10, workloads::kIndexRecordWords);
  a.mov(11, 10);                   // consumes the li: the run admission rule
  a.hook(HookId::kShardInfo, 2);   // r2 size, r3 self, r4 base (count: r5)
  a.alu(Opcode::kUdiv, 8, 2, 10);  // nodes per shard
  a.ld64(5, P, 0);   // target (the unused peer count is overwritten)
  a.ld64(6, P, 8);   // node
  a.ld64(7, P, 16);  // level
  a.li(10, workloads::kIndexFingerBytes);
  a.alu(Opcode::kMul, 7, 7, 10);   // r7 = finger offset, 16 * level
  a.alu(Opcode::kAdd, 4, 4, 10);   // bias the base: records' finger arrays
  a.alu(Opcode::kMul, 15, 3, 8);   // first owned node id, self * nps
  a.alu(Opcode::kSub, 9, 6, 15);   // local rank (wraps when not ours)
  a.alu(Opcode::kCult, 11, 9, 8);
  a.brz(11, fwd);                  // side exit: arrived at the wrong shard
  guard(a, o);
  a.li(10, workloads::kIndexRecordBytes);
  a.alu(Opcode::kMul, 9, 9, 10);
  a.alu(Opcode::kAdd, 9, 4, 9);    // finger-array address of the record
  a.alu(Opcode::kAdd, 11, 9, 7);
  a.ld64(kArg1, 11, 8);            // next_key (~0 for NIL links); loaded
  a.ld64(2, 11, 0);                // before next_id so the compare does not
  a.alu(Opcode::kCule, 11, kArg1, 5);  // trail its load (a Ld*Br window
  a.brnz(11, take);                // would split the run)
  a.br(down);
  // Link-take run, three hops unrolled: `mul node, next_id, 1` moves the
  // taken link into the node register while consuming the leading li
  // (kArg0 stays 1 across the bodies), and each body re-checks ownership
  // (side exit to the forward path), recomputes the record address, and
  // probes the same level's finger — so up to three in-shard horizontal
  // hops retire as a single op before the back edge re-enters the run.
  a.bind(take);
  a.li(kArg0, 1);
  for (int unroll = 0; unroll < 3; ++unroll) {
    a.alu(Opcode::kMul, 6, 2, kArg0);  // node = next_id
    a.alu(Opcode::kSub, 9, 6, 15);     // local rank
    a.alu(Opcode::kCult, 11, 9, 8);
    a.brz(11, fwd);                  // side exit: the link left the shard
    guard(a, o);
    a.li(10, workloads::kIndexRecordBytes);
    a.alu(Opcode::kMul, 9, 9, 10);
    a.alu(Opcode::kAdd, 9, 4, 9);
    a.alu(Opcode::kAdd, 11, 9, 7);
    a.ld64(kArg1, 11, 8);            // next_key
    a.ld64(2, 11, 0);                // next_id
    a.alu(Opcode::kCule, 11, kArg1, 5);
    if (unroll < 2) {
      a.brz(11, down);               // side exit: overshoot or NIL, descend
    } else {
      a.brnz(11, take);              // back edge; falls through to descend
    }
  }
  // Descend run, four levels unrolled: each body tests the level floor
  // (side exit to the reply), steps the cached finger offset down one
  // level, and probes that level's finger on the same record.
  a.bind(down);
  a.li(10, workloads::kIndexFingerBytes);
  for (int unroll = 0; unroll < 4; ++unroll) {
    a.alu(Opcode::kCult, 11, 7, 10);  // offset < 16 means level 0
    a.brnz(11, fin);                 // side exit: bottomed out
    a.alu(Opcode::kSub, 7, 7, 10);   // --level
    a.alu(Opcode::kAdd, 11, 9, 7);
    a.ld64(kArg1, 11, 8);            // next_key
    a.ld64(2, 11, 0);                // next_id
    a.alu(Opcode::kCule, 11, kArg1, 5);
    a.brnz(11, take);
  }
  a.br(down);
  // Branch-free reply run: hit = (landing key == target); hit - 1 is 0 on
  // a hit and ~0 on a miss, so `or(value, hit - 1)` is the reply word and
  // the whole landing-check-plus-reply epilogue is one retired op.
  a.bind(fin);
  a.li(10, workloads::kIndexFingerBytes);
  a.alu(Opcode::kSub, kArg0, 9, 10);  // un-bias: the record's key address
  a.ld64(2, kArg0, 8);             // value (speculative)
  a.ld64(kArg0, kArg0, 0);         // landing key
  a.alu(Opcode::kCeq, kArg0, kArg0, 5);
  a.li(10, 1);
  a.alu(Opcode::kSub, kArg0, kArg0, 10);
  a.alu(Opcode::kOr, 2, 2, kArg0);  // value on a hit, ~0 on a miss
  a.li(11, 24);
  a.alu(Opcode::kAdd, 11, P, 11);  // &payload[24]
  a.st64(2, P, 0);
  a.ld64(11, 11, 0);               // tag
  a.st64(11, P, 8);
  a.mov(kArg1, P);
  a.li(kArg2, 16);
  a.hook(HookId::kReply, 2, kArg1);
  a.ret();
  // Forward: refresh the in-place descent state (dividing the cached
  // finger offset back into the level the payload carries), ship to the
  // owning server.
  a.bind(fwd);
  a.li(kArg0, 8);
  a.alu(Opcode::kAdd, kArg0, P, kArg0);  // &payload[8]
  a.st64(6, kArg0, 0);
  a.li(10, workloads::kIndexFingerBytes);
  a.alu(Opcode::kUdiv, 11, 7, 10);  // level = finger offset / 16
  a.st64(11, kArg0, 8);
  a.alu(Opcode::kUdiv, kArg0, 6, 8);  // owner = node / nps
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 11, kArg0);
  a.ret();
}

// Self-propagating BFS frontier expansion — emit_bfs_frontier(). Two
// message kinds discriminated by payload word 0:
//   visit [0][lane][vertex][from]  (32 bytes)
//   ack   [1][lane]                (16 bytes)
// The shard is a CSR slice [vps][row_offsets x vps+1][global cols]; the
// per-lane 64-byte cell holds {visited_count, visited_bitmap*, worklist*,
// engaged, parent, deficit}. A visit drains the local closure through the
// worklist (bitmap dedup) and forwards cross-shard frontier vertices,
// stamping itself as their `from`. Completion is Dijkstra-Scholten: the
// first visit engages a neutral server under its sender (its ack is
// deferred), later visits are acked right after processing, every forward
// bumps the server's deficit, and a child ack that drains the deficit
// disengages the server — acking *its* parent in turn, or replying
// [lane][0] to the chain origin at the engagement root (parent == ~0).
// Credit counting to the origin would be unsound here: a child's ack can
// overtake its parent's, so the naive outstanding counter transiently hits
// zero mid-traversal; the DS engagement tree cannot.
void lower_bfs_frontier(Assembler& a, const ir::KernelOptions& o) {
  const auto visit_kind = a.make_label();
  const auto quiet = a.make_label();
  const auto reply_origin = a.make_label();
  const auto run = a.make_label();
  const auto wloop = a.make_label();
  const auto visit = a.make_label();
  const auto eloop = a.make_label();
  const auto push = a.make_label();
  const auto next_edge = a.make_label();
  const auto done = a.make_label();
  const auto complete_now = a.make_label();
  const auto ack_now = a.make_label();
  const auto send_ack = a.make_label();
  a.hook(HookId::kTarget, 5);
  a.ld64(11, P, 8);  // lane
  a.li(15, workloads::kLaneCellBytes);
  a.alu(Opcode::kMul, 11, 11, 15);
  a.alu(Opcode::kAdd, 5, 5, 11);   // cell = target + lane * 64
  a.ld64(2, P, 0);   // kind
  a.brz(2, visit_kind);
  // --- ack from a child server -----------------------------------------------
  a.ld64(10, 5, 40);               // deficit
  a.li(15, 1);
  a.alu(Opcode::kSub, 10, 10, 15);
  a.st64(10, 5, 40);
  a.brnz(10, quiet);               // children still outstanding
  a.li(15, 0);
  a.st64(15, 5, 24);               // disengage
  a.ld64(10, 5, 32);               // parent
  a.li(11, ~0ull);
  a.alu(Opcode::kCeq, 11, 10, 11);
  a.brnz(11, reply_origin);        // engagement root: origin completes
  a.br(send_ack);                  // cascade: ack our own parent
  a.bind(quiet);
  a.ret();
  // --- visit -----------------------------------------------------------------
  a.bind(visit_kind);
  a.hook(HookId::kShardBase, 2);
  a.hook(HookId::kSelfPeer, 3);
  a.ld64(4, 2, 0);   // vps = shard word 0
  a.ld64(10, P, 16); // vertex
  a.alu(Opcode::kUdiv, 11, 10, 4);
  a.alu(Opcode::kCeq, 15, 11, 3);
  a.brnz(15, run);
  a.mov(kArg0, 11);  // mis-routed: ship to the owning server
  a.mov(kArg1, P);
  a.mov(kArg2, N);
  a.hook(HookId::kForward, 15, kArg0);
  a.ret();
  a.bind(run);
  a.ld64(15, P, 24);
  a.st64(15, 5, 48); // park `from`: the expansion overwrites payload word 3
  a.ld64(6, 5, 8);   // visited bitmap base
  a.ld64(7, 5, 16);  // worklist base
  a.st64(10, 7, 0);  // worklist[0] = vertex
  a.li(8, 1);        // sp
  a.li(9, 0);        // spawned
  a.bind(wloop);
  a.brz(8, done);
  a.li(15, 1);
  a.alu(Opcode::kSub, 8, 8, 15);   // --sp
  a.li(15, 8);
  a.alu(Opcode::kMul, 10, 8, 15);
  a.alu(Opcode::kAdd, 10, 7, 10);
  a.ld64(10, 10);                  // u = worklist[sp]
  a.alu(Opcode::kUrem, 10, 10, 4); // local vertex index
  a.li(15, 6);
  a.alu(Opcode::kShr, 11, 10, 15);
  a.li(15, 8);
  a.alu(Opcode::kMul, 11, 11, 15);
  a.alu(Opcode::kAdd, 11, 6, 11);  // bitmap word address
  a.li(15, 63);
  a.alu(Opcode::kAnd, 12, 10, 15);
  a.li(15, 1);
  a.alu(Opcode::kShl, 13, 15, 12); // bit = 1 << (lu & 63)
  a.ld64(14, 11);                  // bitmap word
  a.alu(Opcode::kAnd, 15, 14, 13);
  a.brnz(15, wloop);               // already visited
  a.bind(visit);
  guard(a, o);
  a.alu(Opcode::kOr, 14, 14, 13);
  a.st64(14, 11);                  // mark visited
  a.ld64(15, 5, 0);
  a.li(13, 1);
  a.alu(Opcode::kAdd, 15, 15, 13);
  a.st64(15, 5, 0);                // ++cell.visited_count
  a.li(15, 8);
  a.alu(Opcode::kMul, 11, 10, 15);
  a.alu(Opcode::kAdd, 11, 2, 11);  // &row_offsets[lu] - 8
  a.ld64(10, 11, 8);               // e = row_offsets[lu]
  a.ld64(11, 11, 16);              // row_offsets[lu + 1]
  a.bind(eloop);
  a.alu(Opcode::kCult, 15, 10, 11);
  a.brz(15, wloop);
  a.alu(Opcode::kAdd, 14, 4, 10);  // vps + e
  a.li(15, 2);
  a.alu(Opcode::kAdd, 14, 14, 15);
  a.li(15, 8);
  a.alu(Opcode::kMul, 14, 14, 15);
  a.alu(Opcode::kAdd, 14, 2, 14);
  a.ld64(13, 14);                  // nb = cols[e]
  a.alu(Opcode::kUdiv, 14, 13, 4); // nb owner
  a.alu(Opcode::kCeq, 15, 14, 3);
  a.brnz(15, push);
  // Frontier leaves the shard: forward, stamping ourselves as its `from`.
  // Led by the payload-address li so the stores, the arg marshaling, the
  // hook, the spawn count and the loop-back branch all ride one run.
  a.li(15, 16);
  a.alu(Opcode::kAdd, 15, P, 15);  // &payload[16]
  a.st64(13, 15, 0);
  a.st64(3, 15, 8);
  a.mov(kArg0, 14);
  a.mov(kArg1, P);
  a.li(kArg2, 32);
  a.hook(HookId::kForward, 15, kArg0);
  a.li(15, 1);
  a.alu(Opcode::kAdd, 9, 9, 15);   // ++spawned
  a.br(next_edge);
  a.bind(push);
  a.li(15, 8);
  a.alu(Opcode::kMul, 14, 8, 15);
  a.alu(Opcode::kAdd, 14, 7, 14);
  a.st64(13, 14);                  // worklist[sp] = nb
  a.li(15, 1);
  a.alu(Opcode::kAdd, 8, 8, 15);   // ++sp
  a.bind(next_edge);
  a.li(15, 1);
  a.alu(Opcode::kAdd, 10, 10, 15); // ++e
  a.br(eloop);
  a.bind(done);
  a.ld64(10, 5, 40);
  a.alu(Opcode::kAdd, 10, 10, 9);
  a.st64(10, 5, 40);               // deficit += spawned
  a.ld64(11, 5, 24);               // engaged?
  a.brnz(11, ack_now);
  a.brz(9, complete_now);          // spawned == 0: resolve immediately
  a.ld64(10, 5, 48);               // the parked `from`
  a.st64(10, 5, 32);               // parent = from
  a.li(11, 1);
  a.st64(11, 5, 24);               // engage (ack deferred to disengage)
  a.ret();
  a.bind(complete_now);            // neutral, childless: resolve now
  a.ld64(10, 5, 48);               // the parked `from`
  a.li(11, ~0ull);
  a.alu(Opcode::kCeq, 11, 10, 11);
  a.brnz(11, reply_origin);        // the seed itself resolved in one shot
  a.br(send_ack);
  a.bind(ack_now);                 // already engaged: ack the sender now
  a.ld64(10, 5, 48);               // the parked `from`
  a.bind(send_ack);                // r10 = destination peer
  a.li(15, 1);
  a.st64(15, P, 0);                // kind = ack ([1][lane])
  a.mov(kArg0, 10);
  a.mov(kArg1, P);
  a.li(kArg2, 16);
  a.hook(HookId::kForward, 15, kArg0);
  a.ret();
  a.bind(reply_origin);
  a.ld64(15, P, 8);                // reply [lane][0] to the chain origin
  a.st64(15, P, 0);
  a.li(15, 0);
  a.st64(15, P, 8);
  a.mov(kArg1, P);
  a.li(kArg2, 16);
  a.hook(HookId::kReply, 15, kArg1);
  a.ret();
}

}  // namespace

StatusOr<Program> lower_kernel(ir::KernelKind kind,
                               const ir::KernelOptions& options) {
  if (ir::kernel_source(kind) == ir::KernelSource::kKir) {
    TC_ASSIGN_OR_RETURN(kir::Def def, kir::prepared_def(kind, options));
    return kir::emit_vm(def);
  }
  return lower_kernel_legacy(kind, options);
}

StatusOr<Program> lower_kernel_legacy(ir::KernelKind kind,
                                      const ir::KernelOptions& options) {
  Assembler a;
  switch (kind) {
    case ir::KernelKind::kTargetSideIncrement: lower_tsi(a, options); break;
    case ir::KernelKind::kPayloadSum: lower_payload_sum(a, options); break;
    case ir::KernelKind::kSaxpy: lower_saxpy(a, options); break;
    case ir::KernelKind::kVecReduce: lower_vec_reduce(a, options); break;
    case ir::KernelKind::kChaser: lower_chaser(a, options); break;
    case ir::KernelKind::kRingHop: lower_ring_hop(a, options); break;
    case ir::KernelKind::kSpawner: lower_spawner(a, options); break;
    case ir::KernelKind::kSinSum: lower_sin_sum(a, options); break;
    case ir::KernelKind::kRemoteStore: lower_remote_store(a, options); break;
    case ir::KernelKind::kStatsSummary:
      lower_stats_summary(a, options);
      break;
    case ir::KernelKind::kTreeBroadcast:
      lower_tree_broadcast(a, options);
      break;
    case ir::KernelKind::kCollectiveBroadcast:
      lower_collective_broadcast(a, options);
      break;
    case ir::KernelKind::kCollectiveReduce:
      lower_collective_reduce(a, options);
      break;
    case ir::KernelKind::kHashProbe: lower_hash_probe(a, options); break;
    case ir::KernelKind::kOrderedSearch:
      lower_ordered_search(a, options);
      break;
    case ir::KernelKind::kBfsFrontier: lower_bfs_frontier(a, options); break;
  }
  return a.finish(kRegs);
}

StatusOr<ir::FatBitcode> build_portable_kernel(ir::KernelKind kind,
                                               const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(Program program, lower_kernel(kind, options));
  ir::FatBitcode archive(ir::CodeRepr::kPortable);
  TC_RETURN_IF_ERROR(archive.add_entry(
      ir::TargetDescriptor{ir::kTriplePortable, "", ""}, program.serialize()));
  return archive;
}

}  // namespace tc::vm
