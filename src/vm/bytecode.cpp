#include "vm/bytecode.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/hash.hpp"

namespace tc::vm {

namespace {

/// Which operand fields of an instruction name registers. Everything the
/// validator needs to know about an opcode lives in this table.
struct OpTraits {
  bool reg_a = false;
  bool reg_b = false;
  bool reg_c = false;
  bool branch = false;  ///< imm is an instruction index
  bool pool = false;    ///< imm indexes the constant pool
  bool terminator = false;  ///< control never falls through (kBr / kRet)
};

OpTraits traits_of(Opcode op) {
  switch (op) {
    case Opcode::kNop: return {};
    case Opcode::kLdi: return {.reg_a = true};
    case Opcode::kLdk: return {.reg_a = true, .pool = true};
    case Opcode::kMov: return {.reg_a = true, .reg_b = true};
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kUdiv:
    case Opcode::kUrem:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCeq:
    case Opcode::kCne:
    case Opcode::kCult:
    case Opcode::kCule:
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFadd32:
    case Opcode::kFmul32:
      return {.reg_a = true, .reg_b = true, .reg_c = true};
    case Opcode::kLd8:
    case Opcode::kLd32:
    case Opcode::kLd64:
    case Opcode::kSt32:
    case Opcode::kSt64:
      return {.reg_a = true, .reg_b = true};
    case Opcode::kBr: return {.branch = true, .terminator = true};
    case Opcode::kBrz:
    case Opcode::kBrnz:
      return {.reg_a = true, .branch = true};
    case Opcode::kHook: return {};  // validated specially (arity table)
    case Opcode::kRet: return {.terminator = true};
    // Superinstructions never reach the validator (they sit above
    // kOpcodeCount); the traits below only serve the disassembler.
    case Opcode::kFusedLdCmpBr:
    case Opcode::kFusedLdAndBr:
      return {.reg_a = true, .reg_b = true};
    case Opcode::kFusedLdiRun: return {.reg_a = true};
  }
  return {};
}

}  // namespace

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kLdi: return "ldi";
    case Opcode::kLdk: return "ldk";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kUdiv: return "udiv";
    case Opcode::kUrem: return "urem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCeq: return "ceq";
    case Opcode::kCne: return "cne";
    case Opcode::kCult: return "cult";
    case Opcode::kCule: return "cule";
    case Opcode::kFadd: return "fadd";
    case Opcode::kFsub: return "fsub";
    case Opcode::kFmul: return "fmul";
    case Opcode::kFdiv: return "fdiv";
    case Opcode::kFadd32: return "fadd32";
    case Opcode::kFmul32: return "fmul32";
    case Opcode::kLd8: return "ld8";
    case Opcode::kLd32: return "ld32";
    case Opcode::kLd64: return "ld64";
    case Opcode::kSt32: return "st32";
    case Opcode::kSt64: return "st64";
    case Opcode::kBr: return "br";
    case Opcode::kBrz: return "brz";
    case Opcode::kBrnz: return "brnz";
    case Opcode::kHook: return "hook";
    case Opcode::kRet: return "ret";
    case Opcode::kFusedLdCmpBr: return "f.ld.cmp.br";
    case Opcode::kFusedLdAndBr: return "f.ld.alu.br";
    case Opcode::kFusedLdiRun: return "f.ldi.run";
  }
  return "bad";
}

const char* hook_name(HookId hook) {
  switch (hook) {
    case HookId::kTarget: return "target";
    case HookId::kNode: return "node";
    case HookId::kPeerCount: return "peer_count";
    case HookId::kSelfPeer: return "self_peer";
    case HookId::kShardBase: return "shard_base";
    case HookId::kShardSize: return "shard_size";
    case HookId::kForward: return "forward";
    case HookId::kInject: return "inject";
    case HookId::kReply: return "reply";
    case HookId::kRemoteWrite: return "remote_write";
    case HookId::kHllGuard: return "hll_guard";
    case HookId::kSin: return "sin";
    case HookId::kShardInfo: return "shard_info";
  }
  return "bad";
}

unsigned hook_arity(HookId hook) {
  switch (hook) {
    case HookId::kTarget:
    case HookId::kNode:
    case HookId::kPeerCount:
    case HookId::kSelfPeer:
    case HookId::kShardBase:
    case HookId::kShardSize:
    case HookId::kHllGuard:
    case HookId::kShardInfo:
      return 0;
    case HookId::kSin: return 1;
    case HookId::kReply: return 2;
    case HookId::kForward: return 3;
    case HookId::kInject:
    case HookId::kRemoteWrite:
      return 4;
  }
  return 0;
}

bool hook_has_result(HookId hook) { return hook != HookId::kHllGuard; }

unsigned hook_result_span(HookId hook) {
  return hook == HookId::kShardInfo ? 4 : 1;
}

// --- validation ---------------------------------------------------------------

Status Program::validate(std::uint16_t reg_count,
                         const std::vector<Instr>& code,
                         const std::vector<std::uint64_t>& pool) {
  if (reg_count < 2 || reg_count > kMaxRegisters) {
    return invalid_argument("vm: register count " + std::to_string(reg_count) +
                            " outside [2, " + std::to_string(kMaxRegisters) +
                            "]");
  }
  if (code.empty()) return invalid_argument("vm: empty program");

  auto at = [](std::size_t pc) { return "vm: instr " + std::to_string(pc); };
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Instr& in = code[pc];
    if (static_cast<std::uint8_t>(in.op) >= kOpcodeCount) {
      return invalid_argument(at(pc) + ": unknown opcode " +
                              std::to_string(static_cast<unsigned>(in.op)));
    }
    if (in.op == Opcode::kHook) {
      if (in.a >= kHookCount) {
        return invalid_argument(at(pc) + ": unknown hook id " +
                                std::to_string(in.a));
      }
      const HookId hook = static_cast<HookId>(in.a);
      if (hook_has_result(hook) &&
          static_cast<unsigned>(in.b) + hook_result_span(hook) > reg_count) {
        return invalid_argument(at(pc) + ": hook result register r" +
                                std::to_string(in.b) + " out of range");
      }
      // The arg-base operand must be a valid register even for arity-0
      // hooks: the interpreter forms &regs[c] before dispatching.
      const unsigned arity = hook_arity(hook);
      if (in.c >= reg_count ||
          static_cast<unsigned>(in.c) + arity > reg_count) {
        return invalid_argument(at(pc) + ": hook arguments r" +
                                std::to_string(in.c) + "..r" +
                                std::to_string(in.c + (arity > 0 ? arity - 1
                                                                 : 0)) +
                                " out of range");
      }
      continue;
    }
    const OpTraits traits = traits_of(in.op);
    if (traits.reg_a && in.a >= reg_count) {
      return invalid_argument(at(pc) + ": register r" + std::to_string(in.a) +
                              " out of range");
    }
    if (traits.reg_b && in.b >= reg_count) {
      return invalid_argument(at(pc) + ": register r" + std::to_string(in.b) +
                              " out of range");
    }
    if (traits.reg_c && in.c >= reg_count) {
      return invalid_argument(at(pc) + ": register r" + std::to_string(in.c) +
                              " out of range");
    }
    if (traits.branch &&
        (in.imm < 0 || static_cast<std::size_t>(in.imm) >= code.size())) {
      return invalid_argument(at(pc) + ": branch target " +
                              std::to_string(in.imm) + " out of range");
    }
    if (traits.pool &&
        (in.imm < 0 || static_cast<std::size_t>(in.imm) >= pool.size())) {
      return invalid_argument(at(pc) + ": pool index " +
                              std::to_string(in.imm) + " out of range");
    }
  }
  // Execution must not fall off the end: the last instruction has to be a
  // terminator (conditional branches fall through when not taken).
  if (!traits_of(code.back().op).terminator) {
    return invalid_argument(
        "vm: program may fall off the end (last instruction is " +
        std::string(opcode_name(code.back().op)) + ", not ret/br)");
  }
  return Status::ok();
}

// --- serialization ------------------------------------------------------------

std::size_t Program::serialized_size() const {
  return 4 + 2 + 2 + 4 + 4 + code_.size() * 8 + pool_.size() * 8 + 8;
}

Bytes Program::serialize() const {
  ByteWriter w;
  w.u32(kProgramMagic);
  w.u16(kProgramVersion);
  w.u16(reg_count_);
  w.u32(static_cast<std::uint32_t>(code_.size()));
  w.u32(static_cast<std::uint32_t>(pool_.size()));
  for (const Instr& in : code_) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.u8(in.a);
    w.u8(in.b);
    w.u8(in.c);
    w.u32(static_cast<std::uint32_t>(in.imm));
  }
  for (std::uint64_t k : pool_) w.u64(k);
  w.u64(fnv1a64(as_span(w.bytes())));
  return std::move(w).take();
}

StatusOr<Program> Program::deserialize(ByteSpan data) {
  constexpr std::size_t kMinSize = 4 + 2 + 2 + 4 + 4 + 8 + 8;  // 1 instr
  if (data.size() < kMinSize) {
    return data_loss("vm: program too short (" + std::to_string(data.size()) +
                     " bytes)");
  }
  {
    ByteReader tail(data.subspan(data.size() - 8));
    std::uint64_t stored = 0;
    TC_RETURN_IF_ERROR(tail.u64(stored));
    if (stored != fnv1a64(data.subspan(0, data.size() - 8))) {
      return data_loss("vm: program checksum mismatch");
    }
  }
  ByteReader r(data.subspan(0, data.size() - 8));
  std::uint32_t magic = 0, code_count = 0, pool_count = 0;
  std::uint16_t version = 0, reg_count = 0;
  TC_RETURN_IF_ERROR(r.u32(magic));
  if (magic != kProgramMagic) {
    return data_loss("vm: bad program magic " + std::to_string(magic));
  }
  TC_RETURN_IF_ERROR(r.u16(version));
  if (version != kProgramVersion) {
    return data_loss("vm: unsupported program version " +
                     std::to_string(version));
  }
  TC_RETURN_IF_ERROR(r.u16(reg_count));
  TC_RETURN_IF_ERROR(r.u32(code_count));
  TC_RETURN_IF_ERROR(r.u32(pool_count));
  // Counts are attacker-controlled: check against the actual remaining bytes
  // before any allocation sized from them.
  if (r.remaining() !=
      static_cast<std::size_t>(code_count) * 8 +
          static_cast<std::size_t>(pool_count) * 8) {
    return data_loss("vm: section sizes disagree with buffer length");
  }

  Program program;
  program.reg_count_ = reg_count;
  program.code_.reserve(code_count);
  for (std::uint32_t i = 0; i < code_count; ++i) {
    Instr in;
    std::uint8_t op = 0;
    std::uint32_t imm = 0;
    TC_RETURN_IF_ERROR(r.u8(op));
    TC_RETURN_IF_ERROR(r.u8(in.a));
    TC_RETURN_IF_ERROR(r.u8(in.b));
    TC_RETURN_IF_ERROR(r.u8(in.c));
    TC_RETURN_IF_ERROR(r.u32(imm));
    in.op = static_cast<Opcode>(op);
    in.imm = static_cast<std::int32_t>(imm);
    program.code_.push_back(in);
  }
  program.pool_.reserve(pool_count);
  for (std::uint32_t i = 0; i < pool_count; ++i) {
    std::uint64_t k = 0;
    TC_RETURN_IF_ERROR(r.u64(k));
    program.pool_.push_back(k);
  }
  TC_RETURN_IF_ERROR(
      validate(program.reg_count_, program.code_, program.pool_));
  return program;
}

// --- disassembly --------------------------------------------------------------

std::string disassemble(const Program& program) {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "; portable bytecode: %zu instrs, %u regs, %zu pool\n",
                program.code().size(), program.reg_count(),
                program.pool().size());
  out += line;
  for (std::size_t k = 0; k < program.pool().size(); ++k) {
    std::snprintf(line, sizeof(line), "; k%zu = 0x%016" PRIx64 "\n", k,
                  program.pool()[k]);
    out += line;
  }
  std::size_t tail_left = 0;  // slots covered by the fused head above
  for (std::size_t pc = 0; pc < program.code().size(); ++pc) {
    const Instr& in = program.code()[pc];
    const OpTraits traits = traits_of(in.op);
    const char* name = opcode_name(in.op);
    std::size_t tail_next = 0;
    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kRet:
        std::snprintf(line, sizeof(line), "%04zu: %s\n", pc, name);
        break;
      case Opcode::kLdi:
        std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, %d\n", pc, name,
                      in.a, in.imm);
        break;
      case Opcode::kLdk:
        std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, k%d\n", pc, name,
                      in.a, in.imm);
        break;
      case Opcode::kMov:
        std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, r%u\n", pc, name,
                      in.a, in.b);
        break;
      case Opcode::kLd8:
      case Opcode::kLd32:
      case Opcode::kLd64:
        std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, [r%u%+d]\n", pc,
                      name, in.a, in.b, in.imm);
        break;
      case Opcode::kSt32:
      case Opcode::kSt64:
        std::snprintf(line, sizeof(line), "%04zu: %-6s [r%u%+d], r%u\n", pc,
                      name, in.b, in.imm, in.a);
        break;
      case Opcode::kBr:
        std::snprintf(line, sizeof(line), "%04zu: %-6s %d\n", pc, name,
                      in.imm);
        break;
      case Opcode::kBrz:
      case Opcode::kBrnz:
        std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, %d\n", pc, name,
                      in.a, in.imm);
        break;
      case Opcode::kFusedLdCmpBr:
      case Opcode::kFusedLdAndBr: {
        // Head of a [load; compare-or-bitop; branch] window: a/b/imm are the
        // original load's operands, c encodes the load width.
        static const char* const kWidths[] = {"ld64", "ld32", "ld8"};
        std::snprintf(line, sizeof(line),
                      "%04zu: %-6s r%u, [r%u%+d] (%s)  ; fuses next 2\n", pc,
                      name, in.a, in.b, in.imm,
                      in.c < 3 ? kWidths[in.c] : "bad");
        tail_next = 2;
        break;
      }
      case Opcode::kFusedLdiRun:
        // Head of an [ldi; straight-line run] window: a/imm are the original
        // ldi's operands, b counts the fused tail slots.
        std::snprintf(line, sizeof(line),
                      "%04zu: %-6s r%u, %d  ; fuses next %u\n", pc, name,
                      in.a, in.imm, in.b);
        tail_next = in.b;
        break;
      case Opcode::kHook: {
        const HookId hook = static_cast<HookId>(in.a);
        const char* hname = in.a < kHookCount ? hook_name(hook) : "bad";
        if (in.a < kHookCount && hook_arity(hook) > 0) {
          std::snprintf(line, sizeof(line),
                        "%04zu: %-6s %s, r%u, args=r%u..r%u\n", pc, name,
                        hname, in.b, in.c,
                        in.c + hook_arity(hook) - 1);
        } else {
          std::snprintf(line, sizeof(line), "%04zu: %-6s %s, r%u\n", pc, name,
                        hname, in.b);
        }
        break;
      }
      default:
        if (traits.reg_c) {
          std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, r%u, r%u\n", pc,
                        name, in.a, in.b, in.c);
        } else {
          std::snprintf(line, sizeof(line), "%04zu: %-6s r%u, r%u\n", pc,
                        name, in.a, in.b);
        }
        break;
    }
    if (tail_left > 0) {
      // This slot still holds its original instruction but is normally
      // executed by the fused head above (branches into the window run it
      // unfused).
      const std::size_t len = std::strlen(line);
      if (len > 0 && line[len - 1] == '\n') line[len - 1] = '\0';
      out += line;
      out += "   ; fused tail\n";
      --tail_left;
    } else {
      out += line;
      tail_left = tail_next;
    }
  }
  return out;
}

// --- assembler ----------------------------------------------------------------

Assembler::Label Assembler::make_label() {
  labels_.push_back(-1);
  return labels_.size() - 1;
}

void Assembler::bind(Label label) {
  labels_[label] = static_cast<std::ptrdiff_t>(code_.size());
}

void Assembler::emit(Opcode op, std::uint8_t a, std::uint8_t b,
                     std::uint8_t c, std::int32_t imm) {
  code_.push_back(Instr{op, a, b, c, imm});
}

std::uint32_t Assembler::pool_index(std::uint64_t value) {
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (pool_[i] == value) return static_cast<std::uint32_t>(i);
  }
  pool_.push_back(value);
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void Assembler::li(std::uint8_t dst, std::uint64_t value) {
  const auto sext = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(value)));
  if (sext == value) {
    emit(Opcode::kLdi, dst, 0, 0, static_cast<std::int32_t>(value));
  } else {
    emit(Opcode::kLdk, dst, 0, 0,
         static_cast<std::int32_t>(pool_index(value)));
  }
}

void Assembler::lf(std::uint8_t dst, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  li(dst, bits);
}

void Assembler::mov(std::uint8_t dst, std::uint8_t src) {
  emit(Opcode::kMov, dst, src);
}

void Assembler::alu(Opcode op, std::uint8_t dst, std::uint8_t lhs,
                    std::uint8_t rhs) {
  emit(op, dst, lhs, rhs);
}

void Assembler::ld8(std::uint8_t dst, std::uint8_t base, std::int32_t offset) {
  emit(Opcode::kLd8, dst, base, 0, offset);
}
void Assembler::ld32(std::uint8_t dst, std::uint8_t base,
                     std::int32_t offset) {
  emit(Opcode::kLd32, dst, base, 0, offset);
}
void Assembler::ld64(std::uint8_t dst, std::uint8_t base,
                     std::int32_t offset) {
  emit(Opcode::kLd64, dst, base, 0, offset);
}
void Assembler::st32(std::uint8_t src, std::uint8_t base,
                     std::int32_t offset) {
  emit(Opcode::kSt32, src, base, 0, offset);
}
void Assembler::st64(std::uint8_t src, std::uint8_t base,
                     std::int32_t offset) {
  emit(Opcode::kSt64, src, base, 0, offset);
}

void Assembler::br(Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Opcode::kBr);
}
void Assembler::brz(std::uint8_t cond, Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Opcode::kBrz, cond);
}
void Assembler::brnz(std::uint8_t cond, Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Opcode::kBrnz, cond);
}

void Assembler::hook(HookId hook, std::uint8_t dst, std::uint8_t arg_base) {
  emit(Opcode::kHook, static_cast<std::uint8_t>(hook), dst, arg_base);
}

void Assembler::ret() { emit(Opcode::kRet); }

StatusOr<Program> Assembler::finish(std::uint16_t reg_count) {
  for (const auto& [pc, label] : fixups_) {
    if (labels_[label] < 0) {
      return internal_error("vm assembler: unbound label " +
                            std::to_string(label));
    }
    code_[pc].imm = static_cast<std::int32_t>(labels_[label]);
  }
  TC_RETURN_IF_ERROR(Program::validate(reg_count, code_, pool_));
  Program program;
  program.reg_count_ = reg_count;
  program.code_ = std::move(code_);
  program.pool_ = std::move(pool_);
  code_.clear();
  pool_.clear();
  labels_.clear();
  fixups_.clear();
  return program;
}

}  // namespace tc::vm
