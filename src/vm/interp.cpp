#include "vm/interp.hpp"

#include <cstring>

namespace tc::vm {

namespace {

inline double as_f64(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

inline std::uint64_t f64_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline float as_f32(std::uint64_t bits) {
  const std::uint32_t low = static_cast<std::uint32_t>(bits);
  float v;
  std::memcpy(&v, &low, sizeof(v));
  return v;
}

inline std::uint64_t f32_bits(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline std::uint8_t* mem_addr(std::uint64_t base, std::int32_t offset) {
  return reinterpret_cast<std::uint8_t*>(
      base + static_cast<std::uint64_t>(static_cast<std::int64_t>(offset)));
}

// On the real-threads backend interpreted ifuncs run on server progress
// threads and publish results into application memory other threads poll
// (e.g. broadcast slots). Real compiled code gets tear-free word accesses
// from the hardware; give interpreted code the same guarantee: naturally
// aligned word loads/stores are relaxed-width atomics with acquire/release
// ordering (free on x86, a plain lda/stl pair on AArch64), so a poller
// that acquires a flag word observes every store the ifunc made before
// releasing it. Unaligned accesses (packed payload bytes, single-threaded
// by the progress contract) keep the plain memcpy path.
template <typename T>
inline T load_word(const std::uint8_t* addr) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    return __atomic_load_n(reinterpret_cast<const T*>(addr),
                           __ATOMIC_ACQUIRE);
  }
  T v;
  std::memcpy(&v, addr, sizeof(T));
  return v;
}

template <typename T>
inline void store_word(std::uint8_t* addr, T value) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    __atomic_store_n(reinterpret_cast<T*>(addr), value, __ATOMIC_RELEASE);
    return;
  }
  std::memcpy(addr, &value, sizeof(T));
}

}  // namespace

StatusOr<InterpResult> execute(const Program& program, const HookTable& hooks,
                               std::uint8_t* payload,
                               std::uint64_t payload_size,
                               const InterpOptions& options) {
  std::uint64_t regs[kMaxRegisters] = {};
  // Entry convention: r0 = payload pointer, r1 = payload size.
  regs[0] = reinterpret_cast<std::uint64_t>(payload);
  regs[1] = payload_size;

  const Instr* code = program.code().data();
  const std::size_t code_size = program.code().size();
  const std::uint64_t* pool = program.pool().data();

  InterpResult result;
  std::size_t pc = 0;
  while (pc < code_size) {
    if (++result.ops > options.max_ops) {
      return resource_exhausted("vm: op budget (" +
                                std::to_string(options.max_ops) +
                                ") exhausted");
    }
    const Instr in = code[pc];
    ++pc;
    switch (in.op) {
      case Opcode::kNop: break;
      case Opcode::kLdi:
        regs[in.a] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(in.imm));
        break;
      case Opcode::kLdk: regs[in.a] = pool[in.imm]; break;
      case Opcode::kMov: regs[in.a] = regs[in.b]; break;
      case Opcode::kAdd: regs[in.a] = regs[in.b] + regs[in.c]; break;
      case Opcode::kSub: regs[in.a] = regs[in.b] - regs[in.c]; break;
      case Opcode::kMul: regs[in.a] = regs[in.b] * regs[in.c]; break;
      case Opcode::kUdiv:
        if (regs[in.c] == 0) {
          return internal_error("vm: division by zero at instr " +
                                std::to_string(pc - 1));
        }
        regs[in.a] = regs[in.b] / regs[in.c];
        break;
      case Opcode::kUrem:
        if (regs[in.c] == 0) {
          return internal_error("vm: remainder by zero at instr " +
                                std::to_string(pc - 1));
        }
        regs[in.a] = regs[in.b] % regs[in.c];
        break;
      case Opcode::kAnd: regs[in.a] = regs[in.b] & regs[in.c]; break;
      case Opcode::kOr: regs[in.a] = regs[in.b] | regs[in.c]; break;
      case Opcode::kXor: regs[in.a] = regs[in.b] ^ regs[in.c]; break;
      case Opcode::kShl: regs[in.a] = regs[in.b] << (regs[in.c] & 63); break;
      case Opcode::kShr: regs[in.a] = regs[in.b] >> (regs[in.c] & 63); break;
      case Opcode::kCeq: regs[in.a] = regs[in.b] == regs[in.c] ? 1 : 0; break;
      case Opcode::kCne: regs[in.a] = regs[in.b] != regs[in.c] ? 1 : 0; break;
      case Opcode::kCult: regs[in.a] = regs[in.b] < regs[in.c] ? 1 : 0; break;
      case Opcode::kCule:
        regs[in.a] = regs[in.b] <= regs[in.c] ? 1 : 0;
        break;
      case Opcode::kFadd:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) + as_f64(regs[in.c]));
        break;
      case Opcode::kFsub:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) - as_f64(regs[in.c]));
        break;
      case Opcode::kFmul:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) * as_f64(regs[in.c]));
        break;
      case Opcode::kFdiv:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) / as_f64(regs[in.c]));
        break;
      case Opcode::kFadd32:
        regs[in.a] = f32_bits(as_f32(regs[in.b]) + as_f32(regs[in.c]));
        break;
      case Opcode::kFmul32:
        regs[in.a] = f32_bits(as_f32(regs[in.b]) * as_f32(regs[in.c]));
        break;
      case Opcode::kLd8: regs[in.a] = *mem_addr(regs[in.b], in.imm); break;
      case Opcode::kLd32:
        regs[in.a] = load_word<std::uint32_t>(mem_addr(regs[in.b], in.imm));
        break;
      case Opcode::kLd64:
        regs[in.a] = load_word<std::uint64_t>(mem_addr(regs[in.b], in.imm));
        break;
      case Opcode::kSt32:
        store_word<std::uint32_t>(mem_addr(regs[in.b], in.imm),
                                  static_cast<std::uint32_t>(regs[in.a]));
        break;
      case Opcode::kSt64:
        store_word<std::uint64_t>(mem_addr(regs[in.b], in.imm), regs[in.a]);
        break;
      case Opcode::kBr: pc = static_cast<std::size_t>(in.imm); break;
      case Opcode::kBrz:
        if (regs[in.a] == 0) pc = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kBrnz:
        if (regs[in.a] != 0) pc = static_cast<std::size_t>(in.imm);
        break;
      case Opcode::kHook: {
        const HookId hook = static_cast<HookId>(in.a);
        const std::uint64_t* args = &regs[in.c];
        switch (hook) {
          case HookId::kTarget:
            if (hooks.target == nullptr) {
              return failed_precondition("vm: target hook not provided");
            }
            regs[in.b] =
                reinterpret_cast<std::uint64_t>(hooks.target(hooks.ctx));
            break;
          case HookId::kNode:
            if (hooks.node == nullptr) {
              return failed_precondition("vm: node hook not provided");
            }
            regs[in.b] = hooks.node(hooks.ctx);
            break;
          case HookId::kPeerCount:
            if (hooks.peer_count == nullptr) {
              return failed_precondition("vm: peer_count hook not provided");
            }
            regs[in.b] = hooks.peer_count(hooks.ctx);
            break;
          case HookId::kSelfPeer:
            if (hooks.self_peer == nullptr) {
              return failed_precondition("vm: self_peer hook not provided");
            }
            regs[in.b] = hooks.self_peer(hooks.ctx);
            break;
          case HookId::kShardBase:
            if (hooks.shard_base == nullptr) {
              return failed_precondition("vm: shard_base hook not provided");
            }
            regs[in.b] =
                reinterpret_cast<std::uint64_t>(hooks.shard_base(hooks.ctx));
            break;
          case HookId::kShardSize:
            if (hooks.shard_size == nullptr) {
              return failed_precondition("vm: shard_size hook not provided");
            }
            regs[in.b] = hooks.shard_size(hooks.ctx);
            break;
          case HookId::kForward:
            if (hooks.forward == nullptr) {
              return failed_precondition("vm: forward hook not provided");
            }
            regs[in.b] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(hooks.forward(
                    hooks.ctx, args[0],
                    reinterpret_cast<const std::uint8_t*>(args[1]),
                    args[2])));
            break;
          case HookId::kInject:
            if (hooks.inject == nullptr) {
              return failed_precondition("vm: inject hook not provided");
            }
            regs[in.b] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(hooks.inject(
                    hooks.ctx, args[0],
                    reinterpret_cast<const char*>(args[1]),
                    reinterpret_cast<const std::uint8_t*>(args[2]),
                    args[3])));
            break;
          case HookId::kReply:
            if (hooks.reply == nullptr) {
              return failed_precondition("vm: reply hook not provided");
            }
            regs[in.b] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(hooks.reply(
                    hooks.ctx,
                    reinterpret_cast<const std::uint8_t*>(args[0]),
                    args[1])));
            break;
          case HookId::kRemoteWrite:
            if (hooks.remote_write == nullptr) {
              return failed_precondition("vm: remote_write hook not provided");
            }
            regs[in.b] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(hooks.remote_write(
                    hooks.ctx, args[0], args[1],
                    reinterpret_cast<const std::uint8_t*>(args[2]),
                    args[3])));
            break;
          case HookId::kHllGuard:
            if (hooks.hll_guard == nullptr) {
              return failed_precondition("vm: hll_guard hook not provided");
            }
            hooks.hll_guard(hooks.ctx);
            break;
          case HookId::kSin:
            if (hooks.sin_fn == nullptr) {
              return failed_precondition("vm: sin hook not provided");
            }
            regs[in.b] = f64_bits(hooks.sin_fn(as_f64(args[0])));
            break;
        }
        break;
      }
      case Opcode::kRet: return result;
    }
  }
  // Unreachable for validated programs (last instruction is a terminator),
  // but keep the fail-safe so a logic bug here cannot become UB.
  return internal_error("vm: execution ran off the end of the program");
}

}  // namespace tc::vm
