#include "vm/interp.hpp"

#include <bit>
#include <cstring>
#include <string>

// Threaded (computed-goto) dispatch needs the GNU &&label extension; the
// build can also force the portable switch loop for differential testing
// or exotic toolchains.
#if !defined(TC_VM_SWITCH_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define TC_VM_HAS_THREADED 1
#else
#define TC_VM_HAS_THREADED 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define TC_VM_COLD __attribute__((noinline, cold))
#define TC_VM_NOINLINE __attribute__((noinline))
#define TC_VM_FORCE_INLINE inline __attribute__((always_inline))
#else
#define TC_VM_COLD
#define TC_VM_NOINLINE
#define TC_VM_FORCE_INLINE inline
#endif

namespace tc::vm {

// The dispatch tables in interp_dispatch.inc enumerate every opcode by
// hand; force a revisit when the ISA grows.
static_assert(kTotalOpcodeCount == 37,
              "update the dispatch tables in vm/interp_dispatch.inc");

namespace {

inline double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }

inline std::uint64_t f64_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

inline float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

inline std::uint64_t f32_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

inline std::uint8_t* mem_addr(std::uint64_t base, std::int32_t offset) {
  return reinterpret_cast<std::uint8_t*>(
      base + static_cast<std::uint64_t>(static_cast<std::int64_t>(offset)));
}

// On the real-threads backend interpreted ifuncs run on server progress
// threads and publish results into application memory other threads poll
// (e.g. broadcast slots). Real compiled code gets tear-free word accesses
// from the hardware; give interpreted code the same guarantee: naturally
// aligned word loads/stores are relaxed-width atomics with acquire/release
// ordering (free on x86, a plain lda/stl pair on AArch64), so a poller
// that acquires a flag word observes every store the ifunc made before
// releasing it. Unaligned accesses (packed payload bytes, single-threaded
// by the progress contract) keep the plain memcpy path.
template <typename T>
inline T load_word(const std::uint8_t* addr) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    return __atomic_load_n(reinterpret_cast<const T*>(addr),
                           __ATOMIC_ACQUIRE);
  }
  T v;
  std::memcpy(&v, addr, sizeof(T));
  return v;
}

template <typename T>
inline void store_word(std::uint8_t* addr, T value) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    __atomic_store_n(reinterpret_cast<T*>(addr), value, __ATOMIC_RELEASE);
    return;
  }
  std::memcpy(addr, &value, sizeof(T));
}

// --- cold paths ---------------------------------------------------------------
// Error construction allocates strings; keeping it out of line keeps the
// dispatch loop's register pressure and icache footprint down.

TC_VM_COLD Status err_fuel(std::uint64_t max_ops) {
  return resource_exhausted("vm: op budget (" + std::to_string(max_ops) +
                            ") exhausted");
}

TC_VM_COLD Status err_div_zero(const char* what, std::size_t pc) {
  return internal_error("vm: " + std::string(what) + " by zero at instr " +
                        std::to_string(pc));
}

TC_VM_COLD Status err_off_end() {
  // Unreachable for validated programs (last instruction is a terminator),
  // but keep the fail-safe so a logic bug here cannot become UB.
  return internal_error("vm: execution ran off the end of the program");
}

TC_VM_COLD Status err_bad_opcode(unsigned op, std::size_t pc) {
  return internal_error("vm: bad opcode " + std::to_string(op) +
                        " at instr " + std::to_string(pc));
}

TC_VM_COLD Status err_missing_hook(const char* name) {
  return failed_precondition("vm: " + std::string(name) +
                             " hook not provided");
}

// --- hooks --------------------------------------------------------------------
// Out of line: the nested switch is by far the largest handler and every
// call crosses into runtime code anyway.

TC_VM_NOINLINE Status do_hook(const Instr& in, const HookTable& hooks,
                              std::uint64_t* regs) {
  const HookId hook = static_cast<HookId>(in.a);
  const std::uint64_t* args = &regs[in.c];
  switch (hook) {
    case HookId::kTarget:
      if (hooks.target == nullptr) return err_missing_hook("target");
      regs[in.b] = reinterpret_cast<std::uint64_t>(hooks.target(hooks.ctx));
      break;
    case HookId::kNode:
      if (hooks.node == nullptr) return err_missing_hook("node");
      regs[in.b] = hooks.node(hooks.ctx);
      break;
    case HookId::kPeerCount:
      if (hooks.peer_count == nullptr) return err_missing_hook("peer_count");
      regs[in.b] = hooks.peer_count(hooks.ctx);
      break;
    case HookId::kSelfPeer:
      if (hooks.self_peer == nullptr) return err_missing_hook("self_peer");
      regs[in.b] = hooks.self_peer(hooks.ctx);
      break;
    case HookId::kShardBase:
      if (hooks.shard_base == nullptr) return err_missing_hook("shard_base");
      regs[in.b] =
          reinterpret_cast<std::uint64_t>(hooks.shard_base(hooks.ctx));
      break;
    case HookId::kShardSize:
      if (hooks.shard_size == nullptr) return err_missing_hook("shard_size");
      regs[in.b] = hooks.shard_size(hooks.ctx);
      break;
    case HookId::kForward:
      if (hooks.forward == nullptr) return err_missing_hook("forward");
      regs[in.b] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.forward(
              hooks.ctx, args[0],
              reinterpret_cast<const std::uint8_t*>(args[1]), args[2])));
      break;
    case HookId::kInject:
      if (hooks.inject == nullptr) return err_missing_hook("inject");
      regs[in.b] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.inject(
              hooks.ctx, args[0], reinterpret_cast<const char*>(args[1]),
              reinterpret_cast<const std::uint8_t*>(args[2]), args[3])));
      break;
    case HookId::kReply:
      if (hooks.reply == nullptr) return err_missing_hook("reply");
      regs[in.b] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.reply(
              hooks.ctx, reinterpret_cast<const std::uint8_t*>(args[0]),
              args[1])));
      break;
    case HookId::kRemoteWrite:
      if (hooks.remote_write == nullptr) {
        return err_missing_hook("remote_write");
      }
      regs[in.b] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.remote_write(
              hooks.ctx, args[0], args[1],
              reinterpret_cast<const std::uint8_t*>(args[2]), args[3])));
      break;
    case HookId::kHllGuard:
      if (hooks.hll_guard == nullptr) return err_missing_hook("hll_guard");
      hooks.hll_guard(hooks.ctx);
      break;
    case HookId::kSin:
      if (hooks.sin_fn == nullptr) return err_missing_hook("sin");
      regs[in.b] = f64_bits(hooks.sin_fn(as_f64(args[0])));
      break;
    case HookId::kShardInfo:
      // The whole shard-arrival preamble in one hook (r[b..b+3]); the
      // validator guarantees the four-register span is in range.
      if (hooks.shard_size == nullptr) return err_missing_hook("shard_size");
      if (hooks.self_peer == nullptr) return err_missing_hook("self_peer");
      if (hooks.shard_base == nullptr) return err_missing_hook("shard_base");
      if (hooks.peer_count == nullptr) return err_missing_hook("peer_count");
      regs[in.b] = hooks.shard_size(hooks.ctx);
      regs[in.b + 1] = hooks.self_peer(hooks.ctx);
      regs[in.b + 2] =
          reinterpret_cast<std::uint64_t>(hooks.shard_base(hooks.ctx));
      regs[in.b + 3] = hooks.peer_count(hooks.ctx);
      break;
  }
  return Status::ok();
}

// --- fused-run tails ----------------------------------------------------------

/// Executes one straight-line instruction out of a fused window's tail slot
/// (the subset fuse_program admits: no hooks, no ret, no branches). Returns
/// false and fills *fault on a trap; `slot` is the true instruction index,
/// so a div-by-zero reports the same location fused or unfused. Force-inlined
/// into the kFusedLdiRun handler: a call per tail slot would cost more than
/// the dispatch the fusion saved.
TC_VM_FORCE_INLINE bool exec_straight(const Instr& in, std::uint64_t* regs,
                                      const std::uint64_t* pool,
                                      std::size_t slot, Status* fault) {
  switch (in.op) {
    case Opcode::kNop:
      break;
    case Opcode::kLdi:
      regs[in.a] =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm));
      break;
    case Opcode::kLdk:
      regs[in.a] = pool[in.imm];
      break;
    case Opcode::kMov:
      regs[in.a] = regs[in.b];
      break;
    case Opcode::kAdd:
      regs[in.a] = regs[in.b] + regs[in.c];
      break;
    case Opcode::kSub:
      regs[in.a] = regs[in.b] - regs[in.c];
      break;
    case Opcode::kMul:
      regs[in.a] = regs[in.b] * regs[in.c];
      break;
    case Opcode::kUdiv:
      if (regs[in.c] == 0) {
        *fault = err_div_zero("division", slot);
        return false;
      }
      regs[in.a] = regs[in.b] / regs[in.c];
      break;
    case Opcode::kUrem:
      if (regs[in.c] == 0) {
        *fault = err_div_zero("remainder", slot);
        return false;
      }
      regs[in.a] = regs[in.b] % regs[in.c];
      break;
    case Opcode::kAnd:
      regs[in.a] = regs[in.b] & regs[in.c];
      break;
    case Opcode::kOr:
      regs[in.a] = regs[in.b] | regs[in.c];
      break;
    case Opcode::kXor:
      regs[in.a] = regs[in.b] ^ regs[in.c];
      break;
    case Opcode::kShl:
      regs[in.a] = regs[in.b] << (regs[in.c] & 63);
      break;
    case Opcode::kShr:
      regs[in.a] = regs[in.b] >> (regs[in.c] & 63);
      break;
    case Opcode::kCeq:
      regs[in.a] = regs[in.b] == regs[in.c] ? 1 : 0;
      break;
    case Opcode::kCne:
      regs[in.a] = regs[in.b] != regs[in.c] ? 1 : 0;
      break;
    case Opcode::kCult:
      regs[in.a] = regs[in.b] < regs[in.c] ? 1 : 0;
      break;
    case Opcode::kCule:
      regs[in.a] = regs[in.b] <= regs[in.c] ? 1 : 0;
      break;
    case Opcode::kFadd:
      regs[in.a] = f64_bits(as_f64(regs[in.b]) + as_f64(regs[in.c]));
      break;
    case Opcode::kFsub:
      regs[in.a] = f64_bits(as_f64(regs[in.b]) - as_f64(regs[in.c]));
      break;
    case Opcode::kFmul:
      regs[in.a] = f64_bits(as_f64(regs[in.b]) * as_f64(regs[in.c]));
      break;
    case Opcode::kFdiv:
      regs[in.a] = f64_bits(as_f64(regs[in.b]) / as_f64(regs[in.c]));
      break;
    case Opcode::kFadd32:
      regs[in.a] = f32_bits(as_f32(regs[in.b]) + as_f32(regs[in.c]));
      break;
    case Opcode::kFmul32:
      regs[in.a] = f32_bits(as_f32(regs[in.b]) * as_f32(regs[in.c]));
      break;
    case Opcode::kLd8:
      regs[in.a] = *mem_addr(regs[in.b], in.imm);
      break;
    case Opcode::kLd32:
      regs[in.a] = load_word<std::uint32_t>(mem_addr(regs[in.b], in.imm));
      break;
    case Opcode::kLd64:
      regs[in.a] = load_word<std::uint64_t>(mem_addr(regs[in.b], in.imm));
      break;
    case Opcode::kSt32:
      store_word<std::uint32_t>(mem_addr(regs[in.b], in.imm),
                                static_cast<std::uint32_t>(regs[in.a]));
      break;
    case Opcode::kSt64:
      store_word<std::uint64_t>(mem_addr(regs[in.b], in.imm), regs[in.a]);
      break;
    default:
      *fault = internal_error("vm: unexpected opcode in fused run at instr " +
                              std::to_string(slot));
      return false;
  }
  return true;
}

// --- dispatch loops -----------------------------------------------------------

#define TC_VM_DISPATCH_NAME execute_switch
#define TC_VM_DISPATCH_THREADED 0
#include "vm/interp_dispatch.inc"
#undef TC_VM_DISPATCH_NAME
#undef TC_VM_DISPATCH_THREADED

#if TC_VM_HAS_THREADED
#define TC_VM_DISPATCH_NAME execute_threaded
#define TC_VM_DISPATCH_THREADED 1
#include "vm/interp_dispatch.inc"
#undef TC_VM_DISPATCH_NAME
#undef TC_VM_DISPATCH_THREADED
#endif

}  // namespace

bool threaded_dispatch_available() { return TC_VM_HAS_THREADED != 0; }

StatusOr<InterpResult> execute(const Program& program, const HookTable& hooks,
                               std::uint8_t* payload,
                               std::uint64_t payload_size,
                               const InterpOptions& options) {
#if TC_VM_HAS_THREADED
  if (options.dispatch != Dispatch::kSwitch) {
    return execute_threaded(program, hooks, payload, payload_size, options);
  }
#else
  // Dispatch::kThreaded degrades to the switch loop in this build.
#endif
  return execute_switch(program, hooks, payload, payload_size, options);
}

}  // namespace tc::vm
