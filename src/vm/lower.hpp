// Lowering of the stock kernel catalogue to portable bytecode — the
// LLVM-free twin of ir/kernel_builder.cpp.
//
// Every kernel here is kept in semantic lockstep with its IRBuilder emitter
// (same loads, same operation order, same hook calls), so the interpreter
// tier produces bit-identical results to the JIT tiers — the property the
// VM↔JIT mode-equivalence tests pin down. Because this path needs no LLVM,
// it is also what makes TC_WITH_LLVM=OFF builds able to ship and execute
// ifuncs at all.
#pragma once

#include "common/status.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernels.hpp"
#include "vm/bytecode.hpp"

namespace tc::vm {

// Register conventions shared by every kernel frontend — the legacy
// lowerings below, the IRBuilder emitters, and the KIR definitions
// (src/kir/), whose registers map one to one onto bytecode registers.
// r0/r1 are fixed by the `tc_main(ctx, payload, size)` entry ABI; kernels
// allocate upwards from r2 and marshal hook arguments into the consecutive
// scratch window starting at kRegArg0.
inline constexpr std::uint8_t kRegPayload = 0;  ///< payload pointer
inline constexpr std::uint8_t kRegSize = 1;     ///< payload size
inline constexpr std::uint8_t kRegArg0 = 12;
inline constexpr std::uint8_t kRegArg1 = 13;
inline constexpr std::uint8_t kRegArg2 = 14;
inline constexpr std::uint8_t kRegArg3 = 15;
/// Register file size every stock kernel is finished with.
inline constexpr std::uint16_t kKernelRegCount = 16;

/// Lowers one stock kernel to a validated portable program. Kernels whose
/// ir::kernel_source() is kKir route through their single-source KIR
/// definition (src/kir/vm_backend); the rest use the hand-written legacy
/// lowerings below.
StatusOr<Program> lower_kernel(ir::KernelKind kind,
                               const ir::KernelOptions& options = {});

/// The hand-written lowerings for *all* kernels, bypassing the KIR route —
/// retained as the conformance oracle: tests/kir_test.cpp pins the KIR
/// backend's bytecode byte-identical to this output, and the tc_inspect
/// `kir` subcommand diffs the two.
StatusOr<Program> lower_kernel_legacy(ir::KernelKind kind,
                                      const ir::KernelOptions& options = {});

/// Packs the lowered kernel into a portable ('TCFP') archive holding a
/// single ISA-independent entry.
StatusOr<ir::FatBitcode> build_portable_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options = {});

}  // namespace tc::vm
