// Lowering of the stock kernel catalogue to portable bytecode — the
// LLVM-free twin of ir/kernel_builder.cpp.
//
// Every kernel here is kept in semantic lockstep with its IRBuilder emitter
// (same loads, same operation order, same hook calls), so the interpreter
// tier produces bit-identical results to the JIT tiers — the property the
// VM↔JIT mode-equivalence tests pin down. Because this path needs no LLVM,
// it is also what makes TC_WITH_LLVM=OFF builds able to ship and execute
// ifuncs at all.
#pragma once

#include "common/status.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernels.hpp"
#include "vm/bytecode.hpp"

namespace tc::vm {

/// Lowers one stock kernel to a validated portable program.
StatusOr<Program> lower_kernel(ir::KernelKind kind,
                               const ir::KernelOptions& options = {});

/// Packs the lowered kernel into a portable ('TCFP') archive holding a
/// single ISA-independent entry.
StatusOr<ir::FatBitcode> build_portable_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options = {});

}  // namespace tc::vm
