#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <utility>

namespace tc::obs {

namespace {

// Wire-stable value names, mirrored here (not #included) so obs/ stays
// dependency-free below core: ir::CodeRepr and jit::Tier are protocol
// constants that cannot be renumbered without a version bump.
const char* repr_name(std::uint8_t repr) {
  switch (repr & 0x0F) {
    case 0: return "bitcode";
    case 1: return "object";
    case 2: return "portable";
    default: return "repr?";
  }
}

const char* tier_name(std::uint8_t tier) {
  switch (tier) {
    case 0: return "interpreted";
    case 1: return "jit";
    case 2: return "linked";
    default: return "tier?";
  }
}

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n),
                                      sizeof buf - 1));
}

bool is_send(SpanKind kind) {
  return kind == SpanKind::kRootSend || kind == SpanKind::kForwardSend ||
         kind == SpanKind::kReplySend;
}

bool is_arrival(SpanKind kind) {
  return kind == SpanKind::kArrival || kind == SpanKind::kResultArrival;
}

/// ts in microseconds with sub-us precision kept ("%.3f" of ns/1000).
void append_ts(std::string& out, std::int64_t ns) {
  appendf(out, "%" PRId64 ".%03d", ns / 1000,
          static_cast<int>(ns % 1000 < 0 ? -(ns % 1000) : ns % 1000));
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::string& process_name) {
  std::string out;
  out.reserve(events.size() * 256 + 1024);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";

  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
         "{\"name\":\"";
  append_escaped(out, process_name);
  out += "\"}}";

  std::set<std::uint32_t> nodes;
  for (const TraceEvent& event : events) nodes.insert(event.node);
  for (std::uint32_t node : nodes) {
    appendf(out,
            ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
            "\"args\":{\"name\":\"node %u\"}}",
            node, node);
  }

  for (const TraceEvent& event : events) {
    out += ",\n{\"name\":\"";
    out += span_kind_name(event.kind);
    out += "\",\"cat\":\"span\",";
    if (event.dur_ns > 0) {
      out += "\"ph\":\"X\",\"ts\":";
      append_ts(out, event.ts_ns);
      out += ",\"dur\":";
      append_ts(out, event.dur_ns);
    } else {
      out += "\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      append_ts(out, event.ts_ns);
    }
    appendf(out, ",\"pid\":1,\"tid\":%u", event.node);
    appendf(out,
            ",\"args\":{\"trace\":%" PRIu64 ",\"hop\":%u,\"span\":%u,"
            "\"parent\":%u,\"ifunc\":\"0x%" PRIx64 "\",\"repr\":\"%s\","
            "\"tier\":\"%s\",\"peer\":%u,\"node\":%u,\"dur_ns\":%" PRId64 "}}",
            event.trace_id, event.hop, event.span_id, event.parent_span,
            event.ifunc_id, repr_name(event.repr), tier_name(event.tier),
            event.peer, event.node, event.dur_ns);
  }

  // Forward arrows: the k-th send of (trace, hop) pairs with the k-th
  // arrival of the same (trace, hop) — the hop index carried on the wire is
  // bumped by the sender, so a forward recorded with hop=h lands as the
  // arrival recorded with hop=h. Events arrive ts-sorted (drain_all), so
  // "k-th" is timestamp order on both sides.
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::pair<std::vector<const TraceEvent*>,
                     std::vector<const TraceEvent*>>>
      flows;
  for (const TraceEvent& event : events) {
    if (event.trace_id == 0) continue;
    if (is_send(event.kind)) {
      flows[{event.trace_id, event.hop}].first.push_back(&event);
    } else if (is_arrival(event.kind)) {
      flows[{event.trace_id, event.hop}].second.push_back(&event);
    }
  }
  std::uint64_t flow_id = 1;
  for (const auto& [key, pair] : flows) {
    const auto& [sends, arrivals] = pair;
    const std::size_t n = std::min(sends.size(), arrivals.size());
    for (std::size_t k = 0; k < n; ++k) {
      const TraceEvent* send = sends[k];
      const TraceEvent* arrival = arrivals[k];
      out += ",\n{\"name\":\"hop\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":";
      append_ts(out, send->ts_ns + (send->dur_ns > 0 ? send->dur_ns : 0));
      appendf(out, ",\"pid\":1,\"tid\":%u,\"id\":%" PRIu64 "}", send->node,
              flow_id);
      out += ",\n{\"name\":\"hop\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
             "\"ts\":";
      append_ts(out, arrival->ts_ns);
      appendf(out, ",\"pid\":1,\"tid\":%u,\"id\":%" PRIu64 "}", arrival->node,
              flow_id);
      ++flow_id;
    }
  }

  out += "\n]}\n";
  return out;
}

std::string metrics_text(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  if (!snapshot.counters.empty()) {
    out += "counters:\n";
    std::size_t width = 0;
    for (const auto& entry : snapshot.counters) {
      width = std::max(width, entry.name.size());
    }
    for (const auto& entry : snapshot.counters) {
      appendf(out, "  %-*s %" PRIu64 "\n", static_cast<int>(width),
              entry.name.c_str(), entry.value);
    }
  }
  if (!snapshot.gauges.empty()) {
    out += "gauges:\n";
    std::size_t width = 0;
    for (const auto& entry : snapshot.gauges) {
      width = std::max(width, entry.name.size());
    }
    for (const auto& entry : snapshot.gauges) {
      appendf(out, "  %-*s %" PRId64 "\n", static_cast<int>(width),
              entry.name.c_str(), entry.value);
    }
  }
  if (!snapshot.histograms.empty()) {
    out += "histograms:\n";
    for (const auto& entry : snapshot.histograms) {
      appendf(out,
              "  %s: count=%" PRIu64 " sum=%" PRIu64 " mean=%" PRIu64
              " p50<=%" PRIu64 " p99<=%" PRIu64 " max<=%" PRIu64 "\n",
              entry.name.c_str(), entry.count, entry.sum,
              entry.count ? entry.sum / entry.count : 0, entry.p50, entry.p99,
              entry.max_bound);
    }
  }
  return out;
}

std::string metrics_json(const MetricsRegistry::Snapshot& snapshot) {
  std::string out = "{\n\"counters\":{";
  bool first = true;
  for (const auto& entry : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "\"";
    append_escaped(out, entry.name);
    appendf(out, "\":%" PRIu64, entry.value);
  }
  out += "\n},\n\"gauges\":{";
  first = true;
  for (const auto& entry : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "\"";
    append_escaped(out, entry.name);
    appendf(out, "\":%" PRId64, entry.value);
  }
  out += "\n},\n\"histograms\":{";
  first = true;
  for (const auto& entry : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "\"";
    append_escaped(out, entry.name);
    appendf(out,
            "\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"p50\":%" PRIu64
            ",\"p99\":%" PRIu64 ",\"buckets\":[",
            entry.count, entry.sum, entry.p50, entry.p99);
    bool first_bucket = true;
    for (const auto& [bucket, count] : entry.buckets) {
      if (!first_bucket) out += ",";
      first_bucket = false;
      appendf(out, "[%zu,%" PRIu64 "]", bucket, count);
    }
    out += "]}";
  }
  out += "\n}\n}\n";
  return out;
}

namespace {

/// Pulls `"key":<number>` out of one exported event line. The exporter
/// writes one event per line with stable field spelling, so tc_inspect can
/// read its own output back without a JSON library.
bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  if (*p == '"') ++p;  // hex-string fields like "ifunc":"0x2a"
  char* end = nullptr;
  *out = std::strtoull(p, &end, 0);
  return end != p;
}

bool find_i64_ts(const std::string& line, const char* key, std::int64_t* out) {
  std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* p = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double us = std::strtod(p, &end);
  if (end == p) return false;
  *out = static_cast<std::int64_t>(us * 1000.0 + (us < 0 ? -0.5 : 0.5));
  return true;
}

bool find_string(const std::string& line, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return false;
  *out = line.substr(start, end - start);
  return true;
}

}  // namespace

ParsedSummary summarize_chrome_trace(const std::string& json,
                                     std::size_t max_traces) {
  struct Hop {
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;
    std::uint64_t hop = 0;
    std::uint64_t node = 0;
    std::uint64_t peer = 0;
    std::uint64_t ifunc = 0;
    std::string name;
    std::string repr;
    std::string tier;
  };
  std::map<std::uint64_t, std::vector<Hop>> traces;
  ParsedSummary summary;

  std::size_t start = 0;
  while (start < json.size()) {
    auto end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    const std::string line = json.substr(start, end - start);
    start = end + 1;
    if (line.find("\"cat\":\"span\"") == std::string::npos) continue;

    Hop hop;
    std::uint64_t trace_id = 0;
    if (!find_u64(line, "trace", &trace_id)) continue;
    ++summary.events;
    if (trace_id == 0) continue;
    find_i64_ts(line, "ts", &hop.ts_ns);
    if (std::uint64_t dur = 0; find_u64(line, "dur_ns", &dur)) {
      hop.dur_ns = static_cast<std::int64_t>(dur);
    }
    find_u64(line, "hop", &hop.hop);
    find_u64(line, "node", &hop.node);
    find_u64(line, "peer", &hop.peer);
    find_u64(line, "ifunc", &hop.ifunc);
    find_string(line, "name", &hop.name);
    find_string(line, "repr", &hop.repr);
    find_string(line, "tier", &hop.tier);
    summary.max_hops = std::max(summary.max_hops, hop.hop);
    traces[trace_id].push_back(std::move(hop));
  }
  summary.traces = traces.size();

  appendf(summary.text,
          "%" PRIu64 " trace(s), %" PRIu64 " span event(s), deepest hop %"
          PRIu64 "\n",
          summary.traces, summary.events, summary.max_hops);
  std::size_t rendered = 0;
  for (auto& [trace_id, hops] : traces) {
    if (max_traces != 0 && rendered >= max_traces) {
      appendf(summary.text, "... (%zu more traces)\n",
              traces.size() - rendered);
      break;
    }
    ++rendered;
    std::stable_sort(hops.begin(), hops.end(),
                     [](const Hop& a, const Hop& b) {
                       if (a.hop != b.hop) return a.hop < b.hop;
                       return a.ts_ns < b.ts_ns;
                     });
    appendf(summary.text, "trace %" PRIu64 " (ifunc 0x%" PRIx64 "):\n",
            trace_id, hops.empty() ? 0 : hops.front().ifunc);
    for (const Hop& hop : hops) {
      appendf(summary.text,
              "  hop %-2" PRIu64 " node %-3" PRIu64 " %-14s", hop.hop,
              hop.node, hop.name.c_str());
      if (hop.name == "execute") {
        appendf(summary.text, " tier=%s repr=%s", hop.tier.c_str(),
                hop.repr.c_str());
      } else if (hop.name == "root_send" || hop.name == "forward_send" ||
                 hop.name == "reply_send") {
        appendf(summary.text, " -> node %" PRIu64, hop.peer);
      }
      if (hop.dur_ns > 0) {
        appendf(summary.text, " (%" PRId64 " ns)", hop.dur_ns);
      }
      summary.text += "\n";
    }
  }
  return summary;
}

}  // namespace tc::obs
