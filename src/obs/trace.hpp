// Hop-by-hop distributed tracing for self-forwarding ifuncs.
//
// The system's defining behavior — kernels that forward themselves across
// shard boundaries — is invisible to per-node counters: Runtime::Stats says
// *how many* forwards happened, not where a given probe hopped or which
// tier executed each hop. This module supplies the missing pieces:
//
//  * TraceContext — a compact (16-byte) per-request context piggybacked on
//    the ifunc frame (protocol v3, flag-gated: zero wire bytes when tracing
//    is off). The trace id names the request chain, the hop index counts
//    frame transmissions since the root send, and parent_span links each
//    hop's spans to the span that caused them.
//  * TraceEvent / TraceRing — each node records spans (arrival, decode,
//    tier lookup, compile/link/load, execute, forward/reply send) into a
//    per-node lock-free bounded ring. The producer is the node's single
//    progress context (the same SPSC discipline as fabric/spsc_ring.hpp);
//    when the ring fills the *oldest* event is overwritten and counted, so
//    a post-run drain always yields the most recent window plus an exact
//    dropped total.
//  * Tracer — the per-cluster handle: one ring per node, atomic span/trace
//    id allocators, a global enable switch. Timestamps come from the
//    transport clock: virtual nanoseconds on the simulated backend (traces
//    of a deterministic run are themselves deterministic), monotonic
//    wall-clock on shm.
//
// Events are drained after a run quiesces and merged across nodes; see
// obs/export.hpp for the Chrome trace-event (Perfetto-loadable) emitter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tc::obs {

/// Per-request trace context carried hop to hop. trace_id 0 = untraced.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;          ///< frame transmissions since the root send
  std::uint32_t parent_span = 0;  ///< span that emitted the carrying frame
  bool traced() const { return trace_id != 0; }
};

/// Wire footprint of an attached context: u64 trace_id | u32 hop |
/// u32 parent_span, little-endian, immediately after the frame header.
inline constexpr std::size_t kTraceContextWireSize = 16;

enum class SpanKind : std::uint8_t {
  kRootSend = 0,       ///< initiator ships the first frame of a chain
  kArrival,            ///< frame landed in the node's receive path
  kDecode,             ///< header/delimiter validation + payload view
  kTierLookup,         ///< code-cache probe for the executing tier
  kCompile,            ///< bitcode parse+optimize+JIT (cold path)
  kLink,               ///< AOT object link (cold path)
  kPortableLoad,       ///< portable-program decode (cold path)
  kExecute,            ///< the ifunc invocation itself
  kForwardSend,        ///< executing ifunc re-ships itself to a peer
  kReplySend,          ///< executing ifunc returns a result to the origin
  kResultArrival,      ///< result frame landed back at the initiator
  kFaultInject,        ///< FaultyTransport injected a fault on a link
};
inline constexpr int kSpanKindCount =
    static_cast<int>(SpanKind::kFaultInject) + 1;

const char* span_kind_name(SpanKind kind);

/// One recorded span. POD and fixed-size so the ring is a flat array.
struct TraceEvent {
  std::int64_t ts_ns = 0;   ///< virtual ns (sim) or wall-clock ns (shm)
  std::int64_t dur_ns = 0;  ///< 0 = instant event
  std::uint64_t trace_id = 0;
  std::uint64_t ifunc_id = 0;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;  ///< dst for send spans, source for arrivals
  std::uint32_t span_id = 0;
  std::uint32_t parent_span = 0;
  std::uint32_t hop = 0;
  SpanKind kind = SpanKind::kExecute;
  std::uint8_t repr = 0;  ///< ir::CodeRepr on the wire (execute/compile)
  std::uint8_t tier = 0;  ///< jit::Tier backing the execution
  std::uint8_t reserved = 0;
};

/// Bounded per-node event ring. Single producer (the node's progress
/// context); drained once the run has quiesced. Overwrites the oldest event
/// when full — the retained window is always the most recent `capacity`
/// events and `dropped()` reports exactly how many were lost. Indices are
/// release/acquire atomics so a concurrent occupancy probe (metrics gauges)
/// stays race-free.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Never fails: a full ring drops its oldest event.
  void push(const TraceEvent& event) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail - head >= slots_.size()) {
      // Oldest-dropped: reclaim the head slot for the incoming event.
      head_.store(head + 1, std::memory_order_release);
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    slots_[tail & mask_] = event;
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Events currently retained (racy by nature; used for occupancy gauges).
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Consumes the retained window, oldest first, and resets the ring. Call
  /// only after the producer has quiesced (post-run drain).
  std::vector<TraceEvent> drain() {
    std::vector<TraceEvent> out;
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    out.reserve(static_cast<std::size_t>(tail - head));
    for (; head != tail; ++head) out.push_back(slots_[head & mask_]);
    head_.store(head, std::memory_order_release);
    return out;
  }

 private:
  std::size_t mask_ = 0;
  std::vector<TraceEvent> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The per-cluster tracing handle: one TraceRing per node plus the id
/// allocators every node shares. Create it before the cluster, hand it to
/// ClusterConfig (or RuntimeOptions directly); drain after the run.
class Tracer {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  explicit Tracer(std::size_t node_count = 0,
                  std::size_t ring_capacity = kDefaultRingCapacity)
      : ring_capacity_(ring_capacity) {
    ensure_nodes(node_count);
  }

  /// Grows the per-node ring set. Setup-time only (before any progress
  /// thread records): hetsim::Cluster calls this with its node count.
  void ensure_nodes(std::size_t count) {
    while (rings_.size() < count) {
      rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
    }
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::size_t node_count() const { return rings_.size(); }
  TraceRing& ring(std::uint32_t node) { return *rings_.at(node); }
  const TraceRing& ring(std::uint32_t node) const { return *rings_.at(node); }

  /// Fresh non-zero trace id (one per root request chain).
  std::uint64_t next_trace_id() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Fresh non-zero span id, unique across every node of the run.
  std::uint32_t next_span_id() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t total_dropped() const {
    std::uint64_t total = 0;
    for (const auto& ring : rings_) total += ring->dropped();
    return total;
  }

  /// Drains every node's ring and merges the events into one timeline,
  /// sorted by timestamp (span id breaks ties so the merge is stable across
  /// runs of the deterministic backend). Post-run only.
  std::vector<TraceEvent> drain_all();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint32_t> next_span_{1};
  std::size_t ring_capacity_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace tc::obs
