#include "obs/trace.hpp"

#include <algorithm>

namespace tc::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRootSend: return "root_send";
    case SpanKind::kArrival: return "arrival";
    case SpanKind::kDecode: return "decode";
    case SpanKind::kTierLookup: return "tier_lookup";
    case SpanKind::kCompile: return "compile";
    case SpanKind::kLink: return "link";
    case SpanKind::kPortableLoad: return "portable_load";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kForwardSend: return "forward_send";
    case SpanKind::kReplySend: return "reply_send";
    case SpanKind::kResultArrival: return "result_arrival";
    case SpanKind::kFaultInject: return "fault_inject";
  }
  return "unknown";
}

std::vector<TraceEvent> Tracer::drain_all() {
  std::vector<TraceEvent> merged;
  for (auto& ring : rings_) {
    std::vector<TraceEvent> events = ring->drain();
    merged.insert(merged.end(), events.begin(), events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.span_id < b.span_id;
            });
  return merged;
}

}  // namespace tc::obs
