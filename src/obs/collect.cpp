#include "obs/collect.hpp"

#include <string>

#include "fabric/shm_transport.hpp"
#include "fabric/socket_transport.hpp"

namespace tc::obs {

namespace {

void collect_worker(const std::string& prefix, const fabric::Worker::Stats& w,
                    MetricsRegistry& registry) {
  registry.counter(prefix + "ams_delivered").set(w.ams_delivered);
  registry.counter(prefix + "messages_delivered").set(w.messages_delivered);
  registry.counter(prefix + "am_dispatch_misses").set(w.am_dispatch_misses);
}

std::string node_prefix(fabric::NodeId node) {
  return "node" + std::to_string(node) + ".";
}

void collect_runtime(const std::string& prefix, const core::Runtime& runtime,
                     MetricsRegistry& registry) {
  const core::Runtime::Stats& s = runtime.stats();
  const auto set = [&](const char* name, const auto& atomic_value) {
    registry.counter(prefix + name)
        .set(static_cast<std::uint64_t>(
            atomic_value.load(std::memory_order_relaxed)));
  };
  set("runtime.frames_sent_full", s.frames_sent_full);
  set("runtime.frames_sent_truncated", s.frames_sent_truncated);
  set("runtime.code_bytes_sent", s.code_bytes_sent);
  set("runtime.code_bytes_saved", s.code_bytes_saved);
  set("runtime.frames_received", s.frames_received);
  set("runtime.frames_executed", s.frames_executed);
  set("runtime.auto_registered", s.auto_registered);
  set("runtime.jit_compiles", s.jit_compiles);
  set("runtime.object_links", s.object_links);
  set("runtime.forwards", s.forwards);
  set("runtime.injects", s.injects);
  set("runtime.replies_sent", s.replies_sent);
  set("runtime.results_received", s.results_received);
  set("runtime.protocol_errors", s.protocol_errors);
  set("runtime.remote_writes", s.remote_writes);
  set("runtime.nacks_sent", s.nacks_sent);
  set("runtime.nacks_received", s.nacks_received);
  set("runtime.batches_sent", s.batches_sent);
  set("runtime.frames_coalesced", s.frames_coalesced);
  set("runtime.batch_full_flushes", s.batch_full_flushes);
  set("runtime.batch_deadline_flushes", s.batch_deadline_flushes);
  set("runtime.batches_received", s.batches_received);
  set("runtime.cache_evictions", s.cache_evictions);
  set("runtime.portable_loads", s.portable_loads);
  set("runtime.interp_executions", s.interp_executions);
  // Both granularities: interp_ops is retired ops (a fused window counts
  // as one), interp_instrs is constituent instructions (fusion-invariant).
  set("runtime.interp_ops", s.interp_ops);
  set("runtime.interp_instrs", s.interp_instrs);
  set("runtime.tier_promotions", s.tier_promotions);
  set("runtime.forward_send_failures", s.forward_send_failures);
  set("runtime.real_jit_ns_total", s.real_jit_ns_total);

  const jit::CodeCache::Stats cache = runtime.cache().stats();
  registry.counter(prefix + "cache.hits").set(cache.hits);
  registry.counter(prefix + "cache.misses").set(cache.misses);
  registry.counter(prefix + "cache.evictions").set(cache.evictions);
  registry.counter(prefix + "cache.total_compile_ns")
      .set(static_cast<std::uint64_t>(cache.total_compile_ns));
}

void collect_am(const std::string& prefix, const am::AmRuntime& am,
                MetricsRegistry& registry) {
  const am::AmRuntime::Stats& s = am.stats();
  registry.counter(prefix + "am.sent").set(s.sent);
  registry.counter(prefix + "am.executed").set(s.executed);
  registry.counter(prefix + "am.replies").set(s.replies);
  registry.counter(prefix + "am.results_received").set(s.results_received);
  registry.counter(prefix + "am.errors").set(s.errors);
}

}  // namespace

void collect_cluster_metrics(hetsim::Cluster& cluster,
                             MetricsRegistry& registry) {
  for (fabric::NodeId node = 0; node < cluster.node_count(); ++node) {
    const std::string prefix = node_prefix(node);
    if (cluster.has_ifunc_runtimes()) {
      collect_runtime(prefix, cluster.runtime(node), registry);
    }
    if (cluster.has_am_runtimes()) {
      collect_am(prefix, cluster.am_runtime(node), registry);
    }
  }

  if (cluster.backend() == hetsim::Backend::kSim) {
    const fabric::Fabric::Stats& s = cluster.fabric().stats();
    registry.counter("fabric.events").set(s.events);
    registry.counter("fabric.puts").set(s.puts);
    registry.counter("fabric.gets").set(s.gets);
    registry.counter("fabric.ams").set(s.ams);
    registry.counter("fabric.sends").set(s.sends);
    registry.counter("fabric.bytes_on_wire").set(s.bytes_on_wire);
    for (fabric::NodeId node = 0; node < cluster.node_count(); ++node) {
      collect_worker(node_prefix(node) + "worker.",
                     cluster.fabric().node(node).worker.stats(), registry);
    }
  } else if (auto* shm =
                 dynamic_cast<fabric::ShmTransport*>(&cluster.transport())) {
    const fabric::ShmTransport::Stats s = shm->stats();
    registry.counter("shm.ops_pushed").set(s.ops_pushed);
    registry.counter("shm.ops_drained").set(s.ops_drained);
    registry.counter("shm.producer_stalls").set(s.producer_stalls);
    registry.counter("shm.ops_dropped").set(s.ops_dropped);
    registry.counter("shm.backpressure_failures").set(s.backpressure_failures);
    for (fabric::NodeId node = 0; node < cluster.node_count(); ++node) {
      collect_worker(node_prefix(node) + "worker.", shm->worker_stats(node),
                     registry);
    }
  } else if (auto* socket = dynamic_cast<fabric::SocketTransport*>(
                 &cluster.transport())) {
    const fabric::SocketTransport::Stats s = socket->stats();
    registry.counter("socket.frames_sent").set(s.frames_sent);
    registry.counter("socket.frames_received").set(s.frames_received);
    registry.counter("socket.bytes_sent").set(s.bytes_sent);
    registry.counter("socket.bytes_received").set(s.bytes_received);
    registry.counter("socket.partial_writes").set(s.partial_writes);
    registry.counter("socket.backpressure_rejects")
        .set(s.backpressure_rejects);
    registry.counter("socket.disconnects").set(s.disconnects);
    registry.counter("socket.rx_partial_discards").set(s.rx_partial_discards);
    for (fabric::NodeId node = 0; node < cluster.node_count(); ++node) {
      collect_worker(node_prefix(node) + "worker.",
                     socket->worker_stats(node), registry);
    }
  }
}

void collect_tracer_gauges(const Tracer& tracer, MetricsRegistry& registry) {
  for (std::uint32_t node = 0; node < tracer.node_count(); ++node) {
    const std::string prefix = node_prefix(node) + "trace_ring.";
    registry.gauge(prefix + "occupancy")
        .set(static_cast<std::int64_t>(tracer.ring(node).size()));
    registry.gauge(prefix + "dropped")
        .set(static_cast<std::int64_t>(tracer.ring(node).dropped()));
  }
}

}  // namespace tc::obs
