// Cluster-wide stats collection: funnels every legacy counter struct —
// core::Runtime::Stats, jit::CodeCache::Stats, am::AmRuntime::Stats,
// fabric::Fabric::Stats / ShmTransport::Stats, fabric::Worker::Stats — into
// one MetricsRegistry under stable dotted names ("node3.runtime.forwards",
// "shm.producer_stalls"), so a single snapshot() -> metrics_text/json call
// dumps the whole system. Also mirrors tracer ring occupancy/drop counts as
// gauges.
//
// This is deliberately the only obs/ file that includes core/hetsim: the
// rest of the module stays below core in the dependency order so the
// runtime itself can record spans and metrics.
#pragma once

#include "hetsim/cluster.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tc::obs {

/// Snapshots every per-node and per-transport counter in `cluster` into
/// `registry`. Counters are monotone set-to-current (collect is idempotent:
/// calling twice overwrites, it does not double-count). Call post-run.
void collect_cluster_metrics(hetsim::Cluster& cluster,
                             MetricsRegistry& registry);

/// Mirrors per-node trace-ring occupancy and dropped counts as gauges
/// ("nodeN.trace_ring.occupancy" / ".dropped"). Call before draining.
void collect_tracer_gauges(const Tracer& tracer, MetricsRegistry& registry);

}  // namespace tc::obs
