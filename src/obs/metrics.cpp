#include "obs/metrics.hpp"

namespace tc::obs {

std::uint64_t Histogram::quantile_bound(double q) const {
  const std::uint64_t total = total_count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    if (running >= target) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBucketCount - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    Snapshot::HistogramEntry entry;
    entry.name = name;
    entry.count = hist->total_count();
    entry.sum = hist->sum();
    entry.p50 = hist->quantile_bound(0.50);
    entry.p99 = hist->quantile_bound(0.99);
    entry.max_bound = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      const std::uint64_t count = hist->bucket_count(i);
      if (count == 0) continue;
      entry.buckets.emplace_back(i, count);
      entry.max_bound = Histogram::bucket_upper_bound(i);
    }
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

}  // namespace tc::obs
