// Exporters for the observability layer.
//
//  * chrome_trace_json — the merged per-node span timeline as Chrome
//    trace-event JSON (the format chrome://tracing and ui.perfetto.dev
//    load). One track ("thread") per node, "X" complete events for spans
//    with duration, "i" instants for point events, and "s"/"f" flow pairs
//    drawing a forward arrow from every send span to the matching arrival
//    on the receiving node — so a cross-shard probe renders as a chain of
//    arrows hopping between node tracks.
//  * metrics snapshots — the registry as aligned text (for stderr / logs)
//    or JSON (for artifacts and diffing).
//  * trace_summary — the tc_inspect-facing digest of a trace file: per-trace
//    hop chains with node/tier/repr/service-time per hop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tc::obs {

/// Serializes merged events (Tracer::drain_all order) as Chrome trace-event
/// JSON. `process_name` labels the single process track. Timestamps convert
/// ns -> us (the format's unit) keeping three decimals, so sim virtual-ns
/// stay exact.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const std::string& process_name = "three-chains");

/// Registry snapshot as human-readable aligned text.
std::string metrics_text(const MetricsRegistry::Snapshot& snapshot);

/// Registry snapshot as JSON ({"counters":{...},"gauges":{...},
/// "histograms":{...}}).
std::string metrics_json(const MetricsRegistry::Snapshot& snapshot);

/// Parsed-back view of one exported trace event (tc_inspect side).
struct ParsedSummary {
  std::uint64_t traces = 0;        ///< distinct trace ids
  std::uint64_t events = 0;
  std::uint64_t max_hops = 0;
  std::string text;                ///< the rendered per-trace digest
};

/// Reads a chrome_trace_json file back and renders per-trace hop chains:
/// node, kind, tier, repr, and service time for every hop, in hop order.
/// `max_traces` bounds the rendered chains (0 = all).
ParsedSummary summarize_chrome_trace(const std::string& json,
                                     std::size_t max_traces = 0);

}  // namespace tc::obs
