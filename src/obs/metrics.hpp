// Metrics registry: named counters, gauges, and log-bucketed latency
// histograms behind one dump path.
//
// The repo already counts plenty — Runtime::Stats, fabric::Fabric::Stats,
// ShmTransport::Stats, jit::CodeCache::Stats — but each struct dumps (or
// doesn't) through its own ad-hoc accessor. The registry gives every number
// a stable dotted name ("node3.runtime.frames_sent_full") and one snapshot
// call; obs/collect.hpp funnels the legacy structs in, and runtime/workload
// hot paths record latencies directly.
//
// Concurrency: instrument *lookup* (registry.counter(...)) takes a mutex and
// is meant for setup or cold paths — cache the returned reference. Recording
// on a cached instrument is a relaxed atomic op, safe from any thread.
// Instruments live as long as the registry (node-stable map storage).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tc::obs {

class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  /// Overwrite-to-current, for mirroring an external monotone counter
  /// (obs/collect snapshots legacy Stats structs idempotently).
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed latency histogram: bucket i counts samples whose value has
/// bit width i, i.e. bucket 0 holds {0}, bucket 1 {1}, bucket 2 {2,3},
/// bucket 3 {4..7}, ... bucket 64 {2^63..}. Upper bound of bucket i is
/// 2^i - 1. Recording is one relaxed fetch_add — no floating point, no
/// locks — and 65 buckets cover the full u64 range, so nanosecond samples
/// from sub-ns to centuries all land.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 65;

  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  static std::size_t bucket_index(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of `bucket`; lower bound is the previous
  /// bucket's bound + 1 (bucket 0 is exactly {0}).
  static std::uint64_t bucket_upper_bound(std::size_t bucket) {
    if (bucket >= 64) return ~0ull;
    return (1ull << bucket) - 1;
  }

  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket containing quantile `q` (0..1] — a coarse
  /// (power-of-two) percentile, good enough for dashboards and summaries.
  std::uint64_t quantile_bound(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// One registry per run (or per cluster). Names are dotted paths; the
/// snapshot orders them lexicographically so dumps diff cleanly.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    struct CounterEntry {
      std::string name;
      std::uint64_t value;
    };
    struct GaugeEntry {
      std::string name;
      std::int64_t value;
    };
    struct HistogramEntry {
      std::string name;
      std::uint64_t count;
      std::uint64_t sum;
      std::uint64_t p50;  ///< bucket upper bounds, power-of-two coarse
      std::uint64_t p99;
      std::uint64_t max_bound;
      /// (bucket index, count) for every non-empty bucket.
      std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
    };
    std::vector<CounterEntry> counters;
    std::vector<GaugeEntry> gauges;
    std::vector<HistogramEntry> histograms;
  };

  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tc::obs
