// The distributed pointer table of the DAPC miniapp (paper §IV-C): a single
// logical array of 64-bit entries, split into equal shards across servers,
// indexed server-major ("the entries are indexed using the server number
// first"): global address A lives on server A / shard_size, local slot
// A % shard_size.
//
// Entries hold a random permutation forming one Hamiltonian cycle over all
// addresses, so a chase of any depth from any start never revisits its start
// prematurely and every lookup is an unpredictable (cache-hostile) jump —
// the same construction used by classic pointer-chase benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace tc::xrdma {

struct PointerTableConfig {
  std::uint64_t entries_per_shard = 4096;
  std::uint64_t shard_count = 2;
  std::uint64_t seed = 0x7c3a1b5ull;
};

class DistributedPointerTable {
 public:
  /// Creates an empty table; populate with build().
  DistributedPointerTable() = default;

  static StatusOr<DistributedPointerTable> build(
      const PointerTableConfig& config);

  std::uint64_t total_entries() const { return total_; }
  std::uint64_t shard_size() const { return shard_size_; }
  std::uint64_t shard_count() const { return shards_.size(); }

  /// Mutable shard storage — attach to server runtimes / register for RDMA.
  std::vector<std::uint64_t>& shard(std::uint64_t server) {
    return shards_[server];
  }
  const std::vector<std::uint64_t>& shard(std::uint64_t server) const {
    return shards_[server];
  }

  std::uint64_t owner_of(std::uint64_t address) const {
    return address / shard_size_;
  }
  std::uint64_t slot_of(std::uint64_t address) const {
    return address % shard_size_;
  }

  /// Reference lookup through the sharded layout.
  std::uint64_t lookup(std::uint64_t address) const {
    return shards_[owner_of(address)][slot_of(address)];
  }

  /// Reference chase (ground truth for every execution mode): performs
  /// `depth` lookups from `start` and returns the final value loaded.
  std::uint64_t chase_expected(std::uint64_t start, std::uint64_t depth) const;

  /// Fraction of steps in a full-cycle walk whose next entry lives on a
  /// different server (analytical cross-traffic estimate used in docs).
  double remote_fraction() const;

 private:
  std::uint64_t total_ = 0;
  std::uint64_t shard_size_ = 0;
  std::vector<std::vector<std::uint64_t>> shards_;
};

}  // namespace tc::xrdma
