#include "xrdma/chaser.hpp"

#include "common/log.hpp"
#include "ir/kernels.hpp"
#if TC_WITH_LLVM
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#endif

namespace tc::xrdma {

Bytes encode_chase_payload(const ChaseRequest& request) {
  ByteWriter w;
  w.u64(request.address);
  w.u64(request.depth);
  return std::move(w).take();
}

StatusOr<ChaseRequest> decode_chase_payload(ByteSpan payload) {
  ByteReader r(payload);
  ChaseRequest request;
  TC_RETURN_IF_ERROR(r.u64(request.address));
  TC_RETURN_IF_ERROR(r.u64(request.depth));
  return request;
}

StatusOr<std::uint64_t> decode_chase_result(ByteSpan data) {
  ByteReader r(data);
  std::uint64_t value = 0;
  TC_RETURN_IF_ERROR(r.u64(value));
  return value;
}

StatusOr<core::IfuncLibrary> build_chaser_library(ir::CodeRepr repr,
                                                  bool hll_frontend) {
  ir::KernelOptions options;
  options.hll_guards = hll_frontend;
  if (repr == ir::CodeRepr::kPortable) {
    // The interpreter tier: portable-only archive, zero compile on the
    // servers — and the only representation available without LLVM.
    return core::IfuncLibrary::from_portable_kernel(ir::KernelKind::kChaser,
                                                    options);
  }
#if TC_WITH_LLVM
  TC_ASSIGN_OR_RETURN(
      ir::FatBitcode archive,
      ir::build_default_fat_kernel(ir::KernelKind::kChaser, options));
  std::string name = ir::kernel_name(ir::KernelKind::kChaser);
  if (hll_frontend) name += "_hll";
  if (repr == ir::CodeRepr::kObject) {
    TC_ASSIGN_OR_RETURN(archive, jit::compile_archive_to_objects(archive));
    name += "_bin";
  }
  return core::IfuncLibrary::from_archive(std::move(name),
                                          std::move(archive));
#else
  return failed_precondition(
      "bitcode/object chaser libraries need LLVM (TC_WITH_LLVM=OFF); use "
      "ir::CodeRepr::kPortable");
#endif
}

am::AmHandlerFn make_chase_am_handler() {
  // Mirrors emit_chaser() in ir/kernel_builder.cpp instruction for
  // instruction; the pair is kept in lockstep by the mode-equivalence tests.
  return [](am::AmContext& ctx, std::uint8_t* payload, std::uint64_t size) {
    auto request_or = decode_chase_payload(ByteSpan(payload, size));
    if (!request_or.is_ok()) {
      TC_LOG(kWarn, "xrdma") << "AM chaser: bad payload";
      return;
    }
    std::uint64_t address = request_or->address;
    std::uint64_t depth = request_or->depth;
    const std::uint64_t shard_size = ctx.shard_size;

    while (true) {
      const std::uint64_t owner = address / shard_size;
      if (owner != ctx.self_peer) {
        const ChaseRequest forward{address, depth};
        const Bytes fresh = encode_chase_payload(forward);
        (void)ctx.runtime->send((*ctx.peers)[owner], ctx.handler_index,
                                as_span(fresh), ctx.origin_node);
        return;
      }
      const std::uint64_t value = ctx.shard_base[address % shard_size];
      if (--depth == 0) {
        ByteWriter w;
        w.u64(value);
        (void)ctx.runtime->reply(ctx, as_span(w.bytes()));
        return;
      }
      address = value;
    }
  };
}

}  // namespace tc::xrdma
