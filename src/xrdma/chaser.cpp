#include "xrdma/chaser.hpp"

#include <cstring>

#include "common/log.hpp"
#include "ir/kernels.hpp"
#include "kir/am_backend.hpp"
#include "kir/kernels.hpp"
#if TC_WITH_LLVM
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#endif

namespace tc::xrdma {

Bytes encode_chase_payload(const ChaseRequest& request) {
  ByteWriter w;
  w.u64(request.address);
  w.u64(request.depth);
  return std::move(w).take();
}

StatusOr<ChaseRequest> decode_chase_payload(ByteSpan payload) {
  ByteReader r(payload);
  ChaseRequest request;
  TC_RETURN_IF_ERROR(r.u64(request.address));
  TC_RETURN_IF_ERROR(r.u64(request.depth));
  return request;
}

Bytes encode_tagged_chase_payload(const ChaseRequest& request,
                                  std::uint64_t tag) {
  ByteWriter w;
  w.u64(request.address);
  w.u64(request.depth);
  w.u64(tag);
  return std::move(w).take();
}

StatusOr<ChaseReply> decode_chase_reply(ByteSpan data) {
  if (data.size() != 8 && data.size() != 16) {
    return data_loss("chase reply must be 8 (classic) or 16 (tagged) bytes, "
                     "got " + std::to_string(data.size()));
  }
  ByteReader r(data);
  ChaseReply reply;
  TC_RETURN_IF_ERROR(r.u64(reply.value));
  if (data.size() == 16) {
    TC_RETURN_IF_ERROR(r.u64(reply.tag));
    reply.tagged = true;
  }
  return reply;
}

StatusOr<core::IfuncLibrary> build_chaser_library(ir::CodeRepr repr,
                                                  bool hll_frontend,
                                                  bool tagged) {
  ir::KernelOptions options;
  options.hll_guards = hll_frontend;
  options.chaser_tagged = tagged;
  if (repr == ir::CodeRepr::kPortable) {
    // The interpreter tier: portable-only archive, zero compile on the
    // servers — and the only representation available without LLVM.
    return core::IfuncLibrary::from_portable_kernel(ir::KernelKind::kChaser,
                                                    options);
  }
#if TC_WITH_LLVM
  TC_ASSIGN_OR_RETURN(
      ir::FatBitcode archive,
      ir::build_default_fat_kernel(ir::KernelKind::kChaser, options));
  std::string name = ir::kernel_name(ir::KernelKind::kChaser);
  if (hll_frontend) name += "_hll";
  if (repr == ir::CodeRepr::kObject) {
    TC_ASSIGN_OR_RETURN(archive, jit::compile_archive_to_objects(archive));
    name += "_bin";
  }
  if (tagged) name += "_w";
  return core::IfuncLibrary::from_archive(std::move(name),
                                          std::move(archive));
#else
  return failed_precondition(
      "bitcode/object chaser libraries need LLVM (TC_WITH_LLVM=OFF); use "
      "ir::CodeRepr::kPortable");
#endif
}

namespace {

am::AmHandlerFn legacy_chase_am_handler() {
  // Mirrors emit_chaser() in ir/kernel_builder.cpp instruction for
  // instruction; the pair is kept in lockstep by the mode-equivalence
  // tests. Dispatches on the payload size exactly as the ifunc kernels do:
  // 16 bytes = classic single-chase, 24 bytes = tagged (pipelined) chase.
  return [](am::AmContext& ctx, std::uint8_t* payload, std::uint64_t size) {
    auto request_or = decode_chase_payload(ByteSpan(payload, size));
    if (!request_or.is_ok() || (size != 16 && size != 24)) {
      TC_LOG(kWarn, "xrdma") << "AM chaser: bad payload";
      return;
    }
    std::uint64_t address = request_or->address;
    std::uint64_t depth = request_or->depth;
    const bool tagged = size == 24;
    std::uint64_t tag = 0;
    if (tagged) std::memcpy(&tag, payload + 16, sizeof(tag));
    const std::uint64_t shard_size = ctx.shard_size;

    while (true) {
      const std::uint64_t owner = address / shard_size;
      if (owner != ctx.self_peer) {
        const ChaseRequest forward{address, depth};
        const Bytes fresh =
            tagged ? encode_tagged_chase_payload(forward, tag)
                   : encode_chase_payload(forward);
        (void)ctx.runtime->send((*ctx.peers)[owner], ctx.handler_index,
                                as_span(fresh), ctx.origin_node);
        return;
      }
      const std::uint64_t value = ctx.shard_base[address % shard_size];
      if (--depth == 0) {
        ByteWriter w;
        w.u64(value);
        if (tagged) w.u64(tag);
        (void)ctx.runtime->reply(ctx, as_span(w.bytes()));
        return;
      }
      address = value;
    }
  };
}

}  // namespace

am::AmHandlerFn make_chase_am_handler() {
  if (ir::kernel_source(ir::KernelKind::kChaser) != ir::KernelSource::kKir) {
    return legacy_chase_am_handler();
  }
  // KIR-sourced: the same single definition that lowers to bytecode and
  // LLVM IR is evaluated in place of the hand-written handler. Payload-size
  // dispatch (16 = classic, 24 = tagged) and the warn-and-drop contract are
  // preserved here; the evaluator charges nothing extra in the sim, whose
  // AM exec cost is the calibrated constant.
  ir::KernelOptions classic_opts;
  ir::KernelOptions tagged_opts;
  tagged_opts.chaser_tagged = true;
  auto classic = kir::prepared_def(ir::KernelKind::kChaser, classic_opts);
  auto tagged = kir::prepared_def(ir::KernelKind::kChaser, tagged_opts);
  if (!classic.is_ok() || !tagged.is_ok()) {
    TC_LOG(kWarn, "xrdma") << "AM chaser: KIR definition unavailable, "
                              "falling back to the native handler";
    return legacy_chase_am_handler();
  }
  return [classic = std::move(classic).value(),
          tagged = std::move(tagged).value()](
             am::AmContext& ctx, std::uint8_t* payload, std::uint64_t size) {
    if (size != 16 && size != 24) {
      TC_LOG(kWarn, "xrdma") << "AM chaser: bad payload";
      return;
    }
    const kir::Def& def = size == 24 ? tagged : classic;
    Status status = kir::run_in_am_context(def, ctx, payload, size);
    if (!status.is_ok()) {
      TC_LOG(kWarn, "xrdma") << "AM chaser: " << status.message();
    }
  };
}

}  // namespace tc::xrdma
