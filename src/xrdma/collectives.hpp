// X-RDMA collectives built purely from recursive ifunc propagation.
//
// tree_broadcast(): one injected function delivers a value to every server
// in O(log N) network depth by recursively halving its peer range — the
// code itself is the collective algorithm, carried in the message. First
// execution ships fat-bitcode along every tree edge; repeats ride truncated
// frames and the per-node code caches.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hetsim/cluster.hpp"

namespace tc::xrdma {

struct BroadcastResult {
  std::uint64_t delivered = 0;     ///< servers that received the value
  std::int64_t virtual_ns = 0;     ///< completion time (virtual)
  std::uint64_t frames_full = 0;   ///< tree edges that shipped code
  std::uint64_t frames_truncated = 0;
};

/// Per-server landing slot for a broadcast: {value, arrival_count}.
struct BroadcastSlot {
  std::uint64_t value = 0;
  std::uint64_t arrivals = 0;
};

/// Broadcasts `value` from the cluster's client to every server through the
/// self-propagating tree kernel. `slots` must have one entry per server and
/// outlive the call; each server's runtime target pointer is set to its
/// slot. Reusable: repeat calls ride the warmed code caches.
StatusOr<BroadcastResult> tree_broadcast(hetsim::Cluster& cluster,
                                         std::uint64_t value,
                                         std::vector<BroadcastSlot>& slots);

}  // namespace tc::xrdma
