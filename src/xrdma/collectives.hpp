// X-RDMA collectives built purely from recursive ifunc propagation.
//
// tree_broadcast(): one injected function delivers a value to every server
// in O(log N) network depth by recursively halving its peer range — the
// code itself is the collective algorithm, carried in the message. First
// execution ships fat-bitcode along every tree edge; repeats ride truncated
// frames and the per-node code caches. Transport-generic: on the simulated
// backend completion is the deterministic event loop (virtual-time results
// are bit-for-bit the historical ones); on the shm backend the initiator
// thread drives its own progress context and polls the atomic slots the
// server progress threads publish into.
//
// CollectiveEngine: the transport-generic collective suite grown from that
// seed — broadcast, reduce (sum/min/max up the halving tree), allreduce
// (reduce + broadcast ride-along) and an ifunc barrier, each a
// self-propagating kernel (bitcode, AOT object, or portable bytecode), with
// arbitrary root servers and multiple concurrent collectives (one lane per
// initiator). Completion is ack-driven: every leaf delivery and the reduce
// root reply route back to the chain origin, so initiators complete by
// draining their own progress context — no remote-memory polling on the
// real-threads backend.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "hetsim/cluster.hpp"

namespace tc::xrdma {

struct BroadcastResult {
  std::uint64_t delivered = 0;     ///< servers that received the value
  /// Completion time: virtual ns on the simulated backend, monotonic
  /// wall-clock ns on shm (wall_clock set).
  std::int64_t virtual_ns = 0;
  bool wall_clock = false;
  std::uint64_t frames_full = 0;   ///< tree edges that shipped code
  std::uint64_t frames_truncated = 0;
};

/// Per-server landing slot for a broadcast: {value, arrival_count}.
/// Atomic: on the shm backend the slot is written by the server's progress
/// thread — the traveling kernel stores through the target pointer with
/// release ordering in both tiers (the interpreter's aligned word-stores
/// and the emitted IR's slot stores) — while the initiator polls it.
struct BroadcastSlot {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> arrivals{0};
};
static_assert(sizeof(BroadcastSlot) == 16,
              "kernel ABI: {value@0, arrivals@8}");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "broadcast slots must be plain lock-free words");

/// Broadcasts `value` from the cluster's client to every server through the
/// self-propagating tree kernel. `slots` must have one entry per server and
/// outlive the call; each server's runtime target pointer is set to its
/// slot. Reusable: repeat calls ride the warmed code caches. Works on both
/// cluster backends.
StatusOr<BroadcastResult> tree_broadcast(hetsim::Cluster& cluster,
                                         std::uint64_t value,
                                         std::vector<BroadcastSlot>& slots);

// --- the collective suite ----------------------------------------------------

/// Reduction operator carried in the coll_reduce payload (wire-stable).
enum class CollectiveOp : std::uint64_t {
  kSum = 0,
  kMin = 1,
  kMax = 2,
  /// Ignores contributions and folds a 1 per server — the fan-in half of
  /// the barrier (the root total must equal the server count).
  kCount = 3,
};
const char* collective_op_name(CollectiveOp op);

/// Code representation the collective kernels travel as. kBitcode/kObject
/// need LLVM; kPortable (the interpreter tier) always works.
enum class CollectiveRepr { kBitcode, kObject, kPortable };
const char* collective_repr_name(CollectiveRepr repr);

/// The representation DAPC's kInterpreted/kCachedBitcode split defaults to
/// in this build flavor.
constexpr CollectiveRepr default_collective_repr() {
#if TC_WITH_LLVM
  return CollectiveRepr::kBitcode;
#else
  return CollectiveRepr::kPortable;
#endif
}

/// Per-(server, lane) collective state the traveling kernels address
/// through the target pointer. Word layout is kernel ABI:
///   0 value     — broadcast landing slot
///   1 arrivals  — broadcast arrival count (exactly-once per collective)
///   2 contrib   — this server's reduce input (application-set)
///   3 acc       — partial reduction
///   4 expected  — children delegated during fan-out
///   5 arrived   — contributions folded so far
///   6 parent    — peer to climb to (~0 at the root)
///   7 op        — CollectiveOp of the in-flight reduction
struct alignas(64) CollectiveCell {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> contrib{0};
  std::atomic<std::uint64_t> acc{0};
  std::atomic<std::uint64_t> expected{0};
  std::atomic<std::uint64_t> arrived{0};
  std::atomic<std::uint64_t> parent{0};
  std::atomic<std::uint64_t> op{0};
};
static_assert(sizeof(CollectiveCell) == 64, "kernel ABI: 64-byte cells");

struct CollectiveConfig {
  /// Concurrent-collective lanes. Lane i is driven by client node i, so
  /// the cluster needs client_count >= lanes.
  std::size_t lanes = 1;
  /// Server index at the root of every tree (fan-out source, fan-in sink).
  /// Tree positions rotate around it, so any server can be the root.
  std::size_t root = 0;
  CollectiveRepr repr = default_collective_repr();
};

struct CollectiveResult {
  /// Broadcast: leaf acks received (== servers on success; for the
  /// concurrent variant, lanes x servers). Reduce: servers folded.
  std::uint64_t delivered = 0;
  /// Reduce/allreduce: the folded value. Barrier: the release sequence.
  std::uint64_t value = 0;
  /// Virtual ns (sim) or monotonic wall-clock ns (shm, wall_clock set).
  std::int64_t elapsed_ns = 0;
  bool wall_clock = false;
  std::uint64_t frames_full = 0;      ///< edges that shipped code
  std::uint64_t frames_truncated = 0;
};

/// Per-cluster driver for the collective suite. Owns the per-server cell
/// arrays (one cell per lane), registers the broadcast/reduce kernels on
/// every lane's initiator runtime, and installs the ack/result handlers.
/// One collective per lane may be in flight at a time; distinct lanes run
/// concurrently (broadcast_all, or independent callers on the shm backend).
class CollectiveEngine {
 public:
  static StatusOr<std::unique_ptr<CollectiveEngine>> create(
      hetsim::Cluster& cluster, CollectiveConfig config = {});
  ~CollectiveEngine();
  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  std::size_t lanes() const { return lanes_.size(); }

  /// Sets server `server`'s reduce input for `lane`.
  void set_contribution(std::size_t server, std::uint64_t value,
                        std::size_t lane = 0);
  /// Reads back what `broadcast` landed on `server` for `lane`.
  std::uint64_t broadcast_value(std::size_t server, std::size_t lane = 0) const;
  std::uint64_t broadcast_arrivals(std::size_t server,
                                   std::size_t lane = 0) const;

  /// Delivers `value` to every server; completes when all leaf acks have
  /// returned to lane's initiator.
  StatusOr<CollectiveResult> broadcast(std::uint64_t value,
                                       std::size_t lane = 0);
  /// Folds every server's contribution with `op`; the root replies the
  /// total to the initiator.
  StatusOr<CollectiveResult> reduce(CollectiveOp op, std::size_t lane = 0);
  /// reduce + broadcast of the folded value: afterwards every server's
  /// broadcast slot holds the total the initiator returns.
  StatusOr<CollectiveResult> allreduce(CollectiveOp op, std::size_t lane = 0);
  /// Fan-in of one count per server (must total N), then a broadcast
  /// release carrying a fresh sequence number. When it returns, every
  /// server has processed both phases.
  StatusOr<CollectiveResult> barrier(std::size_t lane = 0);

  /// values.size() concurrent broadcasts, one per lane/initiator —
  /// deterministically interleaved on sim, one OS thread per initiator on
  /// shm. Aggregate result; per-lane landings via broadcast_value().
  StatusOr<CollectiveResult> broadcast_all(
      const std::vector<std::uint64_t>& values);

 private:
  /// Per-lane in-flight state, touched only by the lane's own progress
  /// context (the sim event loop, or the initiator's thread on shm).
  struct Lane {
    fabric::NodeId node = 0;
    std::uint64_t bcast_ifunc = 0;
    std::uint64_t reduce_ifunc = 0;
    std::uint64_t acks = 0;
    std::uint64_t reduce_value = 0;
    bool have_reduce_value = false;
    bool failed = false;
  };

  explicit CollectiveEngine(hetsim::Cluster& cluster) : cluster_(&cluster) {}
  Status setup(const CollectiveConfig& config);
  void install_result_handler(std::size_t lane_index);
  Status issue_broadcast(Lane& lane, std::size_t lane_index,
                         std::uint64_t value);
  Status issue_reduce(Lane& lane, std::size_t lane_index, CollectiveOp op);
  /// Sums frames_sent_{full,truncated} over every cluster runtime.
  std::pair<std::uint64_t, std::uint64_t> frame_counts() const;
  /// Feeds a completed collective's end-to-end latency into the cluster's
  /// metrics registry ("e2e_ns/collective/<what>") when one is attached.
  void record_e2e(const char* what, std::int64_t elapsed_ns);

  hetsim::Cluster* cluster_;
  std::size_t root_ = 0;
  /// cells_[server][lane]; servers' target pointers alias these arrays.
  std::vector<std::unique_ptr<CollectiveCell[]>> cells_;
  std::vector<Lane> lanes_;
  std::atomic<std::uint64_t> barrier_seq_{0};
};

}  // namespace tc::xrdma
