#include "xrdma/dapc.hpp"

#include "common/log.hpp"
#if TC_WITH_LLVM
#include "hll/frontend.hpp"
#endif

namespace tc::xrdma {

const char* chase_mode_name(ChaseMode mode) {
  switch (mode) {
    case ChaseMode::kActiveMessage: return "active_message";
    case ChaseMode::kGet: return "get";
    case ChaseMode::kCachedBitcode: return "cached_bitcode";
    case ChaseMode::kCachedBinary: return "cached_binary";
    case ChaseMode::kInterpreted: return "interpreted";
    case ChaseMode::kHllBitcode: return "hll_bitcode";
    case ChaseMode::kHllDrivesC: return "hll_drives_c";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<DapcDriver>> DapcDriver::create(
    hetsim::Cluster& cluster, ChaseMode mode, DapcConfig config) {
  if (config.depth == 0 || config.chases == 0) {
    return invalid_argument("DAPC: depth and chases must be positive");
  }
  auto driver = std::unique_ptr<DapcDriver>(
      new DapcDriver(cluster, mode, config));
  TC_RETURN_IF_ERROR(driver->setup());
  return driver;
}

Status DapcDriver::setup() {
  PointerTableConfig table_config;
  table_config.entries_per_shard = config_.entries_per_shard;
  table_config.shard_count = cluster_->server_nodes().size();
  table_config.seed = config_.seed;
  TC_ASSIGN_OR_RETURN(table_, DistributedPointerTable::build(table_config));

  const auto& servers = cluster_->server_nodes();
  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC: {
      if (!cluster_->has_ifunc_runtimes()) {
        return failed_precondition("cluster built without ifunc runtimes");
      }
      ir::CodeRepr repr = ir::CodeRepr::kBitcode;
      if (mode_ == ChaseMode::kCachedBinary) repr = ir::CodeRepr::kObject;
      if (mode_ == ChaseMode::kInterpreted) repr = ir::CodeRepr::kPortable;
      StatusOr<core::IfuncLibrary> library_or =
#if TC_WITH_LLVM
          mode_ == ChaseMode::kHllDrivesC
              ? hll::build_library(ir::KernelKind::kChaser,
                                   /*drive_with_c=*/true)
              : build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode);
#else
          build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode);
#endif
      if (!library_or.is_ok()) return library_or.status();
      core::IfuncLibrary library = std::move(library_or).value();
      TC_ASSIGN_OR_RETURN(
          chaser_ifunc_id_,
          cluster_->client_runtime().register_ifunc(std::move(library)));
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->runtime(servers[i]).set_shard(shard.data(), shard.size());
      }
      break;
    }
    case ChaseMode::kActiveMessage: {
      if (!cluster_->has_am_runtimes()) {
        return failed_precondition("cluster built without AM runtimes");
      }
      // Predeployment: the handler is registered on every node, same index.
      const std::size_t node_count = cluster_->fabric().node_count();
      for (fabric::NodeId node = 0; node < node_count; ++node) {
        TC_ASSIGN_OR_RETURN(
            am_handler_index_,
            cluster_->am_runtime(node).register_handler(
                make_chase_am_handler()));
      }
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->am_runtime(servers[i])
            .set_shard(shard.data(), shard.size());
      }
      break;
    }
    case ChaseMode::kGet: {
      // Expose each shard for one-sided access and record its rkey.
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        TC_ASSIGN_OR_RETURN(
            fabric::MemRegion region,
            cluster_->fabric().node(servers[i]).memory.register_memory(
                shard.data(), shard.size() * sizeof(std::uint64_t)));
        shard_regions_.push_back(region);
      }
      break;
    }
  }
  return Status::ok();
}

StatusOr<DapcResult> DapcDriver::run() {
  // Deterministic workload: the same starts in warmup and timed runs, so the
  // warmup walks exactly the paths whose code/caches the timed run needs.
  Xoshiro256 rng(config_.seed ^ 0x5eedull);
  starts_.clear();
  expected_.clear();
  for (std::uint64_t i = 0; i < config_.chases; ++i) {
    const std::uint64_t start = rng.below(table_.total_entries());
    starts_.push_back(start);
    expected_.push_back(table_.chase_expected(start, config_.depth));
  }

  if (config_.warmup) {
    TC_ASSIGN_OR_RETURN(DapcResult warm, run_batch());
    if (warm.correct != warm.completed) {
      return internal_error("DAPC warmup produced incorrect results");
    }
  }
  return run_batch();
}

StatusOr<DapcResult> DapcDriver::run_batch() {
  values_.assign(config_.chases, 0);
  next_chase_ = 0;
  completed_ = 0;
  failed_ = false;

  fabric::Fabric& fabric = cluster_->fabric();
  const fabric::NodeId client = cluster_->client_node();

  // Route results: record the value, then fire the next chase (sequential
  // operations, as in the paper's rate measurement).
  auto on_result = [this](ByteSpan data, fabric::NodeId) {
    auto value_or = decode_chase_result(data);
    if (!value_or.is_ok()) {
      failed_ = true;
      return;
    }
    values_[completed_++] = *value_or;
    if (completed_ < config_.chases) {
      Status status = issue_chase(completed_);
      if (!status.is_ok()) failed_ = true;
    }
  };
  if (mode_ == ChaseMode::kActiveMessage) {
    cluster_->am_runtime(client).set_result_handler(on_result);
  } else if (mode_ != ChaseMode::kGet) {
    cluster_->client_runtime().set_result_handler(on_result);
  }

  const auto t0 = fabric.now();
  TC_RETURN_IF_ERROR(issue_chase(0));
  Status run_status = fabric.run_until(
      [this] { return failed_ || completed_ == config_.chases; });
  if (!run_status.is_ok()) return run_status;
  if (failed_) return internal_error("DAPC chase failed mid-run");
  const auto elapsed = fabric.now() - t0;

  DapcResult result;
  result.completed = completed_;
  result.virtual_ns = elapsed;
  result.values = values_;
  for (std::uint64_t i = 0; i < config_.chases; ++i) {
    if (values_[i] == expected_[i]) ++result.correct;
  }
  result.chases_per_second =
      elapsed > 0 ? static_cast<double>(completed_) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0.0;
  return result;
}

Status DapcDriver::issue_chase(std::uint64_t index) {
  const std::uint64_t start = starts_[index];
  const std::uint64_t owner = table_.owner_of(start);
  const fabric::NodeId dst = cluster_->server_nodes()[owner];
  const ChaseRequest request{start, config_.depth};

  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC:
      return cluster_->client_runtime().send_ifunc(
          dst, chaser_ifunc_id_, as_span(encode_chase_payload(request)));
    case ChaseMode::kActiveMessage:
      return cluster_->am_runtime(cluster_->client_node())
          .send(dst, am_handler_index_,
                as_span(encode_chase_payload(request)));
    case ChaseMode::kGet:
      return issue_get_step(start, config_.depth);
  }
  return internal_error("unreachable");
}

Status DapcDriver::issue_get_step(std::uint64_t address,
                                  std::uint64_t depth_left) {
  // GBPC: the client walks the chain itself, one RDMA GET per step (paper
  // §IV-D) — simpler code, but every hop is a full client round trip.
  const std::uint64_t owner = table_.owner_of(address);
  const std::uint64_t slot = table_.slot_of(address);
  const fabric::NodeId server = cluster_->server_nodes()[owner];
  fabric::RemoteAddr remote{server, shard_regions_[owner].rkey,
                            slot * sizeof(std::uint64_t)};

  auto& runtime = cluster_->client_runtime();
  runtime.endpoint(server).get(
      remote, sizeof(std::uint64_t),
      [this, depth_left](StatusOr<Bytes> data) {
        if (!data.is_ok() || data->size() != sizeof(std::uint64_t)) {
          failed_ = true;
          return;
        }
        std::uint64_t value = 0;
        std::memcpy(&value, data->data(), sizeof(value));
        if (depth_left == 1) {
          values_[completed_++] = value;
          if (completed_ < config_.chases) {
            if (!issue_chase(completed_).is_ok()) failed_ = true;
          }
          return;
        }
        if (!issue_get_step(value, depth_left - 1).is_ok()) failed_ = true;
      });
  return Status::ok();
}

}  // namespace tc::xrdma
