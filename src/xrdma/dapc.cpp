#include "xrdma/dapc.hpp"

#include <algorithm>

#include "common/log.hpp"
#if TC_WITH_LLVM
#include "hll/frontend.hpp"
#endif

namespace tc::xrdma {

const char* chase_mode_name(ChaseMode mode) {
  switch (mode) {
    case ChaseMode::kActiveMessage: return "active_message";
    case ChaseMode::kGet: return "get";
    case ChaseMode::kCachedBitcode: return "cached_bitcode";
    case ChaseMode::kCachedBinary: return "cached_binary";
    case ChaseMode::kInterpreted: return "interpreted";
    case ChaseMode::kHllBitcode: return "hll_bitcode";
    case ChaseMode::kHllDrivesC: return "hll_drives_c";
  }
  return "unknown";
}

DapcDriver::~DapcDriver() {
  // Detach everything this driver hung on the shared cluster: the result
  // handler's lambda captures this driver, and stale replies still queued
  // in the fabric (e.g. after a mid-run failure) must not dispatch into a
  // destroyed object.
  if (mode_ == ChaseMode::kActiveMessage) {
    if (cluster_->has_am_runtimes()) {
      cluster_->am_runtime(cluster_->client_node()).set_result_handler({});
    }
  } else if (mode_ != ChaseMode::kGet && cluster_->has_ifunc_runtimes()) {
    cluster_->client_runtime().set_result_handler({});
  }
  if (batch_overridden_) {
    cluster_->client_runtime().set_batch_options(saved_batch_);
  }
}

StatusOr<std::unique_ptr<DapcDriver>> DapcDriver::create(
    hetsim::Cluster& cluster, ChaseMode mode, DapcConfig config) {
  if (config.depth == 0 || config.chases == 0) {
    return invalid_argument("DAPC: depth and chases must be positive");
  }
  if (config.window == 0) {
    return invalid_argument("DAPC: window must be at least 1");
  }
  auto driver = std::unique_ptr<DapcDriver>(
      new DapcDriver(cluster, mode, config));
  TC_RETURN_IF_ERROR(driver->setup());
  return driver;
}

Status DapcDriver::setup() {
  PointerTableConfig table_config;
  table_config.entries_per_shard = config_.entries_per_shard;
  table_config.shard_count = cluster_->server_nodes().size();
  table_config.seed = config_.seed;
  TC_ASSIGN_OR_RETURN(table_, DistributedPointerTable::build(table_config));

  const auto& servers = cluster_->server_nodes();
  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC: {
      if (!cluster_->has_ifunc_runtimes()) {
        return failed_precondition("cluster built without ifunc runtimes");
      }
      ir::CodeRepr repr = ir::CodeRepr::kBitcode;
      if (mode_ == ChaseMode::kCachedBinary) repr = ir::CodeRepr::kObject;
      if (mode_ == ChaseMode::kInterpreted) repr = ir::CodeRepr::kPortable;
      // Window > 1 deploys the *tagged* chaser variant, whose replies
      // carry the routing tag for out-of-order completion.
      const bool tagged = config_.window > 1;
      StatusOr<core::IfuncLibrary> library_or =
#if TC_WITH_LLVM
          mode_ == ChaseMode::kHllDrivesC
              ? hll::build_library(ir::KernelKind::kChaser,
                                   /*drive_with_c=*/true, tagged)
              : build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode,
                                     tagged);
#else
          build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode,
                               tagged);
#endif
      if (!library_or.is_ok()) return library_or.status();
      core::IfuncLibrary library = std::move(library_or).value();
      TC_ASSIGN_OR_RETURN(
          chaser_ifunc_id_,
          cluster_->client_runtime().register_ifunc(std::move(library)));
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->runtime(servers[i]).set_shard(shard.data(), shard.size());
      }
      if (config_.window > 1 && config_.batch_frames > 1) {
        // Pipelined issue: back-to-back frames from the initiator destined
        // for the same server coalesce into batched wire messages. The
        // previous options are restored when this driver is destroyed.
        saved_batch_ = cluster_->client_runtime().batch_options();
        batch_overridden_ = true;
        core::BatchOptions batch;
        batch.max_frames = config_.batch_frames;
        batch.flush_ns = config_.batch_flush_ns;
        cluster_->client_runtime().set_batch_options(batch);
      }
      break;
    }
    case ChaseMode::kActiveMessage: {
      if (!cluster_->has_am_runtimes()) {
        return failed_precondition("cluster built without AM runtimes");
      }
      // Predeployment: the handler is registered on every node, same index.
      const std::size_t node_count = cluster_->fabric().node_count();
      for (fabric::NodeId node = 0; node < node_count; ++node) {
        TC_ASSIGN_OR_RETURN(
            am_handler_index_,
            cluster_->am_runtime(node).register_handler(
                make_chase_am_handler()));
      }
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->am_runtime(servers[i])
            .set_shard(shard.data(), shard.size());
      }
      break;
    }
    case ChaseMode::kGet: {
      // Expose each shard for one-sided access and record its rkey.
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        TC_ASSIGN_OR_RETURN(
            fabric::MemRegion region,
            cluster_->fabric().node(servers[i]).memory.register_memory(
                shard.data(), shard.size() * sizeof(std::uint64_t)));
        shard_regions_.push_back(region);
      }
      break;
    }
  }
  return Status::ok();
}

StatusOr<DapcResult> DapcDriver::run() {
  // Deterministic workload: the same starts in warmup and timed runs, so the
  // warmup walks exactly the paths whose code/caches the timed run needs.
  Xoshiro256 rng(config_.seed ^ 0x5eedull);
  starts_.clear();
  expected_.clear();
  for (std::uint64_t i = 0; i < config_.chases; ++i) {
    const std::uint64_t start = rng.below(table_.total_entries());
    starts_.push_back(start);
    expected_.push_back(table_.chase_expected(start, config_.depth));
  }

  if (config_.warmup) {
    TC_ASSIGN_OR_RETURN(DapcResult warm, run_batch());
    if (warm.correct != warm.completed) {
      return internal_error("DAPC warmup produced incorrect results");
    }
  }
  return run_batch();
}

StatusOr<DapcResult> DapcDriver::run_batch() {
  values_.assign(config_.chases, 0);
  next_chase_ = 0;
  completed_ = 0;
  failed_ = false;

  fabric::Fabric& fabric = cluster_->fabric();
  const fabric::NodeId client = cluster_->client_node();

  // Route results: record the value, then refill the window. With window
  // == 1 this is the paper's sequential rate measurement; with window > 1
  // replies are tagged so out-of-order completions route to their chase.
  auto on_result = [this](ByteSpan data, fabric::NodeId) {
    auto reply_or = decode_chase_reply(data);
    if (!reply_or.is_ok()) {
      failed_ = true;
      return;
    }
    if (config_.window > 1) {
      if (!reply_or->tagged || reply_or->tag >= config_.chases) {
        failed_ = true;
        return;
      }
      on_chase_complete(reply_or->tag, reply_or->value);
    } else {
      if (reply_or->tagged) {
        failed_ = true;
        return;
      }
      on_chase_complete(completed_, reply_or->value);
    }
  };
  if (mode_ == ChaseMode::kActiveMessage) {
    cluster_->am_runtime(client).set_result_handler(on_result);
  } else if (mode_ != ChaseMode::kGet) {
    cluster_->client_runtime().set_result_handler(on_result);
  }

  const std::uint64_t initial =
      std::min<std::uint64_t>(config_.window, config_.chases);
  const auto t0 = fabric.now();
  for (std::uint64_t i = 0; i < initial; ++i) {
    TC_RETURN_IF_ERROR(issue_chase(i));
  }
  next_chase_ = initial;
  Status run_status = fabric.run_until(
      [this] { return failed_ || completed_ == config_.chases; });
  if (!run_status.is_ok()) return run_status;
  if (failed_) return internal_error("DAPC chase failed mid-run");
  const auto elapsed = fabric.now() - t0;

  DapcResult result;
  result.completed = completed_;
  result.virtual_ns = elapsed;
  result.values = values_;
  for (std::uint64_t i = 0; i < config_.chases; ++i) {
    if (values_[i] == expected_[i]) ++result.correct;
  }
  result.chases_per_second =
      elapsed > 0 ? static_cast<double>(completed_) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0.0;
  return result;
}

void DapcDriver::on_chase_complete(std::uint64_t index, std::uint64_t value) {
  values_[index] = value;
  ++completed_;
  if (next_chase_ < config_.chases) {
    Status status = issue_chase(next_chase_++);
    if (!status.is_ok()) failed_ = true;
  }
}

Status DapcDriver::issue_chase(std::uint64_t index) {
  const std::uint64_t start = starts_[index];
  const std::uint64_t owner = table_.owner_of(start);
  const fabric::NodeId dst = cluster_->server_nodes()[owner];
  const ChaseRequest request{start, config_.depth};
  // Pipelined windows carry the chase index as the routing tag; the
  // classic window keeps the paper's 16-byte payload byte-for-byte.
  auto payload = [&] {
    return config_.window > 1 ? encode_tagged_chase_payload(request, index)
                              : encode_chase_payload(request);
  };

  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC:
      return cluster_->client_runtime().send_ifunc(dst, chaser_ifunc_id_,
                                                   as_span(payload()));
    case ChaseMode::kActiveMessage:
      return cluster_->am_runtime(cluster_->client_node())
          .send(dst, am_handler_index_, as_span(payload()));
    case ChaseMode::kGet:
      return issue_get_step(index, start, config_.depth);
  }
  return internal_error("unreachable");
}

Status DapcDriver::issue_get_step(std::uint64_t chase_index,
                                  std::uint64_t address,
                                  std::uint64_t depth_left) {
  // GBPC: the client walks the chain itself, one RDMA GET per step (paper
  // §IV-D) — simpler code, but every hop is a full client round trip. With
  // window > 1 several of these walks run concurrently; each carries its
  // chase index down the callback chain.
  const std::uint64_t owner = table_.owner_of(address);
  const std::uint64_t slot = table_.slot_of(address);
  const fabric::NodeId server = cluster_->server_nodes()[owner];
  fabric::RemoteAddr remote{server, shard_regions_[owner].rkey,
                            slot * sizeof(std::uint64_t)};

  auto& runtime = cluster_->client_runtime();
  runtime.endpoint(server).get(
      remote, sizeof(std::uint64_t),
      [this, chase_index, depth_left](StatusOr<Bytes> data) {
        if (!data.is_ok() || data->size() != sizeof(std::uint64_t)) {
          failed_ = true;
          return;
        }
        std::uint64_t value = 0;
        std::memcpy(&value, data->data(), sizeof(value));
        if (depth_left == 1) {
          on_chase_complete(chase_index, value);
          return;
        }
        if (!issue_get_step(chase_index, value, depth_left - 1).is_ok()) {
          failed_ = true;
        }
      });
  return Status::ok();
}

}  // namespace tc::xrdma
