#include "xrdma/dapc.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/log.hpp"
#if TC_WITH_LLVM
#include "hll/frontend.hpp"
#endif

namespace tc::xrdma {

const char* chase_mode_name(ChaseMode mode) {
  switch (mode) {
    case ChaseMode::kActiveMessage: return "active_message";
    case ChaseMode::kGet: return "get";
    case ChaseMode::kCachedBitcode: return "cached_bitcode";
    case ChaseMode::kCachedBinary: return "cached_binary";
    case ChaseMode::kInterpreted: return "interpreted";
    case ChaseMode::kHllBitcode: return "hll_bitcode";
    case ChaseMode::kHllDrivesC: return "hll_drives_c";
  }
  return "unknown";
}

DapcDriver::~DapcDriver() {
  // Detach everything this driver hung on the shared cluster: the result
  // handlers' lambdas capture this driver, and stale replies still queued
  // in the fabric (e.g. after a mid-run failure) must not dispatch into a
  // destroyed object.
  detach_result_handlers();
  if (batch_overridden_) {
    for (const Initiator& init : initiators_) {
      cluster_->runtime(init.node).set_batch_options(
          saved_batch_[init.index]);
    }
  }
}

void DapcDriver::detach_result_handlers() {
  for (const Initiator& init : initiators_) {
    if (mode_ == ChaseMode::kActiveMessage) {
      if (cluster_->has_am_runtimes()) {
        cluster_->am_runtime(init.node).set_result_handler({});
      }
    } else if (mode_ != ChaseMode::kGet && cluster_->has_ifunc_runtimes()) {
      cluster_->runtime(init.node).set_result_handler({});
    }
  }
}

StatusOr<std::unique_ptr<DapcDriver>> DapcDriver::create(
    hetsim::Cluster& cluster, ChaseMode mode, DapcConfig config) {
  if (config.depth == 0 || config.chases == 0) {
    return invalid_argument("DAPC: depth and chases must be positive");
  }
  if (config.window == 0) {
    return invalid_argument("DAPC: window must be at least 1");
  }
  if (config.initiators == 0) {
    return invalid_argument("DAPC: initiators must be at least 1");
  }
  if (config.initiators > cluster.client_nodes().size()) {
    return invalid_argument(
        "DAPC: " + std::to_string(config.initiators) +
        " initiators but the cluster has only " +
        std::to_string(cluster.client_nodes().size()) + " client node(s)");
  }
  auto driver = std::unique_ptr<DapcDriver>(
      new DapcDriver(cluster, mode, config));
  driver->alive_token_ = std::make_shared<DapcDriver*>(driver.get());
  TC_RETURN_IF_ERROR(driver->setup());
  return driver;
}

Status DapcDriver::setup() {
  PointerTableConfig table_config;
  table_config.entries_per_shard = config_.entries_per_shard;
  table_config.shard_count = cluster_->server_nodes().size();
  table_config.seed = config_.seed;
  TC_ASSIGN_OR_RETURN(table_, DistributedPointerTable::build(table_config));

  initiators_.resize(config_.initiators);
  for (std::size_t i = 0; i < config_.initiators; ++i) {
    initiators_[i].index = i;
    initiators_[i].node = cluster_->client_nodes()[i];
  }
  if (cluster_->metrics() != nullptr) {
    e2e_hist_ = &cluster_->metrics()->histogram(
        std::string("e2e_ns/dapc/") + chase_mode_name(mode_));
  }

  const auto& servers = cluster_->server_nodes();
  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC: {
      if (!cluster_->has_ifunc_runtimes()) {
        return failed_precondition("cluster built without ifunc runtimes");
      }
      ir::CodeRepr repr = ir::CodeRepr::kBitcode;
      if (mode_ == ChaseMode::kCachedBinary) repr = ir::CodeRepr::kObject;
      if (mode_ == ChaseMode::kInterpreted) repr = ir::CodeRepr::kPortable;
      // Window > 1 deploys the *tagged* chaser variant, whose replies
      // carry the routing tag for out-of-order completion.
      const bool tagged = config_.window > 1;
      // Every initiator runtime registers its own copy of the library; the
      // wire identity (content hash) is common, so server-side caching is
      // shared across initiators exactly as with one sender.
      for (const Initiator& init : initiators_) {
        StatusOr<core::IfuncLibrary> library_or =
#if TC_WITH_LLVM
            mode_ == ChaseMode::kHllDrivesC
                ? hll::build_library(ir::KernelKind::kChaser,
                                     /*drive_with_c=*/true, tagged)
                : build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode,
                                       tagged);
#else
            build_chaser_library(repr, mode_ == ChaseMode::kHllBitcode,
                                 tagged);
#endif
        if (!library_or.is_ok()) return library_or.status();
        core::IfuncLibrary library = std::move(library_or).value();
        TC_ASSIGN_OR_RETURN(
            chaser_ifunc_id_,
            cluster_->runtime(init.node).register_ifunc(std::move(library)));
      }
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->runtime(servers[i]).set_shard(shard.data(), shard.size());
      }
      if (config_.window > 1 && config_.batch_frames > 1) {
        // Pipelined issue: back-to-back frames from an initiator destined
        // for the same server coalesce into batched wire messages. Each
        // runtime's previous options are restored when this driver is
        // destroyed.
        batch_overridden_ = true;
        core::BatchOptions batch;
        batch.max_frames = config_.batch_frames;
        batch.flush_ns = config_.batch_flush_ns;
        for (const Initiator& init : initiators_) {
          saved_batch_.push_back(
              cluster_->runtime(init.node).batch_options());
          cluster_->runtime(init.node).set_batch_options(batch);
        }
      }
      break;
    }
    case ChaseMode::kActiveMessage: {
      if (!cluster_->has_am_runtimes()) {
        return failed_precondition("cluster built without AM runtimes");
      }
      // Predeployment: the handler is registered on every node, same index.
      const std::size_t node_count = cluster_->node_count();
      for (fabric::NodeId node = 0; node < node_count; ++node) {
        TC_ASSIGN_OR_RETURN(
            am_handler_index_,
            cluster_->am_runtime(node).register_handler(
                make_chase_am_handler()));
      }
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        cluster_->am_runtime(servers[i])
            .set_shard(shard.data(), shard.size());
      }
      break;
    }
    case ChaseMode::kGet: {
      // Expose each shard for one-sided access and record its rkey.
      for (std::size_t i = 0; i < servers.size(); ++i) {
        auto& shard = table_.shard(i);
        TC_ASSIGN_OR_RETURN(
            fabric::MemRegion region,
            cluster_->transport().register_window(
                servers[i], shard.data(),
                shard.size() * sizeof(std::uint64_t)));
        shard_regions_.push_back(region);
      }
      break;
    }
  }
  return Status::ok();
}

StatusOr<DapcResult> DapcDriver::run() {
  // Deterministic workload: the same starts in warmup and timed runs, so the
  // warmup walks exactly the paths whose code/caches the timed run needs.
  // Initiator 0 draws the classic sequence (bit-for-bit with the
  // single-initiator driver); further initiators perturb the stream seed.
  for (Initiator& init : initiators_) {
    Xoshiro256 rng(config_.seed ^ 0x5eedull ^
                   (0x9E3779B97F4A7C15ull * init.index));
    init.starts.clear();
    init.expected.clear();
    for (std::uint64_t i = 0; i < config_.chases; ++i) {
      const std::uint64_t start = rng.below(table_.total_entries());
      init.starts.push_back(start);
      init.expected.push_back(table_.chase_expected(start, config_.depth));
    }
  }

  if (config_.warmup) {
    TC_ASSIGN_OR_RETURN(DapcResult warm, run_batch());
    if (warm.correct != warm.completed) {
      return internal_error("DAPC warmup produced incorrect results");
    }
  }
  return run_batch();
}

void DapcDriver::install_result_handler(Initiator& init) {
  // Route results: record the value, then refill the window. With window
  // == 1 this is the paper's sequential rate measurement; with window > 1
  // replies are tagged so out-of-order completions route to their chase.
  Initiator* state = &init;
  auto on_result = [this, state](ByteSpan data, fabric::NodeId) {
    auto reply_or = decode_chase_reply(data);
    if (!reply_or.is_ok()) {
      state->failed = true;
      return;
    }
    if (config_.window > 1) {
      if (!reply_or->tagged || reply_or->tag >= config_.chases) {
        state->failed = true;
        return;
      }
      on_chase_complete(*state, reply_or->tag, reply_or->value);
    } else {
      if (reply_or->tagged) {
        state->failed = true;
        return;
      }
      on_chase_complete(*state, state->completed, reply_or->value);
    }
  };
  if (mode_ == ChaseMode::kActiveMessage) {
    cluster_->am_runtime(init.node).set_result_handler(on_result);
  } else if (mode_ != ChaseMode::kGet) {
    cluster_->runtime(init.node).set_result_handler(on_result);
  }
}

StatusOr<DapcResult> DapcDriver::run_batch() {
  for (Initiator& init : initiators_) {
    init.values.assign(config_.chases, 0);
    if (e2e_hist_ != nullptr) init.issue_ns.assign(config_.chases, 0);
    init.next_chase = 0;
    init.completed = 0;
    init.failed = false;
    install_result_handler(init);
  }

  const std::uint64_t initial =
      std::min<std::uint64_t>(config_.window, config_.chases);
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();

  if (cluster_->backend() == hetsim::Backend::kSim) {
    // Deterministic interleaving: all initiators issue into one virtual
    // timeline and a single event loop drains it. next_chase is set
    // *before* issuing so a completion delivered mid-issue (possible on
    // backpressure-driven progress) refills from the right index.
    for (Initiator& init : initiators_) {
      init.next_chase = initial;
      for (std::uint64_t i = 0; i < initial; ++i) {
        TC_RETURN_IF_ERROR(issue_chase(init, i));
      }
    }
    Status run_status = transport.run_until(cluster_->client_node(), [this] {
      for (const Initiator& init : initiators_) {
        if (init.failed) return true;
        if (init.completed != config_.chases) return false;
      }
      return true;
    });
    if (!run_status.is_ok()) return run_status;
  } else {
    // Real concurrency: one OS thread per initiator drives its own client
    // node — issuing, progressing and completing entirely on that thread.
    std::vector<std::thread> threads;
    std::vector<Status> thread_status(initiators_.size(), Status::ok());
    for (std::size_t i = 0; i < initiators_.size(); ++i) {
      threads.emplace_back([this, i, initial, &transport, &thread_status] {
        Initiator& init = initiators_[i];
        init.next_chase = initial;
        for (std::uint64_t c = 0; c < initial; ++c) {
          Status status = issue_chase(init, c);
          if (!status.is_ok()) {
            thread_status[i] = std::move(status);
            init.failed = true;
            return;
          }
        }
        thread_status[i] = transport.run_until(init.node, [this, &init] {
          return init.failed || init.completed == config_.chases;
        });
      });
    }
    for (std::thread& t : threads) t.join();
    for (Status& status : thread_status) {
      if (!status.is_ok()) return std::move(status);
    }
  }
  const auto elapsed = transport.now_ns() - t0;

  DapcResult result;
  result.wall_clock = !transport.deterministic();
  result.virtual_ns = elapsed;
  for (const Initiator& init : initiators_) {
    if (init.failed) return internal_error("DAPC chase failed mid-run");
    result.completed += init.completed;
    for (std::uint64_t i = 0; i < config_.chases; ++i) {
      if (init.values[i] == init.expected[i]) ++result.correct;
      result.values.push_back(init.values[i]);
    }
  }
  result.chases_per_second =
      elapsed > 0 ? static_cast<double>(result.completed) * 1e9 /
                        static_cast<double>(elapsed)
                  : 0.0;
  return result;
}

void DapcDriver::on_chase_complete(Initiator& init, std::uint64_t index,
                                   std::uint64_t value) {
  init.values[index] = value;
  if (e2e_hist_ != nullptr && index < init.issue_ns.size()) {
    const std::int64_t delta =
        cluster_->transport().now_ns() - init.issue_ns[index];
    e2e_hist_->record(delta > 0 ? static_cast<std::uint64_t>(delta) : 0);
  }
  ++init.completed;
  if (init.next_chase < config_.chases) {
    Status status = issue_chase(init, init.next_chase++);
    if (!status.is_ok()) init.failed = true;
  }
}

Status DapcDriver::issue_chase(Initiator& init, std::uint64_t index) {
  if (e2e_hist_ != nullptr && index < init.issue_ns.size()) {
    init.issue_ns[index] = cluster_->transport().now_ns();
  }
  const std::uint64_t start = init.starts[index];
  const std::uint64_t owner = table_.owner_of(start);
  const fabric::NodeId dst = cluster_->server_nodes()[owner];
  const ChaseRequest request{start, config_.depth};
  // Pipelined windows carry the chase index as the routing tag; the
  // classic window keeps the paper's 16-byte payload byte-for-byte. Tags
  // are initiator-local: each initiator's replies return to its own node.
  auto payload = [&] {
    return config_.window > 1 ? encode_tagged_chase_payload(request, index)
                              : encode_chase_payload(request);
  };

  switch (mode_) {
    case ChaseMode::kCachedBitcode:
    case ChaseMode::kCachedBinary:
    case ChaseMode::kInterpreted:
    case ChaseMode::kHllBitcode:
    case ChaseMode::kHllDrivesC:
      return cluster_->runtime(init.node).send_ifunc(dst, chaser_ifunc_id_,
                                                     as_span(payload()));
    case ChaseMode::kActiveMessage:
      return cluster_->am_runtime(init.node)
          .send(dst, am_handler_index_, as_span(payload()));
    case ChaseMode::kGet:
      return issue_get_step(init, index, start, config_.depth);
  }
  return internal_error("unreachable");
}

Status DapcDriver::issue_get_step(Initiator& init, std::uint64_t chase_index,
                                  std::uint64_t address,
                                  std::uint64_t depth_left) {
  // GBPC: the client walks the chain itself, one RDMA GET per step (paper
  // §IV-D) — simpler code, but every hop is a full client round trip. With
  // window > 1 several of these walks run concurrently; each carries its
  // chase index down the callback chain.
  const std::uint64_t owner = table_.owner_of(address);
  const std::uint64_t slot = table_.slot_of(address);
  const fabric::NodeId server = cluster_->server_nodes()[owner];
  fabric::RemoteAddr remote{server, shard_regions_[owner].rkey,
                            slot * sizeof(std::uint64_t)};

  // Stale completions (stashed in the transport or queued as sim events
  // past a mid-run failure) must not dispatch into a destroyed driver:
  // resolve the initiator through the weak liveness token, by index.
  const std::size_t init_index = init.index;
  cluster_->transport().post_get(
      init.node, remote, sizeof(std::uint64_t),
      [alive = std::weak_ptr<DapcDriver*>(alive_token_), init_index,
       chase_index, depth_left](StatusOr<Bytes> data) {
        auto token = alive.lock();
        if (!token) return;
        DapcDriver& self = **token;
        Initiator& state = self.initiators_[init_index];
        if (!data.is_ok() || data->size() != sizeof(std::uint64_t)) {
          state.failed = true;
          return;
        }
        std::uint64_t value = 0;
        std::memcpy(&value, data->data(), sizeof(value));
        if (depth_left == 1) {
          self.on_chase_complete(state, chase_index, value);
          return;
        }
        if (!self.issue_get_step(state, chase_index, value, depth_left - 1)
                 .is_ok()) {
          state.failed = true;
        }
      });
  return Status::ok();
}

}  // namespace tc::xrdma
