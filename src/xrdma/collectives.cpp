#include "xrdma/collectives.hpp"

#include <string>

#include "ir/kernels.hpp"

namespace tc::xrdma {

StatusOr<BroadcastResult> tree_broadcast(hetsim::Cluster& cluster,
                                         std::uint64_t value,
                                         std::vector<BroadcastSlot>& slots) {
  const auto& servers = cluster.server_nodes();
  if (slots.size() != servers.size()) {
    return invalid_argument("tree_broadcast: one slot per server required");
  }
  if (!cluster.has_ifunc_runtimes()) {
    return failed_precondition("cluster built without ifunc runtimes");
  }

  core::Runtime& client = cluster.client_runtime();
  // Bitcode representation when the toolchain is available; the portable
  // interpreter tier otherwise (distinct wire name, identical semantics).
#if TC_WITH_LLVM
  const std::string kernel = ir::kernel_name(ir::KernelKind::kTreeBroadcast);
#else
  const std::string kernel =
      core::portable_kernel_name(ir::KernelKind::kTreeBroadcast);
#endif
  std::uint64_t ifunc_id = 0;
  if (auto existing = client.ifunc_id_by_name(kernel); existing.is_ok()) {
    ifunc_id = *existing;  // reuse across repeated broadcasts
  } else {
#if TC_WITH_LLVM
    TC_ASSIGN_OR_RETURN(
        core::IfuncLibrary library,
        core::IfuncLibrary::from_kernel(ir::KernelKind::kTreeBroadcast));
#else
    TC_ASSIGN_OR_RETURN(core::IfuncLibrary library,
                        core::IfuncLibrary::from_portable_kernel(
                            ir::KernelKind::kTreeBroadcast));
#endif
    TC_ASSIGN_OR_RETURN(ifunc_id, client.register_ifunc(std::move(library)));
  }

  for (std::size_t i = 0; i < servers.size(); ++i) {
    slots[i].arrivals = 0;
    cluster.runtime(servers[i]).set_target_ptr(&slots[i]);
  }

  auto frames_before = [&cluster, &servers] {
    std::uint64_t full = cluster.client_runtime().stats().frames_sent_full;
    std::uint64_t trunc =
        cluster.client_runtime().stats().frames_sent_truncated;
    for (auto node : servers) {
      full += cluster.runtime(node).stats().frames_sent_full;
      trunc += cluster.runtime(node).stats().frames_sent_truncated;
    }
    return std::pair{full, trunc};
  };
  const auto [full0, trunc0] = frames_before();

  ByteWriter w;
  w.u64(0);                    // base peer of the covered range
  w.u64(servers.size());       // span
  w.u64(value);
  fabric::Fabric& fabric = cluster.fabric();
  const auto t0 = fabric.now();
  TC_RETURN_IF_ERROR(client.send_ifunc(servers[0], ifunc_id,
                                       as_span(w.bytes())));
  Status run = fabric.run_until([&] {
    for (const BroadcastSlot& slot : slots) {
      if (slot.arrivals == 0) return false;
    }
    return true;
  });
  if (!run.is_ok()) return run;
  fabric.run_until_idle();  // drain trailing busy/no-op events

  BroadcastResult result;
  result.virtual_ns = fabric.now() - t0;
  for (const BroadcastSlot& slot : slots) {
    if (slot.value == value && slot.arrivals >= 1) ++result.delivered;
  }
  const auto [full1, trunc1] = frames_before();
  result.frames_full = full1 - full0;
  result.frames_truncated = trunc1 - trunc0;
  return result;
}

}  // namespace tc::xrdma
