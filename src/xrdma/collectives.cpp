#include "xrdma/collectives.hpp"

#include <string>
#include <thread>
#include <utility>

#include "ir/kernels.hpp"
#if TC_WITH_LLVM
#include "ir/kernel_builder.hpp"
#include "jit/compiler.hpp"
#endif

namespace tc::xrdma {

namespace {

/// Builds a collective kernel library in the requested representation,
/// mirroring build_chaser_library(): portable archives work in every build
/// flavor, bitcode/object need LLVM. Names (and thus wire identities) are
/// representation-distinct: `<kernel>`, `<kernel>_bin`, `<kernel>_vm`.
StatusOr<core::IfuncLibrary> build_collective_library(ir::KernelKind kind,
                                                      CollectiveRepr repr) {
  if (repr == CollectiveRepr::kPortable) {
    return core::IfuncLibrary::from_portable_kernel(kind);
  }
#if TC_WITH_LLVM
  if (repr == CollectiveRepr::kBitcode) {
    return core::IfuncLibrary::from_kernel(kind);
  }
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      ir::build_default_fat_kernel(kind, {}));
  TC_ASSIGN_OR_RETURN(archive, jit::compile_archive_to_objects(archive));
  return core::IfuncLibrary::from_archive(
      std::string(ir::kernel_name(kind)) + "_bin", std::move(archive));
#else
  return failed_precondition(
      "bitcode/object collective libraries need LLVM (TC_WITH_LLVM=OFF); "
      "use CollectiveRepr::kPortable");
#endif
}

/// The registered name build_collective_library() will produce — computed
/// up front so the reuse check costs a lookup, not an archive build.
std::string collective_library_name(ir::KernelKind kind,
                                    CollectiveRepr repr) {
  switch (repr) {
    case CollectiveRepr::kPortable: return core::portable_kernel_name(kind);
    case CollectiveRepr::kObject:
      return std::string(ir::kernel_name(kind)) + "_bin";
    case CollectiveRepr::kBitcode: break;
  }
  return ir::kernel_name(kind);
}

/// Registers `kind`/`repr` on `runtime`, or reuses a registration a
/// previous engine (or broadcast call) already made on it — without
/// paying the IR build / AOT compile when the library already exists.
StatusOr<std::uint64_t> register_or_reuse(core::Runtime& runtime,
                                          ir::KernelKind kind,
                                          CollectiveRepr repr) {
  if (auto existing =
          runtime.ifunc_id_by_name(collective_library_name(kind, repr));
      existing.is_ok()) {
    return *existing;
  }
  TC_ASSIGN_OR_RETURN(core::IfuncLibrary library,
                      build_collective_library(kind, repr));
  return runtime.register_ifunc(std::move(library));
}

}  // namespace

StatusOr<BroadcastResult> tree_broadcast(hetsim::Cluster& cluster,
                                         std::uint64_t value,
                                         std::vector<BroadcastSlot>& slots) {
  const auto& servers = cluster.server_nodes();
  if (slots.size() != servers.size()) {
    return invalid_argument("tree_broadcast: one slot per server required");
  }
  if (!cluster.has_ifunc_runtimes()) {
    return failed_precondition("cluster built without ifunc runtimes");
  }

  core::Runtime& client = cluster.client_runtime();
  // Bitcode representation when the toolchain is available; the portable
  // interpreter tier otherwise (distinct wire name, identical semantics).
#if TC_WITH_LLVM
  const std::string kernel = ir::kernel_name(ir::KernelKind::kTreeBroadcast);
#else
  const std::string kernel =
      core::portable_kernel_name(ir::KernelKind::kTreeBroadcast);
#endif
  std::uint64_t ifunc_id = 0;
  if (auto existing = client.ifunc_id_by_name(kernel); existing.is_ok()) {
    ifunc_id = *existing;  // reuse across repeated broadcasts
  } else {
#if TC_WITH_LLVM
    TC_ASSIGN_OR_RETURN(
        core::IfuncLibrary library,
        core::IfuncLibrary::from_kernel(ir::KernelKind::kTreeBroadcast));
#else
    TC_ASSIGN_OR_RETURN(core::IfuncLibrary library,
                        core::IfuncLibrary::from_portable_kernel(
                            ir::KernelKind::kTreeBroadcast));
#endif
    TC_ASSIGN_OR_RETURN(ifunc_id, client.register_ifunc(std::move(library)));
  }

  for (std::size_t i = 0; i < servers.size(); ++i) {
    slots[i].arrivals.store(0, std::memory_order_relaxed);
    cluster.runtime(servers[i]).set_target_ptr(&slots[i]);
  }

  auto frames_before = [&cluster, &servers] {
    std::uint64_t full = cluster.client_runtime().stats().frames_sent_full;
    std::uint64_t trunc =
        cluster.client_runtime().stats().frames_sent_truncated;
    for (auto node : servers) {
      full += cluster.runtime(node).stats().frames_sent_full;
      trunc += cluster.runtime(node).stats().frames_sent_truncated;
    }
    return std::pair{full, trunc};
  };
  const auto [full0, trunc0] = frames_before();

  ByteWriter w;
  w.u64(0);                    // base peer of the covered range
  w.u64(servers.size());       // span
  w.u64(value);
  fabric::Transport& transport = cluster.transport();
  const auto t0 = transport.now_ns();
  TC_RETURN_IF_ERROR(client.send_ifunc(servers[0], ifunc_id,
                                       as_span(w.bytes())));
  // Completion: on sim the deterministic event loop runs until every slot
  // saw its arrival; on shm the initiator thread spins its own progress
  // context while the server progress threads publish into the atomic
  // slots (release word-stores from the traveling kernel pair with the
  // acquire polls here).
  Status run = cluster.drive_until(cluster.client_node(), [&slots] {
    for (const BroadcastSlot& slot : slots) {
      if (slot.arrivals.load(std::memory_order_acquire) == 0) return false;
    }
    return true;
  });
  if (!run.is_ok()) return run;
  cluster.settle();  // drain trailing busy/no-op events (sim)

  BroadcastResult result;
  result.virtual_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  for (const BroadcastSlot& slot : slots) {
    if (slot.value.load(std::memory_order_acquire) == value &&
        slot.arrivals.load(std::memory_order_acquire) >= 1) {
      ++result.delivered;
    }
  }
  const auto [full1, trunc1] = frames_before();
  result.frames_full = full1 - full0;
  result.frames_truncated = trunc1 - trunc0;
  return result;
}

// --- the collective suite ----------------------------------------------------

const char* collective_op_name(CollectiveOp op) {
  switch (op) {
    case CollectiveOp::kSum: return "sum";
    case CollectiveOp::kMin: return "min";
    case CollectiveOp::kMax: return "max";
    case CollectiveOp::kCount: return "count";
  }
  return "unknown";
}

const char* collective_repr_name(CollectiveRepr repr) {
  switch (repr) {
    case CollectiveRepr::kBitcode: return "bitcode";
    case CollectiveRepr::kObject: return "object";
    case CollectiveRepr::kPortable: return "portable";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<CollectiveEngine>> CollectiveEngine::create(
    hetsim::Cluster& cluster, CollectiveConfig config) {
  auto engine =
      std::unique_ptr<CollectiveEngine>(new CollectiveEngine(cluster));
  TC_RETURN_IF_ERROR(engine->setup(config));
  return engine;
}

Status CollectiveEngine::setup(const CollectiveConfig& config) {
  if (!cluster_->has_ifunc_runtimes()) {
    return failed_precondition("cluster built without ifunc runtimes");
  }
  if (config.lanes == 0) {
    return invalid_argument("collectives: at least one lane required");
  }
  if (config.lanes > cluster_->client_nodes().size()) {
    return invalid_argument(
        "collectives: " + std::to_string(config.lanes) +
        " lanes but the cluster has only " +
        std::to_string(cluster_->client_nodes().size()) + " client node(s)");
  }
  const auto& servers = cluster_->server_nodes();
  if (config.root >= servers.size()) {
    return invalid_argument("collectives: root server index out of range");
  }
  root_ = config.root;

  cells_.reserve(servers.size());
  for (std::size_t s = 0; s < servers.size(); ++s) {
    cells_.push_back(std::make_unique<CollectiveCell[]>(config.lanes));
    cluster_->runtime(servers[s]).set_target_ptr(cells_[s].get());
  }

  lanes_.resize(config.lanes);
  for (std::size_t i = 0; i < config.lanes; ++i) {
    Lane& lane = lanes_[i];
    lane.node = cluster_->client_nodes()[i];
    core::Runtime& runtime = cluster_->runtime(lane.node);
    TC_ASSIGN_OR_RETURN(
        lane.bcast_ifunc,
        register_or_reuse(runtime, ir::KernelKind::kCollectiveBroadcast,
                          config.repr));
    TC_ASSIGN_OR_RETURN(
        lane.reduce_ifunc,
        register_or_reuse(runtime, ir::KernelKind::kCollectiveReduce,
                          config.repr));
    install_result_handler(i);
  }
  return Status::ok();
}

CollectiveEngine::~CollectiveEngine() {
  // Detach everything hung on the shared cluster: result-handler lambdas
  // capture this engine, and the server target pointers alias cell arrays
  // about to be freed.
  for (const Lane& lane : lanes_) {
    cluster_->runtime(lane.node).set_result_handler({});
  }
  for (fabric::NodeId node : cluster_->server_nodes()) {
    cluster_->runtime(node).set_target_ptr(nullptr);
  }
}

void CollectiveEngine::install_result_handler(std::size_t lane_index) {
  // Acks and reduce results for lane i return to client node i and fire on
  // that node's progress context — the lane state below is only ever
  // touched by its own driving thread.
  cluster_->runtime(lanes_[lane_index].node)
      .set_result_handler([this, lane_index](ByteSpan data, fabric::NodeId) {
        Lane& lane = lanes_[lane_index];
        if (data.size() != 24) {
          lane.failed = true;
          return;
        }
        ByteReader r(data);
        std::uint64_t kind = 0, reply_lane = 0, value = 0;
        if (!r.u64(kind).is_ok() || !r.u64(reply_lane).is_ok() ||
            !r.u64(value).is_ok() || reply_lane != lane_index) {
          lane.failed = true;
          return;
        }
        if (kind == 0) {
          ++lane.acks;  // a leaf delivery acked
        } else if (kind == 1) {
          lane.reduce_value = value;  // the root folded everything
          lane.have_reduce_value = true;
        } else {
          lane.failed = true;
        }
      });
}

void CollectiveEngine::set_contribution(std::size_t server,
                                        std::uint64_t value,
                                        std::size_t lane) {
  cells_.at(server)[lane].contrib.store(value, std::memory_order_release);
}

std::uint64_t CollectiveEngine::broadcast_value(std::size_t server,
                                                std::size_t lane) const {
  return cells_.at(server)[lane].value.load(std::memory_order_acquire);
}

std::uint64_t CollectiveEngine::broadcast_arrivals(std::size_t server,
                                                   std::size_t lane) const {
  return cells_.at(server)[lane].arrivals.load(std::memory_order_acquire);
}

std::pair<std::uint64_t, std::uint64_t> CollectiveEngine::frame_counts()
    const {
  std::uint64_t full = 0, truncated = 0;
  const std::size_t nodes = cluster_->node_count();
  for (fabric::NodeId node = 0; node < nodes; ++node) {
    const auto& stats = cluster_->runtime(node).stats();
    full += stats.frames_sent_full;
    truncated += stats.frames_sent_truncated;
  }
  return {full, truncated};
}

Status CollectiveEngine::issue_broadcast(Lane& lane, std::size_t lane_index,
                                         std::uint64_t value) {
  const auto& servers = cluster_->server_nodes();
  ByteWriter w;
  w.u64(0);                    // tree position of the root
  w.u64(servers.size());       // span
  w.u64(value);
  w.u64(lane_index);
  w.u64(root_);
  return cluster_->runtime(lane.node).send_ifunc(
      servers[root_], lane.bcast_ifunc, as_span(w.bytes()));
}

Status CollectiveEngine::issue_reduce(Lane& lane, std::size_t lane_index,
                                      CollectiveOp op) {
  const auto& servers = cluster_->server_nodes();
  ByteWriter w;
  w.u64(0);                    // kind: fan-out
  w.u64(0);                    // tree position of the root
  w.u64(servers.size());       // span
  w.u64(~0ull);                // parent: the root replies to the origin
  w.u64(lane_index);
  w.u64(static_cast<std::uint64_t>(op));
  w.u64(root_);
  return cluster_->runtime(lane.node).send_ifunc(
      servers[root_], lane.reduce_ifunc, as_span(w.bytes()));
}

void CollectiveEngine::record_e2e(const char* what, std::int64_t elapsed_ns) {
  if (cluster_->metrics() == nullptr) return;
  cluster_->metrics()
      ->histogram(std::string("e2e_ns/collective/") + what)
      .record(elapsed_ns > 0 ? static_cast<std::uint64_t>(elapsed_ns) : 0);
}

StatusOr<CollectiveResult> CollectiveEngine::broadcast(std::uint64_t value,
                                                       std::size_t lane_index) {
  if (lane_index >= lanes_.size()) {
    return invalid_argument("collectives: lane out of range");
  }
  Lane& lane = lanes_[lane_index];
  const std::size_t n = cluster_->server_nodes().size();
  for (std::size_t s = 0; s < n; ++s) {
    cells_[s][lane_index].arrivals.store(0, std::memory_order_relaxed);
  }
  lane.acks = 0;
  lane.failed = false;

  CollectiveResult result;
  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();
  TC_RETURN_IF_ERROR(issue_broadcast(lane, lane_index, value));
  TC_RETURN_IF_ERROR(cluster_->drive_until(lane.node, [&lane, n] {
    return lane.failed || lane.acks == n;
  }));
  cluster_->settle();
  if (lane.failed) {
    return internal_error("collective broadcast failed mid-flight");
  }
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  record_e2e("broadcast", result.elapsed_ns);
  result.delivered = lane.acks;
  result.value = value;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

StatusOr<CollectiveResult> CollectiveEngine::reduce(CollectiveOp op,
                                                    std::size_t lane_index) {
  if (lane_index >= lanes_.size()) {
    return invalid_argument("collectives: lane out of range");
  }
  Lane& lane = lanes_[lane_index];
  lane.have_reduce_value = false;
  lane.failed = false;

  CollectiveResult result;
  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();
  TC_RETURN_IF_ERROR(issue_reduce(lane, lane_index, op));
  TC_RETURN_IF_ERROR(cluster_->drive_until(lane.node, [&lane] {
    return lane.failed || lane.have_reduce_value;
  }));
  cluster_->settle();
  if (lane.failed) {
    return internal_error("collective reduce failed mid-flight");
  }
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  record_e2e("reduce", result.elapsed_ns);
  result.delivered = cluster_->server_nodes().size();
  result.value = lane.reduce_value;
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

StatusOr<CollectiveResult> CollectiveEngine::allreduce(CollectiveOp op,
                                                       std::size_t lane_index) {
  TC_ASSIGN_OR_RETURN(CollectiveResult folded, reduce(op, lane_index));
  TC_ASSIGN_OR_RETURN(CollectiveResult spread,
                      broadcast(folded.value, lane_index));
  CollectiveResult result;
  result.delivered = spread.delivered;
  result.value = folded.value;
  result.elapsed_ns = folded.elapsed_ns + spread.elapsed_ns;
  result.wall_clock = folded.wall_clock;
  result.frames_full = folded.frames_full + spread.frames_full;
  result.frames_truncated =
      folded.frames_truncated + spread.frames_truncated;
  return result;
}

StatusOr<CollectiveResult> CollectiveEngine::barrier(std::size_t lane_index) {
  // Fan-in: every server folds a 1; the root total must be the server
  // count. Release: a broadcast of a fresh sequence number — once its acks
  // are home, every server has executed both barrier phases.
  TC_ASSIGN_OR_RETURN(CollectiveResult fan_in,
                      reduce(CollectiveOp::kCount, lane_index));
  if (fan_in.value != cluster_->server_nodes().size()) {
    return internal_error("barrier fan-in folded " +
                          std::to_string(fan_in.value) + " of " +
                          std::to_string(cluster_->server_nodes().size()) +
                          " servers");
  }
  const std::uint64_t seq =
      barrier_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  TC_ASSIGN_OR_RETURN(CollectiveResult release, broadcast(seq, lane_index));
  CollectiveResult result;
  result.delivered = release.delivered;
  result.value = seq;
  result.elapsed_ns = fan_in.elapsed_ns + release.elapsed_ns;
  result.wall_clock = fan_in.wall_clock;
  result.frames_full = fan_in.frames_full + release.frames_full;
  result.frames_truncated =
      fan_in.frames_truncated + release.frames_truncated;
  return result;
}

StatusOr<CollectiveResult> CollectiveEngine::broadcast_all(
    const std::vector<std::uint64_t>& values) {
  if (values.empty() || values.size() > lanes_.size()) {
    return invalid_argument(
        "collectives: broadcast_all needs 1..lanes values");
  }
  const std::size_t m = values.size();
  const std::size_t n = cluster_->server_nodes().size();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t s = 0; s < n; ++s) {
      cells_[s][i].arrivals.store(0, std::memory_order_relaxed);
    }
    lanes_[i].acks = 0;
    lanes_[i].failed = false;
  }

  CollectiveResult result;
  const auto frames0 = frame_counts();
  fabric::Transport& transport = cluster_->transport();
  const auto t0 = transport.now_ns();

  if (cluster_->backend() == hetsim::Backend::kSim) {
    // Deterministic interleaving: every lane issues into the one virtual
    // timeline, a single event loop drains them all.
    for (std::size_t i = 0; i < m; ++i) {
      TC_RETURN_IF_ERROR(issue_broadcast(lanes_[i], i, values[i]));
    }
    TC_RETURN_IF_ERROR(cluster_->drive_until(cluster_->client_node(),
                                             [this, m, n] {
      for (std::size_t i = 0; i < m; ++i) {
        if (lanes_[i].failed) return true;
        if (lanes_[i].acks != n) return false;
      }
      return true;
    }));
  } else {
    // Real concurrency: one OS thread per initiator issues and completes
    // its own lane on its own client node.
    std::vector<std::thread> threads;
    std::vector<Status> status(m, Status::ok());
    for (std::size_t i = 0; i < m; ++i) {
      threads.emplace_back([this, i, n, &values, &status] {
        Lane& lane = lanes_[i];
        Status s = issue_broadcast(lane, i, values[i]);
        if (!s.is_ok()) {
          status[i] = std::move(s);
          lane.failed = true;
          return;
        }
        status[i] = cluster_->drive_until(lane.node, [&lane, n] {
          return lane.failed || lane.acks == n;
        });
      });
    }
    for (std::thread& t : threads) t.join();
    for (Status& s : status) {
      if (!s.is_ok()) return std::move(s);
    }
  }
  cluster_->settle();

  for (std::size_t i = 0; i < m; ++i) {
    if (lanes_[i].failed) {
      return internal_error("concurrent broadcast failed mid-flight");
    }
    result.delivered += lanes_[i].acks;
  }
  result.elapsed_ns = transport.now_ns() - t0;
  result.wall_clock = !transport.deterministic();
  record_e2e("broadcast_all", result.elapsed_ns);
  const auto frames1 = frame_counts();
  result.frames_full = frames1.first - frames0.first;
  result.frames_truncated = frames1.second - frames0.second;
  return result;
}

}  // namespace tc::xrdma
