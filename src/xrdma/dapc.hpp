// DAPC — the Distributed Adaptive Pointer Chasing miniapp (paper §IV-C/D)
// and its evaluation driver. M initiators issue pointer-chase operations of
// a given depth against a table sharded over N servers, in one of seven
// execution modes:
//
//   kActiveMessage — predeployed native handler, index+payload requests
//                    (the paper's baseline upper bound);
//   kGet           — GBPC: client-driven iterative RDMA GETs (lower bound);
//   kCachedBitcode — X-RDMA Chaser ifunc, fat-bitcode representation;
//   kCachedBinary  — Chaser ifunc, AOT object (binary) representation;
//   kInterpreted   — Chaser ifunc, portable-bytecode representation run by
//                    the vm interpreter tier (zero compile; the only ifunc
//                    mode available in TC_WITH_LLVM=OFF builds);
//   kHllBitcode    — Chaser built by the high-level-language frontend
//                    (the Julia-integration analogue);
//   kHllDrivesC    — HLL client driving C-frontend bitcode (the paper's
//                    "Julia driving the bitcode generated from C").
//
// Every mode computes the identical chase (verified against a reference
// walk), so measured differences are pure protocol/runtime effects.
//
// Multi-initiator mode (config.initiators = M > 1) runs M concurrent
// initiators, each with its own in-flight window W. On the simulated
// backend the initiators interleave deterministically in virtual time; on
// the shm backend each initiator is a real OS thread driving its own
// client node — the wall-clock scaling experiment of bench/fig_mt_scale.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "hetsim/cluster.hpp"
#include "xrdma/chaser.hpp"
#include "xrdma/pointer_table.hpp"

namespace tc::xrdma {

enum class ChaseMode {
  kActiveMessage,
  kGet,
  kCachedBitcode,
  kCachedBinary,
  kInterpreted,
  kHllBitcode,
  kHllDrivesC,
};

const char* chase_mode_name(ChaseMode mode);

struct DapcConfig {
  std::uint64_t depth = 64;
  std::uint64_t chases = 8;  ///< operations per initiator per measurement
  std::uint64_t entries_per_shard = 4096;
  std::uint64_t seed = 0xDA9Cull;
  /// Run the full workload once untimed first, so code caches (sender-side
  /// sent-tables, server-side JIT caches) are hot — the "cached" rows of the
  /// paper. Set false to measure cold-start behaviour.
  bool warmup = true;

  /// In-flight window: how many chases each initiator keeps outstanding at
  /// once. 1 (default) is the paper's synchronous evaluation, preserved
  /// byte-for-byte on the wire. >1 switches the ifunc/AM modes to the
  /// tagged chase protocol ([addr][depth][tag] requests, [value][tag]
  /// replies) so out-of-order completions route to the right chase, and
  /// runs GET mode as `window` concurrent client-driven walks.
  std::uint64_t window = 1;
  /// Concurrent initiators. Each uses its own client node (and, on the shm
  /// backend, its own OS thread); the cluster must be built with
  /// client_count >= initiators. 1 preserves the classic driver exactly.
  std::uint64_t initiators = 1;
  /// Sender-side frame coalescing on each *initiator* (ifunc modes only):
  /// frames per batched wire message. <= 1 leaves the classic
  /// one-frame-per-message protocol; used with window > 1, back-to-back
  /// issues destined for the same server share one injection gap.
  std::size_t batch_frames = 1;
  /// Flush deadline for a partially filled batch (see core::BatchOptions).
  std::int64_t batch_flush_ns = 300;
};

struct DapcResult {
  std::uint64_t completed = 0;  ///< across all initiators
  std::uint64_t correct = 0;
  /// Elapsed time in the backend's clock: virtual ns on the simulated
  /// backend, monotonic wall-clock ns on the shm backend (wall_clock set).
  std::int64_t virtual_ns = 0;
  bool wall_clock = false;
  double chases_per_second = 0.0;
  /// Final value of every chase, initiator-major, issue order within each
  /// initiator (mode- and backend-equivalence tests compare these).
  std::vector<std::uint64_t> values;
};

class DapcDriver {
 public:
  static StatusOr<std::unique_ptr<DapcDriver>> create(hetsim::Cluster& cluster,
                                                      ChaseMode mode,
                                                      DapcConfig config);
  /// Restores the initiator runtimes' batch options if this driver
  /// overrode them — the cluster outlives the driver and later users (a
  /// W = 1 driver, collectives) must see the classic send path.
  ~DapcDriver();

  /// Executes the configured workload and reports the elapsed-time rate.
  StatusOr<DapcResult> run();

  const DistributedPointerTable& table() const { return table_; }
  ChaseMode mode() const { return mode_; }

 private:
  /// Per-initiator workload state. Touched only by the initiator's own
  /// progress context (main thread on sim, its dedicated thread on shm).
  struct Initiator {
    std::size_t index = 0;
    fabric::NodeId node = 0;
    std::vector<std::uint64_t> starts;
    std::vector<std::uint64_t> expected;
    std::vector<std::uint64_t> values;
    /// Per-chase issue timestamps when the cluster carries a metrics
    /// registry (feeds the end-to-end chase-latency histogram).
    std::vector<std::int64_t> issue_ns;
    std::uint64_t next_chase = 0;
    std::uint64_t completed = 0;
    bool failed = false;
  };

  DapcDriver(hetsim::Cluster& cluster, ChaseMode mode, DapcConfig config)
      : cluster_(&cluster), mode_(mode), config_(config) {}

  bool is_ifunc_mode() const {
    return mode_ != ChaseMode::kActiveMessage && mode_ != ChaseMode::kGet;
  }
  Status setup();
  StatusOr<DapcResult> run_batch();
  /// Issues initiator-local chase `index` from the initiator's context.
  Status issue_chase(Initiator& init, std::uint64_t index);
  Status issue_get_step(Initiator& init, std::uint64_t chase_index,
                        std::uint64_t address, std::uint64_t depth_left);
  /// Records one completed chase and refills the initiator's window.
  void on_chase_complete(Initiator& init, std::uint64_t index,
                         std::uint64_t value);
  void install_result_handler(Initiator& init);
  void detach_result_handlers();

  hetsim::Cluster* cluster_;
  ChaseMode mode_;
  DapcConfig config_;
  DistributedPointerTable table_;
  /// End-to-end chase latency ("e2e_ns/dapc/<mode>") when the cluster was
  /// built with a MetricsRegistry; null otherwise.
  obs::Histogram* e2e_hist_ = nullptr;

  std::vector<Initiator> initiators_;

  // Mode-specific handles.
  std::uint64_t chaser_ifunc_id_ = 0;
  std::uint16_t am_handler_index_ = 0;
  std::vector<fabric::MemRegion> shard_regions_;  // GET mode rkeys
  /// Per-initiator batch options to restore at destruction (windowed
  /// ifunc modes override them on the shared cluster runtimes).
  std::vector<core::BatchOptions> saved_batch_;
  bool batch_overridden_ = false;
  /// GET-mode completion lambdas capture this driver and can outlive it
  /// inside the transport (stashed completions, queued sim events) after a
  /// mid-run failure; they hold a weak reference to this token and no-op
  /// once the driver is gone.
  std::shared_ptr<DapcDriver*> alive_token_;
};

}  // namespace tc::xrdma
