#include "xrdma/pointer_table.hpp"

#include <numeric>

namespace tc::xrdma {

StatusOr<DistributedPointerTable> DistributedPointerTable::build(
    const PointerTableConfig& config) {
  if (config.entries_per_shard == 0 || config.shard_count == 0) {
    return invalid_argument("pointer table: zero shards or shard size");
  }
  const std::uint64_t total = config.entries_per_shard * config.shard_count;
  if (total < 2) {
    return invalid_argument("pointer table: need at least 2 entries");
  }

  // Fisher-Yates a tour of all addresses, then link consecutive tour stops
  // into one cycle: entry[tour[k]] = tour[k+1].
  std::vector<std::uint64_t> tour(total);
  std::iota(tour.begin(), tour.end(), 0);
  Xoshiro256 rng(config.seed);
  for (std::uint64_t i = total - 1; i > 0; --i) {
    const std::uint64_t j = rng.below(i + 1);
    std::swap(tour[i], tour[j]);
  }

  DistributedPointerTable table;
  table.total_ = total;
  table.shard_size_ = config.entries_per_shard;
  table.shards_.assign(config.shard_count,
                       std::vector<std::uint64_t>(config.entries_per_shard));
  for (std::uint64_t k = 0; k < total; ++k) {
    const std::uint64_t from = tour[k];
    const std::uint64_t to = tour[(k + 1) % total];
    table.shards_[table.owner_of(from)][table.slot_of(from)] = to;
  }
  return table;
}

std::uint64_t DistributedPointerTable::chase_expected(
    std::uint64_t start, std::uint64_t depth) const {
  std::uint64_t address = start;
  std::uint64_t value = address;
  for (std::uint64_t i = 0; i < depth; ++i) {
    value = lookup(address);
    address = value;
  }
  return value;
}

double DistributedPointerTable::remote_fraction() const {
  std::uint64_t remote = 0;
  for (std::uint64_t server = 0; server < shards_.size(); ++server) {
    for (std::uint64_t value : shards_[server]) {
      if (owner_of(value) != server) ++remote;
    }
  }
  return static_cast<double>(remote) / static_cast<double>(total_);
}

}  // namespace tc::xrdma
