// The X-RDMA Chaser and ReturnResult operations (paper §IV-C): payload
// codec, ifunc-library construction for every code representation, and the
// predeployed Active-Message equivalent of the chase logic.
#pragma once

#include <cstdint>

#include "am/am_runtime.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/ifunc.hpp"

namespace tc::xrdma {

/// Wire payload of a Chaser operation (two little-endian u64s; the chaser
/// mutates them in place when it forwards itself).
struct ChaseRequest {
  std::uint64_t address = 0;  ///< first element to access
  std::uint64_t depth = 0;    ///< remaining lookups
};

Bytes encode_chase_payload(const ChaseRequest& request);
StatusOr<ChaseRequest> decode_chase_payload(ByteSpan payload);

/// Tagged (pipelined) chase payload: [addr:u64][depth:u64][tag:u64]. The
/// tag identifies one of several in-flight chases from the same initiator
/// and rides along untouched through every forward hop; the final reply is
/// then [value:u64][tag:u64] instead of the bare value, so the initiator
/// can route out-of-order completions. All chaser kernels dispatch on the
/// payload size (16 = classic, 24 = tagged), which keeps the classic
/// single-chase wire exchange byte-for-byte unchanged.
Bytes encode_tagged_chase_payload(const ChaseRequest& request,
                                  std::uint64_t tag);

/// A decoded ReturnResult in either form: 8-byte classic (tagged == false)
/// or 16-byte tagged.
struct ChaseReply {
  std::uint64_t value = 0;
  std::uint64_t tag = 0;
  bool tagged = false;
};
StatusOr<ChaseReply> decode_chase_reply(ByteSpan data);

/// Builds the Chaser ifunc library.
///  repr = kBitcode  → multi-ISA fat-bitcode, JIT-compiled on servers;
///  repr = kObject   → AOT-compiled relocatable objects, link-only deploy;
///  repr = kPortable → portable bytecode, interpreted on servers with zero
///                     compile (works in TC_WITH_LLVM=OFF builds).
///  hll_frontend     → emit the high-level-language (Julia-analogue) IR.
///  tagged           → the async-window variant (tagged payload/reply); a
///                     distinct kernel + wire identity, so the classic
///                     chaser's code — and the interpreter tier's per-op
///                     charge — is untouched at window = 1.
StatusOr<core::IfuncLibrary> build_chaser_library(
    ir::CodeRepr repr = ir::CodeRepr::kBitcode, bool hll_frontend = false,
    bool tagged = false);

/// The predeployed AM handler implementing the identical chase logic in
/// native C++ (the paper's Active Message evaluation baseline). Must be
/// registered under the same index on every node.
am::AmHandlerFn make_chase_am_handler();

}  // namespace tc::xrdma
