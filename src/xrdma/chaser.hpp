// The X-RDMA Chaser and ReturnResult operations (paper §IV-C): payload
// codec, ifunc-library construction for every code representation, and the
// predeployed Active-Message equivalent of the chase logic.
#pragma once

#include <cstdint>

#include "am/am_runtime.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/ifunc.hpp"

namespace tc::xrdma {

/// Wire payload of a Chaser operation (two little-endian u64s; the chaser
/// mutates them in place when it forwards itself).
struct ChaseRequest {
  std::uint64_t address = 0;  ///< first element to access
  std::uint64_t depth = 0;    ///< remaining lookups
};

Bytes encode_chase_payload(const ChaseRequest& request);
StatusOr<ChaseRequest> decode_chase_payload(ByteSpan payload);

/// Decodes the 8-byte ReturnResult payload (the final chased value).
StatusOr<std::uint64_t> decode_chase_result(ByteSpan data);

/// Builds the Chaser ifunc library.
///  repr = kBitcode  → multi-ISA fat-bitcode, JIT-compiled on servers;
///  repr = kObject   → AOT-compiled relocatable objects, link-only deploy;
///  repr = kPortable → portable bytecode, interpreted on servers with zero
///                     compile (works in TC_WITH_LLVM=OFF builds).
///  hll_frontend     → emit the high-level-language (Julia-analogue) IR.
StatusOr<core::IfuncLibrary> build_chaser_library(
    ir::CodeRepr repr = ir::CodeRepr::kBitcode, bool hll_frontend = false);

/// The predeployed AM handler implementing the identical chase logic in
/// native C++ (the paper's Active Message evaluation baseline). Must be
/// registered under the same index on every node.
am::AmHandlerFn make_chase_am_handler();

}  // namespace tc::xrdma
