#include "hll/frontend.hpp"

#include <llvm/IR/Instructions.h>
#include <llvm/IR/LLVMContext.h>

#include "ir/abi.hpp"
#include "ir/bitcode.hpp"

namespace tc::hll {

StatusOr<core::IfuncLibrary> build_library(ir::KernelKind kind,
                                           bool drive_with_c, bool tagged) {
  if (tagged && kind != ir::KernelKind::kChaser) {
    return invalid_argument(
        std::string("hll: tagged applies only to the chaser kernel, not ") +
        ir::kernel_name(kind));
  }
  ir::KernelOptions options;
  options.hll_guards = !drive_with_c;
  options.chaser_tagged = tagged;
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      ir::build_default_fat_kernel(kind, options));
  std::string name = std::string("hll_") + ir::kernel_name(kind);
  if (drive_with_c) name += "_c";
  if (tagged) name += "_w";
  return core::IfuncLibrary::from_archive(std::move(name),
                                          std::move(archive));
}

StatusOr<unsigned> count_guard_calls(ByteSpan bitcode) {
  llvm::LLVMContext context;
  TC_ASSIGN_OR_RETURN(auto module, ir::bitcode_to_module(bitcode, context));
  unsigned count = 0;
  for (const llvm::Function& fn : *module) {
    for (const llvm::BasicBlock& bb : fn) {
      for (const llvm::Instruction& inst : bb) {
        if (const auto* call = llvm::dyn_cast<llvm::CallInst>(&inst)) {
          const llvm::Function* callee = call->getCalledFunction();
          if (callee != nullptr &&
              callee->getName() == abi::kHookHllGuard) {
            ++count;
          }
        }
      }
    }
  }
  return count;
}

}  // namespace tc::hll
