// High-level-language frontend — the Julia-integration analogue.
//
// The paper lowers Julia functions to LLVM IR with GPUCompiler.jl and ships
// that IR as ifuncs; the observed cost signature is "same workflow, IR with
// extra dynamic-language overhead" (Fig. 8/12), plus a second mode where a
// Julia *client* drives ifuncs whose IR came from C ("excellent
// performance"). There is no Julia in this environment (DESIGN.md §1), so
// this module reproduces exactly that distinction:
//
//  * build_library(kind)                — kernels emitted with per-iteration
//    tc_hll_guard dynamic-dispatch guards (the type-instability tax);
//  * build_library(kind, /*drive_with_c=*/true) — the plain C-frontend
//    kernel under an HLL-owned name, modeling "HLL driving C ifuncs".
#pragma once

#include "common/status.hpp"
#include "core/ifunc.hpp"
#include "ir/kernel_builder.hpp"

namespace tc::hll {

/// Builds an ifunc library through the HLL frontend. With drive_with_c the
/// code itself is the C-frontend emission (no guards) — only the client-side
/// integration is "high-level". `tagged` builds the async-window chaser
/// variant (see xrdma::build_chaser_library) and is only valid with
/// KernelKind::kChaser — any other kind returns an invalid-argument Status
/// (the flag used to be silently ignored).
StatusOr<core::IfuncLibrary> build_library(ir::KernelKind kind,
                                           bool drive_with_c = false,
                                           bool tagged = false);

/// Counts tc_hll_guard call sites in a bitcode module — test/diagnostic
/// helper proving the frontend actually emitted its guards.
StatusOr<unsigned> count_guard_calls(ByteSpan bitcode);

}  // namespace tc::hll
