// kir→am, stage 1: a direct evaluator over KIR definitions.
//
// This is what runs when a KIR-sourced kernel executes as a *predeployed*
// Active-Message handler (am_backend.hpp wraps it in an AmHandlerFn): the
// def is walked instruction by instruction against the same vm::HookTable
// surface the bytecode interpreter uses, with identical semantics —
// sign-extended i32 hook results, IEEE bit-pattern floats, trapping
// unsigned division, tear-free aligned word accesses, a fuel limit. The
// differential suite runs the evaluator against the interpreter on the same
// hook table and asserts identical payload/target/traffic outcomes.
//
// Unlike the backends, the evaluator also accepts *raw* defs: a kGuard
// marker calls the hll_guard hook when one is installed and is a no-op
// otherwise, and kTrace is always a no-op.
#pragma once

#include "common/status.hpp"
#include "kir/kir.hpp"
#include "vm/interp.hpp"

namespace tc::kir {

struct EvalOptions {
  /// Fuel limit, counted per executed instruction; exceeding it fails with
  /// kResourceExhausted instead of hanging the node on a looping def.
  std::uint64_t max_ops = 1ull << 30;
};

struct EvalResult {
  /// Executed KIR instructions (kGuard/kTrace markers included).
  std::uint64_t ops = 0;
};

/// Evaluates `def` over a mutable payload. Runtime faults — division by
/// zero, a missing hook, fuel exhaustion — surface as error Statuses.
StatusOr<EvalResult> evaluate(const Def& def, const vm::HookTable& hooks,
                              std::uint8_t* payload,
                              std::uint64_t payload_size,
                              const EvalOptions& options = {});

}  // namespace tc::kir
