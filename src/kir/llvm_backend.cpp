#include "kir/llvm_backend.hpp"

#include <vector>

#include <llvm/IR/IRBuilder.h>

#include "ir/abi.hpp"
#include "ir/bitcode.hpp"
#include "kir/kernels.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::kir {

namespace {

/// The per-def emission state: the entry function, one i64 slot per KIR
/// register (mem2reg promotes them), and the leader→block map.
struct KirEmitter {
  llvm::LLVMContext& ctx;
  llvm::Module& mod;
  llvm::IRBuilder<> b;

  llvm::Type* i8p;
  llvm::Type* i64p;
  llvm::Type* void_ty;
  llvm::IntegerType* i8;
  llvm::IntegerType* i32;
  llvm::IntegerType* i64;
  llvm::Type* f32;
  llvm::Type* f64;

  llvm::Function* entry = nullptr;
  llvm::Value* arg_ctx = nullptr;
  llvm::Value* arg_payload = nullptr;
  llvm::Value* arg_size = nullptr;
  std::vector<llvm::Value*> regs;

  KirEmitter(llvm::LLVMContext& c, llvm::Module& m) : ctx(c), mod(m), b(c) {
    i8 = b.getInt8Ty();
    i32 = b.getInt32Ty();
    i64 = b.getInt64Ty();
    f32 = b.getFloatTy();
    f64 = b.getDoubleTy();
    i8p = b.getInt8PtrTy();
    i64p = i64->getPointerTo();
    void_ty = b.getVoidTy();
  }

  llvm::FunctionCallee hook(const char* name, llvm::Type* ret,
                            std::initializer_list<llvm::Type*> params) {
    return mod.getOrInsertFunction(
        name, llvm::FunctionType::get(ret, params, false));
  }

  llvm::ConstantInt* c64(std::uint64_t v) {
    return llvm::ConstantInt::get(i64, v);
  }

  llvm::Value* ld(std::uint8_t r) { return b.CreateLoad(i64, regs[r]); }
  void st(std::uint8_t r, llvm::Value* v) { b.CreateStore(v, regs[r]); }

  /// r[base] + imm as a typed pointer.
  llvm::Value* mem(std::uint8_t base, std::int32_t imm, llvm::Type* pointee) {
    llvm::Value* addr = ld(base);
    if (imm != 0) {
      addr = b.CreateAdd(
          addr, c64(static_cast<std::uint64_t>(static_cast<std::int64_t>(imm))));
    }
    return b.CreateIntToPtr(addr, pointee->getPointerTo());
  }

  /// &payload[byte_offset] as an i64 pointer (typed payload words).
  llvm::Value* payload_word(std::int32_t byte_offset) {
    auto* raw = b.CreateConstInBoundsGEP1_64(i8, arg_payload, byte_offset);
    return b.CreateBitCast(raw, i64p);
  }

  llvm::Value* as_double(llvm::Value* bits) {
    return b.CreateBitCast(bits, f64);
  }
  llvm::Value* double_bits(llvm::Value* v) { return b.CreateBitCast(v, i64); }
  llvm::Value* as_float(llvm::Value* bits) {
    return b.CreateBitCast(b.CreateTrunc(bits, i32), f32);
  }
  llvm::Value* float_bits(llvm::Value* v) {
    return b.CreateZExt(b.CreateBitCast(v, i32), i64);
  }
  llvm::Value* bool_to_reg(llvm::Value* i1) { return b.CreateZExt(i1, i64); }

  void store_i32_result(std::uint8_t r, llvm::Value* rc) {
    st(r, b.CreateSExt(rc, i64));
  }
};

Status emit_hook(KirEmitter& e, vm::HookId hook, std::uint8_t dst,
                 std::uint8_t arg_base) {
  auto arg = [&](unsigned i) { return e.ld(arg_base + i); };
  auto arg_ptr = [&](unsigned i) {
    return e.b.CreateIntToPtr(arg(i), e.i8p);
  };
  switch (hook) {
    case vm::HookId::kTarget:
      e.st(dst, e.b.CreatePtrToInt(
                    e.b.CreateCall(
                        e.hook(abi::kHookTarget, e.i8p, {e.i8p}), {e.arg_ctx}),
                    e.i64));
      break;
    case vm::HookId::kNode:
      e.st(dst, e.b.CreateCall(e.hook(abi::kHookNode, e.i64, {e.i8p}),
                               {e.arg_ctx}));
      break;
    case vm::HookId::kPeerCount:
      e.st(dst, e.b.CreateCall(e.hook(abi::kHookPeerCount, e.i64, {e.i8p}),
                               {e.arg_ctx}));
      break;
    case vm::HookId::kSelfPeer:
      e.st(dst, e.b.CreateCall(e.hook(abi::kHookSelfPeer, e.i64, {e.i8p}),
                               {e.arg_ctx}));
      break;
    case vm::HookId::kShardBase:
      e.st(dst, e.b.CreatePtrToInt(
                    e.b.CreateCall(
                        e.hook(abi::kHookShardBase, e.i64p, {e.i8p}),
                        {e.arg_ctx}),
                    e.i64));
      break;
    case vm::HookId::kShardSize:
      e.st(dst, e.b.CreateCall(e.hook(abi::kHookShardSize, e.i64, {e.i8p}),
                               {e.arg_ctx}));
      break;
    case vm::HookId::kForward:
      e.store_i32_result(
          dst, e.b.CreateCall(
                   e.hook(abi::kHookForward, e.i32,
                          {e.i8p, e.i64, e.i8p, e.i64}),
                   {e.arg_ctx, arg(0), arg_ptr(1), arg(2)}));
      break;
    case vm::HookId::kInject:
      e.store_i32_result(
          dst, e.b.CreateCall(
                   e.hook(abi::kHookInject, e.i32,
                          {e.i8p, e.i64, e.i8p, e.i8p, e.i64}),
                   {e.arg_ctx, arg(0), arg_ptr(1), arg_ptr(2), arg(3)}));
      break;
    case vm::HookId::kReply:
      e.store_i32_result(
          dst, e.b.CreateCall(
                   e.hook(abi::kHookReply, e.i32, {e.i8p, e.i8p, e.i64}),
                   {e.arg_ctx, arg_ptr(0), arg(1)}));
      break;
    case vm::HookId::kRemoteWrite:
      e.store_i32_result(
          dst, e.b.CreateCall(
                   e.hook(abi::kHookRemoteWrite, e.i32,
                          {e.i8p, e.i64, e.i64, e.i8p, e.i64}),
                   {e.arg_ctx, arg(0), arg(1), arg_ptr(2), arg(3)}));
      break;
    case vm::HookId::kHllGuard:
      e.b.CreateCall(e.hook(abi::kHookHllGuard, e.void_ty, {e.i8p}),
                     {e.arg_ctx});
      break;
    case vm::HookId::kSin:
      // The libm.so.6 dependency, resolved on the target like any hook.
      e.st(dst, e.double_bits(e.b.CreateCall(
                    e.hook("sin", e.f64, {e.f64}), {e.as_double(arg(0))})));
      break;
    case vm::HookId::kShardInfo:
      // Same write order as the interpreter's one-op preamble.
      e.st(dst, e.b.CreateCall(e.hook(abi::kHookShardSize, e.i64, {e.i8p}),
                               {e.arg_ctx}));
      e.st(dst + 1,
           e.b.CreateCall(e.hook(abi::kHookSelfPeer, e.i64, {e.i8p}),
                          {e.arg_ctx}));
      e.st(dst + 2, e.b.CreatePtrToInt(
                        e.b.CreateCall(
                            e.hook(abi::kHookShardBase, e.i64p, {e.i8p}),
                            {e.arg_ctx}),
                        e.i64));
      e.st(dst + 3,
           e.b.CreateCall(e.hook(abi::kHookPeerCount, e.i64, {e.i8p}),
                          {e.arg_ctx}));
      break;
    default:
      return internal_error("kir: unknown hook in llvm backend");
  }
  return Status::ok();
}

llvm::Instruction::BinaryOps map_int_op(Op op) {
  switch (op) {
    case Op::kAdd: return llvm::Instruction::Add;
    case Op::kSub: return llvm::Instruction::Sub;
    case Op::kMul: return llvm::Instruction::Mul;
    case Op::kUdiv: return llvm::Instruction::UDiv;
    case Op::kUrem: return llvm::Instruction::URem;
    case Op::kAnd: return llvm::Instruction::And;
    case Op::kOr: return llvm::Instruction::Or;
    case Op::kXor: return llvm::Instruction::Xor;
    default: return llvm::Instruction::Shl;  // kShl/kShr handled separately
  }
}

Status emit_body(KirEmitter& e, const Def& def) {
  const std::size_t size = def.code.size();
  // Leaders: instruction 0, every branch target, and every instruction
  // after a control-flow op (the fallthrough successor of a conditional
  // branch needs its own block; code after ret/br gets a fresh — possibly
  // unreachable — block, which the LLVM verifier accepts).
  std::vector<bool> leader(size, false);
  leader[0] = true;
  for (std::size_t i = 0; i < size; ++i) {
    const Inst& in = def.code[i];
    switch (in.op) {
      case Op::kBr:
      case Op::kBrz:
      case Op::kBrnz:
        leader[in.imm] = true;
        if (i + 1 < size) leader[i + 1] = true;
        break;
      case Op::kRet:
        if (i + 1 < size) leader[i + 1] = true;
        break;
      default:
        break;
    }
  }
  std::vector<llvm::BasicBlock*> blocks(size, nullptr);
  for (std::size_t i = 0; i < size; ++i) {
    if (leader[i]) {
      blocks[i] = llvm::BasicBlock::Create(
          e.ctx, "i" + std::to_string(i), e.entry);
    }
  }
  // Entry block falls into the first leader.
  e.b.CreateBr(blocks[0]);

  for (std::size_t i = 0; i < size; ++i) {
    if (leader[i]) {
      // Fall into the leader from straight-line code above it.
      if (e.b.GetInsertBlock()->getTerminator() == nullptr) {
        e.b.CreateBr(blocks[i]);
      }
      e.b.SetInsertPoint(blocks[i]);
    }
    const Inst& in = def.code[i];
    switch (in.op) {
      case Op::kConst:
      case Op::kConstF:
        e.st(in.a, e.c64(in.wide));
        break;
      case Op::kMov:
        e.st(in.a, e.ld(in.b));
        break;
      case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kUdiv:
      case Op::kUrem: case Op::kAnd: case Op::kOr: case Op::kXor:
        e.st(in.a,
             e.b.CreateBinOp(map_int_op(in.op), e.ld(in.b), e.ld(in.c)));
        break;
      case Op::kShl:
        e.st(in.a, e.b.CreateShl(e.ld(in.b),
                                 e.b.CreateAnd(e.ld(in.c), e.c64(63))));
        break;
      case Op::kShr:
        e.st(in.a, e.b.CreateLShr(e.ld(in.b),
                                  e.b.CreateAnd(e.ld(in.c), e.c64(63))));
        break;
      case Op::kCeq:
        e.st(in.a, e.bool_to_reg(e.b.CreateICmpEQ(e.ld(in.b), e.ld(in.c))));
        break;
      case Op::kCne:
        e.st(in.a, e.bool_to_reg(e.b.CreateICmpNE(e.ld(in.b), e.ld(in.c))));
        break;
      case Op::kCult:
        e.st(in.a, e.bool_to_reg(e.b.CreateICmpULT(e.ld(in.b), e.ld(in.c))));
        break;
      case Op::kCule:
        e.st(in.a, e.bool_to_reg(e.b.CreateICmpULE(e.ld(in.b), e.ld(in.c))));
        break;
      case Op::kFadd:
        e.st(in.a, e.double_bits(e.b.CreateFAdd(e.as_double(e.ld(in.b)),
                                                e.as_double(e.ld(in.c)))));
        break;
      case Op::kFsub:
        e.st(in.a, e.double_bits(e.b.CreateFSub(e.as_double(e.ld(in.b)),
                                                e.as_double(e.ld(in.c)))));
        break;
      case Op::kFmul:
        e.st(in.a, e.double_bits(e.b.CreateFMul(e.as_double(e.ld(in.b)),
                                                e.as_double(e.ld(in.c)))));
        break;
      case Op::kFdiv:
        e.st(in.a, e.double_bits(e.b.CreateFDiv(e.as_double(e.ld(in.b)),
                                                e.as_double(e.ld(in.c)))));
        break;
      case Op::kFadd32:
        e.st(in.a, e.float_bits(e.b.CreateFAdd(e.as_float(e.ld(in.b)),
                                               e.as_float(e.ld(in.c)))));
        break;
      case Op::kFmul32:
        e.st(in.a, e.float_bits(e.b.CreateFMul(e.as_float(e.ld(in.b)),
                                               e.as_float(e.ld(in.c)))));
        break;
      case Op::kLd8:
        e.st(in.a, e.b.CreateZExt(
                       e.b.CreateLoad(e.i8, e.mem(in.b, in.imm, e.i8)),
                       e.i64));
        break;
      case Op::kLd32:
        e.st(in.a, e.b.CreateZExt(
                       e.b.CreateLoad(e.i32, e.mem(in.b, in.imm, e.i32)),
                       e.i64));
        break;
      case Op::kLd64:
        e.st(in.a, e.b.CreateLoad(e.i64, e.mem(in.b, in.imm, e.i64)));
        break;
      case Op::kSt32:
        e.b.CreateStore(e.b.CreateTrunc(e.ld(in.a), e.i32),
                        e.mem(in.b, in.imm, e.i32));
        break;
      case Op::kSt64:
        e.b.CreateStore(e.ld(in.a), e.mem(in.b, in.imm, e.i64));
        break;
      case Op::kLdPayload:
        e.st(in.a, e.b.CreateLoad(e.i64, e.payload_word(in.imm)));
        break;
      case Op::kStPayload:
        e.b.CreateStore(e.ld(in.a), e.payload_word(in.imm));
        break;
      case Op::kLdShardWord:
        e.st(in.a,
             e.b.CreateLoad(
                 e.i64,
                 e.mem(in.b,
                       in.imm * static_cast<std::int32_t>(
                                    workloads::kShardWordBytes),
                       e.i64)));
        break;
      case Op::kStShardWord:
        e.b.CreateStore(
            e.ld(in.a),
            e.mem(in.b,
                  in.imm * static_cast<std::int32_t>(
                               workloads::kShardWordBytes),
                  e.i64));
        break;
      case Op::kBr:
        e.b.CreateBr(blocks[in.imm]);
        break;
      case Op::kBrz:
        e.b.CreateCondBr(e.b.CreateICmpEQ(e.ld(in.a), e.c64(0)),
                         blocks[in.imm], blocks[i + 1]);
        break;
      case Op::kBrnz:
        e.b.CreateCondBr(e.b.CreateICmpNE(e.ld(in.a), e.c64(0)),
                         blocks[in.imm], blocks[i + 1]);
        break;
      case Op::kHook:
        TC_RETURN_IF_ERROR(emit_hook(e, in.hook, in.b, in.c));
        break;
      case Op::kForward:
        TC_RETURN_IF_ERROR(emit_hook(e, vm::HookId::kForward, in.a, in.c));
        break;
      case Op::kReply:
        TC_RETURN_IF_ERROR(emit_hook(e, vm::HookId::kReply, in.a, in.c));
        break;
      case Op::kRet:
        e.b.CreateRetVoid();
        break;
      case Op::kGuard:
      case Op::kTrace:
        return failed_precondition(
            "kir: " + def.name + " still carries " +
            std::string(op_name(in.op)) +
            " markers — emit from prepared_def(), not the raw def");
    }
  }
  return Status::ok();
}

}  // namespace

StatusOr<std::unique_ptr<llvm::Module>> build_kir_module(
    llvm::LLVMContext& context, const Def& def,
    const ir::TargetDescriptor& target) {
  TC_RETURN_IF_ERROR(verify(def));
  ir::initialize_llvm();
  TC_ASSIGN_OR_RETURN(auto machine, ir::make_target_machine(target));

  auto module = std::make_unique<llvm::Module>(def.name, context);
  module->setTargetTriple(ir::normalize_triple(target.triple));
  module->setDataLayout(machine->createDataLayout());

  KirEmitter e(context, *module);
  auto* fty = llvm::FunctionType::get(e.void_ty, {e.i8p, e.i8p, e.i64},
                                      /*vararg=*/false);
  e.entry = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                   abi::kEntryName, module.get());
  e.entry->getArg(0)->setName("ctx");
  e.entry->getArg(1)->setName("payload");
  e.entry->getArg(2)->setName("payload_size");
  e.arg_ctx = e.entry->getArg(0);
  e.arg_payload = e.entry->getArg(1);
  e.arg_size = e.entry->getArg(2);
  e.b.SetInsertPoint(llvm::BasicBlock::Create(context, "entry", e.entry));

  // One stack slot per KIR register; r0/r1 carry the entry ABI. mem2reg
  // turns these into SSA values during the JIT pipeline.
  e.regs.resize(def.reg_count);
  for (std::uint16_t r = 0; r < def.reg_count; ++r) {
    e.regs[r] = e.b.CreateAlloca(e.i64, nullptr, "r" + std::to_string(r));
  }
  e.st(0, e.b.CreatePtrToInt(e.arg_payload, e.i64));
  e.st(1, e.arg_size);

  TC_RETURN_IF_ERROR(emit_body(e, def));
  TC_RETURN_IF_ERROR(ir::verify_module(*module));
  return module;
}

StatusOr<ir::FatBitcode> build_kir_fat_kernel(
    ir::KernelKind kind, std::span<const ir::TargetDescriptor> targets,
    const ir::KernelOptions& options) {
  if (targets.empty()) {
    return invalid_argument("build_kir_fat_kernel: no targets");
  }
  TC_ASSIGN_OR_RETURN(Def def, prepared_def(kind, options));
  ir::FatBitcode archive(ir::CodeRepr::kBitcode);
  for (const ir::TargetDescriptor& target : targets) {
    llvm::LLVMContext context;
    TC_ASSIGN_OR_RETURN(auto module, build_kir_module(context, def, target));
    TC_RETURN_IF_ERROR(
        archive.add_entry(target, ir::module_to_bitcode(*module)));
  }
  return archive;
}

StatusOr<ir::FatBitcode> build_default_kir_fat_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options) {
  const auto targets = ir::default_fat_targets();
  return build_kir_fat_kernel(kind, targets, options);
}

}  // namespace tc::kir
