#include "kir/vm_backend.hpp"

#include "vm/lower.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::kir {

namespace {

StatusOr<vm::Opcode> map_alu(Op op) {
  switch (op) {
    case Op::kAdd: return vm::Opcode::kAdd;
    case Op::kSub: return vm::Opcode::kSub;
    case Op::kMul: return vm::Opcode::kMul;
    case Op::kUdiv: return vm::Opcode::kUdiv;
    case Op::kUrem: return vm::Opcode::kUrem;
    case Op::kAnd: return vm::Opcode::kAnd;
    case Op::kOr: return vm::Opcode::kOr;
    case Op::kXor: return vm::Opcode::kXor;
    case Op::kShl: return vm::Opcode::kShl;
    case Op::kShr: return vm::Opcode::kShr;
    case Op::kCeq: return vm::Opcode::kCeq;
    case Op::kCne: return vm::Opcode::kCne;
    case Op::kCult: return vm::Opcode::kCult;
    case Op::kCule: return vm::Opcode::kCule;
    case Op::kFadd: return vm::Opcode::kFadd;
    case Op::kFsub: return vm::Opcode::kFsub;
    case Op::kFmul: return vm::Opcode::kFmul;
    case Op::kFdiv: return vm::Opcode::kFdiv;
    case Op::kFadd32: return vm::Opcode::kFadd32;
    case Op::kFmul32: return vm::Opcode::kFmul32;
    default:
      return internal_error("kir: not an ALU op");
  }
}

}  // namespace

StatusOr<vm::Program> emit_vm(const Def& def) {
  TC_RETURN_IF_ERROR(verify(def));
  vm::Assembler a;
  // One vm label per branch-target instruction index; binding it right
  // before emitting that instruction reproduces the legacy lowerings'
  // bind() placement exactly.
  std::vector<vm::Assembler::Label> labels(def.code.size(), 0);
  std::vector<bool> is_target(def.code.size(), false);
  for (const Inst& in : def.code) {
    if (in.op == Op::kBr || in.op == Op::kBrz || in.op == Op::kBrnz) {
      is_target[in.imm] = true;
    }
  }
  for (std::size_t i = 0; i < def.code.size(); ++i) {
    if (is_target[i]) labels[i] = a.make_label();
  }
  for (std::size_t i = 0; i < def.code.size(); ++i) {
    if (is_target[i]) a.bind(labels[i]);
    const Inst& in = def.code[i];
    switch (in.op) {
      case Op::kConst:
      case Op::kConstF:
        // Same path for both: the assembler's li() makes the same
        // kLdi-vs-pool choice the legacy lf() made, since lf() always
        // spills (f64 bit patterns are never sext32).
        a.li(in.a, in.wide);
        break;
      case Op::kMov:
        a.mov(in.a, in.b);
        break;
      case Op::kLd8:
        a.ld8(in.a, in.b, in.imm);
        break;
      case Op::kLd32:
        a.ld32(in.a, in.b, in.imm);
        break;
      case Op::kLd64:
        a.ld64(in.a, in.b, in.imm);
        break;
      case Op::kSt32:
        a.st32(in.a, in.b, in.imm);
        break;
      case Op::kSt64:
        a.st64(in.a, in.b, in.imm);
        break;
      case Op::kLdPayload:
        a.ld64(in.a, vm::kRegPayload, in.imm);
        break;
      case Op::kStPayload:
        a.st64(in.a, vm::kRegPayload, in.imm);
        break;
      case Op::kLdShardWord:
        a.ld64(in.a, in.b,
               in.imm * static_cast<std::int32_t>(workloads::kShardWordBytes));
        break;
      case Op::kStShardWord:
        a.st64(in.a, in.b,
               in.imm * static_cast<std::int32_t>(workloads::kShardWordBytes));
        break;
      case Op::kBr:
        a.br(labels[in.imm]);
        break;
      case Op::kBrz:
        a.brz(in.a, labels[in.imm]);
        break;
      case Op::kBrnz:
        a.brnz(in.a, labels[in.imm]);
        break;
      case Op::kHook:
        a.hook(in.hook, in.b, in.c);
        break;
      case Op::kForward:
        a.hook(vm::HookId::kForward, in.a, in.c);
        break;
      case Op::kReply:
        a.hook(vm::HookId::kReply, in.a, in.c);
        break;
      case Op::kRet:
        a.ret();
        break;
      case Op::kGuard:
      case Op::kTrace:
        return failed_precondition(
            "kir: " + def.name + " still carries " +
            std::string(op_name(in.op)) +
            " markers — emit from prepared_def(), not the raw def");
      default: {
        TC_ASSIGN_OR_RETURN(vm::Opcode op, map_alu(in.op));
        a.alu(op, in.a, in.b, in.c);
        break;
      }
    }
  }
  return a.finish(def.reg_count);
}

}  // namespace tc::kir
