// kir→llvm: emits the JIT/AOT LLVM IR representation of a KIR definition.
// Compiled out (not in TC_SOURCES) under TC_WITH_LLVM=OFF.
//
// The emission is a direct register-machine translation: one i64 alloca
// per KIR register, one basic block per leader, hooks as calls to the
// tc_ctx_* ABI symbols of ir/abi.hpp with i32 results sign-extended —
// mem2reg and the ORC pipeline turn this into the same quality of code the
// hand-written IRBuilder emitters produce. The output is *value-equivalent*
// to the legacy emission, not byte-identical bitcode; production bitcode
// archives therefore still ship the legacy emission (its byte size rides
// wire frames that feed the sim's link timing), while the JIT differential
// suite compiles and runs this backend against the other two. Flipping
// production over is the documented follow-up in ROADMAP.md.
#pragma once

#include <memory>
#include <span>

#include <llvm/IR/LLVMContext.h>
#include <llvm/IR/Module.h>

#include "common/status.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernels.hpp"
#include "ir/target_info.hpp"
#include "kir/kir.hpp"

namespace tc::kir {

/// Builds one *prepared* def (guards resolved, traces stripped) as an LLVM
/// module implementing the `tc_main` entry ABI for the given target.
StatusOr<std::unique_ptr<llvm::Module>> build_kir_module(
    llvm::LLVMContext& context, const Def& def,
    const ir::TargetDescriptor& target);

/// Builds the KIR-sourced kernel for every target and packs a fat-bitcode
/// archive — the kir→llvm twin of ir::build_fat_kernel.
StatusOr<ir::FatBitcode> build_kir_fat_kernel(
    ir::KernelKind kind, std::span<const ir::TargetDescriptor> targets,
    const ir::KernelOptions& options = {});

/// Convenience: fat archive for default_fat_targets().
StatusOr<ir::FatBitcode> build_default_kir_fat_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options = {});

}  // namespace tc::kir
