#include "kir/am_backend.hpp"

#include <cmath>

#include "common/log.hpp"
#include "kir/eval.hpp"
#include "kir/kernels.hpp"

namespace tc::kir {

namespace {

double am_sin(double x) { return std::sin(x); }

}  // namespace

vm::HookTable am_hooks(am::AmContext& ctx) {
  vm::HookTable hooks;
  hooks.ctx = &ctx;
  hooks.target = [](void* c) {
    return static_cast<am::AmContext*>(c)->target_ptr;
  };
  hooks.node = [](void* c) -> std::uint64_t {
    return static_cast<am::AmContext*>(c)->node;
  };
  hooks.peer_count = [](void* c) -> std::uint64_t {
    const auto* peers = static_cast<am::AmContext*>(c)->peers;
    return peers == nullptr ? 0 : peers->size();
  };
  hooks.self_peer = [](void* c) -> std::uint64_t {
    return static_cast<am::AmContext*>(c)->self_peer;
  };
  hooks.shard_base = [](void* c) {
    return static_cast<am::AmContext*>(c)->shard_base;
  };
  hooks.shard_size = [](void* c) -> std::uint64_t {
    return static_cast<am::AmContext*>(c)->shard_size;
  };
  hooks.forward = [](void* c, std::uint64_t peer, const std::uint8_t* data,
                     std::uint64_t size) -> std::int32_t {
    auto* ctx = static_cast<am::AmContext*>(c);
    if (ctx->runtime == nullptr || ctx->peers == nullptr ||
        peer >= ctx->peers->size()) {
      return -1;
    }
    // Re-sends this handler's own index with the chain origin preserved —
    // the AM self-forward, mirroring ExecContext's forward.
    Status status =
        ctx->runtime->send((*ctx->peers)[peer], ctx->handler_index,
                           ByteSpan(data, size), ctx->origin_node);
    return status.is_ok() ? 0 : -1;
  };
  hooks.reply = [](void* c, const std::uint8_t* data,
                   std::uint64_t size) -> std::int32_t {
    auto* ctx = static_cast<am::AmContext*>(c);
    if (ctx->runtime == nullptr) return -1;
    Status status = ctx->runtime->reply(*ctx, ByteSpan(data, size));
    return status.is_ok() ? 0 : -1;
  };
  // inject/remote_write are ifunc-runtime operations with no AM analogue
  // (the AM baseline predeployes all code and has no exposed segments);
  // kernels that need them are not AM-portable, and a def that still calls
  // them observes the failure rc instead of a crash.
  hooks.inject = [](void*, std::uint64_t, const char*, const std::uint8_t*,
                    std::uint64_t) -> std::int32_t { return -1; };
  hooks.remote_write = [](void*, std::uint64_t, std::uint64_t,
                          const std::uint8_t*,
                          std::uint64_t) -> std::int32_t { return -1; };
  // Native AM handlers never carried HLL guards; the marker is a no-op
  // here rather than a fault so guarded defs stay AM-runnable.
  hooks.hll_guard = [](void*) {};
  hooks.sin_fn = am_sin;
  return hooks;
}

Status run_in_am_context(const Def& def, am::AmContext& ctx,
                         std::uint8_t* payload, std::uint64_t size) {
  vm::HookTable hooks = am_hooks(ctx);
  return evaluate(def, hooks, payload, size).status();
}

StatusOr<am::AmHandlerFn> make_am_handler(ir::KernelKind kind,
                                          const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(Def def, prepared_def(kind, options));
  return am::AmHandlerFn(
      [def = std::move(def)](am::AmContext& ctx, std::uint8_t* payload,
                             std::uint64_t size) {
        if (size < def.min_payload_bytes) {
          TC_LOG(kWarn, "kir") << "AM " << def.name << ": bad payload";
          return;
        }
        Status status = run_in_am_context(def, ctx, payload, size);
        if (!status.is_ok()) {
          TC_LOG(kWarn, "kir")
              << "AM " << def.name << ": " << status.message();
        }
      });
}

}  // namespace tc::kir
