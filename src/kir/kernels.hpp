// The KIR kernel catalogue: single-source definitions for the ported slice
// of the stock kernels (ir::kernel_source() == KernelSource::kKir).
//
// Each definition here is the one description all three backends consume:
// kir→vm (vm_backend.hpp) emits the portable bytecode, kir→llvm
// (llvm_backend.hpp, TC_WITH_LLVM only) emits the JIT/AOT IR, and kir→am
// (am_backend.hpp) runs the def directly as the predeployed AM handler.
//
// The defs are transcriptions of the hand-scheduled legacy lowerings
// (vm/lower.cpp) — including the superinstruction-fuser schedules of the
// hash probe — so the vm backend reproduces the legacy bytecode *byte for
// byte*; tests/kir_test.cpp pins that, which is what keeps the interpreter
// tier's per-instruction virtual-time charging (fig5–fig12) untouched by
// the port.
#pragma once

#include "common/status.hpp"
#include "ir/kernels.hpp"
#include "kir/kir.hpp"

namespace tc::kir {

/// True when `kind` has a KIR definition (a superset check: every kind
/// whose ir::kernel_source() is kKir must have one, and the catalogue
/// completeness test asserts it).
bool has_kernel_def(ir::KernelKind kind);

/// The *raw* definition: kGuard markers and kTrace annotations still
/// present (what tc_inspect dumps). Only options.chaser_tagged is consulted
/// here — guard emission is a pass, not an emission variant.
StatusOr<Def> kernel_def(ir::KernelKind kind, const ir::KernelOptions& options);

/// The backend-ready definition: guards resolved per options.hll_guards and
/// traces stripped. This is what vm::lower_kernel, the AM wrappers and the
/// LLVM backend consume.
StatusOr<Def> prepared_def(ir::KernelKind kind,
                           const ir::KernelOptions& options);

}  // namespace tc::kir
