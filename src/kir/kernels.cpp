#include "kir/kernels.hpp"

#include "vm/lower.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::kir {

namespace {

// The shared register conventions (vm/lower.hpp): KIR registers map one to
// one onto bytecode registers, so the same names apply.
constexpr std::uint8_t P = vm::kRegPayload;
constexpr std::uint8_t N = vm::kRegSize;
constexpr std::uint8_t A0 = vm::kRegArg0;
constexpr std::uint8_t A1 = vm::kRegArg1;
constexpr std::uint8_t A2 = vm::kRegArg2;

// `++*(uint64_t*)target`.
StatusOr<Def> def_tsi() {
  Builder b(vm::kKernelRegCount);
  b.guard();
  b.hook(vm::HookId::kTarget, 2);
  b.ld64(3, 2);
  b.iconst(4, 1);
  b.alu(Op::kAdd, 3, 3, 4);
  b.st64(3, 2);
  b.ret();
  return b.finish("tsi");
}

// Byte-sum of the payload into *(u64*)target.
StatusOr<Def> def_payload_sum() {
  Builder b(vm::kKernelRegCount);
  const auto done = b.make_label();
  b.iconst(2, 0);  // i
  b.iconst(3, 0);  // sum
  b.iconst(6, 1);
  const auto loop = b.loop();
  b.alu(Op::kCult, 4, 2, N);
  b.brz(4, done);
  b.guard();
  b.alu(Op::kAdd, 5, P, 2);
  b.ld8(5, 5);
  b.alu(Op::kAdd, 3, 3, 5);
  b.alu(Op::kAdd, 2, 2, 6);
  b.close_loop(loop);
  b.bind(done);
  b.hook(vm::HookId::kTarget, 4);
  b.st64(3, 4);
  b.ret();
  return b.finish("payload_sum");
}

// [n:u64][x:f64*n] → *(double*)target = Σx.
StatusOr<Def> def_vec_reduce() {
  Builder b(vm::kKernelRegCount);
  b.set_min_payload_bytes(8);
  const auto done = b.make_label();
  b.ld_payload(2, 0);  // n
  b.iconst(3, 0);      // acc = 0.0 (bit pattern 0)
  b.iconst(4, 0);      // i
  b.iconst(7, 1);
  b.iconst(8, 8);
  const auto loop = b.loop();
  b.alu(Op::kCult, 5, 4, 2);
  b.brz(5, done);
  b.guard();
  b.alu(Op::kMul, 5, 4, 8);
  b.alu(Op::kAdd, 5, P, 5);
  b.ld64(6, 5, 8);  // x[i] at payload + 8 + i*8
  b.alu(Op::kFadd, 3, 3, 6);
  b.alu(Op::kAdd, 4, 4, 7);
  b.close_loop(loop);
  b.bind(done);
  b.hook(vm::HookId::kTarget, 5);
  b.st64(3, 5);
  b.ret();
  return b.finish("vec_reduce");
}

// The DAPC chaser. Payload: [addr:u64][depth:u64], or — for the tagged
// (async-window) build-time variant — [addr][depth][tag]. The shard is the
// flat pointer table: one-word records (kChaseEntryWords).
StatusOr<Def> def_chaser(bool tagged) {
  Builder b(vm::kKernelRegCount);
  b.set_min_payload_bytes(tagged ? 24 : 16);
  b.set_shard_record_words(workloads::kChaseEntryWords);
  const auto local = b.make_label();
  const auto step = b.make_label();
  b.hook(vm::HookId::kShardSize, 2);
  b.hook(vm::HookId::kSelfPeer, 3);
  b.hook(vm::HookId::kShardBase, 4);
  b.ld_payload(5, 0);  // addr
  b.ld_payload(6, 8);  // depth
  b.iconst(10, 1);
  b.iconst(11, workloads::kShardWordBytes);
  const auto loop = b.loop();
  b.trace(0);  // chase hop
  b.alu(Op::kUdiv, 7, 5, 2);  // owner = addr / shard_size
  b.alu(Op::kCeq, 8, 7, 3);
  b.brnz(8, local);
  // forward: refresh the in-place payload, ship to the owning server (the
  // tagged variant's tail rides along untouched in bytes [16, 24)).
  b.st_payload(5, 0);
  b.st_payload(6, 8);
  b.mov(A0, 7);
  b.mov(A1, P);
  b.mov(A2, N);
  b.forward(8, A0);
  b.ret();
  b.bind(local);
  b.guard();
  b.alu(Op::kUrem, 8, 5, 2);  // slot
  b.alu(Op::kMul, 8, 8, 11);
  b.alu(Op::kAdd, 8, 4, 8);
  b.ld_shard_word(9, 8, 0);   // value
  b.alu(Op::kSub, 6, 6, 10);  // next_depth
  b.brnz(6, step);
  // finish: ReturnResult with the final value (tagged: plus the tag).
  b.st_payload(9, 0);
  if (tagged) {
    b.ld_payload(9, 16);  // tag
    b.st_payload(9, 8);
    b.iconst(11, 16);
  }
  b.mov(A1, P);
  b.mov(A2, 11);  // size = 8 (classic) or 16 (tagged)
  b.reply(8, A1);
  b.ret();
  b.bind(step);
  b.mov(5, 9);
  b.close_loop(loop);
  return b.finish(tagged ? "dapc_chaser_tagged" : "dapc_chaser");
}

// Ring traversal with TTL. Payload: [ttl:u64][hops:u64].
StatusOr<Def> def_ring_hop() {
  Builder b(vm::kKernelRegCount);
  b.set_min_payload_bytes(16);
  const auto done = b.make_label();
  b.ld_payload(2, 0);  // ttl
  b.ld_payload(3, 8);  // hops
  b.iconst(10, 1);
  b.brz(2, done);
  b.guard();
  b.alu(Op::kSub, 4, 2, 10);
  b.st_payload(4, 0);
  b.alu(Op::kAdd, 4, 3, 10);
  b.st_payload(4, 8);
  b.hook(vm::HookId::kSelfPeer, 5);
  b.hook(vm::HookId::kPeerCount, 6);
  b.alu(Op::kAdd, 4, 5, 10);
  b.alu(Op::kUrem, 4, 4, 6);  // next = (self+1) % count
  b.mov(A0, 4);
  b.mov(A1, P);
  b.mov(A2, N);
  b.forward(4, A0);
  b.ret();
  b.bind(done);
  b.iconst(4, 16);
  b.mov(A1, P);
  b.mov(A2, 4);
  b.reply(4, A1);
  b.ret();
  return b.finish("ring_hop");
}

// Remote hash-table lookup. Payload: [key:u64][slot:u64][probes_left:u64]
// [tag:u64] over {key, value} bucket records (kHashBucketWords). The
// schedule — including the consuming mov behind the entry li, the
// speculative value load, and the compare placement — is the legacy
// lowering's superinstruction-fuser schedule, kept verbatim so the fused
// interpreter tier sees the same runs (vm/lower.cpp documents it).
StatusOr<Def> def_hash_probe() {
  Builder b(vm::kKernelRegCount);
  b.set_min_payload_bytes(32);
  b.set_shard_record_words(workloads::kHashBucketWords);
  const auto fwd = b.make_label();
  const auto miss = b.make_label();
  const auto out = b.make_label();
  b.iconst(10, workloads::kHashBucketWords);
  b.mov(11, 10);
  b.hook(vm::HookId::kShardInfo, 2);  // r2 size, r3 self, r4 base, r5 count
  b.alu(Op::kUdiv, 8, 2, 10);         // buckets per shard
  b.alu(Op::kMul, 9, 8, 5);           // capacity = bps * peer_count
  b.ld_payload(6, 8);                 // slot
  b.ld_payload(7, 16);                // probes_left
  const auto loop = b.loop();
  b.trace(1);  // probe step
  b.iconst(11, 1);
  b.alu(Op::kMul, A0, 6, 11);   // slot copy seeds the run
  b.alu(Op::kUdiv, 10, A0, 8);  // owner
  b.alu(Op::kUrem, A0, A0, 8);  // local bucket
  b.alu(Op::kCeq, 11, 10, 3);
  b.brz(11, fwd);  // side exit: the chain left the shard
  b.guard();
  b.iconst(10, workloads::kHashBucketBytes);
  b.alu(Op::kMul, 10, A0, 10);
  b.alu(Op::kAdd, 10, 4, 10);  // record address
  b.ld_payload(5, 0);          // probe key
  b.ld_shard_word(11, 10, workloads::kHashKeyWord);
  b.ld_shard_word(2, 10, workloads::kHashValueWord);  // speculative
  b.alu(Op::kCeq, A1, 11, 5);
  b.brnz(A1, out);  // side exit: hit, r2 holds the value
  b.brz(11, miss);  // side exit: empty bucket, definitive miss
  b.iconst(2, 1);
  b.alu(Op::kSub, 7, 7, 2);  // --probes_left
  b.alu(Op::kAdd, 6, 6, 2);
  b.alu(Op::kUrem, 6, 6, 9);  // slot = (slot + 1) % capacity
  b.close_loop_nz(7, loop);   // back edge; falls through when drained
  b.bind(miss);
  b.iconst(2, workloads::kMiss);  // falls into the reply
  b.bind(out);
  b.iconst(11, 24);
  b.alu(Op::kAdd, 11, P, 11);  // &payload[24]
  b.st_payload(2, 0);
  b.ld64(11, 11, 0);  // tag
  b.st_payload(11, 8);
  b.mov(A1, P);
  b.iconst(A2, 16);
  b.reply(2, A1);
  b.ret();
  // Forward: refresh the in-place probe state, ship to the owning server.
  b.bind(fwd);
  b.iconst(A0, 8);
  b.alu(Op::kAdd, A0, P, A0);  // &payload[8]
  b.st64(6, A0, 0);
  b.st64(7, A0, 8);
  b.mov(A0, 10);
  b.mov(A1, P);
  b.mov(A2, N);
  b.forward(11, A0);
  b.ret();
  return b.finish("hash_probe");
}

}  // namespace

bool has_kernel_def(ir::KernelKind kind) {
  switch (kind) {
    case ir::KernelKind::kTargetSideIncrement:
    case ir::KernelKind::kPayloadSum:
    case ir::KernelKind::kVecReduce:
    case ir::KernelKind::kChaser:
    case ir::KernelKind::kRingHop:
    case ir::KernelKind::kHashProbe:
      return true;
    default:
      return false;
  }
}

StatusOr<Def> kernel_def(ir::KernelKind kind,
                         const ir::KernelOptions& options) {
  switch (kind) {
    case ir::KernelKind::kTargetSideIncrement: return def_tsi();
    case ir::KernelKind::kPayloadSum: return def_payload_sum();
    case ir::KernelKind::kVecReduce: return def_vec_reduce();
    case ir::KernelKind::kChaser: return def_chaser(options.chaser_tagged);
    case ir::KernelKind::kRingHop: return def_ring_hop();
    case ir::KernelKind::kHashProbe: return def_hash_probe();
    default:
      return not_found(std::string("kir: no definition for kernel ") +
                       ir::kernel_name(kind) +
                       " (still on the legacy emitters)");
  }
}

StatusOr<Def> prepared_def(ir::KernelKind kind,
                           const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(Def def, kernel_def(kind, options));
  return strip_traces(resolve_guards(std::move(def), options.hll_guards));
}

}  // namespace tc::kir
