// kir→vm: emits portable bytecode from a KIR definition.
//
// By construction a transcription, not a compilation: after the guard and
// trace passes, every remaining KIR instruction maps to exactly one
// bytecode instruction, so instruction indices — and therefore branch
// targets, the li/pool-spill choices and the serialized bytes — coincide
// with the legacy hand lowering the defs were transcribed from. The
// conformance suite pins that byte identity against vm::lower_kernel_legacy.
#pragma once

#include "common/status.hpp"
#include "kir/kir.hpp"
#include "vm/bytecode.hpp"

namespace tc::kir {

/// Emits the bytecode program for a *prepared* def (guards resolved, traces
/// stripped — see prepared_def()); a def still carrying kGuard/kTrace
/// markers is a failed_precondition.
StatusOr<vm::Program> emit_vm(const Def& def);

}  // namespace tc::kir
