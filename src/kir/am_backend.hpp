// kir→am, stage 2: KIR definitions as predeployed Active-Message handlers.
//
// Bridges the AmContext surface onto the vm::HookTable the evaluator (and
// the bytecode interpreter) consume — forward becomes
// AmRuntime::send(peers[i], handler_index, ...) with the chain origin
// preserved, reply becomes AmRuntime::reply — and wraps evaluation of a
// prepared def into an am::AmHandlerFn. The AM baseline stays the paper's
// lower bound: on the simulated fabric a handler invocation is charged the
// calibrated constant profile cost regardless of how the handler body is
// implemented, so routing AM execution through the evaluator leaves every
// figure byte-identical.
#pragma once

#include "am/am_runtime.hpp"
#include "common/status.hpp"
#include "ir/kernels.hpp"
#include "kir/kir.hpp"
#include "vm/interp.hpp"

namespace tc::kir {

/// A hook table over an AmContext: target/peer/shard queries read the
/// context, forward re-sends the handler's own index through the runtime
/// (origin preserved), reply sends a result frame to the chain origin.
/// inject/remote_write are not part of the AM surface and return -1;
/// hll_guard is a no-op (native AM handlers never carried guards); sin is
/// libm's. The returned table borrows `ctx` — it must outlive the table.
vm::HookTable am_hooks(am::AmContext& ctx);

/// Evaluates `def` once inside an AM handler invocation. Errors are
/// returned, not swallowed — callers decide whether to log-and-drop (the
/// handler contract) or propagate (tests).
Status run_in_am_context(const Def& def, am::AmContext& ctx,
                         std::uint8_t* payload, std::uint64_t size);

/// Builds the predeployed AM handler for a KIR-sourced kernel: evaluates
/// the prepared def, logging and dropping malformed invocations (payloads
/// below the def's declared floor) and evaluation faults, like the native
/// handlers it replaces.
StatusOr<am::AmHandlerFn> make_am_handler(ir::KernelKind kind,
                                          const ir::KernelOptions& options = {});

}  // namespace tc::kir
