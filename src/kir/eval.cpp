#include "kir/eval.hpp"

#include <bit>
#include <cstring>

#include "workloads/shard_layout.hpp"

namespace tc::kir {

namespace {

inline double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }

inline std::uint64_t f64_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

inline float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}

inline std::uint64_t f32_bits(float v) {
  return std::bit_cast<std::uint32_t>(v);
}

inline std::uint8_t* mem_addr(std::uint64_t base, std::int64_t offset) {
  return reinterpret_cast<std::uint8_t*>(base +
                                         static_cast<std::uint64_t>(offset));
}

// Tear-free aligned word accesses, mirroring the interpreter: on the
// real-threads backend handlers publish into memory other threads poll, and
// compiled code gets word-sized atomicity from the hardware.
template <typename T>
inline T load_word(const std::uint8_t* addr) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    return __atomic_load_n(reinterpret_cast<const T*>(addr), __ATOMIC_ACQUIRE);
  }
  T v;
  std::memcpy(&v, addr, sizeof(T));
  return v;
}

template <typename T>
inline void store_word(std::uint8_t* addr, T value) {
  if ((reinterpret_cast<std::uintptr_t>(addr) & (sizeof(T) - 1)) == 0) {
    __atomic_store_n(reinterpret_cast<T*>(addr), value, __ATOMIC_RELEASE);
    return;
  }
  std::memcpy(addr, &value, sizeof(T));
}

Status err_missing_hook(const char* name) {
  return failed_precondition("kir: " + std::string(name) +
                             " hook not provided");
}

Status do_hook(vm::HookId hook, std::uint8_t dst, std::uint8_t arg_base,
               const vm::HookTable& hooks, std::uint64_t* regs) {
  const std::uint64_t* args = &regs[arg_base];
  switch (hook) {
    case vm::HookId::kTarget:
      if (hooks.target == nullptr) return err_missing_hook("target");
      regs[dst] = reinterpret_cast<std::uint64_t>(hooks.target(hooks.ctx));
      break;
    case vm::HookId::kNode:
      if (hooks.node == nullptr) return err_missing_hook("node");
      regs[dst] = hooks.node(hooks.ctx);
      break;
    case vm::HookId::kPeerCount:
      if (hooks.peer_count == nullptr) return err_missing_hook("peer_count");
      regs[dst] = hooks.peer_count(hooks.ctx);
      break;
    case vm::HookId::kSelfPeer:
      if (hooks.self_peer == nullptr) return err_missing_hook("self_peer");
      regs[dst] = hooks.self_peer(hooks.ctx);
      break;
    case vm::HookId::kShardBase:
      if (hooks.shard_base == nullptr) return err_missing_hook("shard_base");
      regs[dst] = reinterpret_cast<std::uint64_t>(hooks.shard_base(hooks.ctx));
      break;
    case vm::HookId::kShardSize:
      if (hooks.shard_size == nullptr) return err_missing_hook("shard_size");
      regs[dst] = hooks.shard_size(hooks.ctx);
      break;
    case vm::HookId::kForward:
      if (hooks.forward == nullptr) return err_missing_hook("forward");
      regs[dst] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.forward(
              hooks.ctx, args[0],
              reinterpret_cast<const std::uint8_t*>(args[1]), args[2])));
      break;
    case vm::HookId::kInject:
      if (hooks.inject == nullptr) return err_missing_hook("inject");
      regs[dst] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.inject(
              hooks.ctx, args[0], reinterpret_cast<const char*>(args[1]),
              reinterpret_cast<const std::uint8_t*>(args[2]), args[3])));
      break;
    case vm::HookId::kReply:
      if (hooks.reply == nullptr) return err_missing_hook("reply");
      regs[dst] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.reply(
              hooks.ctx, reinterpret_cast<const std::uint8_t*>(args[0]),
              args[1])));
      break;
    case vm::HookId::kRemoteWrite:
      if (hooks.remote_write == nullptr) {
        return err_missing_hook("remote_write");
      }
      regs[dst] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(hooks.remote_write(
              hooks.ctx, args[0], args[1],
              reinterpret_cast<const std::uint8_t*>(args[2]), args[3])));
      break;
    case vm::HookId::kHllGuard:
      if (hooks.hll_guard == nullptr) return err_missing_hook("hll_guard");
      hooks.hll_guard(hooks.ctx);
      break;
    case vm::HookId::kSin:
      if (hooks.sin_fn == nullptr) return err_missing_hook("sin");
      regs[dst] = f64_bits(hooks.sin_fn(as_f64(args[0])));
      break;
    case vm::HookId::kShardInfo:
      if (hooks.shard_size == nullptr) return err_missing_hook("shard_size");
      if (hooks.self_peer == nullptr) return err_missing_hook("self_peer");
      if (hooks.shard_base == nullptr) return err_missing_hook("shard_base");
      if (hooks.peer_count == nullptr) return err_missing_hook("peer_count");
      regs[dst] = hooks.shard_size(hooks.ctx);
      regs[dst + 1] = hooks.self_peer(hooks.ctx);
      regs[dst + 2] =
          reinterpret_cast<std::uint64_t>(hooks.shard_base(hooks.ctx));
      regs[dst + 3] = hooks.peer_count(hooks.ctx);
      break;
  }
  return Status::ok();
}

}  // namespace

StatusOr<EvalResult> evaluate(const Def& def, const vm::HookTable& hooks,
                              std::uint8_t* payload,
                              std::uint64_t payload_size,
                              const EvalOptions& options) {
  TC_RETURN_IF_ERROR(verify(def));
  std::uint64_t regs[vm::kMaxRegisters] = {};
  regs[0] = reinterpret_cast<std::uint64_t>(payload);
  regs[1] = payload_size;
  EvalResult result;
  std::size_t pc = 0;
  while (true) {
    if (result.ops++ >= options.max_ops) {
      return resource_exhausted("kir: op budget (" +
                                std::to_string(options.max_ops) +
                                ") exhausted");
    }
    const Inst& in = def.code[pc];
    std::size_t next = pc + 1;
    switch (in.op) {
      case Op::kConst:
      case Op::kConstF:
        regs[in.a] = in.wide;
        break;
      case Op::kMov:
        regs[in.a] = regs[in.b];
        break;
      case Op::kAdd: regs[in.a] = regs[in.b] + regs[in.c]; break;
      case Op::kSub: regs[in.a] = regs[in.b] - regs[in.c]; break;
      case Op::kMul: regs[in.a] = regs[in.b] * regs[in.c]; break;
      case Op::kUdiv:
        if (regs[in.c] == 0) {
          return internal_error("kir: division by zero at instr " +
                                std::to_string(pc));
        }
        regs[in.a] = regs[in.b] / regs[in.c];
        break;
      case Op::kUrem:
        if (regs[in.c] == 0) {
          return internal_error("kir: remainder by zero at instr " +
                                std::to_string(pc));
        }
        regs[in.a] = regs[in.b] % regs[in.c];
        break;
      case Op::kAnd: regs[in.a] = regs[in.b] & regs[in.c]; break;
      case Op::kOr: regs[in.a] = regs[in.b] | regs[in.c]; break;
      case Op::kXor: regs[in.a] = regs[in.b] ^ regs[in.c]; break;
      case Op::kShl: regs[in.a] = regs[in.b] << (regs[in.c] & 63); break;
      case Op::kShr: regs[in.a] = regs[in.b] >> (regs[in.c] & 63); break;
      case Op::kCeq: regs[in.a] = regs[in.b] == regs[in.c] ? 1 : 0; break;
      case Op::kCne: regs[in.a] = regs[in.b] != regs[in.c] ? 1 : 0; break;
      case Op::kCult: regs[in.a] = regs[in.b] < regs[in.c] ? 1 : 0; break;
      case Op::kCule: regs[in.a] = regs[in.b] <= regs[in.c] ? 1 : 0; break;
      case Op::kFadd:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) + as_f64(regs[in.c]));
        break;
      case Op::kFsub:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) - as_f64(regs[in.c]));
        break;
      case Op::kFmul:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) * as_f64(regs[in.c]));
        break;
      case Op::kFdiv:
        regs[in.a] = f64_bits(as_f64(regs[in.b]) / as_f64(regs[in.c]));
        break;
      case Op::kFadd32:
        regs[in.a] = f32_bits(as_f32(regs[in.b]) + as_f32(regs[in.c]));
        break;
      case Op::kFmul32:
        regs[in.a] = f32_bits(as_f32(regs[in.b]) * as_f32(regs[in.c]));
        break;
      case Op::kLd8:
        regs[in.a] = *mem_addr(regs[in.b], in.imm);
        break;
      case Op::kLd32:
        regs[in.a] = load_word<std::uint32_t>(mem_addr(regs[in.b], in.imm));
        break;
      case Op::kLd64:
        regs[in.a] = load_word<std::uint64_t>(mem_addr(regs[in.b], in.imm));
        break;
      case Op::kSt32:
        store_word<std::uint32_t>(mem_addr(regs[in.b], in.imm),
                                  static_cast<std::uint32_t>(regs[in.a]));
        break;
      case Op::kSt64:
        store_word<std::uint64_t>(mem_addr(regs[in.b], in.imm), regs[in.a]);
        break;
      case Op::kLdPayload:
        regs[in.a] = load_word<std::uint64_t>(payload + in.imm);
        break;
      case Op::kStPayload:
        store_word<std::uint64_t>(payload + in.imm, regs[in.a]);
        break;
      case Op::kLdShardWord:
        regs[in.a] = load_word<std::uint64_t>(mem_addr(
            regs[in.b], in.imm * static_cast<std::int64_t>(
                                     workloads::kShardWordBytes)));
        break;
      case Op::kStShardWord:
        store_word<std::uint64_t>(
            mem_addr(regs[in.b],
                     in.imm * static_cast<std::int64_t>(
                                  workloads::kShardWordBytes)),
            regs[in.a]);
        break;
      case Op::kBr:
        next = static_cast<std::size_t>(in.imm);
        break;
      case Op::kBrz:
        if (regs[in.a] == 0) next = static_cast<std::size_t>(in.imm);
        break;
      case Op::kBrnz:
        if (regs[in.a] != 0) next = static_cast<std::size_t>(in.imm);
        break;
      case Op::kHook:
        TC_RETURN_IF_ERROR(do_hook(in.hook, in.b, in.c, hooks, regs));
        break;
      case Op::kForward:
        TC_RETURN_IF_ERROR(
            do_hook(vm::HookId::kForward, in.a, in.c, hooks, regs));
        break;
      case Op::kReply:
        TC_RETURN_IF_ERROR(
            do_hook(vm::HookId::kReply, in.a, in.c, hooks, regs));
        break;
      case Op::kGuard:
        // Raw-def marker: guarded when a guard hook is installed, a no-op
        // otherwise (prepared defs carry kHook(kHllGuard) instead, which
        // *requires* the hook — matching the interpreter).
        if (hooks.hll_guard != nullptr) hooks.hll_guard(hooks.ctx);
        break;
      case Op::kTrace:
        break;
      case Op::kRet:
        return result;
    }
    pc = next;
  }
}

}  // namespace tc::kir
