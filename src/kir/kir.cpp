#include "kir/kir.hpp"

#include <sstream>

namespace tc::kir {

namespace {

bool is_alu(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kUdiv:
    case Op::kUrem: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kShl: case Op::kShr: case Op::kCeq: case Op::kCne:
    case Op::kCult: case Op::kCule: case Op::kFadd: case Op::kFsub:
    case Op::kFmul: case Op::kFdiv: case Op::kFadd32: case Op::kFmul32:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  return op == Op::kBr || op == Op::kBrz || op == Op::kBrnz;
}

/// Ops execution can never fall through past.
bool is_terminator(Op op) { return op == Op::kRet || op == Op::kBr; }

Status err(const Def& def, std::size_t index, const std::string& what) {
  return invalid_argument("kir: " + def.name + " instr " +
                          std::to_string(index) + ": " + what);
}

/// Deletes every instruction matching `victim`, remapping branch targets so
/// a branch that landed on a deleted instruction lands on its successor.
Def erase_op(Def def, Op victim) {
  std::vector<std::int32_t> remap(def.code.size(), 0);
  std::int32_t next = 0;
  for (std::size_t i = 0; i < def.code.size(); ++i) {
    // A deleted instruction maps to the next kept one (deleted markers are
    // never terminal, so a successor always exists).
    remap[i] = next;
    if (def.code[i].op != victim) ++next;
  }
  std::vector<Inst> kept;
  kept.reserve(def.code.size());
  for (const Inst& in : def.code) {
    if (in.op == victim) continue;
    Inst out = in;
    if (is_branch(out.op)) out.imm = remap[out.imm];
    kept.push_back(out);
  }
  def.code = std::move(kept);
  return def;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kConstF: return "constf";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kUdiv: return "udiv";
    case Op::kUrem: return "urem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kCeq: return "ceq";
    case Op::kCne: return "cne";
    case Op::kCult: return "cult";
    case Op::kCule: return "cule";
    case Op::kFadd: return "fadd";
    case Op::kFsub: return "fsub";
    case Op::kFmul: return "fmul";
    case Op::kFdiv: return "fdiv";
    case Op::kFadd32: return "fadd32";
    case Op::kFmul32: return "fmul32";
    case Op::kLd8: return "ld8";
    case Op::kLd32: return "ld32";
    case Op::kLd64: return "ld64";
    case Op::kSt32: return "st32";
    case Op::kSt64: return "st64";
    case Op::kLdPayload: return "ld.payload";
    case Op::kStPayload: return "st.payload";
    case Op::kLdShardWord: return "ld.shard";
    case Op::kStShardWord: return "st.shard";
    case Op::kBr: return "br";
    case Op::kBrz: return "brz";
    case Op::kBrnz: return "brnz";
    case Op::kHook: return "hook";
    case Op::kForward: return "forward";
    case Op::kReply: return "reply";
    case Op::kGuard: return "guard";
    case Op::kTrace: return "trace";
    case Op::kRet: return "ret";
  }
  return "?";
}

Status verify(const Def& def) {
  if (def.reg_count < 2 || def.reg_count > vm::kMaxRegisters) {
    return invalid_argument("kir: " + def.name + ": register count " +
                            std::to_string(def.reg_count) +
                            " outside [2, " +
                            std::to_string(vm::kMaxRegisters) + "]");
  }
  if (def.code.empty()) {
    return invalid_argument("kir: " + def.name + ": empty definition");
  }
  const std::size_t size = def.code.size();
  auto check_reg = [&](std::size_t i, unsigned r) -> Status {
    if (r >= def.reg_count) {
      return err(def, i, "register r" + std::to_string(r) + " out of range");
    }
    return Status::ok();
  };
  auto check_target = [&](std::size_t i, std::int32_t target) -> Status {
    if (target < 0 || static_cast<std::size_t>(target) >= size) {
      return err(def, i,
                 "branch target " + std::to_string(target) + " out of range");
    }
    return Status::ok();
  };
  // kForward/kReply are terminal sends: the instruction after them must be
  // kRet, so a second send can never execute on the same path by falling
  // through (the double-send lockstep bug the legacy emitters could only
  // catch in review).
  auto check_terminal_send = [&](std::size_t i) -> Status {
    if (i + 1 >= size || def.code[i + 1].op != Op::kRet) {
      const char* what =
          (i + 1 < size && (def.code[i + 1].op == Op::kReply ||
                            def.code[i + 1].op == Op::kForward))
              ? "send after send on the same path (reply/forward must be "
                "immediately followed by ret)"
              : "forward/reply must be immediately followed by ret";
      return err(def, i, what);
    }
    return Status::ok();
  };

  for (std::size_t i = 0; i < size; ++i) {
    const Inst& in = def.code[i];
    if (is_alu(in.op)) {
      TC_RETURN_IF_ERROR(check_reg(i, in.a));
      TC_RETURN_IF_ERROR(check_reg(i, in.b));
      TC_RETURN_IF_ERROR(check_reg(i, in.c));
      continue;
    }
    switch (in.op) {
      case Op::kConst:
      case Op::kConstF:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        break;
      case Op::kMov:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_reg(i, in.b));
        break;
      case Op::kLd8:
      case Op::kLd32:
      case Op::kLd64:
      case Op::kSt32:
      case Op::kSt64:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_reg(i, in.b));
        break;
      case Op::kLdPayload:
      case Op::kStPayload:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        if (in.imm < 0) return err(def, i, "negative payload offset");
        if (def.min_payload_bytes != 0 &&
            static_cast<std::uint32_t>(in.imm) + 8 > def.min_payload_bytes) {
          return err(def, i,
                     "payload word at byte " + std::to_string(in.imm) +
                         " exceeds the declared " +
                         std::to_string(def.min_payload_bytes) +
                         "-byte payload floor");
        }
        break;
      case Op::kLdShardWord:
      case Op::kStShardWord:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_reg(i, in.b));
        if (in.imm < 0) return err(def, i, "negative shard word index");
        if (def.shard_record_words != 0 &&
            static_cast<std::uint32_t>(in.imm) >= def.shard_record_words) {
          return err(def, i,
                     "shard word " + std::to_string(in.imm) +
                         " out of range for a " +
                         std::to_string(def.shard_record_words) +
                         "-word record");
        }
        break;
      case Op::kBr:
        TC_RETURN_IF_ERROR(check_target(i, in.imm));
        break;
      case Op::kBrz:
      case Op::kBrnz:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_target(i, in.imm));
        break;
      case Op::kHook: {
        const auto id = static_cast<std::uint8_t>(in.hook);
        if (id >= vm::kHookCount) {
          return err(def, i, "unknown hook id " + std::to_string(id));
        }
        if (vm::hook_has_result(in.hook)) {
          TC_RETURN_IF_ERROR(
              check_reg(i, in.b + vm::hook_result_span(in.hook) - 1));
        }
        const unsigned arity = vm::hook_arity(in.hook);
        if (arity > 0) TC_RETURN_IF_ERROR(check_reg(i, in.c + arity - 1));
        break;
      }
      case Op::kForward:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_reg(i, in.c + 2));
        TC_RETURN_IF_ERROR(check_terminal_send(i));
        break;
      case Op::kReply:
        TC_RETURN_IF_ERROR(check_reg(i, in.a));
        TC_RETURN_IF_ERROR(check_reg(i, in.c + 1));
        TC_RETURN_IF_ERROR(check_terminal_send(i));
        break;
      case Op::kGuard:
      case Op::kTrace:
      case Op::kRet:
        break;
      default:
        return err(def, i, "bad opcode");
    }
  }
  if (!is_terminator(def.code.back().op)) {
    return invalid_argument("kir: " + def.name +
                            ": execution can fall off the end (last "
                            "instruction must be ret or br)");
  }
  return Status::ok();
}

Def resolve_guards(Def def, bool enable) {
  if (!enable) return erase_op(std::move(def), Op::kGuard);
  for (Inst& in : def.code) {
    if (in.op != Op::kGuard) continue;
    in = Inst{};
    in.op = Op::kHook;
    in.hook = vm::HookId::kHllGuard;
  }
  return def;
}

Def strip_traces(Def def) { return erase_op(std::move(def), Op::kTrace); }

std::string dump(const Def& def) {
  std::ostringstream out;
  out << "kernel " << def.name << "  regs=" << def.reg_count;
  if (def.min_payload_bytes != 0) {
    out << "  payload>=" << def.min_payload_bytes << "B";
  }
  if (def.shard_record_words != 0) {
    out << "  record=" << def.shard_record_words << "w";
  }
  out << "\n";
  for (std::size_t i = 0; i < def.code.size(); ++i) {
    const Inst& in = def.code[i];
    out << (i < 10 ? "  " : " ") << i << "  " << op_name(in.op);
    if (is_alu(in.op)) {
      out << " r" << unsigned(in.a) << ", r" << unsigned(in.b) << ", r"
          << unsigned(in.c);
    } else {
      switch (in.op) {
        case Op::kConst:
          out << " r" << unsigned(in.a) << ", " << in.wide;
          break;
        case Op::kConstF: {
          double v;
          static_assert(sizeof(v) == sizeof(in.wide));
          __builtin_memcpy(&v, &in.wide, sizeof(v));
          out << " r" << unsigned(in.a) << ", " << v;
          break;
        }
        case Op::kMov:
          out << " r" << unsigned(in.a) << ", r" << unsigned(in.b);
          break;
        case Op::kLd8:
        case Op::kLd32:
        case Op::kLd64:
          out << " r" << unsigned(in.a) << ", [r" << unsigned(in.b) << " + "
              << in.imm << "]";
          break;
        case Op::kSt32:
        case Op::kSt64:
          out << " [r" << unsigned(in.b) << " + " << in.imm << "], r"
              << unsigned(in.a);
          break;
        case Op::kLdPayload:
          out << " r" << unsigned(in.a) << ", payload[" << in.imm << "]";
          break;
        case Op::kStPayload:
          out << " payload[" << in.imm << "], r" << unsigned(in.a);
          break;
        case Op::kLdShardWord:
          out << " r" << unsigned(in.a) << ", r" << unsigned(in.b)
              << ".word" << in.imm;
          break;
        case Op::kStShardWord:
          out << " r" << unsigned(in.b) << ".word" << in.imm << ", r"
              << unsigned(in.a);
          break;
        case Op::kBr:
          out << " -> " << in.imm;
          break;
        case Op::kBrz:
        case Op::kBrnz:
          out << " r" << unsigned(in.a) << " -> " << in.imm;
          break;
        case Op::kHook:
          out << " " << vm::hook_name(in.hook) << ", r" << unsigned(in.b)
              << ", args r" << unsigned(in.c);
          break;
        case Op::kForward:
        case Op::kReply:
          out << " rc r" << unsigned(in.a) << ", args r" << unsigned(in.c);
          break;
        case Op::kTrace:
          out << " #" << in.imm;
          break;
        case Op::kGuard:
        case Op::kRet:
          break;
        default:
          break;
      }
    }
    out << "\n";
  }
  return out.str();
}

// --- Builder ------------------------------------------------------------------

void Builder::emit(Op op, std::uint8_t a, std::uint8_t b, std::uint8_t c,
                   std::int32_t imm, std::uint64_t wide, vm::HookId hook) {
  Inst in;
  in.op = op;
  in.a = a;
  in.b = b;
  in.c = c;
  in.imm = imm;
  in.wide = wide;
  in.hook = hook;
  code_.push_back(in);
}

Builder::Label Builder::make_label() {
  labels_.push_back(-1);
  return labels_.size() - 1;
}

void Builder::bind(Label label) {
  labels_[label] = static_cast<std::ptrdiff_t>(code_.size());
}

Builder::Label Builder::loop() {
  const Label head = make_label();
  bind(head);
  open_loops_.push_back(head);
  return head;
}

void Builder::close_loop(Label head) {
  br(head);
  if (!open_loops_.empty() && open_loops_.back() == head) {
    open_loops_.pop_back();
  }
}

void Builder::close_loop_nz(std::uint8_t cond, Label head) {
  brnz(cond, head);
  if (!open_loops_.empty() && open_loops_.back() == head) {
    open_loops_.pop_back();
  }
}

void Builder::iconst(std::uint8_t dst, std::uint64_t value) {
  emit(Op::kConst, dst, 0, 0, 0, value);
}

void Builder::fconst(std::uint8_t dst, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  __builtin_memcpy(&bits, &value, sizeof(bits));
  emit(Op::kConstF, dst, 0, 0, 0, bits);
}

void Builder::mov(std::uint8_t dst, std::uint8_t src) {
  emit(Op::kMov, dst, src);
}

void Builder::alu(Op op, std::uint8_t dst, std::uint8_t lhs,
                  std::uint8_t rhs) {
  emit(op, dst, lhs, rhs);
}

void Builder::ld8(std::uint8_t dst, std::uint8_t base, std::int32_t offset) {
  emit(Op::kLd8, dst, base, 0, offset);
}
void Builder::ld32(std::uint8_t dst, std::uint8_t base, std::int32_t offset) {
  emit(Op::kLd32, dst, base, 0, offset);
}
void Builder::ld64(std::uint8_t dst, std::uint8_t base, std::int32_t offset) {
  emit(Op::kLd64, dst, base, 0, offset);
}
void Builder::st32(std::uint8_t src, std::uint8_t base, std::int32_t offset) {
  emit(Op::kSt32, src, base, 0, offset);
}
void Builder::st64(std::uint8_t src, std::uint8_t base, std::int32_t offset) {
  emit(Op::kSt64, src, base, 0, offset);
}

void Builder::ld_payload(std::uint8_t dst, std::int32_t byte_offset) {
  emit(Op::kLdPayload, dst, 0, 0, byte_offset);
}
void Builder::st_payload(std::uint8_t src, std::int32_t byte_offset) {
  emit(Op::kStPayload, src, 0, 0, byte_offset);
}
void Builder::ld_shard_word(std::uint8_t dst, std::uint8_t record_base,
                            std::int32_t word) {
  emit(Op::kLdShardWord, dst, record_base, 0, word);
}
void Builder::st_shard_word(std::uint8_t src, std::uint8_t record_base,
                            std::int32_t word) {
  emit(Op::kStShardWord, src, record_base, 0, word);
}

void Builder::br(Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Op::kBr);
}
void Builder::brz(std::uint8_t cond, Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Op::kBrz, cond);
}
void Builder::brnz(std::uint8_t cond, Label target) {
  fixups_.emplace_back(code_.size(), target);
  emit(Op::kBrnz, cond);
}

void Builder::hook(vm::HookId hook, std::uint8_t dst, std::uint8_t arg_base) {
  emit(Op::kHook, 0, dst, arg_base, 0, 0, hook);
}

void Builder::forward(std::uint8_t rc, std::uint8_t arg_base) {
  emit(Op::kForward, rc, 0, arg_base);
}

void Builder::reply(std::uint8_t rc, std::uint8_t arg_base) {
  emit(Op::kReply, rc, 0, arg_base);
}

void Builder::guard() { emit(Op::kGuard); }

void Builder::trace(std::int32_t tag) { emit(Op::kTrace, 0, 0, 0, tag); }

void Builder::ret() { emit(Op::kRet); }

StatusOr<Def> Builder::finish(std::string name) {
  if (!open_loops_.empty()) {
    return invalid_argument(
        "kir: " + name + ": unterminated loop (" +
        std::to_string(open_loops_.size()) +
        " open loop scope(s) without a close_loop back edge)");
  }
  for (const auto& [at, label] : fixups_) {
    if (labels_[label] < 0) {
      return invalid_argument("kir: " + name + ": unbound label used at instr " +
                              std::to_string(at));
    }
    code_[at].imm = static_cast<std::int32_t>(labels_[label]);
  }
  Def def;
  def.name = std::move(name);
  def.reg_count = reg_count_;
  def.min_payload_bytes = min_payload_bytes_;
  def.shard_record_words = shard_record_words_;
  def.code = std::move(code_);
  TC_RETURN_IF_ERROR(verify(def));
  code_.clear();
  labels_.clear();
  fixups_.clear();
  open_loops_.clear();
  return def;
}

}  // namespace tc::kir
