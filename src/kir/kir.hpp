// KIR: the single-source kernel IR of the catalogue.
//
// One KIR definition per kernel generates every code representation this
// reproduction ships — the portable bytecode (kir→vm, src/kir/vm_backend),
// the LLVM IR for the JIT/AOT tiers (kir→llvm, src/kir/llvm_backend,
// compiled out under TC_WITH_LLVM=OFF), and the predeployed Active-Message
// handler (kir→am, a direct evaluator over the def) — replacing the three
// hand-synchronized emitters the legacy kernels keep in lockstep by review.
//
// The IR is deliberately tiny: SSA-free and register-oriented, mirroring
// the portable-bytecode machine one to one so that the vm backend is a
// transcription, not a compilation. Registers are 64-bit; r0/r1 carry the
// `tc_main(ctx, payload, size)` entry ABI (r0 = payload pointer, r1 =
// payload size, exactly vm::kRegPayload / vm::kRegSize); the hosting node
// is reachable only through hooks (vm::HookId — the tc_ctx_* ABI of
// ir/abi.hpp). Floating point rides the integer registers as IEEE-754 bit
// patterns, like the bytecode machine.
//
// On top of the raw machine the IR adds what the verifier needs to reject
// the lockstep bugs the legacy emitters could only catch in review:
//
//  * typed payload access (kLdPayload/kStPayload: static byte offset,
//    bounds-checked against the def's declared payload floor);
//  * typed shard-record access (kLdShardWord/kStShardWord: static word
//    index into a record whose base address sits in a register, checked
//    against the def's declared record width — the shared layouts of
//    workloads/shard_layout.hpp);
//  * terminal-send discipline: kForward/kReply must be immediately
//    followed by kRet (a reply emitted on a fallthrough path after a
//    forward — the classic double-send bug — is a verifier error);
//  * structured loops: the Builder tracks loop scopes and refuses to
//    finish() a def whose loop was never closed with a back edge;
//  * kGuard markers: the HLL frontend's dynamic-dispatch guard points are
//    part of the definition; a *pass* (resolve_guards) turns them into
//    tc_hll_guard hooks or deletes them, instead of the legacy scheme of
//    two parallel emission variants;
//  * kTrace annotation points, kept in dumps and stripped by backends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "vm/bytecode.hpp"

namespace tc::kir {

enum class Op : std::uint8_t {
  // --- constants / moves (wide carries the 64-bit value) -------------------
  kConst,   ///< r[a] = wide
  kConstF,  ///< r[a] = f64 bit pattern of wide
  kMov,     ///< r[a] = r[b]
  // --- 64-bit integer ALU (a = dst, b/c = operands) ------------------------
  kAdd, kSub, kMul, kUdiv, kUrem, kAnd, kOr, kXor, kShl, kShr,
  // --- compares: r[a] = (r[b] OP r[c]) ? 1 : 0 -----------------------------
  kCeq, kCne, kCult, kCule,
  // --- IEEE-754 double on full registers, float in the low 32 bits ---------
  kFadd, kFsub, kFmul, kFdiv, kFadd32, kFmul32,
  // --- raw memory: address = r[b] + imm ------------------------------------
  kLd8, kLd32, kLd64, kSt32, kSt64,
  // --- typed payload words: address = payload + imm (bounds-checked) -------
  kLdPayload,  ///< r[a] = *(u64*)(payload + imm)
  kStPayload,  ///< *(u64*)(payload + imm) = r[a]
  // --- typed shard-record words: address = r[b] + 8 * imm ------------------
  kLdShardWord,  ///< r[a] = record r[b]'s word imm
  kStShardWord,  ///< record r[b]'s word imm = r[a]
  // --- control flow: imm = target instruction index ------------------------
  kBr,
  kBrz,   ///< branch when r[a] == 0
  kBrnz,  ///< branch when r[a] != 0
  // --- runtime surface -----------------------------------------------------
  kHook,     ///< hook `hook`; b = result reg, c = first arg reg
  kForward,  ///< self-forward: args r[c]=peer, r[c+1]=ptr, r[c+2]=size; rc in r[a]
  kReply,    ///< reply to origin: args r[c]=ptr, r[c+1]=size; rc in r[a]
  kGuard,    ///< HLL dynamic-dispatch guard marker (see resolve_guards)
  kTrace,    ///< annotation-only trace point (imm = tag); backends strip it
  kRet,
};

const char* op_name(Op op);

struct Inst {
  Op op = Op::kRet;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  /// Branch target (instruction index), memory byte offset, shard word
  /// index, or trace tag, depending on op.
  std::int32_t imm = 0;
  /// kConst/kConstF payload.
  std::uint64_t wide = 0;
  /// kHook only.
  vm::HookId hook = vm::HookId::kTarget;
};

/// A verified kernel definition. Branch imms are final instruction indices
/// (the Builder resolves labels in finish()).
struct Def {
  std::string name;
  std::uint16_t reg_count = 0;
  /// Declared payload ABI floor in bytes; kLdPayload/kStPayload offsets are
  /// verified against it (0 = unchecked: the kernel guards sizes itself).
  std::uint32_t min_payload_bytes = 0;
  /// Declared shard record width in words; kLdShardWord/kStShardWord
  /// indices are verified against it (0 = the kernel takes no typed shard
  /// access). Use the kHash*/kIndex*/kCsr* constants of
  /// workloads/shard_layout.hpp.
  std::uint32_t shard_record_words = 0;
  std::vector<Inst> code;
};

/// Structural verification; Builder::finish() runs it, and backends may
/// re-run it on defs from other sources. Checks register ranges, branch
/// targets, hook ids and arg/result windows, typed payload/shard bounds,
/// terminal-send discipline (kForward/kReply immediately followed by kRet)
/// and that execution cannot fall off the end.
Status verify(const Def& def);

/// The HLL-guard pass: with `enable`, every kGuard marker becomes a
/// tc_hll_guard hook; without, markers are deleted (branch targets are
/// remapped, so a branch that landed on a guard lands on its successor —
/// exactly the legacy emitters' conditional-guard behavior).
Def resolve_guards(Def def, bool enable);

/// Deletes kTrace annotations (branch targets remapped). Backends require
/// trace-free input; dumps keep them.
Def strip_traces(Def def);

/// Human-readable listing (tc_inspect `kir` subcommand and test failures).
std::string dump(const Def& def);

/// Builder: the staged-emitter frontend for writing defs by hand. Mirrors
/// vm::Assembler (labels + fixups) and adds the loop discipline and typed
/// accessors the verifier checks.
class Builder {
 public:
  using Label = std::size_t;

  explicit Builder(std::uint16_t reg_count = 16) : reg_count_(reg_count) {}

  /// Declares the payload ABI floor / shard record width (see Def).
  void set_min_payload_bytes(std::uint32_t bytes) {
    min_payload_bytes_ = bytes;
  }
  void set_shard_record_words(std::uint32_t words) {
    shard_record_words_ = words;
  }

  Label make_label();
  void bind(Label label);

  /// Opens a loop scope: makes and binds the head label. Every loop() must
  /// be closed with close_loop()/close_loop_nz() before finish(), which is
  /// how "I wrote the exit branch but forgot the back edge" becomes a
  /// build-time error instead of a runaway kernel.
  Label loop();
  /// Emits the unconditional back edge `br head` and closes the scope.
  void close_loop(Label head);
  /// Emits the conditional back edge `brnz cond, head` (execution falls
  /// through when the loop drains) and closes the scope.
  void close_loop_nz(std::uint8_t cond, Label head);

  void iconst(std::uint8_t dst, std::uint64_t value);
  void fconst(std::uint8_t dst, double value);
  void mov(std::uint8_t dst, std::uint8_t src);
  void alu(Op op, std::uint8_t dst, std::uint8_t lhs, std::uint8_t rhs);

  void ld8(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void ld32(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void ld64(std::uint8_t dst, std::uint8_t base, std::int32_t offset = 0);
  void st32(std::uint8_t src, std::uint8_t base, std::int32_t offset = 0);
  void st64(std::uint8_t src, std::uint8_t base, std::int32_t offset = 0);

  void ld_payload(std::uint8_t dst, std::int32_t byte_offset);
  void st_payload(std::uint8_t src, std::int32_t byte_offset);
  void ld_shard_word(std::uint8_t dst, std::uint8_t record_base,
                     std::int32_t word);
  void st_shard_word(std::uint8_t src, std::uint8_t record_base,
                     std::int32_t word);

  void br(Label target);
  void brz(std::uint8_t cond, Label target);
  void brnz(std::uint8_t cond, Label target);

  void hook(vm::HookId hook, std::uint8_t dst, std::uint8_t arg_base = 0);
  void forward(std::uint8_t rc, std::uint8_t arg_base);
  void reply(std::uint8_t rc, std::uint8_t arg_base);
  void guard();
  void trace(std::int32_t tag);
  void ret();

  /// Resolves labels, checks the loop discipline, and verifies. The builder
  /// is left empty on success.
  StatusOr<Def> finish(std::string name);

 private:
  void emit(Op op, std::uint8_t a = 0, std::uint8_t b = 0, std::uint8_t c = 0,
            std::int32_t imm = 0, std::uint64_t wide = 0,
            vm::HookId hook = vm::HookId::kTarget);

  std::uint16_t reg_count_;
  std::uint32_t min_payload_bytes_ = 0;
  std::uint32_t shard_record_words_ = 0;
  std::vector<Inst> code_;
  std::vector<std::ptrdiff_t> labels_;  ///< -1 = unbound
  std::vector<std::pair<std::size_t, Label>> fixups_;
  std::vector<Label> open_loops_;
};

}  // namespace tc::kir
