// Endpoint: a directed communication handle from a local node to a remote
// node, analogous to a ucp_ep. Provides the four primitives the runtime is
// built on:
//   put   — one-sided write into remote registered memory (RDMA PUT)
//   get   — one-sided read from remote registered memory (RDMA GET)
//   am    — active message dispatched to a pre-registered remote handler
//   send  — two-sided message landing in the remote worker's receive queue
//
// All operations are nonblocking: they schedule fabric events and invoke the
// provided completion callback in virtual time. Completion callbacks may
// issue further operations (this is how recursive ifunc injection works).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "fabric/fabric.hpp"
#include "fabric/transport.hpp"

namespace tc::fabric {

class Endpoint {
 public:
  Endpoint(Fabric& fabric, NodeId local, NodeId remote)
      : fabric_(&fabric), local_(local), remote_(remote) {}

  NodeId local() const { return local_; }
  NodeId remote() const { return remote_; }
  Fabric& fabric() const { return *fabric_; }

  /// One-sided write of `data` to `dst` (which must be on remote()).
  /// `on_complete` fires at initiator completion time.
  void put(ByteSpan data, const RemoteAddr& dst, CompletionFn on_complete);

  /// One-sided read of `length` bytes from `src` on the remote node.
  void get(const RemoteAddr& src, std::size_t length,
           GetCompletionFn on_complete);

  /// Active message to remote handler `id`. The handler runs on the target
  /// node after the wire time elapses (serialized with its other work).
  void am(AmId id, ByteSpan payload, CompletionFn on_complete);

  /// Two-sided eager send into the remote worker's receive queue.
  void send(ByteSpan data, CompletionFn on_complete);

  /// Two-sided send of a *coalesced* message carrying `fragments` logical
  /// frames (a core::Runtime batch container). Delivery is identical to
  /// send(); the injection channel is charged one per-message gap plus the
  /// link's per-item batch cost per extra fragment, which is what makes
  /// coalescing cheaper than `fragments` back-to-back sends.
  void send_batch(ByteSpan data, std::size_t fragments,
                  CompletionFn on_complete);

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t ams = 0;
    std::uint64_t sends = 0;
    std::uint64_t batch_sends = 0;      ///< coalesced wire messages
    std::uint64_t batched_fragments = 0;  ///< logical frames inside them
    std::uint64_t bytes_put = 0;
    std::uint64_t bytes_got = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Shared body of send()/send_batch(): one two-sided delivery whose
  /// injection occupancy accounts for `fragments` logical frames.
  void send_impl(ByteSpan data, std::size_t fragments,
                 CompletionFn on_complete);

  std::int64_t wire_ns(std::size_t size) const {
    return fabric_->link(local_, remote_).transmit_ns(size);
  }

  Fabric* fabric_;
  NodeId local_;
  NodeId remote_;
  Stats stats_;
};

}  // namespace tc::fabric
