// Link timing model for the simulated RDMA fabric.
//
// The paper's testbeds are ConnectX-6 100 Gb/s InfiniBand fabrics. Two
// distinct timing paths are modeled, because the paper's measurements imply
// different effective costs for them:
//
//  * latency path — one-way delivery time of a single message:
//        latency_ns + per_op_ns + size * ns_per_byte
//    ns_per_byte here is the *small-message effective* inverse bandwidth
//    (well below line rate), calibrated from the cached/uncached
//    transmission deltas in Tables I-III.
//
//  * occupancy path — how long one message holds the injection channel when
//    messages are pipelined (message-rate experiments):
//        gap_{send|am}_ns + size * gap_ns_per_byte
//    The AM class carries a higher per-message gap than the PUT/send class
//    (UCP AM protocol work vs one-sided writes), which is why cached ifuncs
//    beat Active Messages on message rate in Tables IV-VI while latency
//    stays comparable.
#pragma once

#include <cstdint>

namespace tc::fabric {

/// Virtual time in nanoseconds since simulation start.
using VirtTime = std::int64_t;

/// Operation class for injection-channel accounting.
enum class OpClass : std::uint8_t { kSend = 0, kAm = 1 };

struct LinkModel {
  // latency path
  std::int64_t latency_ns = 1000;  ///< propagation + NIC traversal
  double ns_per_byte = 0.4;        ///< inverse small-message bandwidth
  std::int64_t per_op_ns = 0;      ///< fixed initiator/target op overhead

  // occupancy path
  double gap_ns_per_byte = 0.4;    ///< inverse streaming bandwidth
  std::int64_t gap_send_ns = 0;    ///< per-message gap, PUT/send class
  std::int64_t gap_am_ns = 0;      ///< per-message gap, AM class
  /// Injection cost of each *additional* sub-frame in a batched (coalesced)
  /// message: the doorbell/descriptor work the NIC still pays per logical
  /// frame, but without the full per-message gap. Calibrated per platform;
  /// must stay well below gap_send_ns for batching to pay off.
  std::int64_t gap_batch_item_ns = 0;

  /// One-way wire time for a message of `size` bytes.
  constexpr std::int64_t transmit_ns(std::size_t size) const {
    return latency_ns + static_cast<std::int64_t>(ns_per_byte * size) +
           per_op_ns;
  }

  /// Full round-trip time for a GET of `size` bytes: request (header-only)
  /// plus response carrying the data.
  constexpr std::int64_t round_trip_ns(std::size_t size) const {
    return transmit_ns(0) + transmit_ns(size);
  }

  /// Injection-channel occupancy of one message.
  constexpr std::int64_t occupancy_ns(std::size_t size, OpClass cls) const {
    const std::int64_t gap =
        cls == OpClass::kAm ? gap_am_ns : gap_send_ns;
    return gap + static_cast<std::int64_t>(gap_ns_per_byte * size);
  }

  /// Injection-channel occupancy of one *coalesced* message carrying
  /// `fragments` logical frames: one full per-message gap plus the (much
  /// smaller) per-item cost for each extra fragment. With fragments == 1
  /// this is exactly occupancy_ns — an unbatched send costs the same
  /// whether or not batching is enabled.
  constexpr std::int64_t batch_occupancy_ns(std::size_t size,
                                            std::size_t fragments,
                                            OpClass cls) const {
    const std::int64_t extra =
        fragments > 1
            ? static_cast<std::int64_t>(fragments - 1) * gap_batch_item_ns
            : 0;
    return occupancy_ns(size, cls) + extra;
  }
};

/// A zero-latency, infinite-bandwidth link used by unit tests that only care
/// about functional behaviour.
constexpr LinkModel instant_link() { return {0, 0.0, 0, 0.0, 0, 0, 0}; }

}  // namespace tc::fabric
