// Registered-memory domain: the simulated analogue of ibv_reg_mr / UCP
// memory mapping. Remote one-sided operations (PUT/GET) must name a region
// by rkey and stay within its bounds; violations surface as kOutOfRange,
// mirroring a remote-access fault on real hardware.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace tc::fabric {

using NodeId = std::uint32_t;
using RKey = std::uint64_t;

/// A remotely addressable location: (node, registered region, byte offset).
struct RemoteAddr {
  NodeId node = 0;
  RKey rkey = 0;
  std::uint64_t offset = 0;
};

/// Registration record returned to the owner of the memory.
struct MemRegion {
  RKey rkey = 0;
  std::uint8_t* base = nullptr;
  std::size_t length = 0;

  RemoteAddr remote_addr(NodeId node, std::uint64_t offset = 0) const {
    return {node, rkey, offset};
  }
};

/// Per-node registry of exposed memory. Not thread-safe: the fabric is a
/// single-threaded discrete-event simulation by design (determinism).
class MemoryDomain {
 public:
  /// Registers [base, base+length) for remote access and mints an rkey.
  StatusOr<MemRegion> register_memory(void* base, std::size_t length);

  /// Revokes an rkey. In-flight operations targeting it will fault.
  Status deregister(RKey rkey);

  /// Validates an access and returns the local pointer it maps to.
  StatusOr<std::uint8_t*> translate(RKey rkey, std::uint64_t offset,
                                    std::size_t length) const;

  std::size_t region_count() const { return regions_.size(); }

 private:
  std::unordered_map<RKey, MemRegion> regions_;
  RKey next_rkey_ = 1;
};

}  // namespace tc::fabric
