#include "fabric/shm_transport.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/log.hpp"

namespace tc::fabric {

namespace {
// Depth of progress() frames on this thread. Used to decide whether a
// blocked producer may drain its own rings (top-level post) or must just
// wait (posting from inside a handler — the dedicated progress loop will
// resume draining as soon as the handler returns).
thread_local int g_progress_depth = 0;
}  // namespace

ShmTransport::ShmTransport(std::size_t node_count, ShmTransportOptions options)
    : options_(options) {
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<NodeState>());
  }
  rings_.resize(node_count * node_count);
  for (std::size_t src = 0; src < node_count; ++src) {
    for (std::size_t dst = 0; dst < node_count; ++dst) {
      if (src == dst) continue;  // loopback is delivered inline
      rings_[src * node_count + dst] =
          std::make_unique<SpscRing<Op>>(options_.ring_capacity);
    }
  }
}

ShmTransport::~ShmTransport() { stop_progress_threads(); }

std::int64_t ShmTransport::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StatusOr<MemRegion> ShmTransport::allocate_window(NodeId node,
                                                  std::size_t length) {
  if (length == 0) return invalid_argument("allocate_window: empty window");
  std::uint8_t* base = nullptr;
  {
    std::lock_guard lock(arena_mu_);
    arena_.emplace_back(length);
    base = arena_.back().data();
  }
  return register_window(node, base, length);
}

void ShmTransport::start_progress_threads(const std::vector<NodeId>& nodes) {
  for (NodeId node : nodes) {
    threads_.emplace_back([this, node] {
      int idle_spins = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        if (progress(node)) {
          idle_spins = 0;
          continue;
        }
        // Back off gradually: stay hot right after traffic, then yield,
        // then nap so an idle 8-node transport is not 8 spinning cores.
        if (++idle_spins < 64) continue;
        if (idle_spins < 1024) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
}

void ShmTransport::stop_progress_threads() {
  stop_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  stop_.store(false, std::memory_order_relaxed);
}

std::uint64_t ShmTransport::stash_completion(NodeId node, CompletionFn cb) {
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.completions_mu);
  const std::uint64_t cid = state.next_cid++;
  state.completions.emplace(cid, std::move(cb));
  return cid;
}

std::uint64_t ShmTransport::stash_get_completion(NodeId node,
                                                 GetCompletionFn cb) {
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.completions_mu);
  const std::uint64_t cid = state.next_cid++;
  state.get_completions.emplace(cid, std::move(cb));
  return cid;
}

void ShmTransport::push_op(NodeId src, NodeId dst, Op op) {
  if (src == dst) {
    // Loopback: no wire, the initiator's context is the target's context.
    handle_op(dst, op);
    return;
  }
  ops_pushed_.fetch_add(1, std::memory_order_relaxed);
  SpscRing<Op>& r = ring(src, dst);
  if (r.try_push(op)) return;
  producer_stalls_.fetch_add(1, std::memory_order_relaxed);
  // Backpressure rules, in order:
  //  * a stopping transport drops the op — a blocked producer must never
  //    keep stop_progress_threads()/teardown from joining;
  //  * below the nesting cap, drain our own rings while we wait (dispatch
  //    is re-entrant by contract), which breaks the cycle of two nodes
  //    blocked on each other's full rings;
  //  * at the cap, just yield — the consumer side owes us space;
  //  * past full_ring_wait_ms the consumer is considered wedged: stop
  //    waiting and fail the op's completion with the shared
  //    backpressure_status() so the runtime's retry policy takes over —
  //    the same signal the socket backend's full tx queue reports.
  constexpr int kMaxNestedProgress = 8;
  const std::int64_t deadline =
      now_ns() + options_.full_ring_wait_ms * 1'000'000;
  std::uint32_t spins = 0;
  while (!r.try_push(op)) {
    if (stop_.load(std::memory_order_relaxed)) {
      ops_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if ((++spins & 0x3F) == 0 && now_ns() > deadline) {
      backpressure_failures_.fetch_add(1, std::memory_order_relaxed);
      fail_op_backpressure(src, dst, op);
      return;
    }
    if (g_progress_depth < kMaxNestedProgress) {
      progress(src);
    } else {
      std::this_thread::yield();
    }
  }
}

void ShmTransport::fail_op_backpressure(NodeId src, NodeId dst, Op& op) {
  switch (op.kind) {
    case Op::Kind::kAck:
    case Op::Kind::kGetAck:
      // The completion this ack routes to lives on the *peer*; all we can
      // do is drop it and let the peer's watchdog surface the loss.
      ops_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    case Op::Kind::kGet: {
      GetCompletionFn cb;
      {
        NodeState& state = *nodes_[src];
        std::lock_guard lock(state.completions_mu);
        auto it = state.get_completions.find(op.cid);
        if (it != state.get_completions.end()) {
          cb = std::move(it->second);
          state.get_completions.erase(it);
        }
      }
      if (cb) cb(backpressure_status(src, dst));
      return;
    }
    default: {
      if (op.cid == 0) return;  // fire-and-forget: nothing to fail
      CompletionFn cb;
      {
        NodeState& state = *nodes_[src];
        std::lock_guard lock(state.completions_mu);
        auto it = state.completions.find(op.cid);
        if (it != state.completions.end()) {
          cb = std::move(it->second);
          state.completions.erase(it);
        }
      }
      if (cb) cb(backpressure_status(src, dst));
      return;
    }
  }
}

bool ShmTransport::fire_due_timers(NodeId node) {
  NodeState& state = *nodes_[node];
  std::vector<std::function<void()>> due;
  {
    std::lock_guard lock(state.timers_mu);
    if (state.timers.empty()) return false;
    const std::int64_t now = now_ns();
    for (std::size_t i = 0; i < state.timers.size();) {
      if (state.timers[i].deadline_ns <= now) {
        due.push_back(std::move(state.timers[i].fn));
        state.timers[i] = std::move(state.timers.back());
        state.timers.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (auto& fn : due) fn();
  return !due.empty();
}

bool ShmTransport::progress(NodeId node) {
  ++g_progress_depth;
  bool did_work = fire_due_timers(node);
  const std::size_t n = nodes_.size();
  Op op;
  for (NodeId src = 0; src < n; ++src) {
    if (src == node) continue;
    SpscRing<Op>& r = ring(src, node);
    while (r.try_pop(op)) {
      ops_drained_.fetch_add(1, std::memory_order_relaxed);
      handle_op(node, op);
      did_work = true;
    }
  }
  --g_progress_depth;
  return did_work;
}

void ShmTransport::handle_op(NodeId node, Op& op) {
  NodeState& state = *nodes_[node];
  switch (op.kind) {
    case Op::Kind::kSend: {
      state.worker.deliver_message(std::move(op.data), op.src);
      if (op.cid != 0) {
        Op ack;
        ack.kind = Op::Kind::kAck;
        ack.src = node;
        ack.cid = op.cid;
        push_op(node, op.src, std::move(ack));
      }
      break;
    }
    case Op::Kind::kAm: {
      Status status = state.worker.deliver_am(op.am_id, std::move(op.data),
                                              op.src);
      if (op.cid != 0) {
        Op ack;
        ack.kind = Op::Kind::kAck;
        ack.src = node;
        ack.cid = op.cid;
        ack.status = std::move(status);
        push_op(node, op.src, std::move(ack));
      }
      break;
    }
    case Op::Kind::kPut: {
      Status status = Status::ok();
      {
        std::lock_guard lock(state.mem_mu);
        auto target = state.memory.translate(op.rkey, op.offset,
                                             op.data.size());
        if (target.is_ok()) {
          std::memcpy(*target, op.data.data(), op.data.size());
        } else {
          status = target.status();
        }
      }
      if (op.cid != 0) {
        Op ack;
        ack.kind = Op::Kind::kAck;
        ack.src = node;
        ack.cid = op.cid;
        ack.status = std::move(status);
        push_op(node, op.src, std::move(ack));
      }
      break;
    }
    case Op::Kind::kGet: {
      Op ack;
      ack.kind = Op::Kind::kGetAck;
      ack.src = node;
      ack.cid = op.cid;
      {
        std::lock_guard lock(state.mem_mu);
        auto source = state.memory.translate(op.rkey, op.offset, op.length);
        if (source.is_ok()) {
          ack.data.assign(*source, *source + op.length);
        } else {
          ack.status = source.status();
        }
      }
      push_op(node, op.src, std::move(ack));
      break;
    }
    case Op::Kind::kAck: {
      CompletionFn cb;
      {
        std::lock_guard lock(state.completions_mu);
        auto it = state.completions.find(op.cid);
        if (it != state.completions.end()) {
          cb = std::move(it->second);
          state.completions.erase(it);
        }
      }
      if (cb) cb(std::move(op.status));
      break;
    }
    case Op::Kind::kGetAck: {
      GetCompletionFn cb;
      {
        std::lock_guard lock(state.completions_mu);
        auto it = state.get_completions.find(op.cid);
        if (it != state.get_completions.end()) {
          cb = std::move(it->second);
          state.get_completions.erase(it);
        }
      }
      if (cb) {
        if (op.status.is_ok()) {
          cb(std::move(op.data));
        } else {
          cb(std::move(op.status));
        }
      }
      break;
    }
  }
}

void ShmTransport::post_send(NodeId src, NodeId dst, ByteSpan data,
                             std::size_t fragments,
                             CompletionFn on_complete) {
  Op op;
  op.kind = Op::Kind::kSend;
  op.src = src;
  op.fragments = fragments;
  op.data.assign(data.begin(), data.end());
  if (on_complete) op.cid = stash_completion(src, std::move(on_complete));
  push_op(src, dst, std::move(op));
}

void ShmTransport::post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
                           CompletionFn on_complete) {
  Op op;
  op.kind = Op::Kind::kAm;
  op.src = src;
  op.am_id = id;
  op.data.assign(payload.begin(), payload.end());
  if (on_complete) op.cid = stash_completion(src, std::move(on_complete));
  push_op(src, dst, std::move(op));
}

void ShmTransport::post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                            CompletionFn on_complete) {
  Op op;
  op.kind = Op::Kind::kPut;
  op.src = src;
  op.rkey = dst.rkey;
  op.offset = dst.offset;
  op.data.assign(data.begin(), data.end());
  if (on_complete) op.cid = stash_completion(src, std::move(on_complete));
  push_op(src, dst.node, std::move(op));
}

void ShmTransport::post_get(NodeId src, const RemoteAddr& addr,
                            std::size_t length, GetCompletionFn on_complete) {
  Op op;
  op.kind = Op::Kind::kGet;
  op.src = src;
  op.rkey = addr.rkey;
  op.offset = addr.offset;
  op.length = length;
  op.cid = stash_get_completion(src, std::move(on_complete));
  push_op(src, addr.node, std::move(op));
}

StatusOr<MemRegion> ShmTransport::register_window(NodeId node, void* base,
                                                  std::size_t length) {
  if (node >= nodes_.size()) {
    return invalid_argument("register_window: no node " +
                            std::to_string(node));
  }
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.mem_mu);
  return state.memory.register_memory(base, length);
}

Status ShmTransport::expose_segment(NodeId node, void* base,
                                    std::size_t length) {
  if (node >= nodes_.size()) {
    return invalid_argument("expose_segment: no node " + std::to_string(node));
  }
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.mem_mu);
  if (state.exposed.has_value()) {
    return already_exists("node " + std::to_string(node) +
                          " already exposes a segment");
  }
  auto region = state.memory.register_memory(base, length);
  if (!region.is_ok()) return region.status();
  state.exposed = *region;
  return Status::ok();
}

std::optional<MemRegion> ShmTransport::exposed_segment(NodeId node) const {
  const NodeState& state = *nodes_[node];
  std::lock_guard lock(state.mem_mu);
  return state.exposed;
}

Status ShmTransport::register_am_handler(NodeId node, AmId id,
                                         AmHandler handler) {
  if (node >= nodes_.size()) {
    return invalid_argument("register_am_handler: no node " +
                            std::to_string(node));
  }
  return nodes_[node]->worker.register_am(id, std::move(handler));
}

Status ShmTransport::unregister_am_handler(NodeId node, AmId id) {
  return nodes_[node]->worker.unregister_am(id);
}

std::optional<ReceivedMessage> ShmTransport::try_recv(NodeId node) {
  return nodes_[node]->worker.try_recv();
}

void ShmTransport::set_delivery_notifier(NodeId node,
                                         std::function<void()> notify) {
  nodes_[node]->worker.set_delivery_notifier(std::move(notify));
}

void ShmTransport::execute_on(NodeId node, std::int64_t cost_ns,
                              std::function<void()> fn, bool scale_cost) {
  // Wall-clock backend: the modeled charge is a no-op (real work takes real
  // time) and the caller is, per the Transport contract, already on the
  // node's progress context — run inline, preserving the "effects happen
  // after the charged work" ordering trivially.
  (void)node;
  (void)cost_ns;
  (void)scale_cost;
  fn();
}

void ShmTransport::schedule_after(NodeId node, std::int64_t delay_ns,
                                  std::function<void()> fn) {
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.timers_mu);
  state.timers.push_back(Timer{now_ns() + delay_ns, std::move(fn)});
}

Status ShmTransport::run_until(NodeId node,
                               const std::function<bool()>& pred) {
  const std::int64_t deadline =
      now_ns() + options_.run_until_timeout_ms * 1'000'000;
  int idle_spins = 0;
  std::uint32_t iterations = 0;
  while (!pred()) {
    // The budget must fire even while traffic keeps flowing (e.g. a
    // self-sustaining forward loop keeps progress() busy forever), so the
    // deadline is polled periodically regardless of progress, not only
    // when idle.
    if ((++iterations & 0xFF) == 0 && now_ns() > deadline) {
      return resource_exhausted("shm run_until: timeout after " +
                                std::to_string(options_.run_until_timeout_ms) +
                                " ms");
    }
    if (progress(node)) {
      idle_spins = 0;
      continue;
    }
    if (now_ns() > deadline) {
      return resource_exhausted("shm run_until: timeout after " +
                                std::to_string(options_.run_until_timeout_ms) +
                                " ms");
    }
    if (++idle_spins >= 64) {
      std::this_thread::yield();
    }
  }
  return Status::ok();
}

}  // namespace tc::fabric
