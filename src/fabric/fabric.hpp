// The simulated interconnect: a deterministic, single-threaded discrete-event
// engine carrying the traffic of a virtual heterogeneous cluster.
//
// Design notes (see DESIGN.md §1):
//  * Determinism first. Events fire in (time, sequence) order; equal
//    timestamps resolve by insertion order, so every test and benchmark is
//    exactly reproducible.
//  * Per-node compute serialization. Each node tracks `busy_until`; handler
//    events arriving while the node is busy are re-queued at that horizon,
//    modeling a single progress thread per PE (the paper's daemon thread).
//  * Real code inside virtual time. JIT compilation and ifunc execution run
//    for real; their *modeled* cost is charged to the virtual clock by the
//    caller (hetsim profiles decide the scaling).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "fabric/link_model.hpp"
#include "fabric/memory.hpp"
#include "fabric/worker.hpp"

namespace tc::fabric {

/// One processing element of the virtual cluster (host CPU, DPU core, ...).
struct Node {
  NodeId id = 0;
  std::string name;
  /// Multiplier applied to modeled compute costs (>1 = slower PE, e.g. the
  /// BlueField-2's Cortex-A72 cores vs a Xeon host).
  double compute_scale = 1.0;
  VirtTime busy_until = 0;
  MemoryDomain memory;
  Worker worker;
  /// The node's published one-sided-access window, if any — the simulated
  /// equivalent of an rkey exchanged out of band at job setup (see
  /// core::Runtime::expose_segment).
  std::optional<MemRegion> exposed_segment;
};

class Fabric {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 100'000'000;

  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- topology -------------------------------------------------------------
  NodeId add_node(std::string name, double compute_scale = 1.0);
  std::size_t node_count() const { return nodes_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;

  void set_default_link(const LinkModel& model) { default_link_ = model; }
  /// Sets the model for both directions of the (a, b) pair.
  void set_link(NodeId a, NodeId b, const LinkModel& model);
  const LinkModel& link(NodeId src, NodeId dst) const;

  // --- virtual time ----------------------------------------------------------
  VirtTime now() const { return now_; }

  void schedule_at(VirtTime t, std::function<void()> fn);
  void schedule_after(std::int64_t delay_ns, std::function<void()> fn) {
    schedule_at(now_ + delay_ns, std::move(fn));
  }

  /// Runs `fn` on `node` as soon as the node is free, charging compute to
  /// it first. With scale_cost the charge is `cost_ns * compute_scale`
  /// (host-measured durations retargeted to the modeled PE); without it the
  /// charge is raw (calibrated per-platform constants).
  void execute_on(NodeId node, std::int64_t cost_ns, std::function<void()> fn,
                  bool scale_cost = true);

  /// Charges compute time to `node` from *inside* a currently running
  /// handler (e.g. after measuring how long a JIT compile really took).
  /// scale_cost as in execute_on.
  void consume_compute(NodeId node, std::int64_t cost_ns,
                       bool scale_cost = true);

  /// execute_on's re-queue step: runs `fn` once the node goes idle,
  /// rescheduling itself at busy_until while it is not.
  void execute_when_idle(NodeId node, std::int64_t cost_ns, bool scale_cost,
                         std::function<void()> fn);

  /// Reserves the src→dst injection channel for one message of `bytes` and
  /// returns the virtual time at which it enters the wire. Back-to-back
  /// sends serialize here, which is what makes large (uncached) frames
  /// bandwidth-bound in the message-rate experiments.
  VirtTime reserve_injection(NodeId src, NodeId dst, std::size_t bytes,
                             OpClass cls = OpClass::kSend);

  /// reserve_injection for a coalesced message of `fragments` logical
  /// frames: the channel is held for one per-message gap plus the link's
  /// per-item batch cost for each extra fragment (LinkModel::
  /// batch_occupancy_ns). fragments == 1 degenerates to reserve_injection.
  VirtTime reserve_injection_batch(NodeId src, NodeId dst, std::size_t bytes,
                                   std::size_t fragments,
                                   OpClass cls = OpClass::kSend);

  // --- progress ---------------------------------------------------------------
  /// Processes the next event. Returns false when the queue is empty.
  bool step();
  /// Runs until no events remain; returns the number processed.
  std::size_t run_until_idle(std::size_t max_events = kDefaultMaxEvents);
  /// Runs until `pred()` is true. Fails with kResourceExhausted if the event
  /// budget is spent and kFailedPrecondition if the fabric idles first.
  Status run_until(const std::function<bool()>& pred,
                   std::size_t max_events = kDefaultMaxEvents);

  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t ams = 0;
    std::uint64_t sends = 0;
    std::uint64_t bytes_on_wire = 0;
  };
  const Stats& stats() const { return stats_; }
  Stats& mutable_stats() { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Event {
    VirtTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // min-heap: earlier seq first
    }
  };

  std::vector<std::unique_ptr<Node>> nodes_;
  LinkModel default_link_;
  // Directional link overrides keyed by (src << 32 | dst).
  std::unordered_map<std::uint64_t, LinkModel> links_;
  // Injection-channel availability, same key scheme.
  std::unordered_map<std::uint64_t, VirtTime> link_busy_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  VirtTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace tc::fabric
