#include "fabric/sim_transport.hpp"

#include <utility>

namespace tc::fabric {

Endpoint& SimTransport::endpoint(NodeId src, NodeId dst) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = endpoints_.find(key);
  if (it == endpoints_.end()) {
    it = endpoints_
             .emplace(key, std::make_unique<Endpoint>(*fabric_, src, dst))
             .first;
  }
  return *it->second;
}

void SimTransport::post_send(NodeId src, NodeId dst, ByteSpan data,
                             std::size_t fragments,
                             CompletionFn on_complete) {
  if (fragments > 1) {
    endpoint(src, dst).send_batch(data, fragments, std::move(on_complete));
  } else {
    endpoint(src, dst).send(data, std::move(on_complete));
  }
}

void SimTransport::post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
                           CompletionFn on_complete) {
  endpoint(src, dst).am(id, payload, std::move(on_complete));
}

void SimTransport::post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                            CompletionFn on_complete) {
  endpoint(src, dst.node).put(data, dst, std::move(on_complete));
}

void SimTransport::post_get(NodeId src, const RemoteAddr& addr,
                            std::size_t length, GetCompletionFn on_complete) {
  endpoint(src, addr.node).get(addr, length, std::move(on_complete));
}

StatusOr<MemRegion> SimTransport::register_window(NodeId node, void* base,
                                                  std::size_t length) {
  return fabric_->node(node).memory.register_memory(base, length);
}

Status SimTransport::expose_segment(NodeId node, void* base,
                                    std::size_t length) {
  Node& n = fabric_->node(node);
  if (n.exposed_segment.has_value()) {
    return already_exists("node " + std::to_string(node) +
                          " already exposes a segment");
  }
  TC_ASSIGN_OR_RETURN(MemRegion region, n.memory.register_memory(base, length));
  n.exposed_segment = region;
  return Status::ok();
}

std::optional<MemRegion> SimTransport::exposed_segment(NodeId node) const {
  return fabric_->node(node).exposed_segment;
}

Status SimTransport::register_am_handler(NodeId node, AmId id,
                                         AmHandler handler) {
  return fabric_->node(node).worker.register_am(id, std::move(handler));
}

Status SimTransport::unregister_am_handler(NodeId node, AmId id) {
  return fabric_->node(node).worker.unregister_am(id);
}

std::optional<ReceivedMessage> SimTransport::try_recv(NodeId node) {
  return fabric_->node(node).worker.try_recv();
}

void SimTransport::set_delivery_notifier(NodeId node,
                                         std::function<void()> notify) {
  fabric_->node(node).worker.set_delivery_notifier(std::move(notify));
}

void SimTransport::sync_to_compute_horizon(NodeId node) {
  const VirtTime busy = fabric_->node(node).busy_until;
  if (busy > fabric_->now()) fabric_->schedule_at(busy, [] {});
}

}  // namespace tc::fabric
