#include "fabric/memory.hpp"

namespace tc::fabric {

StatusOr<MemRegion> MemoryDomain::register_memory(void* base,
                                                  std::size_t length) {
  if (base == nullptr || length == 0) {
    return invalid_argument("register_memory: null base or zero length");
  }
  MemRegion region;
  region.rkey = next_rkey_++;
  region.base = static_cast<std::uint8_t*>(base);
  region.length = length;
  regions_.emplace(region.rkey, region);
  return region;
}

Status MemoryDomain::deregister(RKey rkey) {
  if (regions_.erase(rkey) == 0) {
    return not_found("deregister: unknown rkey " + std::to_string(rkey));
  }
  return Status::ok();
}

StatusOr<std::uint8_t*> MemoryDomain::translate(RKey rkey,
                                                std::uint64_t offset,
                                                std::size_t length) const {
  auto it = regions_.find(rkey);
  if (it == regions_.end()) {
    return not_found("translate: unknown rkey " + std::to_string(rkey));
  }
  const MemRegion& region = it->second;
  if (offset > region.length || length > region.length - offset) {
    return out_of_range("remote access [" + std::to_string(offset) + ", " +
                        std::to_string(offset + length) + ") exceeds region " +
                        std::to_string(region.length));
  }
  return region.base + offset;
}

}  // namespace tc::fabric
