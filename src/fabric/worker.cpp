#include "fabric/worker.hpp"

#include <utility>

namespace tc::fabric {

Status Worker::register_am(AmId id, AmHandler handler) {
  if (!handler) return invalid_argument("register_am: empty handler");
  std::unique_lock lock(am_mu_);
  auto [it, inserted] = am_table_.emplace(
      id, std::make_shared<const AmHandler>(std::move(handler)));
  (void)it;
  if (!inserted) {
    return already_exists("AM id " + std::to_string(id) +
                          " already registered");
  }
  return Status::ok();
}

Status Worker::unregister_am(AmId id) {
  std::unique_lock lock(am_mu_);
  if (am_table_.erase(id) == 0) {
    return not_found("AM id " + std::to_string(id) + " not registered");
  }
  return Status::ok();
}

std::optional<ReceivedMessage> Worker::try_recv() {
  std::lock_guard lock(rx_mu_);
  if (rx_queue_.empty()) return std::nullopt;
  ReceivedMessage msg = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return msg;
}

Status Worker::deliver_am(AmId id, Bytes payload, NodeId source) {
  // Pin the handler under the lock (refcount bump, no function copy) and
  // dispatch unlocked: the handler may send, recurse into this worker, or
  // (un)register handlers.
  std::shared_ptr<const AmHandler> handler;
  {
    std::shared_lock lock(am_mu_);
    auto it = am_table_.find(id);
    if (it == am_table_.end()) {
      am_dispatch_misses_.fetch_add(1, std::memory_order_relaxed);
      return not_found("no AM handler for id " + std::to_string(id));
    }
    handler = it->second;
  }
  ams_delivered_.fetch_add(1, std::memory_order_relaxed);
  (*handler)(as_span(payload), source);
  return Status::ok();
}

void Worker::deliver_message(Bytes data, NodeId source) {
  messages_delivered_.fetch_add(1, std::memory_order_relaxed);
  std::function<void()> notify;
  {
    std::lock_guard lock(rx_mu_);
    rx_queue_.push_back(ReceivedMessage{std::move(data), source});
    notify = notify_;
  }
  // Notify unlocked: the notifier typically polls, and poll() re-enters
  // try_recv on this same mutex.
  if (notify) notify();
}

}  // namespace tc::fabric
