#include "fabric/worker.hpp"

#include <utility>

namespace tc::fabric {

Status Worker::register_am(AmId id, AmHandler handler) {
  if (!handler) return invalid_argument("register_am: empty handler");
  auto [it, inserted] = am_table_.emplace(id, std::move(handler));
  (void)it;
  if (!inserted) {
    return already_exists("AM id " + std::to_string(id) +
                          " already registered");
  }
  return Status::ok();
}

Status Worker::unregister_am(AmId id) {
  if (am_table_.erase(id) == 0) {
    return not_found("AM id " + std::to_string(id) + " not registered");
  }
  return Status::ok();
}

std::optional<ReceivedMessage> Worker::try_recv() {
  if (rx_queue_.empty()) return std::nullopt;
  ReceivedMessage msg = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return msg;
}

Status Worker::deliver_am(AmId id, Bytes payload, NodeId source) {
  auto it = am_table_.find(id);
  if (it == am_table_.end()) {
    ++stats_.am_dispatch_misses;
    return not_found("no AM handler for id " + std::to_string(id));
  }
  ++stats_.ams_delivered;
  it->second(as_span(payload), source);
  return Status::ok();
}

void Worker::deliver_message(Bytes data, NodeId source) {
  ++stats_.messages_delivered;
  rx_queue_.push_back(ReceivedMessage{std::move(data), source});
  if (notify_) notify_();
}

}  // namespace tc::fabric
