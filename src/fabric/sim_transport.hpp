// SimTransport: the deterministic discrete-event backend, adapting the
// original fabric::Fabric engine (virtual time, calibrated link/compute
// models) to the pluggable Transport interface. All state of consequence
// lives in the shared Fabric — several SimTransports may wrap the same
// Fabric (one per runtime, preserving the historical per-runtime endpoint
// bookkeeping) and observe one coherent simulated cluster.
#pragma once

#include <memory>
#include <unordered_map>

#include "fabric/endpoint.hpp"
#include "fabric/fabric.hpp"
#include "fabric/transport.hpp"

namespace tc::fabric {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(Fabric& fabric) : fabric_(&fabric) {}

  Fabric& fabric() { return *fabric_; }

  /// The (src, dst) endpoint carrying this transport's traffic — exposed
  /// because endpoint stats (sends, batched fragments) are part of the
  /// simulated backend's observable surface.
  Endpoint& endpoint(NodeId src, NodeId dst);

  // --- Transport ------------------------------------------------------------
  const char* name() const override { return "sim"; }
  bool deterministic() const override { return true; }
  std::size_t node_count() const override { return fabric_->node_count(); }

  void post_send(NodeId src, NodeId dst, ByteSpan data, std::size_t fragments,
                 CompletionFn on_complete) override;
  void post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
               CompletionFn on_complete) override;
  void post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                CompletionFn on_complete) override;
  void post_get(NodeId src, const RemoteAddr& addr, std::size_t length,
                GetCompletionFn on_complete) override;

  StatusOr<MemRegion> register_window(NodeId node, void* base,
                                      std::size_t length) override;
  Status expose_segment(NodeId node, void* base, std::size_t length) override;
  std::optional<MemRegion> exposed_segment(NodeId node) const override;

  Status register_am_handler(NodeId node, AmId id, AmHandler handler) override;
  Status unregister_am_handler(NodeId node, AmId id) override;
  std::optional<ReceivedMessage> try_recv(NodeId node) override;
  void set_delivery_notifier(NodeId node,
                             std::function<void()> notify) override;

  std::int64_t now_ns() const override { return fabric_->now(); }
  void consume_compute(NodeId node, std::int64_t cost_ns,
                       bool scale_cost) override {
    fabric_->consume_compute(node, cost_ns, scale_cost);
  }
  void execute_on(NodeId node, std::int64_t cost_ns, std::function<void()> fn,
                  bool scale_cost) override {
    fabric_->execute_on(node, cost_ns, std::move(fn), scale_cost);
  }
  void schedule_after(NodeId node, std::int64_t delay_ns,
                      std::function<void()> fn) override {
    (void)node;  // the event queue is global in the simulation
    fabric_->schedule_after(delay_ns, std::move(fn));
  }
  void sync_to_compute_horizon(NodeId node) override;

  bool progress(NodeId node) override {
    (void)node;  // one event queue drives every node
    return fabric_->step();
  }
  Status run_until(NodeId node, const std::function<bool()>& pred) override {
    (void)node;
    return fabric_->run_until(pred);
  }

 private:
  Fabric* fabric_;
  // (src << 32 | dst) -> lazily created endpoint, as runtimes always did.
  std::unordered_map<std::uint64_t, std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace tc::fabric
