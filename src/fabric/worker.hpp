// Worker: the per-node progress/dispatch object, analogous to a ucp_worker.
//
// A worker owns (a) the active-message handler table and (b) the two-sided
// receive queue. One-sided PUT/GET traffic does not pass through the worker;
// it lands directly in registered memory (see MemoryDomain), and higher
// layers discover it by polling, exactly as the paper's ifunc receive path
// polls MAGIC bytes.
//
// Thread safety: the simulated fabric is single-threaded, but the shm
// transport delivers into workers from per-node progress threads while
// other threads register handlers or poll, so every mutable surface here is
// guarded. AM dispatch is re-entrant: the handler is copied out under a
// shared lock and invoked unlocked, so a handler may deliver further
// messages, (un)register handlers, or recurse through the worker without
// deadlocking.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/memory.hpp"

namespace tc::fabric {

using AmId = std::uint16_t;

/// Handler invoked on the *target* node when an active message arrives.
using AmHandler = std::function<void(ByteSpan payload, NodeId source)>;

struct ReceivedMessage {
  Bytes data;
  NodeId source = 0;
};

class Worker {
 public:
  /// Registers a handler for `id`. Fails with kAlreadyExists if taken.
  Status register_am(AmId id, AmHandler handler);
  Status unregister_am(AmId id);
  bool has_am(AmId id) const {
    std::shared_lock lock(am_mu_);
    return am_table_.contains(id);
  }

  /// Two-sided receive: pops the oldest queued message, if any.
  std::optional<ReceivedMessage> try_recv();
  std::size_t rx_queue_depth() const {
    std::lock_guard lock(rx_mu_);
    return rx_queue_.size();
  }

  /// Installs a callback invoked on every deliver_message — the hook the
  /// runtime's progress engine (the paper's polling daemon thread) uses to
  /// wake up inside the discrete-event simulation.
  void set_delivery_notifier(std::function<void()> notify) {
    std::lock_guard lock(rx_mu_);
    notify_ = std::move(notify);
  }

  // --- fabric-internal delivery hooks --------------------------------------
  Status deliver_am(AmId id, Bytes payload, NodeId source);
  void deliver_message(Bytes data, NodeId source);

  /// Counter snapshot (the live counters are atomics shared across delivery
  /// threads).
  struct Stats {
    std::uint64_t ams_delivered = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t am_dispatch_misses = 0;
  };
  Stats stats() const {
    Stats s;
    s.ams_delivered = ams_delivered_.load(std::memory_order_relaxed);
    s.messages_delivered = messages_delivered_.load(std::memory_order_relaxed);
    s.am_dispatch_misses = am_dispatch_misses_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  mutable std::shared_mutex am_mu_;
  /// Handlers are held by shared_ptr so dispatch copies a refcount under
  /// the lock, not a whole std::function (AM delivery is a hot path).
  std::unordered_map<AmId, std::shared_ptr<const AmHandler>> am_table_;
  mutable std::mutex rx_mu_;
  std::deque<ReceivedMessage> rx_queue_;
  std::function<void()> notify_;
  std::atomic<std::uint64_t> ams_delivered_{0};
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<std::uint64_t> am_dispatch_misses_{0};
};

}  // namespace tc::fabric
