// Worker: the per-node progress/dispatch object, analogous to a ucp_worker.
//
// A worker owns (a) the active-message handler table and (b) the two-sided
// receive queue. One-sided PUT/GET traffic does not pass through the worker;
// it lands directly in registered memory (see MemoryDomain), and higher
// layers discover it by polling, exactly as the paper's ifunc receive path
// polls MAGIC bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/memory.hpp"

namespace tc::fabric {

using AmId = std::uint16_t;

/// Handler invoked on the *target* node when an active message arrives.
using AmHandler = std::function<void(ByteSpan payload, NodeId source)>;

struct ReceivedMessage {
  Bytes data;
  NodeId source = 0;
};

class Worker {
 public:
  /// Registers a handler for `id`. Fails with kAlreadyExists if taken.
  Status register_am(AmId id, AmHandler handler);
  Status unregister_am(AmId id);
  bool has_am(AmId id) const { return am_table_.contains(id); }

  /// Two-sided receive: pops the oldest queued message, if any.
  std::optional<ReceivedMessage> try_recv();
  std::size_t rx_queue_depth() const { return rx_queue_.size(); }

  /// Installs a callback invoked on every deliver_message — the hook the
  /// runtime's progress engine (the paper's polling daemon thread) uses to
  /// wake up inside the discrete-event simulation.
  void set_delivery_notifier(std::function<void()> notify) {
    notify_ = std::move(notify);
  }

  // --- fabric-internal delivery hooks --------------------------------------
  Status deliver_am(AmId id, Bytes payload, NodeId source);
  void deliver_message(Bytes data, NodeId source);

  struct Stats {
    std::uint64_t ams_delivered = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t am_dispatch_misses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::unordered_map<AmId, AmHandler> am_table_;
  std::deque<ReceivedMessage> rx_queue_;
  std::function<void()> notify_;
  Stats stats_;
};

}  // namespace tc::fabric
