// Transport: the pluggable fabric backend interface.
//
// Everything above the fabric layer (core::Runtime, am::AmRuntime, the
// X-RDMA miniapps) speaks this interface, so the same protocol code runs
// over either backend:
//
//  * SimTransport — the original deterministic single-threaded
//    discrete-event engine (fabric::Fabric) with calibrated virtual-time
//    models. Every paper figure/table is measured here; bit-for-bit
//    reproducible.
//  * ShmTransport — real OS threads: one progress context per node,
//    lock-free SPSC rings per directed link, registered-memory windows in
//    a shared in-process arena. No time model — wall-clock measurements on
//    the hardware we actually have.
//
// Threading contract: every node has exactly one *progress context* — the
// thread currently driving progress(node) / run_until(node, ...). All
// post_* calls for messages *initiated by* `src` must be made from `src`'s
// progress context, and all completion callbacks, AM handlers and delivery
// notifiers for a node fire on that node's progress context. The simulated
// backend trivially satisfies this (one thread drives everything); the shm
// backend relies on it to keep its rings single-producer/single-consumer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/memory.hpp"
#include "fabric/worker.hpp"

namespace tc::fabric {

using CompletionFn = std::function<void(Status)>;
using GetCompletionFn = std::function<void(StatusOr<Bytes>)>;

/// The canonical completion Status every wall-clock backend reports when a
/// bounded send buffer (shm SPSC ring, socket tx queue) stays full: the op
/// was never put on the wire and it is safe — and expected — for the retry
/// layer (core::RuntimeOptions::max_send_retries) to back off and re-post
/// the same bytes. Shared so shm and socket are indistinguishable to the
/// runtime's retry policy.
inline Status backpressure_status(NodeId src, NodeId dst) {
  return resource_exhausted("send buffer full: node " + std::to_string(src) +
                            " -> node " + std::to_string(dst));
}

/// True when `status` is the shared send-buffer-exhaustion signal above (as
/// opposed to other kResourceExhausted sources such as run_until budgets).
inline bool is_backpressure(const Status& status) {
  return status.code() == ErrorCode::kResourceExhausted &&
         status.message().rfind("send buffer full", 0) == 0;
}

class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  // --- identity -------------------------------------------------------------
  virtual const char* name() const = 0;
  /// True when the backend runs in reproducible virtual time (simulation);
  /// false for wall-clock backends.
  virtual bool deterministic() const = 0;
  virtual std::size_t node_count() const = 0;

  // --- data plane (call from `src`'s progress context) ----------------------
  /// Two-sided eager send into `dst`'s receive queue. `fragments` > 1
  /// declares a coalesced message carrying that many logical frames (the
  /// occupancy accounting of batch containers; delivery is unaffected).
  virtual void post_send(NodeId src, NodeId dst, ByteSpan data,
                         std::size_t fragments, CompletionFn on_complete) = 0;
  /// Active message dispatched to `dst`'s registered handler for `id`.
  virtual void post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
                       CompletionFn on_complete) = 0;
  /// One-sided write into remote registered memory (RDMA PUT).
  virtual void post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                        CompletionFn on_complete) = 0;
  /// One-sided read from remote registered memory (RDMA GET).
  virtual void post_get(NodeId src, const RemoteAddr& addr, std::size_t length,
                        GetCompletionFn on_complete) = 0;

  // --- registered memory ----------------------------------------------------
  /// Registers [base, base+length) on `node` for remote one-sided access
  /// and mints an rkey (ibv_reg_mr analogue).
  virtual StatusOr<MemRegion> register_window(NodeId node, void* base,
                                              std::size_t length) = 0;
  /// Publishes `node`'s single application segment (the out-of-band rkey
  /// exchange real deployments do at setup; see Runtime::expose_segment).
  virtual Status expose_segment(NodeId node, void* base,
                                std::size_t length) = 0;
  virtual std::optional<MemRegion> exposed_segment(NodeId node) const = 0;

  // --- two-sided receive & AM dispatch --------------------------------------
  virtual Status register_am_handler(NodeId node, AmId id,
                                     AmHandler handler) = 0;
  virtual Status unregister_am_handler(NodeId node, AmId id) = 0;
  virtual std::optional<ReceivedMessage> try_recv(NodeId node) = 0;
  /// Callback fired (on `node`'s progress context) whenever a two-sided
  /// message lands in its receive queue.
  virtual void set_delivery_notifier(NodeId node,
                                     std::function<void()> notify) = 0;

  // --- time & modeled compute -----------------------------------------------
  /// Virtual nanoseconds (sim) or monotonic wall-clock nanoseconds (shm).
  virtual std::int64_t now_ns() const = 0;
  /// Charges modeled compute to `node`. Wall-clock backends ignore this —
  /// real work already takes real time.
  virtual void consume_compute(NodeId node, std::int64_t cost_ns,
                               bool scale_cost) = 0;
  /// Runs `fn` on `node`'s progress context once the node is free, charging
  /// `cost_ns` of modeled compute first (see Fabric::execute_on).
  virtual void execute_on(NodeId node, std::int64_t cost_ns,
                          std::function<void()> fn, bool scale_cost) = 0;
  /// Runs `fn` on `node`'s progress context after `delay_ns` (virtual or
  /// wall). Used for deadlines (batch flush); no cancellation — callers
  /// guard with generation counters / liveness tokens.
  virtual void schedule_after(NodeId node, std::int64_t delay_ns,
                              std::function<void()> fn) = 0;
  /// Advances observable time to the end of `node`'s charged compute, so a
  /// caller idling the backend reads completion time, not invocation time.
  /// No-op on wall-clock backends.
  virtual void sync_to_compute_horizon(NodeId node) = 0;

  // --- progress -------------------------------------------------------------
  /// One unit of progress for `node` (the calling thread becomes the node's
  /// progress context). Returns false when there was nothing to do.
  virtual bool progress(NodeId node) = 0;
  /// Drives progress on `node` until `pred()` holds. Fails with
  /// kResourceExhausted when the backend's safety budget (event count or
  /// wall-clock timeout) is spent, kFailedPrecondition if the backend goes
  /// permanently idle first.
  virtual Status run_until(NodeId node, const std::function<bool()>& pred) = 0;
};

}  // namespace tc::fabric
