#include "fabric/fabric.hpp"

#include <cassert>
#include <utility>

#include "common/log.hpp"

namespace tc::fabric {

namespace {
std::uint64_t link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
}  // namespace

NodeId Fabric::add_node(std::string name, double compute_scale) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto node = std::make_unique<Node>();
  node->id = id;
  node->name = std::move(name);
  node->compute_scale = compute_scale;
  nodes_.push_back(std::move(node));
  return id;
}

Node& Fabric::node(NodeId id) {
  assert(id < nodes_.size() && "invalid NodeId");
  return *nodes_[id];
}

const Node& Fabric::node(NodeId id) const {
  assert(id < nodes_.size() && "invalid NodeId");
  return *nodes_[id];
}

void Fabric::set_link(NodeId a, NodeId b, const LinkModel& model) {
  links_[link_key(a, b)] = model;
  links_[link_key(b, a)] = model;
}

const LinkModel& Fabric::link(NodeId src, NodeId dst) const {
  auto it = links_.find(link_key(src, dst));
  return it == links_.end() ? default_link_ : it->second;
}

void Fabric::schedule_at(VirtTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Fabric::execute_on(NodeId node_id, std::int64_t cost_ns,
                        std::function<void()> fn, bool scale_cost) {
  // Re-queue until the node is idle, charge the cost, then run the body at
  // the *end* of the charged interval so its visible effects (sends,
  // stores) occur after the modeled work completes. The re-queue recurses
  // through a named member rather than a closure that captures a
  // shared_ptr to itself — the self-capture formed a reference cycle that
  // leaked every attempt closure (and whatever `fn` held) per call.
  schedule_at(now_, [this, node_id, cost_ns, scale_cost,
                     fn = std::move(fn)]() mutable {
    execute_when_idle(node_id, cost_ns, scale_cost, std::move(fn));
  });
}

void Fabric::execute_when_idle(NodeId node_id, std::int64_t cost_ns,
                               bool scale_cost, std::function<void()> fn) {
  Node& n = node(node_id);
  if (n.busy_until > now_) {
    schedule_at(n.busy_until, [this, node_id, cost_ns, scale_cost,
                               fn = std::move(fn)]() mutable {
      execute_when_idle(node_id, cost_ns, scale_cost, std::move(fn));
    });
    return;
  }
  consume_compute(node_id, cost_ns, scale_cost);
  if (n.busy_until > now_) {
    schedule_at(n.busy_until, std::move(fn));
  } else {
    fn();
  }
}

void Fabric::consume_compute(NodeId node_id, std::int64_t cost_ns,
                             bool scale_cost) {
  Node& n = node(node_id);
  const auto charged =
      scale_cost ? static_cast<std::int64_t>(static_cast<double>(cost_ns) *
                                             n.compute_scale)
                 : cost_ns;
  const VirtTime start = n.busy_until > now_ ? n.busy_until : now_;
  n.busy_until = start + charged;
}

VirtTime Fabric::reserve_injection(NodeId src, NodeId dst, std::size_t bytes,
                                   OpClass cls) {
  return reserve_injection_batch(src, dst, bytes, /*fragments=*/1, cls);
}

VirtTime Fabric::reserve_injection_batch(NodeId src, NodeId dst,
                                         std::size_t bytes,
                                         std::size_t fragments, OpClass cls) {
  const LinkModel& model = link(src, dst);
  VirtTime& busy = link_busy_[link_key(src, dst)];
  const VirtTime start = busy > now_ ? busy : now_;
  busy = start + model.batch_occupancy_ns(bytes, fragments, cls);
  return start;
}

bool Fabric::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event is moved out via const_cast
  // which is safe because we pop immediately and never re-inspect it.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++stats_.events;
  ev.fn();
  return true;
}

std::size_t Fabric::run_until_idle(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && step()) ++processed;
  if (processed == max_events) {
    TC_LOG(kWarn, "fabric") << "run_until_idle hit event budget "
                            << max_events;
  }
  return processed;
}

Status Fabric::run_until(const std::function<bool()>& pred,
                         std::size_t max_events) {
  std::size_t processed = 0;
  while (!pred()) {
    if (processed >= max_events) {
      return resource_exhausted("run_until: event budget exhausted");
    }
    if (!step()) {
      return failed_precondition(
          "run_until: fabric idle before predicate satisfied");
    }
    ++processed;
  }
  return Status::ok();
}

}  // namespace tc::fabric
