#include "fabric/endpoint.hpp"

#include <cstring>
#include <utility>

namespace tc::fabric {

void Endpoint::put(ByteSpan data, const RemoteAddr& dst,
                   CompletionFn on_complete) {
  ++stats_.puts;
  stats_.bytes_put += data.size();
  auto& fstats = fabric_->mutable_stats();
  ++fstats.puts;
  fstats.bytes_on_wire += data.size();

  if (dst.node != remote_) {
    fabric_->schedule_after(0, [cb = std::move(on_complete)] {
      if (cb) cb(invalid_argument("put: RemoteAddr names a different node"));
    });
    return;
  }

  Bytes copy(data.begin(), data.end());
  const auto start = fabric_->reserve_injection(local_, remote_, data.size());
  const auto arrival = start + wire_ns(copy.size());
  fabric_->schedule_at(
      arrival, [this, dst, copy = std::move(copy),
              cb = std::move(on_complete)]() mutable {
        auto target =
            fabric_->node(dst.node).memory.translate(dst.rkey, dst.offset,
                                                     copy.size());
        if (!target.is_ok()) {
          if (cb) cb(target.status());
          return;
        }
        std::memcpy(*target, copy.data(), copy.size());
        if (cb) cb(Status::ok());
      });
}

void Endpoint::get(const RemoteAddr& src, std::size_t length,
                   GetCompletionFn on_complete) {
  ++stats_.gets;
  stats_.bytes_got += length;
  auto& fstats = fabric_->mutable_stats();
  ++fstats.gets;
  fstats.bytes_on_wire += length;

  if (src.node != remote_) {
    fabric_->schedule_after(0, [cb = std::move(on_complete)] {
      if (cb) cb(invalid_argument("get: RemoteAddr names a different node"));
    });
    return;
  }

  const auto start = fabric_->reserve_injection(local_, remote_, 0);
  const auto delay = fabric_->link(local_, remote_).round_trip_ns(length);
  fabric_->schedule_at(
      start + delay, [this, src, length, cb = std::move(on_complete)]() mutable {
        auto source =
            fabric_->node(src.node).memory.translate(src.rkey, src.offset,
                                                     length);
        if (!source.is_ok()) {
          if (cb) cb(source.status());
          return;
        }
        Bytes out(*source, *source + length);
        if (cb) cb(std::move(out));
      });
}

void Endpoint::am(AmId id, ByteSpan payload, CompletionFn on_complete) {
  ++stats_.ams;
  auto& fstats = fabric_->mutable_stats();
  ++fstats.ams;
  fstats.bytes_on_wire += payload.size();

  Bytes copy(payload.begin(), payload.end());
  const auto start = fabric_->reserve_injection(local_, remote_,
                                                payload.size(), OpClass::kAm);
  const auto arrival = start + wire_ns(copy.size());
  const NodeId src = local_;
  const NodeId dst = remote_;
  fabric_->schedule_at(arrival, [this, id, src, dst, copy = std::move(copy),
                                  cb = std::move(on_complete)]() mutable {
    // Handler execution serializes with other compute on the target node.
    fabric_->execute_on(
        dst, /*cost_ns=*/0,
        [this, id, src, dst, copy = std::move(copy),
         cb = std::move(cb)]() mutable {
          Status st =
              fabric_->node(dst).worker.deliver_am(id, std::move(copy), src);
          if (cb) cb(st);
        });
  });
}

void Endpoint::send(ByteSpan data, CompletionFn on_complete) {
  send_impl(data, /*fragments=*/1, std::move(on_complete));
}

void Endpoint::send_batch(ByteSpan data, std::size_t fragments,
                          CompletionFn on_complete) {
  send_impl(data, fragments, std::move(on_complete));
}

void Endpoint::send_impl(ByteSpan data, std::size_t fragments,
                         CompletionFn on_complete) {
  ++stats_.sends;
  if (fragments > 1) {
    ++stats_.batch_sends;
    stats_.batched_fragments += fragments;
  }
  auto& fstats = fabric_->mutable_stats();
  ++fstats.sends;
  fstats.bytes_on_wire += data.size();

  Bytes copy(data.begin(), data.end());
  const auto start = fabric_->reserve_injection_batch(
      local_, remote_, data.size(), fragments);
  const auto arrival = start + wire_ns(copy.size());
  const NodeId src = local_;
  const NodeId dst = remote_;
  fabric_->schedule_at(arrival, [this, src, dst, copy = std::move(copy),
                                  cb = std::move(on_complete)]() mutable {
    fabric_->node(dst).worker.deliver_message(std::move(copy), src);
    if (cb) cb(Status::ok());
  });
}

}  // namespace tc::fabric
