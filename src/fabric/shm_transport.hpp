// ShmTransport: the real-threads shared-memory backend.
//
// Where SimTransport models an RDMA fabric in virtual time, ShmTransport
// *is* one, scaled down to a single machine: every node is a real progress
// context (typically its own OS thread), every directed link is a
// lock-free SPSC ring of wire operations, and registered-memory windows
// live in the shared in-process arena, so PUT/GET are literal memcpys by
// the target's progress thread — the closest same-host analogue of an
// RDMA NIC writing into registered pages. There is no time model: now_ns()
// is the monotonic wall clock and modeled-compute charges are no-ops,
// because real work already takes real time. This is the backend the
// multi-initiator DAPC benchmarks (bench/fig_mt_scale) measure.
//
// Progress model (mirrors UCX): a node's progress context is whichever
// thread drives progress(node)/run_until(node, ...). Server-style nodes
// usually run a dedicated thread (start_progress_threads); initiator nodes
// are driven inline by their application thread, so completion callbacks
// and result handlers fire on the thread that owns the workload state —
// no cross-thread callback races by construction.
//
// Backpressure: a full ring blocks the producer, which drains its own
// incoming rings while it waits (dispatch is re-entrant, nesting-capped),
// so two nodes saturating each other's rings cannot deadlock; a stopping
// transport drops the op instead so teardown always joins. A producer that
// stays blocked past full_ring_wait_ms stops waiting and fails the op's
// completion with fabric::backpressure_status() — the same send-buffer-full
// Status the socket backend reports when its tx queue is exhausted — so
// the runtime's max_send_retries policy backs off identically over both
// wall-clock backends.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "fabric/memory.hpp"
#include "fabric/spsc_ring.hpp"
#include "fabric/transport.hpp"

namespace tc::fabric {

struct ShmTransportOptions {
  /// Slots per directed link (rounded up to a power of two). Sized so the
  /// async windows of every initiator fit without producer stalls.
  std::size_t ring_capacity = 8192;
  /// Safety net for run_until: give up after this much wall time.
  std::int64_t run_until_timeout_ms = 30'000;
  /// How long a producer blocked on a full ring keeps draining/yielding
  /// before the op is abandoned and its completion fails with
  /// fabric::backpressure_status(). Generous by default: a healthy consumer
  /// opens ring space in microseconds, so only a truly wedged (or
  /// fault-injected) peer ever hits this.
  std::int64_t full_ring_wait_ms = 2'000;
};

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(std::size_t node_count,
                        ShmTransportOptions options = {});
  ~ShmTransport() override;

  /// Allocates `length` bytes from the transport's shared arena and
  /// registers them as a window on `node` — the one-call analogue of
  /// malloc + ibv_reg_mr for tests and miniapps.
  StatusOr<MemRegion> allocate_window(NodeId node, std::size_t length);

  /// Spawns one dedicated progress thread per listed node (server-style
  /// nodes). Initiator nodes should be driven inline instead.
  void start_progress_threads(const std::vector<NodeId>& nodes);
  /// Stops and joins every dedicated progress thread.
  void stop_progress_threads();

  // --- Transport ------------------------------------------------------------
  const char* name() const override { return "shm"; }
  bool deterministic() const override { return false; }
  std::size_t node_count() const override { return nodes_.size(); }

  void post_send(NodeId src, NodeId dst, ByteSpan data, std::size_t fragments,
                 CompletionFn on_complete) override;
  void post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
               CompletionFn on_complete) override;
  void post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                CompletionFn on_complete) override;
  void post_get(NodeId src, const RemoteAddr& addr, std::size_t length,
                GetCompletionFn on_complete) override;

  StatusOr<MemRegion> register_window(NodeId node, void* base,
                                      std::size_t length) override;
  Status expose_segment(NodeId node, void* base, std::size_t length) override;
  std::optional<MemRegion> exposed_segment(NodeId node) const override;

  Status register_am_handler(NodeId node, AmId id, AmHandler handler) override;
  Status unregister_am_handler(NodeId node, AmId id) override;
  std::optional<ReceivedMessage> try_recv(NodeId node) override;
  void set_delivery_notifier(NodeId node,
                             std::function<void()> notify) override;

  std::int64_t now_ns() const override;
  void consume_compute(NodeId, std::int64_t, bool) override {}
  void execute_on(NodeId node, std::int64_t cost_ns, std::function<void()> fn,
                  bool scale_cost) override;
  void schedule_after(NodeId node, std::int64_t delay_ns,
                      std::function<void()> fn) override;
  void sync_to_compute_horizon(NodeId) override {}

  bool progress(NodeId node) override;
  Status run_until(NodeId node, const std::function<bool()>& pred) override;

  struct Stats {
    std::uint64_t ops_pushed = 0;
    std::uint64_t ops_drained = 0;
    std::uint64_t producer_stalls = 0;  ///< full-ring backpressure events
    std::uint64_t ops_dropped = 0;      ///< posts abandoned during shutdown
    /// Ops abandoned after full_ring_wait_ms; their completions failed
    /// with fabric::backpressure_status().
    std::uint64_t backpressure_failures = 0;
  };
  Stats stats() const {
    Stats s;
    s.ops_pushed = ops_pushed_.load(std::memory_order_relaxed);
    s.ops_drained = ops_drained_.load(std::memory_order_relaxed);
    s.producer_stalls = producer_stalls_.load(std::memory_order_relaxed);
    s.ops_dropped = ops_dropped_.load(std::memory_order_relaxed);
    s.backpressure_failures =
        backpressure_failures_.load(std::memory_order_relaxed);
    return s;
  }
  /// Per-node dispatch counters (obs/collect feeds these into the registry).
  Worker::Stats worker_stats(NodeId node) const {
    return nodes_.at(node)->worker.stats();
  }

 private:
  /// One wire operation riding a link ring.
  struct Op {
    enum class Kind : std::uint8_t {
      kSend,    ///< two-sided eager message
      kAm,      ///< active message (am_id selects the handler)
      kPut,     ///< one-sided write into (rkey, offset)
      kGet,     ///< one-sided read request of `length` from (rkey, offset)
      kAck,     ///< completion for kSend/kAm/kPut (cid routes the callback)
      kGetAck,  ///< completion + data for kGet
    };
    Kind kind = Kind::kSend;
    NodeId src = 0;
    AmId am_id = 0;
    std::size_t fragments = 1;
    RKey rkey = 0;
    std::uint64_t offset = 0;
    std::size_t length = 0;
    std::uint64_t cid = 0;  ///< 0 = fire-and-forget
    Status status;
    Bytes data;
  };

  struct Timer {
    std::int64_t deadline_ns;
    std::function<void()> fn;
  };

  struct NodeState {
    Worker worker;  ///< AM handler table + two-sided rx queue (thread-safe)
    /// Registered windows; guarded — registration happens at setup while
    /// progress threads may already be translating.
    mutable std::mutex mem_mu;
    MemoryDomain memory;
    std::optional<MemRegion> exposed;
    /// Pending completion callbacks, keyed by cid; guarded so a context
    /// handoff between driving threads is safe.
    std::mutex completions_mu;
    std::uint64_t next_cid = 1;
    std::unordered_map<std::uint64_t, CompletionFn> completions;
    std::unordered_map<std::uint64_t, GetCompletionFn> get_completions;
    /// Armed deadlines, fired by this node's progress context.
    std::mutex timers_mu;
    std::vector<Timer> timers;
  };

  SpscRing<Op>& ring(NodeId src, NodeId dst) {
    return *rings_[src * nodes_.size() + dst];
  }
  /// Blocking push with backpressure (drains `src`'s own rings while the
  /// target ring is full, unless already inside progress on this thread).
  /// Gives up after full_ring_wait_ms and routes the op to
  /// fail_op_backpressure.
  void push_op(NodeId src, NodeId dst, Op op);
  /// Fails the abandoned op's stashed completion with
  /// backpressure_status(src, dst). Acks carry a *remote* completion we
  /// cannot reach — those are dropped and counted; the peer's watchdog
  /// (run_until timeout) surfaces the loss.
  void fail_op_backpressure(NodeId src, NodeId dst, Op& op);
  void handle_op(NodeId node, Op& op);
  bool fire_due_timers(NodeId node);
  std::uint64_t stash_completion(NodeId node, CompletionFn cb);
  std::uint64_t stash_get_completion(NodeId node, GetCompletionFn cb);

  ShmTransportOptions options_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<SpscRing<Op>>> rings_;

  /// Shared arena backing allocate_window.
  std::mutex arena_mu_;
  std::deque<std::vector<std::uint8_t>> arena_;

  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> ops_pushed_{0};
  std::atomic<std::uint64_t> ops_drained_{0};
  std::atomic<std::uint64_t> producer_stalls_{0};
  std::atomic<std::uint64_t> ops_dropped_{0};
  std::atomic<std::uint64_t> backpressure_failures_{0};
};

}  // namespace tc::fabric
