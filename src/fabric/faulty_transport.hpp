// FaultyTransport: a fault-injecting decorator over any Transport backend.
//
// ROADMAP's "third transport" acceptance gate: before the protocol stack can
// claim readiness for a real lossy fabric (sockets, RDMA with flaky links),
// its recovery machinery — NACK redelivery, truncated-send retry, ack-driven
// Dijkstra-Scholten termination — has to survive actual loss, duplication
// and reordering. This shim manufactures those conditions deterministically
// on top of either existing backend, at the *frame* boundary (post_send):
//
//   drop      — the frame never arrives; the sender's completion fails after
//               a short detection delay (modeling a NIC-level delivery
//               timeout), so retry machinery above can fire.
//   duplicate — the frame arrives twice. The receiving side of the shim
//               de-duplicates by per-link sequence number, so exactly one
//               copy surfaces to the runtime — the shim plays the role of a
//               reliable-delivery layer whose *upper* interface is
//               exactly-once while the wire below it is not.
//   delay     — the frame is held back `delay_ns` before entering the inner
//               transport, overtaking later sends on the same link (the
//               reordering case).
//   truncate  — only a prefix of the frame arrives. The receiving shim
//               detects the length mismatch against the shim header, drops
//               the mangled frame, and the sender's completion fails —
//               deliberately *not* surfacing the prefix upward, because a
//               prefix cut exactly at Frame::truncated_size() is a valid
//               truncated frame and would execute *and* be retried (double
//               execution). A real transport detects this with a CRC.
//
// Faults are decided by a per-directed-link xoshiro256** stream seeded from
// (config seed ⊕ link id), so the schedule depends only on the per-link
// frame order — deterministic on the sim backend and per-link reproducible
// on shm (SPSC rings keep each link's order stable even when cross-link
// interleaving varies). Every injection is appended to a log replayable
// from the seed; chaos CI uploads it on failure.
//
// Wiring: when the config carries no fault rates (enabled() == false) the
// shim adds *nothing* — no wrapping header, no per-frame bookkeeping — and
// every call forwards verbatim, so a zero-fault FaultyTransport is
// byte-identical to the bare backend. Only post_send (ifunc frames, results,
// NACKs, batch containers) is faulted; AM and one-sided PUT/GET traffic
// passes through untouched — those paths have no recovery protocol to
// exercise (the AM baseline is the paper's predeployed upper bound).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "fabric/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tc::fabric {

enum class FaultKind : std::uint8_t { kDrop, kDuplicate, kDelay, kTruncate };
const char* fault_kind_name(FaultKind kind);

/// Per-frame fault probabilities (each in [0, 1]; at most one fault is
/// injected per frame, chosen by a single draw against the cumulative
/// distribution, so rates are independent knobs that sum to <= 1).
struct FaultRates {
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  double truncate = 0.0;
  double total() const { return drop + duplicate + delay + truncate; }
};

/// Key of the directed link src -> dst in FaultConfig::per_link.
inline constexpr std::uint64_t fault_link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(src) << 32) |
         static_cast<std::uint64_t>(dst);
}

struct FaultConfig {
  std::uint64_t seed = 42;
  /// Default rates for every directed link.
  FaultRates rates;
  /// Per-link overrides, keyed by fault_link_key(src, dst). A listed link
  /// uses its override *instead of* the default rates.
  std::unordered_map<std::uint64_t, FaultRates> per_link;
  /// Extra latency a delayed frame spends before entering the wire.
  std::int64_t delay_ns = 5'000;
  /// Lag of the duplicate copy behind the original.
  std::int64_t dup_delay_ns = 2'500;
  /// How long after a dropped/truncated send the failure completion fires
  /// (the modeled delivery-timeout detection latency).
  std::int64_t drop_detect_ns = 1'000;
  /// Burst mode: when a fault fires, the next burst_len - 1 frames on the
  /// same link suffer the same fault kind (correlated loss, the pattern
  /// that defeats naive single-retry schemes). 1 = independent faults.
  std::size_t burst_len = 1;

  bool enabled() const {
    if (rates.total() > 0.0) return true;
    for (const auto& [key, r] : per_link) {
      (void)key;
      if (r.total() > 0.0) return true;
    }
    return false;
  }
  const FaultRates& rates_for(NodeId src, NodeId dst) const {
    auto it = per_link.find(fault_link_key(src, dst));
    return it == per_link.end() ? rates : it->second;
  }
};

/// One injected fault, in injection order. The whole log is reproducible
/// from the config seed on the deterministic backend; on shm the *per-link*
/// subsequences are reproducible.
struct InjectionEvent {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;  ///< per-link frame sequence number
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t size = 0;    ///< un-shimmed frame size in bytes
  std::int64_t at_ns = 0;    ///< transport clock at the injection decision
};

/// Human-readable one-line-per-event form ("drop src=0 dst=2 seq=17 ...");
/// what the chaos harness writes to TC_CHAOS_LOG_DIR and CI uploads.
std::string format_injection_log(const std::vector<InjectionEvent>& log);

class FaultyTransport final : public Transport {
 public:
  /// Decorates `inner`, which must outlive the shim. Optional observability
  /// sinks: fault injections become kFaultInject trace events (on the
  /// sender's ring) and "fault/..." metric counters.
  FaultyTransport(Transport& inner, FaultConfig config,
                  obs::Tracer* tracer = nullptr,
                  obs::MetricsRegistry* metrics = nullptr);

  Transport& inner() { return *inner_; }
  const FaultConfig& config() const { return config_; }

  struct StatsSnapshot {
    std::uint64_t frames_intercepted = 0;  ///< post_sends seen (faults on)
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t delays = 0;
    std::uint64_t truncates = 0;
    /// Receiver-side shim discards: duplicate copies and mangled frames
    /// that were caught before reaching the runtime.
    std::uint64_t dup_discards = 0;
    std::uint64_t truncate_discards = 0;
    std::uint64_t faults_total() const {
      return drops + duplicates + delays + truncates;
    }
  };
  StatsSnapshot stats() const;
  std::vector<InjectionEvent> injection_log() const;

  // --- Transport --------------------------------------------------------------
  const char* name() const override { return name_.c_str(); }
  bool deterministic() const override { return inner_->deterministic(); }
  std::size_t node_count() const override { return inner_->node_count(); }

  void post_send(NodeId src, NodeId dst, ByteSpan data, std::size_t fragments,
                 CompletionFn on_complete) override;
  void post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
               CompletionFn on_complete) override {
    inner_->post_am(src, dst, id, payload, std::move(on_complete));
  }
  void post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                CompletionFn on_complete) override {
    inner_->post_put(src, dst, data, std::move(on_complete));
  }
  void post_get(NodeId src, const RemoteAddr& addr, std::size_t length,
                GetCompletionFn on_complete) override {
    inner_->post_get(src, addr, length, std::move(on_complete));
  }

  StatusOr<MemRegion> register_window(NodeId node, void* base,
                                      std::size_t length) override {
    return inner_->register_window(node, base, length);
  }
  Status expose_segment(NodeId node, void* base, std::size_t length) override {
    return inner_->expose_segment(node, base, length);
  }
  std::optional<MemRegion> exposed_segment(NodeId node) const override {
    return inner_->exposed_segment(node);
  }

  Status register_am_handler(NodeId node, AmId id, AmHandler handler) override {
    return inner_->register_am_handler(node, id, std::move(handler));
  }
  Status unregister_am_handler(NodeId node, AmId id) override {
    return inner_->unregister_am_handler(node, id);
  }
  std::optional<ReceivedMessage> try_recv(NodeId node) override;
  void set_delivery_notifier(NodeId node,
                             std::function<void()> notify) override {
    inner_->set_delivery_notifier(node, std::move(notify));
  }

  std::int64_t now_ns() const override { return inner_->now_ns(); }
  void consume_compute(NodeId node, std::int64_t cost_ns,
                       bool scale_cost) override {
    inner_->consume_compute(node, cost_ns, scale_cost);
  }
  void execute_on(NodeId node, std::int64_t cost_ns, std::function<void()> fn,
                  bool scale_cost) override {
    inner_->execute_on(node, cost_ns, std::move(fn), scale_cost);
  }
  void schedule_after(NodeId node, std::int64_t delay_ns,
                      std::function<void()> fn) override {
    inner_->schedule_after(node, delay_ns, std::move(fn));
  }
  void sync_to_compute_horizon(NodeId node) override {
    inner_->sync_to_compute_horizon(node);
  }

  bool progress(NodeId node) override { return inner_->progress(node); }
  Status run_until(NodeId node, const std::function<bool()>& pred) override {
    return inner_->run_until(node, pred);
  }

 private:
  /// Producer side of a directed link. Touched only from src's progress
  /// context (the post_send threading contract), so no lock.
  struct TxLink {
    Xoshiro256 rng{0};
    std::uint32_t next_seq = 0;
    /// Burst state: remaining frames to hit with burst_kind.
    std::size_t burst_remaining = 0;
    FaultKind burst_kind = FaultKind::kDrop;
    bool initialized = false;
  };
  /// Consumer side of a directed link: sequence numbers already delivered
  /// upward. Touched only from dst's progress context.
  struct RxLink {
    std::unordered_set<std::uint32_t> seen;
  };

  TxLink& tx_link(NodeId src, NodeId dst);
  RxLink& rx_link(NodeId src, NodeId dst);
  /// Draws the fault decision for one frame on src -> dst. Returns true
  /// and sets `kind` when a fault fires.
  bool decide_fault(TxLink& link, const FaultRates& rates, FaultKind* kind);
  void record_injection(NodeId src, NodeId dst, std::uint32_t seq,
                        FaultKind kind, std::size_t size);
  /// Wraps `data` in the shim header [magic | kind | seq | length].
  Bytes shim_frame(std::uint32_t seq, ByteSpan data) const;

  Transport* inner_;
  FaultConfig config_;
  std::string name_;
  obs::Tracer* tracer_ = nullptr;

  /// Per-link state maps, guarded only for *map growth* (first touch of a
  /// link); the returned entries are then owned by one progress context.
  std::mutex links_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TxLink>> tx_links_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RxLink>> rx_links_;

  mutable std::mutex log_mu_;
  std::vector<InjectionEvent> log_;

  struct Stats {
    std::atomic<std::uint64_t> frames_intercepted{0};
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> delays{0};
    std::atomic<std::uint64_t> truncates{0};
    std::atomic<std::uint64_t> dup_discards{0};
    std::atomic<std::uint64_t> truncate_discards{0};
  };
  Stats stats_;

  /// Cached metric counters (registry lookup takes a mutex; cache once).
  obs::Counter* m_drops_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_delays_ = nullptr;
  obs::Counter* m_truncates_ = nullptr;
  obs::Counter* m_discards_ = nullptr;
};

}  // namespace tc::fabric
