#include "fabric/faulty_transport.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace tc::fabric {

namespace {

// Shim wire header, prepended to every post_send payload when faults are
// enabled (shim-to-shim only; stripped before the frame reaches try_recv
// callers): u16 magic | u16 reserved | u32 seq | u32 payload length.
constexpr std::uint16_t kShimMagic = 0x7C46;  // "F|"
constexpr std::size_t kShimHeaderSize = 12;

void store16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
std::uint16_t load16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kTruncate: return "truncate";
  }
  return "unknown";
}

std::string format_injection_log(const std::vector<InjectionEvent>& log) {
  std::string out;
  out.reserve(log.size() * 64);
  char line[128];
  for (const InjectionEvent& event : log) {
    std::snprintf(line, sizeof(line),
                  "%-9s src=%u dst=%u seq=%u size=%u at_ns=%lld\n",
                  fault_kind_name(event.kind), event.src, event.dst, event.seq,
                  event.size, static_cast<long long>(event.at_ns));
    out += line;
  }
  return out;
}

FaultyTransport::FaultyTransport(Transport& inner, FaultConfig config,
                                 obs::Tracer* tracer,
                                 obs::MetricsRegistry* metrics)
    : inner_(&inner),
      config_(std::move(config)),
      name_(std::string("faulty+") + inner.name()),
      tracer_(tracer) {
  if (metrics != nullptr) {
    m_drops_ = &metrics->counter("fault.drops");
    m_duplicates_ = &metrics->counter("fault.duplicates");
    m_delays_ = &metrics->counter("fault.delays");
    m_truncates_ = &metrics->counter("fault.truncates");
    m_discards_ = &metrics->counter("fault.rx_discards");
  }
}

FaultyTransport::StatsSnapshot FaultyTransport::stats() const {
  StatsSnapshot s;
  s.frames_intercepted = stats_.frames_intercepted.load();
  s.drops = stats_.drops.load();
  s.duplicates = stats_.duplicates.load();
  s.delays = stats_.delays.load();
  s.truncates = stats_.truncates.load();
  s.dup_discards = stats_.dup_discards.load();
  s.truncate_discards = stats_.truncate_discards.load();
  return s;
}

std::vector<InjectionEvent> FaultyTransport::injection_log() const {
  std::lock_guard lock(log_mu_);
  return log_;
}

FaultyTransport::TxLink& FaultyTransport::tx_link(NodeId src, NodeId dst) {
  const std::uint64_t key = fault_link_key(src, dst);
  std::lock_guard lock(links_mu_);
  auto& slot = tx_links_[key];
  if (slot == nullptr) slot = std::make_unique<TxLink>();
  if (!slot->initialized) {
    // Seed per directed link: the fault schedule of a link depends only on
    // that link's own frame order, which SPSC delivery keeps stable even
    // when cross-link interleaving (shm threads) does not.
    slot->rng = Xoshiro256(config_.seed ^ (key * 0x9e3779b97f4a7c15ull));
    slot->initialized = true;
  }
  return *slot;
}

FaultyTransport::RxLink& FaultyTransport::rx_link(NodeId src, NodeId dst) {
  const std::uint64_t key = fault_link_key(src, dst);
  std::lock_guard lock(links_mu_);
  auto& slot = rx_links_[key];
  if (slot == nullptr) slot = std::make_unique<RxLink>();
  return *slot;
}

bool FaultyTransport::decide_fault(TxLink& link, const FaultRates& rates,
                                   FaultKind* kind) {
  if (link.burst_remaining > 0) {
    --link.burst_remaining;
    *kind = link.burst_kind;
    return true;
  }
  const double total = rates.total();
  if (total <= 0.0) return false;
  // One draw against the cumulative distribution: at most one fault per
  // frame, and a frame consumes exactly one RNG step whatever happens —
  // which keeps per-link schedules stable when rates are tuned.
  constexpr std::uint64_t kScale = 1'000'000'000ull;
  const std::uint64_t draw = link.rng.below(kScale);
  std::uint64_t bound = static_cast<std::uint64_t>(rates.drop * kScale);
  if (draw < bound) {
    *kind = FaultKind::kDrop;
  } else if (draw < (bound += static_cast<std::uint64_t>(rates.duplicate *
                                                         kScale))) {
    *kind = FaultKind::kDuplicate;
  } else if (draw <
             (bound += static_cast<std::uint64_t>(rates.delay * kScale))) {
    *kind = FaultKind::kDelay;
  } else if (draw <
             (bound += static_cast<std::uint64_t>(rates.truncate * kScale))) {
    *kind = FaultKind::kTruncate;
  } else {
    return false;
  }
  if (config_.burst_len > 1) {
    link.burst_remaining = config_.burst_len - 1;
    link.burst_kind = *kind;
  }
  return true;
}

void FaultyTransport::record_injection(NodeId src, NodeId dst,
                                       std::uint32_t seq, FaultKind kind,
                                       std::size_t size) {
  InjectionEvent event;
  event.src = src;
  event.dst = dst;
  event.seq = seq;
  event.kind = kind;
  event.size = static_cast<std::uint32_t>(size);
  event.at_ns = inner_->now_ns();
  {
    std::lock_guard lock(log_mu_);
    log_.push_back(event);
  }
  switch (kind) {
    case FaultKind::kDrop:
      ++stats_.drops;
      if (m_drops_ != nullptr) m_drops_->increment();
      break;
    case FaultKind::kDuplicate:
      ++stats_.duplicates;
      if (m_duplicates_ != nullptr) m_duplicates_->increment();
      break;
    case FaultKind::kDelay:
      ++stats_.delays;
      if (m_delays_ != nullptr) m_delays_->increment();
      break;
    case FaultKind::kTruncate:
      ++stats_.truncates;
      if (m_truncates_ != nullptr) m_truncates_->increment();
      break;
  }
  if (tracer_ != nullptr && tracer_->enabled() &&
      src < tracer_->node_count()) {
    obs::TraceEvent span;
    span.ts_ns = event.at_ns;
    span.trace_id = 0;  // faults are link events, not tied to one chain
    span.ifunc_id = seq;
    span.node = static_cast<std::uint32_t>(src);
    span.peer = static_cast<std::uint32_t>(dst);
    span.span_id = tracer_->next_span_id();
    span.kind = obs::SpanKind::kFaultInject;
    span.repr = static_cast<std::uint8_t>(kind);
    tracer_->ring(static_cast<std::uint32_t>(src)).push(span);
  }
}

Bytes FaultyTransport::shim_frame(std::uint32_t seq, ByteSpan data) const {
  Bytes framed(kShimHeaderSize + data.size());
  store16(framed.data(), kShimMagic);
  store16(framed.data() + 2, 0);
  store32(framed.data() + 4, seq);
  store32(framed.data() + 8, static_cast<std::uint32_t>(data.size()));
  std::copy(data.begin(), data.end(), framed.begin() + kShimHeaderSize);
  return framed;
}

void FaultyTransport::post_send(NodeId src, NodeId dst, ByteSpan data,
                                std::size_t fragments,
                                CompletionFn on_complete) {
  if (!config_.enabled()) {
    inner_->post_send(src, dst, data, fragments, std::move(on_complete));
    return;
  }
  ++stats_.frames_intercepted;
  TxLink& link = tx_link(src, dst);
  const std::uint32_t seq = link.next_seq++;
  FaultKind kind;
  const bool faulted = decide_fault(link, config_.rates_for(src, dst), &kind);
  // Truncating a frame to nothing but the shim header is indistinguishable
  // from losing it; treat it as the loss it is.
  if (faulted && kind == FaultKind::kTruncate && data.size() < 2) {
    kind = FaultKind::kDrop;
  }
  Bytes framed = shim_frame(seq, data);

  if (!faulted) {
    inner_->post_send(src, dst, as_span(framed), fragments,
                      std::move(on_complete));
    return;
  }
  record_injection(src, dst, seq, kind, data.size());

  switch (kind) {
    case FaultKind::kDrop: {
      // The frame vanishes; the sender learns after the modeled detection
      // delay, on its own progress context (like a delivery timeout).
      inner_->schedule_after(
          src, config_.drop_detect_ns,
          [cb = std::move(on_complete)] {
            if (cb) cb(unavailable("fault injection: frame dropped"));
          });
      return;
    }
    case FaultKind::kDuplicate: {
      inner_->post_send(src, dst, as_span(framed), fragments,
                        std::move(on_complete));
      // The duplicate trails the original; the receiving shim discards it
      // by sequence number, so the runtime above sees the frame once.
      inner_->schedule_after(
          src, config_.dup_delay_ns,
          [this, src, dst, fragments, copy = framed] {
            inner_->post_send(src, dst, as_span(copy), fragments, {});
          });
      return;
    }
    case FaultKind::kDelay: {
      // Held back before entering the wire: later sends on this link (and
      // their completions) overtake this frame — the reordering case.
      inner_->schedule_after(
          src, config_.delay_ns,
          [this, src, dst, fragments, copy = std::move(framed),
           cb = std::move(on_complete)]() mutable {
            inner_->post_send(src, dst, as_span(copy), fragments,
                              std::move(cb));
          });
      return;
    }
    case FaultKind::kTruncate: {
      // Ship a prefix (shim header intact, payload cut); the receiving shim
      // sees the length mismatch and discards, and the sender's completion
      // reports the loss. The mangled bytes must never surface upward: a
      // prefix cut exactly at the frame's truncated size would be *valid*
      // and execute — and then be retried, a double execution.
      const std::size_t keep = kShimHeaderSize + data.size() / 2;
      framed.resize(keep);
      inner_->post_send(
          src, dst, as_span(framed), fragments,
          [cb = std::move(on_complete)](Status status) {
            if (!cb) return;
            if (status.is_ok()) {
              cb(unavailable("fault injection: frame truncated in flight"));
            } else {
              cb(status);
            }
          });
      return;
    }
  }
}

std::optional<ReceivedMessage> FaultyTransport::try_recv(NodeId node) {
  if (!config_.enabled()) return inner_->try_recv(node);
  while (true) {
    std::optional<ReceivedMessage> msg = inner_->try_recv(node);
    if (!msg.has_value()) return std::nullopt;
    Bytes& data = msg->data;
    if (data.size() < kShimHeaderSize ||
        load16(data.data()) != kShimMagic) {
      // Not shim-framed (posted straight at the inner transport, e.g. by a
      // test): surface verbatim.
      return msg;
    }
    const std::uint32_t seq = load32(data.data() + 4);
    const std::uint32_t length = load32(data.data() + 8);
    if (data.size() - kShimHeaderSize != length) {
      // Mangled in flight (the truncate fault): drop here, exactly as a
      // CRC-checking NIC would, so no partial frame reaches the runtime.
      ++stats_.truncate_discards;
      if (m_discards_ != nullptr) m_discards_->increment();
      continue;
    }
    RxLink& link = rx_link(msg->source, node);
    if (!link.seen.insert(seq).second) {
      // Duplicate copy; the original already went upward.
      ++stats_.dup_discards;
      if (m_discards_ != nullptr) m_discards_->increment();
      continue;
    }
    data.erase(data.begin(), data.begin() + kShimHeaderSize);
    return msg;
  }
}

}  // namespace tc::fabric
