// SocketTransport: the real-sockets backend — true address-space isolation.
//
// Where ShmTransport scales an RDMA fabric down to one process,
// SocketTransport runs it over actual stream sockets, in two deployment
// shapes sharing one wire protocol:
//
//  * threaded mode (create_threaded) — every node lives in this process and
//    each directed pair is joined by a socketpair(2). Same topology as shm,
//    but every verb is serialized through the length-prefixed wire codec
//    and the kernel's socket buffers, so partial writes, framing and flow
//    control are real. This is what hetsim::Backend::kSocket uses, letting
//    the whole in-tree test matrix drive the codec.
//  * process mode (create_process) — this process *is* one node; peers are
//    separate processes reached over Unix-domain or TCP sockets. Bootstrap
//    is ordered dialing: every node listens on its endpoint, connects to
//    all lower-id peers and accepts from all higher-id peers, identifying
//    each accepted connection with a kHello frame. Registered-segment rkeys
//    travel out-of-band as kSegment frames (the expose_segment contract);
//    PUT/GET are serviced by the target's progress context and routed back
//    by request id. tools/tc_launch forks such a cluster.
//
// Flow control is honest: every link owns a bounded tx queue. When a slow
// consumer lets it fill, new data frames fail their completion with the
// shared fabric::backpressure_status() instead of blocking — the same
// Status the shm backend reports on a full ring, so the runtime's
// max_send_retries policy behaves identically on both. Control frames
// (acks, segment adverts, barriers) bypass the cap: losing a completion to
// backpressure on the reverse path would turn flow control into a hang.
// Peer disconnect fails every in-flight completion toward that peer with
// kUnavailable and discards any partially received frame (counted in
// Stats::rx_partial_discards).
//
// Threading contract: identical to the other backends — one progress
// context per node; post_* from the initiating node's context; callbacks
// fire on the owning node's context. Link state is only ever touched by
// the owning node's progress context, which is what makes the nonblocking
// read/flush loops lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fabric/memory.hpp"
#include "fabric/transport.hpp"

namespace tc::fabric {

struct SocketTransportOptions {
  /// Per-directed-link tx budget. A data frame posted while at least this
  /// many bytes are already queued fails with backpressure_status().
  std::size_t send_buffer_bytes = 4 * 1024 * 1024;
  /// Safety net for run_until: give up after this much wall time.
  std::int64_t run_until_timeout_ms = 30'000;
  /// Process mode: how long bootstrap keeps re-dialing a peer that has not
  /// bound its endpoint yet (and how long it waits for inbound hellos).
  std::int64_t connect_timeout_ms = 10'000;
  /// Codec sanity bound; a longer frame on the wire is a protocol error
  /// and disconnects the link.
  std::size_t max_frame_bytes = 64 * 1024 * 1024;
};

class SocketTransport final : public Transport {
 public:
  /// Every node in this process, full socketpair mesh. The shape
  /// hetsim::Cluster's Backend::kSocket builds.
  static StatusOr<std::unique_ptr<SocketTransport>> create_threaded(
      std::size_t node_count, SocketTransportOptions options = {});
  /// This process is node `self` of `node_count`; `endpoints[i]` names
  /// node i's listening address as "unix:<path>" or "tcp:<ipv4>:<port>".
  /// Blocks until the full mesh is connected (or connect_timeout_ms).
  static StatusOr<std::unique_ptr<SocketTransport>> create_process(
      std::size_t node_count, NodeId self,
      const std::vector<std::string>& endpoints,
      SocketTransportOptions options = {});
  /// "unix:<dir>/n<i>.sock" for every node (keep `dir` short: sun_path
  /// caps at ~107 bytes).
  static std::vector<std::string> unix_endpoints(std::size_t node_count,
                                                 const std::string& dir);
  ~SocketTransport() override;

  static constexpr NodeId kAllLocal = ~NodeId{0};
  /// kAllLocal in threaded mode, this process's node id in process mode.
  NodeId self_node() const { return self_; }
  bool is_local(NodeId node) const {
    return self_ == kAllLocal || node == self_;
  }

  /// Allocates `length` bytes owned by the transport and registers them as
  /// a window on the (local) node — malloc + ibv_reg_mr in one call.
  StatusOr<MemRegion> allocate_window(NodeId node, std::size_t length);

  /// Spawns one dedicated progress thread per listed (local) node.
  void start_progress_threads(const std::vector<NodeId>& nodes);
  void stop_progress_threads();

  /// Process mode: drives `node`'s progress until `owner`'s exposed-segment
  /// advert (kSegment) has arrived — the out-of-band rkey exchange real
  /// deployments run at setup.
  Status wait_for_segment(NodeId node, NodeId owner);
  /// Process mode: phase barrier over the mesh (node 0 coordinates).
  /// Doubles as the server's progress loop — AMs/PUTs/GETs arriving while
  /// blocked here are serviced.
  Status barrier(NodeId node, std::uint64_t id);
  /// Abruptly shuts down the connection between `node` and `peer` (both
  /// directions) — the mid-message-disconnect fault for tests. Safe to
  /// call from any thread.
  Status kill_connection(NodeId node, NodeId peer);

  // --- Transport ------------------------------------------------------------
  const char* name() const override { return "socket"; }
  bool deterministic() const override { return false; }
  std::size_t node_count() const override { return node_count_; }

  void post_send(NodeId src, NodeId dst, ByteSpan data, std::size_t fragments,
                 CompletionFn on_complete) override;
  void post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
               CompletionFn on_complete) override;
  void post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                CompletionFn on_complete) override;
  void post_get(NodeId src, const RemoteAddr& addr, std::size_t length,
                GetCompletionFn on_complete) override;

  StatusOr<MemRegion> register_window(NodeId node, void* base,
                                      std::size_t length) override;
  Status expose_segment(NodeId node, void* base, std::size_t length) override;
  std::optional<MemRegion> exposed_segment(NodeId node) const override;

  Status register_am_handler(NodeId node, AmId id, AmHandler handler) override;
  Status unregister_am_handler(NodeId node, AmId id) override;
  std::optional<ReceivedMessage> try_recv(NodeId node) override;
  void set_delivery_notifier(NodeId node,
                             std::function<void()> notify) override;

  std::int64_t now_ns() const override;
  void consume_compute(NodeId, std::int64_t, bool) override {}
  void execute_on(NodeId node, std::int64_t cost_ns, std::function<void()> fn,
                  bool scale_cost) override;
  void schedule_after(NodeId node, std::int64_t delay_ns,
                      std::function<void()> fn) override;
  void sync_to_compute_horizon(NodeId) override {}

  bool progress(NodeId node) override;
  Status run_until(NodeId node, const std::function<bool()>& pred) override;

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t partial_writes = 0;   ///< short writes that left tx queued
    std::uint64_t backpressure_rejects = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t rx_partial_discards = 0;  ///< mid-frame EOF
  };
  Stats stats() const {
    Stats s;
    s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
    s.frames_received = frames_received_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    s.partial_writes = partial_writes_.load(std::memory_order_relaxed);
    s.backpressure_rejects =
        backpressure_rejects_.load(std::memory_order_relaxed);
    s.disconnects = disconnects_.load(std::memory_order_relaxed);
    s.rx_partial_discards =
        rx_partial_discards_.load(std::memory_order_relaxed);
    return s;
  }
  /// Per-node dispatch counters (local nodes only).
  Worker::Stats worker_stats(NodeId node) const;

 private:
  /// Frame kinds on the wire. Wire layout (little-endian):
  ///   [u32 length] [u8 kind] [u8 code] [u16 am_id] [u32 src]
  ///   [u64 cid] [u64 f0] [u64 f1] [u64 f2] [payload...]
  /// where `length` counts everything after itself and the f-words are
  /// per-kind (see socket_transport.cpp).
  enum class FrameKind : std::uint8_t {
    kHello = 1,    ///< bootstrap: src identifies the dialing node
    kSend = 2,     ///< two-sided eager message; f0 = fragments
    kAm = 3,       ///< active message; am_id selects the handler
    kPut = 4,      ///< one-sided write; f0 = rkey, f1 = offset
    kGet = 5,      ///< one-sided read; f0 = rkey, f1 = offset, f2 = length
    kAck = 6,      ///< completion for kSend/kAm/kPut; code + message payload
    kGetAck = 7,   ///< completion + data for kGet
    kSegment = 8,  ///< exposed-segment advert; f0 = rkey, f1 = length
    kBarrier = 9,  ///< f0 = barrier id, f1 = 0 arrive / 1 release
  };
  struct Frame {
    FrameKind kind = FrameKind::kSend;
    std::uint8_t code = 0;  ///< ErrorCode for acks
    AmId am_id = 0;
    NodeId src = 0;
    std::uint64_t cid = 0;
    std::uint64_t f0 = 0, f1 = 0, f2 = 0;
    Bytes payload;
  };

  struct Link {
    int fd = -1;
    bool connected = false;
    Bytes rx;                ///< partially received bytes, parsed in place
    std::deque<Bytes> tx;    ///< encoded frames not yet fully written
    std::size_t tx_front_off = 0;  ///< bytes of tx.front() already written
    std::size_t tx_queued = 0;     ///< total unwritten bytes across tx
  };

  struct Timer {
    std::int64_t deadline_ns;
    std::function<void()> fn;
  };
  struct PendingCompletion {
    CompletionFn fn;
    NodeId dst = 0;  ///< fail fast if this peer disconnects
  };
  struct PendingGet {
    GetCompletionFn fn;
    NodeId dst = 0;
  };

  struct NodeState {
    Worker worker;
    mutable std::mutex mem_mu;
    MemoryDomain memory;
    std::optional<MemRegion> exposed;
    std::mutex completions_mu;
    std::uint64_t next_cid = 1;
    std::unordered_map<std::uint64_t, PendingCompletion> completions;
    std::unordered_map<std::uint64_t, PendingGet> get_completions;
    std::mutex timers_mu;
    std::vector<Timer> timers;
    /// Indexed by peer id; links[self] unused. Owned by this node's
    /// progress context.
    std::vector<Link> links;
    /// Process-mode barrier state (progress-context-only).
    std::unordered_map<std::uint64_t, std::size_t> barrier_arrivals;
    std::unordered_set<std::uint64_t> barrier_released;
  };

  SocketTransport(std::size_t node_count, NodeId self,
                  SocketTransportOptions options);

  NodeState* local_state(NodeId node);
  const NodeState* local_state(NodeId node) const;
  /// Queues an encoded frame on node->peer and flushes what the kernel
  /// accepts. Control frames bypass the tx budget (see file comment).
  Status send_frame(NodeId node, NodeId peer, Bytes wire, bool control);
  bool flush_link(NodeId node, NodeId peer);
  bool read_link(NodeId node, NodeId peer);
  void parse_frames(NodeId node, NodeId peer, Link& link);
  void handle_frame(NodeId node, Frame frame);
  /// Routes a reply frame: local target dispatches inline (loopback),
  /// remote targets ride the wire as control frames.
  void reply(NodeId node, NodeId peer, Frame frame);
  void disconnect_link(NodeId node, NodeId peer, const char* reason);
  void fail_completions_for_peer(NodeId node, NodeId peer);
  bool fire_due_timers(NodeId node);
  std::uint64_t stash_completion(NodeId node, NodeId dst, CompletionFn cb);
  std::uint64_t stash_get_completion(NodeId node, NodeId dst,
                                     GetCompletionFn cb);
  void complete(NodeId node, std::uint64_t cid, Status status);
  void complete_get(NodeId node, std::uint64_t cid, StatusOr<Bytes> result);
  /// Sends a kSegment advert for `node`'s exposed segment to every peer
  /// (process mode).
  void broadcast_segment(NodeId node, const MemRegion& region);

  SocketTransportOptions options_;
  std::size_t node_count_ = 0;
  NodeId self_ = kAllLocal;
  /// Only local nodes are non-null.
  std::vector<std::unique_ptr<NodeState>> nodes_;
  /// Process mode: rkey/length of remote nodes' exposed segments, learned
  /// from kSegment adverts (base is null — one-sided access is serviced on
  /// the owning process).
  mutable std::mutex segments_mu_;
  std::unordered_map<NodeId, MemRegion> remote_segments_;

  /// Process mode: listening socket + owned unix path (unlinked on exit).
  int listen_fd_ = -1;
  std::string listen_unix_path_;

  std::mutex arena_mu_;
  std::deque<std::vector<std::uint8_t>> arena_;

  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};

  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> backpressure_rejects_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> rx_partial_discards_{0};
};

}  // namespace tc::fabric
