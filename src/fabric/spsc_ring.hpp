// Single-producer/single-consumer lock-free ring buffer — the wire of the
// shm transport. One ring per directed link (src → dst): the producer is
// src's progress context, the consumer is dst's progress context, which is
// exactly the SPSC discipline. Indices are monotonically increasing
// (wrapping through the power-of-two mask), release/acquire pairs on the
// indices publish the slot contents.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace tc::fabric {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Moves from `item` only on success; returns false when
  /// the ring is full (caller applies backpressure).
  bool try_push(T& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (racy by nature; used for idle checks).
  bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> slots_;
  // Separate cache lines: the producer only writes tail_, the consumer only
  // writes head_.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace tc::fabric
