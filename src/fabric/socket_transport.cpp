#include "fabric/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/log.hpp"

namespace tc::fabric {

namespace {

// Bytes after the u32 length prefix that every frame carries before its
// payload: kind(1) code(1) am_id(2) src(4) cid(8) f0(8) f1(8) f2(8).
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kWireFrameMin = 4 + kHeaderBytes;

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(Bytes& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}
void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Status errno_status(const std::string& what) {
  return internal_error(what + ": " + std::strerror(errno));
}

struct Endpoint {
  bool is_unix = true;
  std::string path;        // unix
  std::string host;        // tcp
  std::uint16_t port = 0;  // tcp
};

StatusOr<Endpoint> parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.is_unix = true;
    ep.path = spec.substr(5);
    if (ep.path.empty()) return invalid_argument("empty unix path: " + spec);
    if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      return invalid_argument("unix path too long (sun_path cap): " + spec);
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon + 1 == rest.size()) {
      return invalid_argument("want tcp:<ipv4>:<port>, got " + spec);
    }
    ep.host = rest.substr(0, colon);
    const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
    if (port <= 0 || port > 65535) {
      return invalid_argument("bad tcp port in " + spec);
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  return invalid_argument("endpoint wants unix:<path> or tcp:<ip>:<port>: " +
                          spec);
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return Status::ok();
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return errno_status("bootstrap write");
    }
  }
  return Status::ok();
}

Status read_exact(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
    } else if (n < 0 && (errno == EINTR)) {
      continue;
    } else if (n == 0) {
      return unavailable("bootstrap peer closed mid-hello");
    } else {
      return errno_status("bootstrap read");
    }
  }
  return Status::ok();
}

}  // namespace

SocketTransport::SocketTransport(std::size_t node_count, NodeId self,
                                 SocketTransportOptions options)
    : options_(options), node_count_(node_count), self_(self) {
  nodes_.resize(node_count);
}

SocketTransport::~SocketTransport() {
  stop_progress_threads();
  for (auto& state : nodes_) {
    if (state == nullptr) continue;
    for (Link& link : state->links) {
      if (link.fd >= 0) ::close(link.fd);
      link.fd = -1;
    }
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!listen_unix_path_.empty()) ::unlink(listen_unix_path_.c_str());
}

std::vector<std::string> SocketTransport::unix_endpoints(
    std::size_t node_count, const std::string& dir) {
  std::vector<std::string> endpoints;
  endpoints.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    endpoints.push_back("unix:" + dir + "/n" + std::to_string(i) + ".sock");
  }
  return endpoints;
}

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::create_threaded(
    std::size_t node_count, SocketTransportOptions options) {
  if (node_count == 0) return invalid_argument("need at least one node");
  auto transport = std::unique_ptr<SocketTransport>(
      new SocketTransport(node_count, kAllLocal, options));
  for (std::size_t i = 0; i < node_count; ++i) {
    transport->nodes_[i] = std::make_unique<NodeState>();
    transport->nodes_[i]->links.resize(node_count);
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    for (std::size_t j = i + 1; j < node_count; ++j) {
      int fds[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        return errno_status("socketpair");
      }
      for (int fd : fds) {
        if (Status s = set_nonblocking(fd); !s.is_ok()) return s;
      }
      transport->nodes_[i]->links[j] = Link{fds[0], true, {}, {}, 0, 0};
      transport->nodes_[j]->links[i] = Link{fds[1], true, {}, {}, 0, 0};
    }
  }
  return transport;
}

StatusOr<std::unique_ptr<SocketTransport>> SocketTransport::create_process(
    std::size_t node_count, NodeId self,
    const std::vector<std::string>& endpoints, SocketTransportOptions options) {
  if (self >= node_count) return invalid_argument("self out of range");
  if (endpoints.size() != node_count) {
    return invalid_argument("need one endpoint per node");
  }
  // Validate the whole endpoint list before touching the network: a typo in
  // a peer we'd only accept from should fail fast, not as a bootstrap
  // timeout ten seconds later.
  for (const std::string& spec : endpoints) {
    TC_RETURN_IF_ERROR(parse_endpoint(spec).status());
  }
  auto transport = std::unique_ptr<SocketTransport>(
      new SocketTransport(node_count, self, options));
  NodeState& state =
      *(transport->nodes_[self] = std::make_unique<NodeState>());
  state.links.resize(node_count);

  // 1. Bind + listen on our own endpoint so every later dialer succeeds
  //    regardless of accept timing (the backlog holds connections).
  TC_ASSIGN_OR_RETURN(Endpoint ep, parse_endpoint(endpoints[self]));
  if (ep.is_unix) {
    transport->listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (transport->listen_fd_ < 0) return errno_status("socket(AF_UNIX)");
    ::unlink(ep.path.c_str());  // stale path from a crashed previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(transport->listen_fd_,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      return errno_status("bind(" + ep.path + ")");
    }
    transport->listen_unix_path_ = ep.path;
  } else {
    transport->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (transport->listen_fd_ < 0) return errno_status("socket(AF_INET)");
    int one = 1;
    ::setsockopt(transport->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
      return invalid_argument("bad ipv4 address: " + ep.host);
    }
    if (::bind(transport->listen_fd_,
               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      return errno_status("bind(tcp " + ep.host + ")");
    }
  }
  if (::listen(transport->listen_fd_, static_cast<int>(node_count)) != 0) {
    return errno_status("listen");
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.connect_timeout_ms);

  // 2. Dial every lower-id peer (it may not have bound yet — retry until
  //    the deadline) and identify ourselves with a kHello frame.
  for (NodeId peer = 0; peer < self; ++peer) {
    TC_ASSIGN_OR_RETURN(Endpoint pep, parse_endpoint(endpoints[peer]));
    int fd = -1;
    for (;;) {
      fd = ::socket(pep.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
      if (fd < 0) return errno_status("socket(dial)");
      int rc;
      if (pep.is_unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, pep.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      } else {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(pep.port);
        if (::inet_pton(AF_INET, pep.host.c_str(), &addr.sin_addr) != 1) {
          ::close(fd);
          return invalid_argument("bad ipv4 address: " + pep.host);
        }
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr));
      }
      if (rc == 0) break;
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() >= deadline) {
        return unavailable("bootstrap: node " + std::to_string(peer) +
                           " never came up at " + endpoints[peer]);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.src = self;
    Bytes wire;
    wire.reserve(kWireFrameMin);
    put_u32(wire, static_cast<std::uint32_t>(kHeaderBytes));
    wire.push_back(static_cast<std::uint8_t>(hello.kind));
    wire.push_back(0);
    put_u16(wire, 0);
    put_u32(wire, hello.src);
    put_u64(wire, 0);
    put_u64(wire, 0);
    put_u64(wire, 0);
    put_u64(wire, 0);
    if (Status s = write_all(fd, wire.data(), wire.size()); !s.is_ok()) {
      ::close(fd);
      return s;
    }
    state.links[peer] = Link{fd, true, {}, {}, 0, 0};
  }

  // 3. Accept every higher-id peer; the kHello names which one each is.
  std::size_t expected = node_count - 1 - self;
  while (expected > 0) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return unavailable("bootstrap: timed out waiting for " +
                         std::to_string(expected) + " inbound peers");
    }
    pollfd pfd{transport->listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) continue;
    const int fd = ::accept(transport->listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return errno_status("accept");
    }
    // A dead dialer must not hang the hello read forever.
    timeval tv{};
    tv.tv_sec = options.connect_timeout_ms / 1000;
    tv.tv_usec = (options.connect_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::uint8_t hello[kWireFrameMin];
    if (Status s = read_exact(fd, hello, sizeof(hello)); !s.is_ok()) {
      ::close(fd);
      return s;
    }
    const std::uint32_t len = get_u32(hello);
    const NodeId peer = get_u32(hello + 8);
    if (len != kHeaderBytes ||
        static_cast<FrameKind>(hello[4]) != FrameKind::kHello ||
        peer <= self || peer >= node_count || state.links[peer].fd >= 0) {
      ::close(fd);
      return internal_error("bootstrap: malformed hello from peer " +
                            std::to_string(peer));
    }
    state.links[peer] = Link{fd, true, {}, {}, 0, 0};
    --expected;
  }

  for (NodeId peer = 0; peer < node_count; ++peer) {
    if (peer == self) continue;
    Link& link = state.links[peer];
    if (Status s = set_nonblocking(link.fd); !s.is_ok()) return s;
    TC_ASSIGN_OR_RETURN(Endpoint pep, parse_endpoint(endpoints[peer]));
    if (!pep.is_unix) set_tcp_nodelay(link.fd);
  }
  // The mesh is complete: nobody will dial us again.
  ::close(transport->listen_fd_);
  transport->listen_fd_ = -1;
  if (!transport->listen_unix_path_.empty()) {
    ::unlink(transport->listen_unix_path_.c_str());
    transport->listen_unix_path_.clear();
  }
  return transport;
}

SocketTransport::NodeState* SocketTransport::local_state(NodeId node) {
  if (node >= node_count_) return nullptr;
  return nodes_[node].get();
}
const SocketTransport::NodeState* SocketTransport::local_state(
    NodeId node) const {
  if (node >= node_count_) return nullptr;
  return nodes_[node].get();
}

std::int64_t SocketTransport::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Worker::Stats SocketTransport::worker_stats(NodeId node) const {
  const NodeState* state = local_state(node);
  return state != nullptr ? state->worker.stats() : Worker::Stats{};
}

StatusOr<MemRegion> SocketTransport::allocate_window(NodeId node,
                                                     std::size_t length) {
  if (length == 0) return invalid_argument("allocate_window: empty window");
  std::uint8_t* base = nullptr;
  {
    std::lock_guard lock(arena_mu_);
    arena_.emplace_back(length);
    base = arena_.back().data();
  }
  return register_window(node, base, length);
}

void SocketTransport::start_progress_threads(
    const std::vector<NodeId>& nodes) {
  for (NodeId node : nodes) {
    threads_.emplace_back([this, node] {
      int idle_spins = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        if (progress(node)) {
          idle_spins = 0;
          continue;
        }
        if (++idle_spins < 64) continue;
        if (idle_spins < 1024) {
          std::this_thread::yield();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
}

void SocketTransport::stop_progress_threads() {
  stop_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  stop_.store(false, std::memory_order_relaxed);
}

// --- completion stashes -------------------------------------------------------

std::uint64_t SocketTransport::stash_completion(NodeId node, NodeId dst,
                                                CompletionFn cb) {
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.completions_mu);
  const std::uint64_t cid = state.next_cid++;
  state.completions.emplace(cid, PendingCompletion{std::move(cb), dst});
  return cid;
}

std::uint64_t SocketTransport::stash_get_completion(NodeId node, NodeId dst,
                                                    GetCompletionFn cb) {
  NodeState& state = *nodes_[node];
  std::lock_guard lock(state.completions_mu);
  const std::uint64_t cid = state.next_cid++;
  state.get_completions.emplace(cid, PendingGet{std::move(cb), dst});
  return cid;
}

void SocketTransport::complete(NodeId node, std::uint64_t cid, Status status) {
  NodeState& state = *nodes_[node];
  CompletionFn cb;
  {
    std::lock_guard lock(state.completions_mu);
    auto it = state.completions.find(cid);
    if (it == state.completions.end()) return;
    cb = std::move(it->second.fn);
    state.completions.erase(it);
  }
  if (cb) cb(std::move(status));
}

void SocketTransport::complete_get(NodeId node, std::uint64_t cid,
                                   StatusOr<Bytes> result) {
  NodeState& state = *nodes_[node];
  GetCompletionFn cb;
  {
    std::lock_guard lock(state.completions_mu);
    auto it = state.get_completions.find(cid);
    if (it == state.get_completions.end()) return;
    cb = std::move(it->second.fn);
    state.get_completions.erase(it);
  }
  if (cb) cb(std::move(result));
}

void SocketTransport::fail_completions_for_peer(NodeId node, NodeId peer) {
  NodeState& state = *nodes_[node];
  std::vector<CompletionFn> cbs;
  std::vector<GetCompletionFn> get_cbs;
  {
    std::lock_guard lock(state.completions_mu);
    for (auto it = state.completions.begin();
         it != state.completions.end();) {
      if (it->second.dst == peer) {
        cbs.push_back(std::move(it->second.fn));
        it = state.completions.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = state.get_completions.begin();
         it != state.get_completions.end();) {
      if (it->second.dst == peer) {
        get_cbs.push_back(std::move(it->second.fn));
        it = state.get_completions.erase(it);
      } else {
        ++it;
      }
    }
  }
  const Status gone =
      unavailable("peer " + std::to_string(peer) + " disconnected");
  for (auto& cb : cbs) {
    if (cb) cb(gone);
  }
  for (auto& cb : get_cbs) {
    if (cb) cb(gone);
  }
}

// --- wire codec ---------------------------------------------------------------

static Bytes encode_wire(const std::uint8_t kind, std::uint8_t code,
                         std::uint16_t am_id, NodeId src, std::uint64_t cid,
                         std::uint64_t f0, std::uint64_t f1, std::uint64_t f2,
                         ByteSpan payload) {
  Bytes out;
  out.reserve(kWireFrameMin + payload.size());
  put_u32(out, static_cast<std::uint32_t>(kHeaderBytes + payload.size()));
  out.push_back(kind);
  out.push_back(code);
  put_u16(out, am_id);
  put_u32(out, src);
  put_u64(out, cid);
  put_u64(out, f0);
  put_u64(out, f1);
  put_u64(out, f2);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status SocketTransport::send_frame(NodeId node, NodeId peer, Bytes wire,
                                   bool control) {
  NodeState& state = *nodes_[node];
  Link& link = state.links[peer];
  if (link.fd < 0) {
    return invalid_argument("no link from node " + std::to_string(node) +
                            " to node " + std::to_string(peer));
  }
  if (!link.connected) {
    return unavailable("peer " + std::to_string(peer) + " disconnected");
  }
  if (!control && link.tx_queued >= options_.send_buffer_bytes) {
    backpressure_rejects_.fetch_add(1, std::memory_order_relaxed);
    return backpressure_status(node, peer);
  }
  link.tx_queued += wire.size();
  link.tx.push_back(std::move(wire));
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  flush_link(node, peer);
  return Status::ok();
}

bool SocketTransport::flush_link(NodeId node, NodeId peer) {
  NodeState& state = *nodes_[node];
  Link& link = state.links[peer];
  if (!link.connected) return false;
  bool wrote = false;
  while (!link.tx.empty()) {
    const Bytes& front = link.tx.front();
    const std::size_t want = front.size() - link.tx_front_off;
    const ssize_t n = ::send(link.fd, front.data() + link.tx_front_off, want,
                             MSG_NOSIGNAL);
    if (n > 0) {
      wrote = true;
      bytes_sent_.fetch_add(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
      link.tx_queued -= static_cast<std::size_t>(n);
      link.tx_front_off += static_cast<std::size_t>(n);
      if (link.tx_front_off == front.size()) {
        link.tx.pop_front();
        link.tx_front_off = 0;
      } else {
        // The kernel took part of the frame: honest partial write. The
        // remainder stays queued; frame bytes never interleave because the
        // front frame always finishes first.
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      disconnect_link(node, peer, "write failed");
      break;
    }
  }
  return wrote;
}

bool SocketTransport::read_link(NodeId node, NodeId peer) {
  NodeState& state = *nodes_[node];
  Link& link = state.links[peer];
  if (!link.connected) return false;
  bool any = false;
  bool eof = false;
  bool err = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(link.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      any = true;
      bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                                std::memory_order_relaxed);
      link.rx.insert(link.rx.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    } else if (n == 0) {
      eof = true;
      break;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno == EINTR) {
      continue;
    } else {
      err = true;
      break;
    }
  }
  // Deliver every complete frame that arrived before a disconnect; only a
  // partial tail is discarded (and counted) by disconnect_link.
  if (any) parse_frames(node, peer, link);
  if (!link.connected) return any;
  if (eof || err) {
    disconnect_link(node, peer, eof ? "peer closed" : "read failed");
  }
  return any;
}

void SocketTransport::parse_frames(NodeId node, NodeId peer, Link& link) {
  std::size_t off = 0;
  while (link.rx.size() - off >= 4) {
    const std::uint32_t len = get_u32(link.rx.data() + off);
    if (len < kHeaderBytes || len > options_.max_frame_bytes) {
      TC_LOG(kError, "socket")
          << "node " << node << ": protocol error from peer " << peer
          << " (frame length " << len << ")";
      disconnect_link(node, peer, "protocol error");
      return;  // disconnect_link cleared rx
    }
    if (link.rx.size() - off - 4 < len) break;
    const std::uint8_t* p = link.rx.data() + off + 4;
    Frame frame;
    frame.kind = static_cast<FrameKind>(p[0]);
    frame.code = p[1];
    frame.am_id = get_u16(p + 2);
    frame.src = get_u32(p + 4);
    frame.cid = get_u64(p + 8);
    frame.f0 = get_u64(p + 16);
    frame.f1 = get_u64(p + 24);
    frame.f2 = get_u64(p + 32);
    frame.payload.assign(p + kHeaderBytes, p + len);
    off += 4 + len;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    handle_frame(node, std::move(frame));
    // An ack send inside handle_frame may have torn this link down and
    // cleared rx under us.
    if (!link.connected) return;
  }
  if (off > 0) {
    link.rx.erase(link.rx.begin(),
                  link.rx.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void SocketTransport::disconnect_link(NodeId node, NodeId peer,
                                      const char* reason) {
  NodeState& state = *nodes_[node];
  Link& link = state.links[peer];
  if (!link.connected) return;
  link.connected = false;
  if (!link.rx.empty()) {
    rx_partial_discards_.fetch_add(1, std::memory_order_relaxed);
  }
  link.rx.clear();
  link.tx.clear();
  link.tx_front_off = 0;
  link.tx_queued = 0;
  disconnects_.fetch_add(1, std::memory_order_relaxed);
  TC_LOG(kWarn, "socket") << "node " << node << ": link to peer " << peer
                          << " down (" << reason << ")";
  fail_completions_for_peer(node, peer);
}

void SocketTransport::reply(NodeId node, NodeId peer, Frame frame) {
  if (peer == node) {
    handle_frame(node, std::move(frame));
    return;
  }
  // Completions and barriers must survive full tx queues or flow control
  // deadlocks the protocol above it, so replies ride as control frames; a
  // dead link is already handled by fail_completions_for_peer on the
  // other side's disconnect.
  (void)send_frame(node, peer,
                   encode_wire(static_cast<std::uint8_t>(frame.kind),
                               frame.code, frame.am_id, frame.src, frame.cid,
                               frame.f0, frame.f1, frame.f2,
                               as_span(frame.payload)),
                   /*control=*/true);
}

void SocketTransport::handle_frame(NodeId node, Frame frame) {
  NodeState& state = *nodes_[node];
  switch (frame.kind) {
    case FrameKind::kHello:
      break;  // only meaningful during bootstrap
    case FrameKind::kSend: {
      state.worker.deliver_message(std::move(frame.payload), frame.src);
      if (frame.cid != 0) {
        Frame ack;
        ack.kind = FrameKind::kAck;
        ack.src = node;
        ack.cid = frame.cid;
        reply(node, frame.src, std::move(ack));
      }
      break;
    }
    case FrameKind::kAm: {
      Status status = state.worker.deliver_am(frame.am_id,
                                              std::move(frame.payload),
                                              frame.src);
      if (frame.cid != 0) {
        Frame ack;
        ack.kind = FrameKind::kAck;
        ack.src = node;
        ack.cid = frame.cid;
        ack.code = static_cast<std::uint8_t>(status.code());
        if (!status.is_ok()) {
          ack.payload.assign(status.message().begin(),
                             status.message().end());
        }
        reply(node, frame.src, std::move(ack));
      }
      break;
    }
    case FrameKind::kPut: {
      Status status = Status::ok();
      {
        std::lock_guard lock(state.mem_mu);
        auto target = state.memory.translate(frame.f0, frame.f1,
                                             frame.payload.size());
        if (target.is_ok()) {
          std::memcpy(*target, frame.payload.data(), frame.payload.size());
        } else {
          status = target.status();
        }
      }
      if (frame.cid != 0) {
        Frame ack;
        ack.kind = FrameKind::kAck;
        ack.src = node;
        ack.cid = frame.cid;
        ack.code = static_cast<std::uint8_t>(status.code());
        if (!status.is_ok()) {
          ack.payload.assign(status.message().begin(),
                             status.message().end());
        }
        reply(node, frame.src, std::move(ack));
      }
      break;
    }
    case FrameKind::kGet: {
      Frame ack;
      ack.kind = FrameKind::kGetAck;
      ack.src = node;
      ack.cid = frame.cid;
      {
        std::lock_guard lock(state.mem_mu);
        auto source = state.memory.translate(frame.f0, frame.f1, frame.f2);
        if (source.is_ok()) {
          ack.payload.assign(*source, *source + frame.f2);
        } else {
          ack.code = static_cast<std::uint8_t>(source.status().code());
          ack.payload.assign(source.status().message().begin(),
                             source.status().message().end());
        }
      }
      reply(node, frame.src, std::move(ack));
      break;
    }
    case FrameKind::kAck: {
      Status status =
          frame.code == 0
              ? Status::ok()
              : Status(static_cast<ErrorCode>(frame.code),
                       std::string(frame.payload.begin(),
                                   frame.payload.end()));
      complete(node, frame.cid, std::move(status));
      break;
    }
    case FrameKind::kGetAck: {
      if (frame.code == 0) {
        complete_get(node, frame.cid, std::move(frame.payload));
      } else {
        complete_get(node, frame.cid,
                     Status(static_cast<ErrorCode>(frame.code),
                            std::string(frame.payload.begin(),
                                        frame.payload.end())));
      }
      break;
    }
    case FrameKind::kSegment: {
      MemRegion region;
      region.rkey = frame.f0;
      region.base = nullptr;  // one-sided access is serviced by the owner
      region.length = frame.f1;
      std::lock_guard lock(segments_mu_);
      remote_segments_[frame.src] = region;
      break;
    }
    case FrameKind::kBarrier: {
      if (frame.f1 == 0) {
        ++state.barrier_arrivals[frame.f0];
      } else {
        state.barrier_released.insert(frame.f0);
      }
      break;
    }
  }
}

// --- data plane ---------------------------------------------------------------

void SocketTransport::post_send(NodeId src, NodeId dst, ByteSpan data,
                                std::size_t fragments,
                                CompletionFn on_complete) {
  NodeState* state = local_state(src);
  if (state == nullptr) {
    if (on_complete) {
      on_complete(invalid_argument("post_send: node " + std::to_string(src) +
                                   " is not local"));
    }
    return;
  }
  std::uint64_t cid = 0;
  if (on_complete) cid = stash_completion(src, dst, std::move(on_complete));
  if (src == dst) {
    Frame frame;
    frame.kind = FrameKind::kSend;
    frame.src = src;
    frame.cid = cid;
    frame.f0 = fragments;
    frame.payload.assign(data.begin(), data.end());
    handle_frame(src, std::move(frame));
    return;
  }
  Status posted = send_frame(
      src, dst,
      encode_wire(static_cast<std::uint8_t>(FrameKind::kSend), 0, 0, src, cid,
                  fragments, 0, 0, data),
      /*control=*/false);
  if (!posted.is_ok() && cid != 0) complete(src, cid, std::move(posted));
}

void SocketTransport::post_am(NodeId src, NodeId dst, AmId id, ByteSpan payload,
                              CompletionFn on_complete) {
  NodeState* state = local_state(src);
  if (state == nullptr) {
    if (on_complete) {
      on_complete(invalid_argument("post_am: node " + std::to_string(src) +
                                   " is not local"));
    }
    return;
  }
  std::uint64_t cid = 0;
  if (on_complete) cid = stash_completion(src, dst, std::move(on_complete));
  if (src == dst) {
    Frame frame;
    frame.kind = FrameKind::kAm;
    frame.src = src;
    frame.am_id = id;
    frame.cid = cid;
    frame.payload.assign(payload.begin(), payload.end());
    handle_frame(src, std::move(frame));
    return;
  }
  Status posted = send_frame(
      src, dst,
      encode_wire(static_cast<std::uint8_t>(FrameKind::kAm), 0, id, src, cid,
                  0, 0, 0, payload),
      /*control=*/false);
  if (!posted.is_ok() && cid != 0) complete(src, cid, std::move(posted));
}

void SocketTransport::post_put(NodeId src, const RemoteAddr& dst, ByteSpan data,
                               CompletionFn on_complete) {
  NodeState* state = local_state(src);
  if (state == nullptr) {
    if (on_complete) {
      on_complete(invalid_argument("post_put: node " + std::to_string(src) +
                                   " is not local"));
    }
    return;
  }
  std::uint64_t cid = 0;
  if (on_complete) {
    cid = stash_completion(src, dst.node, std::move(on_complete));
  }
  if (src == dst.node) {
    Frame frame;
    frame.kind = FrameKind::kPut;
    frame.src = src;
    frame.cid = cid;
    frame.f0 = dst.rkey;
    frame.f1 = dst.offset;
    frame.payload.assign(data.begin(), data.end());
    handle_frame(src, std::move(frame));
    return;
  }
  Status posted = send_frame(
      src, dst.node,
      encode_wire(static_cast<std::uint8_t>(FrameKind::kPut), 0, 0, src, cid,
                  dst.rkey, dst.offset, 0, data),
      /*control=*/false);
  if (!posted.is_ok() && cid != 0) complete(src, cid, std::move(posted));
}

void SocketTransport::post_get(NodeId src, const RemoteAddr& addr,
                               std::size_t length,
                               GetCompletionFn on_complete) {
  NodeState* state = local_state(src);
  if (state == nullptr) {
    if (on_complete) {
      on_complete(invalid_argument("post_get: node " + std::to_string(src) +
                                   " is not local"));
    }
    return;
  }
  const std::uint64_t cid =
      stash_get_completion(src, addr.node, std::move(on_complete));
  if (src == addr.node) {
    Frame frame;
    frame.kind = FrameKind::kGet;
    frame.src = src;
    frame.cid = cid;
    frame.f0 = addr.rkey;
    frame.f1 = addr.offset;
    frame.f2 = length;
    handle_frame(src, std::move(frame));
    return;
  }
  Status posted = send_frame(
      src, addr.node,
      encode_wire(static_cast<std::uint8_t>(FrameKind::kGet), 0, 0, src, cid,
                  addr.rkey, addr.offset, length, {}),
      /*control=*/false);
  if (!posted.is_ok()) complete_get(src, cid, std::move(posted));
}

// --- registered memory --------------------------------------------------------

StatusOr<MemRegion> SocketTransport::register_window(NodeId node, void* base,
                                                     std::size_t length) {
  NodeState* state = local_state(node);
  if (state == nullptr) {
    return invalid_argument("register_window: node " + std::to_string(node) +
                            " is not local");
  }
  std::lock_guard lock(state->mem_mu);
  return state->memory.register_memory(base, length);
}

Status SocketTransport::expose_segment(NodeId node, void* base,
                                       std::size_t length) {
  NodeState* state = local_state(node);
  if (state == nullptr) {
    return invalid_argument("expose_segment: node " + std::to_string(node) +
                            " is not local");
  }
  MemRegion region;
  {
    std::lock_guard lock(state->mem_mu);
    if (state->exposed.has_value()) {
      return already_exists("node " + std::to_string(node) +
                            " already exposes a segment");
    }
    auto registered = state->memory.register_memory(base, length);
    if (!registered.is_ok()) return registered.status();
    state->exposed = *registered;
    region = *registered;
  }
  if (self_ != kAllLocal) broadcast_segment(node, region);
  return Status::ok();
}

void SocketTransport::broadcast_segment(NodeId node, const MemRegion& region) {
  for (NodeId peer = 0; peer < node_count_; ++peer) {
    if (peer == node) continue;
    (void)send_frame(
        node, peer,
        encode_wire(static_cast<std::uint8_t>(FrameKind::kSegment), 0, 0, node,
                    0, region.rkey, region.length, 0, {}),
        /*control=*/true);
  }
}

std::optional<MemRegion> SocketTransport::exposed_segment(NodeId node) const {
  const NodeState* state = local_state(node);
  if (state != nullptr) {
    std::lock_guard lock(state->mem_mu);
    return state->exposed;
  }
  std::lock_guard lock(segments_mu_);
  auto it = remote_segments_.find(node);
  if (it == remote_segments_.end()) return std::nullopt;
  return it->second;
}

Status SocketTransport::wait_for_segment(NodeId node, NodeId owner) {
  return run_until(node, [this, owner] {
    return exposed_segment(owner).has_value();
  });
}

// --- two-sided receive & AM dispatch ------------------------------------------

Status SocketTransport::register_am_handler(NodeId node, AmId id,
                                            AmHandler handler) {
  NodeState* state = local_state(node);
  if (state == nullptr) {
    return invalid_argument("register_am_handler: node " +
                            std::to_string(node) + " is not local");
  }
  return state->worker.register_am(id, std::move(handler));
}

Status SocketTransport::unregister_am_handler(NodeId node, AmId id) {
  NodeState* state = local_state(node);
  if (state == nullptr) {
    return invalid_argument("unregister_am_handler: node " +
                            std::to_string(node) + " is not local");
  }
  return state->worker.unregister_am(id);
}

std::optional<ReceivedMessage> SocketTransport::try_recv(NodeId node) {
  NodeState* state = local_state(node);
  if (state == nullptr) return std::nullopt;
  return state->worker.try_recv();
}

void SocketTransport::set_delivery_notifier(NodeId node,
                                            std::function<void()> notify) {
  NodeState* state = local_state(node);
  if (state == nullptr) return;
  state->worker.set_delivery_notifier(std::move(notify));
}

// --- timers & progress --------------------------------------------------------

void SocketTransport::execute_on(NodeId node, std::int64_t cost_ns,
                                 std::function<void()> fn, bool scale_cost) {
  // Wall-clock backend: modeled charges are no-ops and the caller is, per
  // the Transport contract, already on `node`'s progress context.
  (void)node;
  (void)cost_ns;
  (void)scale_cost;
  fn();
}

void SocketTransport::schedule_after(NodeId node, std::int64_t delay_ns,
                                     std::function<void()> fn) {
  NodeState* state = local_state(node);
  if (state == nullptr) return;
  std::lock_guard lock(state->timers_mu);
  state->timers.push_back(Timer{now_ns() + delay_ns, std::move(fn)});
}

bool SocketTransport::fire_due_timers(NodeId node) {
  NodeState& state = *nodes_[node];
  std::vector<std::function<void()>> due;
  {
    std::lock_guard lock(state.timers_mu);
    if (state.timers.empty()) return false;
    const std::int64_t now = now_ns();
    for (std::size_t i = 0; i < state.timers.size();) {
      if (state.timers[i].deadline_ns <= now) {
        due.push_back(std::move(state.timers[i].fn));
        state.timers[i] = std::move(state.timers.back());
        state.timers.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (auto& fn : due) fn();
  return !due.empty();
}

bool SocketTransport::progress(NodeId node) {
  NodeState* state = local_state(node);
  if (state == nullptr) return false;
  bool did_work = fire_due_timers(node);
  for (NodeId peer = 0; peer < node_count_; ++peer) {
    if (peer == node) continue;
    Link& link = state->links[peer];
    if (link.fd < 0 || !link.connected) continue;
    if (!link.tx.empty()) did_work |= flush_link(node, peer);
    did_work |= read_link(node, peer);
  }
  return did_work;
}

Status SocketTransport::run_until(NodeId node,
                                  const std::function<bool()>& pred) {
  if (local_state(node) == nullptr) {
    return invalid_argument("run_until: node " + std::to_string(node) +
                            " is not local");
  }
  const std::int64_t deadline =
      now_ns() + options_.run_until_timeout_ms * 1'000'000;
  int idle_spins = 0;
  std::uint32_t iterations = 0;
  while (!pred()) {
    // Poll the budget even while busy: a self-sustaining forward loop must
    // still hit the watchdog instead of hanging ctest.
    if ((++iterations & 0xFF) == 0 && now_ns() > deadline) {
      return resource_exhausted(
          "socket run_until: timeout after " +
          std::to_string(options_.run_until_timeout_ms) + " ms");
    }
    if (progress(node)) {
      idle_spins = 0;
      continue;
    }
    if (now_ns() > deadline) {
      return resource_exhausted(
          "socket run_until: timeout after " +
          std::to_string(options_.run_until_timeout_ms) + " ms");
    }
    if (++idle_spins >= 64) {
      std::this_thread::yield();
    }
  }
  return Status::ok();
}

// --- process-mode coordination ------------------------------------------------

Status SocketTransport::barrier(NodeId node, std::uint64_t id) {
  NodeState* state = local_state(node);
  if (state == nullptr || self_ == kAllLocal) {
    return failed_precondition("barrier: process mode only");
  }
  if (node_count_ == 1) return Status::ok();
  if (node == 0) {
    // Coordinator: wait for everyone, then release everyone. Driving
    // progress here services peers' AMs/PUTs/GETs while they catch up.
    TC_RETURN_IF_ERROR(run_until(node, [state, id, this] {
      auto it = state->barrier_arrivals.find(id);
      return it != state->barrier_arrivals.end() &&
             it->second == node_count_ - 1;
    }));
    state->barrier_arrivals.erase(id);
    for (NodeId peer = 1; peer < node_count_; ++peer) {
      Status sent = send_frame(
          node, peer,
          encode_wire(static_cast<std::uint8_t>(FrameKind::kBarrier), 0, 0,
                      node, 0, id, 1, 0, {}),
          /*control=*/true);
      if (!sent.is_ok()) return sent;
    }
    return Status::ok();
  }
  TC_RETURN_IF_ERROR(send_frame(
      node, 0,
      encode_wire(static_cast<std::uint8_t>(FrameKind::kBarrier), 0, 0, node,
                  0, id, 0, 0, {}),
      /*control=*/true));
  TC_RETURN_IF_ERROR(run_until(
      node, [state, id] { return state->barrier_released.count(id) != 0; }));
  state->barrier_released.erase(id);
  return Status::ok();
}

Status SocketTransport::kill_connection(NodeId node, NodeId peer) {
  NodeState* state = local_state(node);
  if (state == nullptr || peer >= node_count_ || peer == node) {
    return invalid_argument("kill_connection: no such link");
  }
  const int fd = state->links[peer].fd;
  if (fd < 0) return invalid_argument("kill_connection: link never existed");
  // shutdown (not close) so the owning progress contexts observe EOF /
  // EPIPE on their next spin without any fd-reuse race; they then run the
  // regular disconnect path.
  if (::shutdown(fd, SHUT_RDWR) != 0 && errno != ENOTCONN) {
    return errno_status("shutdown");
  }
  return Status::ok();
}

}  // namespace tc::fabric
