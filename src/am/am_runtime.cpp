#include "am/am_runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>

#include "common/log.hpp"

namespace tc::am {

namespace {

constexpr std::uint16_t kResultIndex = 0xffff;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Bytes encode_am_frame(std::uint16_t index, std::uint32_t origin,
                      ByteSpan payload) {
  ByteWriter w;
  w.u16(kAmFrameMagic);
  w.u16(index);
  w.u32(origin);
  w.raw(payload);
  return std::move(w).take();
}

}  // namespace

StatusOr<std::unique_ptr<AmRuntime>> AmRuntime::create(fabric::Fabric& fabric,
                                                       fabric::NodeId node,
                                                       Options options) {
  if (node >= fabric.node_count()) {
    return invalid_argument("AmRuntime::create: no node " +
                            std::to_string(node));
  }
  auto transport = std::make_unique<fabric::SimTransport>(fabric);
  fabric::Transport& transport_ref = *transport;
  TC_ASSIGN_OR_RETURN(auto runtime, create(transport_ref, node, options));
  runtime->owned_transport_ = std::move(transport);
  return runtime;
}

StatusOr<std::unique_ptr<AmRuntime>> AmRuntime::create(
    fabric::Transport& transport, fabric::NodeId node, Options options) {
  if (node >= transport.node_count()) {
    return invalid_argument("AmRuntime::create: no node " +
                            std::to_string(node));
  }
  auto runtime =
      std::unique_ptr<AmRuntime>(new AmRuntime(transport, node, options));
  TC_RETURN_IF_ERROR(transport.register_am_handler(
      node, kAmChannel,
      [raw = runtime.get()](ByteSpan frame, fabric::NodeId source) {
        raw->on_am(frame, source);
      }));
  return runtime;
}

AmRuntime::AmRuntime(fabric::Transport& transport, fabric::NodeId node,
                     Options options)
    : transport_(&transport), node_(node), options_(options) {}

AmRuntime::~AmRuntime() {
  (void)transport_->unregister_am_handler(node_, kAmChannel);
}

StatusOr<std::uint16_t> AmRuntime::register_handler(AmHandlerFn handler) {
  if (!handler) return invalid_argument("register_handler: empty handler");
  std::unique_lock lock(handlers_mu_);
  if (handlers_.size() >= kResultIndex) {
    return resource_exhausted("AM handler table full");
  }
  handlers_.push_back(std::make_shared<const AmHandlerFn>(std::move(handler)));
  return static_cast<std::uint16_t>(handlers_.size() - 1);
}

void AmRuntime::set_peers(std::vector<fabric::NodeId> peers) {
  peers_ = std::move(peers);
  self_peer_ = ~0ull;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i] == node_) self_peer_ = i;
  }
}

fabric::Endpoint& AmRuntime::endpoint(fabric::NodeId dst) {
  auto* sim = dynamic_cast<fabric::SimTransport*>(transport_);
  if (sim == nullptr) {
    TC_LOG(kError, "am") << "node " << node_
                         << ": endpoint() called on the '"
                         << transport_->name() << "' backend";
    std::abort();
  }
  return sim->endpoint(node_, dst);
}

Status AmRuntime::send(fabric::NodeId dst, std::uint16_t index,
                       ByteSpan payload, std::uint32_t origin_node) {
  {
    std::shared_lock lock(handlers_mu_);
    if (index >= handlers_.size()) {
      return invalid_argument("AM send: handler index " +
                              std::to_string(index) + " not registered here");
    }
  }
  ++stats_.sent;
  transport_->post_am(node_, dst, kAmChannel,
                      as_span(encode_am_frame(index, origin_node, payload)),
                      {});
  return Status::ok();
}

Status AmRuntime::reply(const AmContext& ctx, ByteSpan data) {
  ++stats_.replies;
  transport_->post_am(node_, ctx.origin_node, kAmChannel,
                      as_span(encode_am_frame(kResultIndex, node_, data)), {});
  return Status::ok();
}

void AmRuntime::on_am(ByteSpan frame, fabric::NodeId source) {
  ByteReader r(frame);
  std::uint16_t magic = 0, index = 0;
  std::uint32_t origin = 0;
  if (!r.u16(magic) || magic != kAmFrameMagic || !r.u16(index) ||
      !r.u32(origin)) {
    ++stats_.errors;
    TC_LOG(kWarn, "am") << "node " << node_ << ": malformed AM frame from "
                        << source;
    return;
  }
  ByteSpan payload = frame.subspan(kAmHeaderSize);

  if (index == kResultIndex) {
    ++stats_.results_received;
    if (result_handler_) result_handler_(payload, origin);
    return;
  }
  // Pin the handler under the shared lock and invoke it unlocked, so the
  // handler body may re-enter this runtime (send, reply, register).
  std::shared_ptr<const AmHandlerFn> handler;
  {
    std::shared_lock lock(handlers_mu_);
    if (index < handlers_.size()) handler = handlers_[index];
  }
  if (!handler) {
    ++stats_.errors;
    TC_LOG(kWarn, "am") << "node " << node_ << ": no AM handler " << index;
    return;
  }

  // Charge the dispatch+execute cost *before* the handler's visible effects
  // (replies, forwards), matching the ifunc execution path.
  Bytes mutable_payload(payload.begin(), payload.end());
  const std::int64_t configured = options_.exec_cost_ns;
  transport_->execute_on(
      node_, configured >= 0 ? configured : 0,
      // Calibrated constants charge raw (see Runtime::charge).
      [this, index, origin, handler = std::move(handler),
       mutable_payload = std::move(mutable_payload)]() mutable {
        AmContext ctx;
        ctx.runtime = this;
        ctx.node = node_;
        ctx.origin_node = origin;
        ctx.target_ptr = target_ptr_;
        ctx.shard_base = shard_base_;
        ctx.shard_size = shard_size_;
        ctx.peers = &peers_;
        ctx.self_peer = self_peer_;
        ctx.handler_index = index;

        const std::int64_t t0 = now_ns();
        (*handler)(ctx, mutable_payload.data(), mutable_payload.size());
        const std::int64_t measured = now_ns() - t0;
        if (options_.exec_cost_ns < 0) {
          transport_->consume_compute(node_, measured, /*scale_cost=*/true);
        }
        ++stats_.executed;
        transport_->sync_to_compute_horizon(node_);
      },
      /*scale_cost=*/false);
}

}  // namespace tc::am
