// Active-Message baseline (paper §IV-A): handlers are *predeployed* —
// compiled into the application on every node — and requests carry only a
// function index plus the payload. This is the semantics GASNet-style AM
// provides, and the paper uses it as the lower bound on ifunc overhead:
// no code motion, no JIT, no dynamic linking.
//
// Frame layout: u16 am magic | u16 handler index | u32 origin | payload.
//
// Dispatch is re-entrant and the handler table is lock-guarded: a handler
// body may send further AMs, reply, or register new handlers while other
// progress threads (shm backend) dispatch concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "fabric/endpoint.hpp"
#include "fabric/fabric.hpp"
#include "fabric/sim_transport.hpp"
#include "fabric/transport.hpp"

namespace tc::am {

inline constexpr std::uint16_t kAmFrameMagic = 0x7C41;  // "A|"
inline constexpr std::size_t kAmHeaderSize = 8;
inline constexpr fabric::AmId kAmChannel = 17;  ///< fabric AM id used

/// Handler context mirroring the ifunc ExecContext surface, so the same
/// application logic can run in AM and ifunc modes.
struct AmContext {
  class AmRuntime* runtime = nullptr;
  fabric::NodeId node = 0;
  fabric::NodeId origin_node = 0;
  void* target_ptr = nullptr;
  std::uint64_t* shard_base = nullptr;
  std::uint64_t shard_size = 0;
  const std::vector<fabric::NodeId>* peers = nullptr;
  std::uint64_t self_peer = ~0ull;
  std::uint16_t handler_index = 0;
};

/// A predeployed handler: payload is mutable (in-place updates before
/// re-sending are allowed, as with ifuncs).
using AmHandlerFn = std::function<void(AmContext&, std::uint8_t* payload,
                                       std::uint64_t size)>;

struct AmOptions {
  /// Per-invocation compute charge (<0 = measured real time).
  std::int64_t exec_cost_ns = -1;
};

class AmRuntime {
 public:
  using Options = AmOptions;

  /// Attaches to a simulated-fabric node (owns a SimTransport adapter).
  static StatusOr<std::unique_ptr<AmRuntime>> create(fabric::Fabric& fabric,
                                                     fabric::NodeId node,
                                                     Options options = {});
  /// Attaches to a node of any Transport backend (sim or shm).
  static StatusOr<std::unique_ptr<AmRuntime>> create(
      fabric::Transport& transport, fabric::NodeId node, Options options = {});
  ~AmRuntime();

  fabric::NodeId node_id() const { return node_; }
  fabric::Transport& transport() { return *transport_; }

  /// Registers a handler; the returned index must be identical on every
  /// node (predeployment discipline — register in the same order).
  StatusOr<std::uint16_t> register_handler(AmHandlerFn handler);

  /// Sends an AM request: index + payload (no code!).
  Status send(fabric::NodeId dst, std::uint16_t index, ByteSpan payload,
              std::uint32_t origin_node);
  Status send(fabric::NodeId dst, std::uint16_t index, ByteSpan payload) {
    return send(dst, index, payload, node_);
  }

  // Target-side configuration (same surface as core::Runtime).
  void set_target_ptr(void* target) { target_ptr_ = target; }
  void set_shard(std::uint64_t* base, std::uint64_t size) {
    shard_base_ = base;
    shard_size_ = size;
  }
  void set_peers(std::vector<fabric::NodeId> peers);
  using ResultHandler = std::function<void(ByteSpan, fabric::NodeId)>;
  void set_result_handler(ResultHandler handler) {
    result_handler_ = std::move(handler);
  }

  /// Sends a result frame back to `origin` (the AM ReturnResult analogue).
  Status reply(const AmContext& ctx, ByteSpan data);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t executed = 0;
    std::uint64_t replies = 0;
    std::uint64_t results_received = 0;
    std::uint64_t errors = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Sim backend only (see Runtime::endpoint).
  fabric::Endpoint& endpoint(fabric::NodeId dst);

 private:
  AmRuntime(fabric::Transport& transport, fabric::NodeId node,
            Options options);
  void on_am(ByteSpan frame, fabric::NodeId source);

  fabric::Transport* transport_;
  std::unique_ptr<fabric::SimTransport> owned_transport_;
  fabric::NodeId node_;
  Options options_;
  /// Guards the handler table; dispatch pins the handler (shared_ptr copy,
  /// not a function copy) under the lock and invokes it unlocked
  /// (re-entrancy).
  mutable std::shared_mutex handlers_mu_;
  std::vector<std::shared_ptr<const AmHandlerFn>> handlers_;

  void* target_ptr_ = nullptr;
  std::uint64_t* shard_base_ = nullptr;
  std::uint64_t shard_size_ = 0;
  std::vector<fabric::NodeId> peers_;
  std::uint64_t self_peer_ = ~0ull;
  ResultHandler result_handler_;
  Stats stats_;
};

}  // namespace tc::am
