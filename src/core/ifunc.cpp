#include "core/ifunc.hpp"

#if TC_WITH_LLVM
#include "ir/bitcode.hpp"
#include "ir/kernel_builder.hpp"
#endif
#include "vm/lower.hpp"

namespace tc::core {

namespace {

/// The sin_sum kernel calls sin() from libm: declare the dependency in the
/// archive's deps manifest so targets dlopen it before invocation.
void declare_kernel_deps(ir::KernelKind kind, ir::FatBitcode& archive) {
  if (kind == ir::KernelKind::kSinSum) {
    archive.add_dependency("libm.so.6");
  }
}

}  // namespace

StatusOr<IfuncLibrary> IfuncLibrary::from_archive(std::string name,
                                                  ir::FatBitcode archive) {
  if (name.empty()) return invalid_argument("ifunc name must be non-empty");
  if (archive.entries().empty()) {
    return invalid_argument("ifunc archive has no entries");
  }
  IfuncLibrary lib;
  lib.name_ = std::move(name);
  lib.id_ = ifunc_id_for_name(lib.name_);
  lib.serialized_ = archive.serialize();
  lib.archive_ = std::move(archive);
  return lib;
}

StatusOr<IfuncLibrary> IfuncLibrary::from_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options) {
#if TC_WITH_LLVM
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      ir::build_default_fat_kernel(kind, options));
  declare_kernel_deps(kind, archive);
  std::string name = ir::kernel_name(kind);
  if (options.hll_guards) name += "_hll";
  if (options.chaser_tagged) name += "_w";
  return from_archive(std::move(name), std::move(archive));
#else
  (void)kind;
  (void)options;
  return failed_precondition(
      "bitcode kernels need LLVM (built with TC_WITH_LLVM=OFF); use "
      "from_portable_kernel");
#endif
}

std::string portable_kernel_name(ir::KernelKind kind) {
  return std::string(ir::kernel_name(kind)) + "_vm";
}

StatusOr<IfuncLibrary> IfuncLibrary::from_portable_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      vm::build_portable_kernel(kind, options));
  declare_kernel_deps(kind, archive);
  std::string name = portable_kernel_name(kind);
  if (options.hll_guards) name += "_hll";
  if (options.chaser_tagged) name += "_w";
  return from_archive(std::move(name), std::move(archive));
}

StatusOr<IfuncLibrary> IfuncLibrary::from_tiered_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      vm::build_portable_kernel(kind, options));
#if TC_WITH_LLVM
  // Ride the per-ISA bitcode alongside the portable entry so the receiving
  // runtime can promote past the interpreter once the ifunc is hot. Without
  // LLVM the archive stays portable-only and runs interpreted forever.
  for (const ir::TargetDescriptor& target : ir::default_fat_targets()) {
    llvm::LLVMContext context;
    TC_ASSIGN_OR_RETURN(auto module,
                        ir::build_kernel(context, kind, target, options));
    TC_RETURN_IF_ERROR(
        archive.add_entry(target, ir::module_to_bitcode(*module)));
  }
#endif
  declare_kernel_deps(kind, archive);
  std::string name = std::string(ir::kernel_name(kind)) + "_tiered";
  if (options.hll_guards) name += "_hll";
  if (options.chaser_tagged) name += "_w";
  return from_archive(std::move(name), std::move(archive));
}

}  // namespace tc::core
