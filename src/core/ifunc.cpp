#include "core/ifunc.hpp"

namespace tc::core {

StatusOr<IfuncLibrary> IfuncLibrary::from_archive(std::string name,
                                                  ir::FatBitcode archive) {
  if (name.empty()) return invalid_argument("ifunc name must be non-empty");
  if (archive.entries().empty()) {
    return invalid_argument("ifunc archive has no entries");
  }
  IfuncLibrary lib;
  lib.name_ = std::move(name);
  lib.id_ = ifunc_id_for_name(lib.name_);
  lib.serialized_ = archive.serialize();
  lib.archive_ = std::move(archive);
  return lib;
}

StatusOr<IfuncLibrary> IfuncLibrary::from_kernel(
    ir::KernelKind kind, const ir::KernelOptions& options) {
  TC_ASSIGN_OR_RETURN(ir::FatBitcode archive,
                      ir::build_default_fat_kernel(kind, options));
  // The sin_sum kernel calls sin() from libm: declare the dependency in the
  // archive's deps manifest so targets dlopen it before invocation.
  if (kind == ir::KernelKind::kSinSum) {
    archive.add_dependency("libm.so.6");
  }
  std::string name = ir::kernel_name(kind);
  if (options.hll_guards) name += "_hll";
  return from_archive(std::move(name), std::move(archive));
}

}  // namespace tc::core
