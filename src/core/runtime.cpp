#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/hash.hpp"
#include "common/log.hpp"
#include "core/context.hpp"
#include "ir/target_info.hpp"
#include "vm/fuse.hpp"

namespace tc::core {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t sent_key(fabric::NodeId peer, std::uint64_t ifunc_id) {
  return hash_combine(peer, ifunc_id);
}

}  // namespace

StatusOr<std::unique_ptr<Runtime>> Runtime::create(fabric::Fabric& fabric,
                                                   fabric::NodeId node,
                                                   RuntimeOptions options) {
  if (node >= fabric.node_count()) {
    return invalid_argument("Runtime::create: no node " +
                            std::to_string(node));
  }
  auto transport = std::make_unique<fabric::SimTransport>(fabric);
  auto runtime = std::unique_ptr<Runtime>(
      new Runtime(*transport, node, std::move(options)));
  runtime->owned_transport_ = std::move(transport);
  runtime->attach_notifier();
  return runtime;
}

StatusOr<std::unique_ptr<Runtime>> Runtime::create(
    fabric::Transport& transport, fabric::NodeId node,
    RuntimeOptions options) {
  if (node >= transport.node_count()) {
    return invalid_argument("Runtime::create: no node " +
                            std::to_string(node));
  }
  auto runtime = std::unique_ptr<Runtime>(
      new Runtime(transport, node, std::move(options)));
  runtime->attach_notifier();
  return runtime;
}

Runtime::Runtime(fabric::Transport& transport, fabric::NodeId node,
                 RuntimeOptions options)
    : transport_(&transport), node_(node), options_(std::move(options)) {
  alive_token_ = std::make_shared<Runtime*>(this);
  cache_ = jit::CodeCache(options_.cache_capacity);
  for (auto& [name, address] : runtime_hook_symbols()) {
    options_.engine.extra_symbols.emplace_back(std::move(name), address);
  }
}

void Runtime::attach_notifier() {
  if (!options_.auto_poll) return;
  transport_->set_delivery_notifier(node_, [this] {
    // Wake the progress engine: serialize one poll step with the node's
    // other modeled work (on the shm backend this runs inline on the
    // node's progress context).
    transport_->execute_on(node_, 0, [this] { poll(1); },
                           /*scale_cost=*/true);
  });
}

Runtime::~Runtime() {
#if TC_WITH_LLVM
  // Stop the background promotion worker first: it may still hold a compile
  // in flight, and everything it touches (engine, mailbox) must outlive it.
  {
    std::lock_guard lock(promote_mu_);
    promote_stop_ = true;
  }
  promote_cv_.notify_all();
  if (promote_thread_.joinable()) promote_thread_.join();
#endif
  // Like closing a socket with unsent buffers: frames still waiting in a
  // batch are cancelled, not silently lost — each queued completion hears
  // about it. (Shipping them here would schedule fabric events against
  // endpoints this destructor is about to free.) Completions are extracted
  // under the shard lock and invoked outside it, like every flush path —
  // a callback may re-enter the coalescer.
  std::vector<fabric::CompletionFn> cancelled;
  for (BatchShard& shard : batch_shards_) {
    std::lock_guard lock(shard.mu);
    for (auto& [dst, batch] : shard.batches) {
      (void)dst;
      for (fabric::CompletionFn& fn : batch.completions) {
        if (fn) cancelled.push_back(std::move(fn));
      }
      batch.frames.clear();
      batch.completions.clear();
    }
  }
  for (fabric::CompletionFn& fn : cancelled) {
    fn(unavailable("runtime destroyed with batched frames pending"));
  }
  if (options_.auto_poll) {
    transport_->set_delivery_notifier(node_, nullptr);
  }
}

fabric::SimTransport* Runtime::sim_transport() {
  auto* sim = dynamic_cast<fabric::SimTransport*>(transport_);
  if (sim == nullptr) {
    // A sim-only accessor (fabric(), endpoint()) on a wall-clock backend is
    // a programming error; fail loudly even in release builds rather than
    // returning through a null reference.
    TC_LOG(kError, "runtime")
        << "node " << node_ << ": sim-only accessor called on the '"
        << transport_->name() << "' backend";
    std::abort();
  }
  return sim;
}

Status Runtime::ensure_engine() {
#if TC_WITH_LLVM
  if (engine_) return Status::ok();
  TC_ASSIGN_OR_RETURN(engine_, jit::OrcEngine::create(options_.engine));
  return Status::ok();
#else
  return failed_precondition(
      "this runtime was built without LLVM (TC_WITH_LLVM=OFF); only the "
      "portable interpreter tier can execute ifuncs");
#endif
}

fabric::Endpoint& Runtime::endpoint(fabric::NodeId dst) {
  return sim_transport()->endpoint(node_, dst);
}

// --- registration -------------------------------------------------------------

StatusOr<std::uint64_t> Runtime::register_ifunc(IfuncLibrary library) {
  const std::uint64_t id = library.id();
  if (registry_.contains(id)) {
    return already_exists("ifunc '" + library.name() + "' already registered");
  }
  names_.emplace(library.name(), id);
  auto [it, inserted] =
      registry_.emplace(id, Registered{std::move(library), nullptr});
  (void)inserted;
  it->second.generation = ++registration_seq_;
  return id;
}

bool Runtime::is_registered(std::uint64_t ifunc_id) const {
  return registry_.contains(ifunc_id);
}

StatusOr<std::uint64_t> Runtime::ifunc_id_by_name(
    const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) return not_found("no ifunc named '" + name + "'");
  return it->second;
}

Status Runtime::deregister_ifunc(std::uint64_t ifunc_id) {
  auto it = registry_.find(ifunc_id);
  if (it == registry_.end()) {
    return not_found("ifunc " + std::to_string(ifunc_id) + " not registered");
  }
  names_.erase(it->second.library.name());
  registry_.erase(it);
  if (cache_.contains(ifunc_id)) {
    TC_RETURN_IF_ERROR(cache_.erase(ifunc_id));
  }
  return Status::ok();
}

Status Runtime::expose_segment(void* base, std::size_t length) {
  return transport_->expose_segment(node_, base, length);
}

void Runtime::set_peers(std::vector<fabric::NodeId> peers) {
  peers_ = std::move(peers);
  self_peer_ = ~0ull;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i] == node_) self_peer_ = i;
  }
}

// --- sending ---------------------------------------------------------------------

StatusOr<Frame> Runtime::create_message(std::uint64_t ifunc_id,
                                        ByteSpan payload) const {
  auto it = registry_.find(ifunc_id);
  if (it == registry_.end()) {
    return failed_precondition("create_message: ifunc " +
                               std::to_string(ifunc_id) + " not registered");
  }
  const IfuncLibrary& lib = it->second.library;
  return Frame::build(lib.id(), lib.repr(), as_span(lib.serialized_archive()),
                      payload, node_);
}

void Runtime::record_span(obs::SpanKind kind, const obs::TraceContext& trace,
                          std::uint32_t span_id, std::int64_t ts_ns,
                          std::int64_t dur_ns, std::uint64_t ifunc_id,
                          std::uint32_t peer, std::uint8_t repr,
                          std::uint8_t tier) {
  obs::TraceEvent event;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.trace_id = trace.trace_id;
  event.ifunc_id = ifunc_id;
  event.node = static_cast<std::uint32_t>(node_);
  event.peer = peer;
  event.span_id = span_id;
  event.parent_span = trace.parent_span;
  event.hop = trace.hop;
  event.kind = kind;
  event.repr = repr;
  event.tier = tier;
  options_.tracer->ring(static_cast<std::uint32_t>(node_)).push(event);
}

void Runtime::record_batch_flush(std::int64_t first_queued_ns) {
  if (options_.metrics == nullptr || first_queued_ns == 0) return;
  const std::int64_t waited = transport_->now_ns() - first_queued_ns;
  options_.metrics->histogram("batch_flush_ns")
      .record(waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
}

void Runtime::dispatch_frame_bytes(fabric::NodeId dst, ByteSpan bytes,
                                   fabric::CompletionFn on_complete) {
  if (options_.batch.max_frames > 1) {
    enqueue_batched_frame(dst, bytes, std::move(on_complete));
  } else {
    post_wire(dst, bytes, /*fragments=*/1, std::move(on_complete));
  }
}

void Runtime::post_wire(fabric::NodeId dst, ByteSpan bytes,
                        std::size_t fragments,
                        fabric::CompletionFn on_complete) {
  if (options_.max_send_retries == 0) {
    transport_->post_send(node_, dst, bytes, fragments,
                          std::move(on_complete));
    return;
  }
  // Retry needs the bytes to outlive the first attempt; the one copy here
  // is the entire cost of enabling the knob, shared across all attempts.
  auto buffer = std::make_shared<const Bytes>(bytes.begin(), bytes.end());
  post_wire_attempt(dst, std::move(buffer), fragments, std::move(on_complete),
                    options_.max_send_retries);
}

void Runtime::post_wire_attempt(fabric::NodeId dst,
                                std::shared_ptr<const Bytes> buffer,
                                std::size_t fragments,
                                fabric::CompletionFn on_complete,
                                std::size_t retries_left) {
  // A failed completion means the transport knows the frame did not land
  // (lossy-shim drop/truncate detection, a NIC timeout): re-shipping the
  // same bytes is at-least-once, never at-least-twice — successful frames
  // are not retried. Backoff rides schedule_after so a correlated fault
  // burst has passed by the next attempt; the weak token keeps a backoff
  // armed at destruction time from touching a freed runtime.
  ByteSpan view = as_span(*buffer);
  transport_->post_send(
      node_, dst, view, fragments,
      [this, alive = std::weak_ptr<Runtime*>(alive_token_), dst,
       buffer = std::move(buffer), fragments,
       on_complete = std::move(on_complete),
       retries_left](Status status) mutable {
        if (status.is_ok()) {
          if (on_complete) on_complete(status);
          return;
        }
        auto token = alive.lock();
        if (!token) {
          if (on_complete) on_complete(status);
          return;
        }
        if (retries_left == 0) {
          ++stats_.send_retries_exhausted;
          TC_LOG(kWarn, "runtime")
              << "node " << node_ << " send to node " << dst
              << " abandoned after retry budget: " << status.to_string();
          if (on_complete) on_complete(status);
          return;
        }
        ++stats_.send_retries;
        transport_->schedule_after(
            node_, options_.retry_backoff_ns,
            [this, alive, dst, buffer = std::move(buffer), fragments,
             on_complete = std::move(on_complete), retries_left]() mutable {
              if (alive.expired()) {
                if (on_complete) {
                  on_complete(unavailable("runtime destroyed mid-retry"));
                }
                return;
              }
              post_wire_attempt(dst, std::move(buffer), fragments,
                                std::move(on_complete), retries_left - 1);
            });
      });
}

Status Runtime::send_frame(fabric::NodeId dst, const Frame& frame,
                           fabric::CompletionFn on_complete) {
  if (dst == node_) {
    return invalid_argument("send_frame: destination is the local node");
  }
  const std::uint64_t key = sent_key(dst, frame.header().ifunc_id);
  bool peer_has_code = false;
  {
    std::lock_guard lock(sent_code_mu_);
    peer_has_code = !options_.force_full_frames && sent_code_.contains(key);
    if (!peer_has_code) sent_code_.insert(key);
  }
  if (peer_has_code) {
    ++stats_.frames_sent_truncated;
    stats_.code_bytes_saved += frame.full_size() - frame.truncated_size();
  } else {
    ++stats_.frames_sent_full;
    stats_.code_bytes_sent += frame.header().code_size;
  }
  if (tracing() && !frame.header().traced()) {
    // Root of a new request chain: mint a trace id, stamp hop 0, and ship
    // a traced wire image instead. Everything downstream — the arrival, the
    // execute span, any forwards — inherits this context. traced_wire
    // splices only the bytes that actually ship, so the warm (truncated)
    // path never copies the code archive.
    obs::TraceContext root;
    root.trace_id = options_.tracer->next_trace_id();
    root.hop = 0;
    const std::uint32_t span = options_.tracer->next_span_id();
    // The frame carries the send span as parent, so the receiving node's
    // spans hang under it.
    root.parent_span = span;
    const Bytes wire =
        Frame::traced_wire(frame, root, /*include_code=*/!peer_has_code);
    obs::TraceContext at_send = root;
    at_send.parent_span = 0;  // the root send has no parent
    record_span(obs::SpanKind::kRootSend, at_send, span, transport_->now_ns(),
                0, frame.header().ifunc_id, static_cast<std::uint32_t>(dst),
                frame.header().repr, 0);
    dispatch_frame_bytes(dst, as_span(wire), std::move(on_complete));
    return Status::ok();
  }
  dispatch_frame_bytes(
      dst, peer_has_code ? frame.truncated_view() : frame.full_view(),
      std::move(on_complete));
  return Status::ok();
}

void Runtime::set_batch_options(BatchOptions batch) {
  // Ship whatever is queued first: a direct send under the new
  // configuration must not overtake frames batched under the old one.
  for (BatchShard& shard : batch_shards_) {
    std::vector<fabric::NodeId> dirty;
    {
      std::lock_guard lock(shard.mu);
      for (auto& [dst, pending] : shard.batches) {
        if (!pending.frames.empty()) dirty.push_back(dst);
      }
    }
    for (fabric::NodeId dst : dirty) flush_batch(dst);
  }
  options_.batch = batch;
}

void Runtime::enqueue_batched_frame(fabric::NodeId dst, ByteSpan frame_bytes,
                                    fabric::CompletionFn on_complete) {
  // The container's part count is a u16 on the wire; an absurd max_frames
  // must flush early rather than overflow the count.
  const std::size_t max_frames =
      std::min<std::size_t>(options_.batch.max_frames, 0xFFFF);
  BatchShard& shard = batch_shard(dst);
  std::vector<Bytes> full_frames;
  std::vector<fabric::CompletionFn> full_completions;
  bool arm_deadline = false;
  std::uint64_t armed_generation = 0;
  {
    std::lock_guard lock(shard.mu);
    PendingBatch& batch = shard.batches[dst];
    if (batch.frames.empty() && options_.metrics != nullptr) {
      batch.first_queued_ns = transport_->now_ns();
    }
    batch.frames.emplace_back(frame_bytes.begin(), frame_bytes.end());
    batch.completions.push_back(std::move(on_complete));
    if (batch.frames.size() >= max_frames) {
      ++stats_.batch_full_flushes;
      record_batch_flush(batch.first_queued_ns);
      full_frames = std::move(batch.frames);
      full_completions = std::move(batch.completions);
      batch.frames.clear();
      batch.completions.clear();
      ++batch.generation;
      batch.deadline_armed = false;
    } else if (!batch.deadline_armed) {
      batch.deadline_armed = true;
      arm_deadline = true;
      armed_generation = batch.generation;
    }
  }
  if (!full_frames.empty()) {
    ship_batch(dst, std::move(full_frames), std::move(full_completions));
    return;
  }
  if (arm_deadline) {
    // Arm the flush deadline for this batch generation. If the batch fills
    // and ships first, the generation moves on and the event is a no-op.
    // The weak token makes the event safe when it outlives the Runtime —
    // the fabric cannot cancel queued events.
    transport_->schedule_after(
        node_, options_.batch.flush_ns,
        [alive = std::weak_ptr<Runtime*>(alive_token_), dst,
         armed_generation] {
          auto token = alive.lock();
          if (!token) return;
          Runtime& self = **token;
          BatchShard& sh = self.batch_shard(dst);
          std::vector<Bytes> frames;
          std::vector<fabric::CompletionFn> completions;
          {
            std::lock_guard lock(sh.mu);
            auto it = sh.batches.find(dst);
            if (it == sh.batches.end() ||
                it->second.generation != armed_generation ||
                it->second.frames.empty()) {
              return;
            }
            ++self.stats_.batch_deadline_flushes;
            self.record_batch_flush(it->second.first_queued_ns);
            frames = std::move(it->second.frames);
            completions = std::move(it->second.completions);
            it->second.frames.clear();
            it->second.completions.clear();
            ++it->second.generation;
            it->second.deadline_armed = false;
          }
          self.ship_batch(dst, std::move(frames), std::move(completions));
        });
  }
}

void Runtime::flush_batch(fabric::NodeId dst) {
  BatchShard& shard = batch_shard(dst);
  std::vector<Bytes> frames;
  std::vector<fabric::CompletionFn> completions;
  {
    std::lock_guard lock(shard.mu);
    auto it = shard.batches.find(dst);
    if (it == shard.batches.end() || it->second.frames.empty()) return;
    PendingBatch& batch = it->second;
    record_batch_flush(batch.first_queued_ns);
    frames = std::move(batch.frames);
    completions = std::move(batch.completions);
    batch.frames.clear();
    batch.completions.clear();
    ++batch.generation;
    batch.deadline_armed = false;
  }
  ship_batch(dst, std::move(frames), std::move(completions));
}

void Runtime::ship_batch(fabric::NodeId dst, std::vector<Bytes> frames,
                         std::vector<fabric::CompletionFn> completions) {
  if (frames.empty()) return;
  if (frames.size() == 1) {
    // A lone frame ships bare: no container overhead, and the receive path
    // is identical to the unbatched protocol.
    post_wire(dst, as_span(frames.front()), /*fragments=*/1,
              std::move(completions.front()));
    return;
  }
  StatusOr<Bytes> container = encode_batch_frame(frames);
  if (!container.is_ok()) {
    // Unreachable with the enqueue-side u16 cap, but never drop frames on
    // a codec refusal — ship them individually instead.
    for (std::size_t i = 0; i < frames.size(); ++i) {
      post_wire(dst, as_span(frames[i]), /*fragments=*/1,
                std::move(completions[i]));
    }
    return;
  }
  ++stats_.batches_sent;
  stats_.frames_coalesced += frames.size();
  // Retried as one unit: a failed container was not delivered at all (the
  // shim discards mangled frames whole), so re-shipping repeats no part.
  post_wire(dst, as_span(*container), frames.size(),
            [completions = std::move(completions)](Status status) {
              for (const fabric::CompletionFn& fn : completions) {
                if (fn) fn(status);
              }
            });
}

Status Runtime::send_ifunc(fabric::NodeId dst, std::uint64_t ifunc_id,
                           ByteSpan payload,
                           fabric::CompletionFn on_complete) {
  TC_ASSIGN_OR_RETURN(Frame frame, create_message(ifunc_id, payload));
  return send_frame(dst, frame, std::move(on_complete));
}

// --- receive path -------------------------------------------------------------

std::size_t Runtime::poll(std::size_t max_frames) {
  std::size_t processed = 0;
  while (processed < max_frames) {
    auto msg = transport_->try_recv(node_);
    if (!msg.has_value()) break;
    ++processed;
    Status status = process_message(*msg);
    if (!status.is_ok()) {
      ++stats_.protocol_errors;
      TC_LOG(kWarn, "runtime") << "node " << node_
                               << " dropped frame: " << status.to_string();
    }
  }
  return processed;
}

Status Runtime::process_message(const fabric::ReceivedMessage& msg) {
  ByteSpan data = as_span(msg.data);
  if (is_batch_frame(data)) {
    TC_ASSIGN_OR_RETURN(std::vector<ByteSpan> parts,
                        decode_batch_frame(data));
    ++stats_.batches_received;
    for (ByteSpan part : parts) {
      if (options_.batch_unpack_cost_ns > 0) {
        transport_->consume_compute(node_, options_.batch_unpack_cost_ns,
                                    /*scale_cost=*/false);
      }
      ++stats_.frames_received;
      // A bad sub-frame must not poison its batch-mates: each is counted
      // and dropped individually, the rest of the container still lands
      // (the partial-redelivery guarantee the NACK tests rely on).
      Status status = process_frame(part, msg.source);
      if (!status.is_ok()) {
        ++stats_.protocol_errors;
        TC_LOG(kWarn, "runtime")
            << "node " << node_
            << " dropped batched frame: " << status.to_string();
      }
    }
    return Status::ok();
  }
  ++stats_.frames_received;
  return process_frame(data, msg.source);
}

Status Runtime::process_frame(ByteSpan data, fabric::NodeId source) {
  if (is_result_frame(data)) {
    TC_ASSIGN_OR_RETURN(ResultFrame result, decode_result_frame(data));
    ++stats_.results_received;
    if (result.trace.traced() && tracing()) {
      record_span(obs::SpanKind::kResultArrival, result.trace,
                  options_.tracer->next_span_id(), transport_->now_ns(), 0,
                  0, static_cast<std::uint32_t>(source), 0, 0);
    }
    if (result_handler_) result_handler_(result.data, source);
    return Status::ok();
  }
  if (is_nack_frame(data)) {
    TC_ASSIGN_OR_RETURN(std::uint64_t ifunc_id, decode_nack_frame(data));
    ++stats_.nacks_received;
    auto it = registry_.find(ifunc_id);
    if (it == registry_.end()) {
      return not_found("NACK for ifunc " + std::to_string(ifunc_id) +
                       " we never registered");
    }
    // Re-ship the code in a payload-less frame and forget the cached-at-peer
    // assumption so future regular sends stay consistent.
    const IfuncLibrary& lib = it->second.library;
    TC_ASSIGN_OR_RETURN(
        Frame frame,
        Frame::build(ifunc_id, lib.repr(), as_span(lib.serialized_archive()),
                     {}, node_, /*code_only=*/true));
    post_wire(source, frame.full_view(), /*fragments=*/1, {});
    ++stats_.frames_sent_full;
    stats_.code_bytes_sent += frame.header().code_size;
    return Status::ok();
  }
  return process_ifunc_frame(data, source);
}

std::int64_t Runtime::charge(std::int64_t configured_ns,
                             std::int64_t measured_ns) {
  // Calibrated constants are already per-platform measurements and charge
  // raw; host-measured durations are retargeted by the node's scale.
  if (configured_ns >= 0) {
    transport_->consume_compute(node_, configured_ns, /*scale_cost=*/false);
    return configured_ns;
  }
  transport_->consume_compute(node_, measured_ns, /*scale_cost=*/true);
  return measured_ns;
}

Status Runtime::process_ifunc_frame(ByteSpan data, fabric::NodeId source) {
  const bool tracing_on = tracing();
  const std::int64_t t_arrive = tracing_on ? transport_->now_ns() : 0;
  TC_ASSIGN_OR_RETURN(bool has_code, Frame::validate(data));
  TC_ASSIGN_OR_RETURN(FrameHeader header, Frame::peek_header(data));

  if (header.traced() && tracing_on) {
    record_span(obs::SpanKind::kArrival, header.trace,
                options_.tracer->next_span_id(), t_arrive, 0, header.ifunc_id,
                static_cast<std::uint32_t>(source), header.repr, 0);
    // Decode covers validate + header peek: virtual time does not advance
    // in sim (the span collapses to an instant), wall time on shm.
    const std::int64_t decode_ns = transport_->now_ns() - t_arrive;
    record_span(obs::SpanKind::kDecode, header.trace,
                options_.tracer->next_span_id(), t_arrive, decode_ns,
                header.ifunc_id, static_cast<std::uint32_t>(source),
                header.repr, 0);
    // Cold-path materialization below (compile/link/load) parents under
    // this frame's context.
    active_trace_ = header.trace;
  }

  auto it = registry_.find(header.ifunc_id);
  if (it == registry_.end()) {
    if (!has_code) {
      if (options_.nack_recovery) {
        // Cache-miss recovery: stash the payload and ask the sender to
        // re-ship the code (e.g. we restarted and lost the registry). A
        // batched window can carry several truncated frames for the same
        // missing ifunc; only the first stashed payload raises a NACK —
        // one code resend redelivers the whole window, without duplicates.
        ByteSpan payload = Frame::payload_view(data, header);
        bool first_pending = false;
        {
          std::lock_guard lock(pending_payloads_mu_);
          auto& pending = pending_payloads_[header.ifunc_id];
          first_pending = pending.empty();
          pending.push_back({Bytes(payload.begin(), payload.end()),
                             header.origin_node, header.trace});
        }
        if (first_pending) {
          post_wire(source, as_span(encode_nack_frame(header.ifunc_id)),
                    /*fragments=*/1, {});
          ++stats_.nacks_sent;
        }
        return Status::ok();
      }
      // The sender believed we had the code (or truncated erroneously).
      return failed_precondition(
          "truncated frame for unknown ifunc " +
          std::to_string(header.ifunc_id));
    }
    // First sighting: auto-register from the shipped archive (paper §III-D).
    TC_ASSIGN_OR_RETURN(
        ir::FatBitcode archive,
        ir::FatBitcode::deserialize(Frame::code_view(data, header)));
    char name_buf[32];
    std::snprintf(name_buf, sizeof(name_buf), "ifunc_%016llx",
                  static_cast<unsigned long long>(header.ifunc_id));
    TC_ASSIGN_OR_RETURN(
        IfuncLibrary lib,
        IfuncLibrary::from_archive(name_buf, std::move(archive)));
    // The registry is keyed by the *wire* identity, which is authoritative:
    // the synthetic local name hashes differently, but forwarded frames must
    // carry the original id so caching stays consistent across hops.
    ++stats_.auto_registered;
    auto [reg_it, inserted] = registry_.emplace(
        header.ifunc_id, Registered{std::move(lib), nullptr});
    (void)inserted;
    reg_it->second.generation = ++registration_seq_;
    it = reg_it;
  }

  Registered& reg = it->second;
  if (reg.entry == nullptr && !reg.has_program) {
    TC_RETURN_IF_ERROR(materialize_and_cache(reg, header.ifunc_id));
  } else {
    (void)cache_.find(header.ifunc_id);  // count the cache hit
  }

  // Drain any payloads that were waiting for this code (NACK recovery).
  std::vector<PendingPayload> drained;
  {
    std::lock_guard lock(pending_payloads_mu_);
    if (auto pending = pending_payloads_.find(header.ifunc_id);
        pending != pending_payloads_.end()) {
      drained = std::move(pending->second);
      pending_payloads_.erase(pending);
    }
  }
  for (PendingPayload& stashed : drained) {
    execute_ifunc(reg, header.ifunc_id, std::move(stashed.payload),
                  stashed.origin, stashed.trace);
  }
  if (header.code_only) return Status::ok();

  // Copy the payload: ifuncs mutate it in place (e.g. the chaser refreshes
  // addr/depth before forwarding itself).
  ByteSpan payload = Frame::payload_view(data, header);
  execute_ifunc(reg, header.ifunc_id, Bytes(payload.begin(), payload.end()),
                header.origin_node, header.trace);
  return Status::ok();
}

Status Runtime::compile_registered(Registered& reg) {
#if TC_WITH_LLVM
  // The background promotion worker shares the ORC engine; serialize all
  // engine traffic (creation, add, remove) behind one mutex.
  std::lock_guard<std::mutex> engine_lock(engine_mu_);
  TC_RETURN_IF_ERROR(ensure_engine());
  const IfuncLibrary& lib = reg.library;
  TC_ASSIGN_OR_RETURN(const ir::ArchiveEntry* entry,
                      lib.archive().select(engine_->triple()));
  jit::CompileStats compile_stats;
  const std::int64_t t0 =
      tracing() && active_trace_.traced() ? transport_->now_ns() : 0;
  if (lib.repr() == ir::CodeRepr::kObject) {
    TC_ASSIGN_OR_RETURN(
        reg.entry,
        engine_->add_ifunc_object(lib.name(), as_span(entry->code),
                                  lib.archive().dependencies(),
                                  &compile_stats));
    reg.tier = jit::Tier::kLinked;
    ++stats_.object_links;
    stats_.real_jit_ns_total += compile_stats.compile_ns;
    const std::int64_t charged =
        charge(options_.link_cost_ns, compile_stats.compile_ns);
    if (tracing() && active_trace_.traced()) {
      record_span(obs::SpanKind::kLink, active_trace_,
                  options_.tracer->next_span_id(), t0, charged, lib.id(),
                  static_cast<std::uint32_t>(node_),
                  static_cast<std::uint8_t>(lib.repr()),
                  static_cast<std::uint8_t>(reg.tier));
    }
  } else {
    // kBitcode archives, and the bitcode entries riding in a kPortable
    // archive (tier promotion).
    TC_ASSIGN_OR_RETURN(
        reg.entry,
        engine_->add_ifunc_bitcode(lib.name(), as_span(entry->code),
                                   lib.archive().dependencies(),
                                   &compile_stats));
    reg.tier = jit::Tier::kJit;
    ++stats_.jit_compiles;
    const std::int64_t measured = compile_stats.parse_ns +
                                  compile_stats.optimize_ns +
                                  compile_stats.compile_ns;
    stats_.real_jit_ns_total += measured;
    const std::int64_t charged = charge(options_.jit_cost_ns, measured);
    if (tracing() && active_trace_.traced()) {
      record_span(obs::SpanKind::kCompile, active_trace_,
                  options_.tracer->next_span_id(), t0, charged, lib.id(),
                  static_cast<std::uint32_t>(node_),
                  static_cast<std::uint8_t>(lib.repr()),
                  static_cast<std::uint8_t>(reg.tier));
    }
  }
  reg.engine_lib = lib.name();
  last_compile_stats_ = compile_stats;
  return Status::ok();
#else
  (void)reg;
  return ensure_engine();  // reports the without-LLVM precondition failure
#endif
}

Status Runtime::load_portable(Registered& reg) {
  const IfuncLibrary& lib = reg.library;
  TC_ASSIGN_OR_RETURN(const ir::ArchiveEntry* entry,
                      lib.archive().select_portable());
  const std::int64_t t_virt =
      tracing() && active_trace_.traced() ? transport_->now_ns() : 0;
  const std::int64_t t0 = now_ns();
  TC_ASSIGN_OR_RETURN(vm::Program program,
                      vm::Program::deserialize(as_span(entry->code)));
  // Superinstruction fusion is a node-local rewrite applied after decode —
  // the wire format never carries fused opcodes (see vm/fuse.hpp).
  if (options_.fuse_superinstructions) {
    reg.program = vm::fuse_program(
        program, nullptr,
        vm::FuseOptions{/*ld_br=*/true,
                        /*ldi_runs=*/options_.fuse_ldi_runs});
  } else {
    reg.program = std::move(program);
  }
  const std::int64_t measured = now_ns() - t0;
  reg.has_program = true;
  reg.tier = jit::Tier::kInterpreted;
  ++stats_.portable_loads;
  // The decode is the entire cold-path cost of this tier — microseconds
  // where the JIT tier pays milliseconds.
  const std::int64_t charged = charge(options_.portable_load_cost_ns, measured);
  if (tracing() && active_trace_.traced()) {
    record_span(obs::SpanKind::kPortableLoad, active_trace_,
                options_.tracer->next_span_id(), t_virt, charged, lib.id(),
                static_cast<std::uint32_t>(node_),
                static_cast<std::uint8_t>(lib.repr()),
                static_cast<std::uint8_t>(reg.tier));
  }
  jit::CompileStats compile_stats;
  compile_stats.code_bytes = entry->code.size();
  compile_stats.parse_ns = measured;
  last_compile_stats_ = compile_stats;
  return Status::ok();
}

Status Runtime::materialize_registered(Registered& reg) {
  if (reg.library.repr() == ir::CodeRepr::kPortable) {
    return load_portable(reg);
  }
  return compile_registered(reg);
}

Status Runtime::materialize_and_cache(Registered& reg,
                                      std::uint64_t ifunc_id) {
  TC_RETURN_IF_ERROR(materialize_registered(reg));
  // The wire identity may differ from the library-name hash for
  // auto-registered ifuncs; cache under the wire id.
  if (cache_.contains(ifunc_id)) return Status::ok();
  jit::CachedIfunc cached;
  cached.entry = reg.entry;
  cached.tier = reg.tier;
  cached.compile_stats = last_compile_stats_;
  std::uint64_t evicted = 0;
  TC_RETURN_IF_ERROR(cache_.insert(ifunc_id, cached, &evicted));
  if (evicted != 0) {
    ++stats_.cache_evictions;
    if (auto evicted_it = registry_.find(evicted);
        evicted_it != registry_.end()) {
      // Release the materialized tier; the archive stays registered, so
      // a later frame re-materializes without a NACK round trip.
      Registered& victim = evicted_it->second;
#if TC_WITH_LLVM
      if (victim.entry != nullptr && !victim.engine_lib.empty()) {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        if (engine_ != nullptr) (void)engine_->remove_library(victim.engine_lib);
      }
      victim.engine_lib.clear();
      // A promotion compile may still be in flight for the victim; the
      // cleared flag makes its result read as stale and get discarded.
      victim.promote_pending = false;
#endif
      victim.entry = nullptr;
      victim.has_program = false;
      victim.program = vm::Program();
      victim.promotable = true;
    }
  }
  return Status::ok();
}

void Runtime::maybe_promote(Registered& reg, std::uint64_t ifunc_id) {
  if (reg.tier != jit::Tier::kInterpreted || options_.interp_only ||
      !reg.promotable || reg.invocations < options_.promote_after) {
    return;
  }
#if TC_WITH_LLVM
  if (reg.promote_pending) return;  // compile already in flight
  // Promotion needs a bitcode entry for this host riding in the portable
  // archive; probe once and remember a miss.
  auto entry = reg.library.archive().select(ir::host_triple());
  if (!entry.is_ok()) {
    reg.promotable = false;
    return;
  }
  // Snapshot everything the compile needs: the registration can be evicted
  // or deregistered while the job is in flight, so the worker never touches
  // `reg`. The engine library name is uniquified so a stale result can be
  // discarded without colliding with a later retry or eviction.
  PromoteJob job;
  job.ifunc_id = ifunc_id;
  job.generation = reg.generation;
  job.kernel = reg.library.name();
  job.engine_name =
      reg.library.name() + "#promo" + std::to_string(++promote_seq_);
  job.bitcode = (*entry)->code;
  job.deps = reg.library.archive().dependencies();
  reg.promote_pending = true;
  {
    std::lock_guard<std::mutex> lock(promote_mu_);
    if (!promote_thread_started_) {
      promote_thread_ = std::thread([this] { promotion_worker(); });
      promote_thread_started_ = true;
    }
    promote_queue_.push_back(std::move(job));
  }
  promote_cv_.notify_all();
#else
  (void)ifunc_id;
  reg.promotable = false;  // no JIT tier to promote to
#endif
}

#if TC_WITH_LLVM
// Background compile thread. Jobs are self-contained snapshots; the only
// shared state the worker touches is the ORC engine (under engine_mu_) and
// the completion mailbox (under promote_mu_). Results are applied on the
// progress context by apply_ready_promotions() — the worker never mutates a
// registration or a stat the progress thread reads without synchronization.
void Runtime::promotion_worker() {
  std::unique_lock<std::mutex> lock(promote_mu_);
  for (;;) {
    promote_cv_.wait(
        lock, [this] { return promote_stop_ || !promote_queue_.empty(); });
    if (promote_stop_) return;
    PromoteJob job = std::move(promote_queue_.front());
    promote_queue_.pop_front();
    ++promote_inflight_;
    lock.unlock();

    if (options_.promote_compile_hook) options_.promote_compile_hook();
    PromoteDone done;
    done.ifunc_id = job.ifunc_id;
    done.generation = job.generation;
    done.kernel = std::move(job.kernel);
    done.engine_name = std::move(job.engine_name);
    const std::int64_t t0 = now_ns();
    {
      std::lock_guard<std::mutex> engine_lock(engine_mu_);
      Status ready = ensure_engine();
      if (!ready.is_ok()) {
        done.status = ready;
      } else {
        auto compiled =
            engine_->add_ifunc_bitcode(done.engine_name, as_span(job.bitcode),
                                       job.deps, &done.compile_stats);
        if (compiled.is_ok()) {
          done.entry = *compiled;
        } else {
          done.status = compiled.status();
        }
      }
    }
    const std::int64_t measured = now_ns() - t0;
    if (options_.metrics != nullptr) {
      // Histogram::record is a relaxed atomic; the registry lookup takes
      // its own mutex. Both are safe off the progress thread.
      options_.metrics->histogram("promote_compile_ns/" + done.kernel)
          .record(measured > 0 ? static_cast<std::uint64_t>(measured) : 0);
    }

    lock.lock();
    promote_done_.push_back(std::move(done));
    promote_ready_.store(true, std::memory_order_release);
    --promote_inflight_;
    promote_cv_.notify_all();
  }
}

// Progress-context half of background promotion: drain the mailbox and swap
// compiled entries into their registrations. Runs at the top of every
// invocation, so the tier flip is atomic with respect to execution — an
// invocation either sees the interpreter or the compiled entry, never a torn
// intermediate.
void Runtime::apply_ready_promotions() {
  std::vector<PromoteDone> ready;
  {
    std::lock_guard<std::mutex> lock(promote_mu_);
    ready.swap(promote_done_);
    promote_ready_.store(false, std::memory_order_relaxed);
  }
  for (PromoteDone& done : ready) {
    auto it = registry_.find(done.ifunc_id);
    Registered* reg = it != registry_.end() ? &it->second : nullptr;
    // The generation check is what catches a dereg/re-register of the same
    // id while the compile was in flight: the new registration can look
    // promotion-ready in every other respect (pending, interpreted, no
    // entry), but this result was compiled from the *old* registration's
    // bitcode and must not be swapped in for the new one.
    const bool stale = reg == nullptr || reg->generation != done.generation;
    if (stale || !reg->promote_pending || reg->entry != nullptr ||
        !reg->has_program || reg->tier != jit::Tier::kInterpreted) {
      // The registration was evicted, deregistered, re-registered, or
      // re-tiered while the compile was in flight. Drop the orphaned
      // library.
      if (done.entry != nullptr) {
        std::lock_guard<std::mutex> engine_lock(engine_mu_);
        if (engine_ != nullptr) (void)engine_->remove_library(done.engine_name);
      }
      // Only the registration this result belongs to may have its pending
      // flag cleared — a successor generation's own compile may still be
      // in flight.
      if (reg != nullptr && !stale) reg->promote_pending = false;
      continue;
    }
    reg->promote_pending = false;
    if (!done.status.is_ok()) {
      ++stats_.promotions_failed;
      TC_LOG(kWarn, "runtime")
          << "node " << node_ << " promotion of '" << done.kernel
          << "' failed: " << done.status.to_string();
      reg->promotable = false;  // logged once; no retry this materialization
      continue;
    }
    reg->entry = done.entry;
    reg->tier = jit::Tier::kJit;
    reg->engine_lib = done.engine_name;
    ++stats_.tier_promotions;
    ++stats_.jit_compiles;
    stats_.real_jit_ns_total += done.compile_stats.parse_ns +
                                done.compile_stats.optimize_ns +
                                done.compile_stats.compile_ns;
    last_compile_stats_ = done.compile_stats;
    if (jit::CachedIfunc* cached = cache_.peek(done.ifunc_id);
        cached != nullptr) {
      cached->entry = reg->entry;
      cached->tier = reg->tier;
      cached->compile_stats = done.compile_stats;
    }
  }
}
#endif  // TC_WITH_LLVM

void Runtime::wait_for_promotions() {
#if TC_WITH_LLVM
  std::unique_lock<std::mutex> lock(promote_mu_);
  promote_cv_.wait(lock, [this] {
    return promote_queue_.empty() && promote_inflight_ == 0;
  });
#endif
}

void Runtime::execute_ifunc(Registered& reg, std::uint64_t ifunc_id,
                            Bytes payload, fabric::NodeId origin_node,
                            obs::TraceContext trace) {
  // The lookup+exec charge lands before the ifunc's visible effects: the
  // invocation is scheduled behind the charged interval. `reg` is stable:
  // unordered_map never moves nodes, and deregistration is not reachable
  // from inside the event this lambda runs in.
  Registered* regp = &reg;
  const std::int64_t configured = options_.lookup_exec_cost_ns;
  auto invoke = [this, regp, ifunc_id, origin_node, trace,
                 payload = std::move(payload)]() mutable {
#if TC_WITH_LLVM
    // Swap in any finished background promotions before the tier probe, so
    // this invocation (and the hop_service_ns it records) runs on the new
    // tier — the compile itself never stalled the progress thread.
    if (promote_ready_.load(std::memory_order_acquire)) {
      apply_ready_promotions();
    }
#endif
    const bool traced = trace.traced() && tracing();
    ExecContext ctx;
    ctx.runtime = this;
    ctx.node = node_;
    ctx.ifunc_id = ifunc_id;
    ctx.origin_node = origin_node;
    ctx.target_ptr = target_ptr_;
    ctx.shard_base = shard_base_;
    ctx.shard_size = shard_size_;
    ctx.peers = &peers_;
    ctx.self_peer = self_peer_;
    if (traced) {
      ctx.trace = trace;
      // Lazy re-materialization below parents its compile/link spans under
      // this hop (the execute span id is allocated after the tier probe so
      // the drained timeline reads lookup-then-execute).
      active_trace_ = trace;
    }
    const std::int64_t t_start = traced ? transport_->now_ns() : 0;

    if (regp->entry == nullptr && !regp->has_program) {
      // A bounded cache can evict this ifunc between frame processing and
      // this scheduled invocation; re-materialize from the retained
      // archive rather than calling through a released tier.
      Status status = materialize_and_cache(*regp, ifunc_id);
      if (!status.is_ok()) {
        ++stats_.protocol_errors;
        TC_LOG(kWarn, "runtime")
            << "node " << node_ << " re-materialization of '"
            << regp->library.name() << "' failed: " << status.to_string();
        return;
      }
    }
    const bool interpreted = regp->entry == nullptr && regp->has_program;
    if (traced) {
      // The tier probe is where the receive path asked the cache which
      // tier backs this invocation.
      record_span(obs::SpanKind::kTierLookup, trace,
                  options_.tracer->next_span_id(), t_start, 0, ifunc_id,
                  static_cast<std::uint32_t>(origin_node),
                  static_cast<std::uint8_t>(regp->library.repr()),
                  static_cast<std::uint8_t>(regp->tier));
      ctx.span_id = options_.tracer->next_span_id();
    }
    const std::int64_t t0 = now_ns();
    std::uint64_t interp_ops = 0;
    std::uint64_t interp_instrs = 0;
    std::uint64_t interp_inline_slots = 0;
    if (interpreted) {
      vm::HookTable hooks = runtime_vm_hooks(ctx);
      auto result =
          vm::execute(regp->program, hooks, payload.data(), payload.size());
      if (!result.is_ok()) {
        ++stats_.protocol_errors;
        TC_LOG(kWarn, "runtime")
            << "node " << node_ << " interpreter fault in '"
            << regp->library.name() << "': " << result.status().to_string();
        return;
      }
      interp_ops = result->ops;
      interp_instrs = result->instrs;
      interp_inline_slots = result->inline_fused_slots;
      ++stats_.interp_executions;
      stats_.interp_ops += interp_ops;
      stats_.interp_instrs += interp_instrs;
    } else {
      regp->entry(&ctx, payload.data(), payload.size());
    }
    const std::int64_t measured = now_ns() - t0;
    if (interpreted && options_.interp_op_ns >= 0) {
      // Calibrated interpreter tax. Every constituent instruction pays the
      // full per-instruction cost — fused windows execute every tail slot
      // for real, so they are charged per instruction, not per retired op.
      // The only work fusion provably removes is the dispatch of tail slots
      // the inlined Ld*Br handlers run (kFusedLdiRun's interpretive tail
      // loop saves nothing per microbenchmark — see vm/interp.hpp), so
      // exactly that share is refunded per inline_fused_slots. With fusion
      // off all three counters collapse (instrs == ops, inline slots == 0)
      // and the charge reduces to interp_op_ns × ops, bit-identical to the
      // pre-fusion model (the fig5-fig12 / BENCH_dapc byte-identity).
      const std::int64_t instrs = static_cast<std::int64_t>(interp_instrs);
      const std::int64_t refunded_slots =
          static_cast<std::int64_t>(interp_inline_slots);
      const std::int64_t dispatch_ns = std::clamp<std::int64_t>(
          options_.interp_dispatch_ns, 0, options_.interp_op_ns);
      transport_->consume_compute(
          node_,
          options_.interp_op_ns * instrs - dispatch_ns * refunded_slots,
          /*scale_cost=*/false);
    } else if (options_.lookup_exec_cost_ns < 0) {
      transport_->consume_compute(node_, measured, /*scale_cost=*/true);
    }
    ++stats_.frames_executed;
    ++regp->invocations;
    if (jit::CachedIfunc* cached = cache_.peek(ifunc_id); cached != nullptr) {
      cached->invocations = regp->invocations;
    }
    stats_.forwards += ctx.forwards_issued;
    stats_.injects += ctx.injects_issued;
    stats_.replies_sent += ctx.replies_issued;
    maybe_promote(*regp, ifunc_id);
    // Advance virtual time to the end of the charged work (guard costs,
    // measured execution) so callers observing fabric.now() after idling
    // see the completion time, not the invocation time.
    transport_->sync_to_compute_horizon(node_);
    if (traced) {
      // Service time of this hop: charged virtual ns on sim (the horizon
      // was just synced), wall-clock ns on shm.
      const std::int64_t service_ns = transport_->now_ns() - t_start;
      record_span(obs::SpanKind::kExecute, trace, ctx.span_id, t_start,
                  service_ns, ifunc_id,
                  static_cast<std::uint32_t>(origin_node),
                  static_cast<std::uint8_t>(regp->library.repr()),
                  static_cast<std::uint8_t>(regp->tier));
      active_trace_ = obs::TraceContext{};
    }
    if (options_.metrics != nullptr) {
      const std::int64_t hop_ns =
          traced ? transport_->now_ns() - t_start : measured;
      // Per-tier histogram pointers are cached on the registration — the
      // registry lookup (mutex + name build) is far too heavy per hop.
      obs::Histogram*& hist =
          regp->hop_hist[static_cast<std::size_t>(regp->tier)];
      if (hist == nullptr) {
        hist = &options_.metrics->histogram(
            "hop_service_ns/" + regp->library.name() + "/" +
            ir::code_repr_name(regp->library.repr()) + "/" +
            jit::tier_name(regp->tier));
      }
      hist->record(hop_ns > 0 ? static_cast<std::uint64_t>(hop_ns) : 0);
    }
  };
  transport_->execute_on(node_, configured >= 0 ? configured : 0,
                         std::move(invoke), /*scale_cost=*/false);
}

// --- ExecContext services ---------------------------------------------------------

Status Runtime::ctx_forward(ExecContext& ctx, std::uint64_t peer,
                            ByteSpan payload) {
  if (peers_.empty() || peer >= peers_.size()) {
    return out_of_range("forward: peer index " + std::to_string(peer) +
                        " out of range (peers=" +
                        std::to_string(peers_.size()) + ")");
  }
  auto it = registry_.find(ctx.ifunc_id);
  if (it == registry_.end()) {
    return internal_error("forward: executing ifunc not in registry");
  }
  const IfuncLibrary& lib = it->second.library;
  obs::TraceContext child;
  const obs::TraceContext* child_ptr = nullptr;
  if (ctx.trace.traced() && tracing()) {
    // The forwarded frame is the next hop of this chain, parented under
    // the send span so the tree reads root → execute → forward → execute.
    const std::uint32_t send_span = options_.tracer->next_span_id();
    child.trace_id = ctx.trace.trace_id;
    child.hop = ctx.trace.hop + 1;
    child.parent_span = send_span;
    child_ptr = &child;
    obs::TraceContext at_send = child;
    at_send.parent_span = ctx.span_id;
    record_span(obs::SpanKind::kForwardSend, at_send, send_span,
                transport_->now_ns(), 0, ctx.ifunc_id,
                static_cast<std::uint32_t>(peers_[peer]),
                static_cast<std::uint8_t>(lib.repr()), 0);
  }
  TC_ASSIGN_OR_RETURN(
      Frame frame,
      Frame::build(ctx.ifunc_id, lib.repr(), as_span(lib.serialized_archive()),
                   payload, ctx.origin_node, /*code_only=*/false, child_ptr));
  ++ctx.forwards_issued;
  // Depart after the compute this invocation has charged so far (e.g. HLL
  // guard costs for the loop iterations that preceded the forward).
  transport_->execute_on(
      node_, 0,
      [this, dst = peers_[peer], frame = std::move(frame)] {
        Status sent = send_frame(dst, frame);
        if (!sent.is_ok()) {
          ++stats_.forward_send_failures;
          TC_LOG(kWarn, "runtime")
              << "node " << node_ << " deferred forward to node " << dst
              << " failed: " << sent.to_string();
        }
      },
      /*scale_cost=*/true);
  return Status::ok();
}

Status Runtime::ctx_inject(ExecContext& ctx, std::uint64_t peer,
                           const char* ifunc_name, ByteSpan payload) {
  if (ifunc_name == nullptr) return invalid_argument("inject: null name");
  if (peers_.empty() || peer >= peers_.size()) {
    return out_of_range("inject: peer index out of range");
  }
  TC_ASSIGN_OR_RETURN(std::uint64_t id, ifunc_id_by_name(ifunc_name));
  const IfuncLibrary& lib = registry_.at(id).library;
  obs::TraceContext child;
  const obs::TraceContext* child_ptr = nullptr;
  if (ctx.trace.traced() && tracing()) {
    // Injected work stays on the parent chain (same trace id, next hop) —
    // it is caused by this invocation even though a different ifunc runs.
    const std::uint32_t send_span = options_.tracer->next_span_id();
    child.trace_id = ctx.trace.trace_id;
    child.hop = ctx.trace.hop + 1;
    child.parent_span = send_span;
    child_ptr = &child;
    obs::TraceContext at_send = child;
    at_send.parent_span = ctx.span_id;
    record_span(obs::SpanKind::kForwardSend, at_send, send_span,
                transport_->now_ns(), 0, id,
                static_cast<std::uint32_t>(peers_[peer]),
                static_cast<std::uint8_t>(lib.repr()), 0);
  }
  // Keep the chain origin: results of injected work route to the request's
  // originator, not to this intermediate node.
  TC_ASSIGN_OR_RETURN(
      Frame frame,
      Frame::build(id, lib.repr(), as_span(lib.serialized_archive()), payload,
                   ctx.origin_node, /*code_only=*/false, child_ptr));
  ++ctx.injects_issued;
  transport_->execute_on(
      node_, 0,
      [this, dst = peers_[peer], frame = std::move(frame)] {
        (void)send_frame(dst, frame);
      },
      /*scale_cost=*/true);
  return Status::ok();
}

Status Runtime::ctx_reply(ExecContext& ctx, ByteSpan data) {
  obs::TraceContext reply_ctx;
  const obs::TraceContext* reply_ptr = nullptr;
  if (ctx.trace.traced() && tracing()) {
    const std::uint32_t send_span = options_.tracer->next_span_id();
    reply_ctx.trace_id = ctx.trace.trace_id;
    reply_ctx.hop = ctx.trace.hop + 1;
    reply_ctx.parent_span = send_span;
    reply_ptr = &reply_ctx;
    obs::TraceContext at_send = reply_ctx;
    at_send.parent_span = ctx.span_id;
    record_span(obs::SpanKind::kReplySend, at_send, send_span,
                transport_->now_ns(), 0, ctx.ifunc_id,
                static_cast<std::uint32_t>(ctx.origin_node), 0, 0);
  }
  Bytes result = encode_result_frame(node_, data, reply_ptr);
  ++ctx.replies_issued;
  transport_->execute_on(
      node_, 0,
      [this, origin = ctx.origin_node, result = std::move(result)] {
        post_wire(origin, as_span(result), /*fragments=*/1, {});
      },
      /*scale_cost=*/true);
  return Status::ok();
}

Status Runtime::ctx_remote_write(ExecContext& ctx, std::uint64_t peer,
                                 std::uint64_t offset, ByteSpan data) {
  if (peers_.empty() || peer >= peers_.size()) {
    return out_of_range("remote_write: peer index out of range");
  }
  const fabric::NodeId dst = peers_[peer];
  const auto segment = transport_->exposed_segment(dst);
  if (!segment.has_value()) {
    return failed_precondition("remote_write: node " + std::to_string(dst) +
                               " exposes no segment");
  }
  if (offset > segment->length || data.size() > segment->length - offset) {
    return out_of_range("remote_write: exceeds exposed segment");
  }
  (void)ctx;
  const fabric::RemoteAddr addr = segment->remote_addr(dst, offset);
  ++stats_.remote_writes;
  Bytes copy(data.begin(), data.end());
  transport_->execute_on(
      node_, 0,
      [this, addr, copy = std::move(copy)] {
        transport_->post_put(node_, addr, as_span(copy), {});
      },
      /*scale_cost=*/true);
  return Status::ok();
}

void Runtime::ctx_hll_guard(ExecContext& ctx) {
  ++ctx.hll_guard_calls;
  if (options_.hll_guard_cost_ns > 0) {
    transport_->consume_compute(node_, options_.hll_guard_cost_ns,
                                /*scale_cost=*/false);
  }
}

}  // namespace tc::core
