#include "core/frame.hpp"

#include <limits>

#include "common/hash.hpp"

namespace tc::core {

namespace {

/// 16-bit check over the first 24 header bytes (FNV folded).
std::uint16_t header_check(ByteSpan first24) {
  const std::uint64_t h = fnv1a64(first24);
  return static_cast<std::uint16_t>(h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48));
}

void encode_header(ByteWriter& w, const FrameHeader& h) {
  w.u16(kFrameMagic);
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(h.repr |
                                 (h.code_only ? kReprCodeOnlyFlag : 0) |
                                 (h.traced() ? kReprTracedFlag : 0)));
  w.u64(h.ifunc_id);
  w.u32(h.origin_node);
  w.u32(h.payload_size);
  w.u32(h.code_size);
  w.u16(header_check(ByteSpan(w.bytes().data() + w.size() - 24, 24)));
  if (h.traced()) {
    w.u64(h.trace.trace_id);
    w.u32(h.trace.hop);
    w.u32(h.trace.parent_span);
  }
}

}  // namespace

StatusOr<Frame> Frame::build(std::uint64_t ifunc_id, ir::CodeRepr repr,
                             ByteSpan code_archive, ByteSpan payload,
                             std::uint32_t origin_node, bool code_only,
                             const obs::TraceContext* trace) {
  if (code_archive.empty()) {
    return invalid_argument("Frame::build: empty code archive");
  }
  if (code_only && !payload.empty()) {
    return invalid_argument("Frame::build: code-only frame with payload");
  }
  constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
  if (payload.size() > kMax || code_archive.size() > kMax) {
    return invalid_argument("Frame::build: section exceeds u32");
  }

  Frame frame;
  frame.header_.repr = static_cast<std::uint8_t>(repr);
  frame.header_.code_only = code_only;
  frame.header_.ifunc_id = ifunc_id;
  frame.header_.origin_node = origin_node;
  frame.header_.payload_size = static_cast<std::uint32_t>(payload.size());
  frame.header_.code_size = static_cast<std::uint32_t>(code_archive.size());
  if (trace != nullptr && trace->traced()) frame.header_.trace = *trace;

  ByteWriter w;
  encode_header(w, frame.header_);
  w.raw(payload);
  w.u32(kMagicPayloadEnd);
  w.raw(code_archive);
  w.u32(kMagicCodeEnd);
  frame.bytes_ = std::move(w).take();
  return frame;
}

StatusOr<Frame> Frame::with_trace(const Frame& frame,
                                  const obs::TraceContext& trace) {
  const FrameHeader& h = frame.header();
  ByteSpan data = frame.full_view();
  return build(h.ifunc_id, static_cast<ir::CodeRepr>(h.repr),
               code_view(data, h), payload_view(data, h), h.origin_node,
               h.code_only, &trace);
}

Bytes Frame::traced_wire(const Frame& frame, const obs::TraceContext& trace,
                         bool include_code) {
  FrameHeader h = frame.header();
  h.trace = trace;
  const ByteSpan data = frame.full_view();
  ByteWriter w;
  encode_header(w, h);
  w.raw(payload_view(data, frame.header()));
  w.u32(kMagicPayloadEnd);
  if (include_code) {
    w.raw(code_view(data, frame.header()));
    w.u32(kMagicCodeEnd);
  }
  return std::move(w).take();
}

StatusOr<FrameHeader> Frame::peek_header(ByteSpan data) {
  if (data.size() < kHeaderSize) {
    return data_loss("frame shorter than header (" +
                     std::to_string(data.size()) + " bytes)");
  }
  ByteReader r(data);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  FrameHeader h;
  std::uint16_t check = 0;
  bool traced = false;
  TC_RETURN_IF_ERROR(r.u16(magic));
  TC_RETURN_IF_ERROR(r.u8(version));
  TC_RETURN_IF_ERROR(r.u8(h.repr));
  h.code_only = (h.repr & kReprCodeOnlyFlag) != 0;
  traced = (h.repr & kReprTracedFlag) != 0;
  h.repr &= static_cast<std::uint8_t>(~(kReprCodeOnlyFlag | kReprTracedFlag));
  TC_RETURN_IF_ERROR(r.u64(h.ifunc_id));
  TC_RETURN_IF_ERROR(r.u32(h.origin_node));
  TC_RETURN_IF_ERROR(r.u32(h.payload_size));
  TC_RETURN_IF_ERROR(r.u32(h.code_size));
  TC_RETURN_IF_ERROR(r.u16(check));

  if (magic != kFrameMagic) {
    return data_loss("bad frame magic 0x" +
                     hex(ByteSpan(data.data(), 2)));
  }
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return data_loss("unsupported protocol version " +
                     std::to_string(version));
  }
  if (traced && version < 3) {
    return data_loss("trace extension on a pre-v3 frame");
  }
  if (check != header_check(data.subspan(0, 24))) {
    return data_loss("header check mismatch");
  }
  if (h.repr > static_cast<std::uint8_t>(ir::CodeRepr::kPortable)) {
    return data_loss("unknown code representation " + std::to_string(h.repr));
  }
  if (traced) {
    if (data.size() < kHeaderSize + kTraceExtSize) {
      return data_loss("frame shorter than its trace extension");
    }
    TC_RETURN_IF_ERROR(r.u64(h.trace.trace_id));
    TC_RETURN_IF_ERROR(r.u32(h.trace.hop));
    TC_RETURN_IF_ERROR(r.u32(h.trace.parent_span));
    if (!h.trace.traced()) {
      return data_loss("traced frame with zero trace id");
    }
  }
  return h;
}

namespace {
Status check_magic(ByteSpan data, std::size_t offset,
                   std::uint32_t expected, const char* which) {
  ByteReader r(data.subspan(offset));
  std::uint32_t value = 0;
  TC_RETURN_IF_ERROR(r.u32(value));
  if (value != expected) {
    return data_loss(std::string("missing ") + which + " delimiter at " +
                     std::to_string(offset));
  }
  return Status::ok();
}
}  // namespace

StatusOr<bool> Frame::validate(ByteSpan data) {
  TC_ASSIGN_OR_RETURN(FrameHeader h, peek_header(data));
  const std::size_t truncated =
      h.prefix_size() + h.payload_size + kMagicSize;
  const std::size_t full = truncated + h.code_size + kMagicSize;
  if (data.size() != truncated && data.size() != full) {
    return data_loss("frame length " + std::to_string(data.size()) +
                     " is neither truncated (" + std::to_string(truncated) +
                     ") nor full (" + std::to_string(full) + ")");
  }
  TC_RETURN_IF_ERROR(check_magic(data, h.prefix_size() + h.payload_size,
                                 kMagicPayloadEnd, "payload-end"));
  const bool has_code = data.size() == full;
  if (has_code) {
    TC_RETURN_IF_ERROR(
        check_magic(data, full - kMagicSize, kMagicCodeEnd, "code-end"));
  }
  return has_code;
}

ByteSpan Frame::payload_view(ByteSpan data, const FrameHeader& header) {
  return data.subspan(header.prefix_size(), header.payload_size);
}

ByteSpan Frame::code_view(ByteSpan data, const FrameHeader& header) {
  return data.subspan(header.prefix_size() + header.payload_size + kMagicSize,
                      header.code_size);
}

Bytes encode_result_frame(std::uint32_t origin_node, ByteSpan data,
                          const obs::TraceContext* trace) {
  ByteWriter w;
  if (trace != nullptr && trace->traced()) {
    w.u16(kResultTracedMagic);
    w.u32(origin_node);
    w.u64(trace->trace_id);
    w.u32(trace->hop);
    w.u32(trace->parent_span);
  } else {
    w.u16(kResultMagic);
    w.u32(origin_node);
  }
  w.blob(data);
  return std::move(w).take();
}

StatusOr<ResultFrame> decode_result_frame(ByteSpan bytes) {
  ByteReader r(bytes);
  std::uint16_t magic = 0;
  ResultFrame out;
  TC_RETURN_IF_ERROR(r.u16(magic));
  if (magic != kResultMagic && magic != kResultTracedMagic) {
    return data_loss("not a result frame");
  }
  TC_RETURN_IF_ERROR(r.u32(out.origin_node));
  if (magic == kResultTracedMagic) {
    TC_RETURN_IF_ERROR(r.u64(out.trace.trace_id));
    TC_RETURN_IF_ERROR(r.u32(out.trace.hop));
    TC_RETURN_IF_ERROR(r.u32(out.trace.parent_span));
    if (!out.trace.traced()) {
      return data_loss("traced result frame with zero trace id");
    }
  }
  TC_RETURN_IF_ERROR(r.blob(out.data));
  if (!r.exhausted()) return data_loss("result frame trailing bytes");
  return out;
}

bool is_result_frame(ByteSpan bytes) {
  if (bytes.size() < 2) return false;
  if (bytes[0] == (kResultMagic & 0xff) && bytes[1] == (kResultMagic >> 8)) {
    return true;
  }
  return bytes[0] == (kResultTracedMagic & 0xff) &&
         bytes[1] == (kResultTracedMagic >> 8);
}

Bytes encode_nack_frame(std::uint64_t ifunc_id) {
  ByteWriter w;
  w.u16(kNackMagic);
  w.u64(ifunc_id);
  return std::move(w).take();
}

StatusOr<std::uint64_t> decode_nack_frame(ByteSpan bytes) {
  ByteReader r(bytes);
  std::uint16_t magic = 0;
  std::uint64_t ifunc_id = 0;
  TC_RETURN_IF_ERROR(r.u16(magic));
  if (magic != kNackMagic) return data_loss("not a NACK frame");
  TC_RETURN_IF_ERROR(r.u64(ifunc_id));
  if (!r.exhausted()) return data_loss("NACK frame trailing bytes");
  return ifunc_id;
}

bool is_nack_frame(ByteSpan bytes) {
  if (bytes.size() < 2) return false;
  return bytes[0] == (kNackMagic & 0xff) && bytes[1] == (kNackMagic >> 8);
}

StatusOr<Bytes> encode_batch_frame(const std::vector<Bytes>& parts) {
  if (parts.size() > 0xFFFF) {
    return invalid_argument("batch of " + std::to_string(parts.size()) +
                            " parts exceeds the u16 wire count");
  }
  ByteWriter w;
  w.u16(kBatchMagic);
  w.u8(kProtocolVersion);
  w.u8(0);  // reserved
  w.u16(static_cast<std::uint16_t>(parts.size()));
  for (const Bytes& part : parts) {
    if (part.size() > std::numeric_limits<std::uint32_t>::max()) {
      return invalid_argument("batch part exceeds the u32 wire length");
    }
    w.u32(static_cast<std::uint32_t>(part.size()));
    w.raw(as_span(part));
  }
  return std::move(w).take();
}

StatusOr<std::vector<ByteSpan>> decode_batch_frame(ByteSpan bytes) {
  ByteReader r(bytes);
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t reserved = 0;
  std::uint16_t count = 0;
  TC_RETURN_IF_ERROR(r.u16(magic));
  if (magic != kBatchMagic) return data_loss("not a batch frame");
  TC_RETURN_IF_ERROR(r.u8(version));
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return data_loss("unsupported batch protocol version " +
                     std::to_string(version));
  }
  TC_RETURN_IF_ERROR(r.u8(reserved));
  TC_RETURN_IF_ERROR(r.u16(count));
  if (count == 0) return data_loss("empty batch frame");

  std::vector<ByteSpan> parts;
  parts.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint32_t length = 0;
    TC_RETURN_IF_ERROR(r.u32(length));
    if (length > r.remaining()) {
      return data_loss("batch sub-frame " + std::to_string(i) +
                       " overruns the container");
    }
    ByteSpan part = bytes.subspan(bytes.size() - r.remaining(), length);
    if (is_batch_frame(part)) {
      return data_loss("nested batch frame");
    }
    parts.push_back(part);
    TC_RETURN_IF_ERROR(r.skip(length));
  }
  if (!r.exhausted()) return data_loss("batch frame trailing bytes");
  return parts;
}

bool is_batch_frame(ByteSpan bytes) {
  if (bytes.size() < 2) return false;
  return bytes[0] == (kBatchMagic & 0xff) && bytes[1] == (kBatchMagic >> 8);
}

}  // namespace tc::core
