// IfuncLibrary: an injectable function library — name, wire identity, and
// its code archive (multi-ISA bitcode or pre-compiled objects) plus the
// dependency manifest. This is what the application registers with a
// Runtime and what travels inside message frames.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/hash.hpp"
#include "common/status.hpp"
#include "ir/fat_bitcode.hpp"
#include "ir/kernels.hpp"

namespace tc::core {

/// Wire identity of an ifunc: FNV-1a of its registered name.
inline std::uint64_t ifunc_id_for_name(std::string_view name) {
  return fnv1a64(name);
}

/// Registered name of a stock kernel's portable-bytecode variant (the
/// naming convention from_portable_kernel applies).
std::string portable_kernel_name(ir::KernelKind kind);

class IfuncLibrary {
 public:
  /// Wraps a built archive under `name`. The archive must be non-empty.
  static StatusOr<IfuncLibrary> from_archive(std::string name,
                                             ir::FatBitcode archive);

  /// Builds one of the stock kernels for the default target set — the
  /// one-call path used by examples and benchmarks. Requires TC_WITH_LLVM
  /// (fails with kFailedPrecondition otherwise).
  static StatusOr<IfuncLibrary> from_kernel(
      ir::KernelKind kind, const ir::KernelOptions& options = {});

  /// Builds a stock kernel as a portable-only ('TCFP') archive — the
  /// interpreter tier, available with or without LLVM. Library name is
  /// `<kernel>_vm`, a distinct wire identity from the bitcode variants.
  static StatusOr<IfuncLibrary> from_portable_kernel(
      ir::KernelKind kind, const ir::KernelOptions& options = {});

  /// Builds a *tiered* archive: a portable entry (interpreted immediately
  /// on arrival, zero compile) plus — when LLVM is compiled in — per-ISA
  /// bitcode entries the receiving runtime promotes to once the ifunc is
  /// hot. Library name is `<kernel>_tiered`.
  static StatusOr<IfuncLibrary> from_tiered_kernel(
      ir::KernelKind kind, const ir::KernelOptions& options = {});

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  const ir::FatBitcode& archive() const { return archive_; }
  ir::CodeRepr repr() const { return archive_.repr(); }

  /// Serialized archive bytes as they appear in the frame code section.
  const Bytes& serialized_archive() const { return serialized_; }

 private:
  IfuncLibrary() = default;
  std::string name_;
  std::uint64_t id_ = 0;
  ir::FatBitcode archive_;
  Bytes serialized_;
};

}  // namespace tc::core
