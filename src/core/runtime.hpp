// Runtime: the per-node Three-Chains instance.
//
// One Runtime binds to one fabric node and provides the paper's workflow
// (§III-A): register an ifunc library, create/send ifunc messages to peers,
// and poll for incoming messages, which are auto-registered, JIT-compiled
// (bitcode) or linked (binary objects), cached, and executed. Executing
// ifuncs may recursively forward themselves, inject other ifuncs, or reply
// to the chain's origin through the ExecContext hooks.
//
// Cost model: real JIT/link/exec work runs for real; the *virtual* time it
// charges to the simulated node is either the measured wall time (default)
// or a calibrated constant from a hardware profile (hetsim/profiles.hpp) —
// this is how the paper's testbed timings are reproduced on one machine.
//
// Tiered execution: frames carrying the portable representation ('TCFP')
// are decoded and *interpreted* immediately on first arrival — no compile
// stall at all — and, when the archive also ships bitcode and LLVM is
// compiled in, promoted to the ORC-JIT tier once their invocation count
// crosses `promote_after`. TC_WITH_LLVM=OFF builds run the interpreter
// tier only.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "core/frame.hpp"
#include "core/ifunc.hpp"
#include "fabric/endpoint.hpp"
#include "fabric/fabric.hpp"
#include "fabric/sim_transport.hpp"
#include "fabric/transport.hpp"
#include "jit/code_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "vm/bytecode.hpp"

#if TC_WITH_LLVM
#include "jit/engine.hpp"
#endif

namespace tc::core {

struct ExecContext;

/// Sender-side frame coalescing (protocol v2 batch containers). With
/// max_frames > 1, send_frame() queues outgoing ifunc frames per
/// destination and ships them as one batched wire message when either the
/// batch fills or the flush deadline (armed when the first frame of a batch
/// is queued) expires — amortizing the per-message injection gap across the
/// window, at the cost of up to flush_ns added latency for a lone frame.
struct BatchOptions {
  /// Frames coalesced into one wire message; <= 1 disables batching
  /// entirely (the send path is then byte-for-byte the classic protocol).
  std::size_t max_frames = 1;
  /// Flush deadline: how long the first queued frame of a batch may wait
  /// for companions before the batch is shipped regardless.
  std::int64_t flush_ns = 300;
};

struct RuntimeOptions {
  jit::EngineOptions engine;  ///< hook symbols are appended automatically

  // Virtual-time charges. Negative = charge the measured real duration
  // (scaled by the node's compute_scale); non-negative = charge the given
  // constant, which is how hardware profiles pin the paper's numbers.
  std::int64_t jit_cost_ns = -1;          ///< bitcode parse+optimize+compile
  std::int64_t link_cost_ns = -1;         ///< object link (binary repr)
  std::int64_t lookup_exec_cost_ns = -1;  ///< per-invocation lookup+execute
  std::int64_t hll_guard_cost_ns = 0;     ///< per tc_hll_guard call
  /// Per-instruction cost of the interpreter tier (hetsim profiles pin a
  /// calibrated per-platform value; <0 charges the measured wall time).
  /// Every *constituent* bytecode instruction pays this — a fused
  /// superinstruction window is charged per instruction it executes, not
  /// per retired op.
  std::int64_t interp_op_ns = -1;
  /// The dispatch (fetch/decode/indirect-jump) share of interp_op_ns,
  /// refunded once per tail slot executed inside an *inlined* Ld*Br
  /// superinstruction handler (InterpResult::inline_fused_slots) — the only
  /// slots whose dispatch work provably disappears. kFusedLdiRun tail slots
  /// earn no refund: its interpretive tail loop costs about as much as
  /// ordinary dispatch (microbenchmarked; hetsim/profiles.cpp documents the
  /// fit). Clamped to [0, interp_op_ns]. 0 — the default — charges fused
  /// and unfused streams identically (fusion buys nothing in virtual time).
  std::int64_t interp_dispatch_ns = 0;
  /// One-time decode+validate of a portable program on first arrival —
  /// the (tiny) cold-path cost that replaces the JIT stall.
  std::int64_t portable_load_cost_ns = -1;

  /// Invocation count at which an interpreted ifunc whose archive also
  /// carries host bitcode is promoted to the JIT tier. The compile runs on
  /// a background thread; the interpreted entry keeps serving until the
  /// compiled entry is swapped in on the progress context.
  std::uint64_t promote_after = 8;
  /// Pin the interpreter tier: never promote, even when bitcode and LLVM
  /// are available (the tier-pinned / VM-only configuration).
  bool interp_only = false;

  /// Apply the superinstruction fuser (vm/fuse.hpp) to portable programs
  /// at load time. Node-local: the wire format never carries fused
  /// opcodes. Off for differential testing.
  bool fuse_superinstructions = true;
  /// Also form kFusedLdiRun windows at load time. Off by default: the run
  /// handler's interpretive tail loop microbenchmarks at-or-above ordinary
  /// dispatch cost per slot (bench/micro_interp_tier.cpp), so runs shrink
  /// retired-op counts without making anything faster — real or simulated.
  /// Kept as an opt-in for the ablation and for disassembly tooling.
  bool fuse_ldi_runs = false;

  /// Test seam: when set, the background promotion worker calls this right
  /// before compiling a job. Blocking inside it holds the promotion in
  /// flight while invocations keep interpreting (the no-compile-on-the-
  /// progress-thread race tests).
  std::function<void()> promote_compile_hook;

  /// Process incoming frames automatically as fabric events (the polling
  /// daemon thread of the paper). Disable for manual-poll unit tests.
  bool auto_poll = true;

  /// Disable sender-side truncation: every frame ships the full code
  /// section. Used by benchmarks to measure the *uncached* rows of the
  /// paper's tables in steady state.
  bool force_full_frames = false;

  /// Bound on resident JIT'd ifuncs (0 = unbounded). When full, the
  /// least-recently-used ifunc is evicted: its JIT resources are released
  /// and a later frame re-compiles from the retained archive (or triggers
  /// the NACK recovery path if the archive is gone too).
  std::size_t cache_capacity = 0;

  /// Reply to truncated frames for unknown ifuncs with a NACK asking the
  /// sender to re-ship the code (cache-miss recovery extension). When off,
  /// such frames are dropped as protocol errors, as in the paper.
  bool nack_recovery = true;

  /// Wire-send retry budget (fault tolerance). 0 — the default — disables
  /// retry entirely: the send path is byte-for-byte the classic protocol
  /// (no buffer copies, failures reported straight to the caller's
  /// completion). > 0 makes every runtime wire send — ifunc frames, batch
  /// containers, NACKs, code resends, result replies — re-ship the same
  /// bytes when its completion reports failure, up to this many retries,
  /// spaced retry_backoff_ns apart. Retries give at-least-once delivery;
  /// a de-duplicating transport (fabric::FaultyTransport, or a real
  /// reliable NIC) turns that into exactly-once.
  std::size_t max_send_retries = 0;
  /// Spacing between retry attempts (virtual ns on sim, wall on shm).
  /// Must exceed a fault burst's footprint for bursts to be survivable.
  std::int64_t retry_backoff_ns = 2'000;

  /// Sender-side frame coalescing; defaults to disabled (max_frames = 1),
  /// which preserves the paper's one-frame-per-message wire behaviour
  /// exactly. Also adjustable after creation via set_batch_options().
  BatchOptions batch;

  /// Per-sub-frame decode charge when a batch container is unpacked on
  /// receive (header walk + dispatch); hetsim profiles pin a calibrated
  /// per-platform value. Applies only to batched traffic.
  std::int64_t batch_unpack_cost_ns = 0;

  /// Distributed tracing (obs/trace.hpp). Null — the default — disables
  /// tracing entirely: no trace extension on the wire, no span recording,
  /// and the send/receive paths are byte-for-byte the untraced protocol.
  /// The tracer must outlive the runtime and have a ring for this node.
  obs::Tracer* tracer = nullptr;
  /// Latency histograms (hop service time per kernel × repr × tier, batch
  /// flush latency). Null — the default — records nothing.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Handler for X-RDMA results returning to this node:
/// (result bytes, node that sent the reply).
using ResultHandler = std::function<void(ByteSpan, fabric::NodeId)>;

class Runtime {
 public:
  /// Attaches to a node of the simulated backend: the runtime wraps the
  /// fabric in its own SimTransport, preserving the historical per-runtime
  /// endpoint bookkeeping exactly.
  static StatusOr<std::unique_ptr<Runtime>> create(fabric::Fabric& fabric,
                                                   fabric::NodeId node,
                                                   RuntimeOptions options = {});
  /// Attaches to a node of any Transport backend (sim or shm). The
  /// transport must outlive the runtime.
  static StatusOr<std::unique_ptr<Runtime>> create(
      fabric::Transport& transport, fabric::NodeId node,
      RuntimeOptions options = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  fabric::NodeId node_id() const { return node_; }
  /// The simulated fabric. Only valid for runtimes on the sim backend.
  fabric::Fabric& fabric() { return sim_transport()->fabric(); }
  fabric::Transport& transport() { return *transport_; }

  // --- registration ---------------------------------------------------------
  /// Registers an ifunc library for sending and/or local execution.
  StatusOr<std::uint64_t> register_ifunc(IfuncLibrary library);
  bool is_registered(std::uint64_t ifunc_id) const;
  StatusOr<std::uint64_t> ifunc_id_by_name(const std::string& name) const;
  Status deregister_ifunc(std::uint64_t ifunc_id);

  // --- sending ---------------------------------------------------------------
  /// Builds a reusable message frame for a registered ifunc.
  StatusOr<Frame> create_message(std::uint64_t ifunc_id,
                                 ByteSpan payload) const;

  /// Sends a frame, applying the code-caching protocol: the first frame to
  /// a peer travels in full, subsequent ones truncated (paper §III-D).
  Status send_frame(fabric::NodeId dst, const Frame& frame,
                    fabric::CompletionFn on_complete = {});

  /// create_message + send_frame in one call.
  Status send_ifunc(fabric::NodeId dst, std::uint64_t ifunc_id,
                    ByteSpan payload, fabric::CompletionFn on_complete = {});

  /// Reconfigures sender-side coalescing (see BatchOptions). Frames
  /// already queued are flushed first, so per-destination FIFO order is
  /// preserved across the reconfiguration.
  void set_batch_options(BatchOptions batch);
  const BatchOptions& batch_options() const { return options_.batch; }

  // --- target-side configuration ----------------------------------------------
  void set_target_ptr(void* target) { target_ptr_ = target; }
  void set_shard(std::uint64_t* base, std::uint64_t size) {
    shard_base_ = base;
    shard_size_ = size;
  }
  /// Declares the peer table used by ifunc forward()/inject(); this node's
  /// own index is derived from the list (~0 if absent).
  void set_peers(std::vector<fabric::NodeId> peers);

  /// Exposes [base, base+length) for one-sided access by remote ifuncs
  /// (tc_ctx_remote_write). The registration is published to the fabric's
  /// segment directory — modeling the out-of-band rkey exchange real RDMA
  /// deployments perform at setup time.
  Status expose_segment(void* base, std::size_t length);
  void set_result_handler(ResultHandler handler) {
    result_handler_ = std::move(handler);
  }

  // --- progress ---------------------------------------------------------------
  /// Processes up to `max_frames` received messages. With auto_poll this is
  /// driven by delivery events; call manually when auto_poll is off.
  std::size_t poll(std::size_t max_frames = SIZE_MAX);

  // --- ExecContext services (called from the extern "C" hooks) ---------------
  Status ctx_forward(ExecContext& ctx, std::uint64_t peer, ByteSpan payload);
  Status ctx_inject(ExecContext& ctx, std::uint64_t peer,
                    const char* ifunc_name, ByteSpan payload);
  Status ctx_reply(ExecContext& ctx, ByteSpan data);
  Status ctx_remote_write(ExecContext& ctx, std::uint64_t peer,
                          std::uint64_t offset, ByteSpan data);
  void ctx_hll_guard(ExecContext& ctx);

  // --- introspection -----------------------------------------------------------
  /// Counters are atomic: on the shm backend they are bumped from server
  /// progress threads while collective/bench drivers aggregate them from
  /// initiator threads, so plain words would race (TSan-visibly).
  struct Stats {
    std::atomic<std::uint64_t> frames_sent_full{0};
    std::atomic<std::uint64_t> frames_sent_truncated{0};
    std::atomic<std::uint64_t> code_bytes_sent{0};
    std::atomic<std::uint64_t> code_bytes_saved{0};  ///< by truncation
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> frames_executed{0};
    std::atomic<std::uint64_t> auto_registered{0};
    std::atomic<std::uint64_t> jit_compiles{0};
    std::atomic<std::uint64_t> object_links{0};
    std::atomic<std::uint64_t> forwards{0};
    std::atomic<std::uint64_t> injects{0};
    std::atomic<std::uint64_t> replies_sent{0};
    std::atomic<std::uint64_t> results_received{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> remote_writes{0};
    std::atomic<std::uint64_t> nacks_sent{0};
    std::atomic<std::uint64_t> nacks_received{0};
    std::atomic<std::uint64_t> batches_sent{0};  ///< coalesced messages out
    std::atomic<std::uint64_t> frames_coalesced{0};  ///< frames inside them
    std::atomic<std::uint64_t> batch_full_flushes{0};  ///< hit max_frames
    std::atomic<std::uint64_t> batch_deadline_flushes{0};  ///< flush_ns hit
    std::atomic<std::uint64_t> batches_received{0};  ///< containers unpacked
    std::atomic<std::uint64_t> cache_evictions{0};
    std::atomic<std::uint64_t> portable_loads{0};  ///< programs decoded
    std::atomic<std::uint64_t> interp_executions{0};  ///< interpreted runs
    /// Retired interpreter ops (dispatches): a fused superinstruction
    /// window counts as ONE. Not comparable across fuse_superinstructions
    /// on/off — interp_instrs is the fusion-invariant count.
    std::atomic<std::uint64_t> interp_ops{0};
    /// Constituent bytecode instructions executed, counting every tail
    /// slot inside fused windows; identical across fusion on/off.
    std::atomic<std::uint64_t> interp_instrs{0};
    std::atomic<std::uint64_t> tier_promotions{0};  ///< interp -> JIT
    /// Background promotion compiles that failed (logged once per kernel;
    /// the ifunc keeps interpreting).
    std::atomic<std::uint64_t> promotions_failed{0};
    /// Deferred ctx_forward sends that failed after the ifunc returned
    /// (the forward was already charged; the frame never left the node).
    std::atomic<std::uint64_t> forward_send_failures{0};
    /// Wire sends re-shipped after a failed completion (max_send_retries).
    std::atomic<std::uint64_t> send_retries{0};
    /// Sends abandoned with the retry budget spent — the failure the
    /// chaos harness asserts never happens under its configured rates.
    std::atomic<std::uint64_t> send_retries_exhausted{0};
    std::atomic<std::int64_t> real_jit_ns_total{0};  ///< measured, not virtual
  };
  const Stats& stats() const { return stats_; }
  /// Payloads stashed awaiting a NACK code resend — nonzero after a run
  /// quiesces means a recovery round-trip was lost (watchdog dumps this).
  std::size_t pending_payload_count() const {
    std::lock_guard lock(pending_payloads_mu_);
    std::size_t total = 0;
    for (const auto& [id, backlog] : pending_payloads_) {
      (void)id;
      total += backlog.size();
    }
    return total;
  }
  const jit::CodeCache& cache() const { return cache_; }
  /// The (this node, dst) endpoint. Sim backend only — the shm backend has
  /// no per-pair endpoint objects; use transport().post_* there.
  fabric::Endpoint& endpoint(fabric::NodeId dst);

  /// Last measured compile stats (for the overhead-breakdown benches).
  const jit::CompileStats& last_compile_stats() const {
    return last_compile_stats_;
  }

  /// Blocks until every queued background promotion compile has finished.
  /// The tier swap itself is applied by the next invocation on the node's
  /// progress context, never from here (transport threading contract).
  /// Test/deterministic-bench seam; no-op without LLVM.
  void wait_for_promotions();

 private:
  struct Registered {
    IfuncLibrary library;
    abi::EntryFn entry = nullptr;  ///< compiled lazily on first execution
    /// Decoded portable program (interpreter tier), when the archive ships
    /// the portable representation.
    vm::Program program;
    bool has_program = false;
    jit::Tier tier = jit::Tier::kJit;
    std::uint64_t invocations = 0;
    /// Cleared when promotion is impossible (no host bitcode entry), so
    /// the archive is probed once, not per invocation.
    bool promotable = true;
    /// A background promotion compile is queued or in flight; cleared when
    /// its result is applied or discarded on the progress context.
    bool promote_pending = false;
    /// Name the engine knows this ifunc's current library under (promotion
    /// jobs use uniquified names so a stale in-flight compile can never
    /// collide with a re-promotion after eviction).
    std::string engine_lib;
    /// Identity of this *registration*, not just the ifunc id: assigned
    /// fresh every time the id enters the registry. A promotion result is
    /// applied only if the generation it was compiled for is still the one
    /// registered — a dereg/re-register of the same id with different
    /// bitcode while a compile is in flight must not get the stale entry
    /// swapped in, and id+flags alone cannot tell the two apart.
    std::uint64_t generation = 0;
    /// Lazily resolved "hop_service_ns/<kernel>/<repr>/<tier>" histograms,
    /// indexed by jit::Tier — the registry lookup takes a mutex and builds
    /// a name string, far too heavy for the per-hop record path.
    std::array<obs::Histogram*, 3> hop_hist{};
  };

  Runtime(fabric::Transport& transport, fabric::NodeId node,
          RuntimeOptions options);
  void attach_notifier();
  /// Downcast to the sim backend; fails loudly elsewhere.
  fabric::SimTransport* sim_transport();

  Status ensure_engine();
  StatusOr<Registered*> find_registered(std::uint64_t ifunc_id);
  Status compile_registered(Registered& reg);
  Status load_portable(Registered& reg);
  /// Materializes whatever tier the library's representation calls for:
  /// portable -> interpreter (zero compile), bitcode/object -> engine.
  Status materialize_registered(Registered& reg);
  /// materialize_registered + CodeCache insert (with LRU eviction of the
  /// loser's materialized tier). Also the recovery path when a bounded
  /// cache evicts an ifunc that still has an invocation in flight.
  Status materialize_and_cache(Registered& reg, std::uint64_t ifunc_id);
  void maybe_promote(Registered& reg, std::uint64_t ifunc_id);
#if TC_WITH_LLVM
  /// Background compile worker: drains promote_queue_, compiles under
  /// engine_mu_, and posts results to the promote_done_ mailbox. Never
  /// touches the transport or the registry.
  void promotion_worker();
  /// Applies (or discards) finished background compiles. Progress-context
  /// only — called at the top of each scheduled invocation, which is the
  /// only place registry entries and cache tiers may be written.
  void apply_ready_promotions();
#endif
  Status process_message(const fabric::ReceivedMessage& msg);
  /// One logical (non-batch) frame: result / NACK / ifunc dispatch.
  Status process_frame(ByteSpan data, fabric::NodeId source);
  Status process_ifunc_frame(ByteSpan data, fabric::NodeId source);
  /// Hands encoded frame bytes to the batcher or straight to the transport.
  /// Both paths copy `bytes` before returning, so views into temporaries
  /// (e.g. a traced wire image) are safe.
  void dispatch_frame_bytes(fabric::NodeId dst, ByteSpan bytes,
                            fabric::CompletionFn on_complete);
  /// The single wire-send chokepoint every runtime send funnels through.
  /// With max_send_retries == 0 this is exactly transport().post_send;
  /// otherwise failed completions re-ship the copied bytes with backoff.
  void post_wire(fabric::NodeId dst, ByteSpan bytes, std::size_t fragments,
                 fabric::CompletionFn on_complete);
  void post_wire_attempt(fabric::NodeId dst,
                         std::shared_ptr<const Bytes> buffer,
                         std::size_t fragments,
                         fabric::CompletionFn on_complete,
                         std::size_t retries_left);
  /// Queues an encoded frame for coalescing toward `dst` (batching on).
  void enqueue_batched_frame(fabric::NodeId dst, ByteSpan frame_bytes,
                             fabric::CompletionFn on_complete);
  /// Ships everything queued for `dst` as one wire message.
  void flush_batch(fabric::NodeId dst);
  /// Ships one extracted batch (already detached from the pending shard).
  void ship_batch(fabric::NodeId dst, std::vector<Bytes> frames,
                  std::vector<fabric::CompletionFn> completions);
  void execute_ifunc(Registered& reg, std::uint64_t ifunc_id, Bytes payload,
                     fabric::NodeId origin_node,
                     obs::TraceContext trace = {});
  std::int64_t charge(std::int64_t configured_ns, std::int64_t measured_ns);

  // --- tracing (no-ops when options_.tracer is null or disabled) -------------
  bool tracing() const {
    return options_.tracer != nullptr && options_.tracer->enabled();
  }
  /// Stamps node + ids and pushes into this node's ring.
  void record_span(obs::SpanKind kind, const obs::TraceContext& trace,
                   std::uint32_t span_id, std::int64_t ts_ns,
                   std::int64_t dur_ns, std::uint64_t ifunc_id,
                   std::uint32_t peer, std::uint8_t repr, std::uint8_t tier);
  /// Batch flush latency histogram (no-op without a metrics registry).
  void record_batch_flush(std::int64_t first_queued_ns);

  fabric::Transport* transport_;
  /// Set when this runtime was created from a Fabric& (owns its adapter).
  std::unique_ptr<fabric::SimTransport> owned_transport_;
  fabric::NodeId node_;
  RuntimeOptions options_;

#if TC_WITH_LLVM
  std::unique_ptr<jit::OrcEngine> engine_;
  /// Serializes OrcEngine access between the progress context's synchronous
  /// compile paths and the background promotion worker (the engine's
  /// library bookkeeping is not itself thread-safe).
  std::mutex engine_mu_;

  /// One queued background promotion. Everything the compile needs is
  /// snapshotted at enqueue time, so a deregistration or eviction racing
  /// the worker can never dangle a reference into the registry.
  struct PromoteJob {
    std::uint64_t ifunc_id = 0;
    std::uint64_t generation = 0;  ///< Registered::generation at enqueue
    std::string kernel;       ///< library name (logs, metrics)
    std::string engine_name;  ///< uniquified engine library name
    Bytes bitcode;
    std::vector<std::string> deps;
  };
  /// A finished background compile, waiting in the mailbox for the
  /// progress context to swap the tier (or discard it). Carries the
  /// generation the bitcode was snapshotted from; apply_ready_promotions
  /// discards it if the id has since been re-registered.
  struct PromoteDone {
    std::uint64_t ifunc_id = 0;
    std::uint64_t generation = 0;
    std::string kernel;
    std::string engine_name;
    abi::EntryFn entry = nullptr;
    Status status;
    jit::CompileStats compile_stats;
  };
  std::mutex promote_mu_;
  std::condition_variable promote_cv_;
  std::deque<PromoteJob> promote_queue_;
  std::vector<PromoteDone> promote_done_;
  std::size_t promote_inflight_ = 0;
  bool promote_stop_ = false;
  bool promote_thread_started_ = false;
  std::thread promote_thread_;
  /// Cheap has-mail flag so the hot invoke path pays one relaxed load, not
  /// a mutex, when no promotion is pending (the common case).
  std::atomic<bool> promote_ready_{false};
  /// Uniquifies promotion engine-library names; progress-context only.
  std::uint64_t promote_seq_ = 0;
#endif
  jit::CodeCache cache_;
  jit::CompileStats last_compile_stats_;

  std::unordered_map<std::uint64_t, Registered> registry_;
  std::unordered_map<std::string, std::uint64_t> names_;
  /// Source of Registered::generation values; bumped at every insertion
  /// (explicit registration and auto-registration alike). Progress-context
  /// only, like the registry itself.
  std::uint64_t registration_seq_ = 0;
  /// Payloads of truncated frames waiting for code (NACK recovery).
  /// Mutex-guarded: the receive path may run on a progress thread while
  /// another context inspects or drains the same ifunc's backlog.
  struct PendingPayload {
    Bytes payload;
    fabric::NodeId origin = 0;
    obs::TraceContext trace;  ///< carried across the NACK round trip
  };
  mutable std::mutex pending_payloads_mu_;
  std::unordered_map<std::uint64_t, std::vector<PendingPayload>>
      pending_payloads_;
  /// Trace context of the frame currently in the receive/execute path, so
  /// cold-path compile/link/load spans parent correctly. Touched only from
  /// this node's single progress context (the same invariant the batching
  /// deadline events rely on).
  obs::TraceContext active_trace_;
  /// (peer << 32 | ifunc-id-fold) pairs that already received code.
  /// Guarded so concurrent initiator contexts can share one runtime.
  std::mutex sent_code_mu_;
  std::unordered_set<std::uint64_t> sent_code_;
  /// Keeps armed flush-deadline events from touching a destroyed Runtime:
  /// they capture a weak_ptr to this token and no-op once it expires. The
  /// fabric has no event cancellation, so a stale (generation-bumped)
  /// deadline can outlive the Runtime inside the event queue.
  std::shared_ptr<Runtime*> alive_token_;
  /// Outgoing frames awaiting coalescing, per destination (batching on).
  struct PendingBatch {
    std::vector<Bytes> frames;
    std::vector<fabric::CompletionFn> completions;
    /// When the oldest queued frame entered the batch (metrics: flush
    /// latency histogram).
    std::int64_t first_queued_ns = 0;
    /// Incremented on every flush; an armed deadline event only fires a
    /// flush if the generation it captured is still current (i.e. the
    /// batch it was armed for has not already shipped full).
    std::uint64_t generation = 0;
    bool deadline_armed = false;
  };
  /// The coalescer is sharded by destination so concurrent initiator
  /// contexts sharing this runtime only contend when they target the same
  /// shard. Batches are extracted under the shard lock and shipped outside
  /// it (send paths may re-enter the coalescer).
  static constexpr std::size_t kBatchShards = 8;
  struct BatchShard {
    std::mutex mu;
    std::unordered_map<fabric::NodeId, PendingBatch> batches;
  };
  std::array<BatchShard, kBatchShards> batch_shards_;
  BatchShard& batch_shard(fabric::NodeId dst) {
    return batch_shards_[dst % kBatchShards];
  }

  void* target_ptr_ = nullptr;
  std::uint64_t* shard_base_ = nullptr;
  std::uint64_t shard_size_ = 0;
  std::vector<fabric::NodeId> peers_;
  std::uint64_t self_peer_ = ~0ull;
  ResultHandler result_handler_;

  Stats stats_;
};

}  // namespace tc::core
