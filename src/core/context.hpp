// ExecContext: the per-invocation bridge between JIT-compiled ifunc code and
// the runtime of the node it landed on. The extern "C" hook functions
// declared in ir/abi.hpp are defined in context.cpp; they cast the opaque
// ctx pointer back to ExecContext and call into the owning Runtime. ORC-JIT
// resolves these symbols when the shipped code is linked on the target —
// the concrete form of the paper's "remotely injected functions can
// interact with external libraries including UCX itself".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "fabric/memory.hpp"
#include "obs/trace.hpp"
#include "vm/interp.hpp"

namespace tc::core {

class Runtime;

struct ExecContext {
  Runtime* runtime = nullptr;
  /// Fabric node executing the ifunc.
  fabric::NodeId node = 0;
  /// Identity of the ifunc being executed (used by forward()).
  std::uint64_t ifunc_id = 0;
  /// Node that originated this request chain; replies route here.
  fabric::NodeId origin_node = 0;
  /// Application-supplied target pointer (paper §III-A).
  void* target_ptr = nullptr;
  /// Local pointer-table shard, if the application attached one (X-RDMA).
  std::uint64_t* shard_base = nullptr;
  std::uint64_t shard_size = 0;
  /// Peer table for forward()/inject() (e.g. the DAPC server list) and this
  /// node's index in it (~0ULL when not a member).
  const std::vector<fabric::NodeId>* peers = nullptr;
  std::uint64_t self_peer = ~0ull;

  /// Per-invocation accounting, folded into runtime stats afterwards.
  std::uint32_t forwards_issued = 0;
  std::uint32_t injects_issued = 0;
  std::uint32_t replies_issued = 0;
  std::uint32_t hll_guard_calls = 0;

  /// Trace context the carrying frame arrived with (untraced when tracing
  /// is off) and the span id of this invocation's execute span — forwards
  /// and replies emitted by the ifunc parent their hops under it.
  obs::TraceContext trace;
  std::uint32_t span_id = 0;
};

}  // namespace tc::core

// --- the ifunc-visible hook ABI (see ir/abi.hpp for contracts) -------------
extern "C" {
void* tc_ctx_target(void* ctx);
std::uint64_t tc_ctx_node(void* ctx);
std::uint64_t tc_ctx_peer_count(void* ctx);
std::uint64_t tc_ctx_self_peer(void* ctx);
std::uint64_t* tc_ctx_shard_base(void* ctx);
std::uint64_t tc_ctx_shard_size(void* ctx);
std::int32_t tc_ctx_forward(void* ctx, std::uint64_t peer,
                            const std::uint8_t* payload, std::uint64_t size);
std::int32_t tc_ctx_inject(void* ctx, std::uint64_t peer,
                           const char* ifunc_name, const std::uint8_t* payload,
                           std::uint64_t size);
std::int32_t tc_ctx_reply(void* ctx, const std::uint8_t* data,
                          std::uint64_t size);
std::int32_t tc_ctx_remote_write(void* ctx, std::uint64_t peer,
                                 std::uint64_t offset,
                                 const std::uint8_t* data,
                                 std::uint64_t size);
void tc_hll_guard(void* ctx);
}

namespace tc::core {
/// The hook table handed to jit::EngineOptions::extra_symbols.
std::vector<std::pair<std::string, void*>> runtime_hook_symbols();

/// The same hook surface for the interpreter tier: a vm::HookTable whose
/// entries are exactly the extern "C" functions above, bound to `ctx` —
/// interpreted and JIT'd code observe identical runtime behavior.
vm::HookTable runtime_vm_hooks(ExecContext& ctx);
}  // namespace tc::core
