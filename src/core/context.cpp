#include "core/context.hpp"

#include <cmath>

#include "common/log.hpp"
#include "core/runtime.hpp"

namespace {
tc::core::ExecContext* as_ctx(void* ctx) {
  return static_cast<tc::core::ExecContext*>(ctx);
}
}  // namespace

extern "C" {

void* tc_ctx_target(void* ctx) { return as_ctx(ctx)->target_ptr; }

std::uint64_t tc_ctx_node(void* ctx) { return as_ctx(ctx)->node; }

std::uint64_t tc_ctx_peer_count(void* ctx) {
  const auto* peers = as_ctx(ctx)->peers;
  return peers == nullptr ? 0 : peers->size();
}

std::uint64_t tc_ctx_self_peer(void* ctx) { return as_ctx(ctx)->self_peer; }

std::uint64_t* tc_ctx_shard_base(void* ctx) { return as_ctx(ctx)->shard_base; }

std::uint64_t tc_ctx_shard_size(void* ctx) { return as_ctx(ctx)->shard_size; }

std::int32_t tc_ctx_forward(void* ctx, std::uint64_t peer,
                            const std::uint8_t* payload, std::uint64_t size) {
  auto* context = as_ctx(ctx);
  tc::Status status = context->runtime->ctx_forward(
      *context, peer, tc::ByteSpan(payload, size));
  if (!status.is_ok()) {
    TC_LOG(kWarn, "ctx") << "forward failed: " << status.to_string();
    return -1;
  }
  return 0;
}

std::int32_t tc_ctx_inject(void* ctx, std::uint64_t peer,
                           const char* ifunc_name, const std::uint8_t* payload,
                           std::uint64_t size) {
  auto* context = as_ctx(ctx);
  tc::Status status = context->runtime->ctx_inject(
      *context, peer, ifunc_name, tc::ByteSpan(payload, size));
  if (!status.is_ok()) {
    TC_LOG(kWarn, "ctx") << "inject failed: " << status.to_string();
    return -1;
  }
  return 0;
}

std::int32_t tc_ctx_reply(void* ctx, const std::uint8_t* data,
                          std::uint64_t size) {
  auto* context = as_ctx(ctx);
  tc::Status status =
      context->runtime->ctx_reply(*context, tc::ByteSpan(data, size));
  if (!status.is_ok()) {
    TC_LOG(kWarn, "ctx") << "reply failed: " << status.to_string();
    return -1;
  }
  return 0;
}

std::int32_t tc_ctx_remote_write(void* ctx, std::uint64_t peer,
                                 std::uint64_t offset,
                                 const std::uint8_t* data,
                                 std::uint64_t size) {
  auto* context = as_ctx(ctx);
  tc::Status status = context->runtime->ctx_remote_write(
      *context, peer, offset, tc::ByteSpan(data, size));
  if (!status.is_ok()) {
    TC_LOG(kWarn, "ctx") << "remote_write failed: " << status.to_string();
    return -1;
  }
  return 0;
}

void tc_hll_guard(void* ctx) { as_ctx(ctx)->runtime->ctx_hll_guard(*as_ctx(ctx)); }

}  // extern "C"

namespace tc::core {

vm::HookTable runtime_vm_hooks(ExecContext& ctx) {
  vm::HookTable hooks;
  hooks.ctx = &ctx;
  hooks.target = &tc_ctx_target;
  hooks.node = &tc_ctx_node;
  hooks.peer_count = &tc_ctx_peer_count;
  hooks.self_peer = &tc_ctx_self_peer;
  hooks.shard_base = &tc_ctx_shard_base;
  hooks.shard_size = &tc_ctx_shard_size;
  hooks.forward = &tc_ctx_forward;
  hooks.inject = &tc_ctx_inject;
  hooks.reply = &tc_ctx_reply;
  hooks.remote_write = &tc_ctx_remote_write;
  hooks.hll_guard = &tc_hll_guard;
  // The libm dependency the sin_sum archive declares; the interpreter binds
  // it statically (the host runtime already links libm).
  hooks.sin_fn = [](double x) { return std::sin(x); };
  return hooks;
}

std::vector<std::pair<std::string, void*>> runtime_hook_symbols() {
  return {
      {"tc_ctx_target", reinterpret_cast<void*>(&tc_ctx_target)},
      {"tc_ctx_node", reinterpret_cast<void*>(&tc_ctx_node)},
      {"tc_ctx_peer_count", reinterpret_cast<void*>(&tc_ctx_peer_count)},
      {"tc_ctx_self_peer", reinterpret_cast<void*>(&tc_ctx_self_peer)},
      {"tc_ctx_shard_base", reinterpret_cast<void*>(&tc_ctx_shard_base)},
      {"tc_ctx_shard_size", reinterpret_cast<void*>(&tc_ctx_shard_size)},
      {"tc_ctx_forward", reinterpret_cast<void*>(&tc_ctx_forward)},
      {"tc_ctx_inject", reinterpret_cast<void*>(&tc_ctx_inject)},
      {"tc_ctx_reply", reinterpret_cast<void*>(&tc_ctx_reply)},
      {"tc_ctx_remote_write", reinterpret_cast<void*>(&tc_ctx_remote_write)},
      {"tc_hll_guard", reinterpret_cast<void*>(&tc_hll_guard)},
  };
}

}  // namespace tc::core
