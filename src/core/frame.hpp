// Ifunc message frames — the contiguous memory block of paper Figs. 2/3:
//
//   [HEADER][PAYLOAD][MAGIC1][CODE (serialized fat archive)][MAGIC2]
//
// The same buffer serves both protocol states: a *full* send transmits the
// whole frame; a *truncated* send (code already cached at the target)
// transmits only the prefix through MAGIC1. The frame is never modified —
// truncation is just a shorter send size, exactly as the paper passes a
// smaller length to the UCP PUT.
//
// 26-byte header layout (little-endian):
//   u16 frame magic | u8 version | u8 repr | u64 ifunc_id |
//   u32 origin_node | u32 payload_size | u32 code_size | u16 header check
//
// Protocol v3: when the repr byte carries kReprTracedFlag, a 16-byte trace
// extension (u64 trace id | u32 hop | u32 parent span) sits between the
// header and the payload. Tracing off ⇒ no flag, no extension, and the
// frame is laid out exactly as in v2.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/protocol.hpp"
#include "ir/fat_bitcode.hpp"
#include "obs/trace.hpp"

namespace tc::core {

struct FrameHeader {
  std::uint8_t repr = 0;  ///< ir::CodeRepr on the wire
  bool code_only = false;  ///< carries code but no payload to execute
  std::uint64_t ifunc_id = 0;
  std::uint32_t origin_node = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t code_size = 0;  ///< full-frame code-section size, always set
  /// v3 trace extension; trace.traced() == false means none on the wire.
  obs::TraceContext trace;
  bool traced() const { return trace.traced(); }
  /// Bytes before the payload: header plus the optional trace extension.
  std::size_t prefix_size() const {
    return kHeaderSize + (traced() ? kTraceExtSize : 0);
  }
};

/// An immutable, reusable ifunc message (paper: "the ifunc message is never
/// modified... the user might want to send it to another process later").
class Frame {
 public:
  /// Assembles a frame from an ifunc's identity, serialized code archive,
  /// and payload. A non-null `trace` with trace.traced() attaches the v3
  /// trace extension (kTraceExtSize bytes after the header); null or an
  /// untraced context adds nothing to the wire.
  static StatusOr<Frame> build(std::uint64_t ifunc_id, ir::CodeRepr repr,
                               ByteSpan code_archive, ByteSpan payload,
                               std::uint32_t origin_node,
                               bool code_only = false,
                               const obs::TraceContext* trace = nullptr);

  /// Rebuilds `frame` with `trace` attached (the frame itself is immutable;
  /// tracing ships a traced copy).
  static StatusOr<Frame> with_trace(const Frame& frame,
                                    const obs::TraceContext& trace);

  /// Traced wire image of `frame` in its full or truncated form. Unlike
  /// with_trace this splices only the bytes that actually ship — a traced
  /// truncated send copies ~tens of bytes instead of the whole code
  /// archive, which is what keeps tracing overhead flat on warm paths.
  static Bytes traced_wire(const Frame& frame, const obs::TraceContext& trace,
                           bool include_code);

  const Bytes& bytes() const { return bytes_; }
  const FrameHeader& header() const { return header_; }

  /// Size of a full transmission (through MAGIC2).
  std::size_t full_size() const { return bytes_.size(); }
  /// Size of a truncated transmission (through MAGIC1).
  std::size_t truncated_size() const {
    return header_.prefix_size() + header_.payload_size + kMagicSize;
  }

  ByteSpan full_view() const { return as_span(bytes_); }
  ByteSpan truncated_view() const {
    return ByteSpan(bytes_.data(), truncated_size());
  }

  // --- receive side ---------------------------------------------------------

  /// Decodes and checks the fixed header of an incoming buffer.
  static StatusOr<FrameHeader> peek_header(ByteSpan data);

  /// Validates a received buffer: header check, magic delimiters, and that
  /// its length matches either the full or the truncated form. Returns true
  /// if the code section is present.
  static StatusOr<bool> validate(ByteSpan data);

  /// Views into a received buffer (header must have been validated).
  static ByteSpan payload_view(ByteSpan data, const FrameHeader& header);
  static ByteSpan code_view(ByteSpan data, const FrameHeader& header);

 private:
  Frame() = default;
  FrameHeader header_;
  Bytes bytes_;
};

// --- result frames -----------------------------------------------------------
// Small two-sided messages used by the X-RDMA ReturnResult operation:
//   u16 result magic | u32 origin_node | u32 data_size | data
// The traced variant (kResultTracedMagic, protocol v3) carries the 16-byte
// trace context between origin_node and the data blob, so the initiator can
// close the trace with a result-arrival span:
//   u16 traced magic | u32 origin_node | u64 trace_id | u32 hop |
//   u32 parent_span | u32 data_size | data
Bytes encode_result_frame(std::uint32_t origin_node, ByteSpan data,
                          const obs::TraceContext* trace = nullptr);

struct ResultFrame {
  std::uint32_t origin_node = 0;
  ByteSpan data;
  obs::TraceContext trace;  ///< trace.traced() == false for plain results
};
StatusOr<ResultFrame> decode_result_frame(ByteSpan bytes);

/// True if `bytes` starts with either result-frame magic.
bool is_result_frame(ByteSpan bytes);

// --- NACK control frames ------------------------------------------------------
// "Resend the code for ifunc X" — emitted when a truncated frame arrives for
// an ifunc the receiver does not have (e.g. after a restart or eviction).
Bytes encode_nack_frame(std::uint64_t ifunc_id);
StatusOr<std::uint64_t> decode_nack_frame(ByteSpan bytes);
bool is_nack_frame(ByteSpan bytes);

// --- batch container frames ---------------------------------------------------
// Several small frames coalesced into one wire message (protocol v2); see
// kBatchMagic for the layout. Parts must themselves be non-batch frames —
// batches never nest — and the receiver processes them in order, so
// sender-side FIFO per destination is preserved. Fails if the part count
// exceeds the wire's u16 (the runtime's coalescing window is capped well
// below that).
StatusOr<Bytes> encode_batch_frame(const std::vector<Bytes>& parts);
/// Views into `bytes` — valid only while the container buffer lives.
StatusOr<std::vector<ByteSpan>> decode_batch_frame(ByteSpan bytes);
bool is_batch_frame(ByteSpan bytes);

}  // namespace tc::core
