// Wire-protocol constants for ifunc message frames (paper Figs. 2 and 3).
#pragma once

#include <cstdint>

namespace tc::core {

/// First two bytes of every ifunc frame.
inline constexpr std::uint16_t kFrameMagic = 0x7C43;  // "C|"
/// First two bytes of a result (X-RDMA ReturnResult) frame.
inline constexpr std::uint16_t kResultMagic = 0x7C52;  // "R|"
/// First two bytes of a NACK control frame: "I got a truncated frame for an
/// ifunc I don't have — resend the code" (cache-miss recovery extension;
/// DESIGN.md §4). Followed by the u64 ifunc id.
inline constexpr std::uint16_t kNackMagic = 0x7C4E;  // "N|"
/// First two bytes of a *batch container* frame: several small ifunc /
/// result / NACK frames coalesced into one wire message so back-to-back
/// sends to the same endpoint amortize the per-message injection gap.
/// Layout: u16 magic | u8 version | u8 reserved | u16 count |
///         count × { u32 length | sub-frame bytes }.
/// Batches never nest.
inline constexpr std::uint16_t kBatchMagic = 0x7C42;  // "B|"

/// First two bytes of a *traced* result frame: a ReturnResult carrying the
/// 16-byte trace context back to the initiator (protocol v3).
inline constexpr std::uint16_t kResultTracedMagic = 0x7C54;  // "T|"

/// Bit in the header's repr byte marking a *code-only* frame: carries the
/// archive but no payload to execute (the NACK resend path).
inline constexpr std::uint8_t kReprCodeOnlyFlag = 0x80;
/// Bit in the header's repr byte marking a *traced* frame: a 16-byte trace
/// context (u64 trace id | u32 hop | u32 parent span) follows the fixed
/// header, before the payload. Absent — zero wire bytes — when tracing is
/// off, so untraced v3 frames are byte-identical to v2 frames modulo the
/// version byte.
inline constexpr std::uint8_t kReprTracedFlag = 0x40;

/// v2: adds the batch container frame (kBatchMagic) to the wire protocol.
/// v3: adds the optional trace extension (kReprTracedFlag) and the traced
///     result frame (kResultTracedMagic). v2 frames are still accepted.
inline constexpr std::uint8_t kProtocolVersion = 3;
/// Oldest version the receive path still decodes.
inline constexpr std::uint8_t kMinProtocolVersion = 2;

/// Size of the optional trace extension following the header.
inline constexpr std::size_t kTraceExtSize = 16;

/// Fixed prefix of a batch container before the length-prefixed sub-frames.
inline constexpr std::size_t kBatchHeaderSize = 6;

/// Delimiter after the payload section — the receiver polls for this to
/// detect that the payload of a (possibly truncated) frame has landed.
inline constexpr std::uint32_t kMagicPayloadEnd = 0x314D4354;  // "TCM1"
/// Delimiter after the code section — full-frame delivery marker.
inline constexpr std::uint32_t kMagicCodeEnd = 0x324D4354;  // "TCM2"

/// Fixed header size in bytes; see FrameHeader for the field layout.
inline constexpr std::size_t kHeaderSize = 26;

inline constexpr std::size_t kMagicSize = 4;

}  // namespace tc::core
