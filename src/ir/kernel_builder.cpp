#include "ir/kernel_builder.hpp"

#include <llvm/IR/IRBuilder.h>
#include <llvm/IR/Verifier.h>

#include "ir/abi.hpp"
#include "ir/bitcode.hpp"
#include "workloads/shard_layout.hpp"

namespace tc::ir {

namespace {

/// Carries the in-progress module plus the declared hook functions.
struct Emitter {
  llvm::LLVMContext& ctx;
  llvm::Module& mod;
  llvm::IRBuilder<> b;
  bool hll_guards;
  bool chaser_tagged = false;

  llvm::Type* i8p;
  llvm::Type* i64p;
  llvm::Type* void_ty;
  llvm::IntegerType* i8;
  llvm::IntegerType* i32;
  llvm::IntegerType* i64;
  llvm::Type* f32;
  llvm::Type* f64;

  llvm::Function* entry = nullptr;
  llvm::Value* arg_ctx = nullptr;
  llvm::Value* arg_payload = nullptr;
  llvm::Value* arg_size = nullptr;

  Emitter(llvm::LLVMContext& c, llvm::Module& m, bool hll,
          bool tagged = false)
      : ctx(c), mod(m), b(c), hll_guards(hll), chaser_tagged(tagged) {
    i8 = b.getInt8Ty();
    i32 = b.getInt32Ty();
    i64 = b.getInt64Ty();
    f32 = b.getFloatTy();
    f64 = b.getDoubleTy();
    i8p = b.getInt8PtrTy();
    i64p = i64->getPointerTo();
    void_ty = b.getVoidTy();
  }

  llvm::FunctionCallee hook(const char* name, llvm::Type* ret,
                            std::initializer_list<llvm::Type*> params) {
    return mod.getOrInsertFunction(
        name, llvm::FunctionType::get(ret, params, false));
  }

  // Hook declarations (see ir/abi.hpp for semantics).
  llvm::FunctionCallee hk_target() {
    return hook(abi::kHookTarget, i8p, {i8p});
  }
  llvm::FunctionCallee hk_node() { return hook(abi::kHookNode, i64, {i8p}); }
  llvm::FunctionCallee hk_peer_count() {
    return hook(abi::kHookPeerCount, i64, {i8p});
  }
  llvm::FunctionCallee hk_self_peer() {
    return hook(abi::kHookSelfPeer, i64, {i8p});
  }
  llvm::FunctionCallee hk_shard_base() {
    return hook(abi::kHookShardBase, i64p, {i8p});
  }
  llvm::FunctionCallee hk_shard_size() {
    return hook(abi::kHookShardSize, i64, {i8p});
  }
  llvm::FunctionCallee hk_forward() {
    return hook(abi::kHookForward, i32, {i8p, i64, i8p, i64});
  }
  llvm::FunctionCallee hk_inject() {
    return hook(abi::kHookInject, i32, {i8p, i64, i8p, i8p, i64});
  }
  llvm::FunctionCallee hk_reply() {
    return hook(abi::kHookReply, i32, {i8p, i8p, i64});
  }
  llvm::FunctionCallee hk_hll_guard() {
    return hook(abi::kHookHllGuard, void_ty, {i8p});
  }
  llvm::FunctionCallee hk_remote_write() {
    return hook(abi::kHookRemoteWrite, i32, {i8p, i64, i64, i8p, i64});
  }
  /// `double sin(double)` — resolved from the libm.so.6 dependency the
  /// archive declares, not emitted locally.
  llvm::FunctionCallee libm_sin() {
    return hook("sin", f64, {f64});
  }

  /// Emits the HLL dynamic-dispatch guard if this is an HLL-frontend build.
  void guard() {
    if (hll_guards) b.CreateCall(hk_hll_guard(), {arg_ctx});
  }

  /// Creates `void tc_main(i8* ctx, i8* payload, i64 size)` and positions
  /// the builder at its entry block.
  void begin_entry() {
    auto* fty =
        llvm::FunctionType::get(void_ty, {i8p, i8p, i64}, /*vararg=*/false);
    entry = llvm::Function::Create(fty, llvm::Function::ExternalLinkage,
                                   abi::kEntryName, &mod);
    entry->getArg(0)->setName("ctx");
    entry->getArg(1)->setName("payload");
    entry->getArg(2)->setName("payload_size");
    arg_ctx = entry->getArg(0);
    arg_payload = entry->getArg(1);
    arg_size = entry->getArg(2);
    b.SetInsertPoint(llvm::BasicBlock::Create(ctx, "entry", entry));
  }

  llvm::BasicBlock* block(const char* name) {
    return llvm::BasicBlock::Create(ctx, name, entry);
  }

  /// payload viewed as an i64 array; returns &payload64[index].
  llvm::Value* payload_u64_ptr(unsigned index) {
    auto* p64 = b.CreateBitCast(arg_payload, i64p, "pay64");
    return b.CreateConstInBoundsGEP1_64(i64, p64, index);
  }
  llvm::Value* load_payload_u64(unsigned index, const char* name) {
    return b.CreateLoad(i64, payload_u64_ptr(index), name);
  }
  void store_payload_u64(unsigned index, llvm::Value* value) {
    b.CreateStore(value, payload_u64_ptr(index));
  }
};

void emit_tsi(Emitter& e) {
  e.begin_entry();
  e.guard();
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* counter = e.b.CreateBitCast(raw, e.i64p, "counter");
  auto* old_value = e.b.CreateLoad(e.i64, counter, "old");
  auto* new_value =
      e.b.CreateAdd(old_value, llvm::ConstantInt::get(e.i64, 1), "new");
  e.b.CreateStore(new_value, counter);
  e.b.CreateRetVoid();
}

void emit_payload_sum(Emitter& e) {
  e.begin_entry();
  auto* entry_bb = e.b.GetInsertBlock();
  auto* loop_bb = e.block("loop");
  auto* body_bb = e.block("body");
  auto* done_bb = e.block("done");

  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* index = e.b.CreatePHI(e.i64, 2, "i");
  auto* sum = e.b.CreatePHI(e.i64, 2, "sum");
  index->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  sum->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  auto* more = e.b.CreateICmpULT(index, e.arg_size, "more");
  e.b.CreateCondBr(more, body_bb, done_bb);

  e.b.SetInsertPoint(body_bb);
  e.guard();
  auto* slot = e.b.CreateInBoundsGEP(e.i8, e.arg_payload, index, "slot");
  auto* byte = e.b.CreateLoad(e.i8, slot, "byte");
  auto* wide = e.b.CreateZExt(byte, e.i64, "wide");
  auto* next_sum = e.b.CreateAdd(sum, wide, "next_sum");
  auto* next_index =
      e.b.CreateAdd(index, llvm::ConstantInt::get(e.i64, 1), "next_i");
  index->addIncoming(next_index, e.b.GetInsertBlock());
  sum->addIncoming(next_sum, e.b.GetInsertBlock());
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* out = e.b.CreateBitCast(raw, e.i64p, "out");
  e.b.CreateStore(sum, out);
  e.b.CreateRetVoid();
}

// Payload layout: [n:u64][a:f32][x:f32*n][y:f32*n]; writes a*x[i]+y[i] into
// the target buffer (f32[n]).
void emit_saxpy(Emitter& e) {
  e.begin_entry();
  auto* f32p = e.f32->getPointerTo();

  auto* n = e.load_payload_u64(0, "n");
  auto* a_ptr = e.b.CreateBitCast(
      e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 8), f32p, "a_ptr");
  auto* a = e.b.CreateLoad(e.f32, a_ptr, "a");
  auto* x_base = e.b.CreateBitCast(
      e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 12), f32p, "x");
  auto* x_bytes = e.b.CreateMul(n, llvm::ConstantInt::get(e.i64, 4));
  auto* y_raw = e.b.CreateInBoundsGEP(
      e.i8, e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 12), x_bytes);
  auto* y_base = e.b.CreateBitCast(y_raw, f32p, "y");
  auto* out_raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* out_base = e.b.CreateBitCast(out_raw, f32p, "out");

  auto* entry_bb = e.b.GetInsertBlock();
  auto* loop_bb = e.block("loop");
  auto* body_bb = e.block("body");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* index = e.b.CreatePHI(e.i64, 2, "i");
  index->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  e.b.CreateCondBr(e.b.CreateICmpULT(index, n, "more"), body_bb, done_bb);

  e.b.SetInsertPoint(body_bb);
  e.guard();
  auto* xi = e.b.CreateLoad(
      e.f32, e.b.CreateInBoundsGEP(e.f32, x_base, index), "xi");
  auto* yi = e.b.CreateLoad(
      e.f32, e.b.CreateInBoundsGEP(e.f32, y_base, index), "yi");
  auto* axpy = e.b.CreateFAdd(e.b.CreateFMul(a, xi), yi, "axpy");
  e.b.CreateStore(axpy, e.b.CreateInBoundsGEP(e.f32, out_base, index));
  auto* next =
      e.b.CreateAdd(index, llvm::ConstantInt::get(e.i64, 1), "next_i");
  index->addIncoming(next, e.b.GetInsertBlock());
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  e.b.CreateRetVoid();
}

// Payload layout: [n:u64][x:f64*n]; writes the sum into *(double*)target.
void emit_vec_reduce(Emitter& e) {
  e.begin_entry();
  auto* f64p = e.f64->getPointerTo();
  auto* n = e.load_payload_u64(0, "n");
  auto* x_base = e.b.CreateBitCast(
      e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 8), f64p, "x");

  auto* entry_bb = e.b.GetInsertBlock();
  auto* loop_bb = e.block("loop");
  auto* body_bb = e.block("body");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* index = e.b.CreatePHI(e.i64, 2, "i");
  auto* acc = e.b.CreatePHI(e.f64, 2, "acc");
  index->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  acc->addIncoming(llvm::ConstantFP::get(e.f64, 0.0), entry_bb);
  e.b.CreateCondBr(e.b.CreateICmpULT(index, n, "more"), body_bb, done_bb);

  e.b.SetInsertPoint(body_bb);
  e.guard();
  auto* xi = e.b.CreateLoad(
      e.f64, e.b.CreateInBoundsGEP(e.f64, x_base, index), "xi");
  auto* next_acc = e.b.CreateFAdd(acc, xi, "next_acc");
  auto* next =
      e.b.CreateAdd(index, llvm::ConstantInt::get(e.i64, 1), "next_i");
  index->addIncoming(next, e.b.GetInsertBlock());
  acc->addIncoming(next_acc, e.b.GetInsertBlock());
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  e.b.CreateStore(acc, e.b.CreateBitCast(raw, f64p, "out"));
  e.b.CreateRetVoid();
}

// The DAPC chaser (paper §IV-C). Payload: [addr:u64][depth:u64] — or, for
// the *tagged* variant (e.chaser_tagged; the async-window protocol),
// [addr:u64][depth:u64][tag:u64]. Walks locally owned entries recursively
// (a loop after the tail-call optimization the paper's C implementation
// also relies on); forwards itself to the owning server when the next
// entry is remote — the tag rides along in the untouched payload tail;
// replies with the final value (classic) or [value][tag] (tagged) when
// depth reaches zero. Two build-time variants, not a runtime payload-size
// dispatch: the classic instruction stream must stay exactly the paper's.
void emit_chaser(Emitter& e) {
  e.begin_entry();
  auto* shard_size =
      e.b.CreateCall(e.hk_shard_size(), {e.arg_ctx}, "shard_size");
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* base = e.b.CreateCall(e.hk_shard_base(), {e.arg_ctx}, "base");
  auto* addr0 = e.load_payload_u64(0, "addr0");
  auto* depth0 = e.load_payload_u64(1, "depth0");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* loop_bb = e.block("chase");
  auto* local_bb = e.block("local");
  auto* forward_bb = e.block("forward");
  auto* step_bb = e.block("step");
  auto* finish_bb = e.block("finish");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* addr = e.b.CreatePHI(e.i64, 2, "addr");
  auto* depth = e.b.CreatePHI(e.i64, 2, "depth");
  addr->addIncoming(addr0, entry_bb);
  depth->addIncoming(depth0, entry_bb);
  auto* owner = e.b.CreateUDiv(addr, shard_size, "owner");
  auto* is_local = e.b.CreateICmpEQ(owner, self, "is_local");
  e.b.CreateCondBr(is_local, local_bb, forward_bb);

  e.b.SetInsertPoint(forward_bb);
  // Refresh the in-place payload and ship ourselves to the owning server.
  e.store_payload_u64(0, addr);
  e.store_payload_u64(1, depth);
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, owner, e.arg_payload, e.arg_size});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(local_bb);
  e.guard();
  auto* slot = e.b.CreateURem(addr, shard_size, "slot");
  auto* value = e.b.CreateLoad(
      e.i64, e.b.CreateInBoundsGEP(e.i64, base, slot), "value");
  auto* next_depth =
      e.b.CreateSub(depth, llvm::ConstantInt::get(e.i64, 1), "next_depth");
  auto* exhausted = e.b.CreateICmpEQ(
      next_depth, llvm::ConstantInt::get(e.i64, 0), "exhausted");
  e.b.CreateCondBr(exhausted, finish_bb, step_bb);

  e.b.SetInsertPoint(step_bb);
  addr->addIncoming(value, step_bb);
  depth->addIncoming(next_depth, step_bb);
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(finish_bb);
  // ReturnResult: reply to the chain origin with the final value — plus
  // the routing tag for the tagged (async-window) variant.
  e.store_payload_u64(0, value);
  if (e.chaser_tagged) {
    auto* tag = e.load_payload_u64(2, "tag");
    e.store_payload_u64(1, tag);
    e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                  llvm::ConstantInt::get(e.i64, 16)});
  } else {
    e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                  llvm::ConstantInt::get(e.i64, 8)});
  }
  e.b.CreateRetVoid();
}

// Payload: [ttl:u64][hops:u64]. Forwards itself around the peer ring until
// ttl hits zero, then replies with the hop count.
void emit_ring_hop(Emitter& e) {
  e.begin_entry();
  auto* ttl = e.load_payload_u64(0, "ttl");
  auto* hops = e.load_payload_u64(1, "hops");
  auto* done_bb = e.block("done");
  auto* hop_bb = e.block("hop");
  auto* is_done =
      e.b.CreateICmpEQ(ttl, llvm::ConstantInt::get(e.i64, 0), "is_done");
  e.b.CreateCondBr(is_done, done_bb, hop_bb);

  e.b.SetInsertPoint(hop_bb);
  e.guard();
  e.store_payload_u64(
      0, e.b.CreateSub(ttl, llvm::ConstantInt::get(e.i64, 1)));
  e.store_payload_u64(
      1, e.b.CreateAdd(hops, llvm::ConstantInt::get(e.i64, 1)));
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* count = e.b.CreateCall(e.hk_peer_count(), {e.arg_ctx}, "count");
  auto* next = e.b.CreateURem(
      e.b.CreateAdd(self, llvm::ConstantInt::get(e.i64, 1)), count, "next");
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, next, e.arg_payload, e.arg_size});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(done_bb);
  e.b.CreateCall(e.hk_reply(),
                 {e.arg_ctx, e.arg_payload,
                  llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();
}

// Payload: [peer:u64][arg:u64][name:NUL-terminated]. Injects the ifunc
// registered locally under `name` to `peer` with an 8-byte payload `arg`.
void emit_spawner(Emitter& e) {
  e.begin_entry();
  e.guard();
  auto* peer = e.load_payload_u64(0, "peer");
  auto* arg_ptr = e.payload_u64_ptr(1);
  auto* name = e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 16, "name");
  e.b.CreateCall(e.hk_inject(),
                 {e.arg_ctx, peer, name,
                  e.b.CreateBitCast(arg_ptr, e.i8p),
                  llvm::ConstantInt::get(e.i64, 8)});
  e.b.CreateRetVoid();
}

// Payload: [n:u64][x:f64*n]; computes sum(sin(x[i])) via libm into
// *(double*)target. Exercises remote dynamic linking against a shared
// library declared in the deps manifest.
void emit_sin_sum(Emitter& e) {
  e.begin_entry();
  auto* f64p = e.f64->getPointerTo();
  auto* n = e.load_payload_u64(0, "n");
  auto* x_base = e.b.CreateBitCast(
      e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 8), f64p, "x");

  auto* entry_bb = e.b.GetInsertBlock();
  auto* loop_bb = e.block("loop");
  auto* body_bb = e.block("body");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* index = e.b.CreatePHI(e.i64, 2, "i");
  auto* acc = e.b.CreatePHI(e.f64, 2, "acc");
  index->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  acc->addIncoming(llvm::ConstantFP::get(e.f64, 0.0), entry_bb);
  e.b.CreateCondBr(e.b.CreateICmpULT(index, n, "more"), body_bb, done_bb);

  e.b.SetInsertPoint(body_bb);
  e.guard();
  auto* xi = e.b.CreateLoad(
      e.f64, e.b.CreateInBoundsGEP(e.f64, x_base, index), "xi");
  auto* sin_xi = e.b.CreateCall(e.libm_sin(), {xi}, "sin_xi");
  auto* next_acc = e.b.CreateFAdd(acc, sin_xi, "next_acc");
  auto* next =
      e.b.CreateAdd(index, llvm::ConstantInt::get(e.i64, 1), "next_i");
  index->addIncoming(next, e.b.GetInsertBlock());
  acc->addIncoming(next_acc, e.b.GetInsertBlock());
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  e.b.CreateStore(acc, e.b.CreateBitCast(raw, f64p, "out"));
  e.b.CreateRetVoid();
}

// Payload: [peer:u64][offset:u64][value:u64]. Writes `value` into the
// exposed segment of `peer` at byte `offset` with a one-sided RDMA PUT
// issued from inside the injected code, then replies with the hook status.
void emit_remote_store(Emitter& e) {
  e.begin_entry();
  e.guard();
  auto* peer = e.load_payload_u64(0, "peer");
  auto* offset = e.load_payload_u64(1, "offset");
  auto* value_ptr = e.b.CreateBitCast(e.payload_u64_ptr(2), e.i8p, "value");
  auto* rc = e.b.CreateCall(
      e.hk_remote_write(),
      {e.arg_ctx, peer, offset, value_ptr, llvm::ConstantInt::get(e.i64, 8)},
      "rc");
  auto* rc_wide = e.b.CreateSExt(rc, e.i64, "rc_wide");
  e.store_payload_u64(0, rc_wide);
  e.b.CreateCall(e.hk_reply(),
                 {e.arg_ctx, e.arg_payload, llvm::ConstantInt::get(e.i64, 8)});
  e.b.CreateRetVoid();
}

// Welford's online algorithm over payload doubles [n:u64][x:f64*n].
// target = double[3] {count, mean, M2}; updates in place so repeated
// invocations stream (the "online" part).
void emit_stats_summary(Emitter& e) {
  e.begin_entry();
  auto* f64p = e.f64->getPointerTo();
  auto* n = e.load_payload_u64(0, "n");
  auto* x_base = e.b.CreateBitCast(
      e.b.CreateConstInBoundsGEP1_64(e.i8, e.arg_payload, 8), f64p, "x");
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* state = e.b.CreateBitCast(raw, f64p, "state");
  auto* count_ptr = state;
  auto* mean_ptr = e.b.CreateConstInBoundsGEP1_64(e.f64, state, 1);
  auto* m2_ptr = e.b.CreateConstInBoundsGEP1_64(e.f64, state, 2);
  auto* count0 = e.b.CreateLoad(e.f64, count_ptr, "count0");
  auto* mean0 = e.b.CreateLoad(e.f64, mean_ptr, "mean0");
  auto* m20 = e.b.CreateLoad(e.f64, m2_ptr, "m20");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* loop_bb = e.block("loop");
  auto* body_bb = e.block("body");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* index = e.b.CreatePHI(e.i64, 2, "i");
  auto* count = e.b.CreatePHI(e.f64, 2, "count");
  auto* mean = e.b.CreatePHI(e.f64, 2, "mean");
  auto* m2 = e.b.CreatePHI(e.f64, 2, "m2");
  index->addIncoming(llvm::ConstantInt::get(e.i64, 0), entry_bb);
  count->addIncoming(count0, entry_bb);
  mean->addIncoming(mean0, entry_bb);
  m2->addIncoming(m20, entry_bb);
  e.b.CreateCondBr(e.b.CreateICmpULT(index, n, "more"), body_bb, done_bb);

  e.b.SetInsertPoint(body_bb);
  e.guard();
  auto* xi = e.b.CreateLoad(
      e.f64, e.b.CreateInBoundsGEP(e.f64, x_base, index), "xi");
  // count' = count + 1; delta = x - mean; mean' = mean + delta / count';
  // M2' = M2 + delta * (x - mean').
  auto* count1 = e.b.CreateFAdd(count, llvm::ConstantFP::get(e.f64, 1.0));
  auto* delta = e.b.CreateFSub(xi, mean, "delta");
  auto* mean1 =
      e.b.CreateFAdd(mean, e.b.CreateFDiv(delta, count1), "mean1");
  auto* delta2 = e.b.CreateFSub(xi, mean1, "delta2");
  auto* m21 = e.b.CreateFAdd(m2, e.b.CreateFMul(delta, delta2), "m21");
  auto* next =
      e.b.CreateAdd(index, llvm::ConstantInt::get(e.i64, 1), "next_i");
  index->addIncoming(next, e.b.GetInsertBlock());
  count->addIncoming(count1, e.b.GetInsertBlock());
  mean->addIncoming(mean1, e.b.GetInsertBlock());
  m2->addIncoming(m21, e.b.GetInsertBlock());
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  e.b.CreateStore(count, count_ptr);
  e.b.CreateStore(mean, mean_ptr);
  e.b.CreateStore(m2, m2_ptr);
  e.b.CreateRetVoid();
}

// Payload: [base:u64][span:u64][value:u64]. Covers peers [base, base+span):
// delivers `value` locally (target = u64[2] {value_slot, arrival_count}),
// and recursively forwards itself to the midpoint of the upper half until
// every peer in the range is covered — a binomial broadcast tree.
void emit_tree_broadcast(Emitter& e) {
  e.begin_entry();
  auto* base0 = e.load_payload_u64(0, "base0");
  auto* span0 = e.load_payload_u64(1, "span0");
  auto* value = e.load_payload_u64(2, "value");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* loop_bb = e.block("split");
  auto* fan_bb = e.block("fan");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* base = e.b.CreatePHI(e.i64, 2, "base");
  auto* span = e.b.CreatePHI(e.i64, 2, "span");
  base->addIncoming(base0, entry_bb);
  span->addIncoming(span0, entry_bb);
  auto* leaf = e.b.CreateICmpULE(
      span, llvm::ConstantInt::get(e.i64, 1), "leaf");
  e.b.CreateCondBr(leaf, done_bb, fan_bb);

  e.b.SetInsertPoint(fan_bb);
  e.guard();
  // mid = (span + 1) / 2: this node keeps [base, base+mid), delegates
  // [base+mid, base+span) to the peer at base+mid.
  auto* mid = e.b.CreateUDiv(
      e.b.CreateAdd(span, llvm::ConstantInt::get(e.i64, 1)),
      llvm::ConstantInt::get(e.i64, 2), "mid");
  auto* right_base = e.b.CreateAdd(base, mid, "right_base");
  auto* right_span = e.b.CreateSub(span, mid, "right_span");
  e.store_payload_u64(0, right_base);
  e.store_payload_u64(1, right_span);
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, right_base, e.arg_payload, e.arg_size});
  base->addIncoming(base, fan_bb);
  span->addIncoming(mid, fan_bb);
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* slot = e.b.CreateBitCast(raw, e.i64p, "slot");
  // Release-ordered slot stores: on the real-threads backend this node's
  // progress thread publishes into a slot the initiator polls with acquire
  // loads; the arrival count must not become visible before the value.
  auto* value_store = e.b.CreateStore(value, slot);
  value_store->setAtomic(llvm::AtomicOrdering::Release);
  value_store->setAlignment(llvm::Align(8));
  auto* count_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, slot, 1);
  auto* count = e.b.CreateLoad(e.i64, count_ptr, "count");
  auto* count_store = e.b.CreateStore(
      e.b.CreateAdd(count, llvm::ConstantInt::get(e.i64, 1)), count_ptr);
  count_store->setAtomic(llvm::AtomicOrdering::Release);
  count_store->setAlignment(llvm::Align(8));
  e.b.CreateRetVoid();
}

// Collective-suite broadcast. Payload: [base][span][value][lane][root],
// all u64; base/span are tree positions relative to the root server, so
// the peer owning a position is (position + root) % peer_count. The target
// is an array of 64-byte collective cells indexed by lane ({value,
// arrivals} at words 0/1); each leaf delivery acks [0][lane][value] to the
// chain origin, which is how the initiator detects completion on the
// wall-clock backend without polling remote memory.
void emit_collective_broadcast(Emitter& e) {
  e.begin_entry();
  auto* base0 = e.load_payload_u64(0, "base0");
  auto* span0 = e.load_payload_u64(1, "span0");
  auto* count = e.b.CreateCall(e.hk_peer_count(), {e.arg_ctx}, "count");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* loop_bb = e.block("split");
  auto* fan_bb = e.block("fan");
  auto* done_bb = e.block("done");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* base = e.b.CreatePHI(e.i64, 2, "base");
  auto* span = e.b.CreatePHI(e.i64, 2, "span");
  base->addIncoming(base0, entry_bb);
  span->addIncoming(span0, entry_bb);
  auto* leaf = e.b.CreateICmpULE(
      span, llvm::ConstantInt::get(e.i64, 1), "leaf");
  e.b.CreateCondBr(leaf, done_bb, fan_bb);

  e.b.SetInsertPoint(fan_bb);
  e.guard();
  auto* mid = e.b.CreateUDiv(
      e.b.CreateAdd(span, llvm::ConstantInt::get(e.i64, 1)),
      llvm::ConstantInt::get(e.i64, 2), "mid");
  auto* right_base = e.b.CreateAdd(base, mid, "right_base");
  auto* right_span = e.b.CreateSub(span, mid, "right_span");
  e.store_payload_u64(0, right_base);
  e.store_payload_u64(1, right_span);
  auto* root = e.load_payload_u64(4, "root");
  auto* dest = e.b.CreateURem(
      e.b.CreateAdd(right_base, root), count, "dest");
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, dest, e.arg_payload, e.arg_size});
  base->addIncoming(base, fan_bb);
  span->addIncoming(mid, fan_bb);
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(done_bb);
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* lane = e.load_payload_u64(3, "lane");
  auto* cell_off = e.b.CreateMul(
      lane, llvm::ConstantInt::get(e.i64, workloads::kLaneCellBytes),
      "cell_off");
  auto* cell = e.b.CreateBitCast(
      e.b.CreateInBoundsGEP(e.i8, raw, cell_off), e.i64p, "cell");
  auto* value = e.load_payload_u64(2, "value");
  // Release-ordered like emit_tree_broadcast: cells may be read by other
  // threads (the value store must be visible before the arrival count).
  auto* value_store = e.b.CreateStore(value, cell);
  value_store->setAtomic(llvm::AtomicOrdering::Release);
  value_store->setAlignment(llvm::Align(8));
  auto* count_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 1);
  auto* arrivals = e.b.CreateLoad(e.i64, count_ptr, "arrivals");
  auto* count_store = e.b.CreateStore(
      e.b.CreateAdd(arrivals, llvm::ConstantInt::get(e.i64, 1)), count_ptr);
  count_store->setAtomic(llvm::AtomicOrdering::Release);
  count_store->setAlignment(llvm::Align(8));
  // Ack to origin: [kind=0][lane][value].
  e.store_payload_u64(0, llvm::ConstantInt::get(e.i64, 0));
  e.store_payload_u64(1, lane);
  e.store_payload_u64(2, value);
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 24)});
  e.b.CreateRetVoid();
}

// Collective-suite reduction. One kernel, two message kinds (payload word
// 0): fan-out [0][base][span][parent][lane][op][root] descends the halving
// tree counting delegated children; contribute [1][lane][value] climbs the
// tree folding partials (0 sum, 1 min, 2 max, 3 count) into the per-lane
// cell {contrib@16, acc@24, expected@32, arrived@40, parent@48, op@56}
// until the root (parent == ~0) replies [1][lane][acc] to the origin.
void emit_collective_reduce(Emitter& e) {
  e.begin_entry();
  auto* kind = e.load_payload_u64(0, "kind");
  auto* fanout_bb = e.block("fanout");
  auto* contrib_bb = e.block("contribute");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(kind, llvm::ConstantInt::get(e.i64, 0), "is_fanout"),
      fanout_bb, contrib_bb);

  auto cell_for_lane = [&e](llvm::Value* lane) {
    auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
    auto* off = e.b.CreateMul(
        lane, llvm::ConstantInt::get(e.i64, workloads::kLaneCellBytes),
        "cell_off");
    return e.b.CreateBitCast(
        e.b.CreateInBoundsGEP(e.i8, raw, off), e.i64p, "cell");
  };
  auto cell_word = [&e](llvm::Value* cell, unsigned word) {
    return e.b.CreateConstInBoundsGEP1_64(e.i64, cell, word);
  };

  // --- fan-out ---------------------------------------------------------------
  e.b.SetInsertPoint(fanout_bb);
  auto* base0 = e.load_payload_u64(1, "base0");
  auto* span0 = e.load_payload_u64(2, "span0");
  auto* parent = e.load_payload_u64(3, "parent");
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* count = e.b.CreateCall(e.hk_peer_count(), {e.arg_ctx}, "count");

  auto* floop_bb = e.block("fan_split");
  auto* fsplit_bb = e.block("fan_delegate");
  auto* ffin_bb = e.block("fan_fin");
  e.b.CreateBr(floop_bb);

  e.b.SetInsertPoint(floop_bb);
  auto* base = e.b.CreatePHI(e.i64, 2, "base");
  auto* span = e.b.CreatePHI(e.i64, 2, "span");
  auto* children = e.b.CreatePHI(e.i64, 2, "children");
  base->addIncoming(base0, fanout_bb);
  span->addIncoming(span0, fanout_bb);
  children->addIncoming(llvm::ConstantInt::get(e.i64, 0), fanout_bb);
  auto* at_leaf = e.b.CreateICmpULE(
      span, llvm::ConstantInt::get(e.i64, 1), "at_leaf");
  e.b.CreateCondBr(at_leaf, ffin_bb, fsplit_bb);

  e.b.SetInsertPoint(fsplit_bb);
  e.guard();
  auto* mid = e.b.CreateUDiv(
      e.b.CreateAdd(span, llvm::ConstantInt::get(e.i64, 1)),
      llvm::ConstantInt::get(e.i64, 2), "mid");
  auto* right_base = e.b.CreateAdd(base, mid, "right_base");
  auto* right_span = e.b.CreateSub(span, mid, "right_span");
  e.store_payload_u64(1, right_base);
  e.store_payload_u64(2, right_span);
  e.store_payload_u64(3, self);  // the child's parent is this node
  auto* root = e.load_payload_u64(6, "root");
  auto* dest = e.b.CreateURem(
      e.b.CreateAdd(right_base, root), count, "dest");
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, dest, e.arg_payload, e.arg_size});
  base->addIncoming(base, fsplit_bb);
  span->addIncoming(mid, fsplit_bb);
  children->addIncoming(
      e.b.CreateAdd(children, llvm::ConstantInt::get(e.i64, 1)), fsplit_bb);
  e.b.CreateBr(floop_bb);

  e.b.SetInsertPoint(ffin_bb);
  auto* lane = e.load_payload_u64(4, "lane");
  auto* cell = cell_for_lane(lane);
  auto* op = e.load_payload_u64(5, "op");
  auto* contrib = e.b.CreateLoad(e.i64, cell_word(cell, 2), "contrib");
  // Own contribution: 1 for op kCount (3), the cell's contrib otherwise.
  auto* own = e.b.CreateSelect(
      e.b.CreateICmpEQ(op, llvm::ConstantInt::get(e.i64, 3), "is_count"),
      llvm::ConstantInt::get(e.i64, 1), contrib, "own");
  auto* internal_bb = e.block("fan_internal");
  auto* leaf_bb = e.block("fan_leaf");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(children, llvm::ConstantInt::get(e.i64, 0)),
      leaf_bb, internal_bb);

  e.b.SetInsertPoint(internal_bb);
  e.b.CreateStore(own, cell_word(cell, 3));       // acc
  e.b.CreateStore(children, cell_word(cell, 4));  // expected
  e.b.CreateStore(llvm::ConstantInt::get(e.i64, 0), cell_word(cell, 5));
  e.b.CreateStore(parent, cell_word(cell, 6));
  e.b.CreateStore(op, cell_word(cell, 7));
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(leaf_bb);
  // Childless: contribute [1][lane][own] to the parent — or reply to the
  // origin when this leaf is also the root (N == 1).
  e.store_payload_u64(0, llvm::ConstantInt::get(e.i64, 1));
  e.store_payload_u64(1, lane);
  e.store_payload_u64(2, own);
  auto* lsend_bb = e.block("fan_leaf_send");
  auto* lreply_bb = e.block("fan_leaf_reply");
  auto* is_root = e.b.CreateICmpEQ(
      parent, llvm::ConstantInt::get(e.i64, ~0ull), "is_root");
  e.b.CreateCondBr(is_root, lreply_bb, lsend_bb);
  e.b.SetInsertPoint(lsend_bb);
  e.b.CreateCall(e.hk_forward(), {e.arg_ctx, parent, e.arg_payload,
                                  llvm::ConstantInt::get(e.i64, 24)});
  e.b.CreateRetVoid();
  e.b.SetInsertPoint(lreply_bb);
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 24)});
  e.b.CreateRetVoid();

  // --- contribute ------------------------------------------------------------
  e.b.SetInsertPoint(contrib_bb);
  auto* clane = e.load_payload_u64(1, "clane");
  auto* ccell = cell_for_lane(clane);
  e.guard();
  auto* v = e.load_payload_u64(2, "v");
  auto* cop = e.b.CreateLoad(e.i64, cell_word(ccell, 7), "cop");
  auto* acc = e.b.CreateLoad(e.i64, cell_word(ccell, 3), "acc");
  auto* lt = e.b.CreateICmpULT(acc, v, "acc_lt_v");
  auto* minv = e.b.CreateSelect(lt, acc, v, "minv");
  auto* maxv = e.b.CreateSelect(lt, v, acc, "maxv");
  auto* sum = e.b.CreateAdd(acc, v, "sum");
  auto* folded = e.b.CreateSelect(
      e.b.CreateICmpEQ(cop, llvm::ConstantInt::get(e.i64, 1)), minv,
      e.b.CreateSelect(
          e.b.CreateICmpEQ(cop, llvm::ConstantInt::get(e.i64, 2)), maxv,
          sum),
      "folded");
  e.b.CreateStore(folded, cell_word(ccell, 3));
  auto* arrived = e.b.CreateAdd(
      e.b.CreateLoad(e.i64, cell_word(ccell, 5), "arrived0"),
      llvm::ConstantInt::get(e.i64, 1), "arrived");
  e.b.CreateStore(arrived, cell_word(ccell, 5));
  auto* expected = e.b.CreateLoad(e.i64, cell_word(ccell, 4), "expected");
  auto* climb_bb = e.block("climb");
  auto* quiet_bb = e.block("quiet");
  e.b.CreateCondBr(e.b.CreateICmpEQ(arrived, expected, "complete"),
                   climb_bb, quiet_bb);

  e.b.SetInsertPoint(climb_bb);
  e.store_payload_u64(2, folded);
  auto* cparent = e.b.CreateLoad(e.i64, cell_word(ccell, 6), "cparent");
  auto* csend_bb = e.block("climb_send");
  auto* creply_bb = e.block("climb_reply");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(cparent, llvm::ConstantInt::get(e.i64, ~0ull)),
      creply_bb, csend_bb);
  e.b.SetInsertPoint(csend_bb);
  e.b.CreateCall(e.hk_forward(), {e.arg_ctx, cparent, e.arg_payload,
                                  llvm::ConstantInt::get(e.i64, 24)});
  e.b.CreateRetVoid();
  e.b.SetInsertPoint(creply_bb);
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 24)});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(quiet_bb);
  e.b.CreateRetVoid();
}

// Remote hash-table lookup (the workload suite's hash-probe scenario).
// Payload: [key:u64][slot:u64][probes_left:u64][tag:u64]. The table is an
// open-addressing array of {key, value} bucket pairs sharded bucket-major
// across servers (shard_size words / 2 buckets each); slot is the global
// bucket index of the current probe. The kernel walks the linear-probe
// collision chain through the local shard and self-forwards to the owning
// server when the probe sequence crosses a shard boundary; it replies
// [value][tag] on a key match and [~0][tag] on an empty bucket or probe
// exhaustion (the miss sentinel).
void emit_hash_probe(Emitter& e) {
  e.begin_entry();
  auto* shard_words =
      e.b.CreateCall(e.hk_shard_size(), {e.arg_ctx}, "shard_words");
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* base = e.b.CreateCall(e.hk_shard_base(), {e.arg_ctx}, "base");
  auto* count = e.b.CreateCall(e.hk_peer_count(), {e.arg_ctx}, "count");
  auto* bps = e.b.CreateUDiv(
      shard_words,
      llvm::ConstantInt::get(e.i64, workloads::kHashBucketWords),
      "buckets_per_shard");
  auto* cap = e.b.CreateMul(bps, count, "capacity");
  auto* key = e.load_payload_u64(0, "key");
  auto* slot0 = e.load_payload_u64(1, "slot0");
  auto* probes0 = e.load_payload_u64(2, "probes0");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* loop_bb = e.block("probe");
  auto* forward_bb = e.block("forward");
  auto* local_bb = e.block("local");
  auto* hit_bb = e.block("hit");
  auto* check_empty_bb = e.block("check_empty");
  auto* miss_bb = e.block("miss");
  auto* step_bb = e.block("step");
  auto* advance_bb = e.block("advance");
  e.b.CreateBr(loop_bb);

  e.b.SetInsertPoint(loop_bb);
  auto* slot = e.b.CreatePHI(e.i64, 2, "slot");
  auto* probes = e.b.CreatePHI(e.i64, 2, "probes");
  slot->addIncoming(slot0, entry_bb);
  probes->addIncoming(probes0, entry_bb);
  auto* owner = e.b.CreateUDiv(slot, bps, "owner");
  auto* is_local = e.b.CreateICmpEQ(owner, self, "is_local");
  e.b.CreateCondBr(is_local, local_bb, forward_bb);

  e.b.SetInsertPoint(forward_bb);
  e.store_payload_u64(1, slot);
  e.store_payload_u64(2, probes);
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, owner, e.arg_payload, e.arg_size});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(local_bb);
  e.guard();
  auto* local = e.b.CreateURem(slot, bps, "local");
  auto* pair = e.b.CreateMul(
      local, llvm::ConstantInt::get(e.i64, workloads::kHashBucketWords));
  auto* k_ptr = e.b.CreateInBoundsGEP(e.i64, base, pair, "k_ptr");
  auto* stored = e.b.CreateLoad(e.i64, k_ptr, "stored");
  e.b.CreateCondBr(e.b.CreateICmpEQ(stored, key, "is_hit"), hit_bb,
                   check_empty_bb);

  e.b.SetInsertPoint(hit_bb);
  auto* v_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, k_ptr, 1, "v_ptr");
  auto* value = e.b.CreateLoad(e.i64, v_ptr, "value");
  e.store_payload_u64(0, value);
  e.store_payload_u64(1, e.load_payload_u64(3, "tag"));
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(check_empty_bb);
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(
          stored, llvm::ConstantInt::get(e.i64, workloads::kHashEmptyKey),
          "is_empty"),
      miss_bb, step_bb);

  e.b.SetInsertPoint(miss_bb);
  e.store_payload_u64(0, llvm::ConstantInt::get(e.i64, workloads::kMiss));
  e.store_payload_u64(1, e.load_payload_u64(3, "miss_tag"));
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(step_bb);
  auto* probes1 =
      e.b.CreateSub(probes, llvm::ConstantInt::get(e.i64, 1), "probes1");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(probes1, llvm::ConstantInt::get(e.i64, 0),
                       "exhausted"),
      miss_bb, advance_bb);

  e.b.SetInsertPoint(advance_bb);
  auto* slot1 = e.b.CreateURem(
      e.b.CreateAdd(slot, llvm::ConstantInt::get(e.i64, 1)), cap, "slot1");
  slot->addIncoming(slot1, advance_bb);
  probes->addIncoming(probes1, advance_bb);
  e.b.CreateBr(loop_bb);
}

// Ordered search over a sharded sorted index (the workload suite's
// skip-list scenario). Payload: [target:u64][node:u64][level:u64][tag:u64].
// Node records are 10 words — [key][value][(next_id, next_key) x 4 levels]
// — sharded rank-major (shard_size words / 10 nodes each). Carrying the
// successor's *key* alongside each down-link makes the comparison-driven
// branch locally decidable, so the kernel descends in-shard hops in a tight
// loop and forwards itself only when a taken link crosses a shard boundary.
// Replies [value][tag] when the landing node's key matches, [~0][tag]
// otherwise.
void emit_ordered_search(Emitter& e) {
  e.begin_entry();
  auto* shard_words =
      e.b.CreateCall(e.hk_shard_size(), {e.arg_ctx}, "shard_words");
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* base = e.b.CreateCall(e.hk_shard_base(), {e.arg_ctx}, "base");
  auto* nps = e.b.CreateUDiv(
      shard_words,
      llvm::ConstantInt::get(e.i64, workloads::kIndexRecordWords),
      "nodes_per_shard");
  auto* target = e.load_payload_u64(0, "target");
  auto* node0 = e.load_payload_u64(1, "node0");
  auto* level0 = e.load_payload_u64(2, "level0");
  auto* entry_bb = e.b.GetInsertBlock();

  auto* hop_bb = e.block("hop");
  auto* forward_bb = e.block("forward");
  auto* local_bb = e.block("local");
  auto* desc_bb = e.block("descend");
  auto* take_bb = e.block("take");
  auto* down_bb = e.block("down");
  auto* down_step_bb = e.block("down_step");
  auto* fin_bb = e.block("fin");
  e.b.CreateBr(hop_bb);

  e.b.SetInsertPoint(hop_bb);
  auto* node = e.b.CreatePHI(e.i64, 2, "node");
  auto* level_in = e.b.CreatePHI(e.i64, 2, "level_in");
  node->addIncoming(node0, entry_bb);
  level_in->addIncoming(level0, entry_bb);
  auto* owner = e.b.CreateUDiv(node, nps, "owner");
  e.b.CreateCondBr(e.b.CreateICmpEQ(owner, self, "is_local"), local_bb,
                   forward_bb);

  e.b.SetInsertPoint(forward_bb);
  e.store_payload_u64(1, node);
  e.store_payload_u64(2, level_in);
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, owner, e.arg_payload, e.arg_size});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(local_bb);
  e.guard();
  auto* local = e.b.CreateURem(node, nps, "local");
  auto* rec = e.b.CreateInBoundsGEP(
      e.i64, base,
      e.b.CreateMul(local,
                    llvm::ConstantInt::get(e.i64, workloads::kIndexRecordWords)),
      "rec");
  e.b.CreateBr(desc_bb);

  e.b.SetInsertPoint(desc_bb);
  auto* level = e.b.CreatePHI(e.i64, 2, "level");
  level->addIncoming(level_in, local_bb);
  auto* finger = e.b.CreateAdd(
      llvm::ConstantInt::get(e.i64, workloads::kIndexFingerBaseWord),
      e.b.CreateMul(level,
                    llvm::ConstantInt::get(
                        e.i64, workloads::kIndexFingerBytes /
                                   workloads::kShardWordBytes)),
      "finger");
  auto* id_ptr = e.b.CreateInBoundsGEP(e.i64, rec, finger, "id_ptr");
  auto* next_id = e.b.CreateLoad(e.i64, id_ptr, "next_id");
  auto* next_key = e.b.CreateLoad(
      e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, id_ptr, 1), "next_key");
  auto* valid = e.b.CreateICmpNE(
      next_id, llvm::ConstantInt::get(e.i64, workloads::kIndexNil), "valid");
  auto* le = e.b.CreateICmpULE(next_key, target, "le");
  e.b.CreateCondBr(e.b.CreateAnd(valid, le, "take_link"), take_bb, down_bb);

  e.b.SetInsertPoint(take_bb);
  node->addIncoming(next_id, take_bb);
  level_in->addIncoming(level, take_bb);
  e.b.CreateBr(hop_bb);

  e.b.SetInsertPoint(down_bb);
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(level, llvm::ConstantInt::get(e.i64, 0), "bottom"),
      fin_bb, down_step_bb);
  e.b.SetInsertPoint(down_step_bb);
  level->addIncoming(
      e.b.CreateSub(level, llvm::ConstantInt::get(e.i64, 1)), down_step_bb);
  e.b.CreateBr(desc_bb);

  e.b.SetInsertPoint(fin_bb);
  auto* landed_key = e.b.CreateLoad(e.i64, rec, "landed_key");
  auto* found = e.b.CreateICmpEQ(landed_key, target, "found");
  auto* value = e.b.CreateLoad(
      e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, rec, 1), "value");
  auto* result = e.b.CreateSelect(
      found, value, llvm::ConstantInt::get(e.i64, workloads::kMiss),
      "result");
  e.store_payload_u64(0, result);
  e.store_payload_u64(1, e.load_payload_u64(3, "tag"));
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();
}

// Self-propagating BFS frontier expansion (the workload suite's graph
// scenario). Two message kinds discriminated by payload word 0:
//   visit [0][lane][vertex][from]  (32 bytes)
//   ack   [1][lane]                (16 bytes)
// The shard is a local CSR slice — word 0: vertices_per_shard, words
// [1, vps+1]: row offsets, the rest: global column indices — and the
// target is an array of 64-byte per-lane cells {visited_count,
// visited_bitmap*, worklist*, engaged, parent, deficit}. A visit drains
// the local closure through the lane worklist (bitmap dedup) and forwards
// each frontier vertex that leaves the shard, stamping itself as the
// child's `from`. Completion is Dijkstra-Scholten: the first visit
// engages a neutral server under its sender (that ack is deferred), later
// visits are acked right after processing, every forward bumps the
// deficit, and the child ack that drains it disengages the server —
// cascading the ack to its own parent, or replying [lane][0] to the chain
// origin at the engagement root (parent == ~0). A naive credit count at
// the origin would be unsound: a child's ack can overtake its parent's
// and the outstanding counter transiently hits zero mid-traversal.
void emit_bfs_frontier(Emitter& e) {
  e.begin_entry();
  auto* lane = e.load_payload_u64(1, "lane");
  auto* raw = e.b.CreateCall(e.hk_target(), {e.arg_ctx}, "target_raw");
  auto* cell = e.b.CreateBitCast(
      e.b.CreateInBoundsGEP(
          e.i8, raw,
          e.b.CreateMul(lane, llvm::ConstantInt::get(
                                  e.i64, workloads::kLaneCellBytes))),
      e.i64p, "cell");
  auto* engaged_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 3);
  auto* parent_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 4);
  auto* deficit_ptr = e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 5);
  auto* kind = e.load_payload_u64(0, "kind");

  auto* ack_bb = e.block("ack");
  auto* visit_msg_bb = e.block("visit_msg");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(kind, llvm::ConstantInt::get(e.i64, 0), "is_visit"),
      visit_msg_bb, ack_bb);

  // Shared tails; every predecessor passes the ack destination / nothing.
  auto* quiet_bb = e.block("quiet");
  auto* reply_origin_bb = e.block("reply_origin");
  auto* send_ack_bb = e.block("send_ack");

  // --- ack from a child server ----------------------------------------------
  e.b.SetInsertPoint(ack_bb);
  auto* deficit = e.b.CreateSub(
      e.b.CreateLoad(e.i64, deficit_ptr, "deficit0"),
      llvm::ConstantInt::get(e.i64, 1), "deficit");
  e.b.CreateStore(deficit, deficit_ptr);
  auto* drained_bb = e.block("drained");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(deficit, llvm::ConstantInt::get(e.i64, 0),
                       "drained"),
      drained_bb, quiet_bb);
  e.b.SetInsertPoint(drained_bb);
  e.b.CreateStore(llvm::ConstantInt::get(e.i64, 0), engaged_ptr);
  auto* my_parent = e.b.CreateLoad(e.i64, parent_ptr, "my_parent");
  auto* at_root = e.b.CreateICmpEQ(
      my_parent, llvm::ConstantInt::get(e.i64, ~0ull), "at_root");
  e.b.CreateCondBr(at_root, reply_origin_bb, send_ack_bb);

  // --- visit -----------------------------------------------------------------
  e.b.SetInsertPoint(visit_msg_bb);
  auto* base = e.b.CreateCall(e.hk_shard_base(), {e.arg_ctx}, "base");
  auto* self = e.b.CreateCall(e.hk_self_peer(), {e.arg_ctx}, "self");
  auto* vps = e.b.CreateLoad(e.i64, base, "vps");
  auto* v0 = e.load_payload_u64(2, "v0");
  auto* owner = e.b.CreateUDiv(v0, vps, "owner");

  auto* forward_bb = e.block("route");
  auto* run_bb = e.block("run");
  e.b.CreateCondBr(e.b.CreateICmpEQ(owner, self, "is_local"), run_bb,
                   forward_bb);

  e.b.SetInsertPoint(forward_bb);
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, owner, e.arg_payload, e.arg_size});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(run_bb);
  // Read `from` before the expansion: forwarded children overwrite
  // payload word 3 with this server's own index.
  auto* from = e.load_payload_u64(3, "from");
  auto* bitmap = e.b.CreateIntToPtr(
      e.b.CreateLoad(e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 1)),
      e.i64p, "bitmap");
  auto* stack = e.b.CreateIntToPtr(
      e.b.CreateLoad(e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, cell, 2)),
      e.i64p, "stack");
  e.b.CreateStore(v0, stack);
  auto* run_entry_bb = e.b.GetInsertBlock();

  auto* wloop_bb = e.block("worklist");
  auto* pop_bb = e.block("pop");
  auto* visit_bb = e.block("visit");
  auto* eloop_bb = e.block("edges");
  auto* edge_bb = e.block("edge");
  auto* push_bb = e.block("push");
  auto* send_bb = e.block("send");
  auto* next_edge_bb = e.block("next_edge");
  auto* done_bb = e.block("done");
  e.b.CreateBr(wloop_bb);

  e.b.SetInsertPoint(wloop_bb);
  auto* sp = e.b.CreatePHI(e.i64, 3, "sp");
  auto* spawned = e.b.CreatePHI(e.i64, 3, "spawned");
  sp->addIncoming(llvm::ConstantInt::get(e.i64, 1), run_entry_bb);
  spawned->addIncoming(llvm::ConstantInt::get(e.i64, 0), run_entry_bb);
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(sp, llvm::ConstantInt::get(e.i64, 0), "drained"),
      done_bb, pop_bb);

  e.b.SetInsertPoint(pop_bb);
  auto* sp1 = e.b.CreateSub(sp, llvm::ConstantInt::get(e.i64, 1), "sp1");
  auto* u = e.b.CreateLoad(
      e.i64, e.b.CreateInBoundsGEP(e.i64, stack, sp1), "u");
  auto* lu = e.b.CreateURem(u, vps, "lu");
  auto* word_ptr = e.b.CreateInBoundsGEP(
      e.i64, bitmap,
      e.b.CreateLShr(lu, llvm::ConstantInt::get(e.i64, 6)), "word_ptr");
  auto* word = e.b.CreateLoad(e.i64, word_ptr, "word");
  auto* bit = e.b.CreateShl(
      llvm::ConstantInt::get(e.i64, 1),
      e.b.CreateAnd(lu, llvm::ConstantInt::get(e.i64, 63)), "bit");
  auto* seen = e.b.CreateICmpNE(
      e.b.CreateAnd(word, bit), llvm::ConstantInt::get(e.i64, 0), "seen");
  sp->addIncoming(sp1, pop_bb);
  spawned->addIncoming(spawned, pop_bb);
  e.b.CreateCondBr(seen, wloop_bb, visit_bb);

  e.b.SetInsertPoint(visit_bb);
  e.guard();
  e.b.CreateStore(e.b.CreateOr(word, bit), word_ptr);
  auto* visited = e.b.CreateLoad(e.i64, cell, "visited");
  e.b.CreateStore(
      e.b.CreateAdd(visited, llvm::ConstantInt::get(e.i64, 1)), cell);
  auto* row_base = e.b.CreateInBoundsGEP(e.i64, base, lu, "row_base");
  auto* row = e.b.CreateLoad(
      e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, row_base, 1), "row");
  auto* row_end = e.b.CreateLoad(
      e.i64, e.b.CreateConstInBoundsGEP1_64(e.i64, row_base, 2), "row_end");
  auto* visit_exit_bb = e.b.GetInsertBlock();
  e.b.CreateBr(eloop_bb);

  e.b.SetInsertPoint(eloop_bb);
  auto* edge = e.b.CreatePHI(e.i64, 3, "e");
  auto* esp = e.b.CreatePHI(e.i64, 3, "esp");
  auto* espawned = e.b.CreatePHI(e.i64, 3, "espawned");
  edge->addIncoming(row, visit_exit_bb);
  esp->addIncoming(sp1, visit_exit_bb);
  espawned->addIncoming(spawned, visit_exit_bb);
  sp->addIncoming(esp, eloop_bb);
  spawned->addIncoming(espawned, eloop_bb);
  e.b.CreateCondBr(e.b.CreateICmpULT(edge, row_end, "more_edges"), edge_bb,
                   wloop_bb);

  e.b.SetInsertPoint(edge_bb);
  auto* col_index = e.b.CreateAdd(
      e.b.CreateAdd(vps, llvm::ConstantInt::get(e.i64, 2)), edge,
      "col_index");
  auto* nb = e.b.CreateLoad(
      e.i64, e.b.CreateInBoundsGEP(e.i64, base, col_index), "nb");
  auto* nb_owner = e.b.CreateUDiv(nb, vps, "nb_owner");
  e.b.CreateCondBr(e.b.CreateICmpEQ(nb_owner, self, "nb_local"), push_bb,
                   send_bb);

  e.b.SetInsertPoint(push_bb);
  e.b.CreateStore(nb, e.b.CreateInBoundsGEP(e.i64, stack, esp));
  auto* esp1 =
      e.b.CreateAdd(esp, llvm::ConstantInt::get(e.i64, 1), "esp1");
  e.b.CreateBr(next_edge_bb);

  e.b.SetInsertPoint(send_bb);
  e.store_payload_u64(2, nb);
  e.store_payload_u64(3, self);  // the child acks us, its DS parent
  e.b.CreateCall(e.hk_forward(),
                 {e.arg_ctx, nb_owner, e.arg_payload,
                  llvm::ConstantInt::get(e.i64, 32)});
  auto* espawned1 = e.b.CreateAdd(
      espawned, llvm::ConstantInt::get(e.i64, 1), "espawned1");
  e.b.CreateBr(next_edge_bb);

  e.b.SetInsertPoint(next_edge_bb);
  auto* next_sp = e.b.CreatePHI(e.i64, 2, "next_sp");
  auto* next_spawned = e.b.CreatePHI(e.i64, 2, "next_spawned");
  next_sp->addIncoming(esp1, push_bb);
  next_sp->addIncoming(esp, send_bb);
  next_spawned->addIncoming(espawned, push_bb);
  next_spawned->addIncoming(espawned1, send_bb);
  edge->addIncoming(
      e.b.CreateAdd(edge, llvm::ConstantInt::get(e.i64, 1)), next_edge_bb);
  esp->addIncoming(next_sp, next_edge_bb);
  espawned->addIncoming(next_spawned, next_edge_bb);
  e.b.CreateBr(eloop_bb);

  e.b.SetInsertPoint(done_bb);
  e.b.CreateStore(
      e.b.CreateAdd(e.b.CreateLoad(e.i64, deficit_ptr, "deficit_in"),
                    spawned, "deficit_out"),
      deficit_ptr);
  auto* engaged = e.b.CreateLoad(e.i64, engaged_ptr, "engaged");
  auto* ack_now_bb = e.block("ack_now");
  auto* neutral_bb = e.block("neutral");
  e.b.CreateCondBr(
      e.b.CreateICmpNE(engaged, llvm::ConstantInt::get(e.i64, 0)),
      ack_now_bb, neutral_bb);
  e.b.SetInsertPoint(ack_now_bb);  // engaged elsewhere: ack the sender now
  e.b.CreateBr(send_ack_bb);
  e.b.SetInsertPoint(neutral_bb);
  auto* engage_bb = e.block("engage");
  auto* resolve_bb = e.block("resolve");
  e.b.CreateCondBr(
      e.b.CreateICmpEQ(spawned, llvm::ConstantInt::get(e.i64, 0)),
      resolve_bb, engage_bb);
  e.b.SetInsertPoint(engage_bb);  // ack deferred until the deficit drains
  e.b.CreateStore(from, parent_ptr);
  e.b.CreateStore(llvm::ConstantInt::get(e.i64, 1), engaged_ptr);
  e.b.CreateRetVoid();
  e.b.SetInsertPoint(resolve_bb);  // neutral and childless: resolve now
  auto* from_origin = e.b.CreateICmpEQ(
      from, llvm::ConstantInt::get(e.i64, ~0ull), "from_origin");
  e.b.CreateCondBr(from_origin, reply_origin_bb, send_ack_bb);

  // --- shared tails ----------------------------------------------------------
  e.b.SetInsertPoint(quiet_bb);
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(send_ack_bb);
  auto* ack_dst = e.b.CreatePHI(e.i64, 3, "ack_dst");
  ack_dst->addIncoming(my_parent, drained_bb);
  ack_dst->addIncoming(from, ack_now_bb);
  ack_dst->addIncoming(from, resolve_bb);
  e.store_payload_u64(0, llvm::ConstantInt::get(e.i64, 1));  // kind = ack
  e.b.CreateCall(e.hk_forward(), {e.arg_ctx, ack_dst, e.arg_payload,
                                  llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();

  e.b.SetInsertPoint(reply_origin_bb);
  e.store_payload_u64(0, lane);  // reply [lane][0] to the chain origin
  e.store_payload_u64(1, llvm::ConstantInt::get(e.i64, 0));
  e.b.CreateCall(e.hk_reply(), {e.arg_ctx, e.arg_payload,
                                llvm::ConstantInt::get(e.i64, 16)});
  e.b.CreateRetVoid();
}

}  // namespace

StatusOr<std::unique_ptr<llvm::Module>> build_kernel(
    llvm::LLVMContext& context, KernelKind kind,
    const TargetDescriptor& target, const KernelOptions& options) {
  initialize_llvm();
  TC_ASSIGN_OR_RETURN(auto machine, make_target_machine(target));

  auto module = std::make_unique<llvm::Module>(kernel_name(kind), context);
  module->setTargetTriple(normalize_triple(target.triple));
  module->setDataLayout(machine->createDataLayout());

  Emitter e(context, *module, options.hll_guards, options.chaser_tagged);
  switch (kind) {
    case KernelKind::kTargetSideIncrement: emit_tsi(e); break;
    case KernelKind::kPayloadSum: emit_payload_sum(e); break;
    case KernelKind::kSaxpy: emit_saxpy(e); break;
    case KernelKind::kVecReduce: emit_vec_reduce(e); break;
    case KernelKind::kChaser: emit_chaser(e); break;
    case KernelKind::kRingHop: emit_ring_hop(e); break;
    case KernelKind::kSpawner: emit_spawner(e); break;
    case KernelKind::kSinSum: emit_sin_sum(e); break;
    case KernelKind::kRemoteStore: emit_remote_store(e); break;
    case KernelKind::kStatsSummary: emit_stats_summary(e); break;
    case KernelKind::kTreeBroadcast: emit_tree_broadcast(e); break;
    case KernelKind::kCollectiveBroadcast:
      emit_collective_broadcast(e);
      break;
    case KernelKind::kCollectiveReduce: emit_collective_reduce(e); break;
    case KernelKind::kHashProbe: emit_hash_probe(e); break;
    case KernelKind::kOrderedSearch: emit_ordered_search(e); break;
    case KernelKind::kBfsFrontier: emit_bfs_frontier(e); break;
  }
  TC_RETURN_IF_ERROR(verify_module(*module));
  return module;
}

StatusOr<FatBitcode> build_fat_kernel(KernelKind kind,
                                      std::span<const TargetDescriptor> targets,
                                      const KernelOptions& options) {
  if (targets.empty()) {
    return invalid_argument("build_fat_kernel: no targets");
  }
  FatBitcode archive(CodeRepr::kBitcode);
  for (const TargetDescriptor& target : targets) {
    llvm::LLVMContext context;
    TC_ASSIGN_OR_RETURN(auto module,
                        build_kernel(context, kind, target, options));
    TC_RETURN_IF_ERROR(
        archive.add_entry(target, module_to_bitcode(*module)));
  }
  return archive;
}

StatusOr<FatBitcode> build_default_fat_kernel(KernelKind kind,
                                              const KernelOptions& options) {
  const auto targets = default_fat_targets();
  return build_fat_kernel(kind, targets, options);
}

}  // namespace tc::ir
