// Target-triple utilities: host detection, the set of triples a fat-bitcode
// archive is built for, and TargetMachine construction (optionally tuned to
// a specific µarch — the paper's "optimize for the target micro-architecture"
// capability, e.g. SVE on A64FX or AVX2 on Xeon).
//
// The triple/descriptor surface is LLVM-free so archives can be built,
// shipped, and matched in TC_WITH_LLVM=OFF builds (the portable-bytecode
// tier); TargetMachine construction and host µarch detection are only
// available when LLVM is compiled in.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

#if TC_WITH_LLVM
#include <memory>

#include <llvm/Target/TargetMachine.h>
#endif

namespace tc::ir {

/// Canonical triples used throughout the reproduction.
inline constexpr const char* kTripleX86 = "x86_64-pc-linux-gnu";
inline constexpr const char* kTripleAArch64 = "aarch64-unknown-linux-gnu";
/// Pseudo-triple of ISA-independent portable-bytecode archive entries.
inline constexpr const char* kTriplePortable = "portable";

/// Describes the code-generation target for one bitcode archive entry.
struct TargetDescriptor {
  std::string triple;
  std::string cpu;       ///< e.g. "a64fx", "cortex-a72", "broadwell"
  std::string features;  ///< e.g. "+sve", "+avx2"

  bool operator==(const TargetDescriptor&) const = default;
};

/// The triple of the process we are running in. Without LLVM this is
/// derived from the compiler's predefined macros.
std::string host_triple();

/// Normalizes a triple string (e.g. arm64 -> aarch64) for matching.
std::string normalize_triple(const std::string& triple);

/// Architecture component of a (normalized) triple — "x86_64", "aarch64",
/// "portable", ... Used for archive-entry matching.
std::string triple_arch(const std::string& triple);

/// Operating-system component of a triple ("linux", "darwin", ...); empty
/// when the triple has no recognizable OS component.
std::string triple_os(const std::string& triple);

/// True if code built for `triple` can execute in this process (arch + OS
/// match, or the triple is the portable pseudo-triple).
bool triple_is_host_compatible(const std::string& triple);

#if TC_WITH_LLVM
/// Initializes every LLVM backend exactly once (idempotent, thread-safe).
void initialize_llvm();

/// Host CPU name + feature string as LLVM reports them.
TargetDescriptor host_descriptor();

/// The default multi-ISA set shipped in fat-bitcode archives: the host
/// triple plus the "other" major ISA of the paper's testbeds.
std::vector<TargetDescriptor> default_fat_targets();

/// Creates a TargetMachine for `desc` (PIC relocation, JIT-compatible).
StatusOr<std::unique_ptr<llvm::TargetMachine>> make_target_machine(
    const TargetDescriptor& desc, llvm::CodeGenOpt::Level opt_level =
                                      llvm::CodeGenOpt::Default);
#endif  // TC_WITH_LLVM

}  // namespace tc::ir
