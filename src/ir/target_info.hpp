// Target-triple utilities: host detection, the set of triples a fat-bitcode
// archive is built for, and TargetMachine construction (optionally tuned to
// a specific µarch — the paper's "optimize for the target micro-architecture"
// capability, e.g. SVE on A64FX or AVX2 on Xeon).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include <llvm/Target/TargetMachine.h>

#include "common/status.hpp"

namespace tc::ir {

/// Canonical triples used throughout the reproduction.
inline constexpr const char* kTripleX86 = "x86_64-pc-linux-gnu";
inline constexpr const char* kTripleAArch64 = "aarch64-unknown-linux-gnu";

/// Describes the code-generation target for one bitcode archive entry.
struct TargetDescriptor {
  std::string triple;
  std::string cpu;       ///< e.g. "a64fx", "cortex-a72", "broadwell"
  std::string features;  ///< e.g. "+sve", "+avx2"

  bool operator==(const TargetDescriptor&) const = default;
};

/// Initializes every LLVM backend exactly once (idempotent, thread-safe).
void initialize_llvm();

/// The triple of the process we are running in.
std::string host_triple();

/// Host CPU name + feature string as LLVM reports them.
TargetDescriptor host_descriptor();

/// The default multi-ISA set shipped in fat-bitcode archives: the host
/// triple plus the "other" major ISA of the paper's testbeds.
std::vector<TargetDescriptor> default_fat_targets();

/// Creates a TargetMachine for `desc` (PIC relocation, JIT-compatible).
StatusOr<std::unique_ptr<llvm::TargetMachine>> make_target_machine(
    const TargetDescriptor& desc, llvm::CodeGenOpt::Level opt_level =
                                      llvm::CodeGenOpt::Default);

/// True if bitcode built for `triple` can execute in this process.
bool triple_is_host_compatible(const std::string& triple);

/// Normalizes a triple string (e.g. arm64 -> aarch64) for matching.
std::string normalize_triple(const std::string& triple);

}  // namespace tc::ir
